package sift

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/repro/sift/internal/obs"
)

// scrape fetches path from the cluster's debug handler.
func scrape(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts a series' value from Prometheus text output.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(series) + " (.+)$")
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("series %q not found in /metrics output", series)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", series, m[1], err)
	}
	return v
}

// TestObsSmoke drives a workload through an in-process cluster and scrapes
// every debug endpoint, asserting the acceptance criteria: client-op and
// quorum-write counters are nonzero after the workload, /healthz is green,
// and /statusz carries term/role/pipeline/health.
func TestObsSmoke(t *testing.T) {
	cl := newTestCluster(t, smallConfig())
	c := cl.Client()
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		if err := c.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(key); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(cl.DebugHandler())
	defer srv.Close()

	code, body := scrape(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	if v := metricValue(t, body, "sift_repmem_quorum_writes_total"); v == 0 {
		t.Error("sift_repmem_quorum_writes_total is zero after a write workload")
	}
	if v := metricValue(t, body, `sift_kv_ops_total{op="put"}`); v < 32 {
		t.Errorf(`sift_kv_ops_total{op="put"} = %v, want >= 32`, v)
	}
	if v := metricValue(t, body, `sift_client_op_seconds_count{op="put"}`); v < 32 {
		t.Errorf("client put latency count = %v, want >= 32", v)
	}
	if v := metricValue(t, body, "sift_election_promotions_total"); v == 0 {
		t.Error("no coordinator promotion recorded")
	}
	for _, want := range []string{
		"# TYPE sift_repmem_write_seconds summary",
		"sift_process_goroutines",
		`sift_node_up{node="mem0"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if code, body := scrape(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body = scrape(t, srv, "/statusz")
	if code != 200 {
		t.Fatalf("/statusz: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"coordinator", "term", "cpu_nodes", "repmem", "kv", "health", "pipeline"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/statusz missing %q", key)
		}
	}
	if doc["coordinator"] == float64(0) {
		t.Error("/statusz reports no coordinator")
	}

	code, body = scrape(t, srv, "/events")
	if code != 200 {
		t.Fatalf("/events: %d", code)
	}
	var events []obs.Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	found := false
	for _, e := range events {
		if e.Type == "coordinator.promoted" {
			found = true
		}
	}
	if !found {
		t.Errorf("no coordinator.promoted event in %d events", len(events))
	}

	if code, _ := scrape(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

// TestObsForceFailoverEvents asserts the acceptance criterion that a forced
// failover shows up in /events as an election + fencing sequence: the
// cluster.force-failover marker, followed by a successor's campaign and
// win, its promotion, and the demotion of the old coordinator.
func TestObsForceFailoverEvents(t *testing.T) {
	cfg := smallConfig()
	cfg.CPUNodes = 2
	cl := newTestCluster(t, cfg)
	c := cl.Client()
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	before := cl.Events().Seq()
	if _, err := cl.ForceFailover(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The new coordinator's promotion gates ForceFailover's return, but the
	// old coordinator's demotion teardown can still be in flight.
	deadline := time.Now().Add(5 * time.Second)
	var seen map[string]bool
	for time.Now().Before(deadline) {
		seen = map[string]bool{}
		for _, e := range cl.Events().Recent(0) {
			if e.Seq > before {
				seen[e.Type] = true
			}
		}
		if seen["coordinator.promoted"] && seen["coordinator.demoted"] {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, typ := range []string{
		"cluster.force-failover",
		"election.campaign",
		"election.won",
		"coordinator.promoted",
		"coordinator.demoted",
	} {
		if !seen[typ] {
			t.Errorf("event %q missing after ForceFailover; got %v", typ, keys(seen))
		}
	}
	if err := c.Put([]byte("k2"), []byte("v2")); err != nil {
		t.Fatalf("put after failover: %v", err)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
