module github.com/repro/sift

go 1.22
