package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNoLatency(t *testing.T) {
	var m NoLatency
	if d := m.Delay(1 << 20); d != 0 {
		t.Fatalf("NoLatency.Delay = %v, want 0", d)
	}
}

func TestFixedLatency(t *testing.T) {
	m := FixedLatency{Base: time.Microsecond, PerByte: time.Nanosecond}
	if d := m.Delay(0); d != time.Microsecond {
		t.Fatalf("Delay(0) = %v, want 1µs", d)
	}
	if d := m.Delay(1000); d != time.Microsecond+1000*time.Nanosecond {
		t.Fatalf("Delay(1000) = %v", d)
	}
}

func TestFixedLatencyMonotone(t *testing.T) {
	m := FixedLatency{Base: time.Microsecond, PerByte: time.Nanosecond}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.Delay(x) <= m.Delay(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterLatencyBounds(t *testing.T) {
	inner := FixedLatency{Base: 10 * time.Microsecond}
	j := NewJitterLatency(inner, 5*time.Microsecond, 1)
	for i := 0; i < 1000; i++ {
		d := j.Delay(0)
		if d < 10*time.Microsecond || d >= 15*time.Microsecond {
			t.Fatalf("jittered delay %v out of [10µs,15µs)", d)
		}
	}
}

func TestJitterLatencyZeroJitter(t *testing.T) {
	j := NewJitterLatency(FixedLatency{Base: time.Millisecond}, 0, 1)
	if d := j.Delay(0); d != time.Millisecond {
		t.Fatalf("Delay = %v, want 1ms", d)
	}
}

func TestRDMAvsTCPDefaults(t *testing.T) {
	if RDMADefault().Delay(0) >= TCPDefault().Delay(0) {
		t.Fatal("RDMA default latency should be below TCP default")
	}
}

func TestSleepNonPositive(t *testing.T) {
	start := time.Now()
	Sleep(0)
	Sleep(-time.Second)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("Sleep on non-positive duration blocked")
	}
}

func TestSleepShortDuration(t *testing.T) {
	start := time.Now()
	Sleep(20 * time.Microsecond)
	elapsed := time.Since(start)
	if elapsed < 20*time.Microsecond {
		t.Fatalf("Sleep(20µs) returned after %v", elapsed)
	}
}

func TestFabricKillRestart(t *testing.T) {
	f := NewFabric(nil)
	if err := f.Transfer("a", "b", 10); err != nil {
		t.Fatalf("healthy transfer: %v", err)
	}
	f.Kill("b")
	if !f.Down("b") {
		t.Fatal("b should be down")
	}
	if err := f.Transfer("a", "b", 10); err != ErrUnreachable {
		t.Fatalf("transfer to dead node: err = %v, want ErrUnreachable", err)
	}
	if err := f.Transfer("b", "a", 10); err != ErrUnreachable {
		t.Fatalf("transfer from dead node: err = %v, want ErrUnreachable", err)
	}
	f.Restart("b")
	if f.Down("b") {
		t.Fatal("b should be up after restart")
	}
	if err := f.Transfer("a", "b", 10); err != nil {
		t.Fatalf("transfer after restart: %v", err)
	}
}

func TestFabricPartitionSymmetric(t *testing.T) {
	f := NewFabric(nil)
	f.Partition("a", "b")
	if err := f.Transfer("a", "b", 1); err != ErrUnreachable {
		t.Fatal("a->b should be partitioned")
	}
	if err := f.Transfer("b", "a", 1); err != ErrUnreachable {
		t.Fatal("b->a should be partitioned")
	}
	if err := f.Transfer("a", "c", 1); err != nil {
		t.Fatalf("a->c should be fine: %v", err)
	}
	f.Heal("b", "a") // order-insensitive
	if err := f.Transfer("a", "b", 1); err != nil {
		t.Fatalf("healed link: %v", err)
	}
}

func TestFabricHealAll(t *testing.T) {
	f := NewFabric(nil)
	f.Kill("x")
	f.Partition("a", "b")
	f.HealAll()
	if f.Down("x") {
		t.Fatal("x still down after HealAll")
	}
	if err := f.Transfer("a", "b", 1); err != nil {
		t.Fatalf("a->b after HealAll: %v", err)
	}
}

func TestFabricSetLatency(t *testing.T) {
	f := NewFabric(nil)
	f.SetLatency(FixedLatency{Base: 2 * time.Millisecond})
	start := time.Now()
	if err := f.Transfer("a", "b", 0); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("latency model not applied")
	}
	f.SetLatency(nil) // resets to no latency
	start = time.Now()
	f.Transfer("a", "b", 0)
	if time.Since(start) > time.Millisecond {
		t.Fatal("nil latency model should mean zero delay")
	}
}

func TestLinkKeyCanonical(t *testing.T) {
	if linkKey("a", "b") != linkKey("b", "a") {
		t.Fatal("linkKey must be order-insensitive")
	}
}
