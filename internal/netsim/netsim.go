// Package netsim provides network condition simulation for the in-process
// RDMA transport: latency models, jitter, partitions, and link failure
// injection. It lets protocol code run against microsecond-scale "links"
// without real NIC hardware while preserving ordering and loss semantics.
package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrUnreachable is returned for operations across a failed or partitioned link.
var ErrUnreachable = errors.New("netsim: destination unreachable")

// LatencyModel computes a one-way delay for a message of the given size.
type LatencyModel interface {
	// Delay returns the simulated latency for transferring size bytes.
	Delay(size int) time.Duration
}

// NoLatency is a LatencyModel with zero delay. It is the default for unit
// tests where protocol logic, not timing, is under test.
type NoLatency struct{}

// Delay implements LatencyModel.
func (NoLatency) Delay(int) time.Duration { return 0 }

// FixedLatency models a constant base delay plus a per-byte cost.
type FixedLatency struct {
	Base    time.Duration // per-operation latency (propagation + NIC)
	PerByte time.Duration // serialization cost per byte
}

// Delay implements LatencyModel.
func (f FixedLatency) Delay(size int) time.Duration {
	return f.Base + time.Duration(size)*f.PerByte
}

// RDMADefault approximates a 10GbE RNIC: ~2µs base one-way latency and
// ~1 ns/byte serialization.
func RDMADefault() LatencyModel {
	return FixedLatency{Base: 2 * time.Microsecond, PerByte: time.Nanosecond}
}

// TCPDefault approximates kernel TCP on the same fabric: ~25µs base latency.
func TCPDefault() LatencyModel {
	return FixedLatency{Base: 25 * time.Microsecond, PerByte: time.Nanosecond}
}

// JitterLatency wraps another model and adds uniformly distributed jitter in
// [0, Jitter). It is safe for concurrent use.
type JitterLatency struct {
	Inner  LatencyModel
	Jitter time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitterLatency creates a JitterLatency with a deterministic seed.
func NewJitterLatency(inner LatencyModel, jitter time.Duration, seed int64) *JitterLatency {
	return &JitterLatency{Inner: inner, Jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Delay implements LatencyModel.
func (j *JitterLatency) Delay(size int) time.Duration {
	d := j.Inner.Delay(size)
	if j.Jitter <= 0 {
		return d
	}
	j.mu.Lock()
	d += time.Duration(j.rng.Int63n(int64(j.Jitter)))
	j.mu.Unlock()
	return d
}

// Sleep blocks for d. Durations below about 100µs use a hybrid spin to get
// microsecond accuracy; longer waits use the runtime timer. Zero and negative
// durations return immediately.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 100*time.Microsecond {
		time.Sleep(d)
		return
	}
	// Hybrid: sleep is too coarse below ~100µs on most kernels; spin on the
	// monotonic clock instead. This burns CPU, which is acceptable for
	// benchmarks that deliberately model NIC-speed operations.
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// Fabric tracks per-node liveness and pairwise partitions. All transports in
// a simulated deployment share one Fabric so failure injection is globally
// consistent.
type Fabric struct {
	mu         sync.RWMutex
	down       map[string]bool
	partitions map[[2]string]bool
	latency    LatencyModel
	linkImp    map[[2]string]*Impairment // per-link impairment profiles
	nodeImp    map[string]*Impairment    // per-node: applies to every link touching the node
}

// NewFabric creates a Fabric using the given latency model for every link.
// A nil model means no latency.
func NewFabric(latency LatencyModel) *Fabric {
	if latency == nil {
		latency = NoLatency{}
	}
	return &Fabric{
		down:       make(map[string]bool),
		partitions: make(map[[2]string]bool),
		latency:    latency,
		linkImp:    make(map[[2]string]*Impairment),
		nodeImp:    make(map[string]*Impairment),
	}
}

// SetLinkImpairment applies a stationary impairment profile to the a↔b link.
// A nil impairment clears it. Link-specific profiles win over node-level ones.
func (f *Fabric) SetLinkImpairment(a, b string, im *Impairment) {
	f.mu.Lock()
	if im == nil {
		delete(f.linkImp, linkKey(a, b))
	} else {
		f.linkImp[linkKey(a, b)] = im
	}
	f.mu.Unlock()
}

// SetNodeImpairment applies a stationary impairment profile to every link
// touching node — the "this replica lives across the WAN" switch. A nil
// impairment clears it.
func (f *Fabric) SetNodeImpairment(node string, im *Impairment) {
	f.mu.Lock()
	if im == nil {
		delete(f.nodeImp, node)
	} else {
		f.nodeImp[node] = im
	}
	f.mu.Unlock()
}

// impairment returns the profile governing the src→dst link, or nil.
func (f *Fabric) impairment(src, dst string) *Impairment {
	if im, ok := f.linkImp[linkKey(src, dst)]; ok {
		return im
	}
	if im, ok := f.nodeImp[src]; ok {
		return im
	}
	return f.nodeImp[dst]
}

// SetLatency replaces the fabric-wide latency model.
func (f *Fabric) SetLatency(m LatencyModel) {
	if m == nil {
		m = NoLatency{}
	}
	f.mu.Lock()
	f.latency = m
	f.mu.Unlock()
}

// Kill marks a node as failed; all traffic to and from it fails.
func (f *Fabric) Kill(node string) {
	f.mu.Lock()
	f.down[node] = true
	f.mu.Unlock()
}

// Restart clears a node's failed state.
func (f *Fabric) Restart(node string) {
	f.mu.Lock()
	delete(f.down, node)
	f.mu.Unlock()
}

// Partition severs the bidirectional link between nodes a and b.
func (f *Fabric) Partition(a, b string) {
	f.mu.Lock()
	f.partitions[linkKey(a, b)] = true
	f.mu.Unlock()
}

// Heal restores the link between nodes a and b.
func (f *Fabric) Heal(a, b string) {
	f.mu.Lock()
	delete(f.partitions, linkKey(a, b))
	f.mu.Unlock()
}

// HealAll clears every partition and failed node.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	f.down = make(map[string]bool)
	f.partitions = make(map[[2]string]bool)
	f.mu.Unlock()
}

// Down reports whether the node is currently failed.
func (f *Fabric) Down(node string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.down[node]
}

// Transfer simulates sending size bytes from src to dst: it checks
// reachability, then blocks for the modelled latency. It returns
// ErrUnreachable if either endpoint is down or the link is partitioned.
func (f *Fabric) Transfer(src, dst string, size int) error {
	f.mu.RLock()
	bad := f.down[src] || f.down[dst] || f.partitions[linkKey(src, dst)]
	lat := f.latency
	im := f.impairment(src, dst)
	f.mu.RUnlock()
	if bad {
		return ErrUnreachable
	}
	d := lat.Delay(size)
	if im != nil && !im.DatagramOnly {
		// Reliable in-order semantics: losses become retransmission stalls.
		d += im.transferDelay(size)
	}
	Sleep(d)
	// Re-check after the delay: a node that died mid-flight loses the message.
	f.mu.RLock()
	bad = f.down[src] || f.down[dst] || f.partitions[linkKey(src, dst)]
	f.mu.RUnlock()
	if bad {
		return ErrUnreachable
	}
	return nil
}

// SendDatagram computes the fate of one unreliable datagram from src to dst:
// the one-way delivery delay under the link's impairment profile and whether
// it survived loss. It never sleeps — callers (the wantransport FEC layer)
// schedule delivery themselves. ErrUnreachable reports a down endpoint or a
// partition; a merely lossy link returns delivered=false instead.
func (f *Fabric) SendDatagram(src, dst string, size int) (delay time.Duration, delivered bool, err error) {
	f.mu.RLock()
	bad := f.down[src] || f.down[dst] || f.partitions[linkKey(src, dst)]
	lat := f.latency
	im := f.impairment(src, dst)
	f.mu.RUnlock()
	if bad {
		return 0, false, ErrUnreachable
	}
	delay = lat.Delay(size)
	if im == nil {
		return delay, true, nil
	}
	d, ok := im.Datagram(size)
	return delay + d, ok, nil
}

func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}
