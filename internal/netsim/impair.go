package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// LossModel decides, one datagram at a time, whether a packet is lost.
// Implementations must be safe for concurrent use and deterministic for a
// given seed and call sequence.
type LossModel interface {
	Lose() bool
}

// Bernoulli drops each packet independently with probability P.
type Bernoulli struct {
	p   float64
	mu  sync.Mutex
	rng *rand.Rand
}

// NewBernoulli creates an i.i.d. loss model with the given drop probability.
func NewBernoulli(p float64, seed int64) *Bernoulli {
	return &Bernoulli{p: p, rng: rand.New(rand.NewSource(seed))}
}

// Lose implements LossModel.
func (b *Bernoulli) Lose() bool {
	if b.p <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rng.Float64() < b.p
}

// Fork returns an independent copy with the same parameters and a new seed.
func (b *Bernoulli) Fork(seed int64) LossModel { return NewBernoulli(b.p, seed) }

// GilbertElliott is the classic two-state Markov loss model: the link
// alternates between a Good state (loss probability LossGood, usually ~0) and
// a Bad state (loss probability LossBad) with per-packet transition
// probabilities PGoodBad and PBadGood. Losses therefore arrive in bursts whose
// mean length is 1/PBadGood packets, and the long-run loss rate is
//
//	πB·LossBad + πG·LossGood, where πB = PGoodBad / (PGoodBad + PBadGood).
type GilbertElliott struct {
	pGoodBad float64
	pBadGood float64
	lossGood float64
	lossBad  float64

	mu  sync.Mutex
	rng *rand.Rand
	bad bool
}

// NewGilbertElliott creates a bursty loss model starting in the Good state.
func NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad float64, seed int64) *GilbertElliott {
	return &GilbertElliott{
		pGoodBad: pGoodBad,
		pBadGood: pBadGood,
		lossGood: lossGood,
		lossBad:  lossBad,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// NewGilbertElliottRate builds a Gilbert-Elliott model with approximately the
// given long-run loss rate and mean burst length in packets. Within a burst
// packets drop with probability 0.5; between bursts the link is clean.
func NewGilbertElliottRate(rate, meanBurst float64, seed int64) *GilbertElliott {
	const lossBad = 0.5
	if meanBurst < 1 {
		meanBurst = 1
	}
	pBadGood := 1 / meanBurst
	// Stationary bad fraction needed for the target rate: πB = rate/lossBad.
	piB := rate / lossBad
	if piB > 0.9 {
		piB = 0.9
	}
	pGoodBad := pBadGood * piB / (1 - piB)
	return NewGilbertElliott(pGoodBad, pBadGood, 0, lossBad, seed)
}

// Lose implements LossModel: advance the chain one step, then draw a loss in
// the resulting state.
func (g *GilbertElliott) Lose() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.bad {
		if g.rng.Float64() < g.pBadGood {
			g.bad = false
		}
	} else {
		if g.rng.Float64() < g.pGoodBad {
			g.bad = true
		}
	}
	p := g.lossGood
	if g.bad {
		p = g.lossBad
	}
	if p <= 0 {
		return false
	}
	return g.rng.Float64() < p
}

// Fork returns an independent copy with the same parameters and a new seed.
func (g *GilbertElliott) Fork(seed int64) LossModel {
	return NewGilbertElliott(g.pGoodBad, g.pBadGood, g.lossGood, g.lossBad, seed)
}

// lossForker is implemented by loss models that can produce independent
// copies; Impairment.Fork uses it so two links never share one Markov chain.
type lossForker interface {
	Fork(seed int64) LossModel
}

// Impairment is a stationary per-link network profile: propagation delay,
// jitter, packet loss, reordering, and a bandwidth cap. Unlike the discrete
// faults in faultrdma, an Impairment holds for the lifetime of the link — it
// models *where a node lives*, not what broke.
//
// Two consumers read it. Fabric.Transfer applies it with reliable-transport
// semantics (each lost packet costs one RTO of retransmission delay), which
// models running the existing connection-oriented transport straight across
// the WAN. Fabric.SendDatagram applies it with datagram semantics — the
// caller learns the would-be delivery delay and whether the packet survived,
// and does its own scheduling — which is what the FEC layer in
// internal/wantransport builds on. Set DatagramOnly when a wantransport
// wrapper carries the impairment above the fabric, so the underlying reliable
// Transfers are not charged twice.
type Impairment struct {
	OneWay time.Duration // propagation delay per packet (RTT/2)
	Jitter time.Duration // uniform extra delay in [0, Jitter)
	Loss   LossModel     // per-packet loss; nil = lossless

	ReorderP     float64       // probability a delivered packet is held back
	ReorderDelay time.Duration // how long a reordered packet is held

	Bandwidth int64 // link capacity in bytes/second; 0 = unlimited
	MTU       int   // packet size for loss accounting (default 1500)

	// RTO is the retransmission penalty Transfer charges per lost packet.
	// Zero defaults to 2·OneWay + 10ms, a coarse kernel-TCP-style timer.
	RTO time.Duration

	// DatagramOnly marks the impairment as carried by a higher layer (the
	// wantransport FEC wrapper); Fabric.Transfer ignores it so the underlying
	// in-order legs are not impaired a second time.
	DatagramOnly bool

	mu  sync.Mutex
	rng *rand.Rand
}

// Seed initialises the impairment's internal randomness (jitter and reorder
// draws). Fabric seeds unseeded impairments automatically on registration.
func (im *Impairment) Seed(seed int64) {
	im.mu.Lock()
	im.rng = rand.New(rand.NewSource(seed))
	im.mu.Unlock()
}

// Fork returns a copy of the impairment with independent randomness, so the
// same profile can be applied to several links without sharing loss-burst
// state between them.
func (im *Impairment) Fork(seed int64) *Impairment {
	c := &Impairment{
		OneWay:       im.OneWay,
		Jitter:       im.Jitter,
		Loss:         im.Loss,
		ReorderP:     im.ReorderP,
		ReorderDelay: im.ReorderDelay,
		Bandwidth:    im.Bandwidth,
		MTU:          im.MTU,
		RTO:          im.RTO,
		DatagramOnly: im.DatagramOnly,
	}
	if f, ok := im.Loss.(lossForker); ok && im.Loss != nil {
		c.Loss = f.Fork(seed + 1)
	}
	c.Seed(seed)
	return c
}

// RTT is the round-trip propagation delay of the profile.
func (im *Impairment) RTT() time.Duration { return 2 * im.OneWay }

func (im *Impairment) mtu() int {
	if im.MTU <= 0 {
		return 1500
	}
	return im.MTU
}

func (im *Impairment) rto() time.Duration {
	if im.RTO > 0 {
		return im.RTO
	}
	return 2*im.OneWay + 10*time.Millisecond
}

// packets converts a byte count into MTU-sized packets (minimum one).
func (im *Impairment) packets(size int) int {
	m := im.mtu()
	n := (size + m - 1) / m
	if n < 1 {
		n = 1
	}
	return n
}

// serialize is the time the payload occupies the link under the bandwidth cap.
func (im *Impairment) serialize(size int) time.Duration {
	if im.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(im.Bandwidth) * float64(time.Second))
}

// draw returns a uniform float and optional jitter using the internal rng,
// lazily seeding it when the impairment was constructed literally.
func (im *Impairment) draw() (float64, time.Duration) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if im.rng == nil {
		im.rng = rand.New(rand.NewSource(1))
	}
	u := im.rng.Float64()
	var j time.Duration
	if im.Jitter > 0 {
		j = time.Duration(im.rng.Int63n(int64(im.Jitter)))
	}
	return u, j
}

// Datagram computes the fate of one unreliable datagram of size bytes:
// the one-way delivery delay (propagation + jitter + serialization, plus the
// reorder hold-back when the packet is selected for reordering) and whether
// it was delivered at all. It never sleeps; callers schedule delivery.
func (im *Impairment) Datagram(size int) (delay time.Duration, delivered bool) {
	u, jitter := im.draw()
	delay = im.OneWay + jitter + im.serialize(size)
	if im.Loss != nil {
		// One draw per MTU packet: a datagram above the MTU dies if any
		// fragment dies, exactly like an IP fragment train.
		for i := 0; i < im.packets(size); i++ {
			if im.Loss.Lose() {
				return delay, false
			}
		}
	}
	if im.ReorderP > 0 && u < im.ReorderP {
		delay += im.reorderHold()
	}
	return delay, true
}

func (im *Impairment) reorderHold() time.Duration {
	if im.ReorderDelay > 0 {
		return im.ReorderDelay
	}
	return im.OneWay / 2
}

// transferDelay models the impairment under a reliable, in-order transport:
// every MTU packet must eventually arrive, and each loss costs one RTO of
// retransmission stall (compounding for repeated losses of the same packet).
func (im *Impairment) transferDelay(size int) time.Duration {
	_, jitter := im.draw()
	d := im.OneWay + jitter + im.serialize(size)
	if im.Loss == nil {
		return d
	}
	rto := im.rto()
	for i := 0; i < im.packets(size); i++ {
		for attempt := 0; im.Loss.Lose(); attempt++ {
			d += rto
			if attempt >= 16 {
				break // pathological chain; cap the stall
			}
		}
	}
	return d
}

// Preset names understood by Preset, in display order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var presets = map[string]func(seed int64) *Impairment{
	"cross-region": CrossRegion,
	"congested":    Congested,
	"lossy-wifi":   LossyWifi,
}

// Preset returns a named impairment profile seeded deterministically.
// Known names: "cross-region", "congested", "lossy-wifi".
func Preset(name string, seed int64) (*Impairment, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown impairment preset %q (have %v)", name, PresetNames())
	}
	return mk(seed), nil
}

// CrossRegion models a healthy inter-region backbone: 40ms RTT, sub-ms
// jitter, and rare short loss bursts (~0.1% long-run).
func CrossRegion(seed int64) *Impairment {
	im := &Impairment{
		OneWay: 20 * time.Millisecond,
		Jitter: 500 * time.Microsecond,
		Loss:   NewGilbertElliottRate(0.001, 3, seed+1),
	}
	im.Seed(seed)
	return im
}

// Congested models a saturated long-haul path: 30ms RTT with heavy jitter,
// bursty ~3% loss, mild reordering, and a 12.5 MB/s (100 Mbit/s) cap.
func Congested(seed int64) *Impairment {
	im := &Impairment{
		OneWay:       15 * time.Millisecond,
		Jitter:       3 * time.Millisecond,
		Loss:         NewGilbertElliottRate(0.03, 8, seed+1),
		ReorderP:     0.01,
		ReorderDelay: 2 * time.Millisecond,
		Bandwidth:    12_500_000,
	}
	im.Seed(seed)
	return im
}

// LossyWifi models a marginal last-hop radio link: moderate RTT, large
// jitter, long bursty ~8% loss, and frequent reordering from link-layer ARQ.
func LossyWifi(seed int64) *Impairment {
	im := &Impairment{
		OneWay:       8 * time.Millisecond,
		Jitter:       5 * time.Millisecond,
		Loss:         NewGilbertElliottRate(0.08, 12, seed+1),
		ReorderP:     0.02,
		ReorderDelay: 4 * time.Millisecond,
	}
	im.Seed(seed)
	return im
}
