package netsim

import (
	"math"
	"testing"
	"time"
)

// TestGilbertElliottLongRunLoss checks the measured long-run loss rate
// against the analytic stationary rate πB·lossBad + πG·lossGood.
func TestGilbertElliottLongRunLoss(t *testing.T) {
	const (
		pGB, pBG = 0.01, 0.25
		lossBad  = 0.5
		n        = 400_000
	)
	g := NewGilbertElliott(pGB, pBG, 0, lossBad, 1)
	lost := 0
	for i := 0; i < n; i++ {
		if g.Lose() {
			lost++
		}
	}
	want := pGB / (pGB + pBG) * lossBad
	got := float64(lost) / n
	if math.Abs(got-want) > 0.2*want {
		t.Fatalf("long-run loss rate %.4f, want %.4f ±20%%", got, want)
	}
}

// TestGilbertElliottBurstLength checks that consecutive-loss runs have the
// analytic mean length. After a loss the run continues iff the chain stays
// Bad and loses again, so runs are geometric with continue probability
// (1-pBG)·lossBad and mean 1/(1 - (1-pBG)·lossBad).
func TestGilbertElliottBurstLength(t *testing.T) {
	const (
		pGB, pBG = 0.02, 0.25
		lossBad  = 0.5
		n        = 400_000
	)
	g := NewGilbertElliott(pGB, pBG, 0, lossBad, 7)
	var runs, losses, cur int
	for i := 0; i < n; i++ {
		if g.Lose() {
			losses++
			if cur == 0 {
				runs++
			}
			cur++
		} else {
			cur = 0
		}
	}
	if runs < 100 {
		t.Fatalf("only %d loss bursts in %d packets; model too quiet to judge", runs, n)
	}
	got := float64(losses) / float64(runs)
	want := 1 / (1 - (1-pBG)*lossBad)
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("mean loss-burst length %.3f, want %.3f ±15%%", got, want)
	}
}

// TestGilbertElliottBurstiness: at the same long-run rate, GE losses must
// cluster — the conditional loss probability given a preceding loss should be
// several times the marginal rate, where Bernoulli shows no memory.
func TestGilbertElliottBurstiness(t *testing.T) {
	const n = 300_000
	g := NewGilbertElliottRate(0.05, 8, 3)
	var losses, pairs, afterLoss int
	prev := false
	for i := 0; i < n; i++ {
		l := g.Lose()
		if l {
			losses++
		}
		if prev {
			afterLoss++
			if l {
				pairs++
			}
		}
		prev = l
	}
	marginal := float64(losses) / n
	if math.Abs(marginal-0.05) > 0.02 {
		t.Fatalf("NewGilbertElliottRate(0.05) long-run rate %.4f", marginal)
	}
	conditional := float64(pairs) / float64(afterLoss)
	if conditional < 3*marginal {
		t.Fatalf("loss not bursty: P(loss|loss)=%.3f vs marginal %.3f", conditional, marginal)
	}
}

func TestBernoulliRate(t *testing.T) {
	const n = 200_000
	b := NewBernoulli(0.1, 5)
	lost := 0
	for i := 0; i < n; i++ {
		if b.Lose() {
			lost++
		}
	}
	got := float64(lost) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("bernoulli rate %.4f, want 0.10 ±0.01", got)
	}
}

// TestReorderEventualDelivery: reordering holds packets back but never drops
// them — every datagram on a loss-free link is delivered, and the held-back
// fraction matches ReorderP.
func TestReorderEventualDelivery(t *testing.T) {
	im := &Impairment{
		OneWay:       time.Millisecond,
		ReorderP:     0.1,
		ReorderDelay: 5 * time.Millisecond,
	}
	im.Seed(11)
	const n = 50_000
	reordered := 0
	for i := 0; i < n; i++ {
		d, ok := im.Datagram(100)
		if !ok {
			t.Fatalf("datagram %d lost on a loss-free link", i)
		}
		if d >= time.Millisecond+5*time.Millisecond {
			reordered++
		}
	}
	got := float64(reordered) / n
	if math.Abs(got-0.1) > 0.02 {
		t.Fatalf("reordered fraction %.4f, want 0.10 ±0.02", got)
	}
}

// TestTransferReliableUnderLoss: the reliable Transfer path converts loss
// into retransmission delay, never into failure — eventual delivery holds on
// an arbitrarily lossy (but connected) link, and the average stall grows with
// the loss rate.
func TestTransferReliableUnderLoss(t *testing.T) {
	f := NewFabric(NoLatency{})
	im := &Impairment{
		OneWay: 100 * time.Microsecond,
		Loss:   NewBernoulli(0.3, 9),
		RTO:    300 * time.Microsecond,
	}
	im.Seed(9)
	f.SetLinkImpairment("a", "b", im)
	var total time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f.Transfer("a", "b", 64); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
		total += time.Since(start)
	}
	// Expected per-transfer delay: OneWay + lossRate/(1-lossRate)·RTO ≈ 229µs.
	if avg := total / n; avg < 150*time.Microsecond {
		t.Fatalf("loss cost no retransmission delay: avg %v", avg)
	}
}

// TestDatagramOnlySkipsTransfer: an impairment carried by the wantransport
// layer must not also stall the fabric's reliable legs.
func TestDatagramOnlySkipsTransfer(t *testing.T) {
	f := NewFabric(NoLatency{})
	im := &Impairment{
		OneWay:       10 * time.Millisecond,
		Loss:         NewBernoulli(0.5, 3),
		DatagramOnly: true,
	}
	im.Seed(3)
	f.SetNodeImpairment("b", im)
	start := time.Now()
	if err := f.Transfer("a", "b", 64); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Fatalf("DatagramOnly impairment leaked into Transfer: took %v", d)
	}
	// The datagram path still sees it.
	d, _, err := f.SendDatagram("a", "b", 64)
	if err != nil {
		t.Fatalf("send datagram: %v", err)
	}
	if d < 10*time.Millisecond {
		t.Fatalf("datagram delay %v, want ≥ OneWay", d)
	}
}

// TestSendDatagramReachability: datagrams to a dead or partitioned node fail
// with ErrUnreachable rather than reporting ordinary loss.
func TestSendDatagramReachability(t *testing.T) {
	f := NewFabric(NoLatency{})
	if _, _, err := f.SendDatagram("a", "b", 10); err != nil {
		t.Fatalf("clean link: %v", err)
	}
	f.Kill("b")
	if _, _, err := f.SendDatagram("a", "b", 10); err != ErrUnreachable {
		t.Fatalf("dead node: err=%v, want ErrUnreachable", err)
	}
	f.Restart("b")
	f.Partition("a", "b")
	if _, _, err := f.SendDatagram("a", "b", 10); err != ErrUnreachable {
		t.Fatalf("partitioned link: err=%v, want ErrUnreachable", err)
	}
}

// TestPresetsResolve: every advertised preset constructs, unknown names
// error, and the same seed reproduces the same datagram fates.
func TestPresetsResolve(t *testing.T) {
	for _, name := range PresetNames() {
		im, err := Preset(name, 42)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if im.OneWay <= 0 {
			t.Fatalf("preset %q has no propagation delay", name)
		}
	}
	if _, err := Preset("dial-up", 1); err == nil {
		t.Fatal("unknown preset did not error")
	}

	a, _ := Preset("congested", 7)
	b, _ := Preset("congested", 7)
	for i := 0; i < 10_000; i++ {
		da, oka := a.Datagram(1200)
		db, okb := b.Datagram(1200)
		if da != db || oka != okb {
			t.Fatalf("datagram %d diverged under one seed: (%v,%v) vs (%v,%v)", i, da, oka, db, okb)
		}
	}
}

// TestImpairmentFork: forked impairments share parameters but not randomness.
func TestImpairmentFork(t *testing.T) {
	im, _ := Preset("cross-region", 1)
	fk := im.Fork(99)
	if fk.OneWay != im.OneWay {
		t.Fatalf("fork changed OneWay: %v vs %v", fk.OneWay, im.OneWay)
	}
	if fk.Loss == im.Loss {
		t.Fatal("fork shares the parent's loss chain")
	}
}

func TestBandwidthSerialization(t *testing.T) {
	im := &Impairment{OneWay: time.Millisecond, Bandwidth: 1_000_000} // 1 MB/s
	im.Seed(1)
	d, ok := im.Datagram(100_000) // 100 KB → 100ms serialization
	if !ok {
		t.Fatal("lossless datagram dropped")
	}
	if d < 100*time.Millisecond {
		t.Fatalf("bandwidth cap not charged: delay %v", d)
	}
}
