package erasure

import (
	"errors"
	"fmt"
)

// Errors returned by the codec.
var (
	ErrInvalidParams   = errors.New("erasure: invalid code parameters")
	ErrShortBlock      = errors.New("erasure: block length not divisible by data chunk count")
	ErrNotEnoughChunks = errors.New("erasure: fewer than k chunks available")
	ErrChunkSize       = errors.New("erasure: chunk size mismatch")
)

// Code is a systematic Cauchy Reed–Solomon code with k data chunks and m
// parity chunks. Chunks 0..k-1 are verbatim slices of the input block
// (systematic layout), so reads that reach only data chunks skip decoding —
// the property Sift exploits by prioritising non-parity memory nodes.
type Code struct {
	k, m   int
	parity [][]byte       // m×k row-normalised Cauchy coefficient matrix
	tabs   [][]*[256]byte // composed product table per matrix cell
	t16k2  *[65536]uint16 // double-byte table for the k=2, m=1 shape
	t16k3  [2]*[65536]uint32 // double-byte, double-row tables (k=3, m=2)
}

// New constructs a code with k data and m parity chunks. k ≥ 1, m ≥ 0, and
// k+m ≤ 256 (field size limit).
func New(k, m int) (*Code, error) {
	if k < 1 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrInvalidParams, k, m)
	}
	c := &Code{k: k, m: m}
	// Cauchy matrix: rows indexed by x_i = k+i, columns by y_j = j, entry
	// 1/(x_i ^ y_j). Distinctness of all x and y values in GF(256)
	// guarantees every square submatrix is invertible, which is what makes
	// any-k-of-n reconstruction possible. Each row is then scaled by
	// x_i ^ y_0 so its first coefficient is 1: row scaling by a non-zero
	// constant maps every square submatrix to an invertible one iff the
	// original was, and lets the encoders fold source chunk 0 into every
	// parity row with a plain xor.
	c.parity = make([][]byte, m)
	c.tabs = make([][]*[256]byte, m)
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		trow := make([]*[256]byte, k)
		for j := 0; j < k; j++ {
			row[j] = gfMul(gfInv(byte(k+i)^byte(j)), byte(k+i))
			trow[j] = mulTables[row[j]]
		}
		c.parity[i] = row
		c.tabs[i] = trow
	}
	switch {
	case k == 2 && m == 1:
		c.t16k2 = newTab16(c.parity[0][1])
	case k == 3 && m == 2:
		c.t16k3[0] = newTab16x2(c.parity[0][1], c.parity[1][1])
		c.t16k3[1] = newTab16x2(c.parity[0][2], c.parity[1][2])
	}
	return c, nil
}

// K returns the number of data chunks.
func (c *Code) K() int { return c.k }

// M returns the number of parity chunks.
func (c *Code) M() int { return c.m }

// ChunkSize returns the per-chunk size for a block of blockLen bytes.
// blockLen must be divisible by K.
func (c *Code) ChunkSize(blockLen int) (int, error) {
	if blockLen%c.k != 0 {
		return 0, fmt.Errorf("%w: block %d, k %d", ErrShortBlock, blockLen, c.k)
	}
	return blockLen / c.k, nil
}

// encodeRange computes parity bytes [lo, hi) of every parity chunk from the
// same range of the data chunks in one fused pass (specialised for Sift's
// common shapes).
func (c *Code) encodeRange(data, parity [][]byte, lo, hi int) {
	switch {
	case c.k == 2 && c.m == 1:
		encodeK2M1(parity[0][lo:hi], data[0][lo:hi], data[1][lo:hi], c.t16k2, c.tabs[0][1])
	case c.k == 3 && c.m == 2:
		encodeK3M2(parity[0][lo:hi], parity[1][lo:hi],
			data[0][lo:hi], data[1][lo:hi], data[2][lo:hi],
			c.t16k3[0], c.t16k3[1], c.tabs)
	default:
		for i := 0; i < c.m; i++ {
			p := parity[i][lo:hi]
			mulSlice(p, data[0][lo:hi], c.parity[i][0])
			for j := 1; j < c.k; j++ {
				mulAddSlice(p, data[j][lo:hi], c.parity[i][j])
			}
		}
	}
}

// encodeChunks computes every parity chunk from the data chunks, sharding
// large chunks across the kernel pool. The common small-chunk path stays
// closure-free so it does not allocate.
func (c *Code) encodeChunks(data, parity [][]byte, cs int) {
	if c.m == 0 {
		return
	}
	if cs < shardMinBytes || poolWorkers() < 2 {
		c.encodeRange(data, parity, 0, cs)
		return
	}
	shardRanges(cs, func(lo, hi int) { c.encodeRange(data, parity, lo, hi) })
}

// Encode splits block into k data chunks and computes m parity chunks,
// returning all k+m chunks. The data chunks alias block; parity chunks are
// freshly allocated.
func (c *Code) Encode(block []byte) ([][]byte, error) {
	cs, err := c.ChunkSize(len(block))
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.m)
	if c.m > 0 {
		backing := make([]byte, c.m*cs)
		for i := range parity {
			parity[i] = backing[i*cs : (i+1)*cs]
		}
	}
	return c.EncodeInto(block, parity)
}

// EncodeInto is like Encode but writes parity into the caller-provided
// buffers parity[0..m-1], each of chunk size, avoiding the parity allocation.
// Returned data chunks alias block.
func (c *Code) EncodeInto(block []byte, parity [][]byte) ([][]byte, error) {
	if len(parity) != c.m {
		return nil, fmt.Errorf("%w: %d parity buffers, want %d", ErrChunkSize, len(parity), c.m)
	}
	chunks := make([][]byte, c.k+c.m)
	copy(chunks[c.k:], parity)
	if err := c.EncodeTo(block, chunks); err != nil {
		return nil, err
	}
	return chunks, nil
}

// EncodeTo is the allocation-free encode entry point used by repmem's hot
// paths: chunks must have length k+m with pre-allocated chunk-size parity
// buffers in chunks[k..k+m-1]. Entries 0..k-1 are overwritten with aliases
// of block's data ranges and the parity buffers are filled in place.
func (c *Code) EncodeTo(block []byte, chunks [][]byte) error {
	cs, err := c.ChunkSize(len(block))
	if err != nil {
		return err
	}
	if len(chunks) != c.k+c.m {
		return fmt.Errorf("%w: %d chunk slots, want %d", ErrChunkSize, len(chunks), c.k+c.m)
	}
	for j := 0; j < c.k; j++ {
		chunks[j] = block[j*cs : (j+1)*cs : (j+1)*cs]
	}
	for i := 0; i < c.m; i++ {
		if len(chunks[c.k+i]) != cs {
			return fmt.Errorf("%w: parity buffer %d has %d bytes, want %d", ErrChunkSize, i, len(chunks[c.k+i]), cs)
		}
	}
	c.encodeChunks(chunks[:c.k], chunks[c.k:], cs)
	return nil
}

// checkChunks validates a k+m chunk set and returns the shared chunk size.
// It allocates nothing, keeping the steady-state decode path clean; callers
// that need the present-index list build it with presentChunks.
func (c *Code) checkChunks(chunks [][]byte) (int, error) {
	if len(chunks) != c.k+c.m {
		return 0, fmt.Errorf("%w: %d chunks, want %d", ErrChunkSize, len(chunks), c.k+c.m)
	}
	cs := -1
	got := 0
	for i, ch := range chunks {
		if ch == nil {
			continue
		}
		if cs == -1 {
			cs = len(ch)
		} else if len(ch) != cs {
			return 0, fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSize, i, len(ch), cs)
		}
		got++
	}
	if got < c.k {
		return 0, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughChunks, got, c.k)
	}
	return cs, nil
}

// presentChunks returns the first k present chunk indexes (data chunks
// first, by scan order).
func (c *Code) presentChunks(chunks [][]byte) []int {
	use := make([]int, 0, c.k)
	for i, ch := range chunks {
		if ch != nil {
			use = append(use, i)
			if len(use) == c.k {
				break
			}
		}
	}
	return use
}

// decodeMatrix builds and inverts the k×k generator submatrix selecting
// the first k present chunks (data chunks preferred — cheaper rows).
func (c *Code) decodeMatrix(use []int) ([][]byte, error) {
	mat := make([][]byte, c.k)
	for r, idx := range use {
		row := make([]byte, c.k)
		if idx < c.k {
			row[idx] = 1 // systematic row
		} else {
			copy(row, c.parity[idx-c.k])
		}
		mat[r] = row
	}
	if !invertMatrix(mat) {
		return nil, errors.New("erasure: generator submatrix singular (corrupt code state)")
	}
	return mat, nil
}

// Decode reconstructs the original block from any k available chunks.
// chunks has length k+m; missing chunks are nil. All present chunks must
// share one size. The reconstructed block is newly allocated.
func (c *Code) Decode(chunks [][]byte) ([]byte, error) {
	cs, err := c.checkChunks(chunks)
	if err != nil {
		return nil, err
	}
	block := make([]byte, c.k*cs)
	if err := c.DecodeInto(block, chunks); err != nil {
		return nil, err
	}
	return block, nil
}

// DecodeInto is like Decode but writes the reconstructed block into the
// caller-provided buffer of exactly k·chunksize bytes, so the steady-state
// read path (all data chunks live: a straight copy) allocates nothing.
func (c *Code) DecodeInto(block []byte, chunks [][]byte) error {
	cs, err := c.checkChunks(chunks)
	if err != nil {
		return err
	}
	if len(block) != c.k*cs {
		return fmt.Errorf("%w: block buffer %d bytes, want %d", ErrChunkSize, len(block), c.k*cs)
	}

	// Fast path: all data chunks present (systematic layout).
	allData := true
	for j := 0; j < c.k; j++ {
		if chunks[j] == nil {
			allData = false
			break
		}
	}
	if allData {
		for j := 0; j < c.k; j++ {
			copy(block[j*cs:], chunks[j])
		}
		return nil
	}

	// General path: invert the generator submatrix of the first k present
	// chunks, then matrix-multiply — but only for the missing data rows.
	use := c.presentChunks(chunks)
	mat, err := c.decodeMatrix(use)
	if err != nil {
		return err
	}
	shardRanges(cs, func(lo, hi int) {
		for j := 0; j < c.k; j++ {
			out := block[j*cs+lo : j*cs+hi]
			if chunks[j] != nil {
				copy(out, chunks[j][lo:hi])
				continue
			}
			mulSlice(out, chunks[use[0]][lo:hi], mat[j][0])
			for r := 1; r < c.k; r++ {
				mulAddSlice(out, chunks[use[r]][lo:hi], mat[j][r])
			}
		}
	})
	return nil
}

// Reconstruct fills in every nil chunk (data and parity) in place, given at
// least k present chunks. Used by memory-node recovery, which must rebuild
// the exact chunk a rejoining node is responsible for. Only the missing
// chunks are computed and allocated: missing data chunks come from the
// inverted generator submatrix applied to k present chunks, and missing
// parity chunks are re-encoded from the (by then complete) data chunks.
func (c *Code) Reconstruct(chunks [][]byte) error {
	cs, err := c.checkChunks(chunks)
	if err != nil {
		return err
	}
	var missData, missParity []int
	for i, ch := range chunks {
		if ch != nil {
			continue
		}
		if i < c.k {
			missData = append(missData, i)
		} else {
			missParity = append(missParity, i-c.k)
		}
	}
	if len(missData)+len(missParity) == 0 {
		return nil
	}

	var mat [][]byte
	use := c.presentChunks(chunks)
	if len(missData) > 0 {
		if mat, err = c.decodeMatrix(use); err != nil {
			return err
		}
	}
	backing := make([]byte, (len(missData)+len(missParity))*cs)
	for _, j := range missData {
		chunks[j], backing = backing[:cs:cs], backing[cs:]
	}
	for _, i := range missParity {
		chunks[c.k+i], backing = backing[:cs:cs], backing[cs:]
	}

	shardRanges(cs, func(lo, hi int) {
		// Missing data rows first: missing parity in the same sub-range
		// depends only on data bytes [lo, hi), which are complete below.
		for _, j := range missData {
			out := chunks[j][lo:hi]
			mulSlice(out, chunks[use[0]][lo:hi], mat[j][0])
			for r := 1; r < c.k; r++ {
				mulAddSlice(out, chunks[use[r]][lo:hi], mat[j][r])
			}
		}
		for _, i := range missParity {
			p := chunks[c.k+i][lo:hi]
			mulSlice(p, chunks[0][lo:hi], c.parity[i][0])
			for j := 1; j < c.k; j++ {
				mulAddSlice(p, chunks[j][lo:hi], c.parity[i][j])
			}
		}
	})
	return nil
}
