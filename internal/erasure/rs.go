package erasure

import (
	"errors"
	"fmt"
)

// Errors returned by the codec.
var (
	ErrInvalidParams   = errors.New("erasure: invalid code parameters")
	ErrShortBlock      = errors.New("erasure: block length not divisible by data chunk count")
	ErrNotEnoughChunks = errors.New("erasure: fewer than k chunks available")
	ErrChunkSize       = errors.New("erasure: chunk size mismatch")
)

// Code is a systematic Cauchy Reed–Solomon code with k data chunks and m
// parity chunks. Chunks 0..k-1 are verbatim slices of the input block
// (systematic layout), so reads that reach only data chunks skip decoding —
// the property Sift exploits by prioritising non-parity memory nodes.
type Code struct {
	k, m   int
	parity [][]byte // m×k Cauchy coefficient matrix
}

// New constructs a code with k data and m parity chunks. k ≥ 1, m ≥ 0, and
// k+m ≤ 256 (field size limit).
func New(k, m int) (*Code, error) {
	if k < 1 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrInvalidParams, k, m)
	}
	c := &Code{k: k, m: m}
	// Cauchy matrix: rows indexed by x_i = k+i, columns by y_j = j, entry
	// 1/(x_i ^ y_j). Distinctness of all x and y values in GF(256)
	// guarantees every square submatrix is invertible, which is what makes
	// any-k-of-n reconstruction possible.
	c.parity = make([][]byte, m)
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = gfInv(byte(k+i) ^ byte(j))
		}
		c.parity[i] = row
	}
	return c, nil
}

// K returns the number of data chunks.
func (c *Code) K() int { return c.k }

// M returns the number of parity chunks.
func (c *Code) M() int { return c.m }

// ChunkSize returns the per-chunk size for a block of blockLen bytes.
// blockLen must be divisible by K.
func (c *Code) ChunkSize(blockLen int) (int, error) {
	if blockLen%c.k != 0 {
		return 0, fmt.Errorf("%w: block %d, k %d", ErrShortBlock, blockLen, c.k)
	}
	return blockLen / c.k, nil
}

// Encode splits block into k data chunks and computes m parity chunks,
// returning all k+m chunks. The data chunks alias block; parity chunks are
// freshly allocated.
func (c *Code) Encode(block []byte) ([][]byte, error) {
	cs, err := c.ChunkSize(len(block))
	if err != nil {
		return nil, err
	}
	chunks := make([][]byte, c.k+c.m)
	for j := 0; j < c.k; j++ {
		chunks[j] = block[j*cs : (j+1)*cs]
	}
	for i := 0; i < c.m; i++ {
		p := make([]byte, cs)
		for j := 0; j < c.k; j++ {
			mulAddSlice(p, chunks[j], c.parity[i][j])
		}
		chunks[c.k+i] = p
	}
	return chunks, nil
}

// EncodeInto is like Encode but writes parity into the caller-provided
// buffers parity[0..m-1], each of chunk size, avoiding allocation on the hot
// write path. Returned data chunks alias block.
func (c *Code) EncodeInto(block []byte, parity [][]byte) ([][]byte, error) {
	cs, err := c.ChunkSize(len(block))
	if err != nil {
		return nil, err
	}
	if len(parity) != c.m {
		return nil, fmt.Errorf("%w: %d parity buffers, want %d", ErrChunkSize, len(parity), c.m)
	}
	chunks := make([][]byte, c.k+c.m)
	for j := 0; j < c.k; j++ {
		chunks[j] = block[j*cs : (j+1)*cs]
	}
	for i := 0; i < c.m; i++ {
		if len(parity[i]) != cs {
			return nil, fmt.Errorf("%w: parity buffer %d has %d bytes, want %d", ErrChunkSize, i, len(parity[i]), cs)
		}
		for j := range parity[i] {
			parity[i][j] = 0
		}
		for j := 0; j < c.k; j++ {
			mulAddSlice(parity[i], chunks[j], c.parity[i][j])
		}
		chunks[c.k+i] = parity[i]
	}
	return chunks, nil
}

// Decode reconstructs the original block from any k available chunks.
// chunks has length k+m; missing chunks are nil. All present chunks must
// share one size. The reconstructed block is newly allocated.
func (c *Code) Decode(chunks [][]byte) ([]byte, error) {
	if len(chunks) != c.k+c.m {
		return nil, fmt.Errorf("%w: %d chunks, want %d", ErrChunkSize, len(chunks), c.k+c.m)
	}
	cs := -1
	present := make([]int, 0, c.k)
	for i, ch := range chunks {
		if ch == nil {
			continue
		}
		if cs == -1 {
			cs = len(ch)
		} else if len(ch) != cs {
			return nil, fmt.Errorf("%w: chunk %d has %d bytes, want %d", ErrChunkSize, i, len(ch), cs)
		}
		present = append(present, i)
	}
	if len(present) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughChunks, len(present), c.k)
	}

	// Fast path: all data chunks present (systematic layout).
	allData := true
	for j := 0; j < c.k; j++ {
		if chunks[j] == nil {
			allData = false
			break
		}
	}
	block := make([]byte, c.k*cs)
	if allData {
		for j := 0; j < c.k; j++ {
			copy(block[j*cs:], chunks[j])
		}
		return block, nil
	}

	// General path: pick k present chunks (prefer data chunks — cheaper
	// rows), build the k×k generator submatrix, invert, multiply.
	use := present[:c.k]
	mat := make([][]byte, c.k)
	for r, idx := range use {
		row := make([]byte, c.k)
		if idx < c.k {
			row[idx] = 1 // systematic row
		} else {
			copy(row, c.parity[idx-c.k])
		}
		mat[r] = row
	}
	if !invertMatrix(mat) {
		return nil, errors.New("erasure: generator submatrix singular (corrupt code state)")
	}
	// dataChunk[j] = sum_r mat[j][r] * chunks[use[r]]
	for j := 0; j < c.k; j++ {
		out := block[j*cs : (j+1)*cs]
		if chunks[j] != nil {
			copy(out, chunks[j]) // already have it verbatim
			continue
		}
		for r, idx := range use {
			mulAddSlice(out, chunks[idx], mat[j][r])
		}
	}
	return block, nil
}

// Reconstruct fills in every nil chunk (data and parity) in place, given at
// least k present chunks. Used by memory-node recovery, which must rebuild
// the exact chunk a rejoining node is responsible for.
func (c *Code) Reconstruct(chunks [][]byte) error {
	block, err := c.Decode(chunks)
	if err != nil {
		return err
	}
	cs := len(block) / c.k
	full, err := c.Encode(block)
	if err != nil {
		return err
	}
	for i := range chunks {
		if chunks[i] == nil {
			chunks[i] = make([]byte, cs)
			copy(chunks[i], full[i])
		}
	}
	return nil
}
