// Package erasure implements Cauchy Reed–Solomon erasure coding over
// GF(2^8), the scheme Sift uses to shrink each memory node's share of the
// replicated memory (paper §5.1, citing the cm256 library).
//
// A Code with k data chunks and m parity chunks encodes a block of k·c bytes
// into k+m chunks of c bytes each; any k of the k+m chunks reconstruct the
// original block. Sift instantiates k = Fm+1, m = Fm, so a group of 2Fm+1
// memory nodes stores one chunk per node and tolerates Fm losses while using
// a factor of Fm+1 less memory than full replication.
package erasure

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d), under which 2 generates the multiplicative group.
// Multiplication and inversion go through log/exp tables built at init.

const fieldPoly = 0x11d

var (
	gfExp [512]byte // generator powers, doubled to avoid a mod in mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= fieldPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	// The word-parallel kernels' nibble-split and composed product tables
	// derive from the log/exp tables, so they are built here rather than in
	// a second init whose ordering would depend on file names.
	buildKernelTables()
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b. b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a non-zero element.
func gfInv(a byte) byte {
	if a == 0 {
		panic("erasure: zero has no inverse in GF(256)")
	}
	return gfExp[255-int(gfLog[a])]
}

// invertMatrix inverts an n×n matrix over GF(256) in place using
// Gauss–Jordan elimination. It returns false if the matrix is singular.
func invertMatrix(m [][]byte) bool {
	n := len(m)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Scale pivot row.
		inv := gfInv(aug[col][col])
		for c := 0; c < 2*n; c++ {
			aug[col][c] = gfMul(aug[col][c], inv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for c := 0; c < 2*n; c++ {
				aug[r][c] ^= gfMul(f, aug[col][c])
			}
		}
	}
	for i := range m {
		copy(m[i], aug[i][n:])
	}
	return true
}
