package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	mulAssoc := func(a, b, c byte) bool {
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(mulAssoc, nil); err != nil {
		t.Errorf("multiplication associativity: %v", err)
	}
	mulComm := func(a, b byte) bool { return gfMul(a, b) == gfMul(b, a) }
	if err := quick.Check(mulComm, nil); err != nil {
		t.Errorf("multiplication commutativity: %v", err)
	}
	distrib := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Errorf("distributivity: %v", err)
	}
	identity := func(a byte) bool { return gfMul(a, 1) == a }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("multiplicative identity: %v", err)
	}
}

func TestGFInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d, want 1", got, a)
		}
	}
}

func TestGFDiv(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfMul(gfDiv(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfDiv by zero should panic")
		}
	}()
	gfDiv(5, 0)
}

func TestGFInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfInv(0) should panic")
		}
	}()
	gfInv(0)
}

func TestMulSliceMatchesScalar(t *testing.T) {
	src := make([]byte, 257)
	for i := range src {
		src[i] = byte(i)
	}
	for _, c := range []byte{0, 1, 2, 37, 255} {
		dst := make([]byte, len(src))
		mulSlice(dst, src, c)
		for i := range src {
			if dst[i] != gfMul(src[i], c) {
				t.Fatalf("mulSlice c=%d i=%d: %d != %d", c, i, dst[i], gfMul(src[i], c))
			}
		}
	}
}

func TestInvertMatrixIdentity(t *testing.T) {
	m := [][]byte{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if !invertMatrix(m) {
		t.Fatal("identity should invert")
	}
	want := [][]byte{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for i := range m {
		if !bytes.Equal(m[i], want[i]) {
			t.Fatalf("row %d = %v", i, m[i])
		}
	}
}

func TestInvertMatrixSingular(t *testing.T) {
	m := [][]byte{{1, 2}, {1, 2}}
	if invertMatrix(m) {
		t.Fatal("singular matrix should not invert")
	}
}

func TestNewParams(t *testing.T) {
	if _, err := New(0, 1); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := New(1, -1); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("m=-1: %v", err)
	}
	if _, err := New(200, 100); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("k+m>256: %v", err)
	}
	if _, err := New(2, 1); err != nil {
		t.Fatalf("valid params: %v", err)
	}
}

func TestEncodeDecodeAllPatterns(t *testing.T) {
	// Sift geometries: k = Fm+1, m = Fm for Fm in 1..3.
	for fm := 1; fm <= 3; fm++ {
		k, m := fm+1, fm
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(fm)))
		block := make([]byte, k*64)
		rng.Read(block)
		chunks, err := c.Encode(block)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunks) != k+m {
			t.Fatalf("got %d chunks", len(chunks))
		}
		// Systematic: data chunks are the block.
		recomposed := bytes.Join(chunks[:k], nil)
		if !bytes.Equal(recomposed, block) {
			t.Fatal("data chunks are not systematic")
		}
		// Every way of erasing exactly m chunks must decode.
		n := k + m
		patterns := choose(n, m)
		for _, erased := range patterns {
			avail := make([][]byte, n)
			copy(avail, chunks)
			for _, e := range erased {
				avail[e] = nil
			}
			got, err := c.Decode(avail)
			if err != nil {
				t.Fatalf("Fm=%d erased=%v: %v", fm, erased, err)
			}
			if !bytes.Equal(got, block) {
				t.Fatalf("Fm=%d erased=%v: decoded block differs", fm, erased)
			}
		}
	}
}

// choose enumerates all size-m subsets of {0..n-1}.
func choose(n, m int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == m {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

func TestEncodeDecodeQuick(t *testing.T) {
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, raw []byte) bool {
		// Round block size up to a multiple of k.
		if len(raw) == 0 {
			raw = []byte{1}
		}
		pad := (3 - len(raw)%3) % 3
		block := append(append([]byte(nil), raw...), make([]byte, pad)...)
		chunks, err := c.Encode(block)
		if err != nil {
			return false
		}
		// Erase 2 random chunks.
		rng := rand.New(rand.NewSource(seed))
		i := rng.Intn(5)
		j := rng.Intn(5)
		avail := make([][]byte, 5)
		copy(avail, chunks)
		avail[i], avail[j] = nil, nil
		got, err := c.Decode(avail)
		return err == nil && bytes.Equal(got, block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNotEnoughChunks(t *testing.T) {
	c, _ := New(2, 1)
	block := []byte{1, 2, 3, 4}
	chunks, _ := c.Encode(block)
	chunks[0], chunks[1] = nil, nil // only parity left
	if _, err := c.Decode(chunks); !errors.Is(err, ErrNotEnoughChunks) {
		t.Fatalf("err = %v, want ErrNotEnoughChunks", err)
	}
}

func TestDecodeChunkSizeMismatch(t *testing.T) {
	c, _ := New(2, 1)
	chunks := [][]byte{{1, 2}, {3}, nil}
	if _, err := c.Decode(chunks); !errors.Is(err, ErrChunkSize) {
		t.Fatalf("err = %v, want ErrChunkSize", err)
	}
	if _, err := c.Decode([][]byte{{1}, {2}}); !errors.Is(err, ErrChunkSize) {
		t.Fatalf("wrong count: err = %v, want ErrChunkSize", err)
	}
}

func TestEncodeBadBlockLen(t *testing.T) {
	c, _ := New(3, 1)
	if _, err := c.Encode(make([]byte, 10)); !errors.Is(err, ErrShortBlock) {
		t.Fatalf("err = %v, want ErrShortBlock", err)
	}
}

func TestEncodeInto(t *testing.T) {
	c, _ := New(2, 2)
	block := []byte{10, 20, 30, 40}
	parity := [][]byte{make([]byte, 2), make([]byte, 2)}
	chunks, err := c.EncodeInto(block, parity)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.Encode(block)
	for i := range want {
		if !bytes.Equal(chunks[i], want[i]) {
			t.Fatalf("chunk %d: %v != %v", i, chunks[i], want[i])
		}
	}
	// Wrong parity buffer count / size.
	if _, err := c.EncodeInto(block, parity[:1]); !errors.Is(err, ErrChunkSize) {
		t.Fatalf("short parity list: %v", err)
	}
	if _, err := c.EncodeInto(block, [][]byte{make([]byte, 1), make([]byte, 2)}); !errors.Is(err, ErrChunkSize) {
		t.Fatalf("bad parity size: %v", err)
	}
}

func TestReconstruct(t *testing.T) {
	c, _ := New(3, 2)
	block := make([]byte, 3*16)
	rand.New(rand.NewSource(7)).Read(block)
	chunks, _ := c.Encode(block)
	orig := make([][]byte, len(chunks))
	for i, ch := range chunks {
		orig[i] = append([]byte(nil), ch...)
	}
	chunks[1], chunks[4] = nil, nil
	if err := c.Reconstruct(chunks); err != nil {
		t.Fatal(err)
	}
	for i := range chunks {
		if !bytes.Equal(chunks[i], orig[i]) {
			t.Fatalf("chunk %d not reconstructed correctly", i)
		}
	}
}

func TestStorageReductionFactor(t *testing.T) {
	// Sift's claim: per-node storage drops by Fm+1 versus full replication.
	for fm := 1; fm <= 3; fm++ {
		k := fm + 1
		c, _ := New(k, fm)
		block := make([]byte, k*128)
		cs, err := c.ChunkSize(len(block))
		if err != nil {
			t.Fatal(err)
		}
		if cs*(k) != len(block) {
			t.Fatalf("chunk size %d inconsistent", cs)
		}
		if got, want := len(block)/cs, fm+1; got != want {
			t.Fatalf("reduction factor %d, want %d", got, want)
		}
	}
}

func BenchmarkEncodeF1(b *testing.B) { benchEncode(b, 2, 1) }
func BenchmarkEncodeF2(b *testing.B) { benchEncode(b, 3, 2) }

func benchEncode(b *testing.B, k, m int) {
	c, _ := New(k, m)
	block := make([]byte, 1024-1024%k)
	rand.New(rand.NewSource(1)).Read(block)
	parity := make([][]byte, m)
	cs, _ := c.ChunkSize(len(block))
	for i := range parity {
		parity[i] = make([]byte, cs)
	}
	b.SetBytes(int64(len(block)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeInto(block, parity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeWithParity(b *testing.B) {
	c, _ := New(3, 2)
	block := make([]byte, 999)
	rand.New(rand.NewSource(1)).Read(block)
	chunks, _ := c.Encode(block)
	b.SetBytes(int64(len(block)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		avail := make([][]byte, len(chunks))
		copy(avail, chunks)
		avail[0], avail[2] = nil, nil
		if _, err := c.Decode(avail); err != nil {
			b.Fatal(err)
		}
	}
}
