package erasure

import (
	"encoding/binary"
	"runtime"
	"sync"
)

// Word-parallel GF(256) kernels (pure Go, no assembler).
//
// GF(256) multiplication by a fixed coefficient is linear over GF(2):
// c·b = c·(b & 0x0F) ⊕ c·(b & 0xF0). Each coefficient's 256-entry product
// table is therefore composed from two 16-entry nibble tables (mulNibLo /
// mulNibHi), and the hot loops process 8 bytes per step: load a 64-bit
// source word, gather the 8 product bytes through the composed table,
// reassemble them with shifts/ors, and fold the result into the
// destination with a single 64-bit xor. The per-byte bounds checks, the
// byte-wide read-modify-write of the destination, and most loop overhead
// of the old byte-at-a-time kernel disappear; the 8 gathers per word are
// independent loads from a 256-byte L1-resident table, so they pipeline.
//
// On top of the word kernels, the encoder is progressive/row-fused: each
// source chunk's word is loaded once and contributes to every parity row
// while it sits in a register (encodeK2M1, encodeK3M2), instead of one
// full pass over source and parity per matrix cell — see the comment above
// those kernels for the row-normalisation and double-byte-table tricks that
// cut the gather count further. Blocks at least shardMinBytes long are
// additionally range-sharded across a bounded worker pool
// (min(GOMAXPROCS, 8) workers).

var (
	// mulNibLo[c][n] = c·n and mulNibHi[c][n] = c·(n<<4): the low/high
	// 4-bit split tables every composed product table is built from.
	mulNibLo [256][16]byte
	mulNibHi [256][16]byte
	// mulTables[c] is the composed 256-entry product table for c.
	mulTables [256]*[256]byte
)

// buildKernelTables populates the nibble-split and composed product
// tables. Called from the gf256.go init after the log/exp tables exist.
func buildKernelTables() {
	for c := 0; c < 256; c++ {
		for n := 0; n < 16; n++ {
			mulNibLo[c][n] = gfMul(byte(c), byte(n))
			mulNibHi[c][n] = gfMul(byte(c), byte(n<<4))
		}
		t := new([256]byte)
		for b := 0; b < 256; b++ {
			t[b] = mulNibLo[c][b&0x0F] ^ mulNibHi[c][b>>4]
		}
		mulTables[c] = t
	}
}

// mulAddSlice computes dst[i] ^= c * src[i] for all i, 8 bytes per step.
// The gather is written as two independent 4-byte half-words so the
// reassembly forms two short dependency chains instead of one 8-deep one.
func mulAddSlice(dst, src []byte, c byte) {
	if c == 0 || len(src) == 0 {
		return
	}
	if c == 1 {
		xorSlice(dst, src)
		return
	}
	t := mulTables[c]
	d, s := dst, src
	for len(s) >= 8 && len(d) >= 8 {
		v := binary.LittleEndian.Uint64(s)
		lo := uint64(t[v&0xff]) |
			uint64(t[v>>8&0xff])<<8 |
			uint64(t[v>>16&0xff])<<16 |
			uint64(t[v>>24&0xff])<<24
		hi := uint64(t[v>>32&0xff]) |
			uint64(t[v>>40&0xff])<<8 |
			uint64(t[v>>48&0xff])<<16 |
			uint64(t[v>>56])<<24
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^(lo|hi<<32))
		s, d = s[8:], d[8:]
	}
	for i, b := range s {
		d[i] ^= t[b]
	}
}

// mulSlice computes dst[i] = c * src[i], 8 bytes per step.
func mulSlice(dst, src []byte, c byte) {
	if c == 1 {
		copy(dst, src)
		return
	}
	t := mulTables[c]
	d, s := dst, src
	for len(s) >= 8 && len(d) >= 8 {
		v := binary.LittleEndian.Uint64(s)
		lo := uint64(t[v&0xff]) |
			uint64(t[v>>8&0xff])<<8 |
			uint64(t[v>>16&0xff])<<16 |
			uint64(t[v>>24&0xff])<<24
		hi := uint64(t[v>>32&0xff]) |
			uint64(t[v>>40&0xff])<<8 |
			uint64(t[v>>48&0xff])<<16 |
			uint64(t[v>>56])<<24
		binary.LittleEndian.PutUint64(d, lo|hi<<32)
		s, d = s[8:], d[8:]
	}
	for i, b := range s {
		d[i] = t[b]
	}
}

// xorSlice computes dst[i] ^= src[i] (the c == 1 multiply), a word at a
// time.
func xorSlice(dst, src []byte) {
	d, s := dst, src
	for len(s) >= 8 && len(d) >= 8 {
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^binary.LittleEndian.Uint64(s))
		s, d = s[8:], d[8:]
	}
	for i, b := range s {
		d[i] ^= b
	}
}

// The fused encoders below exploit two structural tricks on top of the
// word kernels:
//
//   - Row normalisation. New scales every parity row by a non-zero
//     constant so that column 0 is all ones (row scaling preserves the
//     any-k-of-n property: a scaled square submatrix is invertible iff the
//     original is). Source chunk 0 then contributes to every parity row
//     with a plain 64-bit xor — no gathers at all.
//
//   - Double-byte tables. For the remaining coefficients a Code builds
//     [65536]-entry tables indexed by two adjacent source bytes, so one
//     gather yields two product bytes (tab16), or — for the k=3, m=2
//     shape — two product bytes for each of the two parity rows packed in
//     a uint32 (tab16x2). Gather count per source word drops from 8 to 4.

// newTab16 builds the double-byte product table for coefficient c: entry
// (y<<8 | x) holds c·x in the low byte and c·y in the high byte, matching
// little-endian lane order.
func newTab16(c byte) *[65536]uint16 {
	t := mulTables[c]
	u := new([65536]uint16)
	for y := 0; y < 256; y++ {
		hi := uint16(t[y]) << 8
		row := u[y<<8 : y<<8+256]
		for x := 0; x < 256; x++ {
			row[x] = uint16(t[x]) | hi
		}
	}
	return u
}

// newTab16x2 builds the double-byte, double-row table for one source
// column with row coefficients c0 and c1: the low uint16 is c0's product
// pair, the high uint16 is c1's.
func newTab16x2(c0, c1 byte) *[65536]uint32 {
	t0, t1 := mulTables[c0], mulTables[c1]
	u := new([65536]uint32)
	for y := 0; y < 256; y++ {
		hi := uint32(t0[y])<<8 | uint32(t1[y])<<24
		row := u[y<<8 : y<<8+256]
		for x := 0; x < 256; x++ {
			row[x] = uint32(t0[x]) | uint32(t1[x])<<16 | hi
		}
	}
	return u
}

// encodeK2M1 computes the single (normalised) parity row of a k=2 code:
// p = s0 ⊕ c1·s1. Per 8 output bytes: two source loads, four double-byte
// gathers, one store.
func encodeK2M1(p, s0, s1 []byte, u *[65536]uint16, t1 *[256]byte) {
	for len(p) >= 8 && len(s0) >= 8 && len(s1) >= 8 {
		a := binary.LittleEndian.Uint64(s0)
		b := binary.LittleEndian.Uint64(s1)
		r := uint64(u[b&0xffff]) |
			uint64(u[b>>16&0xffff])<<16 |
			uint64(u[b>>32&0xffff])<<32 |
			uint64(u[b>>48])<<48
		binary.LittleEndian.PutUint64(p, a^r)
		p, s0, s1 = p[8:], s0[8:], s1[8:]
	}
	for i := range p {
		p[i] = s0[i] ^ t1[s1[i]]
	}
}

// encodeK3M2 computes both (normalised) parity rows of a k=3, m=2 code in
// one pass: p0 = s0 ⊕ c01·s1 ⊕ c02·s2 and p1 = s0 ⊕ c11·s1 ⊕ c12·s2, with
// each gather serving two lanes of both rows.
func encodeK3M2(p0, p1, s0, s1, s2 []byte, u1, u2 *[65536]uint32, tabs [][]*[256]byte) {
	for len(p0) >= 8 && len(p1) >= 8 && len(s0) >= 8 && len(s1) >= 8 && len(s2) >= 8 {
		a := binary.LittleEndian.Uint64(s0)
		b := binary.LittleEndian.Uint64(s1)
		c := binary.LittleEndian.Uint64(s2)
		g0 := u1[b&0xffff] ^ u2[c&0xffff]
		g1 := u1[b>>16&0xffff] ^ u2[c>>16&0xffff]
		g2 := u1[b>>32&0xffff] ^ u2[c>>32&0xffff]
		g3 := u1[b>>48] ^ u2[c>>48]
		r0 := uint64(g0&0xffff) | uint64(g1&0xffff)<<16 | uint64(g2&0xffff)<<32 | uint64(g3&0xffff)<<48
		r1 := uint64(g0>>16) | uint64(g1>>16)<<16 | uint64(g2>>16)<<32 | uint64(g3>>16)<<48
		binary.LittleEndian.PutUint64(p0, a^r0)
		binary.LittleEndian.PutUint64(p1, a^r1)
		p0, p1 = p0[8:], p1[8:]
		s0, s1, s2 = s0[8:], s1[8:], s2[8:]
	}
	t01, t02 := tabs[0][1], tabs[0][2]
	t11, t12 := tabs[1][1], tabs[1][2]
	for i := range p0 {
		p0[i] = s0[i] ^ t01[s1[i]] ^ t02[s2[i]]
		p1[i] = s0[i] ^ t11[s1[i]] ^ t12[s2[i]]
	}
}

// Bounded worker pool for range-sharding large blocks. Work is submitted
// best-effort: when every worker is busy the caller simply runs the shard
// inline, so the pool can never deadlock and adds no latency when idle.

// shardMinBytes is the per-chunk length above which encode/reconstruct
// work is sharded across the pool.
const shardMinBytes = 32 << 10

var kernelPool struct {
	once    sync.Once
	workers int
	ch      chan func()
}

func poolStart() {
	kernelPool.workers = runtime.GOMAXPROCS(0)
	if kernelPool.workers > 8 {
		kernelPool.workers = 8
	}
	kernelPool.ch = make(chan func(), 4*kernelPool.workers)
	for i := 0; i < kernelPool.workers; i++ {
		go func() {
			for f := range kernelPool.ch {
				f()
			}
		}()
	}
}

// poolWorkers reports the kernel pool's worker count, starting the pool on
// first use.
func poolWorkers() int {
	kernelPool.once.Do(poolStart)
	return kernelPool.workers
}

// shardRanges invokes fn over [0, n) split into word-aligned sub-ranges,
// running shards on the kernel pool when n is large enough and workers are
// available, inline otherwise. fn must be safe to run concurrently on
// disjoint ranges (every kernel above is elementwise, so it is).
func shardRanges(n int, fn func(lo, hi int)) {
	w := poolWorkers()
	if n < shardMinBytes || w < 2 {
		fn(0, n)
		return
	}
	shards := w
	if shards > (n+shardMinBytes-1)/shardMinBytes {
		shards = (n + shardMinBytes - 1) / shardMinBytes
	}
	per := (n/shards + 7) &^ 7
	var wg sync.WaitGroup
	lo := 0
	for s := 0; s < shards && lo < n; s++ {
		hi := lo + per
		if s == shards-1 || hi > n {
			hi = n
		}
		if hi == n {
			fn(lo, hi) // caller contributes the final shard inline
			lo = hi
			break
		}
		l, h := lo, hi
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(l, h)
		}
		select {
		case kernelPool.ch <- task:
		default:
			task() // pool saturated: run inline
		}
		lo = hi
	}
	wg.Wait()
}
