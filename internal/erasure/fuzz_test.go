package erasure

import (
	"bytes"
	"testing"
)

// FuzzGFKernels differentially tests every word-parallel kernel against the
// scalar gfMul reference: arbitrary coefficients, arbitrary lengths
// (including lengths not divisible by 8, which exercise the scalar tails),
// and arbitrary slice alignment (the off parameter shifts the views so the
// word loops start at any byte offset).
func FuzzGFKernels(f *testing.F) {
	f.Add([]byte{}, byte(0), uint8(0))
	f.Add([]byte{1, 2, 3}, byte(1), uint8(1))
	f.Add(bytes.Repeat([]byte{0xa5, 0x3c, 0x7e}, 23), byte(0x57), uint8(5))
	f.Add(bytes.Repeat([]byte{0xff}, 64), byte(0x8e), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, c byte, off uint8) {
		src := data[int(off%8)*len(data)/8:]
		n := len(src)

		// mulSlice vs scalar.
		got := make([]byte, n)
		mulSlice(got, src, c)
		want := make([]byte, n)
		for i, b := range src {
			want[i] = gfMul(c, b)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("mulSlice(c=%#x, n=%d) diverges from scalar gfMul", c, n)
		}

		// mulAddSlice vs scalar, with a non-trivial initial destination.
		dst := make([]byte, n)
		for i := range dst {
			dst[i] = byte(i*37 + 11)
		}
		wantAdd := make([]byte, n)
		for i, b := range src {
			wantAdd[i] = dst[i] ^ gfMul(c, b)
		}
		mulAddSlice(dst, src, c)
		if !bytes.Equal(dst, wantAdd) {
			t.Fatalf("mulAddSlice(c=%#x, n=%d) diverges from scalar gfMul", c, n)
		}

		// xorSlice vs scalar.
		for i := range dst {
			dst[i] = byte(i * 13)
		}
		wantXor := make([]byte, n)
		for i, b := range src {
			wantXor[i] = byte(i*13) ^ b
		}
		xorSlice(dst, src)
		if !bytes.Equal(dst, wantXor) {
			t.Fatalf("xorSlice(n=%d) diverges from scalar xor", n)
		}

		// Fused encoders (encodeK2M1, encodeK3M2 via EncodeTo) vs the
		// scalar matrix-vector product over the same coefficient rows.
		for _, sh := range []struct{ k, m int }{{2, 1}, {3, 2}} {
			if n < sh.k {
				continue
			}
			code, err := New(sh.k, sh.m)
			if err != nil {
				t.Fatal(err)
			}
			block := src[:n-n%sh.k]
			cs := len(block) / sh.k
			chunks := make([][]byte, sh.k+sh.m)
			for i := 0; i < sh.m; i++ {
				chunks[sh.k+i] = make([]byte, cs)
			}
			if err := code.EncodeTo(block, chunks); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < sh.m; i++ {
				for x := 0; x < cs; x++ {
					var wantByte byte
					for j := 0; j < sh.k; j++ {
						wantByte ^= gfMul(code.parity[i][j], block[j*cs+x])
					}
					if chunks[sh.k+i][x] != wantByte {
						t.Fatalf("k=%d m=%d parity[%d][%d]: got %#x, want %#x",
							sh.k, sh.m, i, x, chunks[sh.k+i][x], wantByte)
					}
				}
			}
		}
	})
}
