package erasure

import (
	"fmt"
	"math/rand"
	"testing"
)

// Size-parameterized benchmarks. Block sizes span the shapes that matter in
// practice: 4 KiB (a page-ish logged write), 64 KiB (a large apply span —
// the acceptance gate for the word-parallel kernels), and 1 MiB (recovery
// copy chunks). Every benchmark reports MB/s (SetBytes on the logical block
// length) and allocs/op so numbers stay comparable across PRs.

var benchShapes = []struct{ k, m int }{{2, 1}, {3, 2}}

var benchBlockSizes = []struct {
	name string
	n    int
}{
	{"4KiB", 4 << 10},
	{"64KiB", 64 << 10},
	{"1MiB", 1 << 20},
}

func benchBlock(k, n int) []byte {
	block := make([]byte, n-n%k)
	rand.New(rand.NewSource(int64(n))).Read(block)
	return block
}

func BenchmarkEncode(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchBlockSizes {
			b.Run(fmt.Sprintf("F%d/%s", sh.m, sz.name), func(b *testing.B) {
				c, _ := New(sh.k, sh.m)
				block := benchBlock(sh.k, sz.n)
				cs, _ := c.ChunkSize(len(block))
				chunks := make([][]byte, sh.k+sh.m)
				for i := 0; i < sh.m; i++ {
					chunks[sh.k+i] = make([]byte, cs)
				}
				b.SetBytes(int64(len(block)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.EncodeTo(block, chunks); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchBlockSizes {
			b.Run(fmt.Sprintf("F%d/%s", sh.m, sz.name), func(b *testing.B) {
				c, _ := New(sh.k, sh.m)
				block := benchBlock(sh.k, sz.n)
				chunks, err := c.Encode(block)
				if err != nil {
					b.Fatal(err)
				}
				lost := append([]byte(nil), chunks[0]...)
				b.SetBytes(int64(len(block)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					chunks[0] = nil
					if err := c.Reconstruct(chunks); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if !bytesEqual(chunks[0], lost) {
					b.Fatal("reconstructed chunk differs")
				}
			})
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, sh := range benchShapes {
		for _, sz := range benchBlockSizes {
			b.Run(fmt.Sprintf("F%d/%s", sh.m, sz.name), func(b *testing.B) {
				c, _ := New(sh.k, sh.m)
				block := benchBlock(sh.k, sz.n)
				chunks, err := c.Encode(block)
				if err != nil {
					b.Fatal(err)
				}
				avail := make([][]byte, len(chunks))
				copy(avail, chunks)
				avail[0] = nil // force one parity chunk into the decode
				b.SetBytes(int64(len(block)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Decode(avail); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	for _, sz := range benchBlockSizes {
		b.Run(sz.name, func(b *testing.B) {
			src := benchBlock(1, sz.n)
			dst := make([]byte, len(src))
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mulAddSlice(dst, src, 0x57)
			}
		})
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
