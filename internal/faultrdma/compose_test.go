package faultrdma

import (
	"errors"
	"testing"
	"time"

	"github.com/repro/sift/internal/netsim"
	"github.com/repro/sift/internal/rdma"
)

// Schedule-composition regression tests. A fault class's schedule — which op
// ordinals it fires on, and with what parameters — must be a pure function
// of (controller seed, node name, op ordinal). Arming another fault class, or
// stacking a netsim latency model under the wrapper, must not shift it.
// Before per-class rng streams, all classes shared one rand.Rand and decide()
// short-circuited, so toggling SetDrop rewrote the SetDelay schedule and vice
// versa — chaos runs stopped reproducing the moment a second impairment was
// added.

const composeSeed = 424242

// dropSchedule records which of n decide() calls drop, under the given setup.
func dropSchedule(n int, setup func(*NodeFaults)) []bool {
	ctrl := NewController(composeSeed, 0)
	nf := ctrl.Node("m0")
	setup(nf)
	out := make([]bool, n)
	for i := range out {
		act, _ := nf.decide()
		out[i] = act == actDrop
	}
	return out
}

// delaySchedule records, per decide() call, the injected delay (0 = none).
func delaySchedule(n int, setup func(*NodeFaults)) []time.Duration {
	ctrl := NewController(composeSeed, 0)
	nf := ctrl.Node("m0")
	setup(nf)
	out := make([]time.Duration, n)
	for i := range out {
		act, d := nf.decide()
		if act == actDelay {
			out[i] = d
		}
	}
	return out
}

// TestDropScheduleInvariantUnderComposition: the drop schedule with only
// SetDrop armed must be identical when delay and duplicate classes are armed
// alongside it.
func TestDropScheduleInvariantUnderComposition(t *testing.T) {
	const n = 2000
	alone := dropSchedule(n, func(nf *NodeFaults) { nf.SetDrop(0.2) })
	composed := dropSchedule(n, func(nf *NodeFaults) {
		nf.SetDrop(0.2)
		nf.SetDelay(3*time.Millisecond, time.Millisecond, 0.5)
		nf.SetDuplicate(0.3)
	})
	// Composition masks drops only where another class also fired and won —
	// but drop has top priority, so the hit pattern must match exactly.
	for i := range alone {
		if alone[i] != composed[i] {
			t.Fatalf("op %d: drop=%v alone but %v composed — schedules diverged", i, alone[i], composed[i])
		}
	}
	fired := 0
	for _, d := range alone {
		if d {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("drop schedule empty; test proves nothing")
	}
}

// TestDelayScheduleInvariantUnderComposition: delay hit ordinals and jitter
// draws must not move when the duplicate class is armed. (Drop outranks
// delay, so it is left off here; composing it would legitimately mask delay
// actions on drop-winning ordinals.)
func TestDelayScheduleInvariantUnderComposition(t *testing.T) {
	const n = 2000
	setDelay := func(nf *NodeFaults) { nf.SetDelay(5*time.Millisecond, 2*time.Millisecond, 0.3) }
	alone := delaySchedule(n, setDelay)
	composed := delaySchedule(n, func(nf *NodeFaults) {
		setDelay(nf)
		nf.SetDuplicate(0.4)
	})
	for i := range alone {
		if alone[i] != composed[i] {
			t.Fatalf("op %d: delay %v alone vs %v composed — jitter stream perturbed", i, alone[i], composed[i])
		}
	}
}

// TestCorruptScheduleInvariantUnderComposition: the corruption plan (hit
// ordinals, flip positions, masks) draws from its own stream and must not
// shift when drop/delay/dup fire on the same ops.
func TestCorruptScheduleInvariantUnderComposition(t *testing.T) {
	const n = 1000
	plan := func(setup func(*NodeFaults)) [][]byteFlip {
		ctrl := NewController(composeSeed, 0)
		nf := ctrl.Node("m0")
		nf.SetCorrupt(0.25)
		setup(nf)
		out := make([][]byteFlip, n)
		for i := range out {
			op := &rdma.Op{Kind: rdma.OpWrite, Region: 1, Data: make([]byte, 128)}
			out[i] = nf.planCorruption(op)
			nf.decide() // advance the other streams as Submit would
		}
		return out
	}
	alone := plan(func(*NodeFaults) {})
	composed := plan(func(nf *NodeFaults) {
		nf.SetDrop(0.3)
		nf.SetDelay(time.Millisecond, time.Millisecond, 0.3)
		nf.SetDuplicate(0.3)
	})
	hits := 0
	for i := range alone {
		a, c := alone[i], composed[i]
		if len(a) != len(c) {
			t.Fatalf("op %d: %d flips alone vs %d composed", i, len(a), len(c))
		}
		for j := range a {
			if a[j] != c[j] {
				t.Fatalf("op %d flip %d: %+v alone vs %+v composed", i, j, a[j], c[j])
			}
		}
		if a != nil {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("corruption schedule empty; test proves nothing")
	}
}

// TestFaultScheduleInvariantUnderNetsimLatency runs real traffic through the
// wrapper twice — once over a zero-latency fabric, once over a fabric with a
// jittered latency model (the netsim side of a sustained-delay profile) —
// and asserts the injected drop outcomes land on identical op ordinals. This
// is the end-to-end guarantee chaos tests rely on: one seed, one schedule,
// regardless of which network profile is underneath.
func TestFaultScheduleInvariantUnderNetsimLatency(t *testing.T) {
	run := func(lat netsim.LatencyModel) []bool {
		fab := netsim.NewFabric(lat)
		n := rdma.NewNetwork(fab)
		node := rdma.NewNode("m0")
		node.Alloc(1, 4096, false)
		n.AddNode(node)
		ctrl := NewController(composeSeed, 0)
		ctrl.Node("m0").SetDrop(0.25)
		ctrl.Node("m0").SetDelay(200*time.Microsecond, 100*time.Microsecond, 0.25)
		v, err := ctrl.WrapDialer(func(node string) (rdma.Verbs, error) {
			return n.Dial("c0", node, rdma.DialOpts{})
		})("m0")
		if err != nil {
			t.Fatal(err)
		}
		defer v.Close()
		const ops = 300
		out := make([]bool, ops)
		for i := range out {
			out[i] = errors.Is(v.Write(1, 0, []byte{byte(i)}), ErrInjected)
		}
		return out
	}
	flat := run(nil)
	wan := run(netsim.NewJitterLatency(netsim.FixedLatency{Base: 100 * time.Microsecond}, 50*time.Microsecond, 7))
	for i := range flat {
		if flat[i] != wan[i] {
			t.Fatalf("op %d: dropped=%v on flat fabric, %v under latency model — schedules no longer stack deterministically", i, flat[i], wan[i])
		}
	}
}
