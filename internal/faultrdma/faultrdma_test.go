package faultrdma

import (
	"errors"
	"testing"
	"time"

	"github.com/repro/sift/internal/rdma"
)

// newTestNet builds an in-process network with one memory node "m0" holding
// a shared 4 KiB region 1.
func newTestNet() *rdma.Network {
	n := rdma.NewNetwork(nil)
	node := rdma.NewNode("m0")
	node.Alloc(1, 4096, false)
	n.AddNode(node)
	return n
}

func dialWrapped(t *testing.T, ctrl *Controller, n *rdma.Network) rdma.Verbs {
	t.Helper()
	dial := ctrl.WrapDialer(func(node string) (rdma.Verbs, error) {
		return n.Dial("c0", node, rdma.DialOpts{})
	})
	v, err := dial("m0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { v.Close() })
	return v
}

func TestPassthrough(t *testing.T) {
	n := newTestNet()
	ctrl := NewController(1, 100*time.Millisecond)
	v := dialWrapped(t, ctrl, n)

	if err := v.Write(1, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := v.Read(1, 0, buf); err != nil || buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("read back %v, err %v", buf, err)
	}
	old, err := v.CompareAndSwap(1, 8, 0, 42)
	if err != nil || old != 0 {
		t.Fatalf("cas old=%d err=%v", old, err)
	}
}

func TestDropAlways(t *testing.T) {
	n := newTestNet()
	ctrl := NewController(1, 100*time.Millisecond)
	v := dialWrapped(t, ctrl, n)
	ctrl.Node("m0").SetDrop(1.0)

	if err := v.Write(1, 0, []byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if st := ctrl.Node("m0").Stats(); st.Drops == 0 {
		t.Fatal("drop not counted")
	}
	ctrl.Node("m0").SetDrop(0)
	if err := v.Write(1, 0, []byte{1}); err != nil {
		t.Fatalf("write after clearing drop: %v", err)
	}
}

// TestHangDeadlineAndResume is the gray-node schedule in miniature: ops
// against a hung node complete with rdma.ErrDeadline at the deadline, and on
// Resume the parked work executes late — visible in memory afterwards.
func TestHangDeadlineAndResume(t *testing.T) {
	net := newTestNet()
	const deadline = 30 * time.Millisecond
	ctrl := NewController(1, deadline)
	v := dialWrapped(t, ctrl, net)

	ctrl.Node("m0").Hang()
	start := time.Now()
	if err := v.Write(1, 0, []byte{7}); !errors.Is(err, rdma.ErrDeadline) {
		t.Fatalf("hung write: got %v, want ErrDeadline", err)
	}
	if waited := time.Since(start); waited > 10*deadline {
		t.Fatalf("hung write blocked %v, want ~%v", waited, deadline)
	}
	if st := ctrl.Node("m0").Stats(); st.Parked == 0 {
		t.Fatal("park not counted")
	}

	ctrl.Node("m0").Resume()
	// The late shadow executes on Resume; the byte must land.
	deadlineAt := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1)
		if err := v.Read(1, 0, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] == 7 {
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatal("parked write never executed after Resume")
		}
		time.Sleep(time.Millisecond)
	}
	if st := ctrl.Node("m0").Stats(); st.ParkedLate == 0 {
		t.Fatal("late execution not counted")
	}
}

// TestHangWithoutDeadlineBlocksUntilResume checks zero-deadline semantics:
// the op parks indefinitely and completes only on Resume.
func TestHangWithoutDeadlineBlocksUntilResume(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(1, 0)
	v := dialWrapped(t, ctrl, net)

	ctrl.Node("m0").Hang()
	done := make(chan error, 1)
	go func() { done <- v.Write(1, 0, []byte{9}) }()
	select {
	case err := <-done:
		t.Fatalf("hung write completed early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	ctrl.Node("m0").Resume()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("resumed write: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write still blocked after Resume")
	}
}

func TestDelayPastDeadline(t *testing.T) {
	net := newTestNet()
	const deadline = 25 * time.Millisecond
	ctrl := NewController(1, deadline)
	v := dialWrapped(t, ctrl, net)

	ctrl.Node("m0").SetDelay(4*deadline, 0, 1.0)
	if err := v.Write(1, 0, []byte{5}); !errors.Is(err, rdma.ErrDeadline) {
		t.Fatalf("delayed write: got %v, want ErrDeadline", err)
	}
	// The shadow executes at the full delay regardless.
	ctrl.Node("m0").SetDelay(0, 0, 0)
	deadlineAt := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1)
		if err := v.Read(1, 0, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] == 5 {
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatal("delayed write never landed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDelayUnderDeadline(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(1, time.Second)
	v := dialWrapped(t, ctrl, net)
	ctrl.Node("m0").SetDelay(5*time.Millisecond, 5*time.Millisecond, 1.0)
	if err := v.Write(1, 0, []byte{3}); err != nil {
		t.Fatalf("short delay should succeed: %v", err)
	}
}

func TestDuplicate(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(1, time.Second)
	v := dialWrapped(t, ctrl, net)
	ctrl.Node("m0").SetDuplicate(1.0)
	if err := v.Write(1, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if st := ctrl.Node("m0").Stats(); st.Duplicates == 0 {
		t.Fatal("duplicate not counted")
	}
}

func TestFailStopAfter(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(1, time.Second)
	v := dialWrapped(t, ctrl, net)
	ctrl.Node("m0").FailStopAfter(3)
	var firstErr error
	for i := 0; i < 5; i++ {
		if err := v.Write(1, 0, []byte{byte(i)}); err != nil && firstErr == nil {
			firstErr = err
			if i != 2 {
				t.Fatalf("fail-stop fired at op %d, want op 2", i)
			}
		}
	}
	if !errors.Is(firstErr, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", firstErr)
	}
	// Dials to a fail-stopped node fail too.
	dial := ctrl.WrapDialer(func(node string) (rdma.Verbs, error) {
		return net.Dial("c1", node, rdma.DialOpts{})
	})
	if _, err := dial("m0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial to fail-stopped node: got %v, want ErrInjected", err)
	}
}

func TestFailDials(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(1, time.Second)
	ctrl.Node("m0").FailDials(2)
	dial := ctrl.WrapDialer(func(node string) (rdma.Verbs, error) {
		return net.Dial("c0", node, rdma.DialOpts{})
	})
	for i := 0; i < 2; i++ {
		if _, err := dial("m0"); !errors.Is(err, ErrInjected) {
			t.Fatalf("dial %d: got %v, want ErrInjected", i, err)
		}
	}
	v, err := dial("m0")
	if err != nil {
		t.Fatalf("third dial: %v", err)
	}
	v.Close()
	if st := ctrl.Node("m0").Stats(); st.DialsFailed != 2 {
		t.Fatalf("DialsFailed = %d, want 2", st.DialsFailed)
	}
}

// TestDeterminism re-runs an identical probabilistic schedule and expects an
// identical outcome sequence for the same seed.
func TestDeterminism(t *testing.T) {
	run := func() []bool {
		net := newTestNet()
		ctrl := NewController(42, time.Second)
		v := dialWrapped(t, ctrl, net)
		ctrl.Node("m0").SetDrop(0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = v.Write(1, 0, []byte{byte(i)}) == nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestCloseCompletesParked ensures a hung connection's waiters are released
// with ErrClosed on Close, not leaked.
func TestCloseCompletesParked(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(1, 0) // no deadline: parked ops wait for Close
	dial := ctrl.WrapDialer(func(node string) (rdma.Verbs, error) {
		return net.Dial("c0", node, rdma.DialOpts{})
	})
	v, err := dial("m0")
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Node("m0").Hang()
	done := make(chan error, 1)
	go func() { done <- v.Write(1, 0, []byte{1}) }()
	time.Sleep(10 * time.Millisecond)
	v.Close()
	select {
	case err := <-done:
		if !errors.Is(err, rdma.ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked op leaked across Close")
	}
}

// TestCorruptRead checks read-path corruption: stored memory is clean, but
// the bytes surfaced to the caller are flipped, and the event is counted.
func TestCorruptRead(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(7, time.Second)
	v := dialWrapped(t, ctrl, net)

	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := v.Write(1, 0, want); err != nil {
		t.Fatal(err)
	}
	ctrl.Node("m0").SetCorrupt(1.0)
	buf := make([]byte, len(want))
	if err := v.Read(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) == string(want) {
		t.Fatal("read with corruptP=1 returned clean bytes")
	}
	if st := ctrl.Node("m0").Stats(); st.Corrupts == 0 {
		t.Fatal("corruption not counted")
	}
	// Stored memory was never touched: a clean read sees the original.
	ctrl.Node("m0").SetCorrupt(0)
	if err := v.Read(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Fatalf("stored bytes damaged by read corruption: %v", buf)
	}
}

// TestCorruptWrite checks write-path corruption: the payload lands flipped
// in remote memory while the submitter's own buffer is untouched.
func TestCorruptWrite(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(7, time.Second)
	v := dialWrapped(t, ctrl, net)

	ctrl.Node("m0").SetCorrupt(1.0)
	payload := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	orig := append([]byte(nil), payload...)
	if err := v.Write(1, 64, payload); err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(orig) {
		t.Fatal("submitter's buffer was mutated")
	}
	ctrl.Node("m0").SetCorrupt(0)
	buf := make([]byte, len(payload))
	if err := v.Read(1, 64, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) == string(orig) {
		t.Fatal("write with corruptP=1 stored clean bytes")
	}
	if st := ctrl.Node("m0").Stats(); st.Corrupts == 0 {
		t.Fatal("corruption not counted")
	}
}

// TestCorruptRegionScoping confirms SetCorruptRegions limits damage to the
// listed regions; CAS is never corrupted regardless.
func TestCorruptRegionScoping(t *testing.T) {
	net := newTestNet()
	ctrl := NewController(7, time.Second)
	v := dialWrapped(t, ctrl, net)

	ctrl.Node("m0").SetCorrupt(1.0)
	ctrl.Node("m0").SetCorruptRegions(99) // a region this node doesn't serve
	want := []byte{4, 3, 2, 1}
	if err := v.Write(1, 0, want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(want))
	if err := v.Read(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(want) {
		t.Fatalf("corruption escaped its region scope: %v", buf)
	}
	if st := ctrl.Node("m0").Stats(); st.Corrupts != 0 {
		t.Fatalf("Corrupts = %d, want 0", st.Corrupts)
	}
	// Widen back to all regions: CAS must still pass through untouched.
	ctrl.Node("m0").SetCorruptRegions()
	if old, err := v.CompareAndSwap(1, 1024, 0, 77); err != nil || old != 0 {
		t.Fatalf("cas under corruption: old=%d err=%v", old, err)
	}
	if got, err := v.CompareAndSwap(1, 1024, 77, 78); err != nil || got != 77 {
		t.Fatalf("cas word corrupted: old=%d err=%v", got, err)
	}
}
