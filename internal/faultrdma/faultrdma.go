// Package faultrdma wraps any rdma transport with composable, deterministic
// fault injection. It implements rdma.Verbs (and rdma.Submitter) over an
// inner connection and interposes on every operation and dial, injecting:
//
//   - drop: the operation fails immediately with ErrInjected, as if the
//     reliable connection exhausted its retransmissions (NAK).
//   - delay: the operation executes after a (jittered) delay. If the delay
//     exceeds the controller's op deadline, the submitter sees ErrDeadline
//     at the deadline while the operation still executes late — a gray peer
//     that did the work but never acknowledged in time.
//   - hang: the node stops acknowledging entirely. Operations park; with an
//     op deadline they complete with rdma.ErrDeadline, and when the node
//     resumes the parked work executes late against the inner transport.
//   - duplicate: the operation executes twice (at-least-once delivery after
//     a spurious retransmit); the submitter sees one completion.
//   - fail-stop: after N operations the node crashes — every subsequent
//     operation and dial fails fast.
//   - flaky dial: the next K dials to the node fail.
//
// Faults are keyed by remote node name, so one Controller drives a whole
// cluster's schedule. Each fault class on each node draws from its own
// rand.Rand seeded from (controller seed, node name, class), and every armed
// class rolls exactly once per operation, so a class's fault schedule is a
// pure function of the seed and the node's operation order — reproducible,
// and invariant under composing other fault classes or netsim latency
// models onto the same run.
//
// Unlike netsim.Fabric's Kill/Partition (which sever connectivity and
// surface ErrUnreachable), faultrdma models the failures a connected
// transport cannot see from liveness alone — the gray failures Sift's
// deadline/suspicion machinery exists to catch. The wrapper composes with
// both the in-process and TCP transports.
package faultrdma

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/rdma"
)

// ErrInjected is the base error for injected transport faults (drop,
// fail-stop, refused dial). Deadline-shaped faults surface rdma.ErrDeadline
// instead, since that is what a real transport would report.
var ErrInjected = errors.New("faultrdma: injected fault")

// maxParked bounds the ops parked on one hung connection. Beyond it,
// further ops fail fast — mirroring the TCP transport's expired-ID cap.
const maxParked = 4096

// Controller owns the fault schedule for a set of nodes.
type Controller struct {
	seed       int64
	opDeadline time.Duration

	mu    sync.Mutex
	nodes map[string]*NodeFaults
}

// NewController creates a controller. opDeadline bounds how long a parked
// or delayed operation may keep its submitter waiting; it should match the
// DialOpts.OpDeadline of the wrapped transport. Zero means injected hangs
// block until the node resumes or the connection closes.
func NewController(seed int64, opDeadline time.Duration) *Controller {
	return &Controller{seed: seed, opDeadline: opDeadline, nodes: make(map[string]*NodeFaults)}
}

// Node returns the fault state for a node, creating it on first use.
func (c *Controller) Node(name string) *NodeFaults {
	c.mu.Lock()
	defer c.mu.Unlock()
	nf := c.nodes[name]
	if nf == nil {
		h := fnv.New64a()
		h.Write([]byte(name))
		base := c.seed ^ int64(h.Sum64())
		nf = &NodeFaults{
			name:       name,
			dropRng:    rand.New(rand.NewSource(base ^ saltDrop)),
			delayRng:   rand.New(rand.NewSource(base ^ saltDelay)),
			dupRng:     rand.New(rand.NewSource(base ^ saltDup)),
			corruptRng: rand.New(rand.NewSource(base ^ saltCorrupt)),
			conns:      make(map[*conn]struct{}),
		}
		c.nodes[name] = nf
	}
	return nf
}

// Per-class rng stream salts. Each fault class draws from its own stream
// seeded (controller seed, node name, class), and decide() draws exactly one
// roll per armed class per operation regardless of which action wins. A
// class's fault schedule is therefore a pure function of (seed, op ordinal):
// arming or disarming another class — or composing with a netsim latency
// model — cannot shift where its faults land.
const (
	saltDrop    int64 = 0x64726f70 // "drop"
	saltDelay   int64 = 0x64656c61 // "dela"
	saltDup     int64 = 0x00647570 // "dup"
	saltCorrupt int64 = 0x636f7272 // "corr"
)

// Wrap interposes the node's fault schedule on an established connection.
func (c *Controller) Wrap(node string, inner rdma.Verbs) rdma.Verbs {
	nf := c.Node(node)
	fc := &conn{nf: nf, inner: inner, opDeadline: c.opDeadline}
	fc.sub, _ = inner.(rdma.Submitter)
	nf.mu.Lock()
	nf.conns[fc] = struct{}{}
	nf.mu.Unlock()
	return fc
}

// WrapDialer interposes on a node-keyed dial function: dials hit the flaky
// dial / fail-stop schedule, and successful connections are wrapped.
func (c *Controller) WrapDialer(dial func(node string) (rdma.Verbs, error)) func(node string) (rdma.Verbs, error) {
	return func(node string) (rdma.Verbs, error) {
		if err := c.Node(node).dialFault(); err != nil {
			return nil, err
		}
		inner, err := dial(node)
		if err != nil {
			return nil, err
		}
		return c.Wrap(node, inner), nil
	}
}

// FaultStats counts injected faults on one node.
type FaultStats struct {
	Drops       uint64
	Delays      uint64
	Parked      uint64 // ops parked on a hung connection
	ParkedLate  uint64 // parked/delayed ops that executed after ErrDeadline
	Duplicates  uint64
	FailStopped uint64
	DialsFailed uint64
	Corrupts    uint64 // ops whose payload bytes were silently flipped
}

// NodeFaults is the mutable fault schedule for one node. All setters are
// safe for concurrent use with in-flight traffic.
type NodeFaults struct {
	name string

	mu          sync.Mutex
	dropRng     *rand.Rand
	delayRng    *rand.Rand
	dupRng      *rand.Rand
	corruptRng  *rand.Rand
	hang        bool
	dropP       float64
	delayP      float64
	delay       time.Duration
	delayJitter time.Duration
	dupP        float64
	corruptP    float64
	corruptIn   map[rdma.RegionID]bool // nil = every region
	failAfter   int64                  // ops until fail-stop; 0 = disarmed
	failStopped bool
	failDials   int
	conns       map[*conn]struct{}

	drops       atomic.Uint64
	delays      atomic.Uint64
	parked      atomic.Uint64
	parkedLate  atomic.Uint64
	dups        atomic.Uint64
	failStops   atomic.Uint64
	dialsFailed atomic.Uint64
	corrupts    atomic.Uint64
}

// Stats snapshots the node's injected-fault counters.
func (nf *NodeFaults) Stats() FaultStats {
	return FaultStats{
		Drops:       nf.drops.Load(),
		Delays:      nf.delays.Load(),
		Parked:      nf.parked.Load(),
		ParkedLate:  nf.parkedLate.Load(),
		Duplicates:  nf.dups.Load(),
		FailStopped: nf.failStops.Load(),
		DialsFailed: nf.dialsFailed.Load(),
		Corrupts:    nf.corrupts.Load(),
	}
}

// Hang makes the node stop acknowledging: in-flight and future operations
// park until Resume (completing with rdma.ErrDeadline first if the
// controller has an op deadline). The connection stays established — this
// is the canonical gray failure.
func (nf *NodeFaults) Hang() {
	nf.mu.Lock()
	nf.hang = true
	nf.mu.Unlock()
}

// Resume lets a hung node proceed: parked operations execute, in parked
// order, against the inner transport — including ones whose submitters
// already saw ErrDeadline (late execution).
func (nf *NodeFaults) Resume() {
	nf.mu.Lock()
	nf.hang = false
	conns := make([]*conn, 0, len(nf.conns))
	for fc := range nf.conns {
		conns = append(conns, fc)
	}
	nf.mu.Unlock()
	for _, fc := range conns {
		fc.releaseParked()
	}
}

// SetDrop drops each operation with probability p.
func (nf *NodeFaults) SetDrop(p float64) {
	nf.mu.Lock()
	nf.dropP = p
	nf.mu.Unlock()
}

// SetDelay delays each operation, with probability p, by d plus a uniform
// jitter in [0, jitter).
func (nf *NodeFaults) SetDelay(d, jitter time.Duration, p float64) {
	nf.mu.Lock()
	nf.delay, nf.delayJitter, nf.delayP = d, jitter, p
	nf.mu.Unlock()
}

// SetDuplicate executes each operation twice with probability p.
func (nf *NodeFaults) SetDuplicate(p float64) {
	nf.mu.Lock()
	nf.dupP = p
	nf.mu.Unlock()
}

// SetCorrupt silently flips 1–3 payload bytes of each READ response and
// each stored WRITE payload with probability p, modelling memory or NIC
// bit rot on the node. The operation still reports success — corruption is
// only detectable end-to-end (checksums, cross-replica comparison). CAS
// words are never corrupted: a flipped heartbeat would model a Byzantine
// election participant, which is outside Sift's fault model.
func (nf *NodeFaults) SetCorrupt(p float64) {
	nf.mu.Lock()
	nf.corruptP = p
	nf.mu.Unlock()
}

// SetCorruptRegions restricts SetCorrupt to the given regions (no call, or
// a call with no arguments, means every region). Tests use this to confine
// bit rot to the replicated data region while keeping the admin/election
// plane honest.
func (nf *NodeFaults) SetCorruptRegions(regions ...rdma.RegionID) {
	nf.mu.Lock()
	if len(regions) == 0 {
		nf.corruptIn = nil
	} else {
		nf.corruptIn = make(map[rdma.RegionID]bool, len(regions))
		for _, r := range regions {
			nf.corruptIn[r] = true
		}
	}
	nf.mu.Unlock()
}

// byteFlip is one planned corruption: XOR mask into payload byte pos.
type byteFlip struct {
	pos  int
	mask byte
}

// planCorruption decides, under the schedule lock, whether and how to
// corrupt op's payload. It returns nil to leave the op untouched.
func (nf *NodeFaults) planCorruption(op *rdma.Op) []byteFlip {
	if op.Kind != rdma.OpRead && op.Kind != rdma.OpWrite {
		return nil
	}
	if len(op.Data) == 0 {
		return nil
	}
	nf.mu.Lock()
	defer nf.mu.Unlock()
	if nf.corruptP <= 0 || nf.corruptRng.Float64() >= nf.corruptP {
		return nil
	}
	if nf.corruptIn != nil && !nf.corruptIn[op.Region] {
		return nil
	}
	flips := make([]byteFlip, 1+nf.corruptRng.Intn(3))
	for i := range flips {
		flips[i] = byteFlip{pos: nf.corruptRng.Intn(len(op.Data)), mask: byte(1 + nf.corruptRng.Intn(255))}
	}
	return flips
}

// FailStopAfter crashes the node after n more operations: the n-th and all
// later operations (and dials) fail fast. n <= 0 disarms.
func (nf *NodeFaults) FailStopAfter(n int) {
	nf.mu.Lock()
	if n <= 0 {
		nf.failAfter, nf.failStopped = 0, false
	} else {
		nf.failAfter = int64(n)
	}
	nf.mu.Unlock()
}

// FailDials makes the next n dials to the node fail.
func (nf *NodeFaults) FailDials(n int) {
	nf.mu.Lock()
	nf.failDials = n
	nf.mu.Unlock()
}

func (nf *NodeFaults) dialFault() error {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	if nf.failStopped {
		return fmt.Errorf("%w: %s fail-stopped", ErrInjected, nf.name)
	}
	if nf.failDials > 0 {
		nf.failDials--
		nf.dialsFailed.Add(1)
		return fmt.Errorf("%w: dial %s refused", ErrInjected, nf.name)
	}
	return nil
}

// Injection decisions.
const (
	actForward = iota
	actDrop
	actDelay
	actHang
	actDup
	actFailStop
)

func (nf *NodeFaults) decide() (act int, delay time.Duration) {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	if nf.failStopped {
		return actFailStop, 0
	}
	if nf.failAfter > 0 {
		nf.failAfter--
		if nf.failAfter == 0 {
			nf.failStopped = true
			nf.failStops.Add(1)
			return actFailStop, 0
		}
	}
	if nf.hang {
		return actHang, 0
	}
	// Draw every armed class before picking a winner: each stream advances
	// once per op whether or not its class acts, so a class's schedule never
	// shifts when another class is toggled mid-run.
	dropHit := nf.dropP > 0 && nf.dropRng.Float64() < nf.dropP
	delayHit := nf.delayP > 0 && nf.delayRng.Float64() < nf.delayP
	var d time.Duration
	if delayHit {
		d = nf.delay
		if nf.delayJitter > 0 {
			d += time.Duration(nf.delayRng.Int63n(int64(nf.delayJitter)))
		}
	}
	dupHit := nf.dupP > 0 && nf.dupRng.Float64() < nf.dupP
	switch {
	case dropHit:
		return actDrop, 0
	case delayHit:
		return actDelay, d
	case dupHit:
		return actDup, 0
	}
	return actForward, 0
}

func (nf *NodeFaults) unregister(fc *conn) {
	nf.mu.Lock()
	delete(nf.conns, fc)
	nf.mu.Unlock()
}

// parkedOp is one operation held on a hung connection. Once its deadline
// fires, the submitter's Op is completed with ErrDeadline and only the
// shadow clone remains, to be executed late on resume.
type parkedOp struct {
	op       *rdma.Op
	shadow   *rdma.Op // carries copied buffers; survives the submitter's Op
	timedOut bool
	timer    *time.Timer
}

// conn is one fault-injected connection.
type conn struct {
	nf         *NodeFaults
	inner      rdma.Verbs
	sub        rdma.Submitter // nil when inner is blocking-only
	opDeadline time.Duration

	mu     sync.Mutex
	closed bool
	park   []*parkedOp
}

var (
	_ rdma.Submitter       = (*conn)(nil)
	_ rdma.PipelineStatser = (*conn)(nil)
)

// Submit implements rdma.Submitter. It never blocks: fault handling either
// completes the op, forwards it, or parks it.
func (c *conn) Submit(op *rdma.Op) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		op.Complete(rdma.ErrClosed)
		return
	}
	c.mu.Unlock()

	if flips := c.nf.planCorruption(op); flips != nil {
		op = c.corruptOp(op, flips)
	}
	act, delay := c.nf.decide()
	switch act {
	case actFailStop:
		op.Complete(fmt.Errorf("%w: %s fail-stopped", ErrInjected, c.nf.name))
	case actDrop:
		c.nf.drops.Add(1)
		op.Complete(fmt.Errorf("%w: %s dropped %s", ErrInjected, c.nf.name, kindName(op.Kind)))
	case actDelay:
		c.nf.delays.Add(1)
		c.delayOp(op, delay)
	case actHang:
		c.parkOp(op)
	case actDup:
		c.nf.dups.Add(1)
		shadow := cloneOp(op)
		c.forward(op)
		c.forward(shadow)
	default:
		c.forward(op)
	}
}

// corruptOp applies planned byte flips to op. A WRITE is replaced by a
// shadow carrying a flipped copy of the payload — the submitter's buffer
// may be pooled and must not be mutated — whose completion resolves the
// original op, so the store lands corrupted while the submitter sees clean
// success. A READ has its completion wrapped to flip response bytes after a
// successful transfer.
func (c *conn) corruptOp(op *rdma.Op, flips []byteFlip) *rdma.Op {
	switch op.Kind {
	case rdma.OpWrite:
		shadow := cloneOp(op)
		for _, f := range flips {
			shadow.Data[f.pos] ^= f.mask
		}
		shadow.Done = func(s *rdma.Op) { op.Complete(s.Err) }
		c.nf.corrupts.Add(1)
		return shadow
	case rdma.OpRead:
		prev := op.Done
		if prev == nil {
			// Completion flows through the transport's internal channel,
			// which a wrapper cannot interpose on; leave the op alone.
			return op
		}
		op.Done = func(o *rdma.Op) {
			if o.Err == nil {
				for _, f := range flips {
					o.Data[f.pos] ^= f.mask
				}
				c.nf.corrupts.Add(1)
			}
			if prev != nil {
				prev(o)
			}
		}
		return op
	}
	return op
}

// delayOp executes op after d. When d overruns the op deadline the
// submitter is released with ErrDeadline at the deadline and a shadow
// executes the real work at d (it happened, just too late to matter).
func (c *conn) delayOp(op *rdma.Op, d time.Duration) {
	if c.opDeadline > 0 && d >= c.opDeadline {
		shadow := cloneOp(op)
		time.AfterFunc(c.opDeadline, func() { op.Complete(rdma.ErrDeadline) })
		time.AfterFunc(d, func() {
			c.nf.parkedLate.Add(1)
			c.forward(shadow)
		})
		return
	}
	time.AfterFunc(d, func() { c.forward(op) })
}

// parkOp holds op while the node is hung.
func (c *conn) parkOp(op *rdma.Op) {
	p := &parkedOp{op: op}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		op.Complete(rdma.ErrClosed)
		return
	}
	if len(c.park) >= maxParked {
		c.mu.Unlock()
		op.Complete(fmt.Errorf("%w: %s parked-op overflow", ErrInjected, c.nf.name))
		return
	}
	c.park = append(c.park, p)
	if c.opDeadline > 0 {
		p.shadow = cloneOp(op)
		p.timer = time.AfterFunc(c.opDeadline, func() { c.timeoutParked(p) })
	}
	c.mu.Unlock()
	c.nf.parked.Add(1)
}

// timeoutParked releases a parked op's submitter with ErrDeadline; the
// shadow stays parked for late execution.
func (c *conn) timeoutParked(p *parkedOp) {
	c.mu.Lock()
	if p.timedOut || p.op == nil {
		c.mu.Unlock()
		return
	}
	p.timedOut = true
	op := p.op
	p.op = nil
	c.mu.Unlock()
	op.Complete(rdma.ErrDeadline)
}

// releaseParked executes every parked op against the inner transport, in
// parked order. Ops whose submitters already timed out run through their
// shadows.
func (c *conn) releaseParked() {
	c.mu.Lock()
	park := c.park
	c.park = nil
	c.mu.Unlock()
	for _, p := range park {
		if p.timer != nil {
			p.timer.Stop()
		}
		c.mu.Lock()
		timedOut := p.timedOut
		op := p.op
		p.op = nil
		c.mu.Unlock()
		if timedOut || op == nil {
			if p.shadow != nil {
				c.nf.parkedLate.Add(1)
				c.forward(p.shadow)
			}
			continue
		}
		c.forward(op)
	}
}

// forward hands op to the inner transport.
func (c *conn) forward(op *rdma.Op) {
	if c.sub != nil {
		c.sub.Submit(op)
		return
	}
	go func() {
		var err error
		switch op.Kind {
		case rdma.OpRead:
			err = c.inner.Read(op.Region, op.Offset, op.Data)
		case rdma.OpWrite:
			err = c.inner.Write(op.Region, op.Offset, op.Data)
		case rdma.OpCAS:
			op.Old, err = c.inner.CompareAndSwap(op.Region, op.Offset, op.Expect, op.Swap)
		default:
			err = fmt.Errorf("rdma: unknown op kind %d", op.Kind)
		}
		op.Complete(err)
	}()
}

// do submits op and waits, implementing the blocking Verbs methods. Waits
// are bounded by the controller's op deadline (hangs complete via the
// parked-op timer), so a blocking caller never wedges on a gray node when
// a deadline is configured.
func (c *conn) do(op *rdma.Op) error {
	ch := make(chan struct{})
	op.Done = func(*rdma.Op) { close(ch) }
	c.Submit(op)
	<-ch
	return op.Err
}

// Read implements rdma.Verbs.
func (c *conn) Read(region rdma.RegionID, offset uint64, buf []byte) error {
	return c.do(&rdma.Op{Kind: rdma.OpRead, Region: region, Offset: offset, Data: buf})
}

// Write implements rdma.Verbs.
func (c *conn) Write(region rdma.RegionID, offset uint64, data []byte) error {
	return c.do(&rdma.Op{Kind: rdma.OpWrite, Region: region, Offset: offset, Data: data})
}

// CompareAndSwap implements rdma.Verbs.
func (c *conn) CompareAndSwap(region rdma.RegionID, offset uint64, expect, swap uint64) (uint64, error) {
	op := &rdma.Op{Kind: rdma.OpCAS, Region: region, Offset: offset, Expect: expect, Swap: swap}
	if err := c.do(op); err != nil {
		return 0, err
	}
	return op.Old, nil
}

// Close implements rdma.Verbs. Parked submitters complete with ErrClosed;
// their shadows are dropped (the node is gone, late execution is moot).
func (c *conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	park := c.park
	c.park = nil
	c.mu.Unlock()
	for _, p := range park {
		if p.timer != nil {
			p.timer.Stop()
		}
		c.mu.Lock()
		op := p.op
		p.op = nil
		c.mu.Unlock()
		if op != nil {
			op.Complete(rdma.ErrClosed)
		}
	}
	c.nf.unregister(c)
	return c.inner.Close()
}

// PipelineStats implements rdma.PipelineStatser, passing through to the
// inner transport when it keeps pipeline counters.
func (c *conn) PipelineStats() rdma.PipelineStats {
	if ps, ok := c.inner.(rdma.PipelineStatser); ok {
		return ps.PipelineStats()
	}
	return rdma.PipelineStats{}
}

// cloneOp copies an op, including its write payload, so the clone outlives
// the submitter's buffers (which may be pooled and recycled the moment the
// original completes).
func cloneOp(op *rdma.Op) *rdma.Op {
	s := &rdma.Op{
		Kind:   op.Kind,
		Region: op.Region,
		Offset: op.Offset,
		Expect: op.Expect,
		Swap:   op.Swap,
		Done:   func(*rdma.Op) {},
	}
	switch op.Kind {
	case rdma.OpWrite:
		s.Data = append([]byte(nil), op.Data...)
	case rdma.OpRead:
		s.Data = make([]byte, len(op.Data))
	}
	return s
}

func kindName(k rdma.OpKind) string {
	switch k {
	case rdma.OpRead:
		return "read"
	case rdma.OpWrite:
		return "write"
	case rdma.OpCAS:
		return "cas"
	default:
		return "op"
	}
}
