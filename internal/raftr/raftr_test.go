package raftr

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/repro/sift/internal/msg"
)

// cluster spins up n Raft-R nodes on one message network.
type cluster struct {
	net   *msg.Network
	nodes []*Node
	names []string
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	net := msg.NewNetwork(nil)
	c := &cluster{net: net}
	for i := 0; i < n; i++ {
		c.names = append(c.names, fmt.Sprintf("r%d", i))
	}
	for i := 0; i < n; i++ {
		ep := net.Join(c.names[i], 4096)
		node := NewNode(Config{
			ID:                c.names[i],
			Peers:             c.names,
			Endpoint:          ep,
			ElectionTimeout:   15 * time.Millisecond,
			HeartbeatInterval: 3 * time.Millisecond,
			Partitions:        16,
			Seed:              int64(i+1) * 31,
		})
		c.nodes = append(c.nodes, node)
		node.Start()
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
	})
	return c
}

// leader waits for a stable leader.
func (c *cluster) leader(t *testing.T, timeout time.Duration) *Node {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range c.nodes {
			if n.Role() == Leader {
				return n
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no Raft-R leader elected")
	return nil
}

func TestLeaderElection(t *testing.T) {
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	// Let things settle; there must be exactly one leader.
	time.Sleep(50 * time.Millisecond)
	leaders := 0
	for _, n := range c.nodes {
		if n.Role() == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders", leaders)
	}
	if ld.Leader() != ld.cfg.ID {
		t.Fatalf("leader's Leader() = %q", ld.Leader())
	}
}

func TestPutGetThroughLeader(t *testing.T) {
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	if err := ld.Put([]byte("alpha"), []byte("beta")); err != nil {
		t.Fatal(err)
	}
	v, err := ld.Get([]byte("alpha"))
	if err != nil || string(v) != "beta" {
		t.Fatalf("got %q err=%v", v, err)
	}
	if _, err := ld.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestNonLeaderRejects(t *testing.T) {
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	for _, n := range c.nodes {
		if n == ld {
			continue
		}
		if err := n.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("follower accepted put: %v", err)
		}
		if _, err := n.Get([]byte("k")); !errors.Is(err, ErrNotLeader) {
			t.Fatalf("follower accepted get: %v", err)
		}
	}
}

func TestReplicationReachesFollowers(t *testing.T) {
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	for i := 0; i < 20; i++ {
		if err := ld.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Followers should apply within a few heartbeats.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		allDone := true
		for _, n := range c.nodes {
			if n.Commits() < 20 {
				allDone = false
			}
		}
		if allDone {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, n := range c.nodes {
		v, ok := n.sm.get([]byte("k7"))
		if !ok || string(v) != "v7" {
			t.Fatalf("node %s: k7 = %q ok=%v", n.cfg.ID, v, ok)
		}
	}
}

func TestDeleteReplicated(t *testing.T) {
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	ld.Put([]byte("k"), []byte("v"))
	if err := ld.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	for i := 0; i < 10; i++ {
		if err := ld.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Crash the leader (network-level kill + stop).
	c.net.Fabric().Kill(ld.cfg.ID)

	deadline := time.Now().Add(5 * time.Second)
	var newLd *Node
	for time.Now().Before(deadline) && newLd == nil {
		for _, n := range c.nodes {
			if n != ld && n.Role() == Leader {
				newLd = n
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if newLd == nil {
		t.Fatal("no new leader after crash")
	}
	// Committed data survives.
	var v []byte
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if v, err = newLd.Get([]byte("k3")); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil || string(v) != "v" {
		t.Fatalf("k3 after failover: %q err=%v", v, err)
	}
	// And the new leader accepts writes.
	if err := newLd.Put([]byte("post"), []byte("failover")); err != nil {
		t.Fatalf("put after failover: %v", err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := ld.Put([]byte(fmt.Sprintf("w%d-%d", w, i)), []byte("v")); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, err := ld.Get([]byte("w3-11")); err != nil || string(v) != "v" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestFollowerCatchUpAfterPartition(t *testing.T) {
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	// Partition one follower, write, heal, verify catch-up.
	var follower *Node
	for _, n := range c.nodes {
		if n != ld {
			follower = n
			break
		}
	}
	c.net.Fabric().Partition(ld.cfg.ID, follower.cfg.ID)
	for i := 0; i < 10; i++ {
		if err := ld.Put([]byte(fmt.Sprintf("p%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Fabric().Heal(ld.cfg.ID, follower.cfg.ID)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := follower.sm.get([]byte("p9")); ok && string(v) == "v" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("partitioned follower never caught up")
}

func TestFiveNodeCluster(t *testing.T) {
	c := newCluster(t, 5)
	ld := c.leader(t, 3*time.Second)
	// F=2: two follower failures must not block commits.
	killed := 0
	for _, n := range c.nodes {
		if n != ld && killed < 2 {
			c.net.Fabric().Kill(n.cfg.ID)
			killed++
		}
	}
	if err := ld.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put with 2 failures: %v", err)
	}
	v, err := ld.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestSnapshotCatchUp(t *testing.T) {
	// Force log compaction beyond a dead follower's match point, then make
	// sure it catches up via snapshot when it returns.
	c := newCluster(t, 3)
	ld := c.leader(t, 3*time.Second)
	var follower *Node
	for _, n := range c.nodes {
		if n != ld {
			follower = n
			break
		}
	}
	c.net.Fabric().Kill(follower.cfg.ID)
	for i := 0; i < 50; i++ {
		if err := ld.Put([]byte(fmt.Sprintf("s%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Manually compact the leader's log past the follower's match index to
	// force the snapshot path (the size threshold is too large to hit here).
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Run compaction inside the loop thread via a no-op propose first
		// to serialize; then compact directly — the loop owns this state,
		// so pause it briefly by stopping ticks: simplest is to mutate via
		// test-only knowledge that the loop is idle between messages.
		time.Sleep(20 * time.Millisecond)
	}()
	<-done
	ld.forceCompactForTest(40)

	c.net.Fabric().Restart(follower.cfg.ID)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := follower.sm.get([]byte("s49")); ok && string(v) == "v" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("follower never caught up via snapshot")
}
