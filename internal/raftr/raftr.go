// Package raftr implements Raft-R, the paper's RDMA-based Raft-like
// comparison system (§6.3.1): a leader-based replicated key-value store
// where write requests are replicated to a majority before committing and
// read requests are serviced locally from the leader's full replica, which
// is "a partitioned map with 1000 partitions to reduce contention and
// read/write locks to provide strong consistency."
//
// Raft-R couples compute and storage: every node keeps the full state
// machine and must be provisioned to become leader — exactly the property
// Sift's disaggregation removes. The consensus core is a faithful Raft:
// terms, randomized election timeouts, RequestVote with log-recency checks,
// AppendEntries with consistency probing and commit-index advancement.
package raftr

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/msg"
)

// Client-visible errors.
var (
	// ErrNotLeader is returned by operations sent to a non-leader node.
	ErrNotLeader = errors.New("raftr: not the leader")
	// ErrNotFound is returned by Get for missing keys.
	ErrNotFound = errors.New("raftr: key not found")
	// ErrTimeout is returned when a proposal fails to commit in time.
	ErrTimeout = errors.New("raftr: proposal timed out")
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("raftr: node stopped")
)

// Role is a node's Raft role.
type Role int32

// Raft roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

// Config parameterises one Raft-R node.
type Config struct {
	// ID is this node's name on the message network.
	ID string
	// Peers lists every group member, including this node.
	Peers []string
	// Endpoint is the node's mailbox.
	Endpoint *msg.Endpoint
	// ElectionTimeout is the base follower timeout (randomized up to 2x).
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's empty-AppendEntries period.
	HeartbeatInterval time.Duration
	// Partitions is the state-machine map's partition count (paper: 1000).
	Partitions int
	// MaxBatch bounds entries per AppendEntries message.
	MaxBatch int
	// Seed randomizes election timeouts deterministically.
	Seed int64
	// ProposalTimeout bounds how long a client write may wait (default 2s).
	ProposalTimeout time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ElectionTimeout <= 0 {
		out.ElectionTimeout = 20 * time.Millisecond
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = out.ElectionTimeout / 4
	}
	if out.Partitions <= 0 {
		out.Partitions = 1000
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 64
	}
	if out.Seed == 0 {
		out.Seed = int64(len(out.ID)) + 7
	}
	if out.ProposalTimeout <= 0 {
		out.ProposalTimeout = 2 * time.Second
	}
	return out
}

// logEntry is one replicated command.
type logEntry struct {
	Term uint64
	Cmd  command
}

// proposal is a client write waiting for commit.
type proposal struct {
	index uint64
	done  chan error
}

// Node is one Raft-R group member.
type Node struct {
	cfg Config
	ep  *msg.Endpoint
	rng *rand.Rand

	role     atomic.Int32
	leaderID atomic.Pointer[string]

	// Raft state, owned by the run loop.
	term        uint64
	votedFor    string
	log         []logEntry // log[0] is a sentinel at (index 0, term 0)
	firstIndex  uint64     // absolute index of log[0]
	commitIndex uint64
	lastApplied uint64
	votes       map[string]bool
	nextIndex   map[string]uint64
	matchIndex  map[string]uint64
	inflight    map[string]time.Time // non-zero: AppendEntries outstanding since

	lastHeard time.Time
	timeout   time.Duration

	sm *stateMachine

	proposeCh chan *proposalReq
	controlCh chan func() // loop-thread injection (tests, maintenance)
	stopCh    chan struct{}
	stopOnce  sync.Once
	doneCh    chan struct{}

	pendMu  sync.Mutex
	pending map[uint64][]*proposal

	// Stats.
	commits   atomic.Uint64
	elections atomic.Uint64
}

type proposalReq struct {
	cmd  command
	done chan error
}

// NewNode creates a node; call Start to run it.
func NewNode(cfg Config) *Node {
	c := cfg.withDefaults()
	n := &Node{
		cfg:        c,
		ep:         c.Endpoint,
		rng:        rand.New(rand.NewSource(c.Seed)),
		log:        []logEntry{{}},
		firstIndex: 0,
		votes:      make(map[string]bool),
		nextIndex:  make(map[string]uint64),
		matchIndex: make(map[string]uint64),
		inflight:   make(map[string]time.Time),
		sm:         newStateMachine(c.Partitions),
		proposeCh:  make(chan *proposalReq, 4096),
		controlCh:  make(chan func(), 8),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
		pending:    make(map[uint64][]*proposal),
	}
	n.resetTimeout()
	empty := ""
	n.leaderID.Store(&empty)
	return n
}

// Start launches the node's event loop.
func (n *Node) Start() { go n.run() }

// Stop terminates the node (modelling a process crash: no graceful
// handoff). Blocks until the loop exits.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	<-n.doneCh
}

// Role returns the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// Leader returns the last known leader's id ("" if unknown).
func (n *Node) Leader() string { return *n.leaderID.Load() }

// Commits returns the number of commands this node has applied.
func (n *Node) Commits() uint64 { return n.commits.Load() }

// Elections returns how many elections this node has started.
func (n *Node) Elections() uint64 { return n.elections.Load() }

func (n *Node) resetTimeout() {
	n.timeout = n.cfg.ElectionTimeout + time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
	n.lastHeard = time.Now()
}

func (n *Node) setLeader(id string) {
	n.leaderID.Store(&id)
}

// lastLogIndex returns the absolute index of the last entry.
func (n *Node) lastLogIndex() uint64 { return n.firstIndex + uint64(len(n.log)) - 1 }

// entryAt returns the entry at absolute index i (must be in range).
func (n *Node) entryAt(i uint64) logEntry { return n.log[i-n.firstIndex] }

// termAt returns the term at absolute index i, or false if compacted away.
func (n *Node) termAt(i uint64) (uint64, bool) {
	if i < n.firstIndex || i > n.lastLogIndex() {
		return 0, false
	}
	return n.log[i-n.firstIndex].Term, true
}

// run is the single-threaded Raft event loop.
func (n *Node) run() {
	defer close(n.doneCh)
	ticker := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			n.failAllPending(ErrStopped)
			return
		case m := <-n.ep.Inbox():
			n.handleMessage(m)
		case req := <-n.proposeCh:
			n.handleProposeBatch(req)
		case fn := <-n.controlCh:
			fn()
		case <-ticker.C:
			n.tick()
		}
	}
}

// forceCompactForTest compacts the log so that only entries above keepFrom
// remain, synchronously on the loop thread. Test hook for exercising the
// snapshot catch-up path without generating 64k entries.
func (n *Node) forceCompactForTest(keepFrom uint64) {
	done := make(chan struct{})
	n.controlCh <- func() {
		defer close(done)
		if keepFrom <= n.firstIndex || keepFrom > n.lastApplied {
			return
		}
		n.log = append([]logEntry{}, n.log[keepFrom-n.firstIndex:]...)
		n.firstIndex = keepFrom
	}
	<-done
}

// tick drives timeouts and leader heartbeats.
func (n *Node) tick() {
	switch Role(n.role.Load()) {
	case Leader:
		n.broadcastAppend()
	default:
		if time.Since(n.lastHeard) >= n.timeout {
			n.startElection()
		}
	}
}

// startElection transitions to candidate and solicits votes.
func (n *Node) startElection() {
	n.term++
	n.votedFor = n.cfg.ID
	n.votes = map[string]bool{n.cfg.ID: true}
	n.role.Store(int32(Candidate))
	n.elections.Add(1)
	n.resetTimeout()
	lastIdx := n.lastLogIndex()
	lastTerm, _ := n.termAt(lastIdx)
	payload := encodeRequestVote(requestVote{Term: n.term, LastLogIndex: lastIdx, LastLogTerm: lastTerm})
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			n.ep.Send(p, msgRequestVote, payload)
		}
	}
	if len(n.cfg.Peers) == 1 {
		n.becomeLeader()
	}
}

// becomeLeader initialises leader state.
func (n *Node) becomeLeader() {
	n.role.Store(int32(Leader))
	n.setLeader(n.cfg.ID)
	last := n.lastLogIndex()
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = last + 1
		n.matchIndex[p] = 0
		delete(n.inflight, p)
	}
	n.matchIndex[n.cfg.ID] = last
	n.broadcastAppend()
}

// stepDown reverts to follower for a newer term.
func (n *Node) stepDown(term uint64) {
	n.term = term
	n.votedFor = ""
	n.role.Store(int32(Follower))
	n.resetTimeout()
	n.failAllPending(ErrNotLeader)
}

// failAllPending rejects every outstanding proposal.
func (n *Node) failAllPending(err error) {
	n.pendMu.Lock()
	for idx, ps := range n.pending {
		for _, p := range ps {
			p.done <- err
		}
		delete(n.pending, idx)
	}
	n.pendMu.Unlock()
}

// handleProposeBatch appends the received command plus everything else
// already waiting in the propose queue, then replicates once — the natural
// batching a loaded leader exhibits, and what keeps per-command overhead
// low at high write rates.
func (n *Node) handleProposeBatch(first *proposalReq) {
	reqs := []*proposalReq{first}
	// Two drain passes with a scheduler yield between them: clients that
	// were just woken by the previous commit get a chance to enqueue, so
	// batches actually fill under closed-loop load instead of convoying
	// one command per round trip.
	for pass := 0; pass < 2 && len(reqs) < n.cfg.MaxBatch; pass++ {
		for len(reqs) < n.cfg.MaxBatch {
			select {
			case r := <-n.proposeCh:
				reqs = append(reqs, r)
				continue
			default:
			}
			break
		}
		if pass == 0 {
			runtime.Gosched()
		}
	}
	if Role(n.role.Load()) != Leader {
		for _, r := range reqs {
			r.done <- ErrNotLeader
		}
		return
	}
	n.pendMu.Lock()
	for _, r := range reqs {
		n.log = append(n.log, logEntry{Term: n.term, Cmd: r.cmd})
		idx := n.lastLogIndex()
		n.pending[idx] = append(n.pending[idx], &proposal{index: idx, done: r.done})
	}
	n.pendMu.Unlock()
	n.matchIndex[n.cfg.ID] = n.lastLogIndex()
	n.broadcastAppend()
}

// broadcastAppend sends AppendEntries to every follower.
func (n *Node) broadcastAppend() {
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		n.sendAppendTo(p)
	}
	n.maybeCommit()
}

// sendAppendTo ships the follower's next batch (or a heartbeat). At most
// one AppendEntries is outstanding per follower (with a retransmit timeout
// in case the response was lost) — without this, a loaded leader re-ships
// its whole in-flight window on every proposal and tick, and the followers
// drown in duplicate entries.
func (n *Node) sendAppendTo(p string) {
	if since, busy := n.inflight[p]; busy {
		if time.Since(since) < n.cfg.ElectionTimeout/2 {
			return
		}
		// Retransmit: the previous message or its response was lost.
	}
	next := n.nextIndex[p]
	if next <= n.firstIndex {
		// The follower needs compacted entries: send a snapshot of the
		// state machine instead.
		n.sendSnapshotTo(p)
		return
	}
	prevIdx := next - 1
	prevTerm, ok := n.termAt(prevIdx)
	if !ok {
		n.sendSnapshotTo(p)
		return
	}
	var entries []logEntry
	last := n.lastLogIndex()
	for i := next; i <= last && len(entries) < n.cfg.MaxBatch; i++ {
		entries = append(entries, n.entryAt(i))
	}
	ae := appendEntries{
		Term:         n.term,
		LeaderID:     n.cfg.ID,
		PrevLogIndex: prevIdx,
		PrevLogTerm:  prevTerm,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	}
	n.inflight[p] = time.Now()
	n.ep.Send(p, msgAppendEntries, encodeAppendEntries(ae))
}

// sendSnapshotTo transfers the full state machine (log compaction support).
func (n *Node) sendSnapshotTo(p string) {
	snap := snapshot{
		Term:      n.term,
		LastIndex: n.lastApplied,
		LastTerm:  n.termOfApplied(),
		KV:        n.sm.dump(),
	}
	n.inflight[p] = time.Now()
	n.ep.Send(p, msgSnapshot, encodeSnapshot(snap))
}

func (n *Node) termOfApplied() uint64 {
	t, ok := n.termAt(n.lastApplied)
	if !ok {
		return 0
	}
	return t
}

// maybeCommit advances commitIndex to the majority match point.
func (n *Node) maybeCommit() {
	if Role(n.role.Load()) != Leader {
		return
	}
	last := n.lastLogIndex()
	for idx := n.commitIndex + 1; idx <= last; idx++ {
		t, ok := n.termAt(idx)
		if !ok || t != n.term {
			continue // only commit entries from the current term directly
		}
		count := 0
		for _, p := range n.cfg.Peers {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if count >= len(n.cfg.Peers)/2+1 {
			n.commitIndex = idx
		}
	}
	n.applyCommitted()
}

// applyCommitted applies newly committed entries to the state machine and
// acks their proposers.
func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		if n.lastApplied < n.firstIndex || n.lastApplied > n.lastLogIndex() {
			continue // covered by an installed snapshot
		}
		e := n.entryAt(n.lastApplied)
		n.sm.apply(e.Cmd)
		n.commits.Add(1)
		n.pendMu.Lock()
		if ps := n.pending[n.lastApplied]; ps != nil {
			for _, p := range ps {
				p.done <- nil
			}
			delete(n.pending, n.lastApplied)
		}
		n.pendMu.Unlock()
	}
	n.maybeCompact()
}

// maxLogEntries bounds the in-memory log before compaction.
const maxLogEntries = 1 << 16

// maybeCompact trims the applied log prefix once the log grows large,
// keeping a margin so healthy followers never need snapshots.
func (n *Node) maybeCompact() {
	if len(n.log) < maxLogEntries {
		return
	}
	keepFrom := n.lastApplied
	if keepFrom > uint64(maxLogEntries/4) {
		keepFrom -= uint64(maxLogEntries / 4)
	} else {
		keepFrom = 0
	}
	if Role(n.role.Load()) == Leader {
		for _, p := range n.cfg.Peers {
			if m := n.matchIndex[p]; m < keepFrom && m > 0 {
				keepFrom = m
			}
		}
	}
	if keepFrom <= n.firstIndex {
		return
	}
	n.log = append([]logEntry{}, n.log[keepFrom-n.firstIndex:]...)
	n.firstIndex = keepFrom
}
