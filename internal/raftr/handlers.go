package raftr

import "time"

// handleMessage dispatches one inbound protocol message.
func (n *Node) handleMessage(m msgEnvelope) {
	switch m.Type {
	case msgRequestVote:
		rv, err := decodeRequestVote(m.Payload)
		if err != nil {
			return
		}
		n.onRequestVote(m.From, rv)
	case msgVoteResp:
		vr, err := decodeVoteResp(m.Payload)
		if err != nil {
			return
		}
		n.onVoteResp(m.From, vr)
	case msgAppendEntries:
		ae, err := decodeAppendEntries(m.Payload)
		if err != nil {
			return
		}
		n.onAppendEntries(m.From, ae)
	case msgAppendResp:
		ar, err := decodeAppendResp(m.Payload)
		if err != nil {
			return
		}
		n.onAppendResp(m.From, ar)
	case msgSnapshot:
		sn, err := decodeSnapshot(m.Payload)
		if err != nil {
			return
		}
		n.onSnapshot(m.From, sn)
	}
}

// onRequestVote implements the RequestVote receiver rules.
func (n *Node) onRequestVote(from string, rv requestVote) {
	if rv.Term > n.term {
		n.stepDown(rv.Term)
	}
	granted := false
	if rv.Term == n.term && (n.votedFor == "" || n.votedFor == from) {
		lastIdx := n.lastLogIndex()
		lastTerm, _ := n.termAt(lastIdx)
		// Grant only if the candidate's log is at least as up to date.
		if rv.LastLogTerm > lastTerm || (rv.LastLogTerm == lastTerm && rv.LastLogIndex >= lastIdx) {
			granted = true
			n.votedFor = from
			n.resetTimeout()
		}
	}
	n.ep.Send(from, msgVoteResp, encodeVoteResp(voteResp{Term: n.term, Granted: granted}))
}

// onVoteResp tallies votes at a candidate.
func (n *Node) onVoteResp(from string, vr voteResp) {
	if vr.Term > n.term {
		n.stepDown(vr.Term)
		return
	}
	if Role(n.role.Load()) != Candidate || vr.Term != n.term || !vr.Granted {
		return
	}
	n.votes[from] = true
	if len(n.votes) >= len(n.cfg.Peers)/2+1 {
		n.becomeLeader()
	}
}

// onAppendEntries implements the AppendEntries receiver rules.
func (n *Node) onAppendEntries(from string, ae appendEntries) {
	if ae.Term > n.term {
		n.stepDown(ae.Term)
	}
	resp := appendResp{Term: n.term}
	if ae.Term < n.term {
		n.ep.Send(from, msgAppendResp, encodeAppendResp(resp))
		return
	}
	// Valid leader for our term.
	n.role.Store(int32(Follower))
	n.setLeader(ae.LeaderID)
	n.lastHeard = time.Now()

	prevTerm, ok := n.termAt(ae.PrevLogIndex)
	if !ok || prevTerm != ae.PrevLogTerm {
		// Log mismatch: tell the leader how far back we are.
		hint := n.lastLogIndex()
		if ae.PrevLogIndex < hint {
			hint = ae.PrevLogIndex
		}
		resp.Success = false
		resp.MatchIndex = hint // leader retries from hint
		n.ep.Send(from, msgAppendResp, encodeAppendResp(resp))
		return
	}
	// Append, truncating any conflicting suffix.
	idx := ae.PrevLogIndex
	for i, e := range ae.Entries {
		idx = ae.PrevLogIndex + uint64(i) + 1
		if t, ok := n.termAt(idx); ok {
			if t == e.Term {
				continue // already have it
			}
			n.log = n.log[:idx-n.firstIndex] // conflict: truncate
		}
		n.log = append(n.log, e)
	}
	last := ae.PrevLogIndex + uint64(len(ae.Entries))
	if ae.LeaderCommit > n.commitIndex {
		n.commitIndex = min64(ae.LeaderCommit, n.lastLogIndex())
		n.applyCommitted()
	}
	resp.Success = true
	resp.MatchIndex = last
	n.ep.Send(from, msgAppendResp, encodeAppendResp(resp))
}

// onAppendResp processes a follower's replication ack at the leader.
func (n *Node) onAppendResp(from string, ar appendResp) {
	if ar.Term > n.term {
		n.stepDown(ar.Term)
		return
	}
	if Role(n.role.Load()) != Leader || ar.Term != n.term {
		return
	}
	delete(n.inflight, from)
	if ar.Success {
		if ar.MatchIndex > n.matchIndex[from] {
			n.matchIndex[from] = ar.MatchIndex
		}
		n.nextIndex[from] = ar.MatchIndex + 1
		n.maybeCommit()
		// More to ship?
		if n.nextIndex[from] <= n.lastLogIndex() {
			n.sendAppendTo(from)
		}
	} else {
		// Back off to the follower's hint and retry.
		next := ar.MatchIndex + 1
		if next < 1 {
			next = 1
		}
		n.nextIndex[from] = next
		n.sendAppendTo(from)
	}
}

// onSnapshot installs a full state machine image at a lagging follower.
func (n *Node) onSnapshot(from string, sn snapshot) {
	if sn.Term > n.term {
		n.stepDown(sn.Term)
	}
	if sn.Term < n.term {
		return
	}
	n.role.Store(int32(Follower))
	n.setLeader(from)
	n.lastHeard = time.Now()
	if sn.LastIndex <= n.lastApplied {
		return // stale snapshot
	}
	n.sm.restore(sn.KV)
	n.log = []logEntry{{Term: sn.LastTerm}}
	n.firstIndex = sn.LastIndex
	n.lastApplied = sn.LastIndex
	if sn.LastIndex > n.commitIndex {
		n.commitIndex = sn.LastIndex
	}
	n.ep.Send(from, msgAppendResp, encodeAppendResp(appendResp{
		Term: n.term, Success: true, MatchIndex: sn.LastIndex,
	}))
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
