package raftr

import (
	"hash/fnv"
	"sync"
)

// stateMachine is Raft-R's in-memory replica: "a partitioned map with 1000
// partitions to reduce contention and read/write locks to provide strong
// consistency" (§6.3.1). Every node — leader and followers alike — holds a
// full copy, which is the coupled-resource cost Sift's evaluation compares
// against.
type stateMachine struct {
	parts []mapPart
}

type mapPart struct {
	mu sync.RWMutex
	m  map[string][]byte
}

func newStateMachine(partitions int) *stateMachine {
	sm := &stateMachine{parts: make([]mapPart, partitions)}
	for i := range sm.parts {
		sm.parts[i].m = make(map[string][]byte)
	}
	return sm
}

func (sm *stateMachine) part(key []byte) *mapPart {
	h := fnv.New32a()
	h.Write(key)
	return &sm.parts[int(h.Sum32())%len(sm.parts)]
}

// apply executes one committed command.
func (sm *stateMachine) apply(c command) {
	p := sm.part(c.Key)
	p.mu.Lock()
	switch c.Op {
	case opPut:
		p.m[string(c.Key)] = append([]byte(nil), c.Value...)
	case opDelete:
		delete(p.m, string(c.Key))
	}
	p.mu.Unlock()
}

// get reads one key under the partition read lock.
func (sm *stateMachine) get(key []byte) ([]byte, bool) {
	p := sm.part(key)
	p.mu.RLock()
	v, ok := p.m[string(key)]
	p.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// dump copies the full state (snapshot transfer).
func (sm *stateMachine) dump() map[string][]byte {
	out := make(map[string][]byte)
	for i := range sm.parts {
		p := &sm.parts[i]
		p.mu.RLock()
		for k, v := range p.m {
			out[k] = append([]byte(nil), v...)
		}
		p.mu.RUnlock()
	}
	return out
}

// restore replaces the full state (snapshot install).
func (sm *stateMachine) restore(kv map[string][]byte) {
	for i := range sm.parts {
		p := &sm.parts[i]
		p.mu.Lock()
		p.m = make(map[string][]byte)
		p.mu.Unlock()
	}
	for k, v := range kv {
		p := sm.part([]byte(k))
		p.mu.Lock()
		p.m[k] = append([]byte(nil), v...)
		p.mu.Unlock()
	}
}
