package raftr

import (
	"encoding/binary"
	"errors"

	"github.com/repro/sift/internal/msg"
)

// msgEnvelope aliases the substrate's message type.
type msgEnvelope = msg.Message

// Protocol message types.
const (
	msgRequestVote uint8 = iota + 1
	msgVoteResp
	msgAppendEntries
	msgAppendResp
	msgSnapshot
)

// errShort indicates a truncated message.
var errShort = errors.New("raftr: short message")

type requestVote struct {
	Term         uint64
	LastLogIndex uint64
	LastLogTerm  uint64
}

func encodeRequestVote(rv requestVote) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf[0:], rv.Term)
	binary.LittleEndian.PutUint64(buf[8:], rv.LastLogIndex)
	binary.LittleEndian.PutUint64(buf[16:], rv.LastLogTerm)
	return buf
}

func decodeRequestVote(b []byte) (requestVote, error) {
	if len(b) < 24 {
		return requestVote{}, errShort
	}
	return requestVote{
		Term:         binary.LittleEndian.Uint64(b[0:]),
		LastLogIndex: binary.LittleEndian.Uint64(b[8:]),
		LastLogTerm:  binary.LittleEndian.Uint64(b[16:]),
	}, nil
}

type voteResp struct {
	Term    uint64
	Granted bool
}

func encodeVoteResp(vr voteResp) []byte {
	buf := make([]byte, 9)
	binary.LittleEndian.PutUint64(buf[0:], vr.Term)
	if vr.Granted {
		buf[8] = 1
	}
	return buf
}

func decodeVoteResp(b []byte) (voteResp, error) {
	if len(b) < 9 {
		return voteResp{}, errShort
	}
	return voteResp{Term: binary.LittleEndian.Uint64(b[0:]), Granted: b[8] == 1}, nil
}

type appendEntries struct {
	Term         uint64
	LeaderID     string
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []logEntry
	LeaderCommit uint64
}

func encodeAppendEntries(ae appendEntries) []byte {
	size := 8 + 2 + len(ae.LeaderID) + 8 + 8 + 8 + 4
	for _, e := range ae.Entries {
		size += 8 + cmdSize(e.Cmd)
	}
	buf := make([]byte, size)
	off := 0
	binary.LittleEndian.PutUint64(buf[off:], ae.Term)
	off += 8
	binary.LittleEndian.PutUint16(buf[off:], uint16(len(ae.LeaderID)))
	off += 2
	off += copy(buf[off:], ae.LeaderID)
	binary.LittleEndian.PutUint64(buf[off:], ae.PrevLogIndex)
	off += 8
	binary.LittleEndian.PutUint64(buf[off:], ae.PrevLogTerm)
	off += 8
	binary.LittleEndian.PutUint64(buf[off:], ae.LeaderCommit)
	off += 8
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(ae.Entries)))
	off += 4
	for _, e := range ae.Entries {
		binary.LittleEndian.PutUint64(buf[off:], e.Term)
		off += 8
		off += encodeCmd(buf[off:], e.Cmd)
	}
	return buf
}

func decodeAppendEntries(b []byte) (appendEntries, error) {
	var ae appendEntries
	off := 0
	if len(b) < 10 {
		return ae, errShort
	}
	ae.Term = binary.LittleEndian.Uint64(b[off:])
	off += 8
	idLen := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if off+idLen+28 > len(b) {
		return ae, errShort
	}
	ae.LeaderID = string(b[off : off+idLen])
	off += idLen
	ae.PrevLogIndex = binary.LittleEndian.Uint64(b[off:])
	off += 8
	ae.PrevLogTerm = binary.LittleEndian.Uint64(b[off:])
	off += 8
	ae.LeaderCommit = binary.LittleEndian.Uint64(b[off:])
	off += 8
	count := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	ae.Entries = make([]logEntry, 0, count)
	for i := 0; i < count; i++ {
		if off+8 > len(b) {
			return ae, errShort
		}
		term := binary.LittleEndian.Uint64(b[off:])
		off += 8
		cmd, n, err := decodeCmd(b[off:])
		if err != nil {
			return ae, err
		}
		off += n
		ae.Entries = append(ae.Entries, logEntry{Term: term, Cmd: cmd})
	}
	return ae, nil
}

type appendResp struct {
	Term       uint64
	Success    bool
	MatchIndex uint64
}

func encodeAppendResp(ar appendResp) []byte {
	buf := make([]byte, 17)
	binary.LittleEndian.PutUint64(buf[0:], ar.Term)
	if ar.Success {
		buf[8] = 1
	}
	binary.LittleEndian.PutUint64(buf[9:], ar.MatchIndex)
	return buf
}

func decodeAppendResp(b []byte) (appendResp, error) {
	if len(b) < 17 {
		return appendResp{}, errShort
	}
	return appendResp{
		Term:       binary.LittleEndian.Uint64(b[0:]),
		Success:    b[8] == 1,
		MatchIndex: binary.LittleEndian.Uint64(b[9:]),
	}, nil
}

type snapshot struct {
	Term      uint64
	LastIndex uint64
	LastTerm  uint64
	KV        map[string][]byte
}

func encodeSnapshot(sn snapshot) []byte {
	size := 24 + 4
	for k, v := range sn.KV {
		size += 4 + len(k) + 4 + len(v)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint64(buf[0:], sn.Term)
	binary.LittleEndian.PutUint64(buf[8:], sn.LastIndex)
	binary.LittleEndian.PutUint64(buf[16:], sn.LastTerm)
	binary.LittleEndian.PutUint32(buf[24:], uint32(len(sn.KV)))
	off := 28
	for k, v := range sn.KV {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(k)))
		off += 4
		off += copy(buf[off:], k)
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(v)))
		off += 4
		off += copy(buf[off:], v)
	}
	return buf
}

func decodeSnapshot(b []byte) (snapshot, error) {
	if len(b) < 28 {
		return snapshot{}, errShort
	}
	sn := snapshot{
		Term:      binary.LittleEndian.Uint64(b[0:]),
		LastIndex: binary.LittleEndian.Uint64(b[8:]),
		LastTerm:  binary.LittleEndian.Uint64(b[16:]),
		KV:        make(map[string][]byte),
	}
	count := int(binary.LittleEndian.Uint32(b[24:]))
	off := 28
	for i := 0; i < count; i++ {
		if off+4 > len(b) {
			return snapshot{}, errShort
		}
		kl := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+kl+4 > len(b) {
			return snapshot{}, errShort
		}
		k := string(b[off : off+kl])
		off += kl
		vl := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+vl > len(b) {
			return snapshot{}, errShort
		}
		v := append([]byte(nil), b[off:off+vl]...)
		off += vl
		sn.KV[k] = v
	}
	return sn, nil
}

// command is one state-machine operation.
type command struct {
	Op    byte // opPut or opDelete
	Key   []byte
	Value []byte
}

// Command opcodes.
const (
	opPut    byte = 1
	opDelete byte = 2
)

func cmdSize(c command) int { return 1 + 4 + len(c.Key) + 4 + len(c.Value) }

func encodeCmd(buf []byte, c command) int {
	buf[0] = c.Op
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(c.Key)))
	off := 5 + copy(buf[5:], c.Key)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(c.Value)))
	off += 4
	off += copy(buf[off:], c.Value)
	return off
}

func decodeCmd(b []byte) (command, int, error) {
	if len(b) < 9 {
		return command{}, 0, errShort
	}
	c := command{Op: b[0]}
	kl := int(binary.LittleEndian.Uint32(b[1:]))
	off := 5
	if off+kl+4 > len(b) {
		return command{}, 0, errShort
	}
	c.Key = append([]byte(nil), b[off:off+kl]...)
	off += kl
	vl := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+vl > len(b) {
		return command{}, 0, errShort
	}
	c.Value = append([]byte(nil), b[off:off+vl]...)
	off += vl
	return c, off, nil
}
