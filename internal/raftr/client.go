package raftr

import "time"

// Put replicates a write through the leader: the command is appended to the
// leader's log, shipped to followers, and acknowledged once a majority
// (including the leader) has it. Returns ErrNotLeader on non-leader nodes.
func (n *Node) Put(key, value []byte) error {
	return n.propose(command{Op: opPut, Key: key, Value: value})
}

// Delete removes a key through the same replication path.
func (n *Node) Delete(key []byte) error {
	return n.propose(command{Op: opDelete, Key: key})
}

func (n *Node) propose(cmd command) error {
	if Role(n.role.Load()) != Leader {
		return ErrNotLeader
	}
	// Copy caller buffers: the command outlives this call (log, wire
	// encoding on the loop thread) and callers may reuse their slices.
	cmd.Key = append([]byte(nil), cmd.Key...)
	cmd.Value = append([]byte(nil), cmd.Value...)
	req := &proposalReq{cmd: cmd, done: make(chan error, 1)}
	select {
	case n.proposeCh <- req:
	case <-n.stopCh:
		return ErrStopped
	}
	select {
	case err := <-req.done:
		return err
	case <-time.After(n.cfg.ProposalTimeout):
		return ErrTimeout
	case <-n.stopCh:
		return ErrStopped
	}
}

// Get serves a read locally from the leader's replica (§6.3.1: "Read
// requests are serviced locally from the leader's replica"), relying on the
// leader lease as the paper's Raft-R does. Non-leaders reject reads.
func (n *Node) Get(key []byte) ([]byte, error) {
	if Role(n.role.Load()) != Leader {
		return nil, ErrNotLeader
	}
	v, ok := n.sm.get(key)
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}
