package raftr

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRequestVoteRoundTrip(t *testing.T) {
	f := func(term, lastIdx, lastTerm uint64) bool {
		rv := requestVote{Term: term, LastLogIndex: lastIdx, LastLogTerm: lastTerm}
		got, err := decodeRequestVote(encodeRequestVote(rv))
		return err == nil && got == rv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVoteRespRoundTrip(t *testing.T) {
	f := func(term uint64, granted bool) bool {
		vr := voteResp{Term: term, Granted: granted}
		got, err := decodeVoteResp(encodeVoteResp(vr))
		return err == nil && got == vr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendEntriesRoundTrip(t *testing.T) {
	f := func(term, prevIdx, prevTerm, commit uint64, leader string, key, value []byte) bool {
		if len(leader) > 1000 {
			leader = leader[:1000]
		}
		ae := appendEntries{
			Term: term, LeaderID: leader,
			PrevLogIndex: prevIdx, PrevLogTerm: prevTerm, LeaderCommit: commit,
			Entries: []logEntry{
				{Term: term, Cmd: command{Op: opPut, Key: key, Value: value}},
				{Term: term + 1, Cmd: command{Op: opDelete, Key: key}},
			},
		}
		got, err := decodeAppendEntries(encodeAppendEntries(ae))
		if err != nil {
			return false
		}
		if got.Term != ae.Term || got.LeaderID != ae.LeaderID ||
			got.PrevLogIndex != ae.PrevLogIndex || got.PrevLogTerm != ae.PrevLogTerm ||
			got.LeaderCommit != ae.LeaderCommit || len(got.Entries) != 2 {
			return false
		}
		e0 := got.Entries[0]
		return e0.Term == term && e0.Cmd.Op == opPut &&
			bytes.Equal(e0.Cmd.Key, key) && bytes.Equal(e0.Cmd.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendEntriesEmptyHeartbeat(t *testing.T) {
	ae := appendEntries{Term: 3, LeaderID: "r0", PrevLogIndex: 7, PrevLogTerm: 2, LeaderCommit: 7}
	got, err := decodeAppendEntries(encodeAppendEntries(ae))
	if err != nil || len(got.Entries) != 0 || got.LeaderID != "r0" {
		t.Fatalf("got %+v err=%v", got, err)
	}
}

func TestAppendRespRoundTrip(t *testing.T) {
	f := func(term, match uint64, ok bool) bool {
		ar := appendResp{Term: term, Success: ok, MatchIndex: match}
		got, err := decodeAppendResp(encodeAppendResp(ar))
		return err == nil && got == ar
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	sn := snapshot{
		Term: 9, LastIndex: 100, LastTerm: 8,
		KV: map[string][]byte{"a": []byte("1"), "bb": []byte("22"), "": nil},
	}
	got, err := decodeSnapshot(encodeSnapshot(sn))
	if err != nil {
		t.Fatal(err)
	}
	if got.Term != 9 || got.LastIndex != 100 || got.LastTerm != 8 || len(got.KV) != 3 {
		t.Fatalf("got %+v", got)
	}
	if string(got.KV["bb"]) != "22" {
		t.Fatalf("bb = %q", got.KV["bb"])
	}
}

func TestDecodersRejectShortInput(t *testing.T) {
	short := []byte{1, 2, 3}
	if _, err := decodeRequestVote(short); err == nil {
		t.Fatal("short requestVote accepted")
	}
	if _, err := decodeVoteResp(short); err == nil {
		t.Fatal("short voteResp accepted")
	}
	if _, err := decodeAppendEntries(short); err == nil {
		t.Fatal("short appendEntries accepted")
	}
	if _, err := decodeAppendResp(short); err == nil {
		t.Fatal("short appendResp accepted")
	}
	if _, err := decodeSnapshot(short); err == nil {
		t.Fatal("short snapshot accepted")
	}
}

func TestDecodeTruncatedEntries(t *testing.T) {
	ae := appendEntries{
		Term: 1, LeaderID: "x",
		Entries: []logEntry{{Term: 1, Cmd: command{Op: opPut, Key: []byte("k"), Value: []byte("v")}}},
	}
	full := encodeAppendEntries(ae)
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodeAppendEntries(full[:len(full)-cut]); err == nil {
			// Some truncations still parse if they only drop entries the
			// count doesn't claim; but a claimed entry must not parse.
			got, _ := decodeAppendEntries(full[:len(full)-cut])
			if len(got.Entries) == 1 && bytes.Equal(got.Entries[0].Cmd.Value, []byte("v")) {
				continue // fully intact prefix — impossible here but harmless
			}
		}
	}
}
