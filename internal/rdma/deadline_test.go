package rdma

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// startHungServer accepts one connection, completes the handshake, then
// swallows every request without ever answering — a gray peer: connected,
// readable, and silent.
func startHungServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hs := make([]byte, len(tcpMagic)+2)
		if _, err := io.ReadFull(conn, hs); err != nil {
			return
		}
		if _, err := conn.Write([]byte{statusOK}); err != nil {
			return
		}
		io.Copy(io.Discard, conn) //nolint:errcheck — never answer
	}()
	return l.Addr().String()
}

// TestTCPDeadlineExpiresHungPeer pins the tentpole semantics: a peer that
// stops answering fails every in-flight operation with ErrDeadline within a
// bounded time, and the connection itself stays alive (later operations get
// their own deadline, not a sticky transport error).
func TestTCPDeadlineExpiresHungPeer(t *testing.T) {
	addr := startHungServer(t)
	const deadline = 40 * time.Millisecond
	v, err := DialTCP(addr, DialOpts{OpDeadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	sub := v.(Submitter)

	const n = 8
	done := make(chan error, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		sub.Submit(&Op{
			Kind:   OpWrite,
			Region: 1,
			Offset: uint64(i * 8),
			Data:   []byte{byte(i)},
			Done:   func(op *Op) { done <- op.Err },
		})
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("waiter %d: got %v, want ErrDeadline", i, err)
			}
		case <-time.After(10 * deadline):
			t.Fatalf("waiter %d still blocked %v after submit", i, time.Since(start))
		}
	}

	// The connection must remain usable: a fresh blocking op times out on
	// its own schedule rather than failing with a sticky transport error.
	if err := v.Write(1, 0, []byte{1}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("write after expiry: got %v, want ErrDeadline", err)
	}
	st := v.(PipelineStatser).PipelineStats()
	if st.Expiries < n+1 {
		t.Fatalf("Expiries = %d, want >= %d", st.Expiries, n+1)
	}
}

// TestTCPLateResponseDiscarded checks the expired-ID path: a response that
// arrives after its operation was abandoned is dropped silently, and the
// connection keeps demultiplexing later responses correctly.
func TestTCPLateResponseDiscarded(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const deadline = 40 * time.Millisecond
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		hs := make([]byte, len(tcpMagic)+2)
		if _, err := io.ReadFull(conn, hs); err != nil {
			return
		}
		if _, err := conn.Write([]byte{statusOK}); err != nil {
			return
		}
		first := true
		for {
			var hdr [reqHeaderSize]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				return
			}
			id := binary.LittleEndian.Uint64(hdr[0:8])
			length := binary.LittleEndian.Uint32(hdr[21:25])
			if _, err := io.CopyN(io.Discard, conn, int64(length)); err != nil {
				return
			}
			if first {
				first = false
				time.Sleep(4 * deadline) // answer well past the deadline
			}
			var resp [respHeaderSize]byte
			binary.LittleEndian.PutUint64(resp[0:8], id)
			resp[8] = statusOK
			if _, err := conn.Write(resp[:]); err != nil {
				return
			}
		}
	}()

	v, err := DialTCP(l.Addr().String(), DialOpts{OpDeadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Write(1, 0, []byte{1}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("first write: got %v, want ErrDeadline", err)
	}
	// The late response for the first write is in flight or already
	// consumed; a prompt second operation must still succeed.
	dl := time.Now().Add(5 * time.Second)
	for {
		err := v.Write(1, 8, []byte{2})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrDeadline) || time.Now().After(dl) {
			t.Fatalf("second write: got %v, want eventual success", err)
		}
	}
}

// TestTCPRedialAfterDeadline mirrors the repmem redial flow at the
// transport level: after a connection's operations expire against a hung
// peer, dialing a healthy peer succeeds and serves operations normally.
func TestTCPRedialAfterDeadline(t *testing.T) {
	hungAddr := startHungServer(t)
	goodAddr := startPipelineServer(t)

	const deadline = 30 * time.Millisecond
	v1, err := DialTCP(hungAddr, DialOpts{OpDeadline: deadline})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if err := v1.Write(1, 0, []byte{1}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("hung peer write: got %v, want ErrDeadline", err)
	}

	v2, err := DialTCP(goodAddr, DialOpts{OpDeadline: deadline, DialTimeout: time.Second})
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer v2.Close()
	if err := v2.Write(1, 0, []byte{42}); err != nil {
		t.Fatalf("write after redial: %v", err)
	}
	buf := make([]byte, 1)
	if err := v2.Read(1, 0, buf); err != nil || buf[0] != 42 {
		t.Fatalf("read after redial: %v %v", buf, err)
	}
}

// TestInprocDeadline checks the in-process transport mirrors the TCP
// deadline semantics: an op already expired when a worker dequeues it
// completes with ErrDeadline without executing.
func TestInprocDeadline(t *testing.T) {
	n := NewNetwork(nil)
	node := NewNode("m0")
	node.Alloc(1, 4096, false)
	n.AddNode(node)

	v, err := n.Dial("c0", "m0", DialOpts{OpDeadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	done := make(chan error, 1)
	v.(Submitter).Submit(&Op{
		Kind:   OpWrite,
		Region: 1,
		Offset: 0,
		Data:   []byte{1},
		Done:   func(op *Op) { done <- op.Err },
	})
	select {
	case err := <-done:
		if !errors.Is(err, ErrDeadline) {
			t.Fatalf("got %v, want ErrDeadline", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("op never completed")
	}

	// A generous deadline on the same network must not produce spurious
	// expiries.
	v2, err := n.Dial("c0", "m0", DialOpts{OpDeadline: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if err := v2.Write(1, 0, []byte{7}); err != nil {
		t.Fatalf("write with generous deadline: %v", err)
	}
}
