package rdma

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP transport: a passive memory node daemon serves verbs over TCP. The
// daemon's per-connection handler is the moral equivalent of the RNIC — it
// executes READ/WRITE/CAS directly against the node's registered regions and
// runs no protocol logic. Initiators use DialTCP to obtain a Verbs
// connection. One operation is outstanding per connection (callers open
// several connections for parallelism, as they would create several QPs).

const tcpMagic = "SIFTRDM1"

// Verb opcodes on the wire.
const (
	opRead  = 1
	opWrite = 2
	opCAS   = 3
)

// Wire status codes.
const (
	statusOK = iota
	statusFenced
	statusOutOfBounds
	statusUnknownRegion
	statusMisaligned
)

func statusToError(s byte) error {
	switch s {
	case statusOK:
		return nil
	case statusFenced:
		return ErrFenced
	case statusOutOfBounds:
		return ErrOutOfBounds
	case statusUnknownRegion:
		return ErrUnknownRegion
	case statusMisaligned:
		return ErrMisaligned
	default:
		return fmt.Errorf("rdma: unknown wire status %d", s)
	}
}

func errorToStatus(err error) byte {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, ErrFenced):
		return statusFenced
	case errors.Is(err, ErrOutOfBounds):
		return statusOutOfBounds
	case errors.Is(err, ErrUnknownRegion):
		return statusUnknownRegion
	case errors.Is(err, ErrMisaligned):
		return statusMisaligned
	default:
		return statusOutOfBounds
	}
}

// maxWireData bounds a single transfer to keep a malformed peer from forcing
// huge allocations.
const maxWireData = 64 << 20

// Serve accepts connections on l and serves one-sided operations against
// node until l is closed. It is the only code a memory node runs after
// startup, mirroring the passivity of Sift memory nodes.
func Serve(l net.Listener, node *Node) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, node)
	}
}

func serveConn(conn net.Conn, node *Node) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	// Handshake: magic, then the list of regions to open exclusively.
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != tcpMagic {
		return
	}
	var nEx uint16
	if err := binary.Read(br, binary.LittleEndian, &nEx); err != nil {
		return
	}
	epochs := make(map[RegionID]uint64)
	ok := byte(statusOK)
	for i := 0; i < int(nEx); i++ {
		var id uint32
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			return
		}
		r := node.Region(RegionID(id))
		if r == nil {
			ok = statusUnknownRegion
			continue
		}
		epochs[RegionID(id)] = r.Acquire()
	}
	if err := bw.WriteByte(ok); err != nil || bw.Flush() != nil {
		return
	}
	if ok != statusOK {
		return
	}

	var hdr [17]byte // opcode(1) region(4) offset(8) length(4)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		opcode := hdr[0]
		region := RegionID(binary.LittleEndian.Uint32(hdr[1:5]))
		offset := binary.LittleEndian.Uint64(hdr[5:13])
		length := binary.LittleEndian.Uint32(hdr[13:17])
		if length > maxWireData {
			return
		}
		r := node.Region(region)
		epoch := epochs[region]

		switch opcode {
		case opRead:
			var data []byte
			var err error
			if r == nil {
				err = ErrUnknownRegion
			} else {
				data = make([]byte, length)
				err = r.ReadAt(epoch, offset, data)
			}
			bw.WriteByte(errorToStatus(err))
			if err == nil {
				bw.Write(data)
			}
		case opWrite:
			payload := make([]byte, length)
			if _, err := io.ReadFull(br, payload); err != nil {
				return
			}
			var err error
			if r == nil {
				err = ErrUnknownRegion
			} else {
				err = r.WriteAt(epoch, offset, payload)
			}
			bw.WriteByte(errorToStatus(err))
		case opCAS:
			var args [16]byte
			if _, err := io.ReadFull(br, args[:]); err != nil {
				return
			}
			expect := binary.LittleEndian.Uint64(args[0:8])
			swap := binary.LittleEndian.Uint64(args[8:16])
			var old uint64
			var err error
			if r == nil {
				err = ErrUnknownRegion
			} else {
				old, err = r.CASAt(epoch, offset, expect, swap)
			}
			bw.WriteByte(errorToStatus(err))
			if err == nil {
				var ov [8]byte
				binary.LittleEndian.PutUint64(ov[:], old)
				bw.Write(ov[:])
			}
		default:
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// tcpConn implements Verbs over a TCP connection to a memory node daemon.
type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	err  error // sticky transport error
}

// DialTCP connects to a memory node daemon at addr. Regions listed in
// opts.Exclusive are opened with at-most-one-connection semantics: the
// daemon revokes all earlier exclusive holders.
func DialTCP(addr string, opts DialOpts) (Verbs, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
	c.bw.WriteString(tcpMagic)
	binary.Write(c.bw, binary.LittleEndian, uint16(len(opts.Exclusive)))
	for _, id := range opts.Exclusive {
		binary.Write(c.bw, binary.LittleEndian, uint32(id))
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	status, err := c.br.ReadByte()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if status != statusOK {
		conn.Close()
		return nil, statusToError(status)
	}
	return c, nil
}

func (c *tcpConn) sendHeader(opcode byte, region RegionID, offset uint64, length uint32) {
	var hdr [17]byte
	hdr[0] = opcode
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(region))
	binary.LittleEndian.PutUint64(hdr[5:13], offset)
	binary.LittleEndian.PutUint32(hdr[13:17], length)
	c.bw.Write(hdr[:])
}

func (c *tcpConn) fail(err error) error {
	c.err = err
	c.conn.Close()
	return err
}

// Read implements Verbs.
func (c *tcpConn) Read(region RegionID, offset uint64, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.sendHeader(opRead, region, offset, uint32(len(buf)))
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	status, err := c.br.ReadByte()
	if err != nil {
		return c.fail(err)
	}
	if status != statusOK {
		return statusToError(status)
	}
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return c.fail(err)
	}
	return nil
}

// Write implements Verbs.
func (c *tcpConn) Write(region RegionID, offset uint64, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	c.sendHeader(opWrite, region, offset, uint32(len(data)))
	c.bw.Write(data)
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	status, err := c.br.ReadByte()
	if err != nil {
		return c.fail(err)
	}
	return statusToError(status)
}

// CompareAndSwap implements Verbs.
func (c *tcpConn) CompareAndSwap(region RegionID, offset uint64, expect, swap uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, c.err
	}
	c.sendHeader(opCAS, region, offset, 0)
	var args [16]byte
	binary.LittleEndian.PutUint64(args[0:8], expect)
	binary.LittleEndian.PutUint64(args[8:16], swap)
	c.bw.Write(args[:])
	if err := c.bw.Flush(); err != nil {
		return 0, c.fail(err)
	}
	status, err := c.br.ReadByte()
	if err != nil {
		return 0, c.fail(err)
	}
	if status != statusOK {
		return 0, statusToError(status)
	}
	var ov [8]byte
	if _, err := io.ReadFull(c.br, ov[:]); err != nil {
		return 0, c.fail(err)
	}
	return binary.LittleEndian.Uint64(ov[:]), nil
}

// Close implements Verbs.
func (c *tcpConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = ErrClosed
	}
	return c.conn.Close()
}
