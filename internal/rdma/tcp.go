package rdma

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/metrics"
)

// TCP transport: a passive memory node daemon serves verbs over TCP. The
// daemon's per-connection handler is the moral equivalent of the RNIC — it
// executes READ/WRITE/CAS directly against the node's registered regions and
// runs no protocol logic. Initiators use DialTCP to obtain a Verbs
// connection.
//
// The wire protocol is pipelined: every request carries a 64-bit ID, so many
// operations can be outstanding on one connection (as on a real QP). On the
// initiator a dedicated writer goroutine coalesces queued requests into one
// buffered flush (doorbell batching) and a dedicated reader goroutine
// demultiplexes responses to their waiting submitters by ID. The daemon
// executes requests strictly in arrival order (reliable-connection
// semantics) and pushes responses through its own coalescing writer.

const tcpMagic = "SIFTRDM2"

// tcpReadOnlyBit flags a handshake region id as observer (read-only)
// access; ids without it are opened exclusively, as before.
const tcpReadOnlyBit = uint32(1) << 31

// Verb opcodes on the wire.
const (
	opRead  = 1
	opWrite = 2
	opCAS   = 3
)

// Wire status codes.
const (
	statusOK = iota
	statusFenced
	statusOutOfBounds
	statusUnknownRegion
	statusMisaligned
)

func statusToError(s byte) error {
	switch s {
	case statusOK:
		return nil
	case statusFenced:
		return ErrFenced
	case statusOutOfBounds:
		return ErrOutOfBounds
	case statusUnknownRegion:
		return ErrUnknownRegion
	case statusMisaligned:
		return ErrMisaligned
	default:
		return fmt.Errorf("rdma: unknown wire status %d", s)
	}
}

func errorToStatus(err error) byte {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, ErrFenced):
		return statusFenced
	case errors.Is(err, ErrOutOfBounds):
		return statusOutOfBounds
	case errors.Is(err, ErrUnknownRegion):
		return statusUnknownRegion
	case errors.Is(err, ErrMisaligned):
		return statusMisaligned
	default:
		return statusOutOfBounds
	}
}

// maxWireData bounds a single transfer to keep a malformed peer from forcing
// huge allocations.
const maxWireData = 64 << 20

// Frame sizes.
const (
	reqHeaderSize  = 25 // id(8) opcode(1) region(4) offset(8) length(4)
	respHeaderSize = 13 // id(8) status(1) length(4)
	casArgsSize    = 16 // expect(8) swap(8)
)

// wireBufs pools transfer buffers on the daemon side; read-response payloads
// are held until the response writer has flushed them.
var wireBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getWireBuf(n int) []byte {
	b := *wireBufs.Get().(*[]byte)
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

func putWireBuf(b []byte) {
	b = b[:0]
	wireBufs.Put(&b)
}

// Serve accepts connections on l and serves one-sided operations against
// node until l is closed. It is the only code a memory node runs after
// startup, mirroring the passivity of Sift memory nodes.
func Serve(l net.Listener, node *Node) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, node)
	}
}

// srvResp is one queued response awaiting the daemon's writer goroutine.
// payload, when pooled is true, is returned to wireBufs after the flush.
type srvResp struct {
	id      uint64
	status  byte
	payload []byte
	pooled  bool
}

// srvWriter coalesces queued responses into single flushes.
type srvWriter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []srvResp
	closed bool
}

func (w *srvWriter) push(r srvResp) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		if r.pooled {
			putWireBuf(r.payload)
		}
		return
	}
	w.queue = append(w.queue, r)
	w.mu.Unlock()
	w.cond.Signal()
}

func (w *srvWriter) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

// run drains the response queue onto bw until close() is called and the
// queue is empty, or a write fails. It owns closing conn.
func (w *srvWriter) run(conn net.Conn, bw *bufio.Writer) {
	defer conn.Close()
	var hdr [respHeaderSize]byte
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.queue) == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.mu.Unlock()

		ok := true
		for _, r := range batch {
			binary.LittleEndian.PutUint64(hdr[0:8], r.id)
			hdr[8] = r.status
			binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(r.payload)))
			if _, err := bw.Write(hdr[:]); err != nil {
				ok = false
			}
			if len(r.payload) > 0 {
				if _, err := bw.Write(r.payload); err != nil {
					ok = false
				}
			}
			if r.pooled {
				putWireBuf(r.payload)
			}
		}
		if !ok || bw.Flush() != nil {
			// Transport broken: closing conn unblocks the request reader,
			// which will shut the queue down.
			w.close()
			return
		}
	}
}

func serveConn(conn net.Conn, node *Node) {
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	// Handshake: magic, then the list of regions to open exclusively.
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != tcpMagic {
		conn.Close()
		return
	}
	var nEx uint16
	if err := binary.Read(br, binary.LittleEndian, &nEx); err != nil {
		conn.Close()
		return
	}
	epochs := make(map[RegionID]uint64)
	readonly := make(map[RegionID]bool)
	ok := byte(statusOK)
	for i := 0; i < int(nEx); i++ {
		var id uint32
		if err := binary.Read(br, binary.LittleEndian, &id); err != nil {
			conn.Close()
			return
		}
		// The high bit marks observer (read-only) access: reads bypass epoch
		// fencing, writes and CAS are rejected (see DialOpts.ReadOnly).
		observer := id&tcpReadOnlyBit != 0
		id &^= tcpReadOnlyBit
		r := node.Region(RegionID(id))
		if r == nil {
			ok = statusUnknownRegion
			continue
		}
		if observer {
			epochs[RegionID(id)] = ObserverEpoch
			readonly[RegionID(id)] = true
		} else {
			epochs[RegionID(id)] = r.Acquire()
		}
	}
	if err := bw.WriteByte(ok); err != nil || bw.Flush() != nil || ok != statusOK {
		conn.Close()
		return
	}

	// Request loop: execute strictly in arrival order (the ordering the
	// initiator's repmem layer relies on for same-address writes), handing
	// responses to the coalescing writer.
	w := &srvWriter{}
	w.cond = sync.NewCond(&w.mu)
	go w.run(conn, bw)
	defer w.close()

	var hdr [reqHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:8])
		opcode := hdr[8]
		region := RegionID(binary.LittleEndian.Uint32(hdr[9:13]))
		offset := binary.LittleEndian.Uint64(hdr[13:21])
		length := binary.LittleEndian.Uint32(hdr[21:25])
		if length > maxWireData {
			return
		}
		r := node.Region(region)
		epoch := epochs[region]

		switch opcode {
		case opRead:
			var data []byte
			var err error
			if r == nil {
				err = ErrUnknownRegion
			} else {
				data = getWireBuf(int(length))
				err = r.ReadAt(epoch, offset, data)
			}
			if err != nil {
				if data != nil {
					putWireBuf(data)
				}
				w.push(srvResp{id: id, status: errorToStatus(err)})
			} else {
				w.push(srvResp{id: id, status: statusOK, payload: data, pooled: true})
			}
		case opWrite:
			payload := getWireBuf(int(length))
			if _, err := io.ReadFull(br, payload); err != nil {
				putWireBuf(payload)
				return
			}
			var err error
			if r == nil {
				err = ErrUnknownRegion
			} else if readonly[region] {
				err = ErrFenced
			} else {
				err = r.WriteAt(epoch, offset, payload)
			}
			putWireBuf(payload)
			w.push(srvResp{id: id, status: errorToStatus(err)})
		case opCAS:
			var args [casArgsSize]byte
			if _, err := io.ReadFull(br, args[:]); err != nil {
				return
			}
			expect := binary.LittleEndian.Uint64(args[0:8])
			swap := binary.LittleEndian.Uint64(args[8:16])
			var old uint64
			var err error
			if r == nil {
				err = ErrUnknownRegion
			} else if readonly[region] {
				err = ErrFenced
			} else {
				old, err = r.CASAt(epoch, offset, expect, swap)
			}
			if err != nil {
				w.push(srvResp{id: id, status: errorToStatus(err)})
			} else {
				ov := getWireBuf(8)
				binary.LittleEndian.PutUint64(ov, old)
				w.push(srvResp{id: id, status: statusOK, payload: ov, pooled: true})
			}
		default:
			return
		}
	}
}

// maxExpiredIDs bounds the set of request IDs abandoned by the deadline
// sweep whose responses are still owed by the peer. A peer that falls this
// far behind is not gray, it is gone — the connection is failed outright.
const maxExpiredIDs = 4096

// tcpConn implements Submitter over a TCP connection to a memory node
// daemon. Completion ownership: an Op is completed exactly once, by
// whichever goroutine removes it from the queue or the pending map — the
// writer for ops that never reach the wire, the reader for everything else,
// and the deadline sweep for ops the peer left hanging past their deadline.
type tcpConn struct {
	conn       net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	opDeadline time.Duration

	// mu guards queue, pending, expired, nextID and the sticky transport
	// error; cond (on mu) wakes the writer. wmu serializes request
	// serialization against failAll and the deadline sweep so an Op's Data
	// buffer is never handed back to its owner while the writer may still be
	// reading it.
	mu      sync.Mutex
	cond    *sync.Cond
	wmu     sync.Mutex
	queue   []*Op
	pending map[uint64]*Op
	// expired records IDs of timed-out ops already completed with
	// ErrDeadline; a late response for one is discarded instead of killing
	// the connection.
	expired map[uint64]struct{}
	err     error
	nextID  uint64

	sweepStop chan struct{}
	stopSweep sync.Once

	submitted atomic.Uint64
	flushes   atomic.Uint64
	expiries  atomic.Uint64
	inflight  metrics.Depth
}

var (
	_ Submitter       = (*tcpConn)(nil)
	_ PipelineStatser = (*tcpConn)(nil)
)

// DialTCP connects to a memory node daemon at addr. Regions listed in
// opts.Exclusive are opened with at-most-one-connection semantics: the
// daemon revokes all earlier exclusive holders.
func DialTCP(addr string, opts DialOpts) (Verbs, error) {
	dialTimeout := opts.DialTimeout
	if dialTimeout == 0 {
		dialTimeout = opts.OpDeadline
	}
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	c := &tcpConn{
		conn:       conn,
		br:         bufio.NewReaderSize(conn, 64<<10),
		bw:         bufio.NewWriterSize(conn, 64<<10),
		pending:    make(map[uint64]*Op),
		expired:    make(map[uint64]struct{}),
		opDeadline: opts.OpDeadline,
		sweepStop:  make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	if dialTimeout > 0 {
		conn.SetDeadline(time.Now().Add(dialTimeout))
	}
	c.bw.WriteString(tcpMagic)
	binary.Write(c.bw, binary.LittleEndian, uint16(len(opts.Exclusive)+len(opts.ReadOnly)))
	for _, id := range opts.Exclusive {
		binary.Write(c.bw, binary.LittleEndian, uint32(id))
	}
	for _, id := range opts.ReadOnly {
		binary.Write(c.bw, binary.LittleEndian, uint32(id)|tcpReadOnlyBit)
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	status, err := c.br.ReadByte()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if status != statusOK {
		conn.Close()
		return nil, statusToError(status)
	}
	conn.SetDeadline(time.Time{})
	go c.writeLoop()
	go c.readLoop()
	if c.opDeadline > 0 {
		go c.sweepLoop()
	}
	return c, nil
}

// fail records the first transport error, wakes the writer, and tears down
// the socket (unblocking any goroutine stuck in socket I/O). It returns the
// sticky error.
func (c *tcpConn) fail(err error) error {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	err = c.err
	c.mu.Unlock()
	c.cond.Broadcast()
	if c.sweepStop != nil {
		c.stopSweep.Do(func() { close(c.sweepStop) })
	}
	c.conn.Close()
	return err
}

// sweepLoop periodically expires pending requests whose deadline has passed.
// The sweep is what turns a hung-but-connected peer (a gray failure) into
// per-operation ErrDeadline completions instead of an indefinitely blocked
// demux reader.
func (c *tcpConn) sweepLoop() {
	period := c.opDeadline / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	if period > 250*time.Millisecond {
		period = 250 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case now := <-t.C:
			c.expireOverdue(now)
		}
	}
}

// expireOverdue completes every queued or in-flight op whose deadline has
// passed with ErrDeadline. Taking wmu first keeps the sweep from completing
// an op whose Data the writer is still serializing. Expired in-flight IDs
// are remembered so their late responses can be discarded.
func (c *tcpConn) expireOverdue(now time.Time) {
	var victims []*Op
	c.wmu.Lock()
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		c.wmu.Unlock()
		return
	}
	for id, op := range c.pending {
		if !op.deadline.IsZero() && now.After(op.deadline) {
			delete(c.pending, id)
			c.expired[id] = struct{}{}
			victims = append(victims, op)
		}
	}
	if len(c.queue) > 0 {
		kept := c.queue[:0]
		for _, op := range c.queue {
			if !op.deadline.IsZero() && now.After(op.deadline) {
				victims = append(victims, op)
			} else {
				kept = append(kept, op)
			}
		}
		c.queue = kept
	}
	overrun := len(c.expired) > maxExpiredIDs
	c.mu.Unlock()
	c.wmu.Unlock()
	for _, op := range victims {
		c.expiries.Add(1)
		c.finish(op, ErrDeadline)
	}
	if overrun {
		c.failAll(c.fail(fmt.Errorf("%w: peer owes %d responses", ErrDeadline, maxExpiredIDs)))
	}
}

// finish completes op and drops it from the in-flight gauge.
func (c *tcpConn) finish(op *Op, err error) {
	c.inflight.Dec()
	op.complete(err)
}

// failAll completes every queued and in-flight op with err. Taking wmu
// first waits out a writer that may be mid-serialization (the socket is
// already closed, so it cannot block for long).
func (c *tcpConn) failAll(err error) {
	c.wmu.Lock()
	c.mu.Lock()
	pend := c.pending
	c.pending = make(map[uint64]*Op)
	q := c.queue
	c.queue = nil
	c.mu.Unlock()
	c.wmu.Unlock()
	for _, op := range pend {
		c.finish(op, err)
	}
	for _, op := range q {
		c.finish(op, err)
	}
}

// Submit implements Submitter.
func (c *tcpConn) Submit(op *Op) {
	wire := len(op.Data)
	switch op.Kind {
	case OpCAS:
		wire = casArgsSize
	case OpRead, OpWrite:
	default:
		op.complete(fmt.Errorf("rdma: unknown op kind %d", op.Kind))
		return
	}
	if wire > maxWireData {
		op.complete(fmt.Errorf("%w: transfer of %d bytes exceeds wire limit", ErrOutOfBounds, wire))
		return
	}
	op.deadline = time.Time{}
	if c.opDeadline > 0 {
		op.deadline = time.Now().Add(c.opDeadline)
	}
	c.inflight.Inc()
	c.submitted.Add(1)
	c.mu.Lock()
	if err := c.err; err != nil {
		c.mu.Unlock()
		c.finish(op, err)
		return
	}
	c.queue = append(c.queue, op)
	c.mu.Unlock()
	c.cond.Signal()
}

// encodeOp serializes one request frame into the buffered writer.
func (c *tcpConn) encodeOp(op *Op) error {
	var hdr [reqHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], op.id)
	length := uint32(len(op.Data))
	switch op.Kind {
	case OpRead:
		hdr[8] = opRead
	case OpWrite:
		hdr[8] = opWrite
	case OpCAS:
		hdr[8] = opCAS
		length = casArgsSize
	}
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(op.Region))
	binary.LittleEndian.PutUint64(hdr[13:21], op.Offset)
	binary.LittleEndian.PutUint32(hdr[21:25], length)
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	switch op.Kind {
	case OpWrite:
		if _, err := c.bw.Write(op.Data); err != nil {
			return err
		}
	case OpCAS:
		var args [casArgsSize]byte
		binary.LittleEndian.PutUint64(args[0:8], op.Expect)
		binary.LittleEndian.PutUint64(args[8:16], op.Swap)
		if _, err := c.bw.Write(args[:]); err != nil {
			return err
		}
	}
	return nil
}

// writeLoop drains the submit queue: it registers each batch in the pending
// map, serializes it, and pushes it to the wire in one flush (doorbell
// batching).
func (c *tcpConn) writeLoop() {
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && c.err == nil {
			c.cond.Wait()
		}
		if err := c.err; err != nil {
			q := c.queue
			c.queue = nil
			c.mu.Unlock()
			for _, op := range q {
				c.finish(op, err)
			}
			return
		}
		batch := c.queue
		c.queue = nil
		c.mu.Unlock()

		c.wmu.Lock()
		c.mu.Lock()
		if err := c.err; err != nil {
			// The reader died while this batch was detached from the queue;
			// its failAll cannot see these ops, so complete them here.
			c.mu.Unlock()
			c.wmu.Unlock()
			for _, op := range batch {
				c.finish(op, err)
			}
			return
		}
		for _, op := range batch {
			op.id = c.nextID
			c.nextID++
			c.pending[op.id] = op
		}
		c.mu.Unlock()
		// Bound the push itself: a peer that stops draining its socket must
		// not wedge the writer forever once the kernel buffers fill.
		if c.opDeadline > 0 {
			c.conn.SetWriteDeadline(time.Now().Add(c.opDeadline))
		}
		var werr error
		for _, op := range batch {
			if werr = c.encodeOp(op); werr != nil {
				break
			}
		}
		if werr == nil {
			werr = c.bw.Flush()
		}
		c.wmu.Unlock()
		c.flushes.Add(1)
		if werr != nil {
			// The batch is registered in pending; the reader's failAll
			// completes it once the closed socket wakes it.
			c.fail(werr)
			return
		}
	}
}

// readLoop demultiplexes responses to their submitters by request ID.
// Per-op region errors (fenced, out of bounds, …) complete only their op;
// transport or protocol errors fail the connection and every in-flight op.
func (c *tcpConn) readLoop() {
	var hdr [respHeaderSize]byte
	for {
		if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
			c.failAll(c.fail(err))
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:8])
		status := hdr[8]
		length := binary.LittleEndian.Uint32(hdr[9:13])
		if length > maxWireData {
			c.failAll(c.fail(fmt.Errorf("rdma: oversized response (%d bytes)", length)))
			return
		}
		c.mu.Lock()
		op, ok := c.pending[id]
		delete(c.pending, id)
		var wasExpired bool
		if !ok {
			_, wasExpired = c.expired[id]
			delete(c.expired, id)
		}
		c.mu.Unlock()
		if !ok {
			if !wasExpired {
				c.failAll(c.fail(fmt.Errorf("rdma: response for unknown request %d", id)))
				return
			}
			// Late response for an op the deadline sweep already failed:
			// swallow its payload and keep demultiplexing. The connection
			// survives a gray episode.
			if length > 0 {
				if _, err := io.CopyN(io.Discard, c.br, int64(length)); err != nil {
					c.failAll(c.fail(err))
					return
				}
			}
			continue
		}

		var opErr error
		switch {
		case status != statusOK:
			opErr = statusToError(status)
			if length != 0 {
				err := c.fail(fmt.Errorf("rdma: error response carries %d payload bytes", length))
				c.finish(op, err)
				c.failAll(err)
				return
			}
		case op.Kind == OpRead:
			if int(length) != len(op.Data) {
				err := c.fail(fmt.Errorf("rdma: read response length %d, want %d", length, len(op.Data)))
				c.finish(op, err)
				c.failAll(err)
				return
			}
			if _, err := io.ReadFull(c.br, op.Data); err != nil {
				err = c.fail(err)
				c.finish(op, err)
				c.failAll(err)
				return
			}
		case op.Kind == OpCAS:
			if length != 8 {
				err := c.fail(fmt.Errorf("rdma: CAS response length %d, want 8", length))
				c.finish(op, err)
				c.failAll(err)
				return
			}
			var ov [8]byte
			if _, err := io.ReadFull(c.br, ov[:]); err != nil {
				err = c.fail(err)
				c.finish(op, err)
				c.failAll(err)
				return
			}
			op.Old = binary.LittleEndian.Uint64(ov[:])
		default: // OpWrite
			if length != 0 {
				err := c.fail(fmt.Errorf("rdma: write response carries %d payload bytes", length))
				c.finish(op, err)
				c.failAll(err)
				return
			}
		}
		c.finish(op, opErr)
	}
}

// Read implements Verbs.
func (c *tcpConn) Read(region RegionID, offset uint64, buf []byte) error {
	return submitWait(c, &Op{Kind: OpRead, Region: region, Offset: offset, Data: buf})
}

// Write implements Verbs.
func (c *tcpConn) Write(region RegionID, offset uint64, data []byte) error {
	return submitWait(c, &Op{Kind: OpWrite, Region: region, Offset: offset, Data: data})
}

// CompareAndSwap implements Verbs.
func (c *tcpConn) CompareAndSwap(region RegionID, offset uint64, expect, swap uint64) (uint64, error) {
	op := &Op{Kind: OpCAS, Region: region, Offset: offset, Expect: expect, Swap: swap}
	if err := submitWait(c, op); err != nil {
		return 0, err
	}
	return op.Old, nil
}

// Close implements Verbs. In-flight operations complete with ErrClosed.
func (c *tcpConn) Close() error {
	c.fail(ErrClosed)
	return nil
}

// PipelineStats implements PipelineStatser.
func (c *tcpConn) PipelineStats() PipelineStats {
	return PipelineStats{
		Submitted:   c.submitted.Load(),
		Flushes:     c.flushes.Load(),
		MaxInFlight: uint64(c.inflight.Max()),
		Expiries:    c.expiries.Load(),
	}
}
