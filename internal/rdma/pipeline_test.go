package rdma

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
)

// startPipelineServer serves a standard test node over TCP and returns its
// address.
func startPipelineServer(t *testing.T) string {
	t.Helper()
	node := newTestNode("m0")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, node)
	return l.Addr().String()
}

// TestTCPPipelineConcurrentMixed drives one connection from many goroutines
// with mixed READ/WRITE/CAS. Each goroutine owns a disjoint 128-byte span of
// region 1 (64 B of write/read scratch plus an 8-byte CAS word), so any
// response misrouted to another request surfaces as a data mismatch or an
// unexpected CAS old value.
func TestTCPPipelineConcurrentMixed(t *testing.T) {
	addr := startPipelineServer(t)
	v, err := DialTCP(addr, DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	sub, ok := v.(Submitter)
	if !ok {
		t.Fatal("TCP connection does not implement Submitter")
	}

	const goroutines = 8
	const iters = 50
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 128)
			buf := make([]byte, 64)
			var prev uint64
			for i := 0; i < iters; i++ {
				want := bytes.Repeat([]byte{byte(g*31 + i + 1)}, 64)
				if err := v.Write(1, base, want); err != nil {
					errCh <- fmt.Errorf("g%d write: %w", g, err)
					return
				}
				if err := v.Read(1, base, buf); err != nil {
					errCh <- fmt.Errorf("g%d read: %w", g, err)
					return
				}
				if !bytes.Equal(buf, want) {
					errCh <- fmt.Errorf("g%d iter %d: read %x, want %x", g, i, buf[0], want[0])
					return
				}
				old, err := v.CompareAndSwap(1, base+64, prev, prev+1)
				if err != nil || old != prev {
					errCh <- fmt.Errorf("g%d CAS: old=%d err=%v, want %d", g, old, err, prev)
					return
				}
				prev++
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := sub.(PipelineStatser).PipelineStats()
	if want := uint64(goroutines * iters * 3); st.Submitted != want {
		t.Errorf("Submitted = %d, want %d", st.Submitted, want)
	}
	if st.Flushes == 0 || st.Flushes > st.Submitted {
		t.Errorf("Flushes = %d out of range (Submitted %d)", st.Flushes, st.Submitted)
	}
	if st.MaxInFlight == 0 || st.MaxInFlight > goroutines {
		t.Errorf("MaxInFlight = %d, want 1..%d", st.MaxInFlight, goroutines)
	}
}

// TestTCPPipelineResponseMatching floods one connection with asynchronous
// reads submitted in a scrambled order and checks every completion carries
// the bytes for its own offset — i.e. responses are demultiplexed by request
// ID, not by arrival position.
func TestTCPPipelineResponseMatching(t *testing.T) {
	addr := startPipelineServer(t)
	v, err := DialTCP(addr, DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	sub := v.(Submitter)

	const slots = 64
	for i := 0; i < slots; i++ {
		if err := v.Write(1, uint64(i*64), bytes.Repeat([]byte{byte(i + 1)}, 64)); err != nil {
			t.Fatalf("seed write %d: %v", i, err)
		}
	}

	done := make(chan *Op, slots)
	ops := make([]*Op, slots)
	for i := range ops {
		ops[i] = &Op{
			Kind:   OpRead,
			Region: 1,
			Offset: uint64(i * 64),
			Data:   make([]byte, 64),
			Done:   func(op *Op) { done <- op },
		}
	}
	// 17 is coprime with 64, so this visits every op exactly once but far
	// from sequentially — queued requests and in-flight responses interleave.
	for i := 0; i < slots; i++ {
		sub.Submit(ops[(i*17)%slots])
	}
	for i := 0; i < slots; i++ {
		op := <-done
		if op.Err != nil {
			t.Fatalf("read at %d: %v", op.Offset, op.Err)
		}
		want := byte(op.Offset/64 + 1)
		for _, b := range op.Data {
			if b != want {
				t.Fatalf("read at %d: got byte %d, want %d (response misrouted)", op.Offset, b, want)
			}
		}
	}
}

// TestTCPPipelineStickyError kills the transport under a pipeline of
// unanswered requests: a fake daemon completes the handshake, swallows
// requests without responding, then closes. Every in-flight waiter must be
// failed, and the error must stick so later submissions fail fast.
func TestTCPPipelineStickyError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srvConn := make(chan net.Conn, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		hs := make([]byte, len(tcpMagic)+2) // magic + nEx(0)
		if _, err := io.ReadFull(conn, hs); err != nil {
			conn.Close()
			return
		}
		if _, err := conn.Write([]byte{statusOK}); err != nil {
			conn.Close()
			return
		}
		srvConn <- conn
		io.Copy(io.Discard, conn) //nolint:errcheck — swallow requests, never answer
	}()

	v, err := DialTCP(l.Addr().String(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	sub := v.(Submitter)

	const n = 32
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		sub.Submit(&Op{
			Kind:   OpWrite,
			Region: 1,
			Offset: uint64(i),
			Data:   []byte{byte(i)},
			Done:   func(op *Op) { done <- op.Err },
		})
	}
	(<-srvConn).Close()
	for i := 0; i < n; i++ {
		if err := <-done; err == nil {
			t.Fatalf("waiter %d completed without error after transport death", i)
		}
	}
	if err := v.Write(1, 0, []byte{1}); err == nil {
		t.Fatal("write after transport death should fail immediately")
	}
	if err := v.Read(1, 0, make([]byte, 1)); err == nil {
		t.Fatal("read after transport death should fail immediately")
	}
}

// TestTCPPipelineFencedRevocation revokes a connection's exclusive region
// while a pipeline of operations targets it. The fenced operations must fail
// with ErrFenced individually; interleaved operations on a shared region —
// and the connection itself — must keep working.
func TestTCPPipelineFencedRevocation(t *testing.T) {
	addr := startPipelineServer(t)
	c1v, err := DialTCP(addr, DialOpts{Exclusive: []RegionID{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer c1v.Close()
	c1 := c1v.(Submitter)
	if err := c1v.Write(2, 0, []byte{1}); err != nil {
		t.Fatalf("owner write before revocation: %v", err)
	}

	// A second exclusive dial bumps the region epoch; once it returns, every
	// c1 request the daemon executes afterwards observes the stale epoch.
	c2, err := DialTCP(addr, DialOpts{Exclusive: []RegionID{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	const n = 16
	done := make(chan *Op, 2*n)
	for i := 0; i < n; i++ {
		c1.Submit(&Op{Kind: OpWrite, Region: 2, Offset: 0, Data: []byte{9},
			Done: func(op *Op) { done <- op }})
		c1.Submit(&Op{Kind: OpRead, Region: 1, Offset: 0, Data: make([]byte, 8),
			Done: func(op *Op) { done <- op }})
	}
	for i := 0; i < 2*n; i++ {
		op := <-done
		if op.Region == 2 {
			if !errors.Is(op.Err, ErrFenced) {
				t.Fatalf("revoked-region write: err=%v, want ErrFenced", op.Err)
			}
		} else if op.Err != nil {
			t.Fatalf("shared-region read mid-revocation: %v", op.Err)
		}
	}

	// Fencing is per-op, not sticky: the connection still serves the shared
	// region, and further revoked-region ops keep reporting ErrFenced.
	if err := c1v.Write(1, 0, []byte{5}); err != nil {
		t.Fatalf("shared-region write after revocation: %v", err)
	}
	if _, err := c1v.CompareAndSwap(2, 0, 0, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("revoked-region CAS: err=%v, want ErrFenced", err)
	}
	if err := c2.Write(2, 0, []byte{2}); err != nil {
		t.Fatalf("new owner write: %v", err)
	}
}

// TestInprocPipelineAsync mirrors the asynchronous-submission contract on
// the in-process transport: concurrent completions carry the right results,
// and Close fails queued operations with ErrClosed.
func TestInprocPipelineAsync(t *testing.T) {
	nw := NewNetwork(nil)
	nw.AddNode(newTestNode("m0"))
	v, err := nw.Dial("cpu0", "m0", DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := v.(Submitter)
	if !ok {
		t.Fatal("in-process connection does not implement Submitter")
	}

	// Async writes to disjoint offsets. The worker pool may execute them in
	// any order, which is fine: no two ops touch the same bytes.
	const slots = 32
	var wg sync.WaitGroup
	wg.Add(slots)
	for i := 0; i < slots; i++ {
		sub.Submit(&Op{
			Kind:   OpWrite,
			Region: 1,
			Offset: uint64(i * 64),
			Data:   bytes.Repeat([]byte{byte(i + 1)}, 64),
			Done: func(op *Op) {
				if op.Err != nil {
					t.Errorf("async write at %d: %v", op.Offset, op.Err)
				}
				wg.Done()
			},
		})
	}
	wg.Wait()

	// Async reads must each see their own offset's pattern.
	done := make(chan *Op, slots)
	for i := 0; i < slots; i++ {
		sub.Submit(&Op{
			Kind:   OpRead,
			Region: 1,
			Offset: uint64(i * 64),
			Data:   make([]byte, 64),
			Done:   func(op *Op) { done <- op },
		})
	}
	for i := 0; i < slots; i++ {
		op := <-done
		if op.Err != nil {
			t.Fatalf("async read at %d: %v", op.Offset, op.Err)
		}
		want := byte(op.Offset/64 + 1)
		for _, b := range op.Data {
			if b != want {
				t.Fatalf("read at %d: got byte %d, want %d", op.Offset, b, want)
			}
		}
	}

	// Async CAS returns the observed old value.
	casDone := make(chan *Op, 1)
	sub.Submit(&Op{Kind: OpCAS, Region: 1, Offset: 2048, Expect: 0, Swap: 7,
		Done: func(op *Op) { casDone <- op }})
	op := <-casDone
	if op.Err != nil || op.Old != 0 {
		t.Fatalf("async CAS: old=%d err=%v", op.Old, op.Err)
	}

	st := sub.(PipelineStatser).PipelineStats()
	if want := uint64(2*slots + 1); st.Submitted != want {
		t.Errorf("Submitted = %d, want %d", st.Submitted, want)
	}
	if st.MaxInFlight == 0 {
		t.Error("MaxInFlight = 0, want > 0")
	}

	v.Close()
	closedDone := make(chan error, 1)
	sub.Submit(&Op{Kind: OpWrite, Region: 1, Offset: 0, Data: []byte{1},
		Done: func(op *Op) { closedDone <- op.Err }})
	if err := <-closedDone; !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err=%v, want ErrClosed", err)
	}
}
