// Package rdma simulates one-sided RDMA over reliable connections.
//
// It models the subset of RDMA semantics that Sift's design depends on:
//
//   - Registered memory regions on passive nodes, addressed by (region id,
//     offset). The owning node's application logic is never involved in
//     serving an operation — operations are executed by the transport's
//     "RNIC engine" directly against the registered buffers.
//   - One-sided READ, WRITE, and 64-bit COMPARE-AND-SWAP verbs.
//   - Reliable-connection completion semantics: every verb call blocks until
//     the remote operation has been performed and acknowledged, and
//     operations issued sequentially on one connection execute in order.
//   - At-most-one-connection fencing on exclusive regions: connecting a new
//     initiator to an exclusive region revokes all previous connections'
//     access to it, so delayed writes from a deposed coordinator are dropped
//     "by the NIC" (paper §3.2).
//
// Two transports are provided: an in-process transport driven by a
// netsim.Fabric (see inproc.go) and a TCP transport where a passive memory
// node daemon's wire handler plays the role of the RNIC (see tcp.go).
package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Common verb errors.
var (
	// ErrFenced indicates the connection's access to an exclusive region was
	// revoked by a newer exclusive connection.
	ErrFenced = errors.New("rdma: connection fenced by newer exclusive connection")
	// ErrOutOfBounds indicates an access outside the registered region.
	ErrOutOfBounds = errors.New("rdma: access out of region bounds")
	// ErrUnknownRegion indicates the region id is not registered on the node.
	ErrUnknownRegion = errors.New("rdma: unknown region")
	// ErrMisaligned indicates a CAS at a non-8-byte-aligned offset.
	ErrMisaligned = errors.New("rdma: atomic access must be 8-byte aligned")
	// ErrClosed indicates the connection has been closed.
	ErrClosed = errors.New("rdma: connection closed")
	// ErrDeadline indicates an operation exceeded the connection's per-op
	// deadline. The remote node may or may not have executed the operation
	// (it may still execute it later); callers must treat the outcome as
	// unknown. The connection itself stays usable — gray-failure detection
	// is built on these per-operation timeouts, not on connection liveness.
	ErrDeadline = errors.New("rdma: operation deadline exceeded")
)

// RegionID names a registered memory region on a node.
type RegionID uint32

// Verbs is the one-sided operation set available over a connection.
// All calls block until remotely complete (reliable-connection semantics).
type Verbs interface {
	// Read copies len(buf) bytes from the remote region at offset into buf.
	Read(region RegionID, offset uint64, buf []byte) error
	// Write copies data into the remote region at offset and waits for the
	// remote acknowledgement.
	Write(region RegionID, offset uint64, data []byte) error
	// CompareAndSwap atomically replaces the 8-byte word at offset with swap
	// if it currently equals expect. It returns the value observed before
	// the operation (equal to expect iff the swap happened).
	CompareAndSwap(region RegionID, offset uint64, expect, swap uint64) (uint64, error)
	// Close tears down the connection. Further verbs return ErrClosed.
	Close() error
}

const regionStripes = 64

// Region is a registered memory region. Access is striped so that
// non-overlapping DMA operations proceed in parallel, as on real hardware.
type Region struct {
	buf []byte

	// stripes guard disjoint address ranges of buf; a multi-stripe access
	// locks its stripes in ascending order to avoid deadlock.
	stripes [regionStripes]sync.RWMutex

	// mu guards the fencing state below.
	mu        sync.Mutex
	exclusive bool
	epoch     uint64 // current owner epoch; conns with older epochs are fenced
}

// NewRegion allocates a region of the given size. If exclusive is true the
// region enforces at-most-one-connection semantics.
func NewRegion(size int, exclusive bool) *Region {
	return &Region{buf: make([]byte, size), exclusive: exclusive}
}

// Size returns the region's length in bytes.
func (r *Region) Size() int { return len(r.buf) }

// Exclusive reports whether the region enforces at-most-one-connection.
func (r *Region) Exclusive() bool { return r.exclusive }

// ObserverEpoch is the epoch token granting read-only access to an
// exclusive region that survives ownership changes — the moral equivalent
// of a real RNIC handing out a read-only rkey beside the writer's
// protection domain. Transports must never use it for writes or CAS; they
// enforce read-only-ness at the connection layer (see DialOpts.ReadOnly).
const ObserverEpoch = ^uint64(0)

// Acquire registers a new exclusive owner and returns its epoch token,
// revoking all prior owners. For non-exclusive regions it returns 0; all
// epoch-0 tokens remain valid forever.
func (r *Region) Acquire() uint64 {
	if !r.exclusive {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.epoch++
	return r.epoch
}

// check validates an epoch token against the current owner epoch.
func (r *Region) check(epoch uint64) error {
	if !r.exclusive || epoch == ObserverEpoch {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch != r.epoch {
		return ErrFenced
	}
	return nil
}

func (r *Region) stripeRange(offset uint64, n int) (first, last int) {
	if len(r.buf) == 0 || n <= 0 {
		return 0, 0
	}
	stripeSize := (len(r.buf) + regionStripes - 1) / regionStripes
	first = int(offset) / stripeSize
	last = (int(offset) + n - 1) / stripeSize
	if last >= regionStripes {
		last = regionStripes - 1
	}
	return first, last
}

func (r *Region) bounds(offset uint64, n int) error {
	if n < 0 || offset > uint64(len(r.buf)) || offset+uint64(n) > uint64(len(r.buf)) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBounds, offset, offset+uint64(n), len(r.buf))
	}
	return nil
}

// ReadAt copies region bytes at offset into buf. epoch is the caller's
// fencing token from Acquire.
func (r *Region) ReadAt(epoch, offset uint64, buf []byte) error {
	if err := r.check(epoch); err != nil {
		return err
	}
	if err := r.bounds(offset, len(buf)); err != nil {
		return err
	}
	first, last := r.stripeRange(offset, len(buf))
	for i := first; i <= last; i++ {
		r.stripes[i].RLock()
	}
	copy(buf, r.buf[offset:])
	for i := last; i >= first; i-- {
		r.stripes[i].RUnlock()
	}
	return nil
}

// WriteAt copies data into the region at offset.
func (r *Region) WriteAt(epoch, offset uint64, data []byte) error {
	if err := r.check(epoch); err != nil {
		return err
	}
	if err := r.bounds(offset, len(data)); err != nil {
		return err
	}
	first, last := r.stripeRange(offset, len(data))
	for i := first; i <= last; i++ {
		r.stripes[i].Lock()
	}
	copy(r.buf[offset:], data)
	for i := last; i >= first; i-- {
		r.stripes[i].Unlock()
	}
	return nil
}

// CASAt performs an atomic 64-bit compare-and-swap at the 8-byte-aligned
// offset, returning the previously stored value.
func (r *Region) CASAt(epoch, offset uint64, expect, swap uint64) (uint64, error) {
	if err := r.check(epoch); err != nil {
		return 0, err
	}
	if offset%8 != 0 {
		return 0, ErrMisaligned
	}
	if err := r.bounds(offset, 8); err != nil {
		return 0, err
	}
	first, _ := r.stripeRange(offset, 8)
	r.stripes[first].Lock()
	defer r.stripes[first].Unlock()
	old := binary.LittleEndian.Uint64(r.buf[offset:])
	if old == expect {
		binary.LittleEndian.PutUint64(r.buf[offset:], swap)
	}
	return old, nil
}

// Corrupt XORs mask into the byte at offset, bypassing epoch fencing. It is
// a node-local maintenance operation modelling silent memory corruption —
// flipped DRAM bits do not hold ownership tokens — not a network verb.
func (r *Region) Corrupt(offset uint64, mask byte) error {
	if err := r.bounds(offset, 1); err != nil {
		return err
	}
	first, _ := r.stripeRange(offset, 1)
	r.stripes[first].Lock()
	r.buf[offset] ^= mask
	r.stripes[first].Unlock()
	return nil
}

// Snapshot returns a copy of the region contents. It is a node-local
// maintenance operation (used to model local persistence and tests), not a
// network verb.
func (r *Region) Snapshot() []byte {
	out := make([]byte, len(r.buf))
	for i := 0; i < regionStripes; i++ {
		r.stripes[i].RLock()
	}
	copy(out, r.buf)
	for i := regionStripes - 1; i >= 0; i-- {
		r.stripes[i].RUnlock()
	}
	return out
}

// Node is a passive memory host: a set of registered regions. After setup
// (region registration and, for the TCP transport, listening), the node runs
// no protocol logic of its own.
type Node struct {
	name string

	mu      sync.RWMutex
	regions map[RegionID]*Region
}

// NewNode creates a node with the given name. The name identifies the node
// on a netsim.Fabric for failure injection.
func NewNode(name string) *Node {
	return &Node{name: name, regions: make(map[RegionID]*Region)}
}

// Name returns the node's fabric name.
func (n *Node) Name() string { return n.name }

// Register registers a memory region under id, replacing any existing one.
func (n *Node) Register(id RegionID, r *Region) {
	n.mu.Lock()
	n.regions[id] = r
	n.mu.Unlock()
}

// Alloc allocates and registers a fresh region of the given size.
func (n *Node) Alloc(id RegionID, size int, exclusive bool) *Region {
	r := NewRegion(size, exclusive)
	n.Register(id, r)
	return r
}

// Region returns the region registered under id, or nil.
func (n *Node) Region(id RegionID) *Region {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.regions[id]
}

// RegionIDs returns all registered region ids.
func (n *Node) RegionIDs() []RegionID {
	n.mu.RLock()
	defer n.mu.RUnlock()
	ids := make([]RegionID, 0, len(n.regions))
	for id := range n.regions {
		ids = append(ids, id)
	}
	return ids
}
