package rdma

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/metrics"
	"github.com/repro/sift/internal/netsim"
)

// opHeaderSize approximates the on-wire size of a verb header (opcode,
// region, offset, length) plus transport framing; used for latency modelling.
const opHeaderSize = 32

// DialOpts configures a new connection.
type DialOpts struct {
	// Exclusive lists regions to open with at-most-one-connection semantics.
	// Dialing revokes every prior connection's access to these regions.
	// Regions not registered as exclusive are silently opened shared.
	Exclusive []RegionID

	// ReadOnly lists exclusive regions to open with observer access: reads
	// bypass epoch fencing (they keep working across ownership changes), and
	// writes and CAS on the connection fail with ErrFenced. Backup CPU nodes
	// use this to serve lease-based reads from replicated memory without
	// revoking the coordinator's exclusive write access.
	ReadOnly []RegionID

	// OpDeadline bounds every operation on the connection: an operation not
	// remotely acknowledged within this duration completes with ErrDeadline,
	// and the connection stays usable for later operations. Zero disables
	// deadlines (operations may block for as long as the peer is silent).
	OpDeadline time.Duration

	// DialTimeout bounds connection establishment, including the region
	// handshake. Zero means the transport's default (no limit for in-proc;
	// OpDeadline, if set, for TCP).
	DialTimeout time.Duration
}

// Network is an in-process RDMA network: a set of passive nodes joined by a
// netsim.Fabric that models latency, partitions, and node failures.
type Network struct {
	fabric *netsim.Fabric

	mu    sync.RWMutex
	nodes map[string]*Node
}

// NewNetwork creates a network over the given fabric. A nil fabric gets a
// zero-latency default.
func NewNetwork(fabric *netsim.Fabric) *Network {
	if fabric == nil {
		fabric = netsim.NewFabric(nil)
	}
	return &Network{fabric: fabric, nodes: make(map[string]*Node)}
}

// Fabric returns the underlying fabric for failure injection.
func (n *Network) Fabric() *netsim.Fabric { return n.fabric }

// AddNode attaches a node to the network.
func (n *Network) AddNode(node *Node) {
	n.mu.Lock()
	n.nodes[node.Name()] = node
	n.mu.Unlock()
}

// RemoveNode detaches a node (e.g. permanent decommission).
func (n *Network) RemoveNode(name string) {
	n.mu.Lock()
	delete(n.nodes, name)
	n.mu.Unlock()
}

// Node returns the attached node with the given name, or nil.
func (n *Network) Node(name string) *Node {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.nodes[name]
}

// Dial opens a connection from initiator src to the node named dst.
// Establishing the connection involves the remote node's CPU (as in real
// RDMA connection setup); all subsequent verbs are one-sided.
func (n *Network) Dial(src, dst string, opts DialOpts) (Verbs, error) {
	n.mu.RLock()
	node := n.nodes[dst]
	n.mu.RUnlock()
	if node == nil {
		return nil, fmt.Errorf("rdma: dial %s: %w", dst, ErrUnknownRegion)
	}
	// Connection setup round trip.
	if err := n.fabric.Transfer(src, dst, opHeaderSize); err != nil {
		return nil, fmt.Errorf("rdma: dial %s: %w", dst, err)
	}
	c := &inprocConn{net: n, src: src, dst: dst, node: node, epochs: make(map[RegionID]uint64), opDeadline: opts.OpDeadline}
	for _, id := range opts.Exclusive {
		r := node.Region(id)
		if r == nil {
			c.Close()
			return nil, fmt.Errorf("rdma: dial %s region %d: %w", dst, id, ErrUnknownRegion)
		}
		c.epochs[id] = r.Acquire()
	}
	if len(opts.ReadOnly) > 0 {
		c.readonly = make(map[RegionID]bool, len(opts.ReadOnly))
		for _, id := range opts.ReadOnly {
			if node.Region(id) == nil {
				c.Close()
				return nil, fmt.Errorf("rdma: dial %s region %d: %w", dst, id, ErrUnknownRegion)
			}
			c.epochs[id] = ObserverEpoch
			c.readonly[id] = true
		}
	}
	if err := n.fabric.Transfer(dst, src, opHeaderSize); err != nil {
		return nil, fmt.Errorf("rdma: dial %s: %w", dst, err)
	}
	return c, nil
}

// inprocWorkers bounds the per-connection pipeline depth for asynchronous
// submission: up to this many operations execute against the fabric
// concurrently, modelling the parallelism of an RNIC's processing units.
const inprocWorkers = 8

// inprocQueue is the submit-channel depth; submissions beyond it apply
// backpressure to the submitter.
const inprocQueue = 128

// inprocConn is a reliable connection on the in-process transport. Verbs are
// executed directly against the remote node's registered regions; the
// netsim.Fabric supplies latency and failure behaviour. The epochs map is
// immutable after Dial, so the verb paths are lock-free.
type inprocConn struct {
	net  *Network
	src  string
	dst  string
	node *Node

	closed     atomic.Bool
	epochs     map[RegionID]uint64
	readonly   map[RegionID]bool // observer regions: reads only
	opDeadline time.Duration

	// subMu guards the submit channel's lifecycle: Submit sends while
	// holding the read side so Close (write side) cannot close the channel
	// under an in-progress send. Workers start lazily on first Submit.
	subMu sync.RWMutex
	subCh chan *Op

	submitted atomic.Uint64
	inflight  metrics.Depth
}

var (
	_ Submitter       = (*inprocConn)(nil)
	_ PipelineStatser = (*inprocConn)(nil)
)

func (c *inprocConn) region(id RegionID) (*Region, uint64, error) {
	if c.closed.Load() {
		return nil, 0, ErrClosed
	}
	r := c.node.Region(id)
	if r == nil {
		return nil, 0, fmt.Errorf("rdma: region %d: %w", id, ErrUnknownRegion)
	}
	return r, c.epochs[id], nil
}

// Submit implements Submitter: the op executes on one of the connection's
// worker goroutines, so many operations proceed concurrently while the
// submitter keeps going.
func (c *inprocConn) Submit(op *Op) {
	for {
		c.subMu.RLock()
		if c.closed.Load() {
			c.subMu.RUnlock()
			op.complete(ErrClosed)
			return
		}
		if ch := c.subCh; ch != nil {
			op.deadline = time.Time{}
			if c.opDeadline > 0 {
				op.deadline = time.Now().Add(c.opDeadline)
			}
			c.submitted.Add(1)
			c.inflight.Inc()
			ch <- op
			c.subMu.RUnlock()
			return
		}
		c.subMu.RUnlock()
		c.startWorkers()
	}
}

// startWorkers lazily creates the submit channel and worker pool, so
// connections that never Submit (election probes, recovery scans) cost no
// goroutines.
func (c *inprocConn) startWorkers() {
	c.subMu.Lock()
	if c.subCh == nil && !c.closed.Load() {
		ch := make(chan *Op, inprocQueue)
		c.subCh = ch
		for i := 0; i < inprocWorkers; i++ {
			go c.workerLoop(ch)
		}
	}
	c.subMu.Unlock()
}

func (c *inprocConn) workerLoop(ch chan *Op) {
	for op := range ch {
		// Ops that expired while queued complete without executing; ops that
		// expire during execution still executed remotely but report
		// ErrDeadline, mirroring the TCP transport's ambiguity (the initiator
		// cannot tell whether a late operation landed).
		if !op.deadline.IsZero() && time.Now().After(op.deadline) {
			c.inflight.Dec()
			op.complete(ErrDeadline)
			continue
		}
		var err error
		switch op.Kind {
		case OpRead:
			err = c.read(op.Region, op.Offset, op.Data)
		case OpWrite:
			err = c.write(op.Region, op.Offset, op.Data)
		case OpCAS:
			op.Old, err = c.compareAndSwap(op.Region, op.Offset, op.Expect, op.Swap)
		default:
			err = fmt.Errorf("rdma: unknown op kind %d", op.Kind)
		}
		if err == nil && !op.deadline.IsZero() && time.Now().After(op.deadline) {
			err = ErrDeadline
		}
		c.inflight.Dec()
		op.complete(err)
	}
}

// lateness converts an elapsed-past-deadline execution into ErrDeadline for
// the blocking verb paths. Errors that already occurred take precedence.
func (c *inprocConn) lateness(start time.Time, err error) error {
	if err == nil && c.opDeadline > 0 && time.Since(start) > c.opDeadline {
		return ErrDeadline
	}
	return err
}

// Read implements Verbs.
func (c *inprocConn) Read(region RegionID, offset uint64, buf []byte) error {
	return c.lateness(time.Now(), c.read(region, offset, buf))
}

func (c *inprocConn) read(region RegionID, offset uint64, buf []byte) error {
	r, epoch, err := c.region(region)
	if err != nil {
		return err
	}
	if err := c.net.fabric.Transfer(c.src, c.dst, opHeaderSize); err != nil {
		return err
	}
	if err := r.ReadAt(epoch, offset, buf); err != nil {
		return err
	}
	return c.net.fabric.Transfer(c.dst, c.src, opHeaderSize+len(buf))
}

// Write implements Verbs.
func (c *inprocConn) Write(region RegionID, offset uint64, data []byte) error {
	return c.lateness(time.Now(), c.write(region, offset, data))
}

func (c *inprocConn) write(region RegionID, offset uint64, data []byte) error {
	if c.readonly[region] {
		return ErrFenced
	}
	r, epoch, err := c.region(region)
	if err != nil {
		return err
	}
	if err := c.net.fabric.Transfer(c.src, c.dst, opHeaderSize+len(data)); err != nil {
		return err
	}
	if err := r.WriteAt(epoch, offset, data); err != nil {
		return err
	}
	// Reliable-connection acknowledgement.
	return c.net.fabric.Transfer(c.dst, c.src, opHeaderSize)
}

// CompareAndSwap implements Verbs.
func (c *inprocConn) CompareAndSwap(region RegionID, offset uint64, expect, swap uint64) (uint64, error) {
	start := time.Now()
	old, err := c.compareAndSwap(region, offset, expect, swap)
	return old, c.lateness(start, err)
}

func (c *inprocConn) compareAndSwap(region RegionID, offset uint64, expect, swap uint64) (uint64, error) {
	if c.readonly[region] {
		return 0, ErrFenced
	}
	r, epoch, err := c.region(region)
	if err != nil {
		return 0, err
	}
	if err := c.net.fabric.Transfer(c.src, c.dst, opHeaderSize+16); err != nil {
		return 0, err
	}
	old, err := r.CASAt(epoch, offset, expect, swap)
	if err != nil {
		return 0, err
	}
	if err := c.net.fabric.Transfer(c.dst, c.src, opHeaderSize+8); err != nil {
		return 0, err
	}
	return old, nil
}

// Close implements Verbs. Queued operations complete with ErrClosed as the
// workers drain the channel.
func (c *inprocConn) Close() error {
	c.subMu.Lock()
	first := !c.closed.Swap(true)
	ch := c.subCh
	c.subCh = nil
	c.subMu.Unlock()
	if first && ch != nil {
		close(ch)
	}
	return nil
}

// PipelineStats implements PipelineStatser. Flushes equals Submitted: the
// in-process transport has no wire to batch onto, so every submission is
// its own doorbell.
func (c *inprocConn) PipelineStats() PipelineStats {
	n := c.submitted.Load()
	return PipelineStats{
		Submitted:   n,
		Flushes:     n,
		MaxInFlight: uint64(c.inflight.Max()),
	}
}
