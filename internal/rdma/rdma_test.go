package rdma

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestRegionReadWriteRoundTrip(t *testing.T) {
	r := NewRegion(4096, false)
	data := []byte("hello, rdma world")
	if err := r.WriteAt(0, 100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := r.ReadAt(0, 100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
}

func TestRegionRoundTripQuick(t *testing.T) {
	const size = 1 << 16
	r := NewRegion(size, false)
	f := func(off uint16, data []byte) bool {
		offset := uint64(off)
		if offset+uint64(len(data)) > size {
			return true // out of bounds handled elsewhere
		}
		if err := r.WriteAt(0, offset, data); err != nil {
			return false
		}
		buf := make([]byte, len(data))
		if err := r.ReadAt(0, offset, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionOutOfBounds(t *testing.T) {
	r := NewRegion(128, false)
	if err := r.WriteAt(0, 120, make([]byte, 16)); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("write past end: err = %v, want ErrOutOfBounds", err)
	}
	if err := r.ReadAt(0, 1000, make([]byte, 1)); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("read past end: err = %v, want ErrOutOfBounds", err)
	}
	if err := r.WriteAt(0, 0, make([]byte, 128)); err != nil {
		t.Fatalf("exact-fit write should succeed: %v", err)
	}
}

func TestRegionCAS(t *testing.T) {
	r := NewRegion(64, false)
	old, err := r.CASAt(0, 8, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if old != 0 {
		t.Fatalf("first CAS observed %d, want 0", old)
	}
	// Failed CAS returns current value and does not modify.
	old, err = r.CASAt(0, 8, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if old != 42 {
		t.Fatalf("failed CAS observed %d, want 42", old)
	}
	var buf [8]byte
	r.ReadAt(0, 8, buf[:])
	if got := binary.LittleEndian.Uint64(buf[:]); got != 42 {
		t.Fatalf("memory holds %d after failed CAS, want 42", got)
	}
}

func TestRegionCASMisaligned(t *testing.T) {
	r := NewRegion(64, false)
	if _, err := r.CASAt(0, 3, 0, 1); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("misaligned CAS: err = %v, want ErrMisaligned", err)
	}
}

func TestRegionCASMutualExclusion(t *testing.T) {
	// N goroutines CAS-increment a counter; every increment must be applied
	// exactly once.
	r := NewRegion(64, false)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					var buf [8]byte
					r.ReadAt(0, 0, buf[:])
					cur := binary.LittleEndian.Uint64(buf[:])
					old, err := r.CASAt(0, 0, cur, cur+1)
					if err != nil {
						t.Error(err)
						return
					}
					if old == cur {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	var buf [8]byte
	r.ReadAt(0, 0, buf[:])
	if got := binary.LittleEndian.Uint64(buf[:]); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestRegionExclusiveFencing(t *testing.T) {
	r := NewRegion(64, true)
	e1 := r.Acquire()
	if err := r.WriteAt(e1, 0, []byte{1}); err != nil {
		t.Fatalf("owner write: %v", err)
	}
	e2 := r.Acquire()
	if e2 <= e1 {
		t.Fatalf("epochs must increase: %d then %d", e1, e2)
	}
	if err := r.WriteAt(e1, 0, []byte{2}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale owner write: err = %v, want ErrFenced", err)
	}
	if err := r.WriteAt(e2, 0, []byte{3}); err != nil {
		t.Fatalf("new owner write: %v", err)
	}
	var b [1]byte
	if err := r.ReadAt(e2, 0, b[:]); err != nil || b[0] != 3 {
		t.Fatalf("read = %v %d, want 3", err, b[0])
	}
}

func TestRegionNonExclusiveAcquireIsNoop(t *testing.T) {
	r := NewRegion(64, false)
	if e := r.Acquire(); e != 0 {
		t.Fatalf("Acquire on shared region = %d, want 0", e)
	}
	if err := r.WriteAt(0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionSnapshot(t *testing.T) {
	r := NewRegion(32, false)
	r.WriteAt(0, 5, []byte{9, 8, 7})
	snap := r.Snapshot()
	if len(snap) != 32 || snap[5] != 9 || snap[7] != 7 {
		t.Fatalf("snapshot mismatch: %v", snap[:8])
	}
	// Snapshot is a copy.
	snap[5] = 0
	var b [1]byte
	r.ReadAt(0, 5, b[:])
	if b[0] != 9 {
		t.Fatal("snapshot aliases region memory")
	}
}

func TestNodeRegions(t *testing.T) {
	n := NewNode("m0")
	if n.Name() != "m0" {
		t.Fatalf("Name = %q", n.Name())
	}
	r := n.Alloc(1, 128, false)
	if r.Size() != 128 {
		t.Fatalf("Size = %d", r.Size())
	}
	if n.Region(1) != r {
		t.Fatal("Region(1) mismatch")
	}
	if n.Region(9) != nil {
		t.Fatal("unknown region should be nil")
	}
	n.Alloc(2, 64, true)
	ids := n.RegionIDs()
	if len(ids) != 2 {
		t.Fatalf("RegionIDs = %v", ids)
	}
}

func TestRegionStripedConcurrency(t *testing.T) {
	// Concurrent writers to disjoint areas must not corrupt each other.
	r := NewRegion(64<<10, false)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chunk := bytes.Repeat([]byte{byte(w + 1)}, 1024)
			off := uint64(w * 4096)
			for i := 0; i < 100; i++ {
				if err := r.WriteAt(0, off, chunk); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		buf := make([]byte, 1024)
		r.ReadAt(0, uint64(w*4096), buf)
		for _, b := range buf {
			if b != byte(w+1) {
				t.Fatalf("worker %d area corrupted: %d", w, b)
			}
		}
	}
}
