package rdma

import (
	"sync"
	"time"
)

// Pipelined submission: both transports allow many operations in flight on
// one connection, the way a real RNIC allows many work requests on one QP.
// Submit queues an operation and returns immediately; the completion
// callback fires when the remote operation has executed. Operations
// submitted on one connection are delivered to the remote node in
// submission order (reliable-connection ordering) but may *complete* — fire
// their callbacks — out of order, because responses are demultiplexed by
// request ID.

// OpKind selects the verb an Op performs.
type OpKind uint8

// Op kinds.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpCAS
)

// Op is an asynchronous one-sided operation. The submitter fills in the
// request fields; the transport fills in the result fields and then invokes
// Done exactly once. Between Submit and the Done callback the transport owns
// the Op and its Data buffer — the caller must not touch either. Once Done
// returns, the transport holds no reference to the Op, so Done may recycle
// it (and Data) into a pool.
type Op struct {
	Kind   OpKind
	Region RegionID
	Offset uint64

	// Data is the destination buffer for OpRead or the payload for OpWrite.
	Data []byte

	// Expect and Swap are the OpCAS arguments; Old receives the value
	// observed before the swap.
	Expect, Swap uint64
	Old          uint64

	// Err is the operation's outcome, valid once Done fires. Region-level
	// errors (ErrFenced, ErrOutOfBounds, …) affect only this Op; transport
	// errors additionally fail the connection and every other in-flight Op.
	Err error

	// Done is the completion callback. It may run on a transport goroutine
	// and must not block. Leave nil only when submitting through a helper
	// (such as the synchronous Verbs methods) that waits internally.
	Done func(*Op)

	id       uint64    // wire request ID, assigned by the transport
	done     chan *Op  // internal completion channel for synchronous waits
	deadline time.Time // completion deadline, assigned by the transport at Submit
}

// Complete delivers err as the operation's outcome, firing the completion
// callback exactly once. It exists for transport implementations outside
// this package (fault-injection wrappers and the like); ordinary submitters
// never call it.
func (op *Op) Complete(err error) { op.complete(err) }

// complete delivers the outcome to whoever is waiting on the Op.
func (op *Op) complete(err error) {
	op.Err = err
	switch {
	case op.Done != nil:
		op.Done(op)
	case op.done != nil:
		op.done <- op
	}
}

// Submitter is implemented by connections that support pipelined
// (asynchronous, many-in-flight) operation submission alongside the
// blocking Verbs methods.
type Submitter interface {
	Verbs
	// Submit queues op for execution. It never blocks on the network; the
	// outcome is delivered through op.Done (which may fire before Submit
	// returns, e.g. when the connection is already dead).
	Submit(op *Op)
}

// PipelineStats is a snapshot of a pipelined connection's counters.
type PipelineStats struct {
	// Submitted counts operations submitted over the connection's lifetime.
	Submitted uint64
	// Flushes counts writer wake-ups that pushed a batch to the wire
	// (doorbells). Submitted/Flushes is the mean coalescing factor.
	Flushes uint64
	// MaxInFlight is the high-water mark of concurrently outstanding
	// operations on the connection.
	MaxInFlight uint64
	// Expiries counts operations abandoned by the deadline sweep
	// (completed with ErrDeadline while still owed a response).
	Expiries uint64
}

// PipelineStatser is implemented by connections that export PipelineStats.
type PipelineStatser interface {
	PipelineStats() PipelineStats
}

// doneChans pools the single-slot channels used by synchronous waits.
var doneChans = sync.Pool{New: func() any { return make(chan *Op, 1) }}

// submitWait submits op and blocks until it completes, implementing the
// blocking Verbs methods in terms of Submit.
func submitWait(s Submitter, op *Op) error {
	ch := doneChans.Get().(chan *Op)
	op.done = ch
	s.Submit(op)
	<-ch
	op.done = nil
	doneChans.Put(ch)
	return op.Err
}
