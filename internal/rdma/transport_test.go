package rdma

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"github.com/repro/sift/internal/netsim"
)

// verbsTransportTest exercises a Verbs implementation against a node that
// has region 1 (shared, 4 KiB) and region 2 (exclusive, 4 KiB).
func verbsTransportTest(t *testing.T, dial func(opts DialOpts) (Verbs, error)) {
	t.Helper()

	c, err := dial(DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := []byte("one-sided write")
	if err := c.Write(1, 64, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, len(data))
	if err := c.Read(1, 64, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q, want %q", buf, data)
	}

	old, err := c.CompareAndSwap(1, 8, 0, 77)
	if err != nil || old != 0 {
		t.Fatalf("CAS: old=%d err=%v", old, err)
	}
	old, err = c.CompareAndSwap(1, 8, 0, 88)
	if err != nil || old != 77 {
		t.Fatalf("second CAS: old=%d err=%v, want 77", old, err)
	}

	if err := c.Read(99, 0, buf); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("unknown region: err=%v", err)
	}
	if err := c.Write(1, 1<<20, data); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out of bounds: err=%v", err)
	}
	if _, err := c.CompareAndSwap(1, 5, 0, 0); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("misaligned CAS: err=%v", err)
	}

	// Exclusive fencing: a second exclusive dial revokes the first.
	c1, err := dial(DialOpts{Exclusive: []RegionID{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Write(2, 0, []byte{1}); err != nil {
		t.Fatalf("exclusive owner write: %v", err)
	}
	c2, err := dial(DialOpts{Exclusive: []RegionID{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c1.Write(2, 0, []byte{2}); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced write: err=%v, want ErrFenced", err)
	}
	if err := c1.Read(2, 0, buf[:1]); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced read: err=%v, want ErrFenced", err)
	}
	if err := c2.Write(2, 0, []byte{3}); err != nil {
		t.Fatalf("new owner write: %v", err)
	}
	// Shared region still accessible to the fenced connection.
	if err := c1.Read(1, 64, buf); err != nil {
		t.Fatalf("fenced conn reading shared region: %v", err)
	}
}

func newTestNode(name string) *Node {
	n := NewNode(name)
	n.Alloc(1, 4096, false)
	n.Alloc(2, 4096, true)
	return n
}

func TestInprocTransport(t *testing.T) {
	net := NewNetwork(nil)
	net.AddNode(newTestNode("m0"))
	verbsTransportTest(t, func(opts DialOpts) (Verbs, error) {
		return net.Dial("cpu0", "m0", opts)
	})
}

func TestTCPTransport(t *testing.T) {
	node := newTestNode("m0")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, node)
	verbsTransportTest(t, func(opts DialOpts) (Verbs, error) {
		return DialTCP(l.Addr().String(), opts)
	})
}

func TestInprocDialUnknownNode(t *testing.T) {
	nw := NewNetwork(nil)
	if _, err := nw.Dial("cpu0", "ghost", DialOpts{}); err == nil {
		t.Fatal("dial to unknown node should fail")
	}
}

func TestInprocDialUnknownExclusiveRegion(t *testing.T) {
	nw := NewNetwork(nil)
	nw.AddNode(newTestNode("m0"))
	if _, err := nw.Dial("cpu0", "m0", DialOpts{Exclusive: []RegionID{42}}); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("err=%v, want ErrUnknownRegion", err)
	}
}

func TestInprocNodeFailure(t *testing.T) {
	nw := NewNetwork(nil)
	nw.AddNode(newTestNode("m0"))
	c, err := nw.Dial("cpu0", "m0", DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	nw.Fabric().Kill("m0")
	if err := c.Write(1, 0, []byte{1}); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("write to dead node: err=%v", err)
	}
	if _, err := nw.Dial("cpu0", "m0", DialOpts{}); err == nil {
		t.Fatal("dial to dead node should fail")
	}
	nw.Fabric().Restart("m0")
	if err := c.Write(1, 0, []byte{1}); err != nil {
		t.Fatalf("write after restart: %v", err)
	}
}

func TestInprocClosedConn(t *testing.T) {
	nw := NewNetwork(nil)
	nw.AddNode(newTestNode("m0"))
	c, _ := nw.Dial("cpu0", "m0", DialOpts{})
	c.Close()
	if err := c.Write(1, 0, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write on closed conn: err=%v", err)
	}
	if err := c.Read(1, 0, make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read on closed conn: err=%v", err)
	}
}

func TestTCPClosedConn(t *testing.T) {
	node := newTestNode("m0")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, node)
	c, err := DialTCP(l.Addr().String(), DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Write(1, 0, []byte{1}); err == nil {
		t.Fatal("write on closed conn should fail")
	}
}

func TestTCPDialUnknownExclusiveRegion(t *testing.T) {
	node := newTestNode("m0")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, node)
	if _, err := DialTCP(l.Addr().String(), DialOpts{Exclusive: []RegionID{42}}); !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("err=%v, want ErrUnknownRegion", err)
	}
}

func TestRemoveNode(t *testing.T) {
	nw := NewNetwork(nil)
	nw.AddNode(newTestNode("m0"))
	if nw.Node("m0") == nil {
		t.Fatal("node should be present")
	}
	nw.RemoveNode("m0")
	if nw.Node("m0") != nil {
		t.Fatal("node should be gone")
	}
}
