package repmem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// Checksummed main memory. Every logical integrity block — one EC block
// under erasure coding, IntegrityBlockSize bytes otherwise — carries a
// CRC32C per replica, stored in a strip at the end of each node's
// replicated region and mirrored in a coordinator-side cache. Reads verify
// against the cache (no extra RDMA read on the hot path), a failed check is
// treated like a dead-node read — the data is served from another replica
// or reconstructed from the surviving chunks — and the damaged replica is
// rewritten in place. The strip rides the same one-sided writes as the data
// so a successor coordinator can reload the cache at takeover.

// castagnoli is the CRC32C polynomial table (same polynomial the WAL uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcBlock checksums one block or chunk.
func crcBlock(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ErrCorrupt means a main-memory range failed checksum verification and
// could not be repaired from the surviving replicas.
var ErrCorrupt = errors.New("repmem: unrepairable corruption")

// integrity is the checksum machinery for one Memory. sums is the
// coordinator-side checksum cache: one row shared by all replicas in plain
// mode (replicas are byte-identical), one row per node under erasure coding
// (each node stores a different chunk).
type integrity struct {
	m       *Memory
	ibs     uint64 // logical block size
	blocks  int    // logical block count
	physIBS uint64 // per-node bytes per block (chunk size under EC)
	sums    [][]atomic.Uint32
}

func newIntegrity(m *Memory) *integrity {
	g := &integrity{m: m, ibs: uint64(m.cfg.IntegrityBlockSize)}
	g.blocks = (m.cfg.MemSize + int(g.ibs) - 1) / int(g.ibs)
	g.physIBS = g.ibs
	rows := 1
	if m.code != nil {
		g.physIBS = uint64(m.chunk)
		rows = len(m.nodes)
	}
	g.sums = make([][]atomic.Uint32, rows)
	for r := range g.sums {
		g.sums[r] = make([]atomic.Uint32, g.blocks)
	}
	return g
}

// row returns the checksum row for node i.
func (g *integrity) row(i int) []atomic.Uint32 {
	if g.m.code == nil {
		return g.sums[0]
	}
	return g.sums[i]
}

func (g *integrity) sum(i int, b uint64) uint32       { return g.row(i)[b].Load() }
func (g *integrity) setSum(i int, b uint64, v uint32) { g.row(i)[b].Store(v) }

// blockRange returns logical block b's address and length (the final block
// may be short when MemSize is not a multiple of the block size).
func (g *integrity) blockRange(b uint64) (addr uint64, length int) {
	addr = b * g.ibs
	length = int(min64(g.ibs, uint64(g.m.cfg.MemSize)-addr))
	return addr, length
}

// physOff returns the region offset of block b's bytes on any node.
func (g *integrity) physOff(b uint64) uint64 {
	return g.m.layout.MainBase() + b*g.physIBS
}

// physLen returns how many bytes of block b each node stores.
func (g *integrity) physLen(b uint64) int {
	if g.m.code != nil {
		return g.m.chunk
	}
	_, length := g.blockRange(b)
	return length
}

// stripOff returns the region offset of block b's strip entry.
func (g *integrity) stripOff(b uint64) uint64 { return g.m.layout.IntegrityOffset(b) }

// stripEntry renders one strip entry.
func stripEntry(sum uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, sum)
	return buf
}

// bootstrapFresh initializes the checksum cache and every reachable node's
// strip for an all-zero fresh deployment (the CRC of a zero block is not
// zero, so the zeroed strip would otherwise flag every block corrupt).
func (g *integrity) bootstrapFresh() {
	m := g.m
	image := make([]byte, 4*g.blocks)
	for b := uint64(0); b < uint64(g.blocks); b++ {
		sum := crcBlock(make([]byte, g.physLen(b)))
		for r := range g.sums {
			g.sums[r][b].Store(sum)
		}
		binary.LittleEndian.PutUint32(image[4*b:], sum)
	}
	for _, i := range m.nodesInState(nodeLive) {
		c, err := m.conn(i)
		if err == nil {
			err = c.Write(replRegion, m.layout.IntegrityBase(), image)
		}
		if err != nil {
			m.nodeFailed(i, err)
		}
	}
}

// loadSums reloads the checksum cache from the nodes' strips at coordinator
// takeover. Plain mode majority-votes each entry across the live strips (a
// node that died mid-write may hold a stale or torn strip); under erasure
// coding each live node's strip fills its own row, and a dead node's row is
// rewritten when the node is rebuilt.
func (g *integrity) loadSums() error {
	m := g.m
	images := make([][]byte, len(m.nodes))
	got := 0
	for _, i := range m.nodesInState(nodeLive) {
		c, err := m.conn(i)
		if err == nil {
			buf := make([]byte, 4*g.blocks)
			if err = c.Read(replRegion, m.layout.IntegrityBase(), buf); err == nil {
				images[i] = buf
				got++
				continue
			}
		}
		m.nodeFailed(i, err)
		if e := m.checkOpen(); e != nil {
			return e
		}
	}
	if got == 0 {
		return fmt.Errorf("%w: no checksum strip readable", ErrNoQuorum)
	}
	if m.code != nil {
		for i := range m.nodes {
			if images[i] == nil {
				continue
			}
			for b := 0; b < g.blocks; b++ {
				g.sums[i][b].Store(binary.LittleEndian.Uint32(images[i][4*b:]))
			}
		}
		return nil
	}
	for b := 0; b < g.blocks; b++ {
		counts := make(map[uint32]int)
		var winner uint32
		best := 0
		for i := range m.nodes {
			if images[i] == nil {
				continue
			}
			v := binary.LittleEndian.Uint32(images[i][4*b:])
			counts[v]++
			if counts[v] > best {
				best, winner = counts[v], v
			}
		}
		g.sums[0][b].Store(winner)
	}
	return nil
}

// verifySpan checks every block covered by data against node i's checksum
// row. spanStart must be block-aligned and data must end at a block
// boundary or at MemSize. It returns the logical blocks that failed.
func (g *integrity) verifySpan(i int, spanStart uint64, data []byte) []uint64 {
	var bad []uint64
	for off := uint64(0); off < uint64(len(data)); {
		b := (spanStart + off) / g.ibs
		_, length := g.blockRange(b)
		if crcBlock(data[off:off+uint64(length)]) != g.sum(i, b) {
			bad = append(bad, b)
		}
		off += uint64(length)
	}
	return bad
}

// read serves a verified main-space read: it reads under expanded read
// locks, and when verification fails it repairs the damaged blocks under
// write locks and retries. A read that can be served from a clean replica
// (or reconstructed) succeeds immediately; the repair then runs before
// returning so the damaged replica never lingers.
func (g *integrity) read(addr uint64, buf []byte) error {
	m := g.m
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		r := m.expandWriteRange(addr, len(buf))
		m.locks.rlockSpan(r.addr, r.size)
		var bad []uint64
		var err error
		if m.code == nil {
			bad, err = g.readPlainVerified(addr, buf)
		} else {
			bad, err = g.readECVerified(addr, buf)
		}
		m.locks.runlockSpan(r.addr, r.size)
		if len(bad) == 0 {
			return err
		}
		lastErr = err
		m.stats.readRepairs.Add(1)
		m.emit("read.repair", "", fmt.Sprintf("%d corrupt block(s) at read time", len(bad)))
		if rerr := g.repairBlocks(bad); rerr != nil && err != nil {
			return fmt.Errorf("%w (block repair: %v)", err, rerr)
		}
		if err == nil {
			return nil
		}
	}
	return lastErr
}

// readPlainVerified reads the block-expanded range from one live node and
// verifies it, failing over to the next replica when a block is corrupt.
// It returns every corrupt block observed (for post-read repair) even when
// a later replica served the data cleanly. Caller holds expanded rlocks.
func (g *integrity) readPlainVerified(addr uint64, buf []byte) ([]uint64, error) {
	m := g.m
	firstB := addr / g.ibs
	lastB := firstB
	if len(buf) > 0 {
		lastB = (addr + uint64(len(buf)) - 1) / g.ibs
	}
	spanStart := firstB * g.ibs
	spanEnd := min64((lastB+1)*g.ibs, uint64(m.cfg.MemSize))
	scratch := buf
	aligned := addr == spanStart && addr+uint64(len(buf)) == spanEnd
	if !aligned {
		scratch = make([]byte, spanEnd-spanStart)
	}

	live := m.nodesInState(nodeLive)
	if len(live) == 0 {
		return nil, fmt.Errorf("%w: no live memory nodes", ErrNoQuorum)
	}
	badSet := make(map[uint64]struct{})
	start := int(m.readRR.Add(1))
	for k := 0; k < len(live); k++ {
		i := live[(start+k)%len(live)]
		c, err := m.conn(i)
		if err == nil {
			err = c.Read(replRegion, m.physMain(spanStart), scratch)
		}
		if err != nil {
			m.noteConnError(i, c, err)
			if e := m.checkOpen(); e != nil {
				return blockSet(badSet), e
			}
			continue
		}
		m.stats.remoteReads.Add(1)
		nodeBad := g.verifySpan(i, spanStart, scratch)
		if len(nodeBad) == 0 {
			if !aligned {
				copy(buf, scratch[addr-spanStart:])
			}
			return blockSet(badSet), nil
		}
		m.noteCorruption(i, len(nodeBad))
		for _, b := range nodeBad {
			badSet[b] = struct{}{}
		}
	}
	return blockSet(badSet), fmt.Errorf("%w: every replica failed or was corrupt", ErrCorrupt)
}

// readECVerified reads a main-space range under erasure coding with chunk
// verification, falling back from the single-chunk fast path to block
// reconstruction when the owner's chunk is corrupt. Caller holds expanded
// rlocks.
func (g *integrity) readECVerified(addr uint64, buf []byte) ([]uint64, error) {
	m := g.m
	C := uint64(m.chunk)
	B := uint64(m.cfg.ECBlockSize)
	var bad []uint64

	// Fast path: the range lies inside a single chunk whose owner is live.
	// The full chunk is read (still one RDMA READ, into a pooled buffer) so
	// it can be verified.
	if len(buf) > 0 {
		b := addr / B
		within := addr % B
		j := int(within / C)
		endWithin := within + uint64(len(buf)) - 1
		if int(endWithin/C) == j && m.state[j].Load() == nodeLive {
			c, err := m.conn(j)
			if err == nil {
				cp := m.chunkPool.Get().(*[]byte)
				chunk := *cp
				if err = c.Read(replRegion, g.physOff(b), chunk); err == nil {
					m.stats.remoteReads.Add(1)
					if crcBlock(chunk) == g.sum(j, b) {
						copy(buf, chunk[within%C:])
						m.chunkPool.Put(cp)
						return nil, nil
					}
					// Corrupt owner: treat exactly like a dead-node read and
					// reconstruct below.
					m.noteCorruption(j, 1)
					bad = append(bad, b)
				}
				m.chunkPool.Put(cp)
			}
			if err != nil {
				m.noteConnError(j, c, err)
				if e := m.checkOpen(); e != nil {
					return bad, e
				}
			}
		}
	}

	// General path: reconstruct each affected block — whole-block spans
	// straight into the caller's buffer, partial edges via scratch.
	sc := m.getECScratch()
	defer m.putECScratch(sc)
	first := addr / B
	last := first
	if len(buf) > 0 {
		last = (addr + uint64(len(buf)) - 1) / B
	}
	for b := first; b <= last; b++ {
		blockStart := b * B
		lo := max64(addr, blockStart)
		hi := min64(addr+uint64(len(buf)), blockStart+B)
		target := sc.block
		whole := lo == blockStart && hi == blockStart+B
		if whole {
			target = buf[lo-addr : hi-addr]
		}
		corrupt, err := m.readBlockECInto(sc, b, target)
		if len(corrupt) > 0 {
			bad = append(bad, b)
		}
		if err != nil {
			return bad, err
		}
		if !whole {
			copy(buf[lo-addr:hi-addr], sc.block[lo-blockStart:hi-blockStart])
		}
	}
	return bad, nil
}

// blockSet flattens a block set into a sorted-enough slice.
func blockSet(s map[uint64]struct{}) []uint64 {
	if len(s) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(s))
	for b := range s {
		out = append(out, b)
	}
	return out
}

// repairBlocks rewrites damaged replicas of the given blocks under write
// locks. It is called with no locks held.
func (g *integrity) repairBlocks(blocks []uint64) error {
	var firstErr error
	for _, b := range blocks {
		start, length := g.blockRange(b)
		unlock := g.m.locks.lockRange(start, length)
		var err error
		if g.m.code == nil {
			_, _, err = g.repairPlainBlockLocked(b)
		} else {
			_, err = g.repairECBlockLocked(b)
		}
		unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("block %d: %w", b, err)
		}
	}
	return firstErr
}

// repairPlainBlockLocked re-reads block b from every live replica, picks a
// canonical copy, and rewrites the deviants (data and strip entry) in
// place. The canonical copy is the first replica matching the cached
// checksum; if none matches — the cache itself was stale, e.g. a diverged
// strip at takeover — a strict majority of agreeing replicas is adopted and
// the cache and strips are corrected instead. Caller holds the block's
// write lock. Returns the canonical content.
func (g *integrity) repairPlainBlockLocked(b uint64) ([]byte, int, error) {
	m := g.m
	length := g.physLen(b)
	copies := make(map[int][]byte)
	for _, i := range m.nodesInState(nodeLive) {
		c, err := m.conn(i)
		if err == nil {
			data := make([]byte, length)
			if err = c.Read(replRegion, g.physOff(b), data); err == nil {
				copies[i] = data
				continue
			}
		}
		m.noteConnError(i, c, err)
		if e := m.checkOpen(); e != nil {
			return nil, 0, e
		}
	}
	if len(copies) == 0 {
		return nil, 0, fmt.Errorf("%w: no live replica of block %d", ErrNoQuorum, b)
	}

	want := g.sum(0, b)
	var canonical []byte
	fixStrip := false
	for i := range m.nodes {
		data, ok := copies[i]
		if ok && crcBlock(data) == want {
			canonical = data
			break
		}
	}
	if canonical == nil {
		// No replica matches the cached checksum. Adopt a strict majority of
		// byte-identical replicas: corruption is independent per node, so
		// agreement means the cache (not the data) was wrong.
		best, total := 0, 0
		for i := range m.nodes {
			data, ok := copies[i]
			if !ok {
				continue
			}
			total++
			n := 0
			for _, other := range copies {
				if bytes.Equal(data, other) {
					n++
				}
			}
			if n > best {
				best, canonical = n, data
			}
		}
		if best < 2 || 2*best <= total {
			return nil, 0, fmt.Errorf("%w: block %d has no verified or majority copy", ErrCorrupt, b)
		}
		want = crcBlock(canonical)
		g.setSum(0, b, want)
		fixStrip = true
	}

	entry := stripEntry(want)
	repaired := 0
	for i := range m.nodes {
		data, ok := copies[i]
		if !ok {
			continue
		}
		deviant := !bytes.Equal(data, canonical)
		if !deviant && !fixStrip {
			continue
		}
		c, err := m.conn(i)
		if err == nil {
			if deviant {
				err = c.Write(replRegion, g.physOff(b), canonical)
			}
			if err == nil {
				err = c.Write(replRegion, g.stripOff(b), entry)
			}
		}
		if err != nil {
			m.noteConnError(i, c, err)
			continue
		}
		if deviant {
			m.stats.repairs.Add(1)
			repaired++
		}
	}
	return canonical, repaired, nil
}

// repairECBlockLocked re-reads every live chunk of EC block b, reconstructs
// the block from the chunks that verify, re-encodes it, and rewrites every
// deviant chunk (and strip entry) in place. Caller holds the block's write
// lock.
func (g *integrity) repairECBlockLocked(b uint64) (int, error) {
	m := g.m
	k := m.code.K()
	stored := make([][]byte, len(m.nodes))
	verified := make([][]byte, len(m.nodes))
	good := 0
	for _, j := range m.nodesInState(nodeLive) {
		c, err := m.conn(j)
		if err == nil {
			chunk := make([]byte, m.chunk)
			if err = c.Read(replRegion, g.physOff(b), chunk); err == nil {
				stored[j] = chunk
				if crcBlock(chunk) == g.sum(j, b) {
					verified[j] = chunk
					good++
				}
				continue
			}
		}
		m.noteConnError(j, c, err)
		if e := m.checkOpen(); e != nil {
			return 0, e
		}
	}
	if good < k {
		return 0, fmt.Errorf("%w: EC block %d has %d verified chunks, need %d", ErrCorrupt, b, good, k)
	}
	block, err := m.code.Decode(verified)
	if err != nil {
		return 0, err
	}
	enc, err := m.code.Encode(block)
	if err != nil {
		return 0, err
	}
	repaired := 0
	for j := range m.nodes {
		if stored[j] == nil {
			continue
		}
		sum := crcBlock(enc[j])
		deviant := !bytes.Equal(stored[j], enc[j])
		fixStrip := g.sum(j, b) != sum
		if !deviant && !fixStrip {
			continue
		}
		g.setSum(j, b, sum)
		c, err := m.conn(j)
		if err == nil {
			if deviant {
				err = c.Write(replRegion, g.physOff(b), enc[j])
			}
			if err == nil {
				err = c.Write(replRegion, g.stripOff(b), stripEntry(sum))
			}
		}
		if err != nil {
			m.noteConnError(j, c, err)
			continue
		}
		if deviant {
			m.stats.repairs.Add(1)
			repaired++
		}
	}
	return repaired, nil
}

// readPlainBlockNoRepair returns block b's verified content from any live
// replica. It returns an error wrapping ErrCorrupt when every live replica
// fails verification, and performs no writes, so it is safe under a read
// lock.
func (g *integrity) readPlainBlockNoRepair(b uint64) ([]byte, error) {
	m := g.m
	length := g.physLen(b)
	want := g.sum(0, b)
	var bad int
	for _, i := range m.nodesInState(nodeLive) {
		c, err := m.conn(i)
		if err == nil {
			data := make([]byte, length)
			if err = c.Read(replRegion, g.physOff(b), data); err == nil {
				if crcBlock(data) == want {
					return data, nil
				}
				bad++
				m.noteCorruption(i, 1)
				continue
			}
		}
		m.noteConnError(i, c, err)
		if e := m.checkOpen(); e != nil {
			return nil, e
		}
	}
	if bad == 0 {
		return nil, fmt.Errorf("%w: no live source for block %d", ErrNoQuorum, b)
	}
	return nil, fmt.Errorf("%w: no verified replica of block %d", ErrCorrupt, b)
}

// readPlainBlockLocked returns block b's verified content for a
// read-modify-write under an already-held write lock, repairing in place
// when no replica verifies.
func (g *integrity) readPlainBlockLocked(b uint64) ([]byte, error) {
	blk, err := g.readPlainBlockNoRepair(b)
	if err == nil || !errors.Is(err, ErrCorrupt) {
		return blk, err
	}
	canonical, _, rerr := g.repairPlainBlockLocked(b)
	return canonical, rerr
}

// buildPlainSpan assembles the block-aligned write span covering
// [addr, addr+len(data)) and its strip image, reading (verified) edge
// blocks when the write is not block-aligned. Caller holds write locks over
// the expanded range. ok is false when an edge block has no retrievable
// content — the caller skips the apply and the WAL retains the entry.
func (g *integrity) buildPlainSpan(addr uint64, data []byte) (span []byte, spanStart uint64, strip []byte, ok bool) {
	firstB := addr / g.ibs
	lastB := (addr + uint64(len(data)) - 1) / g.ibs
	spanStart = firstB * g.ibs
	spanEnd := min64((lastB+1)*g.ibs, uint64(g.m.cfg.MemSize))

	if addr == spanStart && addr+uint64(len(data)) == spanEnd {
		span = data
	} else {
		span = make([]byte, spanEnd-spanStart)
		edges := []uint64{firstB}
		if lastB != firstB {
			edges = append(edges, lastB)
		}
		for _, b := range edges {
			bStart, bLen := g.blockRange(b)
			if addr <= bStart && addr+uint64(len(data)) >= bStart+uint64(bLen) {
				continue // fully overwritten below
			}
			blk, err := g.readPlainBlockLocked(b)
			if err != nil {
				return nil, 0, nil, false
			}
			copy(span[bStart-spanStart:], blk)
		}
		copy(span[addr-spanStart:], data)
	}

	strip = make([]byte, 4*(lastB-firstB+1))
	for b := firstB; b <= lastB; b++ {
		bStart, bLen := g.blockRange(b)
		sum := crcBlock(span[bStart-spanStart : bStart-spanStart+uint64(bLen)])
		g.setSum(0, b, sum)
		binary.LittleEndian.PutUint32(strip[4*(b-firstB):], sum)
	}
	return span, spanStart, strip, true
}
