package repmem

import (
	"fmt"
	"time"

	"github.com/repro/sift/internal/memnode"
)

// replRegion is the replicated region id on every memory node.
const replRegion = memnode.ReplRegionID

// Read serves a main-space read. Because all requests flow through the
// coordinator, which holds an effective lease on the whole memory (§3.3.1),
// no quorum is needed: one one-sided RDMA READ from any live node suffices.
// Under erasure coding, reads within a single chunk go straight to the
// chunk's owner node; anything else reconstructs the affected blocks from
// any k chunks, preferring data chunks to skip decoding (§5.1).
func (m *Memory) Read(addr uint64, buf []byte) error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.checkMainRange(addr, len(buf)); err != nil {
		return err
	}
	m.stats.reads.Add(1)
	if h := m.cfg.Latency; h != nil {
		start := time.Now()
		defer func() { h.Read.Record(time.Since(start)) }()
	}
	if m.integ != nil {
		// Verified read with transparent read-repair; takes its own locks.
		return m.integ.read(addr, buf)
	}
	m.locks.rlockSpan(addr, len(buf))
	defer m.locks.runlockSpan(addr, len(buf))
	if m.code == nil {
		return m.readPlain(addr, buf)
	}
	return m.readEC(addr, buf)
}

// readPlain reads from one live node, failing over on errors.
func (m *Memory) readPlain(addr uint64, buf []byte) error {
	live := m.nodesInState(nodeLive)
	if len(live) == 0 {
		return fmt.Errorf("%w: no live memory nodes", ErrNoQuorum)
	}
	start := int(m.readRR.Add(1))
	for k := 0; k < len(live); k++ {
		i := live[(start+k)%len(live)]
		c, err := m.conn(i)
		if err == nil {
			err = c.Read(replRegion, m.physMain(addr), buf)
		}
		if err != nil {
			m.noteConnError(i, c, err)
			if e := m.checkOpen(); e != nil {
				return e
			}
			continue
		}
		m.stats.remoteReads.Add(1)
		return nil
	}
	return fmt.Errorf("%w: all read attempts failed", ErrNoQuorum)
}

// readEC reads a main-space range under erasure coding.
func (m *Memory) readEC(addr uint64, buf []byte) error {
	C := uint64(m.chunk)
	B := uint64(m.cfg.ECBlockSize)

	// Fast path: the range lies inside a single chunk whose owner is live.
	if len(buf) > 0 {
		b := addr / B
		within := addr % B
		j := int(within / C)
		endWithin := within + uint64(len(buf)) - 1
		if int(endWithin/C) == j && m.state[j].Load() == nodeLive {
			c, err := m.conn(j)
			if err == nil {
				phys := m.layout.MainBase() + b*C + (within % C)
				if err = c.Read(replRegion, phys, buf); err == nil {
					m.stats.remoteReads.Add(1)
					return nil
				}
			}
			m.noteConnError(j, c, err)
			if e := m.checkOpen(); e != nil {
				return e
			}
			// Fall through to the reconstruction path.
		}
	}

	// General path: reconstruct each affected block. Whole-block spans are
	// reconstructed straight into the caller's buffer; partial edges go
	// through the scratch block.
	sc := m.getECScratch()
	defer m.putECScratch(sc)
	first := addr / B
	last := first
	if len(buf) > 0 {
		last = (addr + uint64(len(buf)) - 1) / B
	}
	for b := first; b <= last; b++ {
		blockStart := b * B
		lo := max64(addr, blockStart)
		hi := min64(addr+uint64(len(buf)), blockStart+B)
		if lo == blockStart && hi == blockStart+B {
			if _, err := m.readBlockECInto(sc, b, buf[lo-addr:hi-addr]); err != nil {
				return err
			}
			continue
		}
		if _, err := m.readBlockECInto(sc, b, sc.block); err != nil {
			return err
		}
		copy(buf[lo-addr:hi-addr], sc.block[lo-blockStart:hi-blockStart])
	}
	return nil
}

// readBlockEC fetches any k chunks of EC block b from live nodes (data
// chunks first) and reconstructs the block into a fresh buffer. With
// integrity enabled a chunk that fails its checksum is skipped like a dead
// node; the second return value lists the nodes whose chunks were corrupt.
func (m *Memory) readBlockEC(b uint64) ([]byte, []int, error) {
	sc := m.getECScratch()
	defer m.putECScratch(sc)
	block := make([]byte, m.cfg.ECBlockSize)
	corrupt, err := m.readBlockECInto(sc, b, block)
	if err != nil {
		return nil, corrupt, err
	}
	return block, corrupt, nil
}

// readBlockECInto reconstructs EC block b into block (exactly ECBlockSize
// bytes) without allocating: data chunks are RDMA-read directly into their
// positions in block, parity chunks (touched only when a data chunk is
// unavailable) land in sc's parity scratch, and DecodeInto recomputes only
// the missing data rows. A chunk that fails its CRC or its read leaves
// garbage in its block range, but its nil entry in the chunk set forces
// DecodeInto to overwrite that range from the survivors.
func (m *Memory) readBlockECInto(sc *ecScratch, b uint64, block []byte) ([]int, error) {
	n := len(m.nodes)
	k := m.code.K()
	C := m.chunk
	phys := m.layout.MainBase() + b*uint64(C)
	chunks := sc.rchunks
	for j := range chunks {
		chunks[j] = nil
	}
	var corrupt []int
	got := 0
	decodedNeeded := false
	for j := 0; j < n && got < k; j++ {
		if m.state[j].Load() != nodeLive {
			if j < k {
				decodedNeeded = true
			}
			continue
		}
		var target []byte
		if j < k {
			target = block[j*C : (j+1)*C]
		} else {
			target = sc.rparity[(j-k)*C : (j-k+1)*C]
		}
		c, err := m.conn(j)
		if err == nil {
			if err = c.Read(replRegion, phys, target); err == nil {
				m.stats.remoteReads.Add(1)
				if m.integ != nil && crcBlock(target) != m.integ.sum(j, b) {
					m.noteCorruption(j, 1)
					corrupt = append(corrupt, j)
					if j < k {
						decodedNeeded = true
					}
					continue
				}
				chunks[j] = target
				got++
				continue
			}
		}
		m.noteConnError(j, c, err)
		if e := m.checkOpen(); e != nil {
			return corrupt, e
		}
		if j < k {
			decodedNeeded = true
		}
	}
	if got < k {
		return corrupt, fmt.Errorf("%w: only %d of %d chunks usable", ErrNoQuorum, got, k)
	}
	if decodedNeeded {
		m.stats.decodedReads.Add(1)
	}
	return corrupt, m.code.DecodeInto(block, chunks)
}

// DirectRead serves a direct-space read from one live node.
func (m *Memory) DirectRead(addr uint64, buf []byte) error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.checkDirectRange(addr, len(buf)); err != nil {
		return err
	}
	m.directLocks.rlockSpan(addr, len(buf))
	defer m.directLocks.runlockSpan(addr, len(buf))
	live := m.nodesInState(nodeLive)
	if len(live) == 0 {
		return fmt.Errorf("%w: no live memory nodes", ErrNoQuorum)
	}
	start := int(m.readRR.Add(1))
	for k := 0; k < len(live); k++ {
		i := live[(start+k)%len(live)]
		c, err := m.conn(i)
		if err == nil {
			err = c.Read(replRegion, m.physDirect(addr), buf)
		}
		if err != nil {
			m.noteConnError(i, c, err)
			if e := m.checkOpen(); e != nil {
				return e
			}
			continue
		}
		return nil
	}
	return fmt.Errorf("%w: all read attempts failed", ErrNoQuorum)
}

// DirectReadAll returns each live node's copy of a direct-space range,
// letting callers quorum-merge self-validating data (the key-value store's
// WAL recovery). Unreachable nodes yield nil entries.
func (m *Memory) DirectReadAll(addr uint64, size int) ([][]byte, error) {
	if err := m.checkOpen(); err != nil {
		return nil, err
	}
	if err := m.checkDirectRange(addr, size); err != nil {
		return nil, err
	}
	unlock := m.directLocks.rlockRange(addr, size)
	defer unlock()
	out := make([][]byte, len(m.nodes))
	got := 0
	for i := range m.nodes {
		if m.state[i].Load() != nodeLive {
			continue
		}
		c, err := m.conn(i)
		if err == nil {
			buf := make([]byte, size)
			if err = c.Read(replRegion, m.physDirect(addr), buf); err == nil {
				out[i] = buf
				got++
				continue
			}
		}
		m.noteConnError(i, c, err)
		if e := m.checkOpen(); e != nil {
			return nil, e
		}
	}
	if got == 0 {
		return nil, fmt.Errorf("%w: no live memory nodes", ErrNoQuorum)
	}
	return out, nil
}
