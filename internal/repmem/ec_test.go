package repmem

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/repro/sift/internal/memnode"
)

// blockFor returns an EC block size divisible by k = fm+1; the matching
// MemSize below is a multiple of it.
func blockFor(fm int) int { return (fm + 1) * 512 }

// memFor returns a MemSize that blockFor(fm) divides.
func memFor(fm int) int { return (fm + 1) * 16384 }

// ecConfig builds an EC-enabled config for Fm failures (2Fm+1 nodes,
// k=Fm+1 data chunks, m=Fm parity chunks).
func ecConfig(e *testEnv, cpu string, fm int) Config {
	return Config{
		MemoryNodes: e.names,
		Dial:        e.dialer(cpu),
		MemSize:     memFor(fm),
		DirectSize:  8 << 10,
		WALSlots:    64,
		WALSlotSize: 4096,
		ECData:      fm + 1,
		ECParity:    fm,
		ECBlockSize: blockFor(fm),
	}
}

func newECEnv(t *testing.T, fm int) (*testEnv, Config) {
	t.Helper()
	cfg := Config{
		MemSize: memFor(fm), DirectSize: 8 << 10,
		WALSlots: 64, WALSlotSize: 4096,
		ECData: fm + 1, ECParity: fm, ECBlockSize: blockFor(fm),
	}
	e := newEnv(t, 2*fm+1, cfg.Layout())
	return e, ecConfig(e, "c", fm)
}

func TestECLayoutShrinksPerNodeMemory(t *testing.T) {
	for fm := 1; fm <= 3; fm++ {
		cfg := Config{
			MemSize: 1 << 20, DirectSize: 0,
			WALSlots: 16, WALSlotSize: 256,
			ECData: fm + 1, ECParity: fm, ECBlockSize: 4096,
		}
		l := cfg.Layout()
		if l.MainSize != (1<<20)/(fm+1) {
			t.Fatalf("Fm=%d: per-node main = %d, want %d", fm, l.MainSize, (1<<20)/(fm+1))
		}
	}
}

func TestECWriteReadRoundTrip(t *testing.T) {
	e, cfg := newECEnv(t, 1)
	_ = e
	m := newMemory(t, cfg)
	if !m.ErasureEnabled() {
		t.Fatal("EC should be enabled")
	}

	// Full-block aligned write.
	block := bytes.Repeat([]byte{0xAB}, 1024)
	if err := m.Write(2048, block); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if err := m.Read(2048, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, block) {
		t.Fatal("full-block round trip failed")
	}

	// Partial (sub-chunk) write: read-modify-write path.
	if err := m.Write(2100, []byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := m.Read(2048, buf); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), block...)
	copy(want[52:], "partial")
	if !bytes.Equal(buf, want) {
		t.Fatal("partial write merged incorrectly")
	}
}

func TestECCrossBlockWrite(t *testing.T) {
	_, cfg := newECEnv(t, 1)
	m := newMemory(t, cfg)
	data := make([]byte, 3000) // spans 4 EC blocks
	rand.New(rand.NewSource(5)).Read(data)
	if err := m.Write(500, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := m.Read(500, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-block round trip failed")
	}
}

func TestECReadSurvivesFmFailures(t *testing.T) {
	for fm := 1; fm <= 2; fm++ {
		fm := fm
		t.Run(fmt.Sprintf("Fm=%d", fm), func(t *testing.T) {
			e, cfg := newECEnv(t, fm)
			m := newMemory(t, cfg)
			data := bytes.Repeat([]byte{0xCD}, 1024)
			if err := m.Write(0, data); err != nil {
				t.Fatal(err)
			}
			m.WaitApplied(t)
			// Kill Fm nodes, including data-chunk owners (nodes 0..k-1 hold
			// data chunks, so killing node 0 forces decoding).
			for i := 0; i < fm; i++ {
				e.nw.Fabric().Kill(e.names[i])
			}
			buf := make([]byte, 1024)
			var err error
			for attempt := 0; attempt < 3; attempt++ {
				if err = m.Read(0, buf); err == nil {
					break
				}
			}
			if err != nil {
				t.Fatalf("read with %d failures: %v", fm, err)
			}
			if !bytes.Equal(buf, data) {
				t.Fatal("decoded data mismatch")
			}
			if m.Stats().DecodedReads == 0 {
				t.Fatal("expected decoding to have occurred")
			}
		})
	}
}

func TestECSubChunkReadSingleRemoteRead(t *testing.T) {
	_, cfg := newECEnv(t, 1)
	m := newMemory(t, cfg)
	data := bytes.Repeat([]byte{7}, 1024)
	if err := m.Write(0, data); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)
	before := m.Stats().RemoteReads
	// Chunk size is 512 (block 1024 / k 2); a 100-byte read within chunk 0
	// should cost exactly one RDMA read.
	buf := make([]byte, 100)
	if err := m.Read(10, buf); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().RemoteReads - before; got != 1 {
		t.Fatalf("sub-chunk read issued %d remote reads, want 1", got)
	}
}

func TestECWritesCommitWithQuorum(t *testing.T) {
	// With Fm=1 (3 nodes), killing one node must not block writes, and the
	// WAL (unencoded) still protects the data.
	e, cfg := newECEnv(t, 1)
	m := newMemory(t, cfg)
	e.nw.Fabric().Kill(e.names[2]) // kill a parity holder
	data := bytes.Repeat([]byte{9}, 1024)
	if err := m.Write(1024, data); err != nil {
		t.Fatalf("EC write with one failure: %v", err)
	}
	buf := make([]byte, 1024)
	if err := m.Read(1024, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("mismatch")
	}
}

func TestECCoordinatorFailoverPreservesData(t *testing.T) {
	e, cfg := newECEnv(t, 1)
	m1 := newMemory(t, cfg)
	want := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(11))
	for i := uint64(0); i < 16; i++ {
		data := make([]byte, 1024)
		rng.Read(data)
		if err := m1.Write(i*1024, data); err != nil {
			t.Fatal(err)
		}
		want[i*1024] = data
	}
	cfg2 := ecConfig(e, "cpu2", 1)
	m2 := newMemory(t, cfg2)
	for addr, data := range want {
		buf := make([]byte, len(data))
		if err := m2.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("addr %d mismatch after EC failover", addr)
		}
	}
}

func TestECNodeRecoveryRebuildsChunks(t *testing.T) {
	e, cfg := newECEnv(t, 1)
	m := newMemory(t, cfg)
	rng := rand.New(rand.NewSource(3))
	want := make([][]byte, 8)
	for i := range want {
		want[i] = make([]byte, 1024)
		rng.Read(want[i])
		if err := m.Write(uint64(i)*1024, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	m.WaitApplied(t)

	victim := e.names[0] // data-chunk owner
	e.nw.Fabric().Kill(victim)
	m.Write(0, want[0]) // trigger failure detection
	memnode.Reset(e.nw.Node(victim), cfg.Layout())
	e.nw.Fabric().Restart(victim)
	if err := m.RecoverNodeNow(victim); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)

	// Kill the other data holder; reads of its chunks must decode from the
	// recovered node's chunk + parity.
	e.nw.Fabric().Kill(e.names[1])
	for i := range want {
		buf := make([]byte, 1024)
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = m.Read(uint64(i)*1024, buf); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(buf, want[i]) {
			t.Fatalf("block %d mismatch after chunk rebuild", i)
		}
	}
}

func TestECQuickMatchesModel(t *testing.T) {
	_, cfg := newECEnv(t, 1)
	m := newMemory(t, cfg)
	model := make([]byte, cfg.MemSize)
	rng := rand.New(rand.NewSource(21))
	for op := 0; op < 150; op++ {
		addr := uint64(rng.Intn(cfg.MemSize - 2048))
		size := 1 + rng.Intn(2000)
		if rng.Intn(2) == 0 {
			data := make([]byte, size)
			rng.Read(data)
			if err := m.Write(addr, data); err != nil {
				t.Fatal(err)
			}
			copy(model[addr:], data)
		} else {
			buf := make([]byte, size)
			if err := m.Read(addr, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, model[addr:addr+uint64(size)]) {
				t.Fatalf("op %d: mismatch at %d+%d", op, addr, size)
			}
		}
	}
}
