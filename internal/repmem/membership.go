package repmem

import (
	"encoding/binary"
	"sync"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
)

// Membership tracking: the coordinator publishes its view of the live
// memory nodes as an epoch+term-tagged record on every writable node's
// admin region (see memnode.AdminMembershipOffset). A successor coordinator
// consults the highest-(term,version) record of its own config epoch and
// rebuilds any node absent from that bitmap — closing the window where a
// node that silently missed updates (partitioned with its DRAM intact)
// would otherwise be read as if current. Stale coordinators can keep
// writing their old records without harm: readers take the maximum, and
// records from other epochs describe a different member list entirely, so
// they are ignored outright rather than merely term-compared.

// membership is the publisher-side state.
type membership struct {
	mu      sync.Mutex
	version uint16
}

// publishMembership writes the current live-node bitmap, tagged with this
// group's config epoch and this coordinator's term, to every writable node.
// Best effort for progress — if the group has lost its quorum the write set
// shrinks accordingly and progress stops elsewhere anyway — but failures
// are counted and surfaced (Stats.MembershipPublishErrors, a
// "membership.publish-error" event) so a wedged admin region is visible
// before a failover trips over it.
func (m *Memory) publishMembership() {
	if m.closed.Load() || m.fenced.Load() {
		return
	}
	m.member.mu.Lock()
	m.member.version++
	version := m.member.version
	var bitmap uint32
	for i := range m.nodes {
		if m.state[i].Load() == nodeLive {
			bitmap |= 1 << uint(i)
		}
	}
	w0, w1 := memnode.PackMembership(m.epoch.Load(), m.cfg.Term, version, bitmap)
	m.member.mu.Unlock()

	// One 16-byte write so the record can't tear across two operations
	// (the complement check in UnpackMembership catches torn media too).
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], w0)
	binary.LittleEndian.PutUint64(buf[8:], w1)
	for _, i := range m.writableNodes() {
		c, err := m.conn(i)
		if err == nil {
			err = c.Write(memnode.AdminRegionID, memnode.AdminMembershipOffset, buf[:])
		}
		if err != nil {
			// Do not recurse into nodeFailed (which would republish); the
			// next operation against this node will detect the failure.
			m.stats.membershipPublishErrors.Add(1)
			m.emit("membership.publish-error", m.nodeName(i), err.Error())
			continue
		}
	}
}

// PublishServing writes this group's (configEpoch, term) to every writable
// node's serving word (memnode.AdminServingOffset), marking the takeover
// complete: recovery and replay are done and the table structures are
// stable apart from live applies. Backup readers refuse to serve a lease
// whose (epoch, term) has no matching serving word — the epoch half keeps
// views built against an outgoing member set from serving after a
// reconfiguration cutover. Best effort, like publishMembership.
func (m *Memory) PublishServing() {
	if m.closed.Load() || m.fenced.Load() {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], memnode.PackServing(m.epoch.Load(), m.cfg.Term))
	for _, i := range m.writableNodes() {
		c, err := m.conn(i)
		if err == nil {
			err = c.Write(memnode.AdminRegionID, memnode.AdminServingOffset, buf[:])
		}
		if err != nil {
			continue
		}
	}
}

// readServing returns the highest (epoch, term) serving word readable
// across the given connections, or ok=false when none is set.
func readServing(conns []rdma.Verbs) (epoch uint32, term uint16, ok bool) {
	var best uint64
	for _, c := range conns {
		if c == nil {
			continue
		}
		var buf [8]byte
		if err := c.Read(memnode.AdminRegionID, memnode.AdminServingOffset, buf[:]); err != nil {
			continue
		}
		if w := binary.LittleEndian.Uint64(buf[:]); w > best {
			best = w
		}
	}
	epoch, term = memnode.UnpackServing(best)
	return epoch, term, best != 0
}

// readMembershipAt returns the highest-(term,version) membership record of
// the given config epoch readable across the connections, or ok=false when
// none is set. Records of any other epoch — older or newer — are skipped:
// their bitmap's bit positions index a different member list. (A caller
// that needs to detect a newer epoch reads the epoch word, not this.)
func readMembershipAt(conns []rdma.Verbs, epoch uint32) (term, version uint16, bitmap uint32, ok bool) {
	for _, c := range conns {
		if c == nil {
			continue
		}
		var buf [16]byte
		if err := c.Read(memnode.AdminRegionID, memnode.AdminMembershipOffset, buf[:]); err != nil {
			continue
		}
		w0 := binary.LittleEndian.Uint64(buf[:8])
		w1 := binary.LittleEndian.Uint64(buf[8:])
		e, t, v, b, valid := memnode.UnpackMembership(w0, w1)
		if !valid || e != epoch {
			continue
		}
		if !ok || t > term || (t == term && v > version) {
			term, version, bitmap, ok = t, v, b, true
		}
	}
	return term, version, bitmap, ok
}
