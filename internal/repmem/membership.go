package repmem

import (
	"encoding/binary"
	"sync"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
)

// Membership tracking: the coordinator publishes its view of the live
// memory nodes as a term-tagged word on every writable node's admin region
// (see memnode.AdminMembershipOffset). A successor coordinator consults the
// highest-(term,version) word it can read and rebuilds any node absent from
// that bitmap — closing the window where a node that silently missed
// updates (partitioned with its DRAM intact) would otherwise be read as if
// current. Stale coordinators can keep writing their old-term words without
// harm: readers take the maximum.

// membership is the publisher-side state.
type membership struct {
	mu      sync.Mutex
	version uint16
}

// publishMembership writes the current live-node bitmap, tagged with this
// coordinator's term, to every writable node. Best effort: if the group has
// lost its quorum the write set shrinks accordingly and progress stops
// elsewhere anyway.
func (m *Memory) publishMembership() {
	if m.closed.Load() || m.fenced.Load() {
		return
	}
	m.member.mu.Lock()
	m.member.version++
	version := m.member.version
	var bitmap uint32
	for i := range m.nodes {
		if m.state[i].Load() == nodeLive {
			bitmap |= 1 << uint(i)
		}
	}
	word := memnode.PackMembership(m.cfg.Term, version, bitmap)
	m.member.mu.Unlock()

	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], word)
	for _, i := range m.writableNodes() {
		c, err := m.conn(i)
		if err == nil {
			err = c.Write(memnode.AdminRegionID, memnode.AdminMembershipOffset, buf[:])
		}
		if err != nil {
			// Do not recurse into nodeFailed (which would republish); the
			// next operation against this node will detect the failure.
			continue
		}
	}
}

// PublishServing writes this coordinator's term to every writable node's
// serving word (memnode.AdminServingOffset), marking its takeover complete:
// recovery and replay are done and the table structures are stable apart
// from live applies. Backup readers refuse to serve a lease whose term has
// no matching serving word. Best effort, like publishMembership.
func (m *Memory) PublishServing() {
	if m.closed.Load() || m.fenced.Load() {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(m.cfg.Term))
	for _, i := range m.writableNodes() {
		c, err := m.conn(i)
		if err == nil {
			err = c.Write(memnode.AdminRegionID, memnode.AdminServingOffset, buf[:])
		}
		if err != nil {
			continue
		}
	}
}

// readServing returns the highest serving term readable across the given
// connections, or ok=false when none is set.
func readServing(conns []rdma.Verbs) (term uint16, ok bool) {
	var best uint64
	for _, c := range conns {
		if c == nil {
			continue
		}
		var buf [8]byte
		if err := c.Read(memnode.AdminRegionID, memnode.AdminServingOffset, buf[:]); err != nil {
			continue
		}
		if w := binary.LittleEndian.Uint64(buf[:]); w > best {
			best = w
		}
	}
	return uint16(best), best != 0
}

// readMembership returns the highest-(term,version) membership word
// readable across the given connections, or ok=false when none is set.
func readMembership(conns []rdma.Verbs) (term, version uint16, bitmap uint32, ok bool) {
	var best uint64
	for _, c := range conns {
		if c == nil {
			continue
		}
		var buf [8]byte
		if err := c.Read(memnode.AdminRegionID, memnode.AdminMembershipOffset, buf[:]); err != nil {
			continue
		}
		w := binary.LittleEndian.Uint64(buf[:])
		if w == 0 {
			continue
		}
		// (term, version) order coincides with numeric order of the packed
		// word's top 32 bits; bitmap differences below that don't matter
		// because equal (term,version) words are identical by construction.
		if w > best {
			best = w
		}
	}
	if best == 0 {
		return 0, 0, 0, false
	}
	t, v, b := memnode.UnpackMembership(best)
	return t, v, b, true
}
