package repmem

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/wal"
)

func TestWriteBatchEmptyIsNoop(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)
	if err := m.WriteBatch(nil); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Writes != 0 {
		t.Fatal("empty batch counted as a write")
	}
}

func TestUnloggedWriteRoundTrip(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)

	data := []byte("unlogged but replicated")
	if err := m.UnloggedWrite(100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := m.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q", buf)
	}
	// No WAL entry was produced: a takeover replays nothing for it, but the
	// materialized state is already on every node.
	if m.Stats().Writes != 0 {
		t.Fatal("unlogged write counted as logged")
	}
	if err := m.UnloggedWrite(uint64(cfg.MemSize), []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("OOB unlogged write: %v", err)
	}
}

func TestUnloggedWriteLosesQuorum(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)
	e.nw.Fabric().Kill(e.names[0])
	e.nw.Fabric().Kill(e.names[1])
	if err := m.UnloggedWrite(0, []byte{1}); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestOnFencedCallbackFires(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 1 << 10, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 1 << 10
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	var fencedFlag atomic.Bool
	cfg.OnFenced = func() { fencedFlag.Store(true) }
	m1 := newMemory(t, cfg)
	if err := m1.Write(0, []byte("pre")); err != nil {
		t.Fatal(err)
	}

	// A new coordinator takes over the exclusive regions.
	cfg2 := baseConfig(e, "cpu2")
	cfg2.MemSize = 8 << 10
	cfg2.DirectSize = 1 << 10
	cfg2.WALSlots = 16
	cfg2.WALSlotSize = 256
	m2 := newMemory(t, cfg2)
	_ = m2

	// m1's next operation discovers the fencing and fires the callback.
	err := m1.Write(0, []byte("stale"))
	if err == nil {
		t.Fatal("fenced write succeeded")
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && !fencedFlag.Load() {
		time.Sleep(time.Millisecond)
	}
	if !fencedFlag.Load() {
		t.Fatal("OnFenced never fired")
	}
	// All subsequent ops fail fast with ErrFenced.
	if err := m1.DirectWrite(0, []byte{1}); !errors.Is(err, ErrFenced) {
		t.Fatalf("direct write after fencing: %v", err)
	}
	if err := m1.Read(0, make([]byte, 1)); !errors.Is(err, ErrFenced) {
		t.Fatalf("read after fencing: %v", err)
	}
}

func TestRecoverTwiceRejected(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg) // newMemory already calls Recover
	if err := m.Recover(); err == nil {
		t.Fatal("second Recover accepted")
	}
}

func TestNewWithoutQuorumFails(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	e.nw.Fabric().Kill(e.names[0])
	e.nw.Fabric().Kill(e.names[1])
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	if _, err := New(cfg); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestRecoverNodeNowUnknownNode(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)
	if err := m.RecoverNodeNow("ghost"); err == nil {
		t.Fatal("unknown node accepted")
	}
	// Recovering a live node is a no-op.
	if err := m.RecoverNodeNow(e.names[0]); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundRecoveryManagerDetectsAndRepairs(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 1 << 10, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 1 << 10
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)
	stop := m.StartRecovery(5 * time.Millisecond)
	defer stop()

	if err := m.Write(64, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Kill a node with NO triggering operation: the prober must notice.
	victim := e.names[1]
	e.nw.Fabric().Kill(victim)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && m.Stats().NodeFailures == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if m.Stats().NodeFailures == 0 {
		t.Fatal("failure never detected by prober")
	}
	memnode.Reset(e.nw.Node(victim), cfg.Layout())
	e.nw.Fabric().Restart(victim)
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && m.Stats().NodeRecovered == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if m.Stats().NodeRecovered == 0 {
		t.Fatal("node never recovered by manager")
	}
}

func TestDirectWriteOnlySurvivingCopyRecovered(t *testing.T) {
	// A direct write acked by a majority must be visible after failover even
	// if one acking node subsequently dies: DirectReadAll exposes surviving
	// copies for quorum-merge (the KV log's recovery path).
	cfg0 := Config{MemSize: 4 << 10, DirectSize: 4 << 10, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.MemSize = 4 << 10
	cfg.DirectSize = 4 << 10
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m1 := newMemory(t, cfg)

	entry := wal.Entry{Index: 1, Writes: []wal.Write{{Addr: 7, Data: []byte("kv-record")}}}
	slot := make([]byte, 256)
	entry.Encode(slot)
	if err := m1.DirectWrite(0, slot); err != nil {
		t.Fatal(err)
	}
	// One acking node dies.
	e.nw.Fabric().Kill(e.names[0])

	cfg2 := baseConfig(e, "cpu2")
	cfg2.MemSize = 4 << 10
	cfg2.DirectSize = 4 << 10
	cfg2.WALSlots = 16
	cfg2.WALSlotSize = 256
	m2 := newMemory(t, cfg2)
	copies, err := m2.DirectReadAll(0, 256)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	geo := wal.Geometry{Base: 0, SlotSize: 256, Slots: 1}
	for _, cp := range copies {
		if cp == nil {
			continue
		}
		if entries := geo.ScanWindow(cp); len(entries) == 1 && entries[0].Index == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("acked direct write not recoverable from surviving copies")
	}
}

func TestReadEmptyBuffer(t *testing.T) {
	cfg0 := Config{MemSize: 4 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 4 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)
	if err := m.Read(0, nil); err != nil {
		t.Fatalf("zero-length read: %v", err)
	}
}

// Interface conformance: an rdma.Verbs is what Dial must produce.
var _ rdma.Verbs = (*rdmaVerbsCheck)(nil)

type rdmaVerbsCheck struct{ rdma.Verbs }
