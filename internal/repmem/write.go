package repmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/wal"
)

// Write commits a single logged update to the main space: the update is
// appended to the write-ahead log on a majority of memory nodes (one
// one-sided RDMA WRITE each) and applied to the materialized memory in the
// background. Write returns as soon as the entry is committed; the affected
// range stays locked until the background apply completes, so subsequent
// reads never observe the pre-write state after a successful Write.
func (m *Memory) Write(addr uint64, data []byte) error {
	return m.WriteBatch([]wal.Write{{Addr: addr, Data: data}})
}

// WriteBatch commits several updates atomically: they occupy a single log
// entry, so they are applied together without interleaving with other
// conflicting writes (paper §3.3.2). The whole batch must fit in one WAL
// slot.
func (m *Memory) WriteBatch(writes []wal.Write) error {
	// The reconfiguration gate: held shared by every write-path entry point,
	// exclusively by a cutover. A writer that blocks here across a cutover
	// wakes to find the memory closed (ErrReconfigured) and retries against
	// the rebuilt group.
	m.gate.RLock()
	defer m.gate.RUnlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	if len(writes) == 0 {
		return nil
	}
	var start time.Time
	if m.cfg.Latency != nil {
		start = time.Now()
	}
	ranges := make([]lockRange, len(writes))
	for i, w := range writes {
		if err := m.checkMainRange(w.Addr, len(w.Data)); err != nil {
			return err
		}
		ranges[i] = m.expandWriteRange(w.Addr, len(w.Data))
	}

	unlock := m.locks.lockRanges(ranges)

	// Reserve a log index, bounded by the circular log capacity: index i may
	// only be written once entry i-Slots has been applied (its slot is being
	// reused).
	m.seqMu.Lock()
	for m.nextIndex > m.watermark+uint64(m.geo.Slots) && !m.closed.Load() {
		m.seqCond.Wait()
	}
	if m.closed.Load() {
		m.seqMu.Unlock()
		unlock()
		return m.checkOpen()
	}
	idx := m.nextIndex
	m.nextIndex++
	m.seqMu.Unlock()

	entry := wal.Entry{Index: idx, Writes: writes}
	slot := m.getSlot()
	n, err := entry.Encode(slot)
	if err != nil {
		m.putSlot(slot)
		m.finishEntry(idx)
		unlock()
		return fmt.Errorf("repmem: %w", err)
	}
	// Zero the slot tail: recovery compares raw slot bytes against freshly
	// encoded (zero-tailed) images, and pooled buffers carry old payloads.
	clear(slot[n:])

	// appendsDone closes once every node's WAL write has completed, at
	// which point the slot buffer is recyclable and — crucially — no write
	// to this log slot is still in flight, so the slot may be reused by a
	// later entry without racing a straggler.
	appendsDone := make(chan struct{})
	err = m.appendQuorum(idx, slot, func() {
		m.putSlot(slot)
		close(appendsDone)
	})
	if err != nil {
		unlock()
		go func() {
			<-appendsDone
			m.finishEntry(idx)
		}()
		return err
	}
	m.stats.writes.Add(1)
	if h := m.cfg.Latency; h != nil {
		h.Write.Record(time.Since(start))
	}

	// Committed: hand the apply to the background pool. The caller's locks
	// are released by the applier.
	m.applyWG.Add(1)
	go func() {
		m.applySem <- struct{}{}
		defer func() {
			<-m.applySem
			m.applyWG.Done()
		}()
		m.applyEntry(entry)
		unlock()
		<-appendsDone
		m.finishEntry(idx)
		m.stats.applies.Add(1)
	}()
	return nil
}

// appendQuorum writes a WAL slot image to every writable node through the
// per-node workers and returns once a majority has acknowledged (or the
// quorum is unreachable). allDone runs exactly once, after the last
// waited-on node completes — success or failure — when slot may be
// recycled. Suspect nodes receive the slot best-effort on a private copy,
// so a gray node neither delays the quorum nor pins the slot buffer.
func (m *Memory) appendQuorum(idx uint64, slot []byte, allDone func()) error {
	offset := m.geo.SlotOffset(idx)
	wait, bestEffort := m.writeTargets(m.Majority())
	g := newQuorumGroup(len(wait), m.Majority(), allDone)
	for _, i := range wait {
		m.enqueue(i, nodeReq{region: replRegion, offset: offset, data: slot, done: g.ack})
	}
	for _, i := range bestEffort {
		m.enqueueBestEffort(i, replRegion, offset, slot)
	}
	err := m.waitQuorum(g)
	if err != nil {
		if oerr := m.checkOpen(); oerr != nil {
			return oerr
		}
		return err
	}
	return m.checkOpen()
}

// waitQuorum blocks on the quorum group, timing the ack wait into the
// Quorum latency hook.
func (m *Memory) waitQuorum(g *quorumGroup) error {
	if h := m.cfg.Latency; h != nil {
		start := time.Now()
		err := g.wait()
		h.Quorum.Record(time.Since(start))
		return err
	}
	return g.wait()
}

// finishEntry marks idx as applied (or abandoned) and advances the
// contiguous watermark, freeing its slot for reuse.
func (m *Memory) finishEntry(idx uint64) {
	m.seqMu.Lock()
	m.applied[idx] = true
	for m.applied[m.watermark+1] {
		delete(m.applied, m.watermark+1)
		m.watermark++
	}
	m.seqCond.Broadcast()
	m.seqMu.Unlock()
}

// applyEntry writes an entry's updates to the materialized memory on every
// writable node. Failures mark the node dead; the entry remains recoverable
// from the WAL.
func (m *Memory) applyEntry(entry wal.Entry) {
	for _, w := range entry.Writes {
		if m.code != nil {
			m.applyEC(w.Addr, w.Data)
		} else {
			m.applyPlain(w.Addr, w.Data)
		}
	}
}

// fanOutWait enqueues a write to every waited-on node and blocks until all
// their completions arrive. Apply paths must wait for every non-suspect
// node (not just a majority): the caller's range lock is what keeps a
// straggler write from racing a later write to the same address, so it
// cannot be released while any waited-on node's write is outstanding.
// Suspect nodes get the write best-effort on a copied buffer — their
// eventual completion is bounded by the transport deadline and cannot race
// a later write to the same range because the node is repaired through
// full recovery (under the same locks) before it serves reads again.
func (m *Memory) fanOutWait(region rdma.RegionID, offset uint64, data []byte, targets []int) {
	if len(targets) == 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(targets))
	for _, i := range targets {
		m.enqueue(i, nodeReq{region: region, offset: offset, data: data, done: func(err error) {
			wg.Done()
		}})
	}
	wg.Wait()
}

// applyPlain writes data at a main-space address to all writable nodes
// (full-replication layout); suspects are written best-effort. With
// integrity enabled the write is widened to integrity-block boundaries
// (reading back the partial edge blocks — the caller's expanded write lock
// covers them) so the data and its refreshed strip entries land together.
func (m *Memory) applyPlain(addr uint64, data []byte) {
	m.noteDirtyMain(addr, len(data))
	wait, bestEffort := m.writeTargets(0)
	if m.integ == nil {
		offset := m.physMain(addr)
		for _, i := range bestEffort {
			m.enqueueBestEffort(i, replRegion, offset, data)
		}
		m.fanOutWait(replRegion, offset, data, wait)
		return
	}
	span, spanStart, strip, ok := m.integ.buildPlainSpan(addr, data)
	if !ok {
		// No retrievable edge-block content (catastrophic loss); the WAL
		// still holds the entry for future recovery.
		return
	}
	writes := []spanWrite{
		{off: m.physMain(spanStart), data: span},
		{off: m.integ.stripOff(spanStart / m.integ.ibs), data: strip},
	}
	for _, i := range bestEffort {
		for _, w := range writes {
			m.enqueueBestEffort(i, replRegion, w.off, w.data)
		}
	}
	m.fanOutWaitWrites(wait, writes)
}

// spanWrite is one (offset, payload) pair of a multi-write apply.
type spanWrite struct {
	off  uint64
	data []byte
}

// fanOutWaitWrites enqueues several writes to every waited-on node and
// blocks until all completions arrive (see fanOutWait for why all).
func (m *Memory) fanOutWaitWrites(targets []int, writes []spanWrite) {
	if len(targets) == 0 || len(writes) == 0 {
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(targets) * len(writes))
	done := func(error) { wg.Done() }
	for _, i := range targets {
		for _, w := range writes {
			m.enqueue(i, nodeReq{region: replRegion, offset: w.off, data: w.data, done: done})
		}
	}
	wg.Wait()
}

// ecScratch is the pooled per-apply/per-read scratch for the EC hot paths:
// a block buffer for read–modify–write and reconstruction, the encode and
// decode chunk sets with their parity backings, the integrity strip image,
// target-list scratch, and a reusable wait group with a prebound completion
// callback. One scratch serves one applyEC or block-read call at a time;
// pooling it makes the steady-state EC write and read paths allocation-free.
type ecScratch struct {
	block   []byte   // ECBlockSize: RMW source / reconstruction target
	chunks  [][]byte // k+m encode set; parity entries point into parity
	rchunks [][]byte // k+m read/decode set
	parity  []byte   // m×chunk encode parity backing
	rparity []byte   // m×chunk read parity backing
	strip   []byte   // 4×(k+m) integrity strip image
	wait    []int    // writeTargetsInto scratch
	best    []int
	wg      sync.WaitGroup
	done    func(error) // prebound wg.Done adapter
}

// getECScratch takes an EC scratch from the pool, constructing it on first
// use. Only valid when erasure coding is enabled.
func (m *Memory) getECScratch() *ecScratch {
	if v := m.ecPool.Get(); v != nil {
		return v.(*ecScratch)
	}
	n := len(m.nodes)
	k := m.code.K()
	mp := m.code.M()
	sc := &ecScratch{
		block:   make([]byte, m.cfg.ECBlockSize),
		chunks:  make([][]byte, n),
		rchunks: make([][]byte, n),
		parity:  make([]byte, mp*m.chunk),
		rparity: make([]byte, mp*m.chunk),
		strip:   make([]byte, 4*n),
		wait:    make([]int, 0, n),
		best:    make([]int, 0, n),
	}
	for i := 0; i < mp; i++ {
		sc.chunks[k+i] = sc.parity[i*m.chunk : (i+1)*m.chunk]
	}
	sc.done = func(error) { sc.wg.Done() }
	return sc
}

func (m *Memory) putECScratch(sc *ecScratch) { m.ecPool.Put(sc) }

// applyEC applies a main-space update under erasure coding: each affected
// EC block is (re)encoded and chunk j is written to memory node j. Partial
// block updates read–modify–write the block; the caller's write lock covers
// the full block, so the RMW is race-free. All buffers come from the
// pooled scratch — a steady-state whole-block apply allocates nothing.
func (m *Memory) applyEC(addr uint64, data []byte) {
	m.noteDirtyMain(addr, len(data))
	sc := m.getECScratch()
	defer m.putECScratch(sc)
	B := uint64(m.cfg.ECBlockSize)
	first := addr / B
	last := (addr + uint64(len(data)) - 1) / B
	for b := first; b <= last; b++ {
		blockStart := b * B
		lo := max64(addr, blockStart)
		hi := min64(addr+uint64(len(data)), blockStart+B)

		var block []byte
		if lo == blockStart && hi == blockStart+B {
			block = data[lo-addr : hi-addr]
		} else {
			// RMW source read; corrupt chunks are skipped like dead nodes and
			// then overwritten below, so apply itself heals them.
			if _, err := m.readBlockECInto(sc, b, sc.block); err != nil {
				// Cannot reconstruct the block (catastrophic loss); the WAL
				// still holds the entry for future recovery.
				continue
			}
			copy(sc.block[lo-blockStart:], data[lo-addr:hi-addr])
			block = sc.block
		}
		if err := m.code.EncodeTo(block, sc.chunks); err != nil {
			continue
		}
		chunks := sc.chunks
		physOff := m.layout.MainBase() + b*uint64(m.chunk)
		var strip []byte
		stripOff := uint64(0)
		if m.integ != nil {
			strip = sc.strip
			for j := range chunks {
				sum := crcBlock(chunks[j])
				m.integ.setSum(j, b, sum)
				binary.LittleEndian.PutUint32(strip[4*j:], sum)
			}
			stripOff = m.integ.stripOff(b)
		}
		wait, bestEffort := m.writeTargetsInto(0, sc.wait, sc.best)
		for _, i := range bestEffort {
			m.enqueueBestEffort(i, replRegion, physOff, chunks[i])
			if strip != nil {
				m.enqueueBestEffort(i, replRegion, stripOff, strip[4*i:4*i+4])
			}
		}
		if len(wait) == 0 {
			continue
		}
		perNode := 1
		if strip != nil {
			perNode = 2
		}
		sc.wg.Add(len(wait) * perNode)
		for _, i := range wait {
			m.enqueue(i, nodeReq{region: replRegion, offset: physOff, data: chunks[i], done: sc.done})
			if strip != nil {
				m.enqueue(i, nodeReq{region: replRegion, offset: stripOff, data: strip[4*i : 4*i+4], done: sc.done})
			}
		}
		sc.wg.Wait()
	}
}

// DirectWrite commits data to the direct space in a single RDMA round trip
// per node, without logging (paper §3.3.2: "regions of replicated memory
// [that can] be written to directly, without being logged"). It returns
// once a majority of memory nodes acknowledge. The direct zone is never
// erasure coded — it holds write-ahead data whose unencoded form is exactly
// what makes coordinator+quorum-member double failures survivable (§5.1).
//
// The caller must not modify data until every node's write has completed;
// use DirectWriteOwned to learn when that is.
func (m *Memory) DirectWrite(addr uint64, data []byte) error {
	return m.directWrite(addr, data, nil)
}

// DirectWriteOwned is DirectWrite with buffer handoff: the layer takes
// ownership of data and calls release exactly once — on every return path,
// including validation errors — after the last per-node write has resolved.
// The caller may recycle data inside release. release may run on a
// transport goroutine and must not block.
func (m *Memory) DirectWriteOwned(addr uint64, data []byte, release func()) error {
	return m.directWrite(addr, data, release)
}

func (m *Memory) directWrite(addr uint64, data []byte, release func()) error {
	m.gate.RLock()
	defer m.gate.RUnlock()
	if err := m.checkOpen(); err != nil {
		if release != nil {
			release()
		}
		return err
	}
	if err := m.checkDirectRange(addr, len(data)); err != nil {
		if release != nil {
			release()
		}
		return err
	}

	// The range lock is held until every node's write completes (not just
	// the majority that unblocks the caller): a straggler write racing a
	// recovery copy or a later write to the same range on that node would
	// resurrect stale bytes.
	var start time.Time
	if m.cfg.Latency != nil {
		start = time.Now()
	}
	unlock := m.directLocks.lockRange(addr, len(data))
	m.noteDirtyDirect(addr, len(data))
	wait, bestEffort := m.writeTargets(m.Majority())
	g := newQuorumGroup(len(wait), m.Majority(), func() {
		unlock()
		if release != nil {
			release()
		}
	})
	off := m.physDirect(addr)
	for _, i := range wait {
		m.enqueue(i, nodeReq{region: replRegion, offset: off, data: data, done: g.ack})
	}
	for _, i := range bestEffort {
		m.enqueueBestEffort(i, replRegion, off, data)
	}
	if err := m.waitQuorum(g); err != nil {
		if oerr := m.checkOpen(); oerr != nil {
			return oerr
		}
		return err
	}
	if err := m.checkOpen(); err != nil {
		return err
	}
	m.stats.directWrites.Add(1)
	if h := m.cfg.Latency; h != nil {
		h.DirectWrite.Record(time.Since(start))
	}
	return nil
}

// UnloggedWrite updates the main space immediately, without a WAL entry.
// It blocks until the update is materialized on every writable node. This
// is for applications that provide their own write-ahead durability (the
// key-value store logs puts in the direct zone and applies blocks through
// this path); a torn update after a coordinator failure is repaired by the
// application replaying its own log.
func (m *Memory) UnloggedWrite(addr uint64, data []byte) error {
	m.gate.RLock()
	defer m.gate.RUnlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.checkMainRange(addr, len(data)); err != nil {
		return err
	}
	r := m.expandWriteRange(addr, len(data))
	m.locks.lockSpan(r.addr, r.size)
	defer m.locks.unlockSpan(r.addr, r.size)
	if m.code != nil {
		m.applyEC(addr, data)
	} else {
		m.applyPlain(addr, data)
	}
	if err := m.checkOpen(); err != nil {
		return err
	}
	// Suspects count toward the quorum here: they still hold the data from
	// before they turned gray plus best-effort copies of everything since,
	// and are repaired in full before rejoining reads.
	alive := 0
	for i := range m.nodes {
		if m.state[i].Load() != nodeDead {
			alive++
		}
	}
	if alive < m.Majority() {
		return fmt.Errorf("%w: lost quorum during unlogged write", ErrNoQuorum)
	}
	return nil
}

// expandWriteRange widens a range so read-modify-write applies and checksum
// verification are covered by the caller's lock: to EC block boundaries
// under erasure coding, to integrity-block boundaries when checksumming
// (identical under EC, where the integrity block is the EC block). Without
// either it returns the range unchanged.
func (m *Memory) expandWriteRange(addr uint64, size int) lockRange {
	var B uint64
	switch {
	case size == 0:
		return lockRange{addr: addr, size: size}
	case m.code != nil:
		B = uint64(m.cfg.ECBlockSize)
	case m.integ != nil:
		B = m.integ.ibs
	default:
		return lockRange{addr: addr, size: size}
	}
	lo := addr / B * B
	hi := (addr + uint64(size) + B - 1) / B * B
	if limit := uint64(m.cfg.MemSize); hi > limit {
		hi = limit
	}
	return lockRange{addr: lo, size: int(hi - lo)}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
