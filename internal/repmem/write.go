package repmem

import (
	"fmt"
	"sync"

	"github.com/repro/sift/internal/wal"
)

// Write commits a single logged update to the main space: the update is
// appended to the write-ahead log on a majority of memory nodes (one
// one-sided RDMA WRITE each) and applied to the materialized memory in the
// background. Write returns as soon as the entry is committed; the affected
// range stays locked until the background apply completes, so subsequent
// reads never observe the pre-write state after a successful Write.
func (m *Memory) Write(addr uint64, data []byte) error {
	return m.WriteBatch([]wal.Write{{Addr: addr, Data: data}})
}

// WriteBatch commits several updates atomically: they occupy a single log
// entry, so they are applied together without interleaving with other
// conflicting writes (paper §3.3.2). The whole batch must fit in one WAL
// slot.
func (m *Memory) WriteBatch(writes []wal.Write) error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if len(writes) == 0 {
		return nil
	}
	ranges := make([]lockRange, len(writes))
	for i, w := range writes {
		if err := m.checkMainRange(w.Addr, len(w.Data)); err != nil {
			return err
		}
		ranges[i] = m.expandToECBlocks(w.Addr, len(w.Data))
	}

	unlock := m.locks.lockRanges(ranges)

	// Reserve a log index, bounded by the circular log capacity: index i may
	// only be written once entry i-Slots has been applied (its slot is being
	// reused).
	m.seqMu.Lock()
	for m.nextIndex > m.watermark+uint64(m.geo.Slots) && !m.closed.Load() {
		m.seqCond.Wait()
	}
	if m.closed.Load() {
		m.seqMu.Unlock()
		unlock()
		return m.checkOpen()
	}
	idx := m.nextIndex
	m.nextIndex++
	m.seqMu.Unlock()

	entry := wal.Entry{Index: idx, Writes: writes}
	slot := make([]byte, m.geo.SlotSize)
	if _, err := entry.Encode(slot); err != nil {
		m.finishEntry(idx)
		unlock()
		return fmt.Errorf("repmem: %w", err)
	}

	if err := m.appendQuorum(idx, slot); err != nil {
		m.finishEntry(idx)
		unlock()
		return err
	}
	m.stats.writes.Add(1)

	// Committed: hand the apply to the background pool. The caller's locks
	// are released by the applier.
	m.applyWG.Add(1)
	go func() {
		m.applySem <- struct{}{}
		defer func() {
			<-m.applySem
			m.applyWG.Done()
		}()
		m.applyEntry(entry)
		unlock()
		m.finishEntry(idx)
		m.stats.applies.Add(1)
	}()
	return nil
}

// appendQuorum writes a WAL slot image to every writable node in parallel
// and waits for a majority of acknowledgements.
func (m *Memory) appendQuorum(idx uint64, slot []byte) error {
	offset := m.geo.SlotOffset(idx)
	targets := m.writableNodes()
	acks := make(chan bool, len(targets))
	for _, i := range targets {
		go func(i int) {
			c, err := m.conn(i)
			if err == nil {
				err = c.Write(replRegion, offset, slot)
			}
			if err != nil {
				m.nodeFailed(i, err)
				acks <- false
				return
			}
			acks <- true
		}(i)
	}
	got := 0
	for range targets {
		if <-acks {
			got++
		}
	}
	if err := m.checkOpen(); err != nil {
		return err
	}
	if got < m.Majority() {
		return fmt.Errorf("%w: %d of %d acks", ErrNoQuorum, got, len(m.nodes))
	}
	return nil
}

// finishEntry marks idx as applied (or abandoned) and advances the
// contiguous watermark, freeing its slot for reuse.
func (m *Memory) finishEntry(idx uint64) {
	m.seqMu.Lock()
	m.applied[idx] = true
	for m.applied[m.watermark+1] {
		delete(m.applied, m.watermark+1)
		m.watermark++
	}
	m.seqCond.Broadcast()
	m.seqMu.Unlock()
}

// applyEntry writes an entry's updates to the materialized memory on every
// writable node. Failures mark the node dead; the entry remains recoverable
// from the WAL.
func (m *Memory) applyEntry(entry wal.Entry) {
	for _, w := range entry.Writes {
		if m.code != nil {
			m.applyEC(w.Addr, w.Data)
		} else {
			m.applyPlain(w.Addr, w.Data)
		}
	}
}

// applyPlain writes data at a main-space address to all writable nodes
// (full-replication layout).
func (m *Memory) applyPlain(addr uint64, data []byte) {
	targets := m.writableNodes()
	var wg sync.WaitGroup
	for _, i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := m.conn(i)
			if err == nil {
				err = c.Write(replRegion, m.physMain(addr), data)
			}
			if err != nil {
				m.nodeFailed(i, err)
			}
		}(i)
	}
	wg.Wait()
}

// applyEC applies a main-space update under erasure coding: each affected
// EC block is (re)encoded and chunk j is written to memory node j. Partial
// block updates read–modify–write the block; the caller's write lock covers
// the full block, so the RMW is race-free.
func (m *Memory) applyEC(addr uint64, data []byte) {
	B := uint64(m.cfg.ECBlockSize)
	first := addr / B
	last := (addr + uint64(len(data)) - 1) / B
	for b := first; b <= last; b++ {
		blockStart := b * B
		lo := max64(addr, blockStart)
		hi := min64(addr+uint64(len(data)), blockStart+B)

		var block []byte
		if lo == blockStart && hi == blockStart+B {
			block = data[lo-addr : hi-addr]
		} else {
			cur, err := m.readBlockEC(b)
			if err != nil {
				// Cannot reconstruct the block (catastrophic loss); the WAL
				// still holds the entry for future recovery.
				continue
			}
			copy(cur[lo-blockStart:], data[lo-addr:hi-addr])
			block = cur
		}
		chunks, err := m.code.Encode(block)
		if err != nil {
			continue
		}
		physOff := m.layout.MainBase() + b*uint64(m.chunk)
		targets := m.writableNodes()
		var wg sync.WaitGroup
		for _, i := range targets {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := m.conn(i)
				if err == nil {
					err = c.Write(replRegion, physOff, chunks[i])
				}
				if err != nil {
					m.nodeFailed(i, err)
				}
			}(i)
		}
		wg.Wait()
	}
}

// DirectWrite commits data to the direct space in a single RDMA round trip
// per node, without logging (paper §3.3.2: "regions of replicated memory
// [that can] be written to directly, without being logged"). It returns
// once a majority of memory nodes acknowledge. The direct zone is never
// erasure coded — it holds write-ahead data whose unencoded form is exactly
// what makes coordinator+quorum-member double failures survivable (§5.1).
func (m *Memory) DirectWrite(addr uint64, data []byte) error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.checkDirectRange(addr, len(data)); err != nil {
		return err
	}
	unlock := m.directLocks.lockRange(addr, len(data))
	defer unlock()

	targets := m.writableNodes()
	acks := make(chan bool, len(targets))
	off := m.physDirect(addr)
	for _, i := range targets {
		go func(i int) {
			c, err := m.conn(i)
			if err == nil {
				err = c.Write(replRegion, off, data)
			}
			if err != nil {
				m.nodeFailed(i, err)
				acks <- false
				return
			}
			acks <- true
		}(i)
	}
	got := 0
	for range targets {
		if <-acks {
			got++
		}
	}
	if err := m.checkOpen(); err != nil {
		return err
	}
	if got < m.Majority() {
		return fmt.Errorf("%w: %d of %d acks", ErrNoQuorum, got, len(m.nodes))
	}
	m.stats.directWrites.Add(1)
	return nil
}

// UnloggedWrite updates the main space immediately, without a WAL entry.
// It blocks until the update is materialized on every writable node. This
// is for applications that provide their own write-ahead durability (the
// key-value store logs puts in the direct zone and applies blocks through
// this path); a torn update after a coordinator failure is repaired by the
// application replaying its own log.
func (m *Memory) UnloggedWrite(addr uint64, data []byte) error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.checkMainRange(addr, len(data)); err != nil {
		return err
	}
	r := m.expandToECBlocks(addr, len(data))
	unlock := m.locks.lockRange(r.addr, r.size)
	defer unlock()
	if m.code != nil {
		m.applyEC(addr, data)
	} else {
		m.applyPlain(addr, data)
	}
	if err := m.checkOpen(); err != nil {
		return err
	}
	if len(m.writableNodes()) < m.Majority() {
		return fmt.Errorf("%w: lost quorum during unlogged write", ErrNoQuorum)
	}
	return nil
}

// expandToECBlocks widens a range to EC block boundaries so that
// read-modify-write applies are covered by the caller's lock. Without EC it
// returns the range unchanged.
func (m *Memory) expandToECBlocks(addr uint64, size int) lockRange {
	if m.code == nil || size == 0 {
		return lockRange{addr: addr, size: size}
	}
	B := uint64(m.cfg.ECBlockSize)
	lo := addr / B * B
	hi := (addr + uint64(size) + B - 1) / B * B
	return lockRange{addr: lo, size: int(hi - lo)}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
