package repmem

import "sync"

// lockBlock is the granularity of range locking, in bytes. Writers lock the
// stripes covering their range; readers take the read side. Under erasure
// coding the effective granularity is max(lockBlock, ECBlockSize) because
// writes are expanded to full EC blocks before locking.
const lockBlock = 4096

// lockTable is a striped range lock: byte ranges map to a fixed set of
// RWMutex stripes. Coarser than a per-block map but allocation-free and
// deadlock-safe (stripes are always taken in ascending index order).
type lockTable struct {
	stripes []sync.RWMutex
}

func newLockTable(n int) *lockTable {
	return &lockTable{stripes: make([]sync.RWMutex, n)}
}

// stripesFor returns the ascending, deduplicated stripe indexes covering
// [addr, addr+size). A zero-length range still locks its position stripe.
func (t *lockTable) stripesFor(addr uint64, size int) []int {
	first := addr / lockBlock
	last := first
	if size > 0 {
		last = (addr + uint64(size) - 1) / lockBlock
	}
	n := uint64(len(t.stripes))
	count := last - first + 1
	if count >= n {
		// Range covers every stripe.
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	seen := make(map[int]struct{}, count)
	out := make([]int, 0, count)
	for b := first; b <= last; b++ {
		s := int(b % n)
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	// Insertion sort: count is small and often already ordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// spanInterval maps [addr, addr+size) to its circular stripe interval
// [start, start+count) mod len(stripes). Because consecutive blocks map to
// consecutive stripes, the covered stripe set of any contiguous range is a
// circular interval, which the span lock methods below walk without
// materialising an index slice — the allocation-free counterpart of
// stripesFor for the hot paths.
func (t *lockTable) spanInterval(addr uint64, size int) (start, count uint64) {
	first := addr / lockBlock
	last := first
	if size > 0 {
		last = (addr + uint64(size) - 1) / lockBlock
	}
	n := uint64(len(t.stripes))
	count = last - first + 1
	if count > n {
		count = n
	}
	return first % n, count
}

// lockSpan write-locks the stripes covering the range in ascending stripe
// order (the same global order stripesFor-based callers use, so the two
// families cannot deadlock against each other). Pair with unlockSpan on the
// identical range.
func (t *lockTable) lockSpan(addr uint64, size int) {
	n := uint64(len(t.stripes))
	start, count := t.spanInterval(addr, size)
	end := start + count
	if end > n { // wrapped interval: the [0, end-n) segment is lowest
		for s := uint64(0); s < end-n; s++ {
			t.stripes[s].Lock()
		}
		end = n
	}
	for s := start; s < end; s++ {
		t.stripes[s].Lock()
	}
}

// unlockSpan releases lockSpan's stripes in descending order.
func (t *lockTable) unlockSpan(addr uint64, size int) {
	n := uint64(len(t.stripes))
	start, count := t.spanInterval(addr, size)
	end := start + count
	wrapEnd := uint64(0)
	if end > n {
		wrapEnd = end - n
		end = n
	}
	for s := end; s > start; s-- {
		t.stripes[s-1].Unlock()
	}
	for s := wrapEnd; s > 0; s-- {
		t.stripes[s-1].Unlock()
	}
}

// rlockSpan read-locks the stripes covering the range; pair with
// runlockSpan on the identical range.
func (t *lockTable) rlockSpan(addr uint64, size int) {
	n := uint64(len(t.stripes))
	start, count := t.spanInterval(addr, size)
	end := start + count
	if end > n {
		for s := uint64(0); s < end-n; s++ {
			t.stripes[s].RLock()
		}
		end = n
	}
	for s := start; s < end; s++ {
		t.stripes[s].RLock()
	}
}

// runlockSpan releases rlockSpan's stripes in descending order.
func (t *lockTable) runlockSpan(addr uint64, size int) {
	n := uint64(len(t.stripes))
	start, count := t.spanInterval(addr, size)
	end := start + count
	wrapEnd := uint64(0)
	if end > n {
		wrapEnd = end - n
		end = n
	}
	for s := end; s > start; s-- {
		t.stripes[s-1].RUnlock()
	}
	for s := wrapEnd; s > 0; s-- {
		t.stripes[s-1].RUnlock()
	}
}

// lockRange write-locks the stripes covering the range and returns an
// unlock function.
func (t *lockTable) lockRange(addr uint64, size int) func() {
	ss := t.stripesFor(addr, size)
	for _, s := range ss {
		t.stripes[s].Lock()
	}
	return func() {
		for i := len(ss) - 1; i >= 0; i-- {
			t.stripes[ss[i]].Unlock()
		}
	}
}

// rlockRange read-locks the stripes covering the range.
func (t *lockTable) rlockRange(addr uint64, size int) func() {
	ss := t.stripesFor(addr, size)
	for _, s := range ss {
		t.stripes[s].RLock()
	}
	return func() {
		for i := len(ss) - 1; i >= 0; i-- {
			t.stripes[ss[i]].RUnlock()
		}
	}
}

// lockRanges write-locks the union of several ranges with a single,
// globally ordered acquisition (used by WriteBatch so multi-write commits
// cannot deadlock against each other).
func (t *lockTable) lockRanges(ranges []lockRange) func() {
	seen := make(map[int]struct{})
	var all []int
	for _, r := range ranges {
		for _, s := range t.stripesFor(r.addr, r.size) {
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				all = append(all, s)
			}
		}
	}
	// Sort ascending.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j] < all[j-1]; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	for _, s := range all {
		t.stripes[s].Lock()
	}
	return func() {
		for i := len(all) - 1; i >= 0; i-- {
			t.stripes[all[i]].Unlock()
		}
	}
}

type lockRange struct {
	addr uint64
	size int
}
