package repmem

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/wal"
)

// Recover performs coordinator-takeover log recovery (paper §3.4.1): it
// reads the circular WAL from every reachable memory node, reconciles them
// into one consistent, up-to-date log, patches nodes whose log differs from
// the merged view, replays the merged log against the materialized memory,
// and finally positions the log cursor after the newest entry. It must be
// called exactly once, before the first Read/Write.
func (m *Memory) Recover() error {
	if err := m.checkOpen(); err != nil {
		return err
	}
	if m.recoveredOnce.Swap(true) {
		return fmt.Errorf("repmem: Recover called twice")
	}

	// Read each reachable node's WAL area.
	areas := make([][]byte, len(m.nodes))
	reachable := 0
	for i := range m.nodes {
		if m.state[i].Load() != nodeLive {
			continue
		}
		c, err := m.conn(i)
		if err == nil {
			area := make([]byte, m.layout.WALBytes())
			if err = c.Read(replRegion, 0, area); err == nil {
				areas[i] = area
				reachable++
				continue
			}
		}
		m.nodeFailed(i, err)
		if e := m.checkOpen(); e != nil {
			return e
		}
	}
	if reachable < m.Majority() {
		return fmt.Errorf("%w: read WAL from %d of %d nodes", ErrNoQuorum, reachable, len(m.nodes))
	}

	entries := wal.Reconcile(m.geo, areas)

	// Make every reachable node's log identical to the merged view: write
	// merged entries into their slots and clear slots the merged view does
	// not occupy. Clearing matters: a lingering uncommitted entry could
	// otherwise collide with a future entry that reuses its index.
	desired := make([][]byte, m.geo.Slots)
	for _, e := range entries {
		slot := make([]byte, m.geo.SlotSize)
		if _, err := e.Encode(slot); err != nil {
			return fmt.Errorf("repmem: recovery re-encode: %w", err)
		}
		desired[int(e.Index%uint64(m.geo.Slots))] = slot
	}
	zeros := make([]byte, m.geo.SlotSize)
	for i := range m.nodes {
		if areas[i] == nil {
			continue
		}
		c, err := m.conn(i)
		if err != nil {
			m.nodeFailed(i, err)
			continue
		}
		for s := 0; s < m.geo.Slots; s++ {
			want := desired[s]
			if want == nil {
				want = zeros
			}
			have := areas[i][s*m.geo.SlotSize : (s+1)*m.geo.SlotSize]
			if bytes.Equal(have, want) {
				continue
			}
			if err := c.Write(replRegion, uint64(s*m.geo.SlotSize), want); err != nil {
				m.nodeFailed(i, err)
				break
			}
		}
		if e := m.checkOpen(); e != nil {
			return e
		}
	}

	// Load the checksum cache from the nodes' strips before any verified
	// read or replay RMW consults it.
	if m.integ != nil {
		if err := m.integ.loadSums(); err != nil {
			return err
		}
	}

	// Replay the merged log in index order. Replaying already-applied
	// entries is safe: every entry that might overwrite them is itself in
	// the window and is replayed afterwards, in order.
	for _, e := range entries {
		m.applyEntry(e)
	}

	m.seqMu.Lock()
	var maxIdx uint64
	if len(entries) > 0 {
		maxIdx = entries[len(entries)-1].Index
	}
	if maxIdx+1 > m.nextIndex {
		m.nextIndex = maxIdx + 1
	}
	m.watermark = m.nextIndex - 1
	m.seqMu.Unlock()
	return nil
}

// recoveryBatch is how many bytes are copied per locked step when
// reintegrating a memory node. Smaller batches degrade write throughput
// more gently; larger ones finish recovery faster (paper §6.5 discusses
// this trade-off).
const recoveryBatch = 64 << 10

// errSuspectRepair routes a responsive suspect through nodeFailed so the
// ordinary dead-node recovery path repairs it: a suspect may have missed
// best-effort writes while gray, so it must be rebuilt in full before it
// serves reads again.
var errSuspectRepair = fmt.Errorf("repmem: suspect node responsive, repairing")

// errDegradedRepair routes a degraded node whose probes have come back under
// the straggler floor through the same full rebuild — it too received only
// best-effort writes while excluded.
var errDegradedRepair = fmt.Errorf("repmem: degraded node fast again, repairing")

// StartRecovery launches the background recovery manager: a goroutine that
// periodically polls failed memory nodes and reintegrates any that have
// come back (paper §3.4.2). The returned function stops the manager.
func (m *Memory) StartRecovery(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if m.closed.Load() {
					return
				}
				// Probe live nodes so failures are detected even on an idle
				// group (ops would detect them too, but a read-from-cache
				// workload may touch no memory node for a while). Probe
				// timeouts feed the same suspicion counters as op timeouts.
				for _, i := range m.nodesInState(nodeLive) {
					c, err := m.conn(i)
					if err == nil {
						var probe [1]byte
						err = c.Read(replRegion, 0, probe[:])
					}
					if err != nil {
						m.noteConnError(i, c, err)
					}
				}
				// Probe suspects: one that answers again is routed through
				// the dead-node repair below (it may have missed best-effort
				// writes while gray); one that keeps timing out is declared
				// dead after suspectProbeLimit strikes.
				for _, i := range m.nodesInState(nodeSuspect) {
					c, err := m.conn(i)
					if err == nil {
						var probe [1]byte
						err = c.Read(replRegion, 0, probe[:])
					}
					if err == nil {
						m.health[i].probeFails.Store(0)
						m.nodeFailed(i, errSuspectRepair)
					} else if m.health[i].probeFails.Add(1) >= int32(m.cfg.SuspectProbeLimit) {
						m.nodeFailed(i, err)
					}
				}
				m.probeDegraded()
				m.checkStragglers()
				for _, i := range m.nodesInState(nodeDead) {
					if err := m.recoverNode(i); err == nil {
						m.stats.nodeRecovered.Add(1)
					}
				}
			}
		}
	}()
	return func() { close(done) }
}

// checkStragglers marks live nodes whose smoothed write latency has drifted
// far above the fastest live node's as degraded, so a node that is slow but
// not hung (a gray straggler, Velos-style) stops delaying quorum writes.
// Both a relative bar (StragglerFactor × the best live EWMA) and an
// absolute floor (StragglerMinLatency) must be exceeded, and only nodes
// with at least StragglerMinSamples samples are judged.
//
// Degraded — not suspect: a suspect is repaired the moment it answers a
// probe, which a merely-slow node always does; the repair resets its EWMA,
// the straggler check re-fires once the EWMA refills, and the node loops
// through exclusion and rebuild forever. Sustained slowness (a replica
// across a WAN link) instead parks in the degraded state until its probe
// latency actually recovers — see probeDegraded.
func (m *Memory) checkStragglers() {
	if m.transferring.Load() {
		return // bulk state transfer in flight: EWMAs are not comparable
	}
	live := m.nodesInState(nodeLive)
	if len(live) < 2 {
		return
	}
	best := -1.0
	for _, i := range live {
		if m.health[i].ewma.Count() < uint64(m.cfg.StragglerMinSamples) {
			continue
		}
		if v := m.health[i].ewma.Value(); best < 0 || v < best {
			best = v
		}
	}
	if best < 0 {
		return
	}
	floor := float64(m.cfg.StragglerMinLatency.Microseconds())
	for _, i := range live {
		if m.health[i].ewma.Count() < uint64(m.cfg.StragglerMinSamples) {
			continue
		}
		v := m.health[i].ewma.Value()
		if v > best*m.cfg.StragglerFactor && v > floor {
			if m.degradeNode(i, "straggler") {
				m.stats.stragglerSuspects.Add(1)
			}
		}
	}
}

// probeDegraded times a small read against each degraded node. Successful
// probes keep the node's latency EWMA current for the health surface; once
// DegradeExitProbes consecutive probes land under the straggler floor the
// slowness has genuinely passed and the node is routed through the full
// rebuild (it may have missed best-effort writes while excluded). Probes
// that fail outright count toward SuspectProbeLimit and then death — a
// degraded node that stops answering is just dead.
func (m *Memory) probeDegraded() {
	for _, i := range m.nodesInState(nodeDegraded) {
		c, err := m.conn(i)
		start := time.Now()
		if err == nil {
			var probe [1]byte
			err = c.Read(replRegion, 0, probe[:])
		}
		if err != nil {
			m.health[i].fastProbes.Store(0)
			if m.health[i].probeFails.Add(1) >= int32(m.cfg.SuspectProbeLimit) {
				m.nodeFailed(i, err)
			}
			continue
		}
		lat := time.Since(start)
		m.health[i].probeFails.Store(0)
		m.health[i].ewma.Observe(float64(lat.Microseconds()))
		if lat < m.cfg.StragglerMinLatency {
			if m.health[i].fastProbes.Add(1) >= int32(m.cfg.DegradeExitProbes) {
				m.nodeFailed(i, errDegradedRepair)
			}
		} else {
			m.health[i].fastProbes.Store(0)
		}
	}
}

// RecoverNodeNow synchronously attempts to reintegrate the named memory
// node. It is the hook tests and the failure-recovery benchmarks use to
// avoid waiting for the background manager's poll tick. A suspect node is
// demoted to dead first so it goes through the full rebuild.
func (m *Memory) RecoverNodeNow(node string) error {
	for i := range m.nodes {
		if m.nodeName(i) == node {
			if m.state[i].Load() == nodeSuspect {
				m.nodeFailed(i, errSuspectRepair)
			}
			if m.state[i].Load() == nodeDegraded {
				m.nodeFailed(i, errDegradedRepair)
			}
			if m.state[i].Load() == nodeLive {
				// An apparently healthy node may have rebooted without the
				// failure evidence having surfaced yet: an op parked on the
				// old connection only completes with ErrFenced once the
				// node's post-reboot epoch bump is observed. The populated
				// marker disambiguates synchronously — the admin region is
				// shared, so even a stale connection can read it, and a
				// rebooted node reads empty.
				if c, err := m.conn(i); err == nil {
					if populated, err := readPopulated(c); err != nil {
						m.noteConnError(i, c, err)
					} else if !populated {
						m.markNodeDead(i)
					}
				}
			}
			if m.state[i].Load() != nodeDead {
				return nil
			}
			err := m.recoverNode(i)
			if err == nil {
				m.stats.nodeRecovered.Add(1)
			}
			return err
		}
	}
	return fmt.Errorf("repmem: unknown memory node %q", node)
}

// recoverNode reintegrates dead node i: reconnect, clear its WAL (its slots
// may hold entries from before the failure that would corrupt a future
// reconciliation), switch it to write-only (syncing) so it receives all new
// updates, then incrementally copy the direct zone and materialized memory
// under read locks — blocking conflicting updates but never blocking reads
// (paper §3.4.2) — and finally mark it readable.
func (m *Memory) recoverNode(i int) error {
	// Serialize with structural reconfiguration: a replacement swapping this
	// very slot's identity mid-copy would leave the copy writing to a
	// connection that no longer belongs to the group.
	m.reconfigMu.Lock()
	defer m.reconfigMu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	if m.state[i].Load() != nodeDead {
		// A reconfiguration that ran while we waited may have rebuilt (or
		// replaced) the node already.
		return nil
	}
	// Reconnect. The old connection (if any) was dropped on failure. A
	// recovery attempt is deliberate, so it bypasses the redial circuit
	// breaker rather than waiting out a backoff opened by the hot path.
	m.redialers[i].reset()
	c, err := m.conn(i)
	if err != nil {
		return err
	}
	// Probe reachability cheaply before committing to a full copy.
	var probe [1]byte
	if err := c.Read(replRegion, 0, probe[:]); err != nil {
		m.nodeFailed(i, err)
		return err
	}

	return m.rebuildSlot(i, c)
}

// rebuildSlot brings slot i — whose connection c points at a blank or stale
// machine — from dead to live member: mark unpopulated, clear the WAL,
// switch the slot to write-only (syncing) so it receives all new updates,
// copy the direct zone and materialized memory under read locks, then mark
// it populated and readable. Shared by ordinary dead-node recovery and by
// node replacement, which swaps the slot's identity to a fresh machine
// first and then rebuilds it through this same pipeline.
func (m *Memory) rebuildSlot(i int, c rdma.Verbs) error {
	// Mark the node unpopulated for the duration of the copy: if this
	// coordinator dies mid-recovery, its successor must rebuild the node
	// rather than read its half-copied memory.
	if err := writePopulated(c, memnode.MarkerEmpty); err != nil {
		m.nodeFailed(i, err)
		return err
	}

	// Clear the WAL area while the node is still excluded from appends.
	if err := m.zeroWAL(c); err != nil {
		m.nodeFailed(i, err)
		return err
	}

	// From here on the node receives every new append, apply, and direct
	// write; reads still avoid it until the copy completes.
	m.state[i].Store(nodeSyncing)

	if err := m.copyDirectZone(i, c); err != nil {
		m.nodeFailed(i, err)
		return err
	}
	if err := m.copyMainMemory(i, c); err != nil {
		m.nodeFailed(i, err)
		return err
	}
	if err := writePopulated(c, memnode.MarkerPopulated); err != nil {
		m.nodeFailed(i, err)
		return err
	}
	m.health[i].consecTimeouts.Store(0)
	m.health[i].probeFails.Store(0)
	m.health[i].fastProbes.Store(0)
	m.health[i].corruptBlocks.Store(0)
	m.health[i].ewma.Reset()
	m.state[i].Store(nodeLive)
	m.emit("node.recovered", m.nodeName(i), "")
	m.publishMembership()
	return nil
}

// copyDirectZone copies the direct zone to node i in read-locked batches.
// The lock is held across both the source read and the target write so a
// concurrent DirectWrite cannot slip between them and be overwritten by
// stale data.
func (m *Memory) copyDirectZone(i int, c rdma.Verbs) error {
	size := uint64(m.cfg.DirectSize)
	buf := make([]byte, recoveryBatch)
	for off := uint64(0); off < size; off += uint64(len(buf)) {
		n := uint64(len(buf))
		if rem := size - off; rem < n {
			n = rem
		}
		chunk := buf[:n]
		unlock := m.directLocks.rlockRange(off, int(n))
		err := m.readDirectFromLive(off, chunk)
		if err == nil {
			err = c.Write(replRegion, m.physDirect(off), chunk)
		}
		unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// readDirectFromLive reads a direct-zone range from any live node without
// taking locks (the caller holds them).
func (m *Memory) readDirectFromLive(addr uint64, buf []byte) error {
	for _, j := range m.nodesInState(nodeLive) {
		cj, err := m.conn(j)
		if err == nil {
			if err = cj.Read(replRegion, m.physDirect(addr), buf); err == nil {
				return nil
			}
		}
		m.nodeFailed(j, err)
		if e := m.checkOpen(); e != nil {
			return e
		}
	}
	return fmt.Errorf("%w: no live source for direct copy", ErrNoQuorum)
}

// copyMainMemory copies the materialized memory to node i in read-locked
// batches. Under erasure coding each block is reconstructed from the
// surviving chunks and re-encoded to regenerate exactly the chunk node i is
// responsible for (§5.1: "the coordinator rebuilds each block and encodes
// it to generate the missing chunks").
func (m *Memory) copyMainMemory(i int, c rdma.Verbs) error {
	if m.code != nil {
		B := uint64(m.cfg.ECBlockSize)
		blocks := uint64(m.cfg.MemSize) / B
		k := m.code.K()
		for b := uint64(0); b < blocks; b++ {
			unlock := m.locks.rlockRange(b*B, int(B))
			// readBlockEC skips checksum-failing chunks like dead nodes, so
			// corruption on a source node is never copied to the target.
			block, _, err := m.readBlockEC(b)
			var chunk []byte
			if err == nil {
				if i < k {
					chunk = block[i*m.chunk : (i+1)*m.chunk]
				} else {
					var chunks [][]byte
					chunks, err = m.code.Encode(block)
					if err == nil {
						chunk = chunks[i]
					}
				}
				if err == nil {
					err = c.Write(replRegion, m.layout.MainBase()+b*uint64(m.chunk), chunk)
				}
				if err == nil && m.integ != nil {
					sum := crcBlock(chunk)
					m.integ.setSum(i, b, sum)
					err = c.Write(replRegion, m.integ.stripOff(b), stripEntry(sum))
				}
			}
			unlock()
			if err != nil {
				return err
			}
		}
		return nil
	}

	if m.integ != nil {
		return m.copyMainVerified(i, c)
	}

	size := uint64(m.cfg.MemSize)
	buf := make([]byte, recoveryBatch)
	for off := uint64(0); off < size; off += uint64(len(buf)) {
		n := uint64(len(buf))
		if rem := size - off; rem < n {
			n = rem
		}
		chunk := buf[:n]
		unlock := m.locks.rlockRange(off, int(n))
		err := m.readMainFromLive(off, chunk)
		if err == nil {
			err = c.Write(replRegion, m.physMain(off), chunk)
		}
		unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// copyMainVerified copies the plain-replicated main memory block by block,
// verifying each source block against the checksum cache — an unverified
// copy would bless a corrupt source byte-for-byte onto the rebuilt node,
// strip entry and all. A block with no verified source replica is repaired
// (under write locks) and the copy retried.
func (m *Memory) copyMainVerified(i int, c rdma.Verbs) error {
	g := m.integ
	for b := uint64(0); b < uint64(g.blocks); b++ {
		var err error
		for attempt := 0; attempt < 2; attempt++ {
			start, length := g.blockRange(b)
			unlock := m.locks.rlockRange(start, length)
			var blk []byte
			blk, err = g.readPlainBlockNoRepair(b)
			if err == nil {
				if err = c.Write(replRegion, g.physOff(b), blk); err == nil {
					err = c.Write(replRegion, g.stripOff(b), stripEntry(g.sum(0, b)))
				}
			}
			unlock()
			if err == nil || !errors.Is(err, ErrCorrupt) {
				break
			}
			if rerr := g.repairBlocks([]uint64{b}); rerr != nil {
				return rerr
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// readMainFromLive reads a main range from any live node without locks.
func (m *Memory) readMainFromLive(addr uint64, buf []byte) error {
	for _, j := range m.nodesInState(nodeLive) {
		cj, err := m.conn(j)
		if err == nil {
			if err = cj.Read(replRegion, m.physMain(addr), buf); err == nil {
				return nil
			}
		}
		m.nodeFailed(j, err)
		if e := m.checkOpen(); e != nil {
			return e
		}
	}
	return fmt.Errorf("%w: no live source for memory copy", ErrNoQuorum)
}

// LiveMemoryNodes returns the names of nodes currently serving reads.
func (m *Memory) LiveMemoryNodes() []string {
	var out []string
	for _, i := range m.nodesInState(nodeLive) {
		out = append(out, m.nodeName(i))
	}
	return out
}

// DeadMemoryNodes returns the names of nodes currently considered failed.
func (m *Memory) DeadMemoryNodes() []string {
	var out []string
	for _, i := range m.nodesInState(nodeDead) {
		out = append(out, m.nodeName(i))
	}
	return out
}

// SuspectMemoryNodes returns the names of nodes currently suspected gray:
// excluded from quorum waits but still receiving writes best-effort.
func (m *Memory) SuspectMemoryNodes() []string {
	var out []string
	for _, i := range m.nodesInState(nodeSuspect) {
		out = append(out, m.nodeName(i))
	}
	return out
}

// DegradedMemoryNodes returns the names of nodes classified as persistently
// slow: served around like suspects, but held out of the repair cycle until
// their probe latency recovers.
func (m *Memory) DegradedMemoryNodes() []string {
	var out []string
	for _, i := range m.nodesInState(nodeDegraded) {
		out = append(out, m.nodeName(i))
	}
	return out
}
