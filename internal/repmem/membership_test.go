package repmem

import (
	"testing"
	"testing/quick"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
)

func TestMembershipPackUnpack(t *testing.T) {
	f := func(epoch uint32, term, version uint16, bitmap uint32) bool {
		e, tm, v, b, ok := memnode.UnpackMembership(memnode.PackMembership(epoch, term, version, bitmap))
		return ok && e == epoch && tm == term && v == version && b == bitmap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestStaleNodeNotTrustedAfterFailover is the regression for the silent
// staleness hole: a memory node that is partitioned (DRAM intact!) while
// the group keeps committing, then returns right as the coordinator dies,
// must NOT be treated as current by the successor.
func TestStaleNodeNotTrustedAfterFailover(t *testing.T) {
	cfg0 := Config{MemSize: 32 << 10, DirectSize: 4 << 10, WALSlots: 8, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.MemSize = 32 << 10
	cfg.DirectSize = 4 << 10
	cfg.WALSlots = 8 // tiny window: stale data will fall OUT of the WAL
	cfg.WALSlotSize = 512
	cfg.Term = 1
	m1 := newMemory(t, cfg)

	// Commit a value, then partition node 0 (memory intact — no Reset).
	if err := m1.Write(100, []byte("old")); err != nil {
		t.Fatal(err)
	}
	m1.WaitApplied(t)
	e.nw.Fabric().Kill(e.names[0])

	// Overwrite the value and push enough writes that the original entry
	// leaves the circular WAL window.
	if err := m1.Write(100, []byte("new")); err != nil {
		t.Fatal(err) // also triggers failure detection for node 0
	}
	for i := 0; i < 20; i++ {
		if err := m1.Write(uint64(1024+i*64), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m1.WaitApplied(t)

	// Node 0 returns with its STALE memory, and the coordinator dies.
	e.nw.Fabric().Restart(e.names[0])

	cfg2 := baseConfig(e, "cpu2")
	cfg2.MemSize = 32 << 10
	cfg2.DirectSize = 4 << 10
	cfg2.WALSlots = 8
	cfg2.WALSlotSize = 512
	cfg2.Term = 2
	m2 := newMemory(t, cfg2)

	// The successor must have demoted node 0 (absent from the published
	// membership) rather than serving its stale bytes.
	for _, dead := range m2.DeadMemoryNodes() {
		if dead == e.names[0] {
			goto demoted
		}
	}
	t.Fatalf("stale node %s trusted by successor (dead=%v)", e.names[0], m2.DeadMemoryNodes())
demoted:
	// Every read must see the new value, never "old" — repeat to cover all
	// read targets.
	for i := 0; i < 12; i++ {
		buf := make([]byte, 3)
		if err := m2.Read(100, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "new" {
			t.Fatalf("stale read: %q", buf)
		}
	}
	// And the stale node is rebuildable.
	if err := m2.RecoverNodeNow(e.names[0]); err != nil {
		t.Fatal(err)
	}
}

// TestRebootedNodeNotTrustedAfterFailover covers the DRAM-loss variant: a
// node restarts empty between coordinatorships; the successor must rebuild
// it instead of reading zeros.
func TestRebootedNodeNotTrustedAfterFailover(t *testing.T) {
	cfg0 := Config{MemSize: 16 << 10, DirectSize: 4 << 10, WALSlots: 8, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.MemSize = 16 << 10
	cfg.DirectSize = 4 << 10
	cfg.WALSlots = 8
	cfg.WALSlotSize = 512
	cfg.Term = 1
	m1 := newMemory(t, cfg)
	if err := m1.Write(0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ { // push the write out of the WAL window
		m1.Write(uint64(1024+i*64), []byte{byte(i)})
	}
	m1.WaitApplied(t)

	// Node 2 "reboots": memory wiped, but it was never marked failed by m1
	// (no op touched it after the wipe... simulate an instant wipe+return).
	memnode.Reset(e.nw.Node(e.names[2]), cfg.Layout())

	cfg2 := baseConfig(e, "cpu2")
	cfg2.MemSize = 16 << 10
	cfg2.DirectSize = 4 << 10
	cfg2.WALSlots = 8
	cfg2.WALSlotSize = 512
	cfg2.Term = 2
	m2 := newMemory(t, cfg2)

	found := false
	for _, dead := range m2.DeadMemoryNodes() {
		if dead == e.names[2] {
			found = true
		}
	}
	if !found {
		t.Fatalf("rebooted-empty node trusted by successor (dead=%v)", m2.DeadMemoryNodes())
	}
	for i := 0; i < 12; i++ {
		buf := make([]byte, 7)
		if err := m2.Read(0, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "durable" {
			t.Fatalf("read zeros from rebooted node: %q", buf)
		}
	}
}

// TestFreshGroupBootstraps ensures the populated/membership machinery does
// not break first-ever startup (no marker, no membership word anywhere).
func TestFreshGroupBootstraps(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 8, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 8
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)
	if got := len(m.LiveMemoryNodes()); got != 3 {
		t.Fatalf("live after fresh bootstrap = %d", got)
	}
	if err := m.Write(0, []byte("first")); err != nil {
		t.Fatal(err)
	}
}

// TestMidRecoveryFailoverRebuildsTarget: the coordinator dies while copying
// a node back in; the successor must not read the half-copied node.
func TestMidRecoveryFailoverRebuildsTarget(t *testing.T) {
	cfg0 := Config{MemSize: 16 << 10, DirectSize: 4 << 10, WALSlots: 8, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.MemSize = 16 << 10
	cfg.DirectSize = 4 << 10
	cfg.WALSlots = 8
	cfg.WALSlotSize = 512
	cfg.Term = 1
	m1 := newMemory(t, cfg)
	m1.Write(0, []byte("payload"))
	m1.WaitApplied(t)

	victim := e.names[1]
	e.nw.Fabric().Kill(victim)
	m1.Write(64, []byte("x")) // detect failure
	memnode.Reset(e.nw.Node(victim), cfg.Layout())
	e.nw.Fabric().Restart(victim)

	// Simulate "copy started but coordinator died": mark unpopulated (what
	// recoverNode does first) without completing the copy.
	conn, err := e.nw.Dial("cpu1b", victim, rdma.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := writePopulated(conn, memnode.MarkerEmpty); err != nil {
		t.Fatal(err)
	}

	cfg2 := baseConfig(e, "cpu2")
	cfg2.MemSize = 16 << 10
	cfg2.DirectSize = 4 << 10
	cfg2.WALSlots = 8
	cfg2.WALSlotSize = 512
	cfg2.Term = 2
	m2 := newMemory(t, cfg2)
	for _, dead := range m2.DeadMemoryNodes() {
		if dead == victim {
			return // correctly scheduled for rebuild
		}
	}
	t.Fatalf("half-copied node trusted (dead=%v)", m2.DeadMemoryNodes())
}
