package repmem

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/repro/sift/internal/rdma"
)

// ErrCircuitOpen means a node's redial circuit breaker is open: a recent
// dial failed and the backoff window has not elapsed, so the attempt was
// refused without touching the network.
var ErrCircuitOpen = errors.New("repmem: redial circuit open")

// redialer re-establishes one memory node's connection with jittered
// exponential backoff. It is single-flight: concurrent callers serialize on
// one dial attempt, and between failed attempts the circuit breaker fails
// callers fast instead of hammering a dead peer. Dialing through cfg.Dial
// re-registers the replicated region and re-acquires it exclusively, so a
// successful redial re-fences any straggler writes still buffered on the
// node's previous connection.
type redialer struct {
	node string
	dial Dialer
	min  time.Duration
	max  time.Duration

	mu       sync.Mutex
	rng      *rand.Rand
	failures int       // consecutive failed attempts
	nextTry  time.Time // circuit stays open until then
}

func newRedialer(node string, dial Dialer, min, max time.Duration, seed int64) *redialer {
	return &redialer{
		node: node,
		dial: dial,
		min:  min,
		max:  max,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// dialNow attempts to connect, honouring the circuit breaker. Holding mu
// across the dial is what makes it single-flight.
func (r *redialer) dialNow() (rdma.Verbs, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if wait := time.Until(r.nextTry); wait > 0 {
		return nil, fmt.Errorf("%w: %s retries in %v (%d failures)",
			ErrCircuitOpen, r.node, wait.Round(time.Millisecond), r.failures)
	}
	v, err := r.dial(r.node)
	if err != nil {
		r.failures++
		r.nextTry = time.Now().Add(r.backoffLocked())
		return nil, err
	}
	r.failures = 0
	r.nextTry = time.Time{}
	return v, nil
}

// backoffLocked returns the next backoff: min·2^(failures-1) capped at max,
// with ±50% uniform jitter so a cluster of coordinators does not redial a
// recovering node in lockstep.
func (r *redialer) backoffLocked() time.Duration {
	b := r.min
	for n := 1; n < r.failures; n++ {
		b *= 2
		if b >= r.max {
			b = r.max
			break
		}
	}
	if b > r.max {
		b = r.max
	}
	// Jitter in [b/2, 3b/2).
	return b/2 + time.Duration(r.rng.Int63n(int64(b)))
}

// reset closes the circuit so the next dialNow attempts immediately. Used
// by deliberate recovery attempts, which are already rate-limited by the
// recovery manager's poll interval; the hot write/read paths keep failing
// fast through the breaker.
func (r *redialer) reset() {
	r.mu.Lock()
	r.failures = 0
	r.nextTry = time.Time{}
	r.mu.Unlock()
}

// retarget points the redialer at a different node (node replacement swaps
// a group slot's identity) and closes the circuit: the new node's health has
// nothing to do with its predecessor's failure history.
func (r *redialer) retarget(node string) {
	r.mu.Lock()
	r.node = node
	r.failures = 0
	r.nextTry = time.Time{}
	r.mu.Unlock()
}

// snapshot reports the circuit state for health export.
func (r *redialer) snapshot() (failures int, openFor time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if wait := time.Until(r.nextTry); wait > 0 {
		openFor = wait
	}
	return r.failures, openFor
}
