package repmem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/rdma"
)

// Per-node I/O workers: every memory node has one persistent worker
// goroutine fed by a channel. A quorum write is an enqueue per node plus a
// wait, rather than a goroutine spawn per node per operation. The worker
// submits asynchronously when the connection supports pipelined submission
// (both built-in transports do), so many operations from many concurrent
// writers are in flight on the node's single connection at once — the
// paper's deep per-QP pipeline. Requests enqueued to one node are submitted
// in order, which together with the transport's reliable-connection
// ordering keeps same-address writes ordered per node.

// nodeQueueDepth bounds a node worker's submit queue; enqueues beyond it
// apply backpressure to writers.
const nodeQueueDepth = 256

// nodeReq is one write destined for a single memory node. done fires
// exactly once with the operation's outcome; it may run on a transport
// goroutine and must not block.
type nodeReq struct {
	region rdma.RegionID
	offset uint64
	data   []byte
	enq    time.Time
	done   func(error)
}

// nodeWorker owns one node's request channel. mu guards the channel against
// close: enqueuers send while holding the read side, stop takes the write
// side.
type nodeWorker struct {
	mu     sync.RWMutex
	ch     chan nodeReq
	closed bool
}

// startWorkers launches one worker per memory node.
func (m *Memory) startWorkers() {
	m.workers = make([]*nodeWorker, len(m.nodes))
	for i := range m.workers {
		w := &nodeWorker{ch: make(chan nodeReq, nodeQueueDepth)}
		m.workers[i] = w
		m.workerWG.Add(1)
		go m.nodeWorkerLoop(i, w.ch)
	}
}

// stopWorkers closes every worker channel; the workers drain what is queued
// and exit. Callers must still be able to reach the connections, so this
// runs before conns are torn down in Close.
func (m *Memory) stopWorkers() {
	for _, w := range m.workers {
		w.mu.Lock()
		if !w.closed {
			w.closed = true
			close(w.ch)
		}
		w.mu.Unlock()
	}
	m.workerWG.Wait()
}

// enqueue hands req to node i's worker. After the memory is closed, done
// fires immediately with ErrClosed. While a shadow is attached to slot i
// (node replacement in progress), the request is also mirrored to the
// joining node, and done fires only after BOTH complete — so range locks
// and pooled buffers stay held until the mirror has landed too.
func (m *Memory) enqueue(i int, req nodeReq) {
	req.enq = time.Now()
	w := m.workers[i]
	w.mu.RLock()
	if w.closed {
		w.mu.RUnlock()
		req.done(ErrClosed)
		return
	}
	if sh := m.shadows[i].Load(); sh != nil {
		req = sh.mirror(req)
	}
	m.stats.enqueued.Add(1)
	m.queueDepth.Inc()
	w.ch <- req
	w.mu.RUnlock()
}

// shadowNode mirrors one group slot's write stream to a joining node during
// replacement. It is the single funnel: every per-node write — WAL append,
// main-memory apply, EC chunk, integrity strip, direct write — reaches node
// i through enqueue, so mirroring there captures the full stream. The
// shadow's own worker writes synchronously; a replacement window is short
// and correctness (per-slot ordering) matters more than mirror throughput.
type shadowNode struct {
	name string
	conn rdma.Verbs

	mu     sync.RWMutex
	ch     chan nodeReq
	closed bool
	wg     sync.WaitGroup

	failed  bool
	failErr error
	errMu   sync.Mutex
}

func newShadowNode(name string, conn rdma.Verbs) *shadowNode {
	sh := &shadowNode{name: name, conn: conn, ch: make(chan nodeReq, nodeQueueDepth)}
	sh.wg.Add(1)
	go sh.loop()
	return sh
}

// shadowFanIn joins a primary completion and its mirror: the original done
// fires exactly once, after both, with the primary's outcome. The shadow's
// outcome never surfaces to writers — a failed shadow aborts the
// replacement, not the client write.
type shadowFanIn struct {
	orig    func(error)
	err     error
	pending atomic.Int32
}

func (f *shadowFanIn) finish(err error, primary bool) {
	if primary {
		f.err = err
	}
	if f.pending.Add(-1) == 0 {
		f.orig(f.err)
	}
}

// mirror enqueues a copy of req to the shadow and rewires req.done through
// a fan-in. Requests share the data buffer: the caller's buffer lifetime is
// bounded by its done firing, which now waits for the mirror as well. If
// the shadow is already detached, req passes through unchanged.
func (sh *shadowNode) mirror(req nodeReq) nodeReq {
	sh.mu.RLock()
	if sh.closed {
		sh.mu.RUnlock()
		return req
	}
	f := &shadowFanIn{orig: req.done}
	f.pending.Store(2)
	sh.ch <- nodeReq{region: req.region, offset: req.offset, data: req.data, enq: req.enq,
		done: func(err error) { f.finish(err, false) }}
	sh.mu.RUnlock()
	req.done = func(err error) { f.finish(err, true) }
	return req
}

func (sh *shadowNode) loop() {
	defer sh.wg.Done()
	for req := range sh.ch {
		var err error
		if sh.Err() != nil {
			err = sh.failErr // sticky: one lost mirror write aborts the replacement
		} else {
			err = sh.conn.Write(req.region, req.offset, req.data)
			if err != nil {
				sh.fail(err)
			}
		}
		req.done(err)
	}
}

func (sh *shadowNode) fail(err error) {
	sh.errMu.Lock()
	if !sh.failed {
		sh.failed, sh.failErr = true, err
	}
	sh.errMu.Unlock()
}

// Err returns the first mirror-write failure, if any.
func (sh *shadowNode) Err() error {
	sh.errMu.Lock()
	defer sh.errMu.Unlock()
	return sh.failErr
}

// detach stops the mirror: no new requests are accepted, queued ones drain,
// and detach returns once the last has completed. Callers detach only AFTER
// swapping the slot's primary connection to the shadow's (or on abort), so
// a drained duplicate against the swapped-in connection is harmless — the
// primary path writes the same bytes to the same addresses.
func (sh *shadowNode) detach() {
	sh.mu.Lock()
	if !sh.closed {
		sh.closed = true
		close(sh.ch)
	}
	sh.mu.Unlock()
	sh.wg.Wait()
}

// opCtx bundles an rdma.Op with its completion context so a pipelined
// submission needs no per-op closure: the ctx is pooled and fn is a method
// value bound once at construction, making the submit path allocation-free.
type opCtx struct {
	op    rdma.Op
	m     *Memory
	node  int
	conn  rdma.Verbs
	start time.Time
	done  func(error)
	fn    func(*rdma.Op)
}

var opCtxPool = sync.Pool{}

func getOpCtx() *opCtx {
	if v := opCtxPool.Get(); v != nil {
		return v.(*opCtx)
	}
	c := new(opCtx)
	c.fn = c.complete
	return c
}

// complete is the transport completion callback: it recycles the ctx, then
// feeds the outcome to the health accounting and the caller's done.
func (c *opCtx) complete(o *rdma.Op) {
	err := o.Err
	m, node, conn, start, done := c.m, c.node, c.conn, c.start, c.done
	*o = rdma.Op{}
	c.m, c.conn, c.done = nil, nil, nil
	opCtxPool.Put(c)
	m.noteOpResult(node, conn, time.Since(start), err)
	done(err)
}

// nodeWorkerLoop drains node i's queue. With a pipelined connection the
// loop submits and immediately moves on — completions arrive on transport
// goroutines — so the queue drains at submission speed, not round-trip
// speed.
func (m *Memory) nodeWorkerLoop(i int, ch chan nodeReq) {
	defer m.workerWG.Done()
	for req := range ch {
		m.queueDepth.Dec()
		m.stats.queueWaitUs.Add(uint64(time.Since(req.enq).Microseconds()))
		// conn redials through the circuit breaker, so a node that was down
		// at connect time (or lost its connection mid-run) is re-established
		// from the write path itself, not only by the recovery manager.
		conn, err := m.conn(i)
		if err != nil {
			m.noteNodeError(i, err)
			req.done(err)
			continue
		}
		start := time.Now()
		sub, ok := conn.(rdma.Submitter)
		if !ok {
			err := conn.Write(req.region, req.offset, req.data)
			m.noteOpResult(i, conn, time.Since(start), err)
			req.done(err)
			continue
		}
		c := getOpCtx()
		c.m, c.node, c.conn, c.start, c.done = m, i, conn, start, req.done
		op := &c.op
		op.Kind = rdma.OpWrite
		op.Region = req.region
		op.Offset = req.offset
		op.Data = req.data
		op.Done = c.fn
		sub.Submit(op)
	}
}

// enqueueBestEffort sends a write to a suspect node without making any
// caller wait on it. The payload is copied — the caller's buffer may be
// pooled and recycled the moment the waited-on completions finish, while a
// gray node can sit on this op until its deadline — and the outcome feeds
// only the health accounting in the worker.
func (m *Memory) enqueueBestEffort(i int, region rdma.RegionID, offset uint64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.enqueue(i, nodeReq{region: region, offset: offset, data: cp, done: func(error) {}})
}

// quorumGroup tracks one fan-out's completions. wait returns as soon as the
// outcome is decided — need acks for success, or too many failures — while
// the group keeps counting stragglers; onAll runs exactly once after the
// final completion, when per-op resources (buffers, range locks) may be
// released.
type quorumGroup struct {
	mu        sync.Mutex
	remaining int
	total     int
	need      int
	acks      int
	decided   bool
	failed    bool
	decCh     chan struct{}
	onAll     func()
}

// newQuorumGroup creates a group over total completions needing need acks.
// If need can never be reached (need > total), the group is born decided.
func newQuorumGroup(total, need int, onAll func()) *quorumGroup {
	g := &quorumGroup{remaining: total, total: total, need: need, decCh: make(chan struct{}), onAll: onAll}
	if need > total {
		g.decided = true
		g.failed = true
		close(g.decCh)
	}
	if total == 0 {
		g.finishAll()
	}
	return g
}

func (g *quorumGroup) finishAll() {
	if g.onAll != nil {
		g.onAll()
	}
}

// ack records one completion. Safe to call from transport goroutines.
func (g *quorumGroup) ack(err error) {
	g.mu.Lock()
	g.remaining--
	if err == nil {
		g.acks++
	}
	if !g.decided {
		if g.acks >= g.need {
			g.decided = true
			close(g.decCh)
		} else if g.acks+g.remaining < g.need {
			g.decided = true
			g.failed = true
			close(g.decCh)
		}
	}
	last := g.remaining == 0
	g.mu.Unlock()
	if last {
		g.finishAll()
	}
}

// wait blocks until the outcome is decided and returns it. The failure
// message reads the ack counter at report time, so acks that arrived before
// (or even after) the fatal decision are reflected instead of the
// zero-value count the group was born with.
func (g *quorumGroup) wait() error {
	<-g.decCh
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.failed {
		return fmt.Errorf("%w: %d of %d acks (need %d)", ErrNoQuorum, g.acks, g.total, g.need)
	}
	return nil
}
