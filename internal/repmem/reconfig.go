package repmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/repro/sift/internal/erasure"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
)

// Online reconfiguration (ROADMAP "elastic membership"): the group's member
// set can change while it serves traffic. Two operations exist:
//
//   - ReplaceNode swaps one member for a fresh machine in place, keeping the
//     group size and data geometry. The joining node is brought to
//     byte-identity with a shadow write mirror plus the verified recovery
//     copies, then the slot's identity is cut over under the write gate.
//
//   - Restripe moves the group to a different member set and/or erasure
//     geometry (node count, Fm). Fresh targets are swept to byte-identity
//     under traffic with dirty-range tracking; the cutover re-copies only
//     what changed, commits the new config epoch, and closes this Memory
//     with ErrReconfigured so the owner rebuilds against the new set.
//
// Both commit by advancing the config-epoch word (memnode.AdminEpochOffset)
// after planting the new configuration descriptor on both the outgoing and
// incoming member sets — a discoverer holding any one node can chase to the
// authoritative configuration. Removed nodes are retired: tombstoned,
// de-populated, and write-fenced, so their frozen DRAM can never serve a
// read or accept a data-plane write in the new epoch.

// dirtyMaxRanges bounds the dirty tracker before it degrades to
// whole-space mode (the final drain then re-copies everything).
const dirtyMaxRanges = 4096

// dirtyTracker collects the address ranges mutated while a restripe sweep
// runs, so the cutover can re-copy exactly what the sweep may have missed.
// Writers note ranges while holding their range locks, which orders every
// note against the sweep's locked reads: a write is either fully visible to
// the sweep's copy of its range, or noted and re-copied at cutover.
type dirtyTracker struct {
	mu     sync.Mutex
	ranges []lockRange
	all    bool
}

func newDirtyTracker() *dirtyTracker { return &dirtyTracker{} }

func (t *dirtyTracker) note(addr uint64, size int) {
	if size <= 0 {
		return
	}
	t.mu.Lock()
	if !t.all {
		t.ranges = append(t.ranges, lockRange{addr: addr, size: size})
		if len(t.ranges) > dirtyMaxRanges {
			t.coalesceLocked()
			if len(t.ranges) > dirtyMaxRanges {
				t.all, t.ranges = true, nil
			}
		}
	}
	t.mu.Unlock()
}

// coalesceLocked sorts and merges overlapping/adjacent ranges in place.
func (t *dirtyTracker) coalesceLocked() {
	rs := t.ranges
	if len(rs) < 2 {
		return
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].addr < rs[j].addr })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.addr <= last.addr+uint64(last.size) {
			if end := r.addr + uint64(r.size); end > last.addr+uint64(last.size) {
				last.size = int(end - last.addr)
			}
			continue
		}
		out = append(out, r)
	}
	t.ranges = out
}

// snapshot returns the merged dirty set. all means "treat the whole space
// as dirty" (tracker overflowed).
func (t *dirtyTracker) snapshot() (all bool, ranges []lockRange) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.all {
		return true, nil
	}
	t.coalesceLocked()
	return false, append([]lockRange(nil), t.ranges...)
}

// noteDirtyMain records a main-space mutation for an in-flight restripe
// sweep. No-op (one atomic load) when no restripe is running.
func (m *Memory) noteDirtyMain(addr uint64, size int) {
	if t := m.dirtyMain.Load(); t != nil {
		t.note(addr, size)
	}
}

// noteDirtyDirect records a direct-space mutation for an in-flight restripe
// sweep.
func (m *Memory) noteDirtyDirect(addr uint64, size int) {
	if t := m.dirtyDirect.Load(); t != nil {
		t.note(addr, size)
	}
}

// drainApplies blocks until every reserved WAL index has been applied to
// the materialized memory. The caller must hold the write gate, so no new
// index can be reserved while draining.
func (m *Memory) drainApplies() {
	m.seqMu.Lock()
	for m.watermark+1 != m.nextIndex && !m.closed.Load() {
		m.seqCond.Wait()
	}
	m.seqMu.Unlock()
}

// closeReconfigured closes the memory marking ErrReconfigured as the cause:
// the member set this handle serves is no longer authoritative.
func (m *Memory) closeReconfigured() {
	m.reconfigured.Store(true)
	m.seqMu.Lock()
	m.seqCond.Broadcast()
	m.seqMu.Unlock()
	m.Close()
}

// zeroWAL clears a node's whole write-ahead-log area over conn c.
func (m *Memory) zeroWAL(c rdma.Verbs) error {
	zeros := make([]byte, recoveryBatch)
	walBytes := uint64(m.layout.WALBytes())
	for off := uint64(0); off < walBytes; off += uint64(len(zeros)) {
		chunk := zeros
		if rem := walBytes - off; rem < uint64(len(zeros)) {
			chunk = zeros[:rem]
		}
		if err := c.Write(replRegion, off, chunk); err != nil {
			return err
		}
	}
	return nil
}

// initJoiningNode prepares a freshly dialed node for state transfer: clear
// any retired tombstone from a previous membership, mark it unpopulated (a
// half-copied node must never be trusted by a successor), and zero its WAL.
func (m *Memory) initJoiningNode(c rdma.Verbs) error {
	var zero [8]byte
	if err := c.Write(memnode.AdminRegionID, memnode.AdminRetiredOffset, zero[:]); err != nil {
		return err
	}
	if err := writePopulated(c, memnode.MarkerEmpty); err != nil {
		return err
	}
	return m.zeroWAL(c)
}

// cfgTarget is one node participating in a config-epoch commit.
type cfgTarget struct {
	name     string
	conn     rdma.Verbs
	inOld    bool // member of the outgoing configuration
	inNew    bool // member of the incoming configuration
	retained bool // carries the old epoch word (advance by CAS, not blind write)
}

// commitDescriptor plants rec's encoded descriptor on every target and
// requires a majority of BOTH the outgoing and incoming member sets to
// carry it before the epoch may advance: any future discoverer reaching a
// majority of either set then finds the record. Failing here aborts the
// reconfiguration cleanly — no epoch word has moved.
func commitDescriptor(rec memnode.ConfigRecord, oldN, newN int, targets []cfgTarget) error {
	image, err := memnode.EncodeConfig(rec)
	if err != nil {
		return err
	}
	oldOK, newOK := 0, 0
	for _, t := range targets {
		if t.conn == nil {
			continue
		}
		if err := t.conn.Write(memnode.AdminRegionID, memnode.AdminConfigOffset, image); err != nil {
			continue
		}
		if t.inOld {
			oldOK++
		}
		if t.inNew {
			newOK++
		}
	}
	if oldOK < oldN/2+1 || newOK < newN/2+1 {
		return fmt.Errorf("%w: config descriptor reached %d/%d old and %d/%d new nodes",
			ErrNoQuorum, oldOK, oldN, newOK, newN)
	}
	return nil
}

// advanceEpochWords moves every target's config-epoch word to rec's
// (epoch, term). Retained nodes advance by CAS from their observed word so
// a racing newer configuration can never be regressed; fresh nodes (whose
// exclusive region we hold) and outgoing-only nodes are written directly.
// The commit point of the reconfiguration is the first successful advance
// on an incoming-set node; success requires a majority of the incoming set.
func advanceEpochWords(rec memnode.ConfigRecord, newN int, targets []cfgTarget) error {
	want := memnode.PackServing(rec.Epoch, rec.Term)
	newOK := 0
	for _, t := range targets {
		if t.conn == nil {
			continue
		}
		ok := false
		if !t.retained {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], want)
			ok = t.conn.Write(memnode.AdminRegionID, memnode.AdminEpochOffset, buf[:]) == nil
		} else {
			for attempt := 0; attempt < 4; attempt++ {
				e, tm, err := readEpochWord(t.conn)
				if err != nil {
					break
				}
				cur := memnode.PackServing(e, tm)
				if cur >= want {
					ok = cur == want
					break
				}
				if got, err := t.conn.CompareAndSwap(memnode.AdminRegionID, memnode.AdminEpochOffset, cur, want); err == nil && (got == cur || got == want) {
					ok = true
					break
				}
			}
		}
		if ok && t.inNew {
			newOK++
		}
	}
	if newOK < newN/2+1 {
		return fmt.Errorf("%w: config epoch %d reached %d/%d incoming nodes",
			ErrNoQuorum, rec.Epoch, newOK, newN)
	}
	return nil
}

// writeMembershipTo plants a membership record for the given epoch on one
// node, bypassing the publisher (used at cutover, before the new epoch's
// Memory exists to publish for itself).
func writeMembershipTo(c rdma.Verbs, epoch uint32, term, version uint16, bitmap uint32) error {
	w0, w1 := memnode.PackMembership(epoch, term, version, bitmap)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], w0)
	binary.LittleEndian.PutUint64(buf[8:], w1)
	return c.Write(memnode.AdminRegionID, memnode.AdminMembershipOffset, buf[:])
}

// retireNode stamps a removed node with the epoch that removed it, clears
// its populated marker, and — by dialing a fresh exclusive connection —
// revokes whatever data-plane connection the node last granted, so writes
// still buffered toward it fail with ErrFenced instead of landing. Best
// effort: an unreachable node cannot serve anyone either, and if it returns
// it returns tombstoned-by-peers (every current node's descriptor names the
// new configuration, which excludes it).
func (m *Memory) retireNode(name string, epoch uint32) {
	c, err := m.cfg.Dial(name)
	if err != nil {
		m.emit("reconfig.retire-unreachable", name, err.Error())
		return
	}
	defer c.Close()
	err = writePopulated(c, memnode.MarkerEmpty)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(epoch))
	if werr := c.Write(memnode.AdminRegionID, memnode.AdminRetiredOffset, buf[:]); err == nil {
		err = werr
	}
	if err != nil {
		// A gray node (dial up, host silent) lands here: the tombstone
		// never reached it, so if it returns it returns undecorated —
		// safety rests on the peers' epoch words and descriptors.
		m.emit("reconfig.retire-unreachable", name, err.Error())
		return
	}
	m.emit("reconfig.retired", name, fmt.Sprintf("epoch %d", epoch))
}

// ReplaceNode swaps group member oldName for the fresh machine newName,
// preserving the group size, data geometry, and — crucially under erasure
// coding — the slot's chunk index. The epoch advances by one; the memory
// keeps serving throughout (writers see added latency only during the brief
// gated cutover).
//
// If the outgoing node is live, its write stream is mirrored to the joining
// node (see shadowNode) while the verified recovery copies bring it to
// byte-identity, so no catch-up delta pass is needed: by cutover time the
// mirror has applied everything the copies missed. If the outgoing node is
// dead, the slot identity is swapped first and the ordinary rebuild
// pipeline runs against the new machine.
func (m *Memory) ReplaceNode(oldName, newName string) error {
	m.reconfigMu.Lock()
	defer m.reconfigMu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	m.transferring.Store(true)
	defer m.transferring.Store(false)
	slot := -1
	for j := range m.nodes {
		switch m.nodeName(j) {
		case oldName:
			slot = j
		case newName:
			return fmt.Errorf("repmem: %q is already a group member", newName)
		}
	}
	if slot < 0 {
		return fmt.Errorf("repmem: unknown memory node %q", oldName)
	}
	next := m.epoch.Load() + 1

	c, err := m.cfg.Dial(newName)
	if err != nil {
		return fmt.Errorf("repmem: dial joining node %s: %w", newName, err)
	}
	if err := m.initJoiningNode(c); err != nil {
		c.Close()
		return fmt.Errorf("repmem: init joining node %s: %w", newName, err)
	}

	if m.state[slot].Load() != nodeDead {
		if err := m.replaceLive(slot, newName, next, c); err != nil {
			return err
		}
	} else {
		if err := m.replaceDead(slot, newName, next, c); err != nil {
			return err
		}
	}

	// The outgoing node leaves the readable set this instant: start the
	// exclusion clock so lease-based backup acks are held long enough for
	// every ≤W-stale backup mask to expire (kv AckHold interplay).
	m.MarkExclusion(time.Now())
	m.publishMembership()
	m.PublishServing()
	m.retireNode(oldName, next)
	m.emit("reconfig.replaced", newName, fmt.Sprintf("replaced %s at epoch %d", oldName, next))
	return nil
}

// newMembersWith returns the member list with slot replaced by name.
func (m *Memory) newMembersWith(slot int, name string) []string {
	members := m.MemberNames()
	members[slot] = name
	return members
}

// replaceTargets builds the epoch-commit target list for a single-slot
// replacement: every writable current member (the outgoing node's conn
// included, pre-swap) plus the joining node's fresh connection.
func (m *Memory) replaceTargets(slot int, joining rdma.Verbs) []cfgTarget {
	var targets []cfgTarget
	for _, i := range m.writableNodes() {
		ci, err := m.conn(i)
		if err != nil {
			continue
		}
		targets = append(targets, cfgTarget{
			name: m.nodeName(i), conn: ci,
			inOld: true, inNew: i != slot, retained: true,
		})
	}
	targets = append(targets, cfgTarget{name: "joining", conn: joining, inNew: true})
	return targets
}

// swapSlot installs conn c and name as slot's identity.
func (m *Memory) swapSlot(slot int, name string, c rdma.Verbs) {
	m.dialMu[slot].Lock()
	old := m.conns[slot].Swap(&connBox{v: c})
	m.redialers[slot].retarget(name)
	m.setNodeName(slot, name)
	m.dialMu[slot].Unlock()
	if old != nil && old.v != c {
		old.v.Close()
	}
	h := &m.health[slot]
	h.consecTimeouts.Store(0)
	h.probeFails.Store(0)
	h.corruptBlocks.Store(0)
	h.ewma.Reset()
}

// replaceLive is the shadow-mirror replacement of a live (or gray) member.
func (m *Memory) replaceLive(slot int, newName string, next uint32, c rdma.Verbs) error {
	sh := newShadowNode(newName, c)
	m.shadows[slot].Store(sh)
	abort := func(err error) error {
		m.shadows[slot].Store(nil)
		sh.detach()
		c.Close()
		return err
	}

	// State transfer under traffic: verified copies of the direct zone and
	// materialized memory, while the mirror forwards every concurrent write.
	// Each copied range is read and written under its range lock, and
	// writers' locks are held until their mirror lands, so every byte is
	// covered by exactly one of copy-after-write or mirror-after-copy.
	if err := m.copyDirectZone(slot, c); err != nil {
		return abort(fmt.Errorf("repmem: state transfer to %s: %w", newName, err))
	}
	if err := m.copyMainMemory(slot, c); err != nil {
		return abort(fmt.Errorf("repmem: state transfer to %s: %w", newName, err))
	}
	if err := sh.Err(); err != nil {
		return abort(fmt.Errorf("repmem: write mirror to %s: %w", newName, err))
	}
	if err := writePopulated(c, memnode.MarkerPopulated); err != nil {
		return abort(fmt.Errorf("repmem: mark %s populated: %w", newName, err))
	}

	// The outgoing node may have died during the transfer, stopping the
	// mirror with it; fall back to the dead-slot pipeline (full rebuild of
	// the joining node — the mirror can no longer be trusted complete).
	if m.state[slot].Load() == nodeDead {
		m.shadows[slot].Store(nil)
		sh.detach()
		return m.replaceDead(slot, newName, next, c)
	}

	// Cutover under the write gate: drain the apply pipeline so every
	// committed WAL entry is materialized everywhere (the joining node's WAL
	// holds only post-attach entries — an entry absent from it must not be
	// needed by any successor), then commit the epoch and swap identities.
	m.gate.Lock()
	m.drainApplies()
	if m.state[slot].Load() == nodeDead {
		m.gate.Unlock()
		m.shadows[slot].Store(nil)
		sh.detach()
		return m.replaceDead(slot, newName, next, c)
	}
	if err := sh.Err(); err != nil {
		m.gate.Unlock()
		return abort(fmt.Errorf("repmem: write mirror to %s: %w", newName, err))
	}
	if err := m.checkOpen(); err != nil {
		m.gate.Unlock()
		return abort(err)
	}

	rec := memnode.ConfigRecord{
		Epoch: next, Term: m.cfg.Term,
		ECData: m.cfg.ECData, ECParity: m.cfg.ECParity, ECBlockSize: m.cfg.ECBlockSize,
		Members: m.newMembersWith(slot, newName),
	}
	n := len(m.nodes)
	targets := m.replaceTargets(slot, c)
	if err := commitDescriptor(rec, n, n, targets); err != nil {
		m.gate.Unlock()
		return abort(err)
	}
	if err := advanceEpochWords(rec, n, targets); err != nil {
		// Some incoming-set epoch words may already carry the new epoch: the
		// outcome is ambiguous, so stop serving and let discovery converge on
		// whichever configuration committed.
		m.gate.Unlock()
		m.shadows[slot].Store(nil)
		sh.detach()
		c.Close()
		m.closeReconfigured()
		return err
	}

	m.swapSlot(slot, newName, c)
	m.state[slot].Store(nodeLive)
	m.epoch.Store(next)
	m.shadows[slot].Store(nil)
	m.gate.Unlock()
	sh.detach()
	return nil
}

// replaceDead swaps a dead slot's identity to the joining node and rebuilds
// it through the ordinary recovery pipeline. The epoch is committed BEFORE
// the rebuild: membership bitmaps published during the rebuild must index
// the member list that actually names the joining node, or a successor
// could map the slot's bit back to the outgoing machine and trust its
// frozen DRAM.
func (m *Memory) replaceDead(slot int, newName string, next uint32, c rdma.Verbs) error {
	rec := memnode.ConfigRecord{
		Epoch: next, Term: m.cfg.Term,
		ECData: m.cfg.ECData, ECParity: m.cfg.ECParity, ECBlockSize: m.cfg.ECBlockSize,
		Members: m.newMembersWith(slot, newName),
	}
	n := len(m.nodes)
	targets := m.replaceTargets(slot, c)
	if err := commitDescriptor(rec, n, n, targets); err != nil {
		c.Close()
		return err
	}
	if err := advanceEpochWords(rec, n, targets); err != nil {
		c.Close()
		m.closeReconfigured()
		return err
	}
	m.swapSlot(slot, newName, c)
	m.epoch.Store(next)
	// Slot stays dead until the rebuild completes, exactly as a crashed
	// member would; a successor adopting epoch `next` mid-rebuild sees the
	// joining node unpopulated and absent from the bitmap, and rebuilds it.
	if err := m.rebuildSlot(slot, c); err != nil {
		return fmt.Errorf("repmem: rebuild of joining node %s: %w", newName, err)
	}
	m.stats.nodeRecovered.Add(1)
	return nil
}

// RestripeTarget describes the configuration Restripe moves the group to.
// The logical memory size, direct-zone size, WAL geometry, and — crucially,
// because the kv layer derives its block layout from it — the EC block size
// are inherited from the current configuration.
type RestripeTarget struct {
	// Members is the incoming member list (order fixes chunk indexes).
	Members []string
	// ECData and ECParity are the incoming erasure geometry. They must be
	// zero iff the current configuration is plain-replicated: an online
	// restripe cannot change the logical block alignment the application
	// layers were built over.
	ECData, ECParity int
}

// RestripeResult reports a committed restripe cutover.
type RestripeResult struct {
	// Record is the committed configuration descriptor (epoch, members,
	// geometry) the owner should rebuild against.
	Record memnode.ConfigRecord
	// CutoverAt is when the outgoing member set stopped being
	// authoritative; the rebuilt memory's exclusion clock must cover it.
	CutoverAt time.Time
}

// Restripe moves the group to the target member set and erasure geometry
// while serving traffic, then commits the new config epoch and closes this
// Memory with ErrReconfigured (the owner rebuilds a Memory over
// Record.Members). Plain-replication restripes keep common nodes without
// copying (every plain node holds the identical full image); erasure-coded
// restripes require an all-new target set — chunk layouts are geometry-
// dependent, and rewriting a retained node in place would corrupt the
// outgoing configuration's state if the coordinator died before the commit.
func (m *Memory) Restripe(t RestripeTarget) (*RestripeResult, error) {
	m.reconfigMu.Lock()
	defer m.reconfigMu.Unlock()
	if err := m.checkOpen(); err != nil {
		return nil, err
	}
	m.transferring.Store(true)
	defer m.transferring.Store(false)

	tgtEC := t.ECData > 0 || t.ECParity > 0
	if tgtEC != (m.code != nil) {
		return nil, fmt.Errorf("repmem: online restripe cannot change between plain replication and erasure coding")
	}
	tcfg := m.cfg
	tcfg.MemoryNodes = t.Members
	tcfg.ECData, tcfg.ECParity = t.ECData, t.ECParity
	if err := tcfg.Validate(); err != nil {
		return nil, err
	}
	tLayout := tcfg.Layout()

	cur := m.MemberNames()
	curSet := make(map[string]bool, len(cur))
	for _, name := range cur {
		curSet[name] = true
	}
	var fresh []string
	retained := make(map[string]bool)
	for _, name := range t.Members {
		if curSet[name] {
			retained[name] = true
		} else {
			fresh = append(fresh, name)
		}
	}
	if tgtEC && len(retained) > 0 {
		return nil, fmt.Errorf("repmem: erasure-coded restripe requires an all-new target node set (retained: %v)", keys(retained))
	}
	if len(fresh) == 0 && len(t.Members) == len(cur) && t.ECData == m.cfg.ECData && t.ECParity == m.cfg.ECParity {
		return nil, fmt.Errorf("repmem: target configuration equals current")
	}
	var removed []string
	tgtSet := make(map[string]bool, len(t.Members))
	for _, name := range t.Members {
		tgtSet[name] = true
	}
	for _, name := range cur {
		if !tgtSet[name] {
			removed = append(removed, name)
		}
	}

	var tCode *erasure.Code
	tChunk := 0
	if tgtEC {
		code, err := erasure.New(t.ECData, t.ECParity)
		if err != nil {
			return nil, err
		}
		tCode = code
		tChunk = m.cfg.ECBlockSize / t.ECData
	}

	next := m.epoch.Load() + 1
	rec := memnode.ConfigRecord{
		Epoch: next, Term: m.cfg.Term,
		ECData: t.ECData, ECParity: t.ECParity, ECBlockSize: tcfg.ECBlockSize,
		Members: append([]string(nil), t.Members...),
	}

	// Phase 0: dial and initialize every fresh target.
	freshConns := make(map[string]rdma.Verbs, len(fresh))
	cleanup := func() {
		for _, c := range freshConns {
			c.Close()
		}
	}
	for _, name := range fresh {
		c, err := m.cfg.Dial(name)
		if err == nil {
			err = m.initJoiningNode(c)
		}
		if err != nil {
			if c != nil {
				c.Close()
			}
			cleanup()
			return nil, fmt.Errorf("repmem: init restripe target %s: %w", name, err)
		}
		freshConns[name] = c
	}
	// sweepConns[j] is the connection for t.Members[j] needing data writes
	// (nil for retained plain nodes, which already hold the full image).
	sweepConns := make([]rdma.Verbs, len(t.Members))
	for j, name := range t.Members {
		sweepConns[j] = freshConns[name]
	}

	// Phase 1: sweep the whole space to the fresh targets under traffic,
	// with the dirty trackers recording concurrent mutations.
	m.dirtyMain.Store(newDirtyTracker())
	m.dirtyDirect.Store(newDirtyTracker())
	defer m.dirtyMain.Store(nil)
	defer m.dirtyDirect.Store(nil)
	m.emit("reconfig.restripe-sweep", "", fmt.Sprintf("epoch %d: %d fresh targets", next, len(fresh)))
	if err := m.sweepDirect(sweepConns, 0, uint64(m.cfg.DirectSize)); err != nil {
		cleanup()
		return nil, err
	}
	if err := m.sweepMain(sweepConns, tCode, tChunk, tLayout, 0, uint64(m.cfg.MemSize)); err != nil {
		cleanup()
		return nil, err
	}

	// Phase 2: gated cutover. No new write can start, and drainApplies
	// guarantees every committed entry is materialized, so the delta
	// re-copy below sees the final state of every dirty range.
	m.gate.Lock()
	m.drainApplies()
	if err := m.checkOpen(); err != nil {
		m.gate.Unlock()
		cleanup()
		return nil, err
	}
	dirtyM := m.dirtyMain.Swap(nil)
	dirtyD := m.dirtyDirect.Swap(nil)
	err := m.replayDirty(dirtyD, uint64(m.cfg.DirectSize), "direct", func(lo, hi uint64) error {
		return m.sweepDirect(sweepConns, lo, hi)
	})
	if err == nil {
		err = m.replayDirty(dirtyM, uint64(m.cfg.MemSize), "main", func(lo, hi uint64) error {
			return m.sweepMain(sweepConns, tCode, tChunk, tLayout, lo, hi)
		})
	}
	if err != nil {
		m.gate.Unlock()
		cleanup()
		return nil, err
	}

	// Every incoming node is now byte-identical: mark fresh ones populated
	// BEFORE the epoch advances, so a committed epoch always implies a
	// usable incoming majority.
	for name, c := range freshConns {
		if err := writePopulated(c, memnode.MarkerPopulated); err != nil {
			m.gate.Unlock()
			cleanup()
			return nil, fmt.Errorf("repmem: mark %s populated: %w", name, err)
		}
	}

	// Commit: descriptor to majorities of both sets, then the epoch words.
	var targets []cfgTarget
	for _, i := range m.writableNodes() {
		ci, err := m.conn(i)
		if err != nil {
			continue
		}
		name := m.nodeName(i)
		targets = append(targets, cfgTarget{
			name: name, conn: ci,
			inOld: true, inNew: retained[name], retained: true,
		})
	}
	for name, c := range freshConns {
		targets = append(targets, cfgTarget{name: name, conn: c, inNew: true})
	}
	if err := commitDescriptor(rec, len(cur), len(t.Members), targets); err != nil {
		m.gate.Unlock()
		cleanup()
		return nil, err
	}
	if err := advanceEpochWords(rec, len(t.Members), targets); err != nil {
		m.gate.Unlock()
		cleanup()
		m.closeReconfigured()
		return nil, err
	}

	// Seed the new epoch's membership record (every incoming node synced)
	// so the rebuilt Memory's takeover hygiene trusts the full set.
	bitmap := uint32(0)
	for j := range t.Members {
		bitmap |= 1 << uint(j)
	}
	for _, tg := range targets {
		if tg.inNew {
			_ = writeMembershipTo(tg.conn, next, m.cfg.Term, 1, bitmap)
		}
	}

	now := time.Now()
	m.gate.Unlock()
	m.closeReconfigured()
	cleanup()
	for _, name := range removed {
		m.retireNode(name, next)
	}
	m.emit("reconfig.restriped", "", fmt.Sprintf("epoch %d: %d members, k=%d m=%d", next, len(t.Members), t.ECData, t.ECParity))
	return &RestripeResult{Record: rec, CutoverAt: now}, nil
}

func keys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sweepDirect copies the direct-zone range [lo, hi) to every non-nil dst
// connection, batch by batch under read locks (concurrent DirectWrites to a
// batch are excluded for its duration, exactly like a recovery copy).
func (m *Memory) sweepDirect(dst []rdma.Verbs, lo, hi uint64) error {
	buf := make([]byte, recoveryBatch)
	for off := lo; off < hi; off += uint64(len(buf)) {
		n := uint64(len(buf))
		if rem := hi - off; rem < n {
			n = rem
		}
		chunk := buf[:n]
		unlock := m.directLocks.rlockRange(off, int(n))
		err := m.readDirectFromLive(off, chunk)
		for _, c := range dst {
			if err != nil {
				break
			}
			if c != nil {
				err = c.Write(replRegion, m.physDirect(off), chunk)
			}
		}
		unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// sweepMain copies the main-space range [lo, hi) to the target nodes in the
// TARGET geometry: dst[j] receives member j's share (the full image under
// plain replication, chunk j under erasure coding) plus its integrity strip
// entries. Source reads are verified wherever the current configuration
// supports it.
func (m *Memory) sweepMain(dst []rdma.Verbs, tCode *erasure.Code, tChunk int, tLayout memnode.Layout, lo, hi uint64) error {
	if hi > uint64(m.cfg.MemSize) {
		hi = uint64(m.cfg.MemSize)
	}
	if lo >= hi {
		return nil
	}
	if tCode != nil {
		return m.sweepMainEC(dst, tCode, tChunk, tLayout, lo, hi)
	}
	return m.sweepMainPlain(dst, tLayout, lo, hi)
}

// sweepMainPlain handles plain→plain restripes: each target node receives
// the full image, block by block when checksumming is on (verified source
// reads; a corrupt block is repaired and retried like a recovery copy).
func (m *Memory) sweepMainPlain(dst []rdma.Verbs, tLayout memnode.Layout, lo, hi uint64) error {
	g := m.integ
	if g == nil {
		buf := make([]byte, recoveryBatch)
		for off := lo; off < hi; off += uint64(len(buf)) {
			n := uint64(len(buf))
			if rem := hi - off; rem < n {
				n = rem
			}
			chunk := buf[:n]
			unlock := m.locks.rlockRange(off, int(n))
			err := m.readMainFromLive(off, chunk)
			for _, c := range dst {
				if err != nil {
					break
				}
				if c != nil {
					err = c.Write(replRegion, m.physMain(off), chunk)
				}
			}
			unlock()
			if err != nil {
				return err
			}
		}
		return nil
	}
	b0 := lo / g.ibs
	b1 := (hi - 1) / g.ibs
	for b := b0; b <= b1; b++ {
		var err error
		for attempt := 0; attempt < 2; attempt++ {
			start, length := g.blockRange(b)
			unlock := m.locks.rlockRange(start, length)
			var blk []byte
			blk, err = g.readPlainBlockNoRepair(b)
			for _, c := range dst {
				if err != nil {
					break
				}
				if c == nil {
					continue
				}
				if err = c.Write(replRegion, g.physOff(b), blk); err == nil {
					err = c.Write(replRegion, tLayout.IntegrityOffset(b), stripEntry(g.sum(0, b)))
				}
			}
			unlock()
			if err == nil || !errors.Is(err, ErrCorrupt) {
				break
			}
			if rerr := g.repairBlocks([]uint64{b}); rerr != nil {
				return rerr
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// sweepMainEC handles EC→EC restripes: each logical block is reconstructed
// (and verified) through the current geometry, re-encoded with the target
// code, and target chunk j lands on dst[j] with its strip entry.
func (m *Memory) sweepMainEC(dst []rdma.Verbs, tCode *erasure.Code, tChunk int, tLayout memnode.Layout, lo, hi uint64) error {
	B := uint64(m.cfg.ECBlockSize)
	chunks := make([][]byte, len(dst))
	parity := make([]byte, (tCode.M())*tChunk)
	for i := 0; i < tCode.M(); i++ {
		chunks[tCode.K()+i] = parity[i*tChunk : (i+1)*tChunk]
	}
	b0 := lo / B
	b1 := (hi + B - 1) / B
	for b := b0; b < b1; b++ {
		unlock := m.locks.rlockRange(b*B, int(B))
		block, _, err := m.readBlockEC(b)
		if err == nil {
			err = tCode.EncodeTo(block, chunks)
		}
		if err == nil {
			for j, c := range dst {
				if c == nil {
					continue
				}
				if err = c.Write(replRegion, tLayout.MainBase()+b*uint64(tChunk), chunks[j]); err != nil {
					break
				}
				if m.integ != nil {
					if err = c.Write(replRegion, tLayout.IntegrityOffset(b), stripEntry(crcBlock(chunks[j]))); err != nil {
						break
					}
				}
			}
		}
		unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// replayDirty re-copies a dirty tracker's recorded ranges through the given
// sweep function (called at cutover, under the write gate, so the final
// state of every range is what gets copied).
func (m *Memory) replayDirty(t *dirtyTracker, size uint64, space string, sweep func(lo, hi uint64) error) error {
	if t == nil {
		return nil
	}
	all, ranges := t.snapshot()
	if all {
		m.emit("reconfig.dirty-overflow", "", "re-copying entire "+space+" space at cutover")
		return sweep(0, size)
	}
	for _, r := range ranges {
		hi := r.addr + uint64(r.size)
		if hi > size {
			hi = size
		}
		if r.addr >= hi {
			continue
		}
		if err := sweep(r.addr, hi); err != nil {
			return err
		}
	}
	return nil
}
