// Package repmem implements Sift's replicated memory layer (paper §3): the
// coordinator-side logic that presents the group's 2Fm+1 passive memory
// nodes as a single logical memory.
//
// Two logical address spaces are exposed:
//
//   - Main space [0, MemSize): read with Read, updated with Write/WriteBatch.
//     Updates are appended to a circular write-ahead log on the memory nodes
//     (one one-sided RDMA WRITE per node, committed on majority ack) and
//     applied to the materialized memory in the background. With erasure
//     coding enabled, the materialized memory is stored as Cauchy
//     Reed–Solomon chunks — one chunk per node — while the WAL remains
//     unencoded (§5.1).
//
//   - Direct space [0, DirectSize): read/written without logging
//     (DirectWrite commits in a single RDMA round trip on majority ack).
//     Used by applications that manage their own conflicts and recovery,
//     such as the key-value store's circular WAL (§3.3.2, §4.1).
//
// Consistency: writers hold per-range locks from WAL append until the
// background apply completes, so reads never observe a committed-but-
// unapplied range (the paper's "locks are only released once a replicated
// memory update has been submitted").
package repmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/erasure"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/metrics"
	"github.com/repro/sift/internal/obs"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/wal"
)

// LatencyHooks holds the hot-path latency histograms. They live outside the
// Memory because a Memory is rebuilt on every coordinator promotion while
// the observed distributions should span terms: allocate one set at
// cluster/daemon scope, pass it through Config.Latency on every term, and
// register the histograms with an obs.Registry once.
type LatencyHooks struct {
	Write       metrics.Histogram // WriteBatch end-to-end commit latency
	DirectWrite metrics.Histogram // direct-zone write commit latency
	Read        metrics.Histogram // main-space read latency
	Quorum      metrics.Histogram // quorum ack wait inside a write
}

// Errors returned by the replicated memory layer.
var (
	// ErrNoQuorum means fewer than a majority of memory nodes acknowledged.
	ErrNoQuorum = errors.New("repmem: no quorum of memory nodes")
	// ErrFenced means a newer coordinator has taken over the group.
	ErrFenced = rdma.ErrFenced
	// ErrOutOfRange means an access fell outside the logical space.
	ErrOutOfRange = errors.New("repmem: access out of logical address range")
	// ErrClosed means the memory has been closed or fenced.
	ErrClosed = errors.New("repmem: closed")
	// ErrEntryTooLarge means a write batch does not fit in one WAL slot.
	ErrEntryTooLarge = wal.ErrTooLarge
	// ErrStaleConfig means the memory nodes belong to a newer config epoch
	// than the caller's member list: a reconfiguration committed after this
	// configuration was discovered. The caller must re-read the configuration
	// descriptor (memnode.AdminConfigOffset) and rebuild against it.
	ErrStaleConfig = errors.New("repmem: config epoch superseded")
	// ErrReconfigured means the memory closed itself after committing a
	// reconfiguration cutover: the member set this handle was built over is
	// no longer the authoritative one. Callers rebuild against the new
	// configuration; clients treat it like ErrClosed and retry.
	ErrReconfigured = fmt.Errorf("%w: group reconfigured", ErrClosed)
)

// Node liveness states.
const (
	nodeLive     int32 = iota // serving reads, receiving writes
	nodeDead                  // unreachable; excluded from everything
	nodeSyncing               // reconnected; receiving writes, not yet readable
	nodeSuspect               // gray: quorums stop waiting on it, writes continue best-effort
	nodeDegraded              // persistently slow but responsive (WAN replica); served around without repair churn
)

// Dialer opens an RDMA connection to a memory node with the replicated
// region held exclusively (at-most-one-connection fencing).
type Dialer func(node string) (rdma.Verbs, error)

// Config parameterises the replicated memory layer.
type Config struct {
	// MemoryNodes lists the group's 2Fm+1 memory nodes.
	MemoryNodes []string
	// Dial opens an exclusive replicated-region connection.
	Dial Dialer

	// MemSize is the logical main memory size in bytes.
	MemSize int
	// DirectSize is the direct-write zone size in bytes.
	DirectSize int
	// WALSlots and WALSlotSize define the circular write-ahead log. The
	// paper's evaluation configures 32k slots (§6.2).
	WALSlots    int
	WALSlotSize int

	// ECData (k = Fm+1) and ECParity (m = Fm) enable erasure coding when
	// both are non-zero; ECData+ECParity must equal len(MemoryNodes) and
	// ECBlockSize must divide MemSize and be divisible by ECData.
	ECData      int
	ECParity    int
	ECBlockSize int

	// IntegrityBlockSize is the logical granularity of main-memory
	// checksumming: each block of this many bytes carries a CRC32C in a
	// strip on every memory node, verified on reads and repaired on
	// mismatch. Zero selects the default (the EC block size under erasure
	// coding, 4096 otherwise); negative disables checksumming. Under
	// erasure coding any positive value is forced to ECBlockSize — the
	// chunk is the physical unit of verification.
	IntegrityBlockSize int
	// CorruptSuspectAfter is the number of corrupt blocks detected on one
	// node since its last rebuild after which the node is marked suspect
	// and routed through a full rebuild (default 8; negative disables).
	CorruptSuspectAfter int

	// ApplyWorkers bounds concurrent background appliers (default 4).
	ApplyWorkers int
	// LockStripes sizes the range-lock tables (default 1024).
	LockStripes int

	// Term tags this coordinator's membership publications (see
	// internal/memnode.AdminMembershipOffset); pass the election term that
	// made this node coordinator. Zero is valid for direct library use —
	// publications still order by version within the zero term.
	Term uint16

	// Epoch is the config epoch MemoryNodes belongs to (see
	// internal/memnode.AdminEpochOffset): membership records from any other
	// epoch are ignored, and New fails with ErrStaleConfig when the nodes
	// have committed a newer epoch. Zero selects epoch 1, the epoch of every
	// fresh deployment.
	Epoch uint32

	// OnFenced, if set, is called once when the layer discovers it has been
	// fenced by a newer coordinator.
	OnFenced func()

	// Events, if set, receives control-plane events (node.suspect,
	// node.dead, node.recovered, repmem.fenced, scrub.repair, read.repair).
	// A nil ring drops them.
	Events *obs.Ring
	// Latency, if set, receives hot-path latency observations. Pass the
	// same hooks across coordinator terms so distributions survive
	// re-promotion.
	Latency *LatencyHooks

	// SuspectAfter is the number of consecutive per-operation deadline
	// expiries (rdma.ErrDeadline) after which a live node is marked suspect:
	// quorum writes stop waiting on it while it keeps receiving writes
	// best-effort (default 2). Suspicion requires a transport configured
	// with an op deadline — without one, gray nodes are indistinguishable
	// from slow ones.
	SuspectAfter int
	// DeadAfter is the number of consecutive deadline expiries after which
	// a node is declared dead outright and handed to the recovery manager
	// (default 16).
	DeadAfter int
	// StragglerFactor marks a live node suspect when its EWMA write latency
	// exceeds StragglerFactor times the fastest live node's (default 16).
	StragglerFactor float64
	// StragglerMinLatency is the absolute EWMA floor below which the
	// straggler check never fires, preventing false suspicion when all
	// nodes are fast (default 2ms). It doubles as the degraded-exit
	// threshold: a degraded node is readmitted (via rebuild) only after its
	// probes drop back below this floor.
	StragglerMinLatency time.Duration
	// StragglerMinSamples is the minimum number of latency observations a
	// node's EWMA needs before the straggler check will judge it (default 8).
	StragglerMinSamples int
	// SuspectProbeLimit is how many consecutive failed probes a suspect or
	// degraded node gets before being declared dead outright (default 4).
	SuspectProbeLimit int
	// DegradeExitProbes is how many consecutive probes below
	// StragglerMinLatency a degraded node must answer before it is routed
	// through a rebuild and readmitted as live (default 3). The hysteresis
	// keeps a sustained-delay replica — one living across a WAN link — from
	// oscillating through the suspect→repair→re-suspect cycle.
	DegradeExitProbes int
	// RedialBackoffMin and RedialBackoffMax bound the jittered exponential
	// backoff between reconnection attempts to a failed node (defaults
	// 10ms and 2s).
	RedialBackoffMin time.Duration
	RedialBackoffMax time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ApplyWorkers <= 0 {
		out.ApplyWorkers = 4
	}
	if out.LockStripes <= 0 {
		out.LockStripes = 1024
	}
	if out.WALSlotSize <= 0 {
		out.WALSlotSize = 4096
	}
	if out.WALSlots <= 0 {
		out.WALSlots = 32 * 1024
	}
	if out.SuspectAfter <= 0 {
		out.SuspectAfter = 2
	}
	if out.DeadAfter <= 0 {
		out.DeadAfter = 16
	}
	if out.StragglerFactor <= 0 {
		out.StragglerFactor = 16
	}
	if out.StragglerMinLatency <= 0 {
		out.StragglerMinLatency = 2 * time.Millisecond
	}
	if out.StragglerMinSamples <= 0 {
		out.StragglerMinSamples = 8
	}
	if out.SuspectProbeLimit <= 0 {
		out.SuspectProbeLimit = 4
	}
	if out.DegradeExitProbes <= 0 {
		out.DegradeExitProbes = 3
	}
	if out.RedialBackoffMin <= 0 {
		out.RedialBackoffMin = 10 * time.Millisecond
	}
	if out.RedialBackoffMax <= 0 {
		out.RedialBackoffMax = 2 * time.Second
	}
	switch {
	case out.IntegrityBlockSize < 0:
		out.IntegrityBlockSize = 0
	case out.ECData > 0:
		out.IntegrityBlockSize = out.ECBlockSize
	case out.IntegrityBlockSize == 0:
		out.IntegrityBlockSize = 4096
	}
	if out.CorruptSuspectAfter == 0 {
		out.CorruptSuspectAfter = 8
	}
	if out.Epoch == 0 {
		out.Epoch = 1
	}
	return out
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.MemoryNodes) == 0 {
		return errors.New("repmem: need at least one memory node")
	}
	// The membership word packs the live-node set as a uint32 bitmap
	// (memnode.AdminMembershipOffset), so the group is hard-capped at 32
	// nodes; silently truncating bits would make the staleness protection
	// lie. The canonical deployment is an odd 2Fm+1 group, but intermediate
	// even sizes are legal (majority is still ⌊n/2⌋+1) so reconfiguration
	// can move through them.
	if len(c.MemoryNodes) > 32 {
		return fmt.Errorf("repmem: %d memory nodes exceeds the 32-node membership-bitmap limit", len(c.MemoryNodes))
	}
	seen := make(map[string]struct{}, len(c.MemoryNodes))
	for _, n := range c.MemoryNodes {
		if n == "" {
			return errors.New("repmem: empty memory node name")
		}
		if _, dup := seen[n]; dup {
			return fmt.Errorf("repmem: duplicate memory node %q", n)
		}
		seen[n] = struct{}{}
	}
	if c.Dial == nil {
		return errors.New("repmem: Dial is required")
	}
	if c.MemSize <= 0 {
		return errors.New("repmem: MemSize must be positive")
	}
	if c.DirectSize < 0 {
		return errors.New("repmem: DirectSize must be non-negative")
	}
	if (c.ECData == 0) != (c.ECParity == 0) {
		return errors.New("repmem: ECData and ECParity must be set together")
	}
	if c.ECData > 0 {
		if c.ECData+c.ECParity != len(c.MemoryNodes) {
			return fmt.Errorf("repmem: ECData+ECParity = %d must equal memory node count %d",
				c.ECData+c.ECParity, len(c.MemoryNodes))
		}
		if c.ECBlockSize <= 0 || c.ECBlockSize%c.ECData != 0 {
			return fmt.Errorf("repmem: ECBlockSize %d must be a positive multiple of ECData %d", c.ECBlockSize, c.ECData)
		}
		if c.MemSize%c.ECBlockSize != 0 {
			return fmt.Errorf("repmem: MemSize %d must be a multiple of ECBlockSize %d", c.MemSize, c.ECBlockSize)
		}
	}
	return nil
}

// Layout returns the physical memory-node layout implied by the config.
func (c Config) Layout() memnode.Layout {
	cfg := c.withDefaults()
	main := cfg.MemSize
	ibs := cfg.IntegrityBlockSize
	if cfg.ECData > 0 {
		main = cfg.MemSize / cfg.ECData
		if ibs > 0 {
			// Per node, the unit of verification is one chunk per EC block.
			ibs = cfg.ECBlockSize / cfg.ECData
		}
	}
	return memnode.Layout{
		WALSlotSize:        cfg.WALSlotSize,
		WALSlots:           cfg.WALSlots,
		DirectSize:         cfg.DirectSize,
		MainSize:           main,
		IntegrityBlockSize: ibs,
	}
}

// Stats are cumulative operation counters, exposed for the benchmark
// harness.
type Stats struct {
	Writes        uint64 // logged write requests committed
	DirectWrites  uint64 // direct-zone writes committed
	Applies       uint64 // WAL entries applied to materialized memory
	Reads         uint64 // main-space read requests served
	RemoteReads   uint64 // RDMA READ operations issued for main-space reads
	DecodedReads  uint64 // main-space reads requiring erasure decoding
	NodeFailures  uint64 // memory node failure detections
	NodeRecovered uint64 // memory node recoveries completed
	NodeTimeouts  uint64 // per-operation deadline expiries observed
	NodeSuspected uint64 // live → suspect transitions (gray-failure detections)
	NodeDegraded  uint64 // live → degraded transitions (sustained-slowness detections)
	// StragglerSuspects counts trips of the EWMA straggler check; since the
	// WAN-degradation work these route nodes into the degraded state rather
	// than suspicion, so this is a subset of NodeDegraded.
	StragglerSuspects uint64
	// ReadRepairs counts read operations that triggered an inline block
	// repair (a subset of BlocksRepaired is attributable to them).
	ReadRepairs  uint64
	Redials      uint64 // successful reconnections to failed nodes
	RedialErrors uint64 // failed reconnection attempts (circuit-breaker refusals excluded)

	// MembershipPublishErrors counts failed per-node membership-record
	// writes: publishMembership is best-effort, so a wedged admin region
	// would otherwise be invisible until a failover goes wrong.
	MembershipPublishErrors uint64

	// Integrity counters (checksummed main memory + scrubber).
	CorruptionsDetected uint64 // replica blocks/chunks that failed their CRC or diverged
	BlocksRepaired      uint64 // replica blocks/chunks rewritten from a verified copy
	ScrubbedBlocks      uint64 // blocks/ranges examined by the scrubber
	ScrubPasses         uint64 // completed full scrub sweeps
	ScrubPassUs         uint64 // smoothed (EWMA) full-sweep duration in microseconds

	// Pipeline counters (per-node worker queues + transport connections).
	Enqueued         uint64 // write ops handed to per-node workers
	QueueWaitUs      uint64 // cumulative µs ops spent queued before dispatch
	MaxQueueDepth    uint64 // high-water mark of ops queued across workers
	TransportOps     uint64 // ops submitted on currently live connections
	TransportFlushes uint64 // doorbell flushes on currently live connections
	MaxInFlight      uint64 // max ops in flight on any single live connection
}

// Memory is the coordinator-side replicated memory handle. It is safe for
// concurrent use. Create with New, then call Recover exactly once before
// serving (it replays the write-ahead log left by a previous coordinator).
type Memory struct {
	cfg    Config
	layout memnode.Layout
	geo    wal.Geometry
	code   *erasure.Code // nil when EC disabled
	chunk  int           // EC chunk size C; 0 when disabled

	// nodes holds the member names by group index. The slice header and
	// length are immutable; ReplaceNode rewrites single elements under
	// nameMu, so element reads go through nodeName. Index-only uses
	// (len, range-over-index) need no lock.
	nodes     []string
	nameMu    sync.RWMutex
	conns     []atomic.Pointer[connBox]
	dialMu    []sync.Mutex // per-node: serializes dial-and-store in conn
	state     []atomic.Int32
	health    []nodeHealth
	redialers []*redialer

	// epoch is the config epoch this member list is authoritative for; it
	// starts at cfg.Epoch and is bumped by in-place replacement cutovers.
	epoch atomic.Uint32

	// shadows holds the per-index mirror targets during an in-place node
	// replacement: while shadows[i] is set, every write enqueued for node i
	// is duplicated to the shadow, and completions wait for both.
	shadows []atomic.Pointer[shadowNode]

	// reconfigMu serializes structural node-set changes (ReplaceNode,
	// Restripe cutover) with background node recovery, which copies state
	// into the same indexes.
	reconfigMu sync.Mutex

	// transferring is set while a reconfiguration bulk state transfer is
	// running. The relative straggler check is suspended for its duration:
	// a sweep saturating the fabric skews every node's latency EWMA, and a
	// spurious suspicion can cost the read path its EC quorum mid-transfer.
	// Timeout-based failure detection stays active throughout.
	transferring atomic.Bool

	// gate is the reconfiguration write gate: every mutating client path
	// holds the read side for its duration; a restripe cutover takes the
	// write side (plus an apply drain) to get a moment with no write in
	// flight anywhere.
	gate sync.RWMutex

	// dirtyMain and dirtyDirect, when non-nil, collect the ranges mutated by
	// the write paths so a restripe state transfer can re-copy what changed
	// under it (see dirtyTracker).
	dirtyMain   atomic.Pointer[dirtyTracker]
	dirtyDirect atomic.Pointer[dirtyTracker]

	locks       *lockTable // main space
	directLocks *lockTable // direct space

	integ *integrity // checksummed main memory; nil when disabled

	seqMu     sync.Mutex
	seqCond   *sync.Cond
	nextIndex uint64
	watermark uint64          // every index <= watermark has been applied
	applied   map[uint64]bool // applied indexes above the watermark

	applySem chan struct{}
	applyWG  sync.WaitGroup

	workers    []*nodeWorker
	workerWG   sync.WaitGroup
	queueDepth metrics.Depth
	slotPool   sync.Pool
	ecPool     sync.Pool // *ecScratch, EC apply/reconstruct scratch
	chunkPool  sync.Pool // *[]byte of chunk size, verified-read buffers

	member membership

	// lastExclusion is the wall time (UnixNano) a node last left the
	// waited-on write set (live→suspect or →dead). Acknowledgement paths
	// that feed lease-based backup readers hold acks until this is at least
	// a lease window old, so a backup's ≤W-stale view of membership can
	// never make it read an excluded node for an already-acked write.
	lastExclusion atomic.Int64

	readRR atomic.Uint64

	closed atomic.Bool
	fenced atomic.Bool
	// reconfigured marks a close caused by a committed reconfiguration
	// cutover (checkOpen then reports ErrReconfigured, telling the owner to
	// rebuild against the new configuration rather than stand down).
	reconfigured atomic.Bool

	recoveredOnce atomic.Bool

	stats struct {
		writes, directWrites, applies    atomic.Uint64
		reads, remoteReads, decodedReads atomic.Uint64
		nodeFailures, nodeRecovered      atomic.Uint64
		nodeTimeouts, nodeSuspected      atomic.Uint64
		nodeDegraded                     atomic.Uint64
		stragglerSuspects, readRepairs   atomic.Uint64
		redials, redialErrors            atomic.Uint64
		enqueued, queueWaitUs            atomic.Uint64
		corruptions, repairs             atomic.Uint64
		scrubbed, scrubPasses            atomic.Uint64
		membershipPublishErrors          atomic.Uint64
	}
	scrubPassTime metrics.EWMA // full-sweep duration, µs
}

// nodeHealth tracks one node's gray-failure signals.
type nodeHealth struct {
	ewma           metrics.EWMA // write latency, µs
	consecTimeouts atomic.Int32
	probeFails     atomic.Int32  // consecutive failed suspect probes
	fastProbes     atomic.Int32  // consecutive sub-floor probes while degraded
	corruptBlocks  atomic.Uint64 // corrupt blocks detected since last rebuild
}

// connBox wraps a connection so a nil pointer distinguishes "never dialed".
type connBox struct{ v rdma.Verbs }

// New validates the config and dials the memory nodes. Nodes that cannot be
// dialed start in the dead state; New succeeds as long as a majority is
// reachable.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	m := &Memory{
		cfg:         c,
		layout:      c.Layout(),
		nodes:       append([]string(nil), c.MemoryNodes...),
		conns:       make([]atomic.Pointer[connBox], len(c.MemoryNodes)),
		dialMu:      make([]sync.Mutex, len(c.MemoryNodes)),
		state:       make([]atomic.Int32, len(c.MemoryNodes)),
		locks:       newLockTable(c.LockStripes),
		directLocks: newLockTable(c.LockStripes),
		applied:     make(map[uint64]bool),
		applySem:    make(chan struct{}, c.ApplyWorkers),
		nextIndex:   1,
	}
	m.seqCond = sync.NewCond(&m.seqMu)
	m.epoch.Store(c.Epoch)
	m.shadows = make([]atomic.Pointer[shadowNode], len(c.MemoryNodes))
	m.health = make([]nodeHealth, len(c.MemoryNodes))
	m.redialers = make([]*redialer, len(c.MemoryNodes))
	for i, node := range c.MemoryNodes {
		m.redialers[i] = newRedialer(node, c.Dial, c.RedialBackoffMin, c.RedialBackoffMax, int64(i)+1)
	}
	m.geo = m.layout.WALGeometry()
	m.slotPool.New = func() any {
		b := make([]byte, m.geo.SlotSize)
		return &b
	}
	if c.ECData > 0 {
		code, err := erasure.New(c.ECData, c.ECParity)
		if err != nil {
			return nil, err
		}
		m.code = code
		m.chunk = c.ECBlockSize / c.ECData
		m.chunkPool.New = func() any {
			b := make([]byte, m.chunk)
			return &b
		}
	}
	if c.IntegrityBlockSize > 0 {
		m.integ = newIntegrity(m)
	}
	m.startWorkers()

	for i, node := range m.nodes {
		conn, err := c.Dial(node)
		if err != nil {
			m.state[i].Store(nodeDead)
			continue
		}
		m.conns[i].Store(&connBox{v: conn})
	}

	conns := make([]rdma.Verbs, len(m.nodes))
	for i := range m.nodes {
		if b := m.conns[i].Load(); b != nil {
			conns[i] = b.v
		}
	}

	// Takeover hygiene, part 0: the configuration plane. A node carrying a
	// committed config epoch newer than ours means our member list is
	// obsolete — refuse to serve from it (the caller re-discovers the
	// descriptor). A node carrying a retired tombstone was removed from the
	// group in some epoch; a current config never lists one, so seeing it
	// also means we are stale.
	for i, cc := range conns {
		if cc == nil {
			continue
		}
		e, _, err := readEpochWord(cc)
		if err != nil {
			m.nodeFailed(i, err)
			conns[i] = nil
			continue
		}
		if e > c.Epoch {
			m.Close()
			return nil, fmt.Errorf("%w: node %s at epoch %d, config built for %d",
				ErrStaleConfig, m.nodes[i], e, c.Epoch)
		}
		if re, err := readRetired(cc); err == nil && re != 0 {
			m.Close()
			return nil, fmt.Errorf("%w: node %s retired at epoch %d",
				ErrStaleConfig, m.nodes[i], re)
		}
	}

	// Takeover hygiene, part 1: consult the previous coordinator's
	// membership record. A node absent from the most recent published bitmap
	// missed updates while it was down — even if its memory is intact, it
	// must be rebuilt, not read. Records are only meaningful for our own
	// epoch: bit positions index a member list, and ours only describes
	// epoch cfg.Epoch (readMembershipAt ignores older-epoch words; newer
	// ones were caught above).
	if t, version, bitmap, ok := readMembershipAt(conns, c.Epoch); ok {
		for i := range m.nodes {
			if m.state[i].Load() == nodeLive && bitmap&(1<<uint(i)) == 0 {
				m.state[i].Store(nodeDead)
				m.stats.nodeFailures.Add(1)
			}
		}
		// A rebuilt Memory of the same term (reconfiguration, not election)
		// must continue the record's version sequence — restarting at 1
		// would publish records that readers order below the existing one.
		if t == c.Term {
			m.member.version = version
		}
	}

	// Takeover hygiene, part 2: a reachable node whose "populated" marker is clear
	// holds no trustworthy state — it is a fresh machine, a rebooted one
	// (volatile DRAM gone), or a node whose recovery copy was interrupted
	// by the previous coordinator's death. Such nodes must be rebuilt, not
	// read. A group where no reachable node is populated is a fresh
	// deployment: mark them all populated and start empty.
	populated := make([]bool, len(m.nodes))
	anyPopulated := false
	for i := range m.nodes {
		if m.state[i].Load() != nodeLive {
			continue
		}
		conn := m.conns[i].Load().v
		p, err := readPopulated(conn)
		if err != nil {
			m.nodeFailed(i, err)
			continue
		}
		populated[i] = p
		if p {
			anyPopulated = true
		}
	}
	reachable := 0
	for i := range m.nodes {
		if m.state[i].Load() != nodeLive {
			continue
		}
		if !anyPopulated {
			if err := writePopulated(m.conns[i].Load().v, memnode.MarkerPopulated); err != nil {
				m.nodeFailed(i, err)
				continue
			}
		} else if !populated[i] {
			// Stale/empty node among a populated group: rebuild it.
			m.state[i].Store(nodeDead)
			m.stats.nodeFailures.Add(1)
			continue
		}
		reachable++
	}
	if reachable < m.Majority() {
		m.Close()
		return nil, fmt.Errorf("%w: reached %d trustworthy nodes of %d", ErrNoQuorum, reachable, len(m.nodes))
	}
	// On a fresh deployment the materialized memory is all zeroes but the
	// (also zeroed) strip does not equal the CRC of a zero block, so the
	// strip must be initialized before the first verified read. On a
	// populated group Recover loads the strips instead.
	if m.integ != nil && !anyPopulated {
		m.integ.bootstrapFresh()
	}
	// Anchor the configuration plane: make sure every reachable node carries
	// our epoch's descriptor and epoch word (repairing nodes that missed a
	// cutover or were freshly bootstrapped), then publish this coordinator's
	// initial membership view under its own term.
	m.publishConfigPlane()
	m.publishMembership()
	return m, nil
}

// readEpochWord reads a node's config-epoch word.
func readEpochWord(c rdma.Verbs) (epoch uint32, term uint16, err error) {
	var buf [8]byte
	if err := c.Read(memnode.AdminRegionID, memnode.AdminEpochOffset, buf[:]); err != nil {
		return 0, 0, err
	}
	e, t := memnode.UnpackServing(binary.LittleEndian.Uint64(buf[:]))
	return e, t, nil
}

// readRetired reads a node's retired tombstone (0 = active member).
func readRetired(c rdma.Verbs) (uint32, error) {
	var buf [8]byte
	if err := c.Read(memnode.AdminRegionID, memnode.AdminRetiredOffset, buf[:]); err != nil {
		return 0, err
	}
	return uint32(binary.LittleEndian.Uint64(buf[:])), nil
}

// ConfigRecord renders this memory's current configuration as a descriptor
// record (member list in group-index order, EC geometry, epoch, term).
func (m *Memory) ConfigRecord() memnode.ConfigRecord {
	m.nameMu.RLock()
	members := append([]string(nil), m.nodes...)
	m.nameMu.RUnlock()
	return memnode.ConfigRecord{
		Epoch:       m.epoch.Load(),
		Term:        m.cfg.Term,
		ECData:      m.cfg.ECData,
		ECParity:    m.cfg.ECParity,
		ECBlockSize: m.cfg.ECBlockSize,
		Members:     members,
	}
}

// publishConfigPlane writes this configuration's descriptor and advances the
// epoch word on every writable node that is behind. CAS (expect = observed)
// guards the epoch word so a stale coordinator racing a newer one cannot
// regress it; the descriptor write is guarded by the epoch-word read (a
// node at a newer epoch is never touched — New refuses such configs before
// serving anyway).
func (m *Memory) publishConfigPlane() {
	rec := m.ConfigRecord()
	image, err := memnode.EncodeConfig(rec)
	if err != nil {
		return
	}
	want := memnode.PackServing(rec.Epoch, rec.Term)
	for _, i := range m.writableNodes() {
		c, err := m.conn(i)
		if err != nil {
			continue
		}
		e, t, err := readEpochWord(c)
		if err != nil || e > rec.Epoch || (e == rec.Epoch && t > rec.Term) {
			continue
		}
		if err := c.Write(memnode.AdminRegionID, memnode.AdminConfigOffset, image); err != nil {
			continue
		}
		old := memnode.PackServing(e, t)
		if old != want {
			// Best effort; a lost race means a newer epoch or term won.
			_, _ = c.CompareAndSwap(memnode.AdminRegionID, memnode.AdminEpochOffset, old, want)
		}
	}
}

// readPopulated reads a node's populated marker from its admin region.
func readPopulated(c rdma.Verbs) (bool, error) {
	var buf [8]byte
	if err := c.Read(memnode.AdminRegionID, memnode.AdminPopulatedOffset, buf[:]); err != nil {
		return false, err
	}
	return buf[0] == memnode.MarkerPopulated, nil
}

// writePopulated sets a node's populated marker.
func writePopulated(c rdma.Verbs, v byte) error {
	var buf [8]byte
	buf[0] = v
	return c.Write(memnode.AdminRegionID, memnode.AdminPopulatedOffset, buf[:])
}

// SinceExclusion returns how long ago a node last left the waited-on write
// set, or a very large duration if none ever has. See lastExclusion.
func (m *Memory) SinceExclusion() time.Duration {
	ns := m.lastExclusion.Load()
	if ns == 0 {
		return time.Duration(1<<63 - 1)
	}
	return time.Since(time.Unix(0, ns))
}

// Majority returns the commit quorum size (⌊n/2⌋+1 over full membership).
func (m *Memory) Majority() int { return len(m.nodes)/2 + 1 }

// Epoch returns the config epoch this memory currently serves.
func (m *Memory) Epoch() uint32 { return m.epoch.Load() }

// MemberNames returns the current member list in group-index order.
func (m *Memory) MemberNames() []string {
	m.nameMu.RLock()
	defer m.nameMu.RUnlock()
	return append([]string(nil), m.nodes...)
}

// nodeName returns member i's name (safe against concurrent replacement).
func (m *Memory) nodeName(i int) string {
	m.nameMu.RLock()
	defer m.nameMu.RUnlock()
	return m.nodes[i]
}

// setNodeName installs a new name for group index i (node replacement).
func (m *Memory) setNodeName(i int, name string) {
	m.nameMu.Lock()
	m.nodes[i] = name
	m.nameMu.Unlock()
}

// MarkExclusion stamps the exclusion clock (see lastExclusion) at the given
// time. Reconfiguration cutovers call it — on the outgoing memory when the
// cutover commits and on the incoming one at construction — so lease-based
// acknowledgement holds (kv.Config.AckHold) keep covering backup readers
// whose ≤W-stale masks still name the outgoing member set.
func (m *Memory) MarkExclusion(t time.Time) {
	m.lastExclusion.Store(t.UnixNano())
}

// MemSize returns the logical main memory size.
func (m *Memory) MemSize() int { return m.cfg.MemSize }

// DirectSize returns the direct zone size.
func (m *Memory) DirectSize() int { return m.cfg.DirectSize }

// ErasureEnabled reports whether the main space is erasure coded.
func (m *Memory) ErasureEnabled() bool { return m.code != nil }

// ECBlockSize returns the erasure coding block size, or 0 when disabled.
func (m *Memory) ECBlockSize() int {
	if m.code == nil {
		return 0
	}
	return m.cfg.ECBlockSize
}

// Stats returns a snapshot of the operation counters. Transport counters
// aggregate over currently live connections (a connection dropped after a
// node failure takes its counters with it).
func (m *Memory) Stats() Stats {
	s := Stats{
		Writes:        m.stats.writes.Load(),
		DirectWrites:  m.stats.directWrites.Load(),
		Applies:       m.stats.applies.Load(),
		Reads:         m.stats.reads.Load(),
		RemoteReads:   m.stats.remoteReads.Load(),
		DecodedReads:  m.stats.decodedReads.Load(),
		NodeFailures:  m.stats.nodeFailures.Load(),
		NodeRecovered: m.stats.nodeRecovered.Load(),
		NodeTimeouts:  m.stats.nodeTimeouts.Load(),
		NodeSuspected: m.stats.nodeSuspected.Load(),
		NodeDegraded:  m.stats.nodeDegraded.Load(),

		StragglerSuspects: m.stats.stragglerSuspects.Load(),
		ReadRepairs:       m.stats.readRepairs.Load(),

		Redials:                 m.stats.redials.Load(),
		RedialErrors:            m.stats.redialErrors.Load(),
		MembershipPublishErrors: m.stats.membershipPublishErrors.Load(),
		Enqueued:                m.stats.enqueued.Load(),
		QueueWaitUs:             m.stats.queueWaitUs.Load(),
		MaxQueueDepth:           uint64(m.queueDepth.Max()),

		CorruptionsDetected: m.stats.corruptions.Load(),
		BlocksRepaired:      m.stats.repairs.Load(),
		ScrubbedBlocks:      m.stats.scrubbed.Load(),
		ScrubPasses:         m.stats.scrubPasses.Load(),
		ScrubPassUs:         uint64(m.scrubPassTime.Value()),
	}
	for i := range m.conns {
		b := m.conns[i].Load()
		if b == nil {
			continue
		}
		ps, ok := b.v.(rdma.PipelineStatser)
		if !ok {
			continue
		}
		p := ps.PipelineStats()
		s.TransportOps += p.Submitted
		s.TransportFlushes += p.Flushes
		if p.MaxInFlight > s.MaxInFlight {
			s.MaxInFlight = p.MaxInFlight
		}
	}
	return s
}

// getSlot takes a WAL-slot-sized buffer from the pool.
func (m *Memory) getSlot() []byte { return *m.slotPool.Get().(*[]byte) }

// putSlot recycles a slot buffer once no write referencing it is in flight.
func (m *Memory) putSlot(b []byte) { m.slotPool.Put(&b) }

// conn returns node i's connection, redialing through the node's
// circuit-breaking redialer when it has been dropped. A node that was down
// at connect time joins later through exactly this path.
func (m *Memory) conn(i int) (rdma.Verbs, error) {
	if b := m.conns[i].Load(); b != nil {
		return b.v, nil
	}
	// Double-checked per-node lock: concurrent callers must not both dial,
	// because the loser's exclusive-region Acquire would fence the winner's
	// fresh connection (dialing at all revokes the prior holder).
	m.dialMu[i].Lock()
	defer m.dialMu[i].Unlock()
	if b := m.conns[i].Load(); b != nil {
		return b.v, nil
	}
	v, err := m.redialers[i].dialNow()
	if err != nil {
		if !errors.Is(err, ErrCircuitOpen) {
			m.stats.redialErrors.Add(1)
		}
		return nil, err
	}
	m.stats.redials.Add(1)
	m.conns[i].Store(&connBox{v: v})
	return v, nil
}

// emit records a control-plane event against the named node, tagged with
// this coordinator's term. Safe with no ring configured.
func (m *Memory) emit(typ, node, detail string) {
	m.cfg.Events.Emit(typ, node, m.cfg.Term, detail)
}

// QueueDepth reports the per-node worker queues' current depth and
// high-water mark, for the status surface.
func (m *Memory) QueueDepth() (current, max int64) {
	return m.queueDepth.Current(), m.queueDepth.Max()
}

// nodeFailed records an operation failure against node i.
func (m *Memory) nodeFailed(i int, err error) {
	if errors.Is(err, rdma.ErrFenced) {
		m.fence()
		return
	}
	m.markNodeDead(i)
}

// markNodeDead declares node i dead and drops its connection so recovery
// re-dials (re-acquiring the exclusive region, which fences nothing new
// since we are the same owner logic).
func (m *Memory) markNodeDead(i int) {
	if m.state[i].Load() != nodeDead {
		m.state[i].Store(nodeDead)
		m.lastExclusion.Store(time.Now().UnixNano())
		m.stats.nodeFailures.Add(1)
		m.emit("node.dead", m.nodeName(i), "")
		// Record the shrunken view for any successor coordinator, off the
		// caller's hot path.
		go m.publishMembership()
	}
	if b := m.conns[i].Swap(nil); b != nil {
		b.v.Close()
	}
}

// suspectNode marks a live node gray: quorum writes stop waiting on it,
// reads avoid it, and it keeps receiving writes best-effort until it either
// proves responsive (and is repaired through the recovery path) or is
// declared dead. reason names the signal that tripped the suspicion
// ("timeouts", "straggler", "corruption") for the event log; it returns
// whether this call performed the live→suspect transition.
func (m *Memory) suspectNode(i int, reason string) bool {
	if m.state[i].CompareAndSwap(nodeLive, nodeSuspect) {
		m.lastExclusion.Store(time.Now().UnixNano())
		m.stats.nodeSuspected.Add(1)
		m.emit("node.suspect", m.nodeName(i), reason)
		// The node may miss best-effort writes from here on; record its
		// absence for any successor coordinator, off the caller's hot path.
		go m.publishMembership()
		return true
	}
	return false
}

// degradeNode marks a live node degraded: persistently slow but answering.
// Like a suspect it leaves the read set, the quorum-wait fast path, and the
// published membership (it may miss best-effort writes, so it must be rebuilt
// before serving reads again) — but unlike a suspect the recovery manager
// does not try to repair it while it stays slow. Repair would succeed, reset
// the latency EWMA, and re-arm the straggler check for another round of
// suspicion: the live→suspect→repair→re-suspect oscillation this state
// exists to end. The node instead sits out, health-reported and probed, until
// its probes come back under the straggler floor for DegradeExitProbes
// consecutive rounds.
func (m *Memory) degradeNode(i int, reason string) bool {
	if m.state[i].CompareAndSwap(nodeLive, nodeDegraded) {
		m.lastExclusion.Store(time.Now().UnixNano())
		m.stats.nodeDegraded.Add(1)
		m.health[i].fastProbes.Store(0)
		m.emit("node.degraded", m.nodeName(i), reason)
		// The node may miss best-effort writes from here on; record its
		// absence for any successor coordinator, off the caller's hot path.
		go m.publishMembership()
		return true
	}
	return false
}

// noteCorruption records n corrupt-block observations against node i and
// feeds the live→suspect state machine: a node silently flipping bits is as
// untrustworthy as a hung one, and only a full rebuild (which also resets
// the count) clears the suspicion.
func (m *Memory) noteCorruption(i, n int) {
	if n <= 0 {
		return
	}
	m.stats.corruptions.Add(uint64(n))
	total := m.health[i].corruptBlocks.Add(uint64(n))
	if m.cfg.CorruptSuspectAfter > 0 && total >= uint64(m.cfg.CorruptSuspectAfter) {
		m.suspectNode(i, "corruption")
	}
}

// fencedByTakeover distinguishes the two causes of an ErrFenced observed on
// node i's current connection. A newer coordinator acquiring the exclusive
// region leaves the node's state intact (populated marker set) and, in
// cluster use, has stamped a higher election term into the node's heartbeat
// word; the node itself rebooting or being reset clears the populated
// marker when it bumps the epoch (memnode.Reset). The admin region is
// shared (epoch 0), so it stays readable on the fenced connection. When the
// admin region cannot be read at all the call reports a takeover — the
// conservative, self-fencing answer.
func (m *Memory) fencedByTakeover(c rdma.Verbs) bool {
	var buf [8]byte
	if err := c.Read(memnode.AdminRegionID, memnode.AdminWordOffset, buf[:]); err == nil {
		w := binary.LittleEndian.Uint64(buf[:])
		if term := uint16(w >> 48); term > m.cfg.Term {
			return true
		}
	}
	populated, err := readPopulated(c)
	return err != nil || populated
}

// noteConnError is noteNodeError for callers that know which connection the
// failed op used.
//
// A completion from a connection that is no longer node i's current one is
// dropped entirely: the failure was already accounted for when that
// connection was torn down, and attributing it again would kill the node's
// fresh connection (or, for ErrFenced raced by our own redial, fence the
// whole memory over a takeover that never happened).
//
// ErrFenced on the current connection is further disambiguated: the node
// itself rebooting bumps the region epoch just like a takeover does, but
// leaves its populated marker cleared — that is an ordinary node failure
// for the recovery manager, not a reason to stand down as coordinator.
func (m *Memory) noteConnError(i int, c rdma.Verbs, err error) {
	if c != nil {
		if b := m.conns[i].Load(); b == nil || b.v != c {
			return
		}
		if errors.Is(err, rdma.ErrFenced) && !m.fencedByTakeover(c) {
			m.markNodeDead(i)
			return
		}
	}
	m.noteNodeError(i, err)
}

// noteNodeError classifies a failed operation against node i. Deadline
// expiries feed the gray-failure accounting — a hung peer is suspected
// after SuspectAfter consecutive timeouts and declared dead after
// DeadAfter — while every other error means the transport itself failed
// and the node is declared dead immediately.
func (m *Memory) noteNodeError(i int, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, rdma.ErrDeadline) {
		m.stats.nodeTimeouts.Add(1)
		n := int(m.health[i].consecTimeouts.Add(1))
		if n >= m.cfg.DeadAfter {
			m.nodeFailed(i, err)
		} else if n >= m.cfg.SuspectAfter {
			m.suspectNode(i, "timeouts")
		}
		return
	}
	m.nodeFailed(i, err)
}

// noteOpResult records a completed write against node i: successes feed the
// EWMA latency and clear the timeout streak, failures go through
// noteNodeError.
func (m *Memory) noteOpResult(i int, c rdma.Verbs, lat time.Duration, err error) {
	if err == nil {
		m.health[i].ewma.Observe(float64(lat.Microseconds()))
		m.health[i].consecTimeouts.Store(0)
		return
	}
	m.noteConnError(i, c, err)
}

// fence marks the memory as fenced and fires the callback once.
func (m *Memory) fence() {
	if m.fenced.CompareAndSwap(false, true) {
		m.emit("repmem.fenced", "", "newer coordinator took over")
		m.closed.Store(true)
		m.seqMu.Lock()
		m.seqCond.Broadcast()
		m.seqMu.Unlock()
		if m.cfg.OnFenced != nil {
			go m.cfg.OnFenced()
		}
	}
}

// checkOpen returns an error when the memory is closed or fenced.
func (m *Memory) checkOpen() error {
	if m.fenced.Load() {
		return ErrFenced
	}
	if m.reconfigured.Load() {
		return ErrReconfigured
	}
	if m.closed.Load() {
		return ErrClosed
	}
	return nil
}

// liveNodes returns indexes of nodes in the given state.
func (m *Memory) nodesInState(s int32) []int {
	out := make([]int, 0, len(m.nodes))
	for i := range m.nodes {
		if m.state[i].Load() == s {
			out = append(out, i)
		}
	}
	return out
}

// writableNodes returns nodes that should receive writes (live + syncing).
func (m *Memory) writableNodes() []int {
	out := make([]int, 0, len(m.nodes))
	for i := range m.nodes {
		if s := m.state[i].Load(); s == nodeLive || s == nodeSyncing {
			out = append(out, i)
		}
	}
	return out
}

// writeTargets partitions a write fan-out: wait lists the nodes whose
// completions the caller counts (live + syncing); bestEffort lists suspect
// and degraded nodes, which receive the write without anyone waiting on
// them. When the wait set alone cannot reach need, best-effort nodes are
// promoted back into it: a majority ack must always mean a true majority of
// the full membership, never a majority of the healthy subset.
func (m *Memory) writeTargets(need int) (wait, bestEffort []int) {
	return m.writeTargetsInto(need, nil, nil)
}

// writeTargetsInto is writeTargets appending into caller-provided slices
// (reset to length zero), so hot paths with pre-sized scratch avoid the
// per-call slice allocations.
func (m *Memory) writeTargetsInto(need int, wait, bestEffort []int) ([]int, []int) {
	wait, bestEffort = wait[:0], bestEffort[:0]
	for i := range m.nodes {
		switch m.state[i].Load() {
		case nodeLive, nodeSyncing:
			wait = append(wait, i)
		case nodeSuspect, nodeDegraded:
			bestEffort = append(bestEffort, i)
		}
	}
	if len(wait) < need && len(bestEffort) > 0 {
		wait = append(wait, bestEffort...)
		bestEffort = bestEffort[:0]
	}
	return wait, bestEffort
}

// NodeHealth is one memory node's gray-failure view, exported for the
// cluster health surface and the chaos tests.
type NodeHealth struct {
	Node           string
	State          string        // "live", "suspect", "degraded", "syncing", or "dead"
	EWMALatencyUs  float64       // smoothed write latency in microseconds
	ConsecTimeouts int           // current consecutive deadline-expiry streak
	RedialFailures int           // consecutive failed reconnection attempts
	RedialBackoff  time.Duration // time until the next redial attempt; 0 when the circuit is closed
	Corruptions    uint64        // corrupt blocks detected on this node since its last rebuild
}

// Health snapshots every node's liveness state, latency EWMA, timeout
// streak, and redial circuit-breaker state.
func (m *Memory) Health() []NodeHealth {
	out := make([]NodeHealth, len(m.nodes))
	for i := range m.nodes {
		failures, openFor := m.redialers[i].snapshot()
		out[i] = NodeHealth{
			Node:           m.nodeName(i),
			State:          stateName(m.state[i].Load()),
			EWMALatencyUs:  m.health[i].ewma.Value(),
			ConsecTimeouts: int(m.health[i].consecTimeouts.Load()),
			RedialFailures: failures,
			RedialBackoff:  openFor,
			Corruptions:    m.health[i].corruptBlocks.Load(),
		}
	}
	return out
}

func stateName(s int32) string {
	switch s {
	case nodeLive:
		return "live"
	case nodeDead:
		return "dead"
	case nodeSyncing:
		return "syncing"
	case nodeSuspect:
		return "suspect"
	case nodeDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// Close tears down all connections and stops background work. It does not
// wait for in-flight applies on other goroutines beyond the apply queue.
func (m *Memory) Close() {
	if m.closed.Swap(true) {
		return
	}
	m.seqMu.Lock()
	m.seqCond.Broadcast()
	m.seqMu.Unlock()
	m.applyWG.Wait()
	// Workers stop after the appliers have drained (they feed the workers)
	// and before the connections close (queued requests still need them).
	m.stopWorkers()
	for i := range m.conns {
		if b := m.conns[i].Swap(nil); b != nil {
			b.v.Close()
		}
	}
}

// physMain maps a main-space address to the physical region offset on node
// i, valid only for the full-replication layout (EC uses chunk math).
func (m *Memory) physMain(addr uint64) uint64 { return m.layout.MainBase() + addr }

// physDirect maps a direct-space address to its physical region offset.
func (m *Memory) physDirect(addr uint64) uint64 { return m.layout.DirectBase() + addr }

// checkMainRange validates a main-space access.
func (m *Memory) checkMainRange(addr uint64, n int) error {
	if n < 0 || addr > uint64(m.cfg.MemSize) || addr+uint64(n) > uint64(m.cfg.MemSize) {
		return fmt.Errorf("%w: main [%d,%d) of %d", ErrOutOfRange, addr, addr+uint64(n), m.cfg.MemSize)
	}
	return nil
}

// checkDirectRange validates a direct-space access.
func (m *Memory) checkDirectRange(addr uint64, n int) error {
	if n < 0 || addr > uint64(m.cfg.DirectSize) || addr+uint64(n) > uint64(m.cfg.DirectSize) {
		return fmt.Errorf("%w: direct [%d,%d) of %d", ErrOutOfRange, addr, addr+uint64(n), m.cfg.DirectSize)
	}
	return nil
}
