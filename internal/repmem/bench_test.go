package repmem

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
)

// Steady-state EC hot-path benchmarks: whole-block unlogged applies (the
// key-value store's block apply path) and main-space reads, with allocs
// reported — the acceptance bar for this layer is 0 allocs/op once the
// pools are warm.

func benchECMemory(b *testing.B, fm int) (*Memory, int) {
	blockSize := (fm + 1) * 512
	cfg := Config{
		MemSize:     blockSize * 256,
		DirectSize:  8 << 10,
		WALSlots:    64,
		WALSlotSize: 4096,
		ECData:      fm + 1,
		ECParity:    fm,
		ECBlockSize: blockSize,
	}
	nw := rdma.NewNetwork(nil)
	names := make([]string, 2*fm+1)
	layout := cfg.Layout()
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		node, err := memnode.New(names[i], layout)
		if err != nil {
			b.Fatal(err)
		}
		nw.AddNode(node)
	}
	cfg.MemoryNodes = names
	cfg.Dial = func(node string) (rdma.Verbs, error) {
		return nw.Dial("c", node, rdma.DialOpts{Exclusive: []rdma.RegionID{memnode.ReplRegionID}})
	}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Recover(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	return m, blockSize
}

// BenchmarkECApply measures whole-EC-block unlogged writes (encode + fan-out
// to every node + integrity strip update).
func BenchmarkECApply(b *testing.B) {
	for _, fm := range []int{1, 2} {
		b.Run(fmt.Sprintf("F%d", fm), func(b *testing.B) {
			m, blockSize := benchECMemory(b, fm)
			data := make([]byte, blockSize)
			rand.New(rand.NewSource(1)).Read(data)
			blocks := uint64(m.MemSize() / blockSize)
			b.SetBytes(int64(blockSize))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := (uint64(i) % blocks) * uint64(blockSize)
				if err := m.UnloggedWrite(addr, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkECRead measures steady-state verified reads: Block reconstructs a
// whole EC block from its data chunks; Chunk reads a range inside a single
// chunk through the owner fast path.
func BenchmarkECRead(b *testing.B) {
	for _, fm := range []int{1, 2} {
		for _, mode := range []string{"Block", "Chunk"} {
			b.Run(fmt.Sprintf("F%d/%s", fm, mode), func(b *testing.B) {
				m, blockSize := benchECMemory(b, fm)
				data := make([]byte, blockSize)
				rand.New(rand.NewSource(2)).Read(data)
				blocks := uint64(m.MemSize() / blockSize)
				for a := uint64(0); a < blocks; a++ {
					if err := m.UnloggedWrite(a*uint64(blockSize), data); err != nil {
						b.Fatal(err)
					}
				}
				size := blockSize
				if mode == "Chunk" {
					size = blockSize / (m.code.K() + 1) // strictly inside chunk 0
				}
				buf := make([]byte, size)
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					addr := (uint64(i) % blocks) * uint64(blockSize)
					if err := m.Read(addr, buf); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
