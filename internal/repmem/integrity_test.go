package repmem

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"github.com/repro/sift/internal/memnode"
)

// corruptByte flips one byte of a node's replicated region directly,
// modelling silent bit rot the transport cannot see.
func (e *testEnv) corruptByte(t *testing.T, node string, offset uint64) {
	t.Helper()
	r := e.nw.Node(node).Region(memnode.ReplRegionID)
	if err := r.Corrupt(offset, 0x5a); err != nil {
		t.Fatal(err)
	}
}

// replSnapshot returns node i's replicated region from the direct zone
// onward (direct + main + checksum strip). The WAL area is excluded: slots
// are pooled and reconciled, not scrubbed.
func (e *testEnv) replSnapshot(i int, l memnode.Layout) []byte {
	full := e.nw.Node(e.names[i]).Region(memnode.ReplRegionID).Snapshot()
	return full[l.DirectBase():]
}

func TestPlainReadRepair(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	m := newMemory(t, baseConfig(e, "c"))
	layout := m.cfg.Layout()

	data := make([]byte, 4096)
	rand.New(rand.NewSource(7)).Read(data)
	if err := m.UnloggedWrite(0, data); err != nil {
		t.Fatal(err)
	}

	// Flip a byte of block 0 on one replica.
	e.corruptByte(t, e.names[1], layout.MainBase()+100)

	// Every read must return correct bytes no matter which replica the
	// round-robin lands on; once it lands on the corrupt one, the block is
	// detected and repaired in place.
	buf := make([]byte, len(data))
	for i := 0; i < 2*len(e.names); i++ {
		if err := m.Read(0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("read %d returned corrupt data", i)
		}
	}
	st := m.Stats()
	if st.CorruptionsDetected == 0 || st.BlocksRepaired == 0 {
		t.Fatalf("corruptions=%d repaired=%d, want both > 0", st.CorruptionsDetected, st.BlocksRepaired)
	}
	// The bad replica was rewritten in place.
	for i := range e.names {
		if got := e.replSnapshot(i, layout); !bytes.Equal(got, e.replSnapshot(0, layout)) {
			t.Fatalf("node %d diverges after read-repair", i)
		}
	}
}

// TestECFastPathCorruptChunkReconstructs covers the readEC fast path: the
// single live chunk owner returns corrupt bytes and the read must still
// come back correct, via reconstruction from the remaining chunks.
func TestECFastPathCorruptChunkReconstructs(t *testing.T) {
	e, cfg := newECEnv(t, 1) // 3 nodes, k=2, chunk=512, block=1024
	m := newMemory(t, cfg)
	layout := m.cfg.Layout()

	B := uint64(m.cfg.ECBlockSize)
	data := make([]byte, B)
	rand.New(rand.NewSource(11)).Read(data)
	const block = 2
	if err := m.Write(block*B, data); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)

	// Corrupt the stored chunk on node 0 — the owner of the first chunk of
	// every block, and therefore the fast-path target for this read.
	e.corruptByte(t, e.names[0], layout.MainBase()+block*uint64(m.chunk)+17)

	buf := make([]byte, 100)
	if err := m.Read(block*B, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[:100]) {
		t.Fatalf("fast-path read returned corrupt data")
	}
	st := m.Stats()
	if st.CorruptionsDetected == 0 {
		t.Fatal("corruption went undetected")
	}
	if st.BlocksRepaired == 0 {
		t.Fatal("corrupt chunk was not repaired")
	}
	// Read again: the repaired chunk must satisfy the fast path (one remote
	// read, correct bytes).
	before := m.Stats().RemoteReads
	if err := m.Read(block*B, buf); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().RemoteReads - before; got != 1 {
		t.Fatalf("post-repair fast path used %d remote reads, want 1", got)
	}
	if !bytes.Equal(buf, data[:100]) {
		t.Fatalf("post-repair read returned corrupt data")
	}
}

func TestScrubRepairsSilentCorruption(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	m := newMemory(t, baseConfig(e, "c"))
	layout := m.cfg.Layout()

	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 12<<10)
	rng.Read(data)
	if err := m.UnloggedWrite(0, data); err != nil {
		t.Fatal(err)
	}
	direct := make([]byte, 2048)
	rng.Read(direct)
	if err := m.DirectWrite(512, direct); err != nil {
		t.Fatal(err)
	}

	// Silent damage on one node: three main-memory blocks and one
	// direct-zone byte. No read touches them — only the scrubber can find
	// this. (Few enough observations to stay under CorruptSuspectAfter.)
	e.corruptByte(t, e.names[2], layout.MainBase()+10)
	e.corruptByte(t, e.names[2], layout.MainBase()+5000)
	e.corruptByte(t, e.names[2], layout.MainBase()+9000)
	e.corruptByte(t, e.names[2], layout.DirectBase()+600)

	rep, err := m.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt < 4 || rep.Repaired < 4 || rep.Unrepaired != 0 {
		t.Fatalf("scrub report %+v, want >=4 corrupt, >=4 repaired, 0 unrepaired", rep)
	}
	for i := 1; i < len(e.names); i++ {
		if !bytes.Equal(e.replSnapshot(i, layout), e.replSnapshot(0, layout)) {
			t.Fatalf("node %d diverges after scrub", i)
		}
	}
	// A second sweep over healed memory finds nothing.
	rep, err = m.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 || rep.Repaired != 0 {
		t.Fatalf("second scrub found damage: %+v", rep)
	}
	st := m.Stats()
	if st.ScrubPasses < 2 || st.ScrubbedBlocks == 0 {
		t.Fatalf("scrub stats %+v", st)
	}
}

func TestBackgroundScrubHeals(t *testing.T) {
	cfg0 := Config{MemSize: 32 << 10, DirectSize: 0, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 32 << 10
	cfg.DirectSize = 0
	m := newMemory(t, cfg)
	layout := m.cfg.Layout()

	data := make([]byte, 8<<10)
	rand.New(rand.NewSource(5)).Read(data)
	if err := m.UnloggedWrite(0, data); err != nil {
		t.Fatal(err)
	}
	e.corruptByte(t, e.names[0], layout.MainBase()+4097)

	stop := m.StartScrub(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Stats().BlocksRepaired > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background scrubber never repaired the corrupt block")
}

func TestCorruptionFeedsSuspicion(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 0, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.DirectSize = 0
	cfg.CorruptSuspectAfter = 2
	m := newMemory(t, cfg)
	layout := m.cfg.Layout()

	// Two distinct corrupt blocks on one node cross the threshold.
	e.corruptByte(t, e.names[1], layout.MainBase()+1)
	e.corruptByte(t, e.names[1], layout.MainBase()+4096+1)
	if _, err := m.ScrubOnce(); err != nil {
		t.Fatal(err)
	}

	suspects := m.SuspectMemoryNodes()
	if len(suspects) != 1 || suspects[0] != e.names[1] {
		t.Fatalf("suspects = %v, want [%s]", suspects, e.names[1])
	}
	var h NodeHealth
	for _, nh := range m.Health() {
		if nh.Node == e.names[1] {
			h = nh
		}
	}
	if h.Corruptions < 2 {
		t.Fatalf("health corruptions = %d, want >= 2", h.Corruptions)
	}
}
