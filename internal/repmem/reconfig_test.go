package repmem

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
)

// addMachine adds one more memory-node machine to a test env's network.
func addMachine(t *testing.T, e *testEnv, name string, layout memnode.Layout) {
	t.Helper()
	node, err := memnode.New(name, layout)
	if err != nil {
		t.Fatal(err)
	}
	e.nw.AddNode(node)
}

// readAdminWord reads one 8-byte admin word from a node via a throwaway
// observer connection.
func readAdminWord(t *testing.T, e *testEnv, node string, off uint64) uint64 {
	t.Helper()
	c, err := e.nw.Dial("probe-"+node, node, rdma.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var buf [8]byte
	if err := c.Read(memnode.AdminRegionID, off, buf[:]); err != nil {
		t.Fatal(err)
	}
	e2, _, _ := readEpochWord(c)
	_ = e2
	w := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
		uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
	return w
}

func TestReplaceLiveNodeUnderTraffic(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	addMachine(t, e, "m3", cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.Term = 1
	m := newMemory(t, cfg)

	// Seed data in both spaces.
	want := make([]byte, 384)
	rand.New(rand.NewSource(7)).Read(want)
	if err := m.Write(100, want); err != nil {
		t.Fatal(err)
	}
	if err := m.DirectWrite(64, []byte("direct-payload")); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)

	// Concurrent writer traffic across the replacement.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	var writerErr error
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for i := 0; !stop.Load(); i++ {
			val := []byte(fmt.Sprintf("traffic-%d", i))
			if err := m.Write(uint64(8192+rng.Intn(64)*128), val); err != nil {
				writerErr = err
				return
			}
		}
	}()

	if err := m.ReplaceNode("m1", "m3"); err != nil {
		t.Fatalf("ReplaceNode: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer during replacement: %v", writerErr)
	}

	if got := m.Epoch(); got != 2 {
		t.Fatalf("epoch after replace = %d, want 2", got)
	}
	names := m.MemberNames()
	if names[1] != "m3" {
		t.Fatalf("slot 1 = %q, want m3", names[1])
	}

	// Data survives, and the replaced group passes a full verification.
	got := make([]byte, len(want))
	if err := m.Read(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("main data mismatch after replacement")
	}
	db := make([]byte, 14)
	if err := m.DirectRead(64, db); err != nil {
		t.Fatal(err)
	}
	if string(db) != "direct-payload" {
		t.Fatalf("direct data mismatch after replacement: %q", db)
	}

	// The outgoing node is tombstoned with the epoch that removed it and
	// de-populated, so no successor can ever trust its frozen DRAM.
	if w := readAdminWord(t, e, "m1", memnode.AdminRetiredOffset); w != 2 {
		t.Fatalf("m1 retired word = %d, want 2", w)
	}
	if w := readAdminWord(t, e, "m1", memnode.AdminPopulatedOffset); w != memnode.MarkerEmpty {
		t.Fatalf("m1 populated marker = %d, want empty", w)
	}
}

func TestReplaceDeadNode(t *testing.T) {
	cfg0 := Config{MemSize: 32 << 10, DirectSize: 8 << 10, WALSlots: 32, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	addMachine(t, e, "m3", cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.MemSize, cfg.DirectSize = cfg0.MemSize, cfg0.DirectSize
	cfg.WALSlots, cfg.WALSlotSize = cfg0.WALSlots, cfg0.WALSlotSize
	cfg.Term = 1
	m := newMemory(t, cfg)

	if err := m.Write(0, []byte("survives-crash")); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)

	// m1 dies for good: machine crashed, never coming back under that name.
	e.nw.Fabric().Kill("m1")
	m.Write(128, []byte("detect")) // trigger failure detection
	awaitState(t, m, "m1", "dead")

	if err := m.ReplaceNode("m1", "m3"); err != nil {
		t.Fatalf("ReplaceNode(dead): %v", err)
	}
	if got := m.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2", got)
	}

	// The replacement was rebuilt from surviving copies; all data readable,
	// including with one of the remaining originals masked out.
	buf := make([]byte, 14)
	if err := m.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "survives-crash" {
		t.Fatalf("data after dead replacement: %q", buf)
	}
	if got := len(m.LiveMemoryNodes()); got != 3 {
		t.Fatalf("live nodes = %d, want 3", got)
	}
}

// TestReplacedGroupRefusesStaleConfig: after a replacement, a coordinator
// built with the OLD member list (e.g. a backup that missed the change) must
// refuse to serve, and discovery through any node must yield the new config.
func TestReplacedGroupRefusesStaleConfig(t *testing.T) {
	cfg0 := Config{MemSize: 16 << 10, DirectSize: 4 << 10, WALSlots: 16, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	addMachine(t, e, "m3", cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.MemSize, cfg.DirectSize = cfg0.MemSize, cfg0.DirectSize
	cfg.WALSlots, cfg.WALSlotSize = cfg0.WALSlots, cfg0.WALSlotSize
	cfg.Term = 1
	m := newMemory(t, cfg)
	if err := m.Write(0, []byte("epoch1")); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)
	if err := m.ReplaceNode("m0", "m3"); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Successor with the stale member list (still naming m0) at epoch 1.
	stale := cfg
	stale.Dial = e.dialer("cpu2")
	stale.Term = 2
	if _, err := New(stale); !errors.Is(err, ErrStaleConfig) {
		t.Fatalf("stale-config successor error = %v, want ErrStaleConfig", err)
	}

	// Discovery over any retained node finds the committed descriptor; a
	// successor built from it serves the data.
	vcfg := cfg
	vcfg.Dial = func(node string) (rdma.Verbs, error) {
		return e.nw.Dial("probe", node, rdma.DialOpts{})
	}
	v, err := NewView(vcfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := v.ReadConfig()
	v.Close()
	if !ok || rec.Epoch != 2 {
		t.Fatalf("discovered config = %+v ok=%v, want epoch 2", rec, ok)
	}
	succ := cfg
	succ.Dial = e.dialer("cpu3")
	succ.Term = 2
	succ.MemoryNodes = rec.Members
	succ.Epoch = rec.Epoch
	m2 := newMemory(t, succ)
	buf := make([]byte, 6)
	if err := m2.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "epoch1" {
		t.Fatalf("successor read %q", buf)
	}
}

func TestRestripePlainGrowAndShrink(t *testing.T) {
	cfg0 := Config{MemSize: 32 << 10, DirectSize: 8 << 10, WALSlots: 32, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	for _, n := range []string{"m3", "m4"} {
		addMachine(t, e, n, cfg0.Layout())
	}
	cfg := baseConfig(e, "cpu1")
	cfg.MemSize, cfg.DirectSize = cfg0.MemSize, cfg0.DirectSize
	cfg.WALSlots, cfg.WALSlotSize = cfg0.WALSlots, cfg0.WALSlotSize
	cfg.Term = 1
	m := newMemory(t, cfg)

	want := make([]byte, 384)
	rand.New(rand.NewSource(3)).Read(want)
	if err := m.Write(512, want); err != nil {
		t.Fatal(err)
	}
	if err := m.DirectWrite(0, []byte("dz")); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)

	// Grow 3 → 5 under traffic.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := m.Write(uint64(8192+(i%32)*128), []byte{byte(i)}); err != nil {
				if errors.Is(err, ErrReconfigured) {
					return // expected at the cutover instant
				}
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	grown := append(append([]string(nil), e.names...), "m3", "m4")
	res, err := m.Restripe(RestripeTarget{Members: grown})
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatalf("grow restripe: %v", err)
	}
	if res.Record.Epoch != 2 || len(res.Record.Members) != 5 {
		t.Fatalf("grow record = %+v", res.Record)
	}
	// The old handle is dead.
	if err := m.Write(0, []byte("x")); !errors.Is(err, ErrReconfigured) {
		t.Fatalf("write on restriped handle = %v, want ErrReconfigured", err)
	}

	// Rebuild over the committed record; data intact on the 5-node group.
	cfg2 := cfg
	cfg2.Dial = e.dialer("cpu1b")
	cfg2.MemoryNodes = res.Record.Members
	cfg2.Epoch = res.Record.Epoch
	m2 := newMemory(t, cfg2)
	got := make([]byte, len(want))
	if err := m2.Read(512, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost growing 3→5")
	}
	db := make([]byte, 2)
	if err := m2.DirectRead(0, db); err != nil || string(db) != "dz" {
		t.Fatalf("direct zone after grow: %q err=%v", db, err)
	}
	if got := len(m2.LiveMemoryNodes()); got != 5 {
		t.Fatalf("live after grow = %d, want 5", got)
	}

	// Shrink 5 → 3, dropping one original and one joiner.
	shrunk := []string{"m0", "m2", "m3"}
	res2, err := m2.Restripe(RestripeTarget{Members: shrunk})
	if err != nil {
		t.Fatalf("shrink restripe: %v", err)
	}
	cfg3 := cfg
	cfg3.Dial = e.dialer("cpu1c")
	cfg3.MemoryNodes = res2.Record.Members
	cfg3.Epoch = res2.Record.Epoch
	m3 := newMemory(t, cfg3)
	got = make([]byte, len(want))
	if err := m3.Read(512, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost shrinking 5→3")
	}
	// Removed nodes are tombstoned.
	for _, name := range []string{"m1", "m4"} {
		if w := readAdminWord(t, e, name, memnode.AdminRetiredOffset); w != 3 {
			t.Fatalf("%s retired word = %d, want 3", name, w)
		}
	}
}

func TestRestripeECOntoFreshSet(t *testing.T) {
	e, cfg := newECEnv(t, 1) // 3 nodes, k=2 m=1
	for _, n := range []string{"f0", "f1", "f2"} {
		addMachine(t, e, n, cfg.Layout())
	}
	cfg.Term = 1
	m := newMemory(t, cfg)

	want := make([]byte, 3*blockFor(1))
	rand.New(rand.NewSource(5)).Read(want)
	if err := m.Write(uint64(blockFor(1)), want); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)

	res, err := m.Restripe(RestripeTarget{Members: []string{"f0", "f1", "f2"}, ECData: 2, ECParity: 1})
	if err != nil {
		t.Fatalf("EC restripe: %v", err)
	}

	cfg2 := ecConfig(e, "cpu2", 1)
	cfg2.Term = 1
	cfg2.MemoryNodes = res.Record.Members
	cfg2.Epoch = res.Record.Epoch
	m2 := newMemory(t, cfg2)
	got := make([]byte, len(want))
	if err := m2.Read(uint64(blockFor(1)), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost in EC restripe onto fresh set")
	}
	// Old nodes are all retired.
	for _, name := range e.names {
		if w := readAdminWord(t, e, name, memnode.AdminRetiredOffset); w != 2 {
			t.Fatalf("%s retired word = %d, want 2", name, w)
		}
	}
	// Reconstruction still works with a chunk lost on the NEW set.
	e.nw.Fabric().Kill("f1")
	m2.Write(0, []byte("detect"))
	awaitState(t, m2, "f1", "dead")
	got = make([]byte, len(want))
	if err := m2.Read(uint64(blockFor(1)), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded read wrong after EC restripe")
	}
}

func TestRestripeRejections(t *testing.T) {
	cfg0 := Config{MemSize: 16 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 16 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)

	// Plain → EC online is forbidden (block alignment would change under the
	// live kv layer).
	if _, err := m.Restripe(RestripeTarget{Members: e.names, ECData: 2, ECParity: 1}); err == nil {
		t.Fatal("plain→EC restripe accepted")
	}
	// Identical configuration is rejected.
	if _, err := m.Restripe(RestripeTarget{Members: e.names}); err == nil {
		t.Fatal("no-op restripe accepted")
	}
	// Group-size cap is enforced through Validate.
	big := make([]string, 33)
	for i := range big {
		big[i] = fmt.Sprintf("x%d", i)
	}
	if _, err := m.Restripe(RestripeTarget{Members: big}); err == nil {
		t.Fatal("33-node restripe accepted")
	}
	// The memory must still be serving after rejected restripes.
	if err := m.Write(0, []byte("still-alive")); err != nil {
		t.Fatal(err)
	}
}

// awaitState waits for a node to reach the named health state.
func awaitState(t *testing.T, m *Memory, node, state string) {
	t.Helper()
	for i := 0; i < 500; i++ {
		for _, h := range m.Health() {
			if h.Node == node && h.State == state {
				return
			}
		}
		m.Write(uint64(12<<10+256*(i%8)), []byte{1}) // keep the detector fed
	}
	t.Fatalf("node %s never reached state %s (health=%+v)", node, state, m.Health())
}
