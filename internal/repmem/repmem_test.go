package repmem

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/wal"
)

// testEnv is an in-process group: n memory nodes plus a dialer factory.
type testEnv struct {
	nw    *rdma.Network
	names []string
}

func newEnv(t *testing.T, n int, layout memnode.Layout) *testEnv {
	t.Helper()
	nw := rdma.NewNetwork(nil)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("m%d", i)
		node, err := memnode.New(names[i], layout)
		if err != nil {
			t.Fatal(err)
		}
		nw.AddNode(node)
	}
	return &testEnv{nw: nw, names: names}
}

func (e *testEnv) dialer(cpu string) Dialer {
	return func(node string) (rdma.Verbs, error) {
		return e.nw.Dial(cpu, node, rdma.DialOpts{Exclusive: []rdma.RegionID{memnode.ReplRegionID}})
	}
}

func baseConfig(e *testEnv, cpu string) Config {
	return Config{
		MemoryNodes: e.names,
		Dial:        e.dialer(cpu),
		MemSize:     64 << 10,
		DirectSize:  16 << 10,
		WALSlots:    64,
		WALSlotSize: 512,
	}
}

func newMemory(t *testing.T, cfg Config) *Memory {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestConfigValidate(t *testing.T) {
	e := newEnv(t, 3, Config{MemSize: 1024, DirectSize: 0, WALSlots: 4, WALSlotSize: 128}.Layout())
	good := baseConfig(e, "c")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { // 33 nodes: exceeds the uint32 membership bitmap
			c.MemoryNodes = nil
			for i := 0; i < 33; i++ {
				c.MemoryNodes = append(c.MemoryNodes, fmt.Sprintf("n%d", i))
			}
		},
		func(c *Config) { c.MemoryNodes = nil },
		func(c *Config) { c.Dial = nil },
		func(c *Config) { c.MemSize = 0 },
		func(c *Config) { c.DirectSize = -1 },
		func(c *Config) { c.ECData = 2 },                                       // parity missing
		func(c *Config) { c.ECData = 2; c.ECParity = 2 },                       // sum != nodes
		func(c *Config) { c.ECData = 2; c.ECParity = 1; c.ECBlockSize = 3 },    // not divisible by k
		func(c *Config) { c.ECData = 2; c.ECParity = 1; c.ECBlockSize = 4096 }, // doesn't divide MemSize? 64k%4096==0 -> use odd
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if i == len(cases)-1 {
			c.MemSize = 1000 // not a multiple of 4096
		}
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	m := newMemory(t, baseConfig(e, "c"))

	data := []byte("replicated memory payload")
	if err := m.Write(1000, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := m.Read(1000, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q, want %q", buf, data)
	}
	st := m.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWriteReplicatedToAllNodes(t *testing.T) {
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)

	if err := m.Write(128, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)

	layout := cfg.Layout()
	for _, name := range e.names {
		node := e.nw.Node(name)
		snap := node.Region(memnode.ReplRegionID).Snapshot()
		got := snap[layout.MainBase()+128 : layout.MainBase()+132]
		if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
			t.Fatalf("node %s materialized %v", name, got)
		}
	}
}

// WaitApplied blocks until every committed entry has been applied. Test helper.
func (m *Memory) WaitApplied(t *testing.T) {
	t.Helper()
	m.seqMu.Lock()
	for m.watermark+1 < m.nextIndex {
		m.seqMu.Unlock()
		m.applyWG.Wait()
		m.seqMu.Lock()
	}
	m.seqMu.Unlock()
}

func TestWriteBatchAtomicEntry(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 0, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.DirectSize = 0
	m := newMemory(t, cfg)

	batch := []wal.Write{
		{Addr: 0, Data: []byte("aaa")},
		{Addr: 100, Data: []byte("bbb")},
		{Addr: 200, Data: []byte("ccc")},
	}
	if err := m.WriteBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, w := range batch {
		buf := make([]byte, len(w.Data))
		if err := m.Read(w.Addr, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, w.Data) {
			t.Fatalf("addr %d: read %q", w.Addr, buf)
		}
	}
}

func TestWriteBatchTooLarge(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 0, WALSlots: 16, WALSlotSize: 128}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.DirectSize = 0
	cfg.WALSlots = 16
	cfg.WALSlotSize = 128
	m := newMemory(t, cfg)
	err := m.Write(0, make([]byte, 4096))
	if !errors.Is(err, wal.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	cfg0 := Config{MemSize: 4 << 10, DirectSize: 1 << 10, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 4 << 10
	cfg.DirectSize = 1 << 10
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)

	if err := m.Write(uint64(cfg.MemSize), []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("main write OOB: %v", err)
	}
	if err := m.Read(uint64(cfg.MemSize)-1, make([]byte, 2)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("main read OOB: %v", err)
	}
	if err := m.DirectWrite(uint64(cfg.DirectSize), []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("direct write OOB: %v", err)
	}
	if err := m.DirectRead(uint64(cfg.DirectSize)-1, make([]byte, 2)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("direct read OOB: %v", err)
	}
}

func TestDirectWriteRead(t *testing.T) {
	cfg0 := Config{MemSize: 4 << 10, DirectSize: 8 << 10, WALSlots: 16, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 4 << 10
	cfg.DirectSize = 8 << 10
	cfg.WALSlots = 16
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)

	data := []byte("direct, unlogged")
	if err := m.DirectWrite(4096, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := m.DirectRead(4096, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read %q", buf)
	}
	copies, err := m.DirectReadAll(4096, len(data))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, c := range copies {
		if c != nil {
			found++
			if !bytes.Equal(c, data) {
				t.Fatalf("copy %q", c)
			}
		}
	}
	if found != 3 {
		t.Fatalf("found %d copies", found)
	}
}

func TestWriteToleratesMinorityFailure(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 5, cfg0.Layout())
	m := newMemory(t, baseConfig(e, "c"))

	e.nw.Fabric().Kill(e.names[0])
	e.nw.Fabric().Kill(e.names[1])
	if err := m.Write(0, []byte("still working")); err != nil {
		t.Fatalf("write with Fm=2 failures: %v", err)
	}
	buf := make([]byte, 13)
	if err := m.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "still working" {
		t.Fatalf("read %q", buf)
	}
	if len(m.DeadMemoryNodes()) != 2 {
		t.Fatalf("dead = %v", m.DeadMemoryNodes())
	}
}

func TestWriteFailsWithoutQuorum(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	m := newMemory(t, baseConfig(e, "c"))
	e.nw.Fabric().Kill(e.names[0])
	e.nw.Fabric().Kill(e.names[1])
	if err := m.Write(0, []byte("doomed")); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestReadFailsOverToAnotherNode(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	m := newMemory(t, baseConfig(e, "c"))
	if err := m.Write(10, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	m.WaitApplied(t)
	e.nw.Fabric().Kill(e.names[0])
	e.nw.Fabric().Kill(e.names[1])
	// One node left: reads must still succeed (no read quorum needed).
	buf := make([]byte, 3)
	var lastErr error
	ok := false
	for i := 0; i < 4; i++ { // RR may hit dead nodes first; failover marks them dead
		if lastErr = m.Read(10, buf); lastErr == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("read after failover: %v", lastErr)
	}
	if string(buf) != "xyz" {
		t.Fatalf("read %q", buf)
	}
}

func TestConcurrentWritersDisjointRanges(t *testing.T) {
	cfg0 := Config{MemSize: 256 << 10, DirectSize: 0, WALSlots: 128, WALSlotSize: 2048}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 256 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 128
	cfg.WALSlotSize = 2048
	m := newMemory(t, cfg)

	const workers = 8
	const writesPerWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w + 1)}, 512)
			base := uint64(w) * 32 << 10
			for i := 0; i < writesPerWorker; i++ {
				off := base + uint64(i%4)*1024
				if err := m.Write(off, payload); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		buf := make([]byte, 512)
		if err := m.Read(uint64(w)*32<<10, buf); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			if b != byte(w+1) {
				t.Fatalf("worker %d range corrupted: %d", w, b)
			}
		}
	}
}

func TestOverlappingWritesSerialized(t *testing.T) {
	// Concurrent writes to the same address: the final state must equal one
	// of the writes in full (no interleaving), and reads during the storm
	// must always see a complete payload.
	cfg0 := Config{MemSize: 16 << 10, DirectSize: 0, WALSlots: 64, WALSlotSize: 1024}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 16 << 10
	cfg.DirectSize = 0
	cfg.WALSlotSize = 1024
	m := newMemory(t, cfg)

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(w + 1)}, 256)
			for i := 0; i < 30; i++ {
				if err := m.Write(0, payload); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		buf := make([]byte, 256)
		for i := 0; i < 100; i++ {
			if err := m.Read(0, buf); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
			first := buf[0]
			if first == 0 {
				continue // before any apply
			}
			for _, b := range buf {
				if b != first {
					t.Errorf("torn read: %d vs %d", first, b)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-readerDone
}

func TestLogWrapAround(t *testing.T) {
	// More writes than WAL slots: the circular log must recycle slots once
	// entries are applied.
	cfg0 := Config{MemSize: 16 << 10, DirectSize: 0, WALSlots: 8, WALSlotSize: 256}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 16 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 8
	cfg.WALSlotSize = 256
	m := newMemory(t, cfg)

	for i := 0; i < 100; i++ {
		if err := m.Write(uint64(i%16)*64, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	buf := make([]byte, 2)
	if err := m.Read(uint64(99%16)*64, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 99 {
		t.Fatalf("read %v", buf)
	}
}

func TestCoordinatorFailoverRecoversCommittedWrites(t *testing.T) {
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())

	m1 := newMemory(t, baseConfig(e, "cpu1"))
	want := map[uint64][]byte{}
	for i := uint64(0); i < 20; i++ {
		data := []byte(fmt.Sprintf("value-%d", i))
		if err := m1.Write(i*100, data); err != nil {
			t.Fatal(err)
		}
		want[i*100] = data
	}
	// Coordinator "dies" without applying cleanup; new coordinator takes
	// over (its exclusive dial fences m1).
	m2 := newMemory(t, baseConfig(e, "cpu2"))
	for addr, data := range want {
		buf := make([]byte, len(data))
		if err := m2.Read(addr, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("addr %d: read %q, want %q", addr, buf, data)
		}
	}
	// The fenced coordinator must refuse further work.
	err := m1.Write(0, []byte("stale"))
	if !errors.Is(err, ErrFenced) && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("old coordinator write: %v", err)
	}
}

func TestFailoverMidLogUncommittedTailDiscardedOrKept(t *testing.T) {
	// Write entries where the last one reaches only one node (simulated by
	// killing two nodes mid-stream); failover must preserve all acked
	// entries. The unacked tail may appear or not — both are legal.
	cfg0 := Config{MemSize: 64 << 10, DirectSize: 0, WALSlots: 64, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "cpu1")
	cfg.DirectSize = 0
	m1 := newMemory(t, cfg)

	for i := uint64(0); i < 10; i++ {
		if err := m1.Write(i*64, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	m1.Close()

	cfg2 := baseConfig(e, "cpu2")
	cfg2.DirectSize = 0
	m2 := newMemory(t, cfg2)
	for i := uint64(0); i < 10; i++ {
		buf := make([]byte, 1)
		if err := m2.Read(i*64, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("entry %d lost: read %d", i, buf[0])
		}
	}
}

func TestMemoryNodeRecoveryRestoresData(t *testing.T) {
	cfg0 := Config{MemSize: 32 << 10, DirectSize: 8 << 10, WALSlots: 32, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 32 << 10
	cfg.DirectSize = 8 << 10
	cfg.WALSlots = 32
	m := newMemory(t, cfg)

	for i := uint64(0); i < 10; i++ {
		if err := m.Write(i*512, bytes.Repeat([]byte{byte(i + 1)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DirectWrite(100, []byte("direct data")); err != nil {
		t.Fatal(err)
	}

	// Kill node 0, wipe its memory (volatile DRAM), do more writes, restart.
	victim := e.names[0]
	e.nw.Fabric().Kill(victim)
	if err := m.Write(0, []byte("post-failure write")); err != nil {
		t.Fatal(err) // triggers failure detection
	}
	memnode.Reset(e.nw.Node(victim), cfg.Layout())
	if len(m.DeadMemoryNodes()) != 1 {
		t.Fatalf("dead = %v", m.DeadMemoryNodes())
	}
	for i := uint64(10); i < 20; i++ {
		if err := m.Write(i*512, bytes.Repeat([]byte{byte(i + 1)}, 128)); err != nil {
			t.Fatal(err)
		}
	}

	e.nw.Fabric().Restart(victim)
	if err := m.RecoverNodeNow(victim); err != nil {
		t.Fatalf("RecoverNodeNow: %v", err)
	}
	if got := len(m.LiveMemoryNodes()); got != 3 {
		t.Fatalf("live = %d", got)
	}
	m.WaitApplied(t)

	// The recovered node must now hold a full copy: kill the other two and
	// read everything back from the recovered one.
	e.nw.Fabric().Kill(e.names[1])
	e.nw.Fabric().Kill(e.names[2])
	for i := uint64(1); i < 20; i++ { // block 0 was overwritten post-failure
		buf := make([]byte, 128)
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = m.Read(i*512, buf); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("read %d from recovered node: %v", i, err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("block %d: read %d", i, buf[0])
		}
	}
	post := make([]byte, len("post-failure write"))
	var perr error
	for attempt := 0; attempt < 3; attempt++ {
		if perr = m.Read(0, post); perr == nil {
			break
		}
	}
	if perr != nil || string(post) != "post-failure write" {
		t.Fatalf("post-failure write on recovered node: %q err=%v", post, perr)
	}
	buf := make([]byte, 11)
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = m.DirectRead(100, buf); err == nil {
			break
		}
	}
	if err != nil || string(buf) != "direct data" {
		t.Fatalf("direct read: %q err=%v", buf, err)
	}
}

func TestQuickMainSpaceMatchesModel(t *testing.T) {
	// Random writes and reads against a model byte array.
	cfg0 := Config{MemSize: 8 << 10, DirectSize: 0, WALSlots: 32, WALSlotSize: 512}
	e := newEnv(t, 3, cfg0.Layout())
	cfg := baseConfig(e, "c")
	cfg.MemSize = 8 << 10
	cfg.DirectSize = 0
	cfg.WALSlots = 32
	m := newMemory(t, cfg)
	model := make([]byte, cfg.MemSize)

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 20; op++ {
			addr := uint64(rng.Intn(cfg.MemSize - 256))
			size := 1 + rng.Intn(255)
			if rng.Intn(2) == 0 {
				data := make([]byte, size)
				rng.Read(data)
				if err := m.Write(addr, data); err != nil {
					return false
				}
				copy(model[addr:], data)
			} else {
				buf := make([]byte, size)
				if err := m.Read(addr, buf); err != nil {
					return false
				}
				if !bytes.Equal(buf, model[addr:addr+uint64(size)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
