package repmem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/repro/sift/internal/erasure"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
)

// View is a read-only window onto a group's replicated main memory for a
// CPU node that is NOT the coordinator. It shares the coordinator's layout
// (so addresses mean the same thing) but holds no locks, no write workers,
// and no failure-detection state: it simply reads, restricted to the nodes
// named by a membership bitmap the caller refreshes from the admin region.
//
// The View's connections must be observer (read-only) connections — see
// rdma.DialOpts.ReadOnly — so they neither revoke the coordinator's
// exclusive write access nor get fenced by it. Any read failure is
// returned to the caller, who is expected to fall back to the coordinator
// path; a View never retries against nodes outside the mask, because a
// node absent from the published membership may hold arbitrarily stale
// (or wiped) contents.
type View struct {
	cfg    Config
	layout memnode.Layout
	code   *erasure.Code
	chunk  int

	dial   Dialer
	mu     sync.Mutex
	conns  []rdma.Verbs
	closed bool

	// mask is the allowed-node bitmap (bit i = node i readable), published
	// by the coordinator at memnode.AdminMembershipOffset.
	mask atomic.Uint32

	rr atomic.Uint64
}

// NewView builds a read-only view from the group's shared memory
// configuration. cfg.Dial must open observer connections (no exclusive
// regions). Until SetMask is called the view trusts no node and every read
// fails.
func NewView(cfg Config) (*View, error) {
	c := cfg.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	v := &View{
		cfg:    c,
		layout: c.Layout(),
		dial:   c.Dial,
		conns:  make([]rdma.Verbs, len(c.MemoryNodes)),
	}
	if c.ECData > 0 {
		code, err := erasure.New(c.ECData, c.ECParity)
		if err != nil {
			return nil, err
		}
		v.code = code
		v.chunk = c.ECBlockSize / c.ECData
	}
	return v, nil
}

// SetMask installs the allowed-node bitmap (from the coordinator's
// published membership word).
func (v *View) SetMask(bitmap uint32) { v.mask.Store(bitmap) }

// ReadMembership reads the freshest membership record of this view's own
// config epoch visible across the view's connections (dialing as needed).
// Records of other epochs are ignored — their bitmaps index a different
// member list than the one this view was built over. ok is false when no
// node has a record for this epoch.
func (v *View) ReadMembership() (term, version uint16, bitmap uint32, ok bool) {
	return readMembershipAt(v.allConns(), v.cfg.Epoch)
}

// ReadServing reads the highest published (config epoch, serving term) —
// the latest epoch and term whose coordinator has completed recovery and
// replay. ok is false when no node has one.
func (v *View) ReadServing() (epoch uint32, term uint16, ok bool) {
	return readServing(v.allConns())
}

// ReadEpoch reads the highest committed config-epoch word visible across
// the view's connections. A value above the view's own config epoch means
// the member set this view reads from is obsolete: the caller must stop
// serving from it and rebuild against the new configuration descriptor.
func (v *View) ReadEpoch() (epoch uint32, term uint16, ok bool) {
	var bestE uint32
	var bestT uint16
	for _, c := range v.allConns() {
		e, t, err := readEpochWord(c)
		if err != nil {
			continue
		}
		ok = true
		if e > bestE || (e == bestE && t > bestT) {
			bestE, bestT = e, t
		}
	}
	return bestE, bestT, ok
}

// Epoch returns the config epoch this view was built for.
func (v *View) Epoch() uint32 { return v.cfg.Epoch }

// ReadConfig reads the authoritative configuration descriptor visible
// across the view's connections: the highest-(epoch, term) valid descriptor
// whose epoch does not exceed the highest committed epoch word (a
// descriptor above every epoch word describes an uncommitted
// reconfiguration and must not be adopted). ok is false when no valid
// descriptor is visible.
func (v *View) ReadConfig() (memnode.ConfigRecord, bool) {
	conns := v.allConns()
	var maxEpoch uint32
	for _, c := range conns {
		if e, _, err := readEpochWord(c); err == nil && e > maxEpoch {
			maxEpoch = e
		}
	}
	var best memnode.ConfigRecord
	ok := false
	buf := make([]byte, memnode.MaxConfigSize)
	for _, c := range conns {
		if err := c.Read(memnode.AdminRegionID, memnode.AdminConfigOffset, buf); err != nil {
			continue
		}
		rec, valid := memnode.DecodeConfig(buf)
		if !valid || rec.Epoch > maxEpoch {
			continue
		}
		if !ok || rec.Newer(best) {
			best = rec
			ok = true
		}
	}
	return best, ok
}

func (v *View) allConns() []rdma.Verbs {
	conns := make([]rdma.Verbs, 0, len(v.cfg.MemoryNodes))
	for i := range v.cfg.MemoryNodes {
		if c, err := v.conn(i); err == nil {
			conns = append(conns, c)
		}
	}
	return conns
}

// conn returns (dialing lazily) the connection to node i. A closed view
// never re-dials: its member list may have been superseded by a newer
// configuration, and resurrecting a connection could read a retired node.
func (v *View) conn(i int) (rdma.Verbs, error) {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return nil, fmt.Errorf("%w: view closed", ErrClosed)
	}
	c := v.conns[i]
	v.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := v.dial(v.cfg.MemoryNodes[i])
	if err != nil {
		return nil, err
	}
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("%w: view closed", ErrClosed)
	}
	if existing := v.conns[i]; existing != nil {
		v.mu.Unlock()
		c.Close()
		return existing, nil
	}
	v.conns[i] = c
	v.mu.Unlock()
	return c, nil
}

// dropConn closes and forgets node i's connection after an error.
func (v *View) dropConn(i int) {
	v.mu.Lock()
	if c := v.conns[i]; c != nil {
		c.Close()
		v.conns[i] = nil
	}
	v.mu.Unlock()
}

// allowed reports whether node i is in the current mask.
func (v *View) allowed(i int) bool { return v.mask.Load()&(1<<uint(i)) != 0 }

// Close releases the view's connections and marks the view dead; any
// in-flight or later read fails with ErrClosed (the backup reader's signal
// to retry at the coordinator).
func (v *View) Close() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.closed = true
	for i, c := range v.conns {
		if c != nil {
			c.Close()
			v.conns[i] = nil
		}
	}
}

// Read fills buf from main-space address addr, using only masked nodes.
// Under full replication one read from any masked node suffices; under
// erasure coding each affected block is reconstructed from any k masked
// chunks. Any failure is returned as-is: the caller falls back to the
// coordinator rather than risking a stale node.
func (v *View) Read(addr uint64, buf []byte) error {
	if err := v.checkRange(addr, len(buf)); err != nil {
		return err
	}
	if v.code == nil {
		return v.readPlain(addr, buf)
	}
	return v.readEC(addr, buf)
}

func (v *View) checkRange(addr uint64, n int) error {
	if n < 0 || addr+uint64(n) > uint64(v.cfg.MemSize) {
		return fmt.Errorf("%w: view read [%d,%d) of %d", ErrOutOfRange, addr, addr+uint64(n), v.cfg.MemSize)
	}
	return nil
}

func (v *View) readPlain(addr uint64, buf []byte) error {
	n := len(v.cfg.MemoryNodes)
	start := int(v.rr.Add(1))
	var lastErr error
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if !v.allowed(i) {
			continue
		}
		c, err := v.conn(i)
		if err == nil {
			if err = c.Read(replRegion, v.layout.MainBase()+addr, buf); err == nil {
				return nil
			}
			v.dropConn(i)
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: no nodes in membership mask", ErrNoQuorum)
	}
	return lastErr
}

// readEC reconstructs the affected EC blocks. Whole-block spans decode
// straight into buf; partial edges go through a scratch block.
func (v *View) readEC(addr uint64, buf []byte) error {
	B := uint64(v.cfg.ECBlockSize)
	first := addr / B
	last := first
	if len(buf) > 0 {
		last = (addr + uint64(len(buf)) - 1) / B
	}
	var scratch []byte
	for b := first; b <= last; b++ {
		blockStart := b * B
		lo := max64(addr, blockStart)
		hi := min64(addr+uint64(len(buf)), blockStart+B)
		if lo == blockStart && hi == blockStart+B {
			if err := v.readBlock(b, buf[lo-addr:hi-addr]); err != nil {
				return err
			}
			continue
		}
		if scratch == nil {
			scratch = make([]byte, B)
		}
		if err := v.readBlock(b, scratch); err != nil {
			return err
		}
		copy(buf[lo-addr:hi-addr], scratch[lo-blockStart:hi-blockStart])
	}
	return nil
}

// readBlock reconstructs EC block b into block (ECBlockSize bytes) from any
// k masked chunks, data chunks first.
func (v *View) readBlock(b uint64, block []byte) error {
	n := len(v.cfg.MemoryNodes)
	k := v.code.K()
	C := v.chunk
	phys := v.layout.MainBase() + b*uint64(C)
	chunks := make([][]byte, n)
	var parity []byte
	got := 0
	for j := 0; j < n && got < k; j++ {
		if !v.allowed(j) {
			continue
		}
		var target []byte
		if j < k {
			target = block[j*C : (j+1)*C]
		} else {
			if parity == nil {
				parity = make([]byte, (n-k)*C)
			}
			target = parity[(j-k)*C : (j-k+1)*C]
		}
		c, err := v.conn(j)
		if err != nil {
			continue
		}
		if err := c.Read(replRegion, phys, target); err != nil {
			v.dropConn(j)
			continue
		}
		chunks[j] = target
		got++
	}
	if got < k {
		return fmt.Errorf("%w: only %d of %d chunks readable", ErrNoQuorum, got, k)
	}
	return v.code.DecodeInto(block, chunks)
}
