package repmem

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/repro/sift/internal/rdma"
)

func TestQuorumGroupReportsRealAckCount(t *testing.T) {
	injected := errors.New("boom")
	g := newQuorumGroup(3, 3, nil)
	g.ack(nil)
	g.ack(injected)
	g.ack(injected)
	err := g.wait()
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("got %v, want ErrNoQuorum", err)
	}
	if !strings.Contains(err.Error(), "1 of 3 acks") {
		t.Fatalf("error %q should report the real ack count (1 of 3)", err)
	}
}

func TestQuorumGroupBornDecidedStillCountsLateAcks(t *testing.T) {
	g := newQuorumGroup(1, 2, nil)
	g.ack(nil)
	err := g.wait()
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("got %v, want ErrNoQuorum", err)
	}
	if !strings.Contains(err.Error(), "1 of 1 acks") {
		t.Fatalf("error %q should reflect the ack that did arrive", err)
	}
}

func TestRedialerBackoffBounds(t *testing.T) {
	const min, max = 10 * time.Millisecond, 80 * time.Millisecond
	r := newRedialer("m0", nil, min, max, 7)
	for failures := 1; failures <= 8; failures++ {
		r.failures = failures
		base := min << (failures - 1)
		if base > max {
			base = max
		}
		for i := 0; i < 50; i++ {
			b := r.backoffLocked()
			if b < base/2 || b >= base+base/2 {
				t.Fatalf("failures=%d: backoff %v outside [%v, %v)", failures, b, base/2, base+base/2)
			}
		}
	}
}

func TestRedialerCircuitOpensAfterFailure(t *testing.T) {
	dialErr := errors.New("refused")
	calls := 0
	r := newRedialer("m0", func(string) (rdma.Verbs, error) {
		calls++
		return nil, dialErr
	}, 50*time.Millisecond, time.Second, 1)

	if _, err := r.dialNow(); !errors.Is(err, dialErr) {
		t.Fatalf("first dial: got %v, want dial error", err)
	}
	// The circuit is now open: the next attempt is refused without dialing.
	if _, err := r.dialNow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second dial: got %v, want ErrCircuitOpen", err)
	}
	if calls != 1 {
		t.Fatalf("dialer called %d times, want 1 (circuit should fail fast)", calls)
	}
}

func TestRedialerRecoversAfterBackoff(t *testing.T) {
	e := newEnv(t, 1, Config{MemSize: 1024, DirectSize: 0, WALSlots: 4, WALSlotSize: 128}.Layout())
	fail := true
	inner := e.dialer("c0")
	r := newRedialer("m0", func(node string) (rdma.Verbs, error) {
		if fail {
			return nil, errors.New("down")
		}
		return inner(node)
	}, time.Millisecond, 4*time.Millisecond, 1)

	if _, err := r.dialNow(); err == nil {
		t.Fatal("dial to down node should fail")
	}
	fail = false
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := r.dialNow()
		if err == nil {
			v.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("redial never succeeded: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if f, open := r.snapshot(); f != 0 || open != 0 {
		t.Fatalf("snapshot after success: failures=%d open=%v, want zeroes", f, open)
	}
}

func TestWriteTargetsPartitionsSuspects(t *testing.T) {
	e := newEnv(t, 3, Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}.Layout())
	m := newMemory(t, baseConfig(e, "c0"))

	m.state[1].Store(nodeSuspect)
	wait, best := m.writeTargets(m.Majority())
	if len(wait) != 2 || len(best) != 1 || best[0] != 1 {
		t.Fatalf("wait=%v best=%v, want wait={0,2} best={1}", wait, best)
	}

	// Degraded mode: with two suspects a true majority is impossible from
	// the healthy subset alone, so suspects are promoted back into the wait
	// set — a quorum ack must never mean a majority of the healthy few.
	m.state[2].Store(nodeSuspect)
	wait, best = m.writeTargets(m.Majority())
	if len(wait) != 3 || len(best) != 0 {
		t.Fatalf("degraded: wait=%v best=%v, want all three waited on", wait, best)
	}
}

func TestNoteNodeErrorSuspicionThenDeath(t *testing.T) {
	e := newEnv(t, 3, Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}.Layout())
	cfg := baseConfig(e, "c0")
	cfg.SuspectAfter = 2
	cfg.DeadAfter = 4
	m := newMemory(t, cfg)

	m.noteNodeError(0, rdma.ErrDeadline)
	if s := m.state[0].Load(); s != nodeLive {
		t.Fatalf("after 1 timeout: state %d, want live", s)
	}
	m.noteNodeError(0, rdma.ErrDeadline)
	if s := m.state[0].Load(); s != nodeSuspect {
		t.Fatalf("after 2 timeouts: state %d, want suspect", s)
	}
	m.noteNodeError(0, rdma.ErrDeadline)
	m.noteNodeError(0, rdma.ErrDeadline)
	if s := m.state[0].Load(); s != nodeDead {
		t.Fatalf("after 4 timeouts: state %d, want dead", s)
	}
	st := m.Stats()
	if st.NodeTimeouts != 4 || st.NodeSuspected != 1 {
		t.Fatalf("stats timeouts=%d suspected=%d, want 4 and 1", st.NodeTimeouts, st.NodeSuspected)
	}

	// A success on another node clears its streak.
	m.noteNodeError(1, rdma.ErrDeadline)
	m.noteOpResult(1, nil, time.Millisecond, nil)
	if n := m.health[1].consecTimeouts.Load(); n != 0 {
		t.Fatalf("streak after success = %d, want 0", n)
	}

	// Non-deadline errors kill immediately.
	m.noteNodeError(2, errors.New("connection reset"))
	if s := m.state[2].Load(); s != nodeDead {
		t.Fatalf("after transport error: state %d, want dead", s)
	}
}

// TestWriteCommitsWithSuspectNode is the repmem-level acceptance shape:
// with one node suspected gray, quorum writes commit without waiting on it,
// the suspect still receives data best-effort, and RecoverNodeNow repairs
// it back to live.
func TestWriteCommitsWithSuspectNode(t *testing.T) {
	e := newEnv(t, 3, Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}.Layout())
	m := newMemory(t, baseConfig(e, "c0"))

	m.state[1].Store(nodeSuspect)
	want := []byte("gray-failure payload")
	if err := m.Write(100, want); err != nil {
		t.Fatalf("write with suspect node: %v", err)
	}
	got := make([]byte, len(want))
	if err := m.Read(100, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read back %q err %v", got, err)
	}
	if names := m.SuspectMemoryNodes(); len(names) != 1 || names[0] != "m1" {
		t.Fatalf("SuspectMemoryNodes = %v, want [m1]", names)
	}
	h := m.Health()
	if len(h) != 3 || h[1].State != "suspect" {
		t.Fatalf("health = %+v, want m1 suspect", h)
	}

	if err := m.RecoverNodeNow("m1"); err != nil {
		t.Fatalf("recover suspect: %v", err)
	}
	if s := m.state[1].Load(); s != nodeLive {
		t.Fatalf("after recovery: state %d, want live", s)
	}
	if err := m.Read(100, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read after recovery %q err %v", got, err)
	}
}

// TestDirectWriteCommitsWithSuspectNode covers the direct (unlogged) path.
func TestDirectWriteCommitsWithSuspectNode(t *testing.T) {
	e := newEnv(t, 3, Config{MemSize: 64 << 10, DirectSize: 16 << 10, WALSlots: 64, WALSlotSize: 512}.Layout())
	m := newMemory(t, baseConfig(e, "c0"))

	m.state[2].Store(nodeSuspect)
	want := []byte("direct under gray")
	if err := m.DirectWrite(64, want); err != nil {
		t.Fatalf("direct write with suspect: %v", err)
	}
	got := make([]byte, len(want))
	if err := m.DirectRead(64, got); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("direct read back %q err %v", got, err)
	}
}
