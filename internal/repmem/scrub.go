package repmem

import (
	"bytes"
	"fmt"
	"time"
)

// Background scrubber: sweeps the materialized main memory (checksum
// verification against the coordinator's cache) and the direct-write zone
// (cross-replica agreement — its contents are self-validating WAL slots, so
// no strip is kept) at a configurable rate, repairing what it can. Latent
// corruption on a replica that reads happen not to touch would otherwise
// survive until that replica becomes the read source — or worse, the
// recovery source — so the scrubber bounds the time a flipped bit can hide.

// scrubBatch is how many blocks/ranges one scrub tick examines. Small
// enough that a tick's lock footprint never bothers the hot path.
const scrubBatch = 32

// scrubDirectChunk is the granularity of direct-zone agreement checks.
const scrubDirectChunk = 4096

// ScrubReport summarizes one full synchronous scrub sweep.
type ScrubReport struct {
	MainBlocks   int // main-memory blocks examined
	DirectRanges int // direct-zone ranges examined
	Corrupt      int // replica blocks that failed their CRC or diverged
	Repaired     int // replica blocks rewritten in place
	Unrepaired   int // damage found that could not be safely repaired
}

// scrubMainBlocks returns how many main-memory blocks the scrubber covers
// (zero with integrity off — without checksums a plain replica divergence
// has no arbiter on the main space, where blocks are not self-validating).
func (m *Memory) scrubMainBlocks() int {
	if m.integ == nil {
		return 0
	}
	return m.integ.blocks
}

// scrubDirectRanges returns how many direct-zone ranges the scrubber covers.
func (m *Memory) scrubDirectRanges() int {
	return (m.cfg.DirectSize + scrubDirectChunk - 1) / scrubDirectChunk
}

// StartScrub launches the background scrubber: every tick it verifies the
// next scrubBatch blocks, wrapping around indefinitely. The returned
// function stops it. Pass progress and findings surface through Stats.
func (m *Memory) StartScrub(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		cursor := 0
		passStart := time.Now()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if m.closed.Load() {
					return
				}
				cursor = m.scrubStep(cursor, scrubBatch)
				if cursor == 0 {
					m.stats.scrubPasses.Add(1)
					m.scrubPassTime.Observe(float64(time.Since(passStart).Microseconds()))
					passStart = time.Now()
				}
			}
		}
	}()
	return func() { close(done) }
}

// ScrubOnce runs one full synchronous sweep over the main memory and the
// direct zone. It is the hook tests and operators use to force a complete
// pass without waiting for the background cadence.
func (m *Memory) ScrubOnce() (ScrubReport, error) {
	var r ScrubReport
	if err := m.checkOpen(); err != nil {
		return r, err
	}
	start := time.Now()
	for b := 0; b < m.scrubMainBlocks(); b++ {
		c, rep, un := m.scrubMainBlock(uint64(b))
		r.MainBlocks++
		r.Corrupt += c
		r.Repaired += rep
		r.Unrepaired += un
	}
	for i := 0; i < m.scrubDirectRanges(); i++ {
		c, rep, un := m.scrubDirectRange(i)
		r.DirectRanges++
		r.Corrupt += c
		r.Repaired += rep
		r.Unrepaired += un
	}
	m.stats.scrubPasses.Add(1)
	m.scrubPassTime.Observe(float64(time.Since(start).Microseconds()))
	return r, m.checkOpen()
}

// scrubStep examines n blocks starting at the sweep cursor and returns the
// new cursor (zero after completing a pass).
func (m *Memory) scrubStep(cursor, n int) int {
	mainBlocks := m.scrubMainBlocks()
	total := mainBlocks + m.scrubDirectRanges()
	if total == 0 {
		return 0
	}
	if cursor >= total {
		cursor = 0
	}
	for ; n > 0 && cursor < total; n, cursor = n-1, cursor+1 {
		if m.closed.Load() {
			return 0
		}
		if cursor < mainBlocks {
			m.scrubMainBlock(uint64(cursor))
		} else {
			m.scrubDirectRange(cursor - mainBlocks)
		}
	}
	if cursor >= total {
		return 0
	}
	return cursor
}

// scrubMainBlock verifies block b on every live replica against the
// checksum cache and repairs deviants in place.
func (m *Memory) scrubMainBlock(b uint64) (corrupt, repaired, unrepaired int) {
	g := m.integ
	m.stats.scrubbed.Add(1)
	defer func() {
		if repaired > 0 {
			m.emit("scrub.repair", "", fmt.Sprintf("main block %d: repaired %d replica(s)", b, repaired))
		}
	}()
	start, length := g.blockRange(b)
	unlock := m.locks.rlockRange(start, length)
	var bad int
	var stripFix []int
	for _, i := range m.nodesInState(nodeLive) {
		c, err := m.conn(i)
		if err == nil {
			data := make([]byte, g.physLen(b))
			if err = c.Read(replRegion, g.physOff(b), data); err == nil {
				if crcBlock(data) != g.sum(i, b) {
					m.noteCorruption(i, 1)
					bad++
					continue
				}
				// Data is good; the stored strip entry must agree (a corrupted
				// strip write leaves clean data under a lying checksum, which
				// would poison the next recovery's loadSums vote).
				strip := make([]byte, 4)
				if err = c.Read(replRegion, g.stripOff(b), strip); err == nil {
					if !bytes.Equal(strip, stripEntry(g.sum(i, b))) {
						stripFix = append(stripFix, i)
					}
					continue
				}
			}
		}
		m.noteConnError(i, c, err)
		if m.checkOpen() != nil {
			break
		}
	}
	unlock()
	for _, i := range stripFix {
		unlockW := m.locks.lockRange(start, length)
		c, err := m.conn(i)
		if err == nil {
			err = c.Write(replRegion, g.stripOff(b), stripEntry(g.sum(i, b)))
		}
		unlockW()
		corrupt++
		m.noteCorruption(i, 1)
		if err != nil {
			m.noteConnError(i, c, err)
			unrepaired++
			continue
		}
		m.stats.repairs.Add(1)
		repaired++
	}
	if bad == 0 {
		return corrupt, repaired, unrepaired
	}
	unlockW := m.locks.lockRange(start, length)
	var fixed int
	var err error
	if m.code == nil {
		_, fixed, err = g.repairPlainBlockLocked(b)
	} else {
		fixed, err = g.repairECBlockLocked(b)
	}
	unlockW()
	corrupt += bad
	repaired += fixed
	if err != nil {
		unrepaired += bad - fixed
	}
	return corrupt, repaired, unrepaired
}

// scrubDirectRange checks cross-replica agreement on the idx-th direct-zone
// range. The direct zone has no checksum strip — its contents are the KV
// store's self-validating WAL slots, quorum-merged at recovery — so the
// scrubber's job is only to re-converge replicas: a diverging minority is
// overwritten when a strict majority of the full membership is
// byte-identical (every live node receives every direct write, so the
// honest copies agree); anything less is left alone and counted.
func (m *Memory) scrubDirectRange(idx int) (corrupt, repaired, unrepaired int) {
	m.stats.scrubbed.Add(1)
	defer func() {
		if repaired > 0 {
			m.emit("scrub.repair", "", fmt.Sprintf("direct range %d: repaired %d replica(s)", idx, repaired))
		}
	}()
	off := uint64(idx) * scrubDirectChunk
	n := min64(scrubDirectChunk, uint64(m.cfg.DirectSize)-off)
	if n == 0 {
		return 0, 0, 0
	}

	read := func() [][]byte {
		copies := make([][]byte, len(m.nodes))
		for _, i := range m.nodesInState(nodeLive) {
			c, err := m.conn(i)
			if err == nil {
				buf := make([]byte, n)
				if err = c.Read(replRegion, m.physDirect(off), buf); err == nil {
					copies[i] = buf
					continue
				}
			}
			m.noteConnError(i, c, err)
			if m.checkOpen() != nil {
				break
			}
		}
		return copies
	}
	agree := func(copies [][]byte) bool {
		var first []byte
		for _, c := range copies {
			if c == nil {
				continue
			}
			if first == nil {
				first = c
			} else if !bytes.Equal(first, c) {
				return false
			}
		}
		return true
	}

	unlock := m.directLocks.rlockRange(off, int(n))
	copies := read()
	unlock()
	if agree(copies) {
		return 0, 0, 0
	}

	// Divergence seen: re-read under the write lock (the first pass may have
	// raced an in-flight DirectWrite fan-out) and repair.
	unlockW := m.directLocks.lockRange(off, int(n))
	defer unlockW()
	copies = read()
	if agree(copies) {
		return 0, 0, 0
	}
	var canonical []byte
	best := 0
	for _, c := range copies {
		if c == nil {
			continue
		}
		votes := 0
		for _, other := range copies {
			if other != nil && bytes.Equal(c, other) {
				votes++
			}
		}
		if votes > best {
			best, canonical = votes, c
		}
	}
	for i, c := range copies {
		if c == nil || bytes.Equal(c, canonical) {
			continue
		}
		corrupt++
		m.noteCorruption(i, 1)
		if 2*best <= len(m.nodes) {
			unrepaired++
			continue
		}
		conn, err := m.conn(i)
		if err == nil {
			err = conn.Write(replRegion, m.physDirect(off), canonical)
		}
		if err != nil {
			m.noteConnError(i, conn, err)
			unrepaired++
			continue
		}
		m.stats.repairs.Add(1)
		repaired++
	}
	return corrupt, repaired, unrepaired
}
