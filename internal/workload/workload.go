// Package workload generates the evaluation workloads of paper §6.2:
// key-value operations over a fixed key population with a Zipfian(0.99) or
// uniform key-popularity distribution, in four read/write mixes
// (write-only, mixed 50/50, read-heavy 90/10, read-only).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Mix is a read/write ratio.
type Mix struct {
	Name      string
	ReadRatio float64 // fraction of operations that are reads
}

// The paper's four workload types (§6.2).
var (
	WriteOnly = Mix{Name: "write-only", ReadRatio: 0}
	Mixed     = Mix{Name: "mixed", ReadRatio: 0.5}
	ReadHeavy = Mix{Name: "read-heavy", ReadRatio: 0.9}
	ReadOnly  = Mix{Name: "read-only", ReadRatio: 1}
)

// Mixes lists the paper's workload types in Figure 5 order.
var Mixes = []Mix{WriteOnly, Mixed, ReadHeavy, ReadOnly}

// MixByName resolves a mix by its name.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// Zipf generates Zipf-distributed ranks in [0, n) with the classic
// "Gray et al." method used by YCSB, so that rank 0 is the most popular
// item. The paper uses parameter 0.99.
type Zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

// NewZipf creates a generator over n items with the given theta (0 < theta
// < 1; the paper uses 0.99).
func NewZipf(n int, theta float64, seed int64) *Zipf {
	z := &Zipf{
		n:     n,
		theta: theta,
		rng:   rand.New(rand.NewSource(seed)),
	}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

// zeta computes the generalized harmonic number H_{n,theta}.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// KeyFunc maps a rank to a key. Rank 0 is the most popular key.
type KeyFunc func(rank int) []byte

// DefaultKey formats ranks as fixed-width keys within the paper's 32-byte
// key limit.
func DefaultKey(rank int) []byte {
	return []byte(fmt.Sprintf("user%012d", rank))
}

// Op is one generated operation.
type Op struct {
	Read   bool
	Delete bool // a write that removes the key (UniqueValues mode only)
	Key    []byte
	Value  []byte // nil for reads and deletes
}

// Generator produces a stream of operations for one client.
type Generator struct {
	mix       Mix
	keys      int
	valueSize int
	key       KeyFunc
	zipf      *Zipf // nil means uniform
	rng       *rand.Rand
	valueBuf  []byte
	counter   uint64
	unique    bool
	clientID  int
	delRatio  float64
}

// Config parameterises a Generator.
type Config struct {
	// Mix is the read/write ratio.
	Mix Mix
	// Keys is the key population size (paper: 1M).
	Keys int
	// ValueSize is the value payload size in bytes (paper: up to 992).
	ValueSize int
	// ZipfTheta > 0 enables a Zipfian distribution with that parameter
	// (paper: 0.99); 0 selects uniform.
	ZipfTheta float64
	// Key maps ranks to keys (default DefaultKey).
	Key KeyFunc
	// Seed makes the stream deterministic.
	Seed int64
	// UniqueValues switches the generator into history-emitting mode for
	// linearizability checking: every write carries a globally unique
	// "c<ClientID>-<seq>" payload (instead of the reused buffer), so a read
	// identifies exactly which write it observed.
	UniqueValues bool
	// ClientID distinguishes clients' values in UniqueValues mode.
	ClientID int
	// DeleteRatio is the fraction of writes emitted as deletes in
	// UniqueValues mode (0 disables deletes).
	DeleteRatio float64
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) *Generator {
	if cfg.Key == nil {
		cfg.Key = DefaultKey
	}
	g := &Generator{
		mix:       cfg.Mix,
		keys:      cfg.Keys,
		valueSize: cfg.ValueSize,
		key:       cfg.Key,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		valueBuf:  make([]byte, cfg.ValueSize),
		unique:    cfg.UniqueValues,
		clientID:  cfg.ClientID,
		delRatio:  cfg.DeleteRatio,
	}
	if cfg.ZipfTheta > 0 {
		g.zipf = NewZipf(cfg.Keys, cfg.ZipfTheta, cfg.Seed+1)
	}
	for i := range g.valueBuf {
		g.valueBuf[i] = byte('a' + i%26)
	}
	return g
}

// rank draws the next key rank.
func (g *Generator) rank() int {
	if g.zipf != nil {
		r := g.zipf.Next()
		if r >= g.keys {
			r = g.keys - 1
		}
		return r
	}
	return g.rng.Intn(g.keys)
}

// Next returns the next operation. The returned value slice is reused
// across calls with a small mutation, mirroring clients that send fresh
// payloads without reallocating — except in UniqueValues mode, where each
// write gets a freshly allocated, globally unique payload.
func (g *Generator) Next() Op {
	read := g.rng.Float64() < g.mix.ReadRatio
	op := Op{Read: read, Key: g.key(g.rank())}
	if read {
		return op
	}
	g.counter++
	if g.unique {
		if g.delRatio > 0 && g.rng.Float64() < g.delRatio {
			op.Delete = true
			return op
		}
		op.Value = []byte(fmt.Sprintf("c%d-%d", g.clientID, g.counter))
		return op
	}
	if len(g.valueBuf) >= 8 {
		putCounter(g.valueBuf, g.counter)
	}
	op.Value = g.valueBuf
	return op
}

// PopulationKeys enumerates every key once, for pre-population (§6.2: "Each
// system is pre-populated with all of the keys").
func PopulationKeys(keys int, key KeyFunc) [][]byte {
	if key == nil {
		key = DefaultKey
	}
	out := make([][]byte, keys)
	for i := range out {
		out[i] = key(i)
	}
	return out
}

func putCounter(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
