package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMixes(t *testing.T) {
	if len(Mixes) != 4 {
		t.Fatalf("Mixes = %d", len(Mixes))
	}
	m, err := MixByName("read-heavy")
	if err != nil || m.ReadRatio != 0.9 {
		t.Fatalf("read-heavy: %+v err=%v", m, err)
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(1000, 0.99, 1)
	for i := 0; i < 100000; i++ {
		r := z.Next()
		if r < 0 || r >= 1000 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With theta 0.99 over 10k keys, the top 10 ranks should get far more
	// than their uniform share (0.1%) of draws.
	z := NewZipf(10000, 0.99, 42)
	const draws = 200000
	top10 := 0
	for i := 0; i < draws; i++ {
		if z.Next() < 10 {
			top10++
		}
	}
	frac := float64(top10) / draws
	if frac < 0.2 {
		t.Fatalf("top-10 fraction = %.3f, expected heavy skew (>0.2)", frac)
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(100, 0.99, 7)
	b := NewZipf(100, 0.99, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfRankZeroMostPopular(t *testing.T) {
	z := NewZipf(1000, 0.99, 3)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[500] {
		t.Fatalf("rank 0 (%d draws) less popular than rank 500 (%d)", counts[0], counts[500])
	}
}

func TestDefaultKeyFitsPaperLimit(t *testing.T) {
	f := func(rank uint16) bool {
		k := DefaultKey(int(rank))
		return len(k) <= 32 && len(k) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(DefaultKey(7), DefaultKey(7)) {
		t.Fatal("key function not deterministic")
	}
	if bytes.Equal(DefaultKey(1), DefaultKey(2)) {
		t.Fatal("distinct ranks collide")
	}
}

func TestGeneratorMixRatio(t *testing.T) {
	for _, mix := range Mixes {
		g := NewGenerator(Config{Mix: mix, Keys: 100, ValueSize: 64, Seed: 5})
		reads := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if g.Next().Read {
				reads++
			}
		}
		got := float64(reads) / n
		if diff := got - mix.ReadRatio; diff > 0.02 || diff < -0.02 {
			t.Fatalf("%s: read fraction %.3f, want %.2f", mix.Name, got, mix.ReadRatio)
		}
	}
}

func TestGeneratorValues(t *testing.T) {
	g := NewGenerator(Config{Mix: WriteOnly, Keys: 10, ValueSize: 128, Seed: 1})
	op := g.Next()
	if op.Read {
		t.Fatal("write-only generated a read")
	}
	if len(op.Value) != 128 {
		t.Fatalf("value size %d", len(op.Value))
	}
	if len(op.Key) == 0 {
		t.Fatal("empty key")
	}
}

func TestGeneratorUniform(t *testing.T) {
	g := NewGenerator(Config{Mix: ReadOnly, Keys: 4, ValueSize: 8, Seed: 9}) // theta 0 = uniform
	counts := map[string]int{}
	for i := 0; i < 8000; i++ {
		counts[string(g.Next().Key)]++
	}
	for k, c := range counts {
		if c < 1500 || c > 2500 {
			t.Fatalf("uniform key %s drawn %d times of 8000", k, c)
		}
	}
}

func TestPopulationKeys(t *testing.T) {
	keys := PopulationKeys(100, nil)
	if len(keys) != 100 {
		t.Fatalf("len = %d", len(keys))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[string(k)] {
			t.Fatalf("duplicate key %s", k)
		}
		seen[string(k)] = true
	}
}

func TestGeneratorUniqueValuesMode(t *testing.T) {
	ga := NewGenerator(Config{Mix: Mixed, Keys: 8, ValueSize: 16, Seed: 7,
		UniqueValues: true, ClientID: 3, DeleteRatio: 0.2})
	gb := NewGenerator(Config{Mix: Mixed, Keys: 8, ValueSize: 16, Seed: 7,
		UniqueValues: true, ClientID: 4, DeleteRatio: 0.2})

	seen := map[string]bool{}
	var deletes int
	for i := 0; i < 2000; i++ {
		for _, op := range []Op{ga.Next(), gb.Next()} {
			if op.Read {
				if op.Value != nil || op.Delete {
					t.Fatalf("read carries write fields: %+v", op)
				}
				continue
			}
			if op.Delete {
				deletes++
				if op.Value != nil {
					t.Fatalf("delete carries a value: %+v", op)
				}
				continue
			}
			if seen[string(op.Value)] {
				t.Fatalf("duplicate value %q across clients", op.Value)
			}
			seen[string(op.Value)] = true
		}
	}
	if deletes == 0 {
		t.Fatal("DeleteRatio 0.2 produced no deletes")
	}
	if len(seen) == 0 {
		t.Fatal("no unique-value writes generated")
	}
}
