// Package deploy derives the key-value and replicated-memory
// configurations (sizes, erasure geometry, memory-node layout) from
// user-facing deployment parameters. The in-process Cluster and the
// multi-process daemons (cmd/memnoded, cmd/siftd) share this derivation so
// their layouts always agree.
package deploy

import (
	"fmt"

	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/repmem"
)

// Params are the user-facing deployment knobs.
type Params struct {
	// F is the fault tolerance level (2F+1 memory nodes).
	F int
	// EC enables erasure coding (k=F+1 data + F parity chunks).
	EC bool
	// Key-value sizing.
	Keys          int
	MaxKey        int
	MaxValue      int
	CacheFraction float64
	LoadFactor    float64
	KVWALSlots    int
	// Replicated-memory log sizing.
	MemWALSlots    int
	MemWALSlotSize int
	// NoIntegrity disables the main-memory checksum strip and the read-path
	// verification that rides on it.
	NoIntegrity bool
}

func (p *Params) withDefaults() Params {
	out := *p
	if out.F <= 0 {
		out.F = 1
	}
	if out.Keys <= 0 {
		out.Keys = 16384
	}
	if out.MaxKey <= 0 {
		out.MaxKey = 32
	}
	if out.MaxValue <= 0 {
		out.MaxValue = 992
	}
	if out.CacheFraction <= 0 {
		out.CacheFraction = 0.5
	}
	if out.LoadFactor <= 0 {
		out.LoadFactor = 0.125
	}
	if out.KVWALSlots <= 0 {
		out.KVWALSlots = 4096
	}
	if out.MemWALSlots <= 0 {
		out.MemWALSlots = 1024
	}
	if out.MemWALSlotSize <= 0 {
		out.MemWALSlotSize = 4096
	}
	return out
}

// Derive computes the layer configurations. The returned repmem.Config has
// MemoryNodes and Dial unset (the deployment wires those).
func (p Params) Derive() (kv.Config, repmem.Config, error) {
	pp := p.withDefaults()
	kcfg := kv.Config{
		Capacity:      pp.Keys,
		MaxKey:        pp.MaxKey,
		MaxValue:      pp.MaxValue,
		LoadFactor:    pp.LoadFactor,
		CacheFraction: pp.CacheFraction,
		WALSlots:      pp.KVWALSlots,
		ApplyShards:   4,
	}
	if err := kcfg.Validate(); err != nil {
		return kv.Config{}, repmem.Config{}, err
	}
	mcfg := repmem.Config{
		WALSlots:    pp.MemWALSlots,
		WALSlotSize: pp.MemWALSlotSize,
	}
	align := 1
	if pp.EC {
		k := pp.F + 1
		mcfg.ECData = k
		mcfg.ECParity = pp.F
		// The EC block is the KV data block rounded up so every feasible
		// data-chunk count divides it — both today's k and any k' an online
		// restripe may move to. The KV block alignment is derived from this
		// size and cannot change under a live store, so divisibility must be
		// built in up front: lcm(1..8) covers restripes up to 8 data chunks,
		// and larger initial k folds itself in.
		unit := lcm(840, k) // 840 = lcm(1..8)
		mcfg.ECBlockSize = (kcfg.BlockSize() + unit - 1) / unit * unit
		align = mcfg.ECBlockSize
	}
	if pp.NoIntegrity {
		mcfg.IntegrityBlockSize = -1
	} else if !pp.EC {
		// Align KV data blocks to integrity blocks sized to match: a
		// steady-state block apply then exactly covers one integrity block,
		// so checksummed writes need no read-modify-write on the hot path.
		mcfg.IntegrityBlockSize = kcfg.BlockSize()
		align = kcfg.BlockSize()
	}
	mcfg.MemSize = kcfg.RequiredMemSize(align)
	if pp.EC && mcfg.MemSize%mcfg.ECBlockSize != 0 {
		mcfg.MemSize = (mcfg.MemSize/mcfg.ECBlockSize + 1) * mcfg.ECBlockSize
	}
	mcfg.DirectSize = kcfg.RequiredDirectSize()
	return kcfg, mcfg, nil
}

// Layout computes the memory-node layout for these parameters.
func (p Params) Layout() (memnode.Layout, error) {
	_, mcfg, err := p.Derive()
	if err != nil {
		return memnode.Layout{}, err
	}
	return mcfg.Layout(), nil
}

// MemoryNodeCount returns 2F+1.
func (p Params) MemoryNodeCount() int {
	pp := p.withDefaults()
	return 2*pp.F + 1
}

// Validate checks the parameters are internally consistent.
func (p Params) Validate() error {
	if _, _, err := p.Derive(); err != nil {
		return fmt.Errorf("deploy: %w", err)
	}
	return nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
