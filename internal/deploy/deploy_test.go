package deploy

import (
	"testing"
	"testing/quick"
)

func TestDeriveDefaults(t *testing.T) {
	kcfg, mcfg, err := Params{}.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if kcfg.Capacity != 16384 || kcfg.MaxKey != 32 || kcfg.MaxValue != 992 {
		t.Fatalf("kv config %+v", kcfg)
	}
	if mcfg.MemSize < kcfg.RequiredMemSize(1) {
		t.Fatal("main memory too small for the store")
	}
	if mcfg.DirectSize != kcfg.RequiredDirectSize() {
		t.Fatal("direct zone size mismatch")
	}
	if mcfg.ECData != 0 {
		t.Fatal("EC enabled by default")
	}
}

func TestDeriveECGeometry(t *testing.T) {
	for f := 1; f <= 3; f++ {
		p := Params{F: f, EC: true, Keys: 1024}
		kcfg, mcfg, err := p.Derive()
		if err != nil {
			t.Fatalf("F=%d: %v", f, err)
		}
		if mcfg.ECData != f+1 || mcfg.ECParity != f {
			t.Fatalf("F=%d: EC geometry %d+%d", f, mcfg.ECData, mcfg.ECParity)
		}
		if mcfg.ECBlockSize%mcfg.ECData != 0 {
			t.Fatalf("F=%d: block %d not divisible by k", f, mcfg.ECBlockSize)
		}
		// Online restripes keep the block size but may change the chunk
		// count; any target k' up to 8 must divide the derived block.
		for kp := 1; kp <= 8; kp++ {
			if mcfg.ECBlockSize%kp != 0 {
				t.Fatalf("F=%d: block %d not divisible by restripe target k'=%d", f, mcfg.ECBlockSize, kp)
			}
		}
		if mcfg.MemSize%mcfg.ECBlockSize != 0 {
			t.Fatalf("F=%d: MemSize %d not a multiple of block %d", f, mcfg.MemSize, mcfg.ECBlockSize)
		}
		if mcfg.ECBlockSize < kcfg.BlockSize() {
			t.Fatalf("F=%d: EC block smaller than a KV block", f)
		}
		// The derived repmem config must validate once nodes are attached.
		mcfg.MemoryNodes = make([]string, 2*f+1)
		for i := range mcfg.MemoryNodes {
			mcfg.MemoryNodes[i] = string(rune('a' + i))
		}
		mcfg.Dial = nil
	}
}

func TestLayoutMatchesDerive(t *testing.T) {
	p := Params{F: 1, Keys: 512, MaxValue: 128}
	_, mcfg, err := p.Derive()
	if err != nil {
		t.Fatal(err)
	}
	l, err := p.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if l != mcfg.Layout() {
		t.Fatalf("Layout() %+v != Derive layout %+v", l, mcfg.Layout())
	}
}

func TestMemoryNodeCount(t *testing.T) {
	if (Params{}).MemoryNodeCount() != 3 {
		t.Fatal("default F=1 should need 3 memory nodes")
	}
	if (Params{F: 2}).MemoryNodeCount() != 5 {
		t.Fatal("F=2 should need 5 memory nodes")
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{}).Validate(); err != nil {
		t.Fatal(err)
	}
	// Non-positive values are defaulted rather than rejected, so every
	// parameter combination derives a usable configuration.
	kcfg, _, err := Params{Keys: 100, MaxKey: -1, MaxValue: -5}.Derive()
	if err != nil {
		t.Fatal(err)
	}
	if kcfg.MaxKey != 32 || kcfg.MaxValue != 992 {
		t.Fatalf("negative sizes not defaulted: %+v", kcfg)
	}
}

func TestQuickECBlockAlwaysFitsKVBlock(t *testing.T) {
	f := func(fRaw, keysRaw uint8) bool {
		f := int(fRaw)%3 + 1
		keys := int(keysRaw)%512 + 16
		p := Params{F: f, EC: true, Keys: keys, MaxValue: 100}
		kcfg, mcfg, err := p.Derive()
		if err != nil {
			return false
		}
		return mcfg.ECBlockSize >= kcfg.BlockSize() &&
			mcfg.MemSize >= kcfg.RequiredMemSize(mcfg.ECBlockSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
