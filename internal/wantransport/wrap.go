package wantransport

import (
	"time"

	"github.com/repro/sift/internal/rdma"
)

// opHeaderWire approximates the per-op wire header of the inproc transport;
// the exact constant matters less than charging small ops a realistic floor.
const opHeaderWire = 32

// Wrap interposes the WAN transport on an rdma connection: every operation
// is charged the simulated flight time of its request and response legs
// before reaching the inner transport. When a flight's retry budget expires,
// the submitter is released with rdma.ErrDeadline at the budget boundary and
// the operation still executes late through a shadow — the retransmission
// machinery eventually delivers, exactly like a kernel ARQ stack, so the
// remote's state matches what a real lossy link would leave behind. That
// keeps the established gray-failure contract: ErrDeadline means "outcome
// unknown, possibly late", never "never happened".
func (t *Transport) Wrap(inner rdma.Verbs, link Link) rdma.Verbs {
	c := &wanConn{t: t, link: link, inner: inner}
	c.sub, _ = inner.(rdma.Submitter)
	return c
}

// Dialer mirrors the dial function shape used by the cluster wiring.
type Dialer func(node string) (rdma.Verbs, error)

// WrapDialer wraps connections dialed to wanNode with the WAN transport;
// dials to every other node pass through untouched.
func (t *Transport) WrapDialer(dial Dialer, wanNode string, link Link) Dialer {
	return func(node string) (rdma.Verbs, error) {
		v, err := dial(node)
		if err != nil || node != wanNode {
			return v, err
		}
		return t.Wrap(v, link), nil
	}
}

type wanConn struct {
	t     *Transport
	link  Link
	inner rdma.Verbs
	sub   rdma.Submitter // nil when inner is blocking-only
}

var _ rdma.Submitter = (*wanConn)(nil)

// wireSizes returns the request and response datagram payload sizes of op.
func wireSizes(op *rdma.Op) (req, resp int) {
	switch op.Kind {
	case rdma.OpRead:
		return opHeaderWire, opHeaderWire + len(op.Data)
	case rdma.OpWrite:
		return opHeaderWire + len(op.Data), opHeaderWire
	case rdma.OpCAS:
		return opHeaderWire + 16, opHeaderWire + 8
	default:
		return opHeaderWire, opHeaderWire
	}
}

// Submit implements rdma.Submitter. It never blocks: flight times are
// computed (not slept) and the op is scheduled onto the inner transport
// after the simulated WAN delay.
func (c *wanConn) Submit(op *rdma.Op) {
	reqSize, respSize := wireSizes(op)
	d1, ok1, err := c.t.flightTime(c.link, reqSize)
	if err != nil {
		// Path administratively dead — let the inner transport report the
		// real unreachable/closed error without extra delay.
		c.forward(op)
		return
	}
	d2, ok2, err := c.t.flightTime(c.link, respSize)
	if err != nil {
		c.forward(op)
		return
	}
	total := d1 + d2
	if !ok1 || !ok2 {
		// Budget expired: release the submitter with a deadline, execute the
		// op late via a shadow carrying copied buffers.
		shadow := cloneOp(op)
		time.AfterFunc(total, func() { op.Complete(rdma.ErrDeadline) })
		time.AfterFunc(total+c.t.cfg.RTT, func() { c.forward(shadow) })
		return
	}
	if total <= 0 {
		c.forward(op)
		return
	}
	time.AfterFunc(total, func() { c.forward(op) })
}

// forward hands op to the inner transport.
func (c *wanConn) forward(op *rdma.Op) {
	if c.sub != nil {
		c.sub.Submit(op)
		return
	}
	go func() {
		var err error
		switch op.Kind {
		case rdma.OpRead:
			err = c.inner.Read(op.Region, op.Offset, op.Data)
		case rdma.OpWrite:
			err = c.inner.Write(op.Region, op.Offset, op.Data)
		case rdma.OpCAS:
			op.Old, err = c.inner.CompareAndSwap(op.Region, op.Offset, op.Expect, op.Swap)
		}
		op.Complete(err)
	}()
}

// do submits op and waits, implementing the blocking Verbs methods.
func (c *wanConn) do(op *rdma.Op) error {
	ch := make(chan struct{})
	op.Done = func(*rdma.Op) { close(ch) }
	c.Submit(op)
	<-ch
	return op.Err
}

// Read implements rdma.Verbs.
func (c *wanConn) Read(region rdma.RegionID, offset uint64, buf []byte) error {
	return c.do(&rdma.Op{Kind: rdma.OpRead, Region: region, Offset: offset, Data: buf})
}

// Write implements rdma.Verbs.
func (c *wanConn) Write(region rdma.RegionID, offset uint64, data []byte) error {
	return c.do(&rdma.Op{Kind: rdma.OpWrite, Region: region, Offset: offset, Data: data})
}

// CompareAndSwap implements rdma.Verbs.
func (c *wanConn) CompareAndSwap(region rdma.RegionID, offset uint64, expect, swap uint64) (uint64, error) {
	op := &rdma.Op{Kind: rdma.OpCAS, Region: region, Offset: offset, Expect: expect, Swap: swap}
	if err := c.do(op); err != nil {
		return 0, err
	}
	return op.Old, nil
}

// Close implements rdma.Verbs.
func (c *wanConn) Close() error { return c.inner.Close() }

// PipelineStats passes through to the inner transport's counters.
func (c *wanConn) PipelineStats() rdma.PipelineStats {
	if ps, ok := c.inner.(rdma.PipelineStatser); ok {
		return ps.PipelineStats()
	}
	return rdma.PipelineStats{}
}

// cloneOp copies an op, including its write payload, so the clone outlives
// the submitter's buffers.
func cloneOp(op *rdma.Op) *rdma.Op {
	s := &rdma.Op{
		Kind:   op.Kind,
		Region: op.Region,
		Offset: op.Offset,
		Expect: op.Expect,
		Swap:   op.Swap,
		Done:   func(*rdma.Op) {},
	}
	switch op.Kind {
	case rdma.OpWrite:
		s.Data = append([]byte(nil), op.Data...)
	case rdma.OpRead:
		s.Data = make([]byte, len(op.Data))
	}
	return s
}
