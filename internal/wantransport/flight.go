package wantransport

import (
	"sort"
	"time"

	"github.com/repro/sift/internal/netsim"
)

// flightTime simulates delivering one logical transfer of size bytes over
// link and returns the elapsed simulated time. ok=false means the retry
// budget expired first. A non-nil error means the path is administratively
// dead; the caller falls through to the real transport to surface it.
//
// With FEC enabled, each attempt sends k data + r parity shards and the
// flight completes when the k-th surviving shard lands (progressive decode —
// the receiver needs any k). With FEC disabled, the attempt degenerates to
// selective-repeat ARQ: every packet must land, and each round of misses
// costs a full ack timeout before the retransmission goes out. That timeout
// asymmetry — parity masks loss inline, ARQ pays an RTO per loss event — is
// the entire reason this package exists.
func (t *Transport) flightTime(link Link, size int) (elapsed time.Duration, ok bool, err error) {
	t.flights.Add(1)
	if t.cfg.DisableFEC {
		return t.arqTime(link, size)
	}

	k := t.cfg.Data
	chunk := (size + k - 1) / k
	if chunk == 0 {
		chunk = 1
	}
	wire := shardHeaderSize + chunk
	delays := make([]time.Duration, 0, k+t.cfg.MaxParity)
	for attempt := 0; ; attempt++ {
		r := t.parity()
		delays = delays[:0]
		lost, dataLost := 0, 0
		for i := 0; i < k+r; i++ {
			d, delivered, err := link.Send(wire)
			if err != nil {
				return elapsed, false, err
			}
			t.shards.Add(1)
			if delivered {
				delays = append(delays, d)
			} else {
				lost++
				t.shardsLost.Add(1)
				if i < k {
					dataLost++
				}
			}
		}
		t.observeLoss(lost, k+r)
		if len(delays) >= k {
			sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
			elapsed += delays[k-1]
			if dataLost > 0 {
				t.fecRecovered.Add(1)
			}
			return elapsed, true, nil
		}
		t.retransmits.Add(1)
		elapsed += t.ackTimeout(attempt)
		if elapsed >= t.cfg.RetryBudget {
			t.gaveUp.Add(1)
			return t.cfg.RetryBudget, false, nil
		}
	}
}

// arqTime is the FEC-off baseline: selective-repeat retransmission where
// every MTU packet must be delivered and each miss round stalls one timeout.
func (t *Transport) arqTime(link Link, size int) (elapsed time.Duration, ok bool, err error) {
	missing := (size + t.cfg.ShardSize - 1) / t.cfg.ShardSize
	if missing == 0 {
		missing = 1
	}
	wire := shardHeaderSize + t.cfg.ShardSize
	for attempt := 0; ; attempt++ {
		var roundMax time.Duration
		lost, sent := 0, missing
		for i := 0; i < sent; i++ {
			d, delivered, err := link.Send(wire)
			if err != nil {
				return elapsed, false, err
			}
			t.shards.Add(1)
			if delivered {
				missing--
				if d > roundMax {
					roundMax = d
				}
			} else {
				lost++
				t.shardsLost.Add(1)
			}
		}
		t.observeLoss(lost, sent)
		if missing == 0 {
			elapsed += roundMax
			return elapsed, true, nil
		}
		t.retransmits.Add(1)
		elapsed += t.ackTimeout(attempt)
		if elapsed >= t.cfg.RetryBudget {
			t.gaveUp.Add(1)
			return t.cfg.RetryBudget, false, nil
		}
	}
}

// ackTimeout is the retransmission stall for the given attempt: 1.5·RTT,
// doubling per round, capped at a quarter of the retry budget.
func (t *Transport) ackTimeout(attempt int) time.Duration {
	to := t.cfg.RTT + t.cfg.RTT/2
	for i := 0; i < attempt && i < 4; i++ {
		to *= 2
	}
	if max := t.cfg.RetryBudget / 4; to > max {
		to = max
	}
	return to
}

// Pipe is the blocking face of the transport for one link: callers charge
// simulated WAN time around operations that otherwise run at in-process
// speed.
type Pipe struct {
	t    *Transport
	link Link
}

// Pipe binds the transport to a link.
func (t *Transport) Pipe(link Link) *Pipe { return &Pipe{t: t, link: link} }

// Transport returns the shared transport (for stats).
func (p *Pipe) Transport() *Transport { return p.t }

// Transfer blocks for the simulated time of one flight carrying size bytes.
// It returns ErrBudget when the retry budget expires — the payload did not
// make it in time and the caller should treat the exchange as timed out.
func (p *Pipe) Transfer(size int) error {
	d, ok, err := p.t.flightTime(p.link, size)
	if err != nil {
		return err
	}
	netsim.Sleep(d)
	if !ok {
		return ErrBudget
	}
	return nil
}

// RoundTrip charges a request flight and a response flight back to back.
func (p *Pipe) RoundTrip(reqSize, respSize int) error {
	if err := p.Transfer(reqSize); err != nil {
		return err
	}
	return p.Transfer(respSize)
}
