// Package wantransport makes Sift's client↔coordinator and replication
// paths usable across lossy, high-RTT links. The in-DC transport assumes a
// reliable fabric where every loss is a fault; across a WAN, loss is weather.
// Retransmit-on-timeout (ARQ) turns each lost packet into a full RTO stall —
// at 40ms RTT a 1% loss rate costs more in stalls than in bytes. The fix,
// borrowed from kcptun-style tunnels, is forward error correction at the
// datagram level: each logical transfer ("flight") is split into k data
// shards plus r parity shards from the internal/erasure Cauchy Reed-Solomon
// code, and the receiver reconstructs the flight from any k of the k+r
// shards, masking loss without waiting for a retransmit round trip.
//
// The redundancy ratio r/k adapts online: every flight reports its observed
// shard loss into an EWMA, and the next flight sizes its parity so that
// expected loss times a safety factor is covered. A retry budget tuned for
// 10–100ms RTTs bounds how long a flight is retried before the transfer
// reports a deadline, which feeds the caller's normal retry/health machinery.
package wantransport

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/erasure"
	"github.com/repro/sift/internal/rdma"
)

// ErrBudget reports that a transfer's retry budget expired before a flight
// got through. It wraps rdma.ErrDeadline so the existing per-op timeout
// handling (client retries, straggler accounting) applies unchanged.
var ErrBudget = fmt.Errorf("wantransport: flight retry budget exhausted: %w", rdma.ErrDeadline)

// Config tunes the FEC transport.
type Config struct {
	// Data is k, the number of data shards per flight (default 4).
	Data int
	// MinParity and MaxParity bound r, the adaptive parity shard count
	// (defaults 1 and Data).
	MinParity int
	MaxParity int
	// ShardSize is the target datagram payload per shard (default 1200
	// bytes — inside a 1500 MTU with headers to spare).
	ShardSize int
	// RTT is the expected link round-trip; it sets the ack-timeout base for
	// retransmissions (default 40ms).
	RTT time.Duration
	// RetryBudget bounds the total simulated time spent retrying one flight
	// before the transfer gives up with ErrBudget (default max(10·RTT, 400ms)).
	RetryBudget time.Duration
	// LossAlpha is the smoothing factor of the shard-loss EWMA (default 0.1).
	LossAlpha float64
	// Safety scales the estimated loss when sizing parity: r covers
	// Safety × estimated-loss × k shards (default 3 — bursty loss clusters,
	// so provisioning for the mean alone under-protects).
	Safety float64
	// DisableFEC switches the transport to plain selective-repeat ARQ over
	// the same lossy link — the baseline the degradation curve is measured
	// against.
	DisableFEC bool
}

func (c Config) withDefaults() Config {
	if c.Data <= 0 {
		c.Data = 4
	}
	if c.MinParity <= 0 {
		c.MinParity = 1
	}
	if c.MaxParity <= 0 {
		c.MaxParity = c.Data
	}
	if c.MaxParity < c.MinParity {
		c.MaxParity = c.MinParity
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 1200
	}
	if c.RTT <= 0 {
		c.RTT = 40 * time.Millisecond
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 10 * c.RTT
		if c.RetryBudget < 400*time.Millisecond {
			c.RetryBudget = 400 * time.Millisecond
		}
	}
	if c.LossAlpha <= 0 {
		c.LossAlpha = 0.1
	}
	if c.Safety <= 0 {
		c.Safety = 3
	}
	return c
}

// Stats is a snapshot of the transport's counters.
type Stats struct {
	Flights      uint64  // logical transfers attempted
	Shards       uint64  // datagrams sent (data + parity + retransmissions)
	ShardsLost   uint64  // datagrams the link dropped
	FECRecovered uint64  // flights that needed parity to decode
	Retransmits  uint64  // flight retransmission rounds
	GaveUp       uint64  // transfers that exhausted the retry budget
	LossEstimate float64 // current smoothed shard-loss rate
	Redundancy   float64 // current r/k ratio
}

// Transport owns the adaptive-redundancy state shared by every link wrapped
// by one cluster: the loss EWMA, erasure codes per (k,r) shape, and counters.
type Transport struct {
	cfg Config

	lossBits atomic.Uint64 // math.Float64bits of the loss EWMA

	flights      atomic.Uint64
	shards       atomic.Uint64
	shardsLost   atomic.Uint64
	fecRecovered atomic.Uint64
	retransmits  atomic.Uint64
	gaveUp       atomic.Uint64

	mu    sync.Mutex
	codes map[int]*erasure.Code // keyed by parity count r; k is fixed
}

// New creates a Transport with the given configuration.
func New(cfg Config) *Transport {
	return &Transport{cfg: cfg.withDefaults(), codes: make(map[int]*erasure.Code)}
}

// Config returns the resolved configuration.
func (t *Transport) Config() Config { return t.cfg }

// LossEstimate returns the smoothed per-shard loss rate.
func (t *Transport) LossEstimate() float64 {
	return math.Float64frombits(t.lossBits.Load())
}

// observeLoss folds one flight's shard outcome into the loss EWMA.
func (t *Transport) observeLoss(lost, sent int) {
	if sent <= 0 {
		return
	}
	sample := float64(lost) / float64(sent)
	for {
		old := t.lossBits.Load()
		cur := math.Float64frombits(old)
		next := cur + t.cfg.LossAlpha*(sample-cur)
		if t.lossBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// parity returns the parity shard count the current loss estimate calls for:
// enough to cover Safety × loss × k expected losses, clamped to the
// configured bounds. This is the control loop's actuator — loss up, r up.
func (t *Transport) parity() int {
	r := int(math.Ceil(float64(t.cfg.Data) * t.LossEstimate() * t.cfg.Safety))
	if r < t.cfg.MinParity {
		r = t.cfg.MinParity
	}
	if r > t.cfg.MaxParity {
		r = t.cfg.MaxParity
	}
	return r
}

// Redundancy returns the current r/k ratio the controller would use.
func (t *Transport) Redundancy() float64 {
	if t.cfg.DisableFEC {
		return 0
	}
	return float64(t.parity()) / float64(t.cfg.Data)
}

// code returns the erasure code for the transport's k and the given r.
func (t *Transport) code(r int) (*erasure.Code, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.codes[r]; ok {
		return c, nil
	}
	c, err := erasure.New(t.cfg.Data, r)
	if err != nil {
		return nil, err
	}
	t.codes[r] = c
	return c, nil
}

// Snapshot returns the transport counters.
func (t *Transport) Snapshot() Stats {
	return Stats{
		Flights:      t.flights.Load(),
		Shards:       t.shards.Load(),
		ShardsLost:   t.shardsLost.Load(),
		FECRecovered: t.fecRecovered.Load(),
		Retransmits:  t.retransmits.Load(),
		GaveUp:       t.gaveUp.Load(),
		LossEstimate: t.LossEstimate(),
		Redundancy:   t.Redundancy(),
	}
}
