package wantransport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/repro/sift/internal/erasure"
)

// Shard wire format. Every datagram of a flight is self-describing so the
// receiver can reassemble flights from any k survivors, in any order:
//
//	offset size field
//	0      2    magic 0x5AFE
//	2      8    flight ID
//	10     1    shard index (0..k-1 data, k..k+r-1 parity)
//	11     1    k (data shard count)
//	12     1    r (parity shard count)
//	13     1    reserved
//	14     4    original payload length (bytes, before padding)
//	18     ...  chunk bytes (payload_padded/k per shard)
const (
	shardHeaderSize = 18
	shardMagic      = 0x5AFE
)

// ErrBadShard reports a datagram that does not parse as a flight shard.
var ErrBadShard = errors.New("wantransport: malformed shard")

// Shard is one parsed datagram of a flight.
type Shard struct {
	FlightID   uint64
	Index      int
	K, R       int
	PayloadLen int
	Chunk      []byte
}

// EncodeFlight splits payload into k data chunks, pads the tail chunk,
// computes r parity chunks with code (which must have shape (k, r)), and
// returns the k+r framed shard datagrams.
func EncodeFlight(code *erasure.Code, flightID uint64, payload []byte) ([][]byte, error) {
	k, r := code.K(), code.M()
	chunkLen := (len(payload) + k - 1) / k
	if chunkLen == 0 {
		chunkLen = 1
	}
	block := make([]byte, k*chunkLen)
	copy(block, payload)
	chunks, err := code.Encode(block)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, k+r)
	for i, ch := range chunks {
		d := make([]byte, shardHeaderSize+len(ch))
		binary.BigEndian.PutUint16(d[0:], shardMagic)
		binary.BigEndian.PutUint64(d[2:], flightID)
		d[10] = byte(i)
		d[11] = byte(k)
		d[12] = byte(r)
		binary.BigEndian.PutUint32(d[14:], uint32(len(payload)))
		copy(d[shardHeaderSize:], ch)
		out[i] = d
	}
	return out, nil
}

// ParseShard decodes one shard datagram.
func ParseShard(d []byte) (Shard, error) {
	if len(d) < shardHeaderSize {
		return Shard{}, fmt.Errorf("%w: %d bytes", ErrBadShard, len(d))
	}
	if binary.BigEndian.Uint16(d[0:]) != shardMagic {
		return Shard{}, fmt.Errorf("%w: bad magic", ErrBadShard)
	}
	s := Shard{
		FlightID:   binary.BigEndian.Uint64(d[2:]),
		Index:      int(d[10]),
		K:          int(d[11]),
		R:          int(d[12]),
		PayloadLen: int(binary.BigEndian.Uint32(d[14:])),
		Chunk:      d[shardHeaderSize:],
	}
	if s.K < 1 || s.Index >= s.K+s.R {
		return Shard{}, fmt.Errorf("%w: index %d outside k=%d r=%d", ErrBadShard, s.Index, s.K, s.R)
	}
	if s.PayloadLen > s.K*len(s.Chunk) {
		return Shard{}, fmt.Errorf("%w: payload %d exceeds block %d", ErrBadShard, s.PayloadLen, s.K*len(s.Chunk))
	}
	return s, nil
}

// Assembler reassembles flights from shards arriving in any order across
// interleaved flights. Decode is progressive: the flight completes the moment
// any k distinct shards are in, without waiting for stragglers.
type Assembler struct {
	flights map[uint64]*flightAsm
}

type flightAsm struct {
	k, r       int
	payloadLen int
	have       int
	chunks     [][]byte
	done       bool
}

// NewAssembler creates an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{flights: make(map[uint64]*flightAsm)}
}

// Add feeds one received datagram. When the shard completes its flight, Add
// returns the reassembled payload and done=true; duplicate and post-decode
// shards are ignored. The decode may have required parity chunks, in which
// case recovered=true — the caller counts these for the FEC metrics.
func (a *Assembler) Add(datagram []byte) (payload []byte, done, recovered bool, err error) {
	s, err := ParseShard(datagram)
	if err != nil {
		return nil, false, false, err
	}
	fa := a.flights[s.FlightID]
	if fa == nil {
		fa = &flightAsm{
			k: s.K, r: s.R,
			payloadLen: s.PayloadLen,
			chunks:     make([][]byte, s.K+s.R),
		}
		a.flights[s.FlightID] = fa
	}
	if fa.done {
		return nil, false, false, nil
	}
	if s.K != fa.k || s.R != fa.r || s.Index >= len(fa.chunks) {
		return nil, false, false, fmt.Errorf("%w: flight %d shape mismatch", ErrBadShard, s.FlightID)
	}
	if fa.chunks[s.Index] != nil {
		return nil, false, false, nil // duplicate
	}
	fa.chunks[s.Index] = append([]byte(nil), s.Chunk...)
	fa.have++
	if fa.have < fa.k {
		return nil, false, false, nil
	}

	fa.done = true
	for i := 0; i < fa.k; i++ {
		if fa.chunks[i] == nil {
			recovered = true
			break
		}
	}
	code, err := erasure.New(fa.k, fa.r)
	if err != nil {
		return nil, false, false, err
	}
	block, err := code.Decode(fa.chunks)
	if err != nil {
		return nil, false, false, err
	}
	delete(a.flights, s.FlightID)
	return block[:fa.payloadLen], true, recovered, nil
}

// Pending returns how many incomplete flights the assembler holds.
func (a *Assembler) Pending() int { return len(a.flights) }
