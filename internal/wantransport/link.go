package wantransport

import (
	"time"

	"github.com/repro/sift/internal/netsim"
)

// Link is one unreliable datagram path. Send computes the fate of a single
// datagram: its one-way delivery delay and whether it survived. It never
// sleeps — the flight scheduler turns delays into simulated time itself.
// A non-nil error means the path is administratively dead (node down,
// partition), which is distinct from ordinary loss.
type Link interface {
	Send(size int) (delay time.Duration, delivered bool, err error)
}

// FabricLink sends datagrams between two named fabric endpoints, honoring the
// fabric's kill/partition state and the link's registered impairment profile.
type FabricLink struct {
	Fabric   *netsim.Fabric
	Src, Dst string
}

// Send implements Link.
func (l FabricLink) Send(size int) (time.Duration, bool, error) {
	return l.Fabric.SendDatagram(l.Src, l.Dst, size)
}

// ImpairedLink applies an impairment profile directly, for paths that are not
// fabric links — the simulated client↔coordinator WAN hop.
type ImpairedLink struct {
	Imp *netsim.Impairment
}

// Send implements Link.
func (l ImpairedLink) Send(size int) (time.Duration, bool, error) {
	d, ok := l.Imp.Datagram(size)
	return d, ok, nil
}
