package wantransport

import (
	"sync"
	"time"
)

// Batcher coalesces small concurrent transfers into shared flights. Eight
// clients each sending a 1KB request as its own k+r shard flight wastes most
// of every shard; batched, they amortize the parity overhead and halve the
// datagram count. Coalescing is congestion-aware: as the loss estimate
// rises, the batch size cap shrinks, because big flights under bursty loss
// lose more shards per burst and retransmit as one unit.
type Batcher struct {
	p *Pipe

	// window is how long the first transfer of a batch waits for company.
	window time.Duration
	// maxBytes caps a batch under clean-link conditions.
	maxBytes int

	mu  sync.Mutex
	cur *batch

	batches uint64
	members uint64
}

type batch struct {
	size  int
	count int
	done  chan struct{}
	err   error
}

// Batcher creates a coalescer over the given link. window ≤ 0 defaults to
// RTT/16 (a small fraction of the latency already being paid) and maxBytes
// ≤ 0 defaults to 8 shard payloads.
func (t *Transport) Batcher(link Link, window time.Duration, maxBytes int) *Batcher {
	if window <= 0 {
		window = t.cfg.RTT / 16
		if window < 500*time.Microsecond {
			window = 500 * time.Microsecond
		}
	}
	if maxBytes <= 0 {
		maxBytes = 8 * t.cfg.ShardSize
	}
	return &Batcher{p: t.Pipe(link), window: window, maxBytes: maxBytes}
}

// effectiveMax is the congestion-scaled batch cap: at a 10% loss estimate
// the cap halves, at 30% it quarters (never below one shard payload).
func (b *Batcher) effectiveMax() int {
	loss := b.p.t.LossEstimate()
	max := int(float64(b.maxBytes) / (1 + 5*loss))
	if min := b.p.t.cfg.ShardSize; max < min {
		max = min
	}
	return max
}

// Do charges size bytes across the link, sharing a flight with any other
// transfers that arrive within the coalescing window. It blocks until the
// shared flight lands (or its budget expires).
func (b *Batcher) Do(size int) error {
	b.mu.Lock()
	bt := b.cur
	if bt == nil {
		bt = &batch{done: make(chan struct{})}
		b.cur = bt
		b.batches++
		time.AfterFunc(b.window, func() { b.flush(bt) })
	}
	bt.size += size
	bt.count++
	b.members++
	if bt.size >= b.effectiveMax() {
		b.cur = nil
		b.mu.Unlock()
		b.run(bt)
	} else {
		b.mu.Unlock()
	}
	<-bt.done
	return bt.err
}

// flush fires when a batch's window expires; it runs the batch unless a size
// overflow already did.
func (b *Batcher) flush(bt *batch) {
	b.mu.Lock()
	if b.cur != bt {
		b.mu.Unlock()
		return
	}
	b.cur = nil
	b.mu.Unlock()
	b.run(bt)
}

func (b *Batcher) run(bt *batch) {
	bt.err = b.p.Transfer(bt.size)
	close(bt.done)
}

// BatchStats reports how many flights were sent and how many transfers they
// carried — members/batches is the achieved coalescing factor.
func (b *Batcher) BatchStats() (batches, members uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.batches, b.members
}
