package wantransport

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/repro/sift/internal/erasure"
	"github.com/repro/sift/internal/netsim"
	"github.com/repro/sift/internal/rdma"
)

// TestFrameRoundTrip pushes flights through encode → lossy reorder → assemble
// and checks byte-exact reconstruction whenever ≥ k shards survive.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	code, err := erasure.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	asm := NewAssembler()
	for flight := uint64(0); flight < 200; flight++ {
		payload := make([]byte, 1+rng.Intn(4000))
		rng.Read(payload)
		shards, err := EncodeFlight(code, flight, payload)
		if err != nil {
			t.Fatal(err)
		}
		// Drop up to r shards, then shuffle: any-k progressive decode must
		// still reproduce the payload.
		drop := rng.Intn(3)
		kept := make([][]byte, 0, len(shards))
		for i, s := range shards {
			if i < drop {
				continue
			}
			kept = append(kept, s)
		}
		rng.Shuffle(len(kept), func(i, j int) { kept[i], kept[j] = kept[j], kept[i] })
		var got []byte
		var done, recovered bool
		for _, s := range kept {
			got, done, recovered, err = asm.Add(s)
			if err != nil {
				t.Fatalf("flight %d: %v", flight, err)
			}
			if done {
				break
			}
		}
		if !done {
			t.Fatalf("flight %d: not reassembled from %d shards", flight, len(kept))
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("flight %d: payload mismatch", flight)
		}
		if drop > 0 && !recovered {
			// Only guaranteed when a *data* shard was dropped; drop always
			// removes shard 0 first, which is a data shard.
			t.Fatalf("flight %d: dropped %d data shards but decode not flagged recovered", flight, drop)
		}
	}
	if asm.Pending() != 0 {
		t.Fatalf("assembler leaked %d incomplete flights", asm.Pending())
	}
}

// perfectLink delivers everything instantly.
type perfectLink struct{}

func (perfectLink) Send(int) (time.Duration, bool, error) { return time.Millisecond, true, nil }

// lossyLink drops datagrams with a fixed probability.
type lossyLink struct {
	loss *netsim.Bernoulli
}

func (l lossyLink) Send(int) (time.Duration, bool, error) {
	return time.Millisecond, !l.loss.Lose(), nil
}

// deadLink models a partitioned path.
type deadLink struct{}

func (deadLink) Send(int) (time.Duration, bool, error) { return 0, false, netsim.ErrUnreachable }

// TestAdaptiveRedundancy: the parity count must rise with the measured loss
// rate and fall back once the link cleans up.
func TestAdaptiveRedundancy(t *testing.T) {
	tr := New(Config{Data: 4, MinParity: 1, MaxParity: 4, RTT: 10 * time.Millisecond})
	if r := tr.parity(); r != 1 {
		t.Fatalf("clean-start parity %d, want MinParity 1", r)
	}
	bad := lossyLink{loss: netsim.NewBernoulli(0.3, 1)}
	for i := 0; i < 200; i++ {
		tr.flightTime(bad, 4096)
	}
	if est := tr.LossEstimate(); est < 0.15 {
		t.Fatalf("loss estimate %.3f after 30%% loss, want ≥ 0.15", est)
	}
	rHigh := tr.parity()
	if rHigh < 2 {
		t.Fatalf("parity %d under 30%% loss, want ≥ 2", rHigh)
	}
	clean := perfectLink{}
	for i := 0; i < 200; i++ {
		tr.flightTime(clean, 4096)
	}
	if r := tr.parity(); r >= rHigh {
		t.Fatalf("parity %d did not decay after link recovered (was %d)", r, rHigh)
	}
}

// TestFECMasksLoss: at moderate loss, flights should mostly complete without
// retransmission rounds — parity absorbs the losses — where the ARQ baseline
// pays a timeout for nearly every loss event.
func TestFECMasksLoss(t *testing.T) {
	mk := func(disable bool, seed int64) Stats {
		tr := New(Config{Data: 4, MinParity: 2, MaxParity: 4, RTT: 10 * time.Millisecond, DisableFEC: disable})
		link := lossyLink{loss: netsim.NewBernoulli(0.08, seed)}
		for i := 0; i < 400; i++ {
			if _, ok, err := tr.flightTime(link, 4000); err != nil || !ok {
				t.Fatalf("flight %d failed: ok=%v err=%v", i, ok, err)
			}
		}
		return tr.Snapshot()
	}
	fec := mk(false, 11)
	arq := mk(true, 11)
	if fec.FECRecovered == 0 {
		t.Fatal("no flights recovered via parity at 8% loss")
	}
	if fec.Retransmits*4 > arq.Retransmits {
		t.Fatalf("FEC retransmit rounds %d not ≪ ARQ's %d", fec.Retransmits, arq.Retransmits)
	}
}

// TestRetryBudgetGivesUp: a fully lossy (but reachable) link must exhaust the
// retry budget and surface ErrBudget, which is retriable as a deadline.
func TestRetryBudgetGivesUp(t *testing.T) {
	tr := New(Config{Data: 2, RTT: time.Millisecond, RetryBudget: 20 * time.Millisecond})
	link := lossyLink{loss: netsim.NewBernoulli(1.0, 1)}
	err := tr.Pipe(link).Transfer(1000)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err=%v, want ErrBudget", err)
	}
	if !errors.Is(err, rdma.ErrDeadline) {
		t.Fatal("ErrBudget must wrap rdma.ErrDeadline so existing retry machinery applies")
	}
	if s := tr.Snapshot(); s.GaveUp != 1 {
		t.Fatalf("GaveUp=%d, want 1", s.GaveUp)
	}
}

// TestPipeDeadPath: an administratively dead link surfaces the fabric error.
func TestPipeDeadPath(t *testing.T) {
	tr := New(Config{})
	if err := tr.Pipe(deadLink{}).Transfer(100); !errors.Is(err, netsim.ErrUnreachable) {
		t.Fatalf("err=%v, want ErrUnreachable", err)
	}
}

// TestBatcherCoalesces: concurrent transfers within a window share flights.
func TestBatcherCoalesces(t *testing.T) {
	tr := New(Config{Data: 4, RTT: 20 * time.Millisecond})
	b := tr.Batcher(perfectLink{}, 5*time.Millisecond, 64<<10)
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- b.Do(512) }()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	batches, members := b.BatchStats()
	if members != n {
		t.Fatalf("members=%d, want %d", members, n)
	}
	if batches >= n/2 {
		t.Fatalf("%d batches for %d transfers: no coalescing", batches, n)
	}
}

// TestBatcherCongestionShrinksBatches: a high loss estimate must lower the
// batch size cap.
func TestBatcherCongestionShrinksBatches(t *testing.T) {
	tr := New(Config{Data: 4, RTT: 20 * time.Millisecond})
	b := tr.Batcher(perfectLink{}, time.Millisecond, 16<<10)
	clean := b.effectiveMax()
	for i := 0; i < 100; i++ {
		tr.observeLoss(1, 4) // sustained 25% loss
	}
	congested := b.effectiveMax()
	if congested >= clean {
		t.Fatalf("batch cap %d under loss, want < clean cap %d", congested, clean)
	}
}

// TestWrapChargesLatency: ops through a wrapped connection must take at
// least the link's round-trip propagation time.
func TestWrapChargesLatency(t *testing.T) {
	net := rdma.NewNetwork(netsim.NewFabric(nil))
	node := rdma.NewNode("mem")
	node.Register(1, rdma.NewRegion(64, false))
	net.AddNode(node)
	inner, err := net.Dial("cpu", "mem", rdma.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	im := &netsim.Impairment{OneWay: 5 * time.Millisecond}
	im.Seed(1)
	tr := New(Config{Data: 4, RTT: 10 * time.Millisecond})
	v := tr.Wrap(inner, ImpairedLink{Imp: im})
	defer v.Close()

	start := time.Now()
	if err := v.Write(1, 0, []byte("hello wan")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("write took %v, want ≥ one RTT (10ms)", d)
	}
	buf := make([]byte, 9)
	if err := v.Read(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello wan" {
		t.Fatalf("read back %q", buf)
	}
}

// TestWrapBudgetDeadline: when the link is hopeless, the submitter gets
// rdma.ErrDeadline after the budget — and the op still executes late, so the
// remote state matches a real lossy network's eventual delivery.
func TestWrapBudgetDeadline(t *testing.T) {
	net := rdma.NewNetwork(netsim.NewFabric(nil))
	node := rdma.NewNode("mem")
	node.Register(1, rdma.NewRegion(64, false))
	net.AddNode(node)
	inner, err := net.Dial("cpu", "mem", rdma.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	im := &netsim.Impairment{OneWay: time.Millisecond, Loss: netsim.NewBernoulli(1.0, 1)}
	im.Seed(1)
	tr := New(Config{Data: 2, RTT: 2 * time.Millisecond, RetryBudget: 30 * time.Millisecond})
	v := tr.Wrap(inner, ImpairedLink{Imp: im})
	defer v.Close()

	if err := v.Write(1, 0, []byte{42}); !errors.Is(err, rdma.ErrDeadline) {
		t.Fatalf("err=%v, want ErrDeadline", err)
	}
	// The shadow executes late; verify through a clean connection.
	direct, err := net.Dial("cpu2", "mem", rdma.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		var b [1]byte
		if err := direct.Read(1, 0, b[:]); err != nil {
			t.Fatal(err)
		}
		if b[0] == 42 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("budget-expired write never executed late")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
