package linearize

import (
	"fmt"
	"testing"
	"time"
)

func put(client int, key, in string, inv, ret int64) Op {
	return Op{ClientID: client, Kind: KindPut, Key: key, In: in, Invoke: inv, Return: ret}
}

func get(client int, key, out string, inv, ret int64) Op {
	return Op{ClientID: client, Kind: KindGet, Key: key, Out: out, Invoke: inv, Return: ret}
}

func getNone(client int, key string, inv, ret int64) Op {
	return Op{ClientID: client, Kind: KindGet, Key: key, NotFound: true, Invoke: inv, Return: ret}
}

func del(client int, key string, inv, ret int64) Op {
	return Op{ClientID: client, Kind: KindDelete, Key: key, Invoke: inv, Return: ret}
}

func TestCheckTable(t *testing.T) {
	cases := []struct {
		name string
		hist []Op
		want Result
	}{
		{"empty", nil, Ok},
		{"sequential put then get", []Op{
			put(1, "k", "v1", 1, 2),
			get(1, "k", "v1", 3, 4),
		}, Ok},
		{"get before any put sees absence", []Op{
			getNone(1, "k", 1, 2),
			put(2, "k", "v1", 3, 4),
		}, Ok},
		{"concurrent puts, get picks a serialization", []Op{
			put(1, "k", "a", 1, 4),
			put(2, "k", "b", 2, 5),
			get(3, "k", "a", 6, 7), // legal: b then a
		}, Ok},
		{"read overlapping a put may see either value", []Op{
			put(1, "k", "old", 1, 2),
			put(1, "k", "new", 3, 6),
			get(2, "k", "old", 4, 5), // get overlaps the put: old is fine
		}, Ok},
		{"delete then absence", []Op{
			put(1, "k", "v1", 1, 2),
			del(1, "k", 3, 4),
			getNone(2, "k", 5, 6),
		}, Ok},
		{"ambiguous put that took effect", []Op{
			put(1, "k", "v1", 1, openReturn),
			get(2, "k", "v1", 2, 3),
		}, Ok},
		{"ambiguous put that never took effect", []Op{
			put(1, "k", "v1", 1, openReturn),
			getNone(2, "k", 2, 3),
		}, Ok},
		{"ambiguous delete may land between reads", []Op{
			put(1, "k", "v1", 1, 2),
			del(2, "k", 3, openReturn),
			get(3, "k", "v1", 4, 5),
			getNone(3, "k", 6, 7),
		}, Ok},
		{"stale read", []Op{
			put(1, "k", "v1", 1, 2),
			put(1, "k", "v2", 3, 4),
			get(2, "k", "v1", 5, 6), // both puts returned before the get
		}, Nonlinearizable},
		{"lost update", []Op{
			put(1, "k", "v1", 1, 2),
			get(2, "k", "v1", 3, 4),
			put(1, "k", "v2", 5, 6),
			get(2, "k", "v1", 7, 8), // v2 vanished with no intervening write
		}, Nonlinearizable},
		{"cross-client reorder", []Op{
			put(1, "k", "a", 1, 10),
			put(2, "k", "b", 2, 11),
			get(3, "k", "a", 3, 4),
			get(3, "k", "b", 5, 6),
			get(3, "k", "a", 7, 8), // a, b, a with only two writes
		}, Nonlinearizable},
		{"absence after committed put", []Op{
			put(1, "k", "v1", 1, 2),
			getNone(2, "k", 3, 4),
		}, Nonlinearizable},
		{"value never written", []Op{
			put(1, "k", "v1", 1, 2),
			get(2, "k", "ghost", 3, 4),
		}, Nonlinearizable},
		{"ambiguous put cannot explain a foreign value", []Op{
			put(1, "k", "v1", 1, openReturn),
			get(2, "k", "ghost", 2, 3),
		}, Nonlinearizable},
		{"other keys do not excuse a bad one", []Op{
			put(1, "a", "v1", 1, 2),
			get(2, "a", "v1", 3, 4),
			put(1, "b", "v1", 5, 6),
			getNone(2, "b", 7, 8),
		}, Nonlinearizable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Check(tc.hist, DefaultTimeout)
			if rep.Result != tc.want {
				t.Fatalf("Check = %v (key %q), want %v", rep.Result, rep.Key, tc.want)
			}
			if rep.Ops != len(tc.hist) {
				t.Fatalf("Report.Ops = %d, want %d", rep.Ops, len(tc.hist))
			}
		})
	}
}

func TestCheckReportsOffendingKey(t *testing.T) {
	hist := []Op{
		put(1, "good", "v", 1, 2),
		get(2, "good", "v", 3, 4),
		put(1, "bad", "v1", 5, 6),
		get(2, "bad", "ghost", 7, 8),
	}
	rep := Check(hist, DefaultTimeout)
	if rep.Result != Nonlinearizable || rep.Key != "bad" {
		t.Fatalf("got %v on key %q, want Nonlinearizable on \"bad\"", rep.Result, rep.Key)
	}
	if rep.Keys != 2 {
		t.Fatalf("Report.Keys = %d, want 2", rep.Keys)
	}
}

// hardHistory builds n open puts of distinct values plus a final read of a
// value none of them wrote, forcing the search to reject every subset of the
// open puts before concluding.
func hardHistory(n int) []Op {
	hist := make([]Op, 0, n+1)
	for i := 0; i < n; i++ {
		hist = append(hist, put(i, "k", fmt.Sprintf("v%d", i), int64(i+1), openReturn))
	}
	hist = append(hist, get(99, "k", "ghost", int64(n+1), int64(n+2)))
	return hist
}

func TestCheckUndecidedOnTimeout(t *testing.T) {
	rep := Check(hardHistory(26), time.Nanosecond)
	if rep.Result != Undecided {
		t.Fatalf("Check = %v, want Undecided", rep.Result)
	}
}

func TestCheckExhaustsSmallHardHistory(t *testing.T) {
	rep := Check(hardHistory(10), DefaultTimeout)
	if rep.Result != Nonlinearizable {
		t.Fatalf("Check = %v, want Nonlinearizable", rep.Result)
	}
}

func TestResultString(t *testing.T) {
	for r, want := range map[Result]string{
		Ok:              "linearizable",
		Nonlinearizable: "NOT linearizable",
		Undecided:       "undecided (checker timeout)",
	} {
		if got := r.String(); got != want {
			t.Fatalf("Result(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}
