// Package linearize verifies client-visible consistency: it records a
// concurrent history of key-value operations (Put/Get/Delete per key) and
// checks it against the linearizable per-key register model with an
// embedded Wing–Gong/Lowe-style search.
//
// This is the correctness analogue of internal/faultrdma: the fault
// injector produces the failure schedules, this package decides whether the
// cluster's responses under those schedules could have come from any legal
// sequential execution. The paper's core safety claim (§5) — elections and
// fencing through CAS on the memory nodes keep the store linearizable
// across coordinator failovers — is exactly the property checked here, and
// "The Impact of RDMA on Agreement" argues such permission/fencing
// reasoning is subtle enough to deserve mechanical verification.
//
// History model. Every operation is recorded as an invoke/return pair with
// logical timestamps drawn from one atomic sequence, so the recorded order
// is a valid real-time order: if operation A returned before operation B
// was invoked, A's Return precedes B's Invoke. Operations whose outcome the
// client cannot know — a Put that exhausted its retry budget after at least
// one send (sift.ErrAmbiguous), or a client that died mid-call — are kept
// as *open* operations (Return = ∞): the checker may linearize them at any
// point after their invocation or, equivalently, at the very end of the
// history where an unapplied write is observable by nobody. Failed reads
// carry no information and are discarded.
package linearize

import (
	"math"
	"sync"
)

// Kind is an operation type in the per-key register model.
type Kind uint8

// Operation kinds.
const (
	KindPut Kind = iota
	KindGet
	KindDelete
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindPut:
		return "put"
	case KindGet:
		return "get"
	case KindDelete:
		return "delete"
	default:
		return "unknown"
	}
}

// openReturn marks an operation whose return the client never observed: it
// may have taken effect at any time after its invocation, or never.
const openReturn = math.MaxInt64

// Op is one recorded operation. Invoke and Return are logical timestamps
// from the recorder's sequence; Return is ∞ (Ambiguous() reports true) for
// open operations.
type Op struct {
	ClientID int
	Key      string
	Kind     Kind
	In       string // value written (puts)
	Out      string // value read (gets)
	NotFound bool   // the get observed absence
	Invoke   int64
	Return   int64
}

// Ambiguous reports whether the operation is open-ended: the client never
// learned its outcome, so it may or may not have taken effect.
func (o Op) Ambiguous() bool { return o.Return == openReturn }

// Recorder collects a concurrent history. It is safe for concurrent use by
// any number of clients; one mutex-ordered sequence supplies timestamps, so
// lock-acquisition order is the recorded real-time order.
type Recorder struct {
	mu   sync.Mutex
	seq  int64
	ops  []Op
	open map[*Pending]struct{}
}

// NewRecorder creates an empty history recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[*Pending]struct{})}
}

// Pending is an invoked-but-unfinished operation. Exactly one of Commit,
// Ambiguous, or Discard finishes it; later calls are no-ops. All methods
// are nil-receiver safe so un-instrumented clients cost nothing.
type Pending struct {
	r  *Recorder
	op Op
}

// Invoke records an operation's invocation and returns its handle. A nil
// recorder returns a nil handle (recording disabled).
func (r *Recorder) Invoke(clientID int, kind Kind, key, in string) *Pending {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	p := &Pending{r: r, op: Op{
		ClientID: clientID,
		Kind:     kind,
		Key:      key,
		In:       in,
		Invoke:   r.seq,
		Return:   openReturn,
	}}
	r.open[p] = struct{}{}
	return p
}

// finish closes out the pending op. keep=false drops it from the history.
func (p *Pending) finish(ambiguous, keep bool) {
	if p == nil || p.r == nil {
		return
	}
	r := p.r
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, outstanding := r.open[p]; !outstanding {
		return
	}
	delete(r.open, p)
	if !keep {
		return
	}
	if !ambiguous {
		r.seq++
		p.op.Return = r.seq
	}
	r.ops = append(r.ops, p.op)
}

// Commit records a definite completion. For gets, out is the value read and
// notFound reports observed absence; puts and deletes ignore both.
func (p *Pending) Commit(out string, notFound bool) {
	if p != nil {
		p.op.Out = out
		p.op.NotFound = notFound
	}
	p.finish(false, true)
}

// Ambiguous records an unknown outcome: the operation stays in the history
// as open-ended (it may have taken effect any time after its invocation, or
// never). Ambiguous reads carry no information, so they are discarded
// instead.
func (p *Pending) Ambiguous() {
	if p != nil && p.op.Kind == KindGet {
		p.finish(true, false)
		return
	}
	p.finish(true, true)
}

// Discard records a definite no-effect failure (validation error, or the
// operation never reached a coordinator): the op leaves the history.
func (p *Pending) Discard() { p.finish(false, false) }

// History snapshots the recorded history. Operations still pending at
// snapshot time are treated like a crashed client's: writes become open
// operations, reads are dropped.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, 0, len(r.ops)+len(r.open))
	out = append(out, r.ops...)
	for p := range r.open {
		if p.op.Kind != KindGet {
			out = append(out, p.op)
		}
	}
	return out
}

// Len returns the number of finished operations recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
