package linearize

import (
	"fmt"
	"sync"
	"testing"
)

func TestRecorderBasic(t *testing.T) {
	r := NewRecorder()
	p := r.Invoke(1, KindPut, "k", "v1")
	p.Commit("", false)
	g := r.Invoke(1, KindGet, "k", "")
	g.Commit("v1", false)

	hist := r.History()
	if len(hist) != 2 || r.Len() != 2 {
		t.Fatalf("history length = %d (Len %d), want 2", len(hist), r.Len())
	}
	if hist[0].Invoke >= hist[0].Return || hist[0].Return >= hist[1].Invoke {
		t.Fatalf("timestamps not ordered: %+v %+v", hist[0], hist[1])
	}
	if rep := Check(hist, DefaultTimeout); rep.Result != Ok {
		t.Fatalf("recorded history not linearizable: %v", rep.Result)
	}
}

func TestRecorderAmbiguousKeepsWritesDropsReads(t *testing.T) {
	r := NewRecorder()
	r.Invoke(1, KindPut, "k", "v1").Ambiguous()
	r.Invoke(2, KindGet, "k", "").Ambiguous()
	r.Invoke(3, KindDelete, "k", "").Ambiguous()

	hist := r.History()
	if len(hist) != 2 {
		t.Fatalf("history length = %d, want 2 (put+delete kept, get dropped)", len(hist))
	}
	for _, o := range hist {
		if !o.Ambiguous() {
			t.Fatalf("op %+v should be open-ended", o)
		}
		if o.Kind == KindGet {
			t.Fatalf("ambiguous get leaked into history: %+v", o)
		}
	}
}

func TestRecorderDiscard(t *testing.T) {
	r := NewRecorder()
	r.Invoke(1, KindPut, "k", "v1").Discard()
	if len(r.History()) != 0 {
		t.Fatal("discarded op should leave the history")
	}
}

func TestRecorderFinishIsIdempotent(t *testing.T) {
	r := NewRecorder()
	p := r.Invoke(1, KindPut, "k", "v1")
	p.Commit("", false)
	p.Ambiguous()
	p.Discard()
	hist := r.History()
	if len(hist) != 1 || hist[0].Ambiguous() {
		t.Fatalf("want exactly the committed op, got %+v", hist)
	}
}

func TestRecorderSnapshotTreatsOpenOpsAsCrashed(t *testing.T) {
	r := NewRecorder()
	r.Invoke(1, KindPut, "k", "v1") // never finished
	r.Invoke(2, KindGet, "k", "")   // never finished
	hist := r.History()
	if len(hist) != 1 || hist[0].Kind != KindPut || !hist[0].Ambiguous() {
		t.Fatalf("want one open put, got %+v", hist)
	}
}

func TestNilRecorderAndPendingAreNoOps(t *testing.T) {
	var r *Recorder
	p := r.Invoke(1, KindPut, "k", "v")
	if p != nil {
		t.Fatal("nil recorder should hand out nil pendings")
	}
	p.Commit("", false)
	p.Ambiguous()
	p.Discard()
}

func TestRecorderConcurrent(t *testing.T) {
	const clients, perClient = 8, 100
	r := NewRecorder()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", c)
			for i := 0; i < perClient; i++ {
				v := fmt.Sprintf("c%d-%d", c, i)
				r.Invoke(c, KindPut, key, v).Commit("", false)
				r.Invoke(c, KindGet, key, "").Commit(v, false)
			}
		}(c)
	}
	wg.Wait()

	hist := r.History()
	if len(hist) != clients*perClient*2 {
		t.Fatalf("history length = %d, want %d", len(hist), clients*perClient*2)
	}
	seen := make(map[int64]bool, len(hist)*2)
	for _, o := range hist {
		if o.Invoke >= o.Return {
			t.Fatalf("invoke !< return: %+v", o)
		}
		if seen[o.Invoke] || seen[o.Return] {
			t.Fatalf("duplicate timestamp in %+v", o)
		}
		seen[o.Invoke], seen[o.Return] = true, true
	}
	// Each client's ops are per-key sequential puts immediately read back,
	// so the whole history must linearize.
	if rep := Check(hist, DefaultTimeout); rep.Result != Ok {
		t.Fatalf("concurrent recorded history: %v on key %q", rep.Result, rep.Key)
	}
}
