package linearize

import (
	"sort"
	"time"
)

// Result is a checker verdict.
type Result int

// Verdicts.
const (
	// Ok: the history has at least one legal linearization.
	Ok Result = iota
	// Nonlinearizable: no linearization exists — a consistency violation.
	Nonlinearizable
	// Undecided: the search hit its wall-clock timeout before deciding.
	Undecided
)

// String returns the verdict name.
func (r Result) String() string {
	switch r {
	case Ok:
		return "linearizable"
	case Nonlinearizable:
		return "NOT linearizable"
	case Undecided:
		return "undecided (checker timeout)"
	default:
		return "unknown"
	}
}

// DefaultTimeout bounds a Check call when the caller passes no timeout.
const DefaultTimeout = 10 * time.Second

// Report is a Check outcome.
type Report struct {
	Result Result
	// Key identifies the offending partition when Result is not Ok.
	Key string
	// Ops and Keys size the checked history.
	Ops  int
	Keys int
	// Elapsed is the total search time.
	Elapsed time.Duration
	// Frontier holds the earliest-invoked operations (up to a handful) that
	// the deepest partial linearization could not order — the usual place
	// to start reading a Nonlinearizable verdict.
	Frontier []Op
}

// Check verifies that history is linearizable under the per-key register
// model: each key is an independent register with Put/Get/Delete, so the
// history partitions by key (Wing–Gong locality: a history is linearizable
// iff each per-key subhistory is) and each partition is searched
// independently. The search is the WGL algorithm with memoized visited
// (linearized-set, register-state) pairs; timeout (DefaultTimeout when
// <= 0) bounds the total wall clock, and an expired search reports
// Undecided for the partition it was in rather than hanging.
//
// Partitioning is also the model's limit: cross-key atomicity (PutBatch) is
// not checked.
func Check(history []Op, timeout time.Duration) Report {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	start := time.Now()
	deadline := start.Add(timeout)

	perKey := make(map[string][]Op)
	for _, o := range history {
		perKey[o.Key] = append(perKey[o.Key], o)
	}
	keys := make([]string, 0, len(perKey))
	for k := range perKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	rep := Report{Result: Ok, Ops: len(history), Keys: len(keys)}
	for _, k := range keys {
		if res, frontier := checkKey(perKey[k], deadline); res != Ok {
			rep.Result = res
			rep.Key = k
			rep.Frontier = frontier
			break
		}
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// event is one endpoint of an operation on the doubly linked entry list.
// Invoke events carry a match pointer to their return event; lifting an
// operation splices both out, and unlift restores them from their stale
// prev/next pointers (which is why lifted nodes are never reused).
type event struct {
	op     int // index into the partition's ops
	invoke bool
	t      int64
	match  *event // invoke → its return event
	prev   *event
	next   *event
}

// lift removes e (an invoke) and its return from the list.
func lift(e *event) {
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	}
	m := e.match
	m.prev.next = m.next
	if m.next != nil {
		m.next.prev = m.prev
	}
}

// unlift reinserts e and its return, in reverse order of lift.
func unlift(e *event) {
	m := e.match
	m.prev.next = m
	if m.next != nil {
		m.next.prev = m
	}
	e.prev.next = e
	if e.next != nil {
		e.next.prev = e
	}
}

// apply runs op against the register state (present, value) and reports
// whether the op's recorded outcome is consistent, plus the successor state.
func apply(o *Op, present bool, value string) (ok, nPresent bool, nValue string) {
	switch o.Kind {
	case KindPut:
		return true, true, o.In
	case KindDelete:
		return true, false, ""
	default: // KindGet
		if o.NotFound {
			return !present, present, value
		}
		return present && value == o.Out, present, value
	}
}

// checkKey runs the WGL search over one key's subhistory. On a non-Ok
// verdict it also returns the frontier: the earliest-invoked ops the deepest
// partial linearization left unordered.
func checkKey(ops []Op, deadline time.Time) (Result, []Op) {
	n := len(ops)
	if n == 0 {
		return Ok, nil
	}

	// Build the time-ordered event list. Timestamps are unique except for
	// open returns (all ∞, mutual order immaterial); an op's return always
	// sorts after its invoke because the recorder's sequence is increasing.
	events := make([]*event, 0, 2*n)
	for i := range ops {
		inv := &event{op: i, invoke: true, t: ops[i].Invoke}
		ret := &event{op: i, t: ops[i].Return}
		inv.match = ret
		events = append(events, inv, ret)
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].invoke && !events[b].invoke
	})
	head := &event{op: -1}
	for prev, i := head, 0; i < len(events); i++ {
		prev.next = events[i]
		events[i].prev = prev
		prev = events[i]
	}

	// frame is one tentative linearization on the backtracking stack.
	type frame struct {
		ev      *event
		present bool
		value   string
	}
	var (
		stack      []frame
		words      = (n + 63) / 64
		linearized = make([]uint64, words)
		deepest    = make([]uint64, words) // largest linearized set reached
		deepestLen = -1
		visited    = make(map[string]struct{})
		present    bool
		value      string
		steps      uint
	)
	// frontier reports the earliest-invoked ops outside the deepest partial
	// linearization — diagnostics for a failed or expired search.
	frontier := func() []Op {
		var out []Op
		for i := 0; i < n; i++ {
			if deepest[i/64]&(1<<uint(i%64)) == 0 {
				out = append(out, ops[i])
			}
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Invoke < out[b].Invoke })
		if len(out) > 8 {
			out = out[:8]
		}
		return out
	}
	// stateKey encodes (linearized set, register state) for memoization.
	stateKey := func(p bool, v string) string {
		b := make([]byte, 0, 8*words+1+len(v))
		for _, w := range linearized {
			b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		if p {
			b = append(b, 1)
			b = append(b, v...)
		} else {
			b = append(b, 0)
		}
		return string(b)
	}

	e := head.next
	for head.next != nil {
		if steps++; steps&255 == 0 && time.Now().After(deadline) {
			return Undecided, frontier()
		}
		if e.invoke {
			// A minimal op: its invoke precedes every unlinearized return
			// still on the list. Try to linearize it here.
			ok, nPresent, nValue := apply(&ops[e.op], present, value)
			if ok {
				linearized[e.op/64] |= 1 << uint(e.op%64)
				key := stateKey(nPresent, nValue)
				if _, seen := visited[key]; seen {
					// This (set, state) was already explored and failed.
					linearized[e.op/64] &^= 1 << uint(e.op%64)
					e = e.next
					continue
				}
				visited[key] = struct{}{}
				stack = append(stack, frame{ev: e, present: present, value: value})
				present, value = nPresent, nValue
				lift(e)
				if len(stack) > deepestLen {
					deepestLen = len(stack)
					copy(deepest, linearized)
				}
				e = head.next
				continue
			}
			e = e.next
			continue
		}
		// Reached the first return on the list: no remaining minimal op can
		// be linearized next — undo the latest tentative choice.
		if len(stack) == 0 {
			return Nonlinearizable, frontier()
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		linearized[f.ev.op/64] &^= 1 << uint(f.ev.op%64)
		present, value = f.present, f.value
		unlift(f.ev)
		e = f.ev.next
	}
	return Ok, nil
}
