// Package core orchestrates a Sift consensus group: it runs the CPU-node
// state machine (follower → candidate → coordinator), wires the election,
// replicated memory, and key-value layers together, and implements shared
// backup CPU pools across groups (paper §3.1, §3.2, §5.2).
//
// A CPUNode is stateless between roles: everything a coordinator needs is
// (re)built from the memory nodes when it wins a term — log recovery brings
// the replicated memory to a consistent state and the key-value layer
// reloads its structures and replays its own log. That statelessness is
// what lets one pool of backup CPU nodes stand behind many groups.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/obs"
	"github.com/repro/sift/internal/repmem"
)

// ErrNoLease is returned by BackupGet when this node cannot serve the read:
// it holds no valid read lease, it is itself the coordinator, or backup
// reads are not configured. The caller retries at the coordinator.
var ErrNoLease = errors.New("core: no backup read lease")

// Role is a CPU node's current protocol role.
type Role int32

// CPU node roles.
const (
	Follower Role = iota
	Candidate
	Coordinator
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Coordinator:
		return "coordinator"
	default:
		return "unknown"
	}
}

// Config parameterises a CPU node for one group.
type Config struct {
	// NodeID is this CPU node's identity in heartbeat words.
	NodeID uint16
	// Election carries the memory node list, dial function, and timing. Its
	// NodeID field is overwritten with the one above.
	Election election.Config
	// Memory is the replicated memory configuration. Its Dial must open
	// exclusive replicated-region connections; MemoryNodes is overwritten
	// with Election.MemoryNodes. OnFenced is managed by the CPU node.
	Memory repmem.Config
	// KV is the key-value store configuration.
	KV kv.Config
	// NodeRecoveryInterval is how often the coordinator polls failed memory
	// nodes for reintegration (default 500ms).
	NodeRecoveryInterval time.Duration
	// ScrubInterval is the background scrubber's tick (it verifies a small
	// batch of blocks per tick). Default 50ms; negative disables scrubbing.
	ScrubInterval time.Duration
	// BackupReads enables serving Get requests from this node while it is a
	// follower, under a read lease derived from its heartbeat observations
	// (paper §5.2's backup CPU involvement, extended to the read path).
	// Requires BackupDial; the coordinator side must run the KV store with
	// SyncApply and an AckHold of at least LeaseWindow (plus read-latency
	// margin) for the leases to be sound.
	BackupReads bool
	// LeaseWindow is the backup read-lease duration, measured from the start
	// of a heartbeat read round that saw a majority at the current term. A
	// new coordinator delays its first acknowledgement by this long so every
	// prior-term lease has expired (see DESIGN.md §13).
	LeaseWindow time.Duration
	// BackupDial opens observer (read-only) connections to memory nodes for
	// the backup read path — see rdma.DialOpts.ReadOnly.
	BackupDial repmem.Dialer
	// OnRoleChange, if set, is invoked (synchronously) on role transitions.
	OnRoleChange func(Role)
	// Events, if set, receives control-plane events (election.campaign,
	// election.won, election.lost, coordinator.promoted/demoted/fenced,
	// election.dethroned). It is also handed to the replicated memory layer
	// unless Memory.Events is already set.
	Events *obs.Ring
}

// CPUNode runs the Sift CPU-node state machine for one group.
type CPUNode struct {
	cfg     Config
	elector *election.Elector

	role  atomic.Int32
	term  atomic.Uint32 // current term when coordinator
	store atomic.Pointer[kv.Store]

	mu       sync.Mutex
	stepDown chan struct{} // closed to force the coordinator loop to exit

	backup *backupReader // nil unless cfg.BackupReads

	// conf is the adopted memory-node configuration (member list, config
	// epoch, erasure geometry). It starts from cfg and advances when this
	// node commits a reconfiguration or discovers a newer committed epoch
	// on the admin plane.
	confMu sync.Mutex
	conf   memnode.ConfigRecord

	// reconfigCh carries committed-reconfiguration cutovers into the
	// coordinate loop, which rebuilds the memory and KV layers against the
	// new configuration without giving up the term.
	reconfigCh chan reconfigEvent

	// Stats.
	elections     atomic.Uint64
	promotions    atomic.Uint64
	demotions     atomic.Uint64
	dethronements atomic.Uint64
	reconfigs     atomic.Uint64
}

// label names this CPU node in events ("cpu3").
func (n *CPUNode) label() string { return fmt.Sprintf("cpu%d", n.cfg.NodeID) }

// emit records a control-plane event against this CPU node. Safe with no
// ring configured.
func (n *CPUNode) emit(typ string, term uint16, detail string) {
	n.cfg.Events.Emit(typ, n.label(), term, detail)
}

// NewCPUNode constructs the node; call Run to start it.
func NewCPUNode(cfg Config) *CPUNode {
	if cfg.NodeRecoveryInterval <= 0 {
		cfg.NodeRecoveryInterval = 500 * time.Millisecond
	}
	if cfg.ScrubInterval == 0 {
		cfg.ScrubInterval = 50 * time.Millisecond
	}
	cfg.Election.NodeID = cfg.NodeID
	cfg.Memory.MemoryNodes = cfg.Election.MemoryNodes
	if cfg.BackupReads && cfg.LeaseWindow <= 0 {
		cfg.LeaseWindow = 4 * cfg.Election.HeartbeatInterval
	}
	n := &CPUNode{cfg: cfg, reconfigCh: make(chan reconfigEvent)}
	epoch := cfg.Memory.Epoch
	if epoch == 0 {
		epoch = 1
	}
	n.conf = memnode.ConfigRecord{
		Epoch:       epoch,
		ECData:      cfg.Memory.ECData,
		ECParity:    cfg.Memory.ECParity,
		ECBlockSize: cfg.Memory.ECBlockSize,
		Members:     append([]string(nil), cfg.Memory.MemoryNodes...),
	}
	n.elector = election.New(cfg.Election)
	if cfg.BackupReads && cfg.BackupDial != nil {
		if br, err := newBackupReader(cfg); err == nil {
			n.backup = br
		}
	}
	return n
}

// backupReader bundles the follower-side read path: a read-only view of the
// replicated memory plus a lock-free chain walker, with a cached membership
// mask that is refreshed from the admin region well within the ack-hold
// window. When a committed config epoch above the view's own appears on the
// admin plane, the view and chain walker are rebuilt against the new
// configuration descriptor before any further reads are served.
type backupReader struct {
	cfg Config

	mu      sync.Mutex
	view    *repmem.View
	chain   *kv.ChainReader
	maskAt  time.Time
	masked  bool
	serving uint16 // highest serving term seen at the last refresh
}

func newBackupReader(cfg Config) (*backupReader, error) {
	b := &backupReader{cfg: cfg}
	rec := memnode.ConfigRecord{
		Epoch:       cfg.Memory.Epoch,
		ECData:      cfg.Memory.ECData,
		ECParity:    cfg.Memory.ECParity,
		ECBlockSize: cfg.Memory.ECBlockSize,
		Members:     cfg.Memory.MemoryNodes,
	}
	if err := b.rebuildLocked(rec); err != nil {
		return nil, err
	}
	return b, nil
}

// rebuildLocked (re)creates the view and chain walker for configuration rec.
// An in-flight chain walk on the old view sees its connections closed and
// fails with a kv.ErrBackupRetry wrap — the caller falls back to the
// coordinator, which is exactly the contract for a walk that straddles a
// reconfiguration.
func (b *backupReader) rebuildLocked(rec memnode.ConfigRecord) error {
	vcfg := b.cfg.Memory
	vcfg.Dial = b.cfg.BackupDial
	vcfg.OnFenced = nil
	vcfg.MemoryNodes = append([]string(nil), rec.Members...)
	vcfg.Epoch = rec.Epoch
	vcfg.ECData, vcfg.ECParity = rec.ECData, rec.ECParity
	if rec.ECBlockSize > 0 {
		vcfg.ECBlockSize = rec.ECBlockSize
	}
	view, err := repmem.NewView(vcfg)
	if err != nil {
		return err
	}
	align := 1
	if vcfg.ECData > 0 {
		align = vcfg.ECBlockSize
	}
	chain, err := kv.NewChainReader(b.cfg.KV, align, view)
	if err != nil {
		view.Close()
		return err
	}
	old := b.view
	b.view, b.chain = view, chain
	b.masked = false
	if old != nil {
		old.Close()
	}
	return nil
}

// close releases the reader's view connections.
func (b *backupReader) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.view != nil {
		b.view.Close()
	}
}

// refreshMask re-reads the published membership bitmap and serving term
// unless the cached pair is younger than ttl. A mask in use is therefore
// never older than ttl plus one read; the coordinator's AckHold must exceed
// that. It returns the cached serving term and the chain walker to use for
// this read. (A stale serving term is safe: the word is monotonic, so a
// match with the lease term can only under-claim, never claim an unfinished
// takeover complete.)
func (b *backupReader) refreshMask(ttl time.Duration) (uint16, *kv.ChainReader, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.masked && time.Since(b.maskAt) < ttl {
		return b.serving, b.chain, nil
	}
	// A committed config epoch above the view's own means the member set
	// behind this view is obsolete — a removed node may still be reachable
	// with intact but no-longer-written DRAM. Rebuild against the new
	// descriptor before trusting any published word.
	if e, _, ok := b.view.ReadEpoch(); ok && e > b.view.Epoch() {
		rec, recOK := b.view.ReadConfig()
		if !recOK || rec.Epoch <= b.view.Epoch() {
			return 0, nil, fmt.Errorf("config epoch %d committed but descriptor not visible", e)
		}
		if err := b.rebuildLocked(rec); err != nil {
			return 0, nil, err
		}
	}
	_, _, bitmap, ok := b.view.ReadMembership()
	if !ok {
		return 0, nil, fmt.Errorf("no published membership for config epoch %d", b.view.Epoch())
	}
	sEpoch, serving, ok := b.view.ReadServing()
	if !ok || sEpoch != b.view.Epoch() {
		return 0, nil, fmt.Errorf("no serving term for config epoch %d", b.view.Epoch())
	}
	b.view.SetMask(bitmap)
	b.maskAt = time.Now()
	b.masked = true
	b.serving = serving
	return serving, b.chain, nil
}

// BackupGet serves a read from replicated memory while this node is a
// follower holding a valid read lease. Any error — ErrNoLease or a
// kv.ErrBackupRetry wrap — means the caller must retry at the coordinator;
// only found values are authoritative.
func (n *CPUNode) BackupGet(key []byte) ([]byte, error) {
	br := n.backup
	if br == nil {
		return nil, ErrNoLease
	}
	if n.store.Load() != nil {
		return nil, ErrNoLease // we are the coordinator; use Store
	}
	w := n.cfg.LeaseWindow
	term, ok := n.elector.Lease(w)
	if !ok {
		return nil, ErrNoLease
	}
	serving, chain, err := br.refreshMask(w / 2)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoLease, err)
	}
	// The lease term's coordinator must have declared its takeover complete
	// (serving word ≥ published after recovery/replay): a lease alone only
	// proves who the coordinator is, not that its replay — which rewrites
	// blocks through older states — has finished.
	if serving != term {
		return nil, ErrNoLease
	}
	walkStart := time.Now()
	val, err := chain.Get(key)
	if err != nil {
		return nil, err
	}
	// Two post-read checks close the soundness argument:
	//   - The walk must fit in half a lease window, so the membership mask
	//     in use is at most LeaseWindow old (mask TTL W/2 + walk W/2) at
	//     return — within the coordinator's AckHold, which guarantees no
	//     acknowledged write has skipped a node this walk read from.
	//   - The lease must still be valid at the same term, so the value was
	//     read entirely inside a window during which no later coordinator
	//     can have acknowledged anything.
	if time.Since(walkStart) > w/2 {
		return nil, ErrNoLease
	}
	if t2, ok := n.elector.Lease(w); !ok || t2 != term {
		return nil, ErrNoLease
	}
	return val, nil
}

// Role returns the node's current role.
func (n *CPUNode) Role() Role { return Role(n.role.Load()) }

// Term returns the term this node coordinates (0 if not coordinator).
func (n *CPUNode) Term() uint16 { return uint16(n.term.Load()) }

// Store returns the key-value store when this node is the coordinator, or
// nil. The store may be concurrently closed by a demotion; callers must
// treat kv.ErrClosed as "retry against the new coordinator".
func (n *CPUNode) Store() *kv.Store { return n.store.Load() }

// Elections, Promotions, Demotions, Dethronements return lifecycle counters.
func (n *CPUNode) Elections() uint64     { return n.elections.Load() }
func (n *CPUNode) Promotions() uint64    { return n.promotions.Load() }
func (n *CPUNode) Demotions() uint64     { return n.demotions.Load() }
func (n *CPUNode) Dethronements() uint64 { return n.dethronements.Load() }

func (n *CPUNode) setRole(r Role) {
	if Role(n.role.Swap(int32(r))) != r && n.cfg.OnRoleChange != nil {
		n.cfg.OnRoleChange(r)
	}
}

// Run drives the node until ctx is cancelled. It blocks.
func (n *CPUNode) Run(ctx context.Context) error {
	defer n.elector.Close()
	var observed map[string]election.Word
	for {
		n.setRole(Follower)
		var err error
		observed, err = n.elector.AwaitSuspicion(ctx)
		if err != nil {
			return err
		}
		n.setRole(Candidate)
		n.elections.Add(1)
		n.emit("election.campaign", 0, "suspicion of coordinator failure")
		term, outcome, err := n.elector.Campaign(ctx, observed)
		if err != nil {
			return err
		}
		if outcome != election.Won {
			n.emit("election.lost", 0, "another candidate won")
			continue // another node is (probably) coordinating; watch again
		}
		n.emit("election.won", term, "")
		n.coordinate(ctx, term)
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// TakeOver campaigns immediately (seeded with the observed admin words) and,
// on winning, coordinates until demoted or ctx is cancelled. It returns
// whether this node actually coordinated. Shared backup pool workers use
// this entry point: the pool's watchers detect the failure, and the worker
// only campaigns once, returning to the pool if another candidate won.
func (n *CPUNode) TakeOver(ctx context.Context, observed map[string]election.Word) (bool, error) {
	n.setRole(Candidate)
	n.elections.Add(1)
	n.emit("election.campaign", 0, "takeover requested")
	term, outcome, err := n.elector.Campaign(ctx, observed)
	if err != nil {
		n.setRole(Follower)
		return false, err
	}
	if outcome != election.Won {
		n.emit("election.lost", 0, "another candidate won")
		n.setRole(Follower)
		return false, nil
	}
	n.emit("election.won", term, "")
	n.coordinate(ctx, term)
	n.setRole(Follower)
	return true, nil
}

// Close releases the node's election connections. Only call after Run or
// TakeOver has returned.
func (n *CPUNode) Close() {
	n.elector.Close()
	if n.backup != nil {
		n.backup.close()
	}
}

// coordinate runs one coordinatorship: build the replicated memory and KV
// layers, recover, then heartbeat until dethroned or cancelled.
func (n *CPUNode) coordinate(ctx context.Context, term uint16) {
	// Every backup read lease for a prior term is anchored at a heartbeat
	// round that started before this term's election CAS reached a majority
	// — which is before this function runs. Waiting out one lease window
	// from here (less however long recovery takes) therefore guarantees all
	// such leases have expired before this coordinator acknowledges its
	// first operation.
	takeoverStart := time.Now()

	n.mu.Lock()
	n.stepDown = make(chan struct{})
	stepDown := n.stepDown
	var once sync.Once
	fence := func() { once.Do(func() { close(stepDown) }) }
	n.mu.Unlock()

	// Start heartbeating immediately: log recovery can take longer than the
	// election timeout, and the lease must be renewed throughout it or the
	// backups would dethrone every new coordinator before it finishes
	// taking over.
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ts := uint32(2) // the election round wrote timestamp 1
		ticker := time.NewTicker(n.elector.HeartbeatInterval())
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				fence()
				return
			case <-stepDown:
				return
			case <-ticker.C:
				ts++
				// Any heartbeat failure — dethroned or transport — means the
				// lease can no longer be defended, so fence either way.
				if err := n.elector.Heartbeat(term, ts); err != nil {
					n.dethronements.Add(1)
					n.emit("election.dethroned", term, err.Error())
					fence()
					return
				}
			}
		}
	}()
	defer func() {
		fence()
		<-hbDone
	}()

	// With backup reads enabled, no replicated state may be rewritten until
	// every lease from a prior term has expired: recovery and log replay
	// rewrite table blocks through older states, and a prior-term lease
	// holder reading mid-replay could return a value that regresses an
	// acknowledged write. Every such lease is anchored at a heartbeat round
	// that started before this term's election CAS reached a majority —
	// before this function runs — so waiting one lease window here, with
	// heartbeats already flowing, outlasts them all. New-term leases are
	// kept out of the replay window separately, by the serving word
	// published below.
	if n.cfg.BackupReads {
		if rem := n.cfg.LeaseWindow - time.Since(takeoverStart); rem > 0 {
			select {
			case <-time.After(rem):
			case <-stepDown:
				return
			case <-ctx.Done():
				return
			}
		}
	}

	// The serve loop below normally runs its body once. A committed
	// reconfiguration (delivered on reconfigCh) tears the memory and KV
	// layers down and rebuilds them against the adopted configuration —
	// without giving up the term, so clients see one coordinator throughout
	// a membership change.
	var exclusionSeed time.Time   // cutover instant for backup-lease exclusion
	var pendingDone []chan struct{}
	serveReady := func() {
		for _, d := range pendingDone {
			close(d)
		}
		pendingDone = nil
	}
	defer serveReady() // never leave a reconfiguration caller hanging
	promoted := false
	defer func() {
		if promoted {
			n.store.Store(nil)
			n.term.Store(0)
			n.demotions.Add(1)
			n.emit("coordinator.demoted", term, "")
		}
	}()
	rebuilds := 0

	for {
		snap := n.ConfigSnapshot()
		mcfg := n.cfg.Memory
		mcfg.MemoryNodes = snap.Members
		mcfg.Epoch = snap.Epoch
		mcfg.ECData, mcfg.ECParity = snap.ECData, snap.ECParity
		if snap.ECBlockSize > 0 {
			mcfg.ECBlockSize = snap.ECBlockSize
		}
		mcfg.OnFenced = func() {
			n.emit("coordinator.fenced", term, "replicated memory fenced")
			fence()
		}
		mcfg.Term = term // tags membership publications; successors take the max
		if mcfg.Events == nil {
			mcfg.Events = n.cfg.Events
		}
		mem, err := repmem.New(mcfg)
		if err != nil {
			// A stale-config refusal means a newer configuration was
			// committed (possibly by our own half-finished reconfiguration):
			// discover and adopt it, then retry. Anything else — lost quorum
			// between election and takeover — forfeits the term.
			if errors.Is(err, repmem.ErrStaleConfig) && rebuilds < 8 {
				rebuilds++
				if n.discoverAndAdopt() {
					continue
				}
			}
			return
		}
		if !exclusionSeed.IsZero() {
			// Backup-read leases granted against the pre-cutover node set must
			// expire before this configuration acknowledges anything.
			mem.MarkExclusion(exclusionSeed)
		}
		if err := mem.Recover(); err != nil {
			mem.Close()
			return
		}
		store, err := kv.New(mem, n.cfg.KV)
		if err != nil {
			mem.Close()
			return
		}
		stopRecovery := mem.StartRecovery(n.cfg.NodeRecoveryInterval)
		stopScrub := func() {}
		if n.cfg.ScrubInterval > 0 {
			stopScrub = mem.StartScrub(n.cfg.ScrubInterval)
		}

		if n.cfg.BackupReads {
			// Takeover complete: recovery and replay are done, so lease holders
			// at this term may now trust what they read.
			mem.PublishServing()
		}

		n.term.Store(uint32(term))
		n.store.Store(store)
		n.setRole(Coordinator)
		if !promoted {
			promoted = true
			n.promotions.Add(1)
			n.emit("coordinator.promoted", term, "")
		}
		serveReady() // reconfiguration callers: the new config is serving

		teardown := func() {
			n.store.Store(nil)
			stopRecovery()
			stopScrub()
			store.Close()
			mem.Close()
		}

		select {
		case <-ctx.Done():
			teardown()
			return
		case <-stepDown:
			teardown()
			return
		case ev := <-n.reconfigCh:
			n.reconfigs.Add(1)
			teardown()
			if len(ev.rec.Members) > 0 {
				n.adoptRecord(ev.rec)
			} else {
				// The sender could not tell whether its epoch commit landed
				// (partial advance): resolve from the admin plane.
				n.discoverAndAdopt()
			}
			if !ev.cutover.IsZero() {
				exclusionSeed = ev.cutover
			}
			if ev.done != nil {
				pendingDone = append(pendingDone, ev.done)
			}
			rebuilds++
			n.emit("coordinator.reconfigured", term,
				fmt.Sprintf("rebuilding at config epoch %d", n.ConfigSnapshot().Epoch))
			continue
		}
	}
}

// Memory returns the coordinator's replicated memory handle, or nil. It is
// exposed for instrumentation (benchmarks read repmem.Stats through it).
func (n *CPUNode) MemoryStats() (repmem.Stats, bool) {
	s := n.store.Load()
	if s == nil {
		return repmem.Stats{}, false
	}
	return s.MemoryStats(), true
}
