// Package core orchestrates a Sift consensus group: it runs the CPU-node
// state machine (follower → candidate → coordinator), wires the election,
// replicated memory, and key-value layers together, and implements shared
// backup CPU pools across groups (paper §3.1, §3.2, §5.2).
//
// A CPUNode is stateless between roles: everything a coordinator needs is
// (re)built from the memory nodes when it wins a term — log recovery brings
// the replicated memory to a consistent state and the key-value layer
// reloads its structures and replays its own log. That statelessness is
// what lets one pool of backup CPU nodes stand behind many groups.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/obs"
	"github.com/repro/sift/internal/repmem"
)

// Role is a CPU node's current protocol role.
type Role int32

// CPU node roles.
const (
	Follower Role = iota
	Candidate
	Coordinator
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Coordinator:
		return "coordinator"
	default:
		return "unknown"
	}
}

// Config parameterises a CPU node for one group.
type Config struct {
	// NodeID is this CPU node's identity in heartbeat words.
	NodeID uint16
	// Election carries the memory node list, dial function, and timing. Its
	// NodeID field is overwritten with the one above.
	Election election.Config
	// Memory is the replicated memory configuration. Its Dial must open
	// exclusive replicated-region connections; MemoryNodes is overwritten
	// with Election.MemoryNodes. OnFenced is managed by the CPU node.
	Memory repmem.Config
	// KV is the key-value store configuration.
	KV kv.Config
	// NodeRecoveryInterval is how often the coordinator polls failed memory
	// nodes for reintegration (default 500ms).
	NodeRecoveryInterval time.Duration
	// ScrubInterval is the background scrubber's tick (it verifies a small
	// batch of blocks per tick). Default 50ms; negative disables scrubbing.
	ScrubInterval time.Duration
	// OnRoleChange, if set, is invoked (synchronously) on role transitions.
	OnRoleChange func(Role)
	// Events, if set, receives control-plane events (election.campaign,
	// election.won, election.lost, coordinator.promoted/demoted/fenced,
	// election.dethroned). It is also handed to the replicated memory layer
	// unless Memory.Events is already set.
	Events *obs.Ring
}

// CPUNode runs the Sift CPU-node state machine for one group.
type CPUNode struct {
	cfg     Config
	elector *election.Elector

	role  atomic.Int32
	term  atomic.Uint32 // current term when coordinator
	store atomic.Pointer[kv.Store]

	mu       sync.Mutex
	stepDown chan struct{} // closed to force the coordinator loop to exit

	// Stats.
	elections     atomic.Uint64
	promotions    atomic.Uint64
	demotions     atomic.Uint64
	dethronements atomic.Uint64
}

// label names this CPU node in events ("cpu3").
func (n *CPUNode) label() string { return fmt.Sprintf("cpu%d", n.cfg.NodeID) }

// emit records a control-plane event against this CPU node. Safe with no
// ring configured.
func (n *CPUNode) emit(typ string, term uint16, detail string) {
	n.cfg.Events.Emit(typ, n.label(), term, detail)
}

// NewCPUNode constructs the node; call Run to start it.
func NewCPUNode(cfg Config) *CPUNode {
	if cfg.NodeRecoveryInterval <= 0 {
		cfg.NodeRecoveryInterval = 500 * time.Millisecond
	}
	if cfg.ScrubInterval == 0 {
		cfg.ScrubInterval = 50 * time.Millisecond
	}
	cfg.Election.NodeID = cfg.NodeID
	cfg.Memory.MemoryNodes = cfg.Election.MemoryNodes
	n := &CPUNode{cfg: cfg}
	n.elector = election.New(cfg.Election)
	return n
}

// Role returns the node's current role.
func (n *CPUNode) Role() Role { return Role(n.role.Load()) }

// Term returns the term this node coordinates (0 if not coordinator).
func (n *CPUNode) Term() uint16 { return uint16(n.term.Load()) }

// Store returns the key-value store when this node is the coordinator, or
// nil. The store may be concurrently closed by a demotion; callers must
// treat kv.ErrClosed as "retry against the new coordinator".
func (n *CPUNode) Store() *kv.Store { return n.store.Load() }

// Elections, Promotions, Demotions, Dethronements return lifecycle counters.
func (n *CPUNode) Elections() uint64     { return n.elections.Load() }
func (n *CPUNode) Promotions() uint64    { return n.promotions.Load() }
func (n *CPUNode) Demotions() uint64     { return n.demotions.Load() }
func (n *CPUNode) Dethronements() uint64 { return n.dethronements.Load() }

func (n *CPUNode) setRole(r Role) {
	if Role(n.role.Swap(int32(r))) != r && n.cfg.OnRoleChange != nil {
		n.cfg.OnRoleChange(r)
	}
}

// Run drives the node until ctx is cancelled. It blocks.
func (n *CPUNode) Run(ctx context.Context) error {
	defer n.elector.Close()
	var observed map[string]election.Word
	for {
		n.setRole(Follower)
		var err error
		observed, err = n.elector.AwaitSuspicion(ctx)
		if err != nil {
			return err
		}
		n.setRole(Candidate)
		n.elections.Add(1)
		n.emit("election.campaign", 0, "suspicion of coordinator failure")
		term, outcome, err := n.elector.Campaign(ctx, observed)
		if err != nil {
			return err
		}
		if outcome != election.Won {
			n.emit("election.lost", 0, "another candidate won")
			continue // another node is (probably) coordinating; watch again
		}
		n.emit("election.won", term, "")
		n.coordinate(ctx, term)
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// TakeOver campaigns immediately (seeded with the observed admin words) and,
// on winning, coordinates until demoted or ctx is cancelled. It returns
// whether this node actually coordinated. Shared backup pool workers use
// this entry point: the pool's watchers detect the failure, and the worker
// only campaigns once, returning to the pool if another candidate won.
func (n *CPUNode) TakeOver(ctx context.Context, observed map[string]election.Word) (bool, error) {
	n.setRole(Candidate)
	n.elections.Add(1)
	n.emit("election.campaign", 0, "takeover requested")
	term, outcome, err := n.elector.Campaign(ctx, observed)
	if err != nil {
		n.setRole(Follower)
		return false, err
	}
	if outcome != election.Won {
		n.emit("election.lost", 0, "another candidate won")
		n.setRole(Follower)
		return false, nil
	}
	n.emit("election.won", term, "")
	n.coordinate(ctx, term)
	n.setRole(Follower)
	return true, nil
}

// Close releases the node's election connections. Only call after Run or
// TakeOver has returned.
func (n *CPUNode) Close() { n.elector.Close() }

// coordinate runs one coordinatorship: build the replicated memory and KV
// layers, recover, then heartbeat until dethroned or cancelled.
func (n *CPUNode) coordinate(ctx context.Context, term uint16) {
	n.mu.Lock()
	n.stepDown = make(chan struct{})
	stepDown := n.stepDown
	var once sync.Once
	fence := func() { once.Do(func() { close(stepDown) }) }
	n.mu.Unlock()

	// Start heartbeating immediately: log recovery can take longer than the
	// election timeout, and the lease must be renewed throughout it or the
	// backups would dethrone every new coordinator before it finishes
	// taking over.
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ts := uint32(2) // the election round wrote timestamp 1
		ticker := time.NewTicker(n.elector.HeartbeatInterval())
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				fence()
				return
			case <-stepDown:
				return
			case <-ticker.C:
				ts++
				// Any heartbeat failure — dethroned or transport — means the
				// lease can no longer be defended, so fence either way.
				if err := n.elector.Heartbeat(term, ts); err != nil {
					n.dethronements.Add(1)
					n.emit("election.dethroned", term, err.Error())
					fence()
					return
				}
			}
		}
	}()
	defer func() {
		fence()
		<-hbDone
	}()

	mcfg := n.cfg.Memory
	mcfg.OnFenced = func() {
		n.emit("coordinator.fenced", term, "replicated memory fenced")
		fence()
	}
	mcfg.Term = term // tags membership publications; successors take the max
	if mcfg.Events == nil {
		mcfg.Events = n.cfg.Events
	}
	mem, err := repmem.New(mcfg)
	if err != nil {
		return // lost quorum between election and takeover; retry via loop
	}
	defer mem.Close()
	if err := mem.Recover(); err != nil {
		return
	}
	store, err := kv.New(mem, n.cfg.KV)
	if err != nil {
		return
	}
	stopRecovery := mem.StartRecovery(n.cfg.NodeRecoveryInterval)
	defer stopRecovery()
	if n.cfg.ScrubInterval > 0 {
		stopScrub := mem.StartScrub(n.cfg.ScrubInterval)
		defer stopScrub()
	}

	n.term.Store(uint32(term))
	n.store.Store(store)
	n.setRole(Coordinator)
	n.promotions.Add(1)
	n.emit("coordinator.promoted", term, "")

	defer func() {
		n.store.Store(nil)
		n.term.Store(0)
		store.Close()
		n.demotions.Add(1)
		n.emit("coordinator.demoted", term, "")
	}()

	select {
	case <-ctx.Done():
	case <-stepDown:
	}
}

// Memory returns the coordinator's replicated memory handle, or nil. It is
// exposed for instrumentation (benchmarks read repmem.Stats through it).
func (n *CPUNode) MemoryStats() (repmem.Stats, bool) {
	s := n.store.Load()
	if s == nil {
		return repmem.Stats{}, false
	}
	return s.MemoryStats(), true
}
