package core

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/repro/sift/internal/deploy"
	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
)

// TestFullGroupOverTCP runs a complete Sift group over the real TCP
// transport: three passive memory nodes served by rdma.Serve (the daemon
// path cmd/memnoded uses) and two CPU nodes dialing them with
// rdma.DialTCP, with an end-to-end coordinator failover.
func TestFullGroupOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration in -short mode")
	}
	params := deploy.Params{
		F: 1, Keys: 256, MaxValue: 64,
		KVWALSlots: 64, MemWALSlots: 64, MemWALSlotSize: 512,
	}
	kcfg, mcfg, err := params.Derive()
	if err != nil {
		t.Fatal(err)
	}

	// Passive memory nodes on real sockets.
	var memAddrs []string
	for i := 0; i < 3; i++ {
		node, err := memnode.New(fmt.Sprintf("tcpmem%d", i), mcfg.Layout())
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go rdma.Serve(l, node)
		memAddrs = append(memAddrs, l.Addr().String())
	}

	mkConfig := func(id uint16) Config {
		m := mcfg
		m.MemoryNodes = memAddrs
		m.Dial = func(node string) (rdma.Verbs, error) {
			return rdma.DialTCP(node, rdma.DialOpts{Exclusive: []rdma.RegionID{memnode.ReplRegionID}})
		}
		return Config{
			NodeID: id,
			Election: election.Config{
				MemoryNodes: memAddrs,
				AdminRegion: memnode.AdminRegionID,
				AdminOffset: memnode.AdminWordOffset,
				Dial: func(node string) (rdma.Verbs, error) {
					return rdma.DialTCP(node, rdma.DialOpts{})
				},
				HeartbeatInterval: 3 * time.Millisecond,
				ReadInterval:      3 * time.Millisecond,
				MissedBeats:       3,
				Seed:              int64(id) * 13,
			},
			Memory: m,
			KV:     kcfg,
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	n1 := NewCPUNode(mkConfig(1))
	n2 := NewCPUNode(mkConfig(2))
	go n1.Run(ctx1)
	go n2.Run(ctx2)

	coord := waitCoordinator(t, []*CPUNode{n1, n2}, 10*time.Second)
	st := coord.Store()
	for i := 0; i < 25; i++ {
		if err := st.Put([]byte(fmt.Sprintf("tk%d", i)), []byte(fmt.Sprintf("tv%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := st.Get([]byte("tk7"))
	if err != nil || string(v) != "tv7" {
		t.Fatalf("got %q err=%v", v, err)
	}

	// Kill the coordinator; the other node recovers over TCP.
	var backup *CPUNode
	if coord == n1 {
		cancel1()
		backup = n2
	} else {
		cancel2()
		backup = n1
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if backup.Role() == Coordinator && backup.Store() != nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st2 := backup.Store()
	if st2 == nil {
		t.Fatal("backup never took over across TCP")
	}
	for i := 0; i < 25; i++ {
		v, err := st2.Get([]byte(fmt.Sprintf("tk%d", i)))
		if err != nil || string(v) != fmt.Sprintf("tv%d", i) {
			t.Fatalf("tk%d after TCP failover: %q err=%v", i, v, err)
		}
	}
	if err := st2.Put([]byte("post"), []byte("tcp")); err != nil {
		t.Fatal(err)
	}
}
