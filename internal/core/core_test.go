package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
)

// groupEnv wires an in-process group: memory nodes, and config factories
// for CPU nodes.
type groupEnv struct {
	nw    *rdma.Network
	names []string
	kcfg  kv.Config
	mcfg  repmem.Config
}

func newGroupEnv(t *testing.T, memNodes int) *groupEnv {
	t.Helper()
	kcfg := kv.Config{
		Capacity: 128, MaxKey: 16, MaxValue: 64,
		LoadFactor: 0.5, CacheFraction: 0.5, WALSlots: 32, ApplyShards: 2,
	}
	mcfg := repmem.Config{
		MemSize:     kcfg.RequiredMemSize(1),
		DirectSize:  kcfg.RequiredDirectSize(),
		WALSlots:    32,
		WALSlotSize: 512,
	}
	nw := rdma.NewNetwork(nil)
	names := make([]string, memNodes)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
		node, err := memnode.New(names[i], mcfg.Layout())
		if err != nil {
			t.Fatal(err)
		}
		nw.AddNode(node)
	}
	mcfg.MemoryNodes = names
	return &groupEnv{nw: nw, names: names, kcfg: kcfg, mcfg: mcfg}
}

func (e *groupEnv) nodeConfig(id uint16) Config {
	cpu := fmt.Sprintf("cpu%d", id)
	mcfg := e.mcfg
	mcfg.Dial = func(node string) (rdma.Verbs, error) {
		return e.nw.Dial(cpu, node, rdma.DialOpts{Exclusive: []rdma.RegionID{memnode.ReplRegionID}})
	}
	return Config{
		NodeID: id,
		Election: election.Config{
			MemoryNodes: e.names,
			AdminRegion: memnode.AdminRegionID,
			AdminOffset: memnode.AdminWordOffset,
			Dial: func(node string) (rdma.Verbs, error) {
				return e.nw.Dial(cpu, node, rdma.DialOpts{})
			},
			HeartbeatInterval: 2 * time.Millisecond,
			ReadInterval:      2 * time.Millisecond,
			MissedBeats:       3,
			Seed:              int64(id) * 7,
		},
		Memory:               mcfg,
		KV:                   e.kcfg,
		NodeRecoveryInterval: 20 * time.Millisecond,
	}
}

// waitCoordinator polls until one of the nodes is coordinator.
func waitCoordinator(t *testing.T, nodes []*CPUNode, timeout time.Duration) *CPUNode {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			if n.Role() == Coordinator && n.Store() != nil {
				return n
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no coordinator elected in time")
	return nil
}

func TestBootstrapElectsCoordinator(t *testing.T) {
	e := newGroupEnv(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	nodes := []*CPUNode{NewCPUNode(e.nodeConfig(1)), NewCPUNode(e.nodeConfig(2))}
	for _, n := range nodes {
		go n.Run(ctx)
	}
	coord := waitCoordinator(t, nodes, 3*time.Second)
	if coord.Term() == 0 {
		t.Fatal("coordinator has zero term")
	}

	// Exactly one coordinator.
	time.Sleep(20 * time.Millisecond)
	count := 0
	for _, n := range nodes {
		if n.Role() == Coordinator {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d coordinators", count)
	}

	// And the store works.
	st := coord.Store()
	if err := st.Put([]byte("boot"), []byte("strap")); err != nil {
		t.Fatal(err)
	}
	v, err := st.Get([]byte("boot"))
	if err != nil || string(v) != "strap" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestCoordinatorFailoverEndToEnd(t *testing.T) {
	e := newGroupEnv(t, 3)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()

	n1 := NewCPUNode(e.nodeConfig(1))
	n2 := NewCPUNode(e.nodeConfig(2))
	go n1.Run(ctx1)
	go n2.Run(ctx2)

	coord := waitCoordinator(t, []*CPUNode{n1, n2}, 3*time.Second)
	st := coord.Store()
	for i := 0; i < 20; i++ {
		if err := st.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the coordinator process.
	var backup *CPUNode
	if coord == n1 {
		cancel1()
		backup = n2
	} else {
		cancel2()
		backup = n1
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if backup.Role() == Coordinator && backup.Store() != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if backup.Role() != Coordinator {
		t.Fatal("backup never took over")
	}
	st2 := backup.Store()
	for i := 0; i < 20; i++ {
		v, err := st2.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%d after failover: %q err=%v", i, v, err)
		}
	}
	if backup.Promotions() == 0 {
		t.Fatal("promotion counter not bumped")
	}
}

func TestDethronedCoordinatorStopsServing(t *testing.T) {
	e := newGroupEnv(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	n1 := NewCPUNode(e.nodeConfig(1))
	go n1.Run(ctx)
	coord := waitCoordinator(t, []*CPUNode{n1}, 3*time.Second)
	st1 := coord.Store()
	if err := st1.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}

	// A competing node takes over directly (simulating n1's heartbeats being
	// seen as stale by a partition-side backup).
	n2 := NewCPUNode(e.nodeConfig(2))
	won, err := func() (bool, error) {
		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel2()
		go func() {
			// Demote n2's coordinatorship shortly after it takes over so
			// TakeOver returns.
			time.Sleep(300 * time.Millisecond)
			cancel2()
		}()
		return n2.TakeOver(ctx2, nil)
	}()
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal(err)
	}
	if !won {
		t.Fatal("n2 should have won the takeover")
	}

	// The old coordinator must have stepped down and its store must refuse
	// writes (fenced or closed).
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if n1.Role() != Coordinator {
			break
		}
		time.Sleep(time.Millisecond)
	}
	err = st1.Put([]byte("b"), []byte("2"))
	if err == nil {
		t.Fatal("dethroned coordinator accepted a write")
	}
}

func TestMemoryNodeFailureRecoveryViaManager(t *testing.T) {
	e := newGroupEnv(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	n1 := NewCPUNode(e.nodeConfig(1))
	go n1.Run(ctx)
	coord := waitCoordinator(t, []*CPUNode{n1}, 3*time.Second)
	st := coord.Store()
	for i := 0; i < 10; i++ {
		st.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}

	victim := e.names[2]
	e.nw.Fabric().Kill(victim)
	// Trigger failure detection with a write.
	st.Put([]byte("trigger"), []byte("x"))
	memnode.Reset(e.nw.Node(victim), e.mcfg.Layout())
	e.nw.Fabric().Restart(victim)

	// The background recovery manager should reintegrate it.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		stats, ok := n1.MemoryStats()
		if ok && stats.NodeRecovered >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats, _ := n1.MemoryStats()
	if stats.NodeRecovered == 0 {
		t.Fatal("memory node never recovered")
	}
	// Group still serves.
	v, err := st.Get([]byte("k3"))
	if err != nil || string(v) != "v" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestRoleString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" ||
		Coordinator.String() != "coordinator" || Role(9).String() != "unknown" {
		t.Fatal("role strings wrong")
	}
}

func TestPoolTakesOverFailedGroup(t *testing.T) {
	e := newGroupEnv(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Primary coordinator for the group.
	primaryCtx, primaryCancel := context.WithCancel(ctx)
	n1 := NewCPUNode(e.nodeConfig(1))
	go n1.Run(primaryCtx)
	waitCoordinator(t, []*CPUNode{n1}, 3*time.Second)
	st := n1.Store()
	for i := 0; i < 10; i++ {
		st.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}

	pool := NewPool(PoolConfig{Workers: 2})
	go pool.Run(ctx, []PoolGroup{{Name: "g0", Config: e.nodeConfig(0)}})

	time.Sleep(30 * time.Millisecond) // let the watcher settle
	primaryCancel()                   // kill the primary

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if pool.Stats().Takeovers >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st2 := pool.Stats()
	if st2.Takeovers == 0 {
		t.Fatalf("pool never took over: %+v", st2)
	}
	if pool.Free() != 1 {
		t.Fatalf("free workers = %d, want 1", pool.Free())
	}
}

func TestPoolStatsAccounting(t *testing.T) {
	p := NewPool(PoolConfig{Workers: 1, ProvisionDelay: 10 * time.Millisecond})
	if p.Free() != 1 {
		t.Fatalf("free = %d", p.Free())
	}
	id, ok := p.acquire(context.Background())
	if !ok || id == 0 {
		t.Fatalf("acquire: id=%d ok=%v", id, ok)
	}
	if p.Free() != 0 {
		t.Fatal("worker not consumed")
	}
	p.provisionReplacement()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && p.Free() == 0 {
		time.Sleep(time.Millisecond)
	}
	if p.Free() != 1 {
		t.Fatal("replacement never provisioned")
	}
	if p.Stats().Provisioned != 1 {
		t.Fatalf("provisioned = %d", p.Stats().Provisioned)
	}
	p.recordWait(3 * time.Millisecond)
	p.recordWait(5 * time.Millisecond)
	s := p.Stats()
	if s.WaitedFor != 8*time.Millisecond || s.MaxWait != 5*time.Millisecond {
		t.Fatalf("wait stats %+v", s)
	}
}
