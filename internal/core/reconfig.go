// Reconfiguration plane: coordinator-driven add/remove/replace of memory
// nodes under traffic. The heavy lifting (state transfer, re-striping, epoch
// commit) lives in internal/repmem; this file adopts committed
// configurations into the CPU-node state machine, rebuilds the serving
// layers after a cutover, and lets followers discover configurations they
// were not told about from the admin plane itself.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/repro/sift/internal/election"
	"github.com/repro/sift/internal/kv"
	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
)

// ErrNotCoordinator is returned by reconfiguration entry points invoked on a
// node that is not currently serving as coordinator.
var ErrNotCoordinator = errors.New("core: not the coordinator")

// reconfigEvent tells the coordinate loop to rebuild its serving layers.
// A zero-Member rec means "rediscover from the admin plane" (the sender
// could not tell whether its epoch commit landed). cutover, when set, seeds
// the new memory's backup-lease exclusion window. done, when non-nil, is
// closed once the rebuilt configuration is serving.
type reconfigEvent struct {
	rec     memnode.ConfigRecord
	cutover time.Time
	done    chan struct{}
}

// ConfigSnapshot returns a copy of the node's currently adopted memory-node
// configuration.
func (n *CPUNode) ConfigSnapshot() memnode.ConfigRecord {
	n.confMu.Lock()
	defer n.confMu.Unlock()
	rec := n.conf
	rec.Members = append([]string(nil), n.conf.Members...)
	return rec
}

// ConfigEpoch returns the adopted config epoch.
func (n *CPUNode) ConfigEpoch() uint32 { return n.ConfigSnapshot().Epoch }

// Reconfigs returns how many in-term serving-layer rebuilds this node has
// performed for committed reconfigurations.
func (n *CPUNode) Reconfigs() uint64 { return n.reconfigs.Load() }

// adoptRecord installs rec as the node's configuration if it supersedes the
// current one, and retargets the elector at the new member set either way
// (idempotent). Followers adopting a pushed record use this too.
func (n *CPUNode) adoptRecord(rec memnode.ConfigRecord) {
	n.confMu.Lock()
	if rec.Newer(n.conf) {
		n.conf = rec
		n.conf.Members = append([]string(nil), rec.Members...)
	}
	members := append([]string(nil), n.conf.Members...)
	n.confMu.Unlock()
	n.elector.UpdateMembers(members)
}

// AdoptConfig lets the control plane push a committed configuration to a
// follower so its elector and next takeover use the new member set without
// waiting for admin-plane discovery.
func (n *CPUNode) AdoptConfig(rec memnode.ConfigRecord) { n.adoptRecord(rec) }

// discoverAndAdopt reads the admin plane for a committed configuration newer
// than the adopted one and installs it. Returns whether anything newer was
// found.
func (n *CPUNode) discoverAndAdopt() bool {
	snap := n.ConfigSnapshot()
	rec, ok := discoverConfig(n.cfg.Election.Dial, snap.Members)
	if !ok || !rec.Newer(snap) {
		return false
	}
	n.adoptRecord(rec)
	n.emit("config.adopted", 0, fmt.Sprintf("discovered config epoch %d (%d members)", rec.Epoch, len(rec.Members)))
	return true
}

// readEpochWordAt reads a node's committed (config epoch, term) word.
func readEpochWordAt(c rdma.Verbs) (uint32, uint16, error) {
	var buf [8]byte
	if err := c.Read(memnode.AdminRegionID, memnode.AdminEpochOffset, buf[:]); err != nil {
		return 0, 0, err
	}
	w := binary.LittleEndian.Uint64(buf[:])
	return uint32(w >> 16), uint16(w), nil
}

// discoverConfig crawls the admin plane for the authoritative configuration:
// the highest-(epoch, term) valid descriptor whose epoch does not exceed the
// highest committed epoch word observed (a descriptor above every epoch word
// describes an uncommitted reconfiguration and must not be adopted). It
// chases descriptors' member lists for a bounded number of rounds, so a node
// seeded with a partially replaced member set still finds the current one as
// long as one seed node carries the current descriptor.
func discoverConfig(dial election.Dialer, seed []string) (memnode.ConfigRecord, bool) {
	if dial == nil {
		return memnode.ConfigRecord{}, false
	}
	seen := make(map[string]bool)
	frontier := append([]string(nil), seed...)
	var maxEpoch uint32
	var descs []memnode.ConfigRecord
	for round := 0; round < 3 && len(frontier) > 0; round++ {
		var next []string
		for _, node := range frontier {
			if seen[node] {
				continue
			}
			seen[node] = true
			c, err := dial(node)
			if err != nil {
				continue
			}
			if e, _, err := readEpochWordAt(c); err == nil && e > maxEpoch {
				maxEpoch = e
			}
			buf := make([]byte, memnode.MaxConfigSize)
			if err := c.Read(memnode.AdminRegionID, memnode.AdminConfigOffset, buf); err == nil {
				if rec, ok := memnode.DecodeConfig(buf); ok {
					descs = append(descs, rec)
					for _, m := range rec.Members {
						if !seen[m] {
							next = append(next, m)
						}
					}
				}
			}
			c.Close()
		}
		frontier = next
	}
	var best memnode.ConfigRecord
	found := false
	for _, rec := range descs {
		if rec.Epoch <= maxEpoch && (!found || rec.Newer(best)) {
			best, found = rec, true
		}
	}
	return best, found
}

// coordinatorMemory returns the serving store's memory handle, or
// ErrNotCoordinator.
func (n *CPUNode) coordinatorMemory() (*kv.Store, *repmem.Memory, error) {
	st := n.store.Load()
	if st == nil {
		return nil, nil, ErrNotCoordinator
	}
	mem := st.Memory()
	if mem == nil {
		return nil, nil, ErrNotCoordinator
	}
	return st, mem, nil
}

// ReplaceMemoryNode replaces memory node oldName with newName (same
// capacity, typically a fresh machine) while this node coordinates. The
// replacement preserves the group's geometry, so the serving KV layer is NOT
// rebuilt: the memory layer swaps the slot's connection under its own write
// barrier and traffic continues. On success the adopted configuration and
// the elector's member set advance to the new epoch.
func (n *CPUNode) ReplaceMemoryNode(oldName, newName string) error {
	_, mem, err := n.coordinatorMemory()
	if err != nil {
		return err
	}
	if err := mem.ReplaceNode(oldName, newName); err != nil {
		if errors.Is(err, repmem.ErrReconfigured) {
			// The epoch commit's outcome is ambiguous: resolve from the
			// admin plane and rebuild, holding the term.
			rerr := n.requestRebuild(memnode.ConfigRecord{}, time.Now())
			return fmt.Errorf("%w (resolved by rediscovery: %v)", err, rerr)
		}
		return err
	}
	n.adoptRecord(mem.ConfigRecord())
	return nil
}

// RestripeMemoryNodes moves the group to a new member set and/or erasure
// geometry (full replication stays full replication, EC stays EC with the
// same block size — see repmem.Restripe for the exact rules). The memory
// layer copies and re-encodes every live byte onto the target set under
// traffic, commits the new epoch under a short write barrier, and then this
// node rebuilds its serving layers against the new configuration without
// giving up the term. The call returns once the new configuration serves.
func (n *CPUNode) RestripeMemoryNodes(members []string, ecData, ecParity int) error {
	_, mem, err := n.coordinatorMemory()
	if err != nil {
		return err
	}
	res, err := mem.Restripe(repmem.RestripeTarget{Members: members, ECData: ecData, ECParity: ecParity})
	if err != nil {
		if errors.Is(err, repmem.ErrReconfigured) {
			rerr := n.requestRebuild(memnode.ConfigRecord{}, time.Now())
			return fmt.Errorf("%w (resolved by rediscovery: %v)", err, rerr)
		}
		return err
	}
	return n.requestRebuild(res.Record, res.CutoverAt)
}

// requestRebuild hands a committed (or ambiguous, zero-Member) configuration
// to the coordinate loop and waits until the rebuilt layers are serving.
func (n *CPUNode) requestRebuild(rec memnode.ConfigRecord, cutover time.Time) error {
	done := make(chan struct{})
	ev := reconfigEvent{rec: rec, cutover: cutover, done: done}
	select {
	case n.reconfigCh <- ev:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("core: coordinator loop did not accept the reconfiguration")
	}
	select {
	case <-done:
		return nil
	case <-time.After(30 * time.Second):
		return fmt.Errorf("core: serving-layer rebuild after reconfiguration timed out")
	}
}
