package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/election"
)

// PoolConfig parameterises a shared backup CPU pool (paper §5.2).
type PoolConfig struct {
	// Workers is the pool size B: how many idle CPU nodes stand behind the
	// groups. With G groups the deployment needs G+B CPU nodes instead of
	// (F+1)·G.
	Workers int
	// ProvisionDelay models how long it takes to bring up a replacement
	// worker after one is consumed by a failover (the paper uses 100 s, the
	// average EC2 Linux VM start-up time). Zero disables replenishment.
	ProvisionDelay time.Duration
	// WatcherID is the node id pool watchers use for heartbeat reads. It
	// never appears in CAS operations (watchers only read).
	WatcherID uint16
	// BaseWorkerID seeds unique CPU node ids for workers that take over
	// groups. Must not collide with the groups' primary coordinators.
	BaseWorkerID uint16
}

// PoolGroup names one consensus group the pool protects and carries the
// CPU-node configuration a worker uses to take it over. The Config's NodeID
// is assigned by the pool.
type PoolGroup struct {
	Name   string
	Config Config
}

// PoolStats are cumulative pool counters.
type PoolStats struct {
	Failovers   uint64        // coordinator failures handled
	Takeovers   uint64        // failovers this pool actually won
	WaitedFor   time.Duration // total time failovers waited for a free worker
	MaxWait     time.Duration // worst single wait
	Provisioned uint64        // replacement workers brought up
}

// Pool is a shared pool of backup CPU nodes standing behind many Sift
// groups. One watcher goroutine per group performs heartbeat reads; when a
// group's coordinator is suspected dead, the watcher draws a worker from
// the pool and the worker campaigns for the group. Because CPU nodes are
// stateless, any worker can coordinate any group.
type Pool struct {
	cfg PoolConfig

	mu      sync.Mutex
	cond    *sync.Cond
	free    int
	nextID  uint16
	stopped bool

	failovers   atomic.Uint64
	takeovers   atomic.Uint64
	provisioned atomic.Uint64
	waitMu      sync.Mutex
	waited      time.Duration
	maxWait     time.Duration
}

// NewPool creates a pool with cfg.Workers free workers.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.WatcherID == 0 {
		cfg.WatcherID = 0xFFFF
	}
	if cfg.BaseWorkerID == 0 {
		cfg.BaseWorkerID = 1000
	}
	p := &Pool{cfg: cfg, free: cfg.Workers, nextID: cfg.BaseWorkerID}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	p.waitMu.Lock()
	waited, maxWait := p.waited, p.maxWait
	p.waitMu.Unlock()
	return PoolStats{
		Failovers:   p.failovers.Load(),
		Takeovers:   p.takeovers.Load(),
		WaitedFor:   waited,
		MaxWait:     maxWait,
		Provisioned: p.provisioned.Load(),
	}
}

// Free returns the number of idle workers.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// Run watches all groups until ctx is cancelled. It blocks.
func (p *Pool) Run(ctx context.Context, groups []PoolGroup) {
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.stopped = true
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g PoolGroup) {
			defer wg.Done()
			p.watchGroup(ctx, g)
		}(g)
	}
	wg.Wait()
}

// watchGroup monitors one group and handles its coordinator failures.
func (p *Pool) watchGroup(ctx context.Context, g PoolGroup) {
	ecfg := g.Config.Election
	ecfg.NodeID = p.cfg.WatcherID
	watcher := election.New(ecfg)
	defer watcher.Close()

	for ctx.Err() == nil {
		words, err := watcher.AwaitSuspicion(ctx)
		if err != nil {
			return
		}
		p.failovers.Add(1)

		start := time.Now()
		id, ok := p.acquire(ctx)
		if !ok {
			return
		}
		wait := time.Since(start)
		p.recordWait(wait)

		cfg := g.Config
		cfg.NodeID = id
		promoted := make(chan struct{}, 1)
		cfg.OnRoleChange = func(r Role) {
			if r == Coordinator {
				select {
				case promoted <- struct{}{}:
				default:
				}
			}
		}
		node := NewCPUNode(cfg)
		// A worker that wins becomes the group's coordinator and leaves the
		// pool (a replacement VM is provisioned behind it); a worker that
		// loses the race returns to the pool immediately.
		done := make(chan bool, 1)
		go func() {
			won, _ := node.TakeOver(ctx, words)
			node.Close()
			done <- won
		}()
		select {
		case <-promoted:
			p.takeovers.Add(1)
			p.provisionReplacement()
			go func() {
				<-done
				// The demoted coordinator is a stateless CPU node again; it
				// rejoins the pool.
				p.release()
			}()
		case won := <-done:
			if won {
				// Promoted and demoted before we saw the signal.
				p.takeovers.Add(1)
				p.provisionReplacement()
			}
			p.release()
		}
	}
}

// acquire draws a worker from the pool, blocking until one is free.
func (p *Pool) acquire(ctx context.Context) (uint16, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.free == 0 && !p.stopped {
		p.cond.Wait()
	}
	if p.stopped {
		return 0, false
	}
	p.free--
	p.nextID++
	_ = ctx
	return p.nextID, true
}

// provisionReplacement models bringing up a fresh backup VM.
func (p *Pool) provisionReplacement() {
	if p.cfg.ProvisionDelay <= 0 {
		return
	}
	time.AfterFunc(p.cfg.ProvisionDelay, func() {
		p.mu.Lock()
		if !p.stopped {
			p.free++
			p.provisioned.Add(1)
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	})
}

// release returns a worker to the pool (a demoted coordinator is a free,
// stateless CPU node again).
func (p *Pool) release() {
	p.mu.Lock()
	p.free++
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *Pool) recordWait(d time.Duration) {
	p.waitMu.Lock()
	p.waited += d
	if d > p.maxWait {
		p.maxWait = d
	}
	p.waitMu.Unlock()
}
