package backuppool

import (
	"sync"
	"time"
)

// This file extracts the pool policy out of the Figure 8 trace simulator so
// live shard clusters can share it: the same free-count + provisioning-heap
// bookkeeping decides both a simulated fault's added recovery time and a real
// group's wait for a pooled backup CPU node.

// timeHeap is a typed min-heap of provisioning-completion times (offsets from
// the pool's birth). It replaces the earlier interface{}-based
// container/heap implementation: push/pop are direct sift operations with no
// boxing.
type timeHeap []time.Duration

func (h *timeHeap) push(t time.Duration) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

// pop removes and returns the earliest completion. Callers check len first.
func (h *timeHeap) pop() time.Duration {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && old[l] < old[smallest] {
			smallest = l
		}
		if r < n && old[r] < old[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	return top
}

func (h timeHeap) min() (time.Duration, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0], true
}

// Policy is the pool's claim bookkeeping, in virtual time (durations since
// the pool's birth). Claim semantics match the paper's §6.4.2 model: a fault
// draws a free backup instantly if one exists and a replacement VM starts
// provisioning; otherwise the claimant waits for the earliest in-flight VM
// (re-ordering its replacement) or, when nothing is in flight, provisions
// purely on demand. Policy is not safe for concurrent use; LivePool adds the
// lock and the wall clock.
type Policy struct {
	free         int
	delay        time.Duration
	provisioning timeHeap
}

// NewPolicy creates a policy over a pool of `backups` nodes whose
// replacements take provisionDelay to provision.
func NewPolicy(backups int, provisionDelay time.Duration) *Policy {
	return &Policy{free: backups, delay: provisionDelay}
}

// Claim requests a node at virtual time now. It returns when the node is
// ready (ready == now means a pooled backup took over instantly) and whether
// it came from the pool's free set.
func (p *Policy) Claim(now time.Duration) (ready time.Duration, fromPool bool) {
	// Retire completed provisionings first.
	for {
		at, ok := p.provisioning.min()
		if !ok || at > now {
			break
		}
		p.provisioning.pop()
		p.free++
	}
	if p.free > 0 {
		p.free--
		p.provisioning.push(now + p.delay)
		return now, true
	}
	if at, ok := p.provisioning.min(); ok {
		// Intercept the earliest in-flight replacement and re-order it.
		p.provisioning.pop()
		p.provisioning.push(at + p.delay)
		if at < now {
			at = now
		}
		return at, false
	}
	// Nothing in flight: provision on demand (nothing owed to the pool).
	return now + p.delay, false
}

// Release returns a node to the free set (a repaired group handing its
// standby back without consuming a provisioned replacement).
func (p *Policy) Release() { p.free++ }

// Free reports how many pool nodes are free at virtual time now.
func (p *Policy) Free(now time.Duration) int {
	for {
		at, ok := p.provisioning.min()
		if !ok || at > now {
			break
		}
		p.provisioning.pop()
		p.free++
	}
	return p.free
}

// Source is the claim interface a live shard cluster consumes: Claim returns
// how long the caller must wait for a standby CPU node (0 = one was free)
// and whether it came from the pool rather than on-demand provisioning.
// Release hands a node back.
type Source interface {
	Claim() (wait time.Duration, fromPool bool)
	Release()
}

// LiveStats counts a live pool's activity.
type LiveStats struct {
	Claims    uint64        // total claims
	FromPool  uint64        // claims served instantly by a free backup
	Waited    uint64        // claims that had to wait for provisioning
	TotalWait time.Duration // summed provisioning waits
	MaxWait   time.Duration
}

// LivePool adapts Policy to the wall clock for real groups: virtual time is
// time since the pool was created. It is safe for concurrent use.
type LivePool struct {
	mu     sync.Mutex
	policy *Policy
	birth  time.Time
	stats  LiveStats
}

// NewLivePool creates a wall-clock pool of `backups` standby CPU nodes whose
// replacements provision in provisionDelay.
func NewLivePool(backups int, provisionDelay time.Duration) *LivePool {
	return &LivePool{policy: NewPolicy(backups, provisionDelay), birth: time.Now()}
}

// Claim implements Source.
func (p *LivePool) Claim() (wait time.Duration, fromPool bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Since(p.birth)
	ready, fromPool := p.policy.Claim(now)
	wait = ready - now
	if wait < 0 {
		wait = 0
	}
	p.stats.Claims++
	if fromPool {
		p.stats.FromPool++
	}
	if wait > 0 {
		p.stats.Waited++
		p.stats.TotalWait += wait
		if wait > p.stats.MaxWait {
			p.stats.MaxWait = wait
		}
	}
	return wait, fromPool
}

// Release implements Source.
func (p *LivePool) Release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.policy.Release()
}

// Free reports currently free backups.
func (p *LivePool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.policy.Free(time.Since(p.birth))
}

// Stats returns a snapshot of the pool's counters.
func (p *LivePool) Stats() LiveStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
