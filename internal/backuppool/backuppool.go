// Package backuppool implements the paper's Figure 8 simulation (§6.4.2):
// replaying a cluster failure trace against G Sift groups whose nodes are
// randomly assigned to cluster machines, and measuring how much extra
// recovery time faults incur when the shared backup pool has B nodes and a
// replacement VM takes 100 seconds to provision.
//
// Pool semantics: a fault immediately draws a free backup if one exists
// (zero added recovery time) and a replacement VM starts provisioning;
// otherwise the fault queues FIFO for the next available node. The metric
// is the average added recovery time per fault — Sift's own coordinator
// recovery time is excluded, exactly as in the paper ("leading to a
// best-case recovery time of 0").
package backuppool

import (
	"math/rand"
	"time"

	"github.com/repro/sift/internal/trace"
)

// Config parameterises one simulation run.
type Config struct {
	// Groups is the number of Sift groups.
	Groups int
	// NodesPerGroup is how many machines each group occupies (paper: F=1 →
	// 3 memory nodes + 1 CPU node = 4).
	NodesPerGroup int
	// Backups is the pool size B.
	Backups int
	// ProvisionDelay is the VM start-up time (paper: 100 s).
	ProvisionDelay time.Duration
	// Machines is the cluster size the groups are scattered over.
	Machines int
	// Seed drives the random group→machine assignment.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.NodesPerGroup <= 0 {
		out.NodesPerGroup = 4
	}
	if out.ProvisionDelay <= 0 {
		out.ProvisionDelay = 100 * time.Second
	}
	if out.Machines <= 0 {
		out.Machines = 12500
	}
	return out
}

// Result summarises one run.
type Result struct {
	Faults           int           // faults that hit group machines
	TotalAddedWait   time.Duration // summed provisioning waits
	MaxWait          time.Duration
	FaultsThatWaited int
}

// AvgAddedRecovery returns the Figure 8 metric: added recovery time per
// fault.
func (r Result) AvgAddedRecovery() time.Duration {
	if r.Faults == 0 {
		return 0
	}
	return r.TotalAddedWait / time.Duration(r.Faults)
}

// Run replays events against one random group assignment. The claim
// decisions themselves live in Policy (pool.go), which live shard clusters
// share through LivePool.
func Run(cfg Config, events []trace.Event) Result {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))

	// Randomly assign group nodes to distinct machines (§6.4.2: "randomly
	// assigning machines to Sift groups").
	needed := c.Groups * c.NodesPerGroup
	if needed > c.Machines {
		needed = c.Machines
	}
	perm := rng.Perm(c.Machines)
	groupMachine := make(map[int]bool, needed)
	for _, m := range perm[:needed] {
		groupMachine[m] = true
	}

	pool := NewPolicy(c.Backups, c.ProvisionDelay)
	var res Result

	for _, ev := range events {
		if !groupMachine[ev.Machine] {
			continue
		}
		res.Faults++
		ready, _ := pool.Claim(ev.At)
		wait := ready - ev.At
		res.TotalAddedWait += wait
		if wait > 0 {
			res.FaultsThatWaited++
		}
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
	}
	return res
}

// Sweep reproduces Figure 8: for each group count and backup pool size,
// run `repetitions` simulations over freshly generated traces and average
// the per-fault added recovery time (the paper uses 50 repetitions per
// point).
func Sweep(groupCounts []int, backups []int, repetitions int, seed int64) map[int][]time.Duration {
	out := make(map[int][]time.Duration, len(groupCounts))
	for _, g := range groupCounts {
		series := make([]time.Duration, len(backups))
		for bi, b := range backups {
			var sum time.Duration
			for rep := 0; rep < repetitions; rep++ {
				repSeed := seed + int64(g)*1_000_003 + int64(b)*10_007 + int64(rep)
				events := trace.Generate(trace.Default(repSeed))
				res := Run(Config{
					Groups:  g,
					Backups: b,
					Seed:    repSeed * 31,
				}, events)
				sum += res.AvgAddedRecovery()
			}
			series[bi] = sum / time.Duration(repetitions)
		}
		out[g] = series
	}
	return out
}
