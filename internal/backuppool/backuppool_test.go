package backuppool

import (
	"testing"
	"time"

	"github.com/repro/sift/internal/trace"
)

// syntheticEvents builds a hand-crafted event sequence over group machines
// 0..n-1 (the Run config below maps groups onto machines deterministically
// via seed, so tests use generous group counts to cover the hit machines).
func runWithEvents(t *testing.T, backups int, events []trace.Event) Result {
	t.Helper()
	return Run(Config{
		Groups:         3125, // × 4 nodes = all 12500 machines are group machines
		NodesPerGroup:  4,
		Backups:        backups,
		ProvisionDelay: 100 * time.Second,
		Seed:           1,
	}, events)
}

func TestIsolatedFaultsNoWaitWithOneBackup(t *testing.T) {
	// Faults spaced far beyond the provisioning delay never wait when the
	// pool has at least one node.
	var events []trace.Event
	for i := 0; i < 10; i++ {
		events = append(events, trace.Event{At: time.Duration(i) * 10 * time.Minute, Machine: i})
	}
	res := runWithEvents(t, 1, events)
	if res.Faults != 10 {
		t.Fatalf("faults = %d", res.Faults)
	}
	if res.TotalAddedWait != 0 {
		t.Fatalf("added wait = %v, want 0", res.TotalAddedWait)
	}
}

func TestZeroBackupsAlwaysWait(t *testing.T) {
	events := []trace.Event{
		{At: 0, Machine: 1},
		{At: 30 * time.Minute, Machine: 2},
	}
	res := runWithEvents(t, 0, events)
	if res.FaultsThatWaited != 2 {
		t.Fatalf("faults that waited = %d", res.FaultsThatWaited)
	}
	if res.AvgAddedRecovery() != 100*time.Second {
		t.Fatalf("avg = %v, want 100s", res.AvgAddedRecovery())
	}
}

func TestBurstExhaustsPool(t *testing.T) {
	// 5 simultaneous faults against a pool of 2: two are free, three wait
	// for provisioning.
	var events []trace.Event
	for i := 0; i < 5; i++ {
		events = append(events, trace.Event{At: time.Duration(i) * time.Second, Machine: i})
	}
	res := runWithEvents(t, 2, events)
	if res.FaultsThatWaited != 3 {
		t.Fatalf("faults that waited = %d, want 3", res.FaultsThatWaited)
	}
	if res.MaxWait <= 0 || res.MaxWait > 200*time.Second {
		t.Fatalf("max wait = %v", res.MaxWait)
	}
	// A big enough pool absorbs the whole burst.
	res = runWithEvents(t, 5, events)
	if res.TotalAddedWait != 0 {
		t.Fatalf("pool of 5: wait = %v", res.TotalAddedWait)
	}
}

func TestNonGroupMachinesIgnored(t *testing.T) {
	res := Run(Config{
		Groups:         1, // 4 machines of 12500 belong to the group
		NodesPerGroup:  4,
		Backups:        0,
		ProvisionDelay: 100 * time.Second,
		Seed:           1,
	}, []trace.Event{{At: 0, Machine: 0}, {At: time.Second, Machine: 1}, {At: 2 * time.Second, Machine: 2}})
	// With a random 4/12500 assignment, almost surely none of machines
	// 0..2 belong to the group; at most 3 faults.
	if res.Faults > 3 {
		t.Fatalf("faults = %d", res.Faults)
	}
}

func TestMoreBackupsNeverWorse(t *testing.T) {
	events := trace.Generate(trace.Config{
		Machines: 2000, Duration: 48 * time.Hour,
		MachineMTBF: 10 * 24 * time.Hour,
		BurstEvery:  12 * time.Hour, BurstMin: 10, BurstMax: 20,
		Seed: 9,
	})
	var prev time.Duration = -1
	for _, b := range []int{0, 1, 2, 4, 8, 24} {
		res := Run(Config{
			Groups: 400, NodesPerGroup: 4, Backups: b,
			ProvisionDelay: 100 * time.Second, Machines: 2000, Seed: 5,
		}, events)
		avg := res.AvgAddedRecovery()
		if prev >= 0 && avg > prev {
			t.Fatalf("backups=%d: avg %v worse than smaller pool %v", b, avg, prev)
		}
		prev = avg
	}
	if prev != 0 {
		t.Fatalf("24 backups still leaves %v added recovery", prev)
	}
}

func TestFigure8KneesReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 8 sweep in -short mode")
	}
	// Paper §6.4.2: ~6 backups suffice for 1000 groups; ~20 for 3000; a
	// pool of 2 suffices for 100 groups. Use a few repetitions (the paper
	// uses 50; 3 keeps the test fast while averaging burst luck).
	sweep := Sweep([]int{100, 1000, 3000}, []int{0, 2, 6, 8, 20}, 3, 77)
	g100, g1000, g3000 := sweep[100], sweep[1000], sweep[3000]

	if g100[1] > 500*time.Millisecond {
		t.Fatalf("100 groups with 2 backups: %v added recovery, want ~0", g100[1])
	}
	if g1000[2] > time.Second {
		t.Fatalf("1000 groups with 6 backups: %v added recovery, want ~0", g1000[2])
	}
	if g3000[4] > time.Second {
		t.Fatalf("3000 groups with 20 backups: %v added recovery, want ~0", g3000[4])
	}
	// And the knees are real: too-small pools do incur waits at 3000 groups.
	if g3000[1] == 0 {
		t.Fatalf("3000 groups with 2 backups should incur waits")
	}
	// More groups need more backups: at pool=2, bigger deployments wait more.
	if g3000[1] < g1000[1] {
		t.Fatalf("3000 groups (%v) should wait at least as much as 1000 groups (%v) at pool=2",
			g3000[1], g1000[1])
	}
}

func TestResultAvgEmptyTrace(t *testing.T) {
	res := Run(Config{Groups: 10, Backups: 1, Seed: 1}, nil)
	if res.AvgAddedRecovery() != 0 || res.Faults != 0 {
		t.Fatalf("empty trace: %+v", res)
	}
}
