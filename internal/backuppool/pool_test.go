package backuppool

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestTimeHeapOrdering drives the typed heap with random values and checks
// it pops in sorted order (the property container/heap used to provide).
func TestTimeHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h timeHeap
	var want []time.Duration
	for i := 0; i < 500; i++ {
		d := time.Duration(rng.Int63n(1_000_000))
		h.push(d)
		want = append(want, d)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		if got, ok := h.min(); !ok || got != w {
			t.Fatalf("min %d = %v ok=%v, want %v", i, got, ok, w)
		}
		if got := h.pop(); got != w {
			t.Fatalf("pop %d = %v, want %v", i, got, w)
		}
	}
	if _, ok := h.min(); ok {
		t.Fatal("heap not empty after draining")
	}
}

func TestPolicyInstantClaimFromFreePool(t *testing.T) {
	p := NewPolicy(2, 100*time.Second)
	for i := 0; i < 2; i++ {
		ready, fromPool := p.Claim(time.Duration(i) * time.Second)
		if !fromPool || ready != time.Duration(i)*time.Second {
			t.Fatalf("claim %d: ready=%v fromPool=%v", i, ready, fromPool)
		}
	}
	// Third claim waits for the earliest in-flight replacement (t=0+100s).
	ready, fromPool := p.Claim(2 * time.Second)
	if fromPool || ready != 100*time.Second {
		t.Fatalf("exhausted pool: ready=%v fromPool=%v, want 100s on-demand", ready, fromPool)
	}
}

func TestPolicyReplacementRefillsPool(t *testing.T) {
	p := NewPolicy(1, 10*time.Second)
	if _, fromPool := p.Claim(0); !fromPool {
		t.Fatal("first claim should hit the pool")
	}
	// Replacement completes at t=10s; a claim after that is instant again.
	ready, fromPool := p.Claim(11 * time.Second)
	if !fromPool || ready != 11*time.Second {
		t.Fatalf("post-provisioning claim: ready=%v fromPool=%v", ready, fromPool)
	}
}

func TestPolicyRelease(t *testing.T) {
	p := NewPolicy(1, time.Hour)
	p.Claim(0)
	p.Release() // the group handed its standby back
	ready, fromPool := p.Claim(time.Second)
	if !fromPool || ready != time.Second {
		t.Fatalf("claim after release: ready=%v fromPool=%v", ready, fromPool)
	}
}

func TestPolicyOnDemandWithZeroBackups(t *testing.T) {
	p := NewPolicy(0, 5*time.Second)
	ready, fromPool := p.Claim(0)
	if fromPool || ready != 5*time.Second {
		t.Fatalf("zero pool: ready=%v fromPool=%v", ready, fromPool)
	}
}

func TestLivePoolClaimAndStats(t *testing.T) {
	p := NewLivePool(1, 50*time.Millisecond)
	wait, fromPool := p.Claim()
	if wait != 0 || !fromPool {
		t.Fatalf("first live claim: wait=%v fromPool=%v", wait, fromPool)
	}
	wait, fromPool = p.Claim()
	if fromPool {
		t.Fatal("second claim before provisioning completed should not be from pool")
	}
	if wait <= 0 || wait > 50*time.Millisecond {
		t.Fatalf("second claim wait = %v, want (0, 50ms]", wait)
	}
	st := p.Stats()
	if st.Claims != 2 || st.FromPool != 1 || st.Waited != 1 || st.MaxWait == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// After the intercepted replacement's replacement provisions (the second
	// claim re-ordered the first VM to itself and owes the pool one at
	// birth+100ms), claims are instant again.
	time.Sleep(120 * time.Millisecond)
	if wait, _ := p.Claim(); wait != 0 {
		t.Fatalf("claim after provisioning window: wait=%v", wait)
	}
}

func TestLivePoolImplementsSource(t *testing.T) {
	var _ Source = NewLivePool(1, time.Second)
}
