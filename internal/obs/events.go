package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one control-plane transition: an election, a fencing decision, a
// suspicion change, a recovery, or a scrub repair. The taxonomy is
// documented in DESIGN.md §12; Type is dot-separated
// ("election.won", "node.suspect", "scrub.repair", ...).
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Type   string    `json:"type"`
	Node   string    `json:"node,omitempty"` // subject: "cpu1", "mem0", ...
	Term   uint16    `json:"term,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// String renders the event as one log line.
func (e Event) String() string {
	s := fmt.Sprintf("%6d %s %-22s", e.Seq, e.Time.Format("15:04:05.000"), e.Type)
	if e.Node != "" {
		s += " node=" + e.Node
	}
	if e.Term != 0 {
		s += fmt.Sprintf(" term=%d", e.Term)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Ring is a bounded, concurrency-safe control-plane event log: the most
// recent capacity events are retained, older ones are overwritten. All
// methods are nil-safe, so layers can emit unconditionally and a component
// wired without a ring simply drops its events.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	cap  int
	next int // write position once the buffer is full
	seq  uint64
}

// DefaultRingSize is the event capacity daemons use.
const DefaultRingSize = 1024

// NewRing creates a ring retaining the most recent capacity events (values
// < 1 select DefaultRingSize).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]Event, 0, capacity), cap: capacity}
}

// Emit appends an event. Safe on a nil ring (no-op).
func (r *Ring) Emit(typ, node string, term uint16, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	e := Event{Seq: r.seq, Time: time.Now(), Type: typ, Node: node, Term: term, Detail: detail}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % r.cap
	}
	r.mu.Unlock()
}

// Seq returns the total number of events emitted (including overwritten
// ones). Safe on a nil ring.
func (r *Ring) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Recent returns up to n retained events, oldest first (n < 1 returns all
// retained). Safe on a nil ring.
func (r *Ring) Recent(n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < r.cap {
		out = append(out, r.buf...)
	} else {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Dump writes every retained event to w, one line each, oldest first. It is
// what chaos tests print when they fail, so a broken failover leaves its
// control-plane trace in the test log. Safe on a nil ring.
func (r *Ring) Dump(w io.Writer) {
	for _, e := range r.Recent(0) {
		fmt.Fprintln(w, e.String())
	}
}
