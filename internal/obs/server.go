package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Options configures the debug HTTP handler. Any field may be nil: the
// corresponding endpoint degrades gracefully (empty metrics, empty events,
// always-healthy healthz, `{}` statusz).
type Options struct {
	// Registry backs /metrics.
	Registry *Registry
	// Events backs /events.
	Events *Ring
	// Healthz is consulted by /healthz: nil error (or nil func) is 200,
	// an error is 503 with the error text.
	Healthz func() error
	// Statusz builds the /statusz JSON document at request time.
	Statusz func() any
}

// NewHandler builds the debug mux: /metrics (Prometheus text format),
// /healthz, /statusz (JSON), /events (JSON, ?n= caps the count), and
// /debug/pprof/*.
func NewHandler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o.Registry != nil {
			o.Registry.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Healthz != nil {
			if err := o.Healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var doc any = struct{}{}
		if o.Statusz != nil {
			doc = o.Statusz()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 256
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		events := o.Events.Recent(n)
		if events == nil {
			events = []Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(events)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "sift debug server")
		fmt.Fprintln(w, "  /metrics        Prometheus text format")
		fmt.Fprintln(w, "  /healthz        health (200 ok / 503 reason)")
		fmt.Fprintln(w, "  /statusz        JSON status snapshot")
		fmt.Fprintln(w, "  /events[?n=N]   recent control-plane events")
		fmt.Fprintln(w, "  /debug/pprof/   profiling")
	})
	return mux
}

// Start listens on addr and serves the debug handler in the background. It
// returns the server (for Shutdown/Close) and the bound address, so ":0"
// works for tests. The server uses sane read timeouts; pprof profile
// streaming needs an unbounded write side.
func Start(addr string, o Options) (*http.Server, net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{
		Handler:           NewHandler(o),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(l)
	return srv, l.Addr(), nil
}
