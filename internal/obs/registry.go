// Package obs is the runtime observability layer: a lightweight metrics
// registry (counters, gauges, scrape-time functions, and latency summaries
// backed by metrics.Histogram) with Prometheus text encoding, a bounded
// control-plane event ring, and an HTTP debug server serving /metrics,
// /healthz, /statusz, /events, and /debug/pprof/*. Both daemons (cmd/siftd,
// cmd/memnoded) and the in-process Cluster mount it, so throughput
// timelines and failover behaviour — which the paper observes from outside
// (Figures 11/12) — are visible from inside a running deployment.
//
// Metric naming convention: everything is prefixed sift_, subsystem second
// (sift_client_*, sift_kv_*, sift_repmem_*, sift_election_*,
// sift_process_*). Cumulative counters end in _total, latencies are
// summaries in seconds. A metric name may carry a literal label set —
// `sift_node_up{node="mem0"}` — and the registry groups series of one
// family under a single HELP/TYPE header.
package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/metrics"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindSummary
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// metric is one registered series.
type metric struct {
	name   string // full series name, possibly with a {label="x"} set
	family string // name up to the label set
	labels string // inner label text, without braces ("" when unlabeled)
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64 // scrape-time value (counterFunc / gaugeFunc)
	hist    *metrics.Histogram
}

// Registry holds metrics and encodes them in the Prometheus text format.
// Registration methods are idempotent on the full series name: the first
// registration wins and is returned again, so independent layers may safely
// ask for the same counter. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []string // family emission order (first registration)
	byFamily map[string][]*metric
	byName   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byFamily: make(map[string][]*metric),
		byName:   make(map[string]*metric),
	}
}

// splitName separates a series name into family and label text:
// `x_total{op="put"}` -> ("x_total", `op="put"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// register adds m under its name, returning the previously registered
// metric when the name is taken (first registration wins).
func (r *Registry) register(m *metric) *metric {
	m.family, m.labels = splitName(m.name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byName[m.name]; ok {
		if existing.kind != m.kind {
			panic(fmt.Sprintf("obs: %s re-registered as %v, was %v", m.name, m.kind, existing.kind))
		}
		return existing
	}
	if _, ok := r.byFamily[m.family]; !ok {
		r.families = append(r.families, m.family)
	}
	r.byFamily[m.family] = append(r.byFamily[m.family], m)
	r.byName[m.name] = m
	return m
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// CounterFunc registers a cumulative counter whose value is read from fn at
// scrape time (for layers that keep their own atomic counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// Histogram registers (or returns the existing) latency histogram under
// name, encoded as a Prometheus summary in seconds (quantiles 0.5/0.95/0.99
// plus _sum and _count).
func (r *Registry) Histogram(name, help string) *metrics.Histogram {
	m := r.register(&metric{name: name, help: help, kind: kindSummary, hist: &metrics.Histogram{}})
	return m.hist
}

// Observe registers an externally owned histogram under name (same encoding
// as Histogram). Useful when the histogram must outlive or predate the
// registry — e.g. repmem's hot-path latency hooks.
func (r *Registry) Observe(name, help string, h *metrics.Histogram) {
	r.register(&metric{name: name, help: help, kind: kindSummary, hist: h})
}

// snapshot returns the families and metrics in emission order.
func (r *Registry) snapshot() ([]string, map[string][]*metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := append([]string(nil), r.families...)
	byFam := make(map[string][]*metric, len(fams))
	for f, ms := range r.byFamily {
		byFam[f] = append([]*metric(nil), ms...)
	}
	return fams, byFam
}

// fmtFloat renders a metric value the way Prometheus expects.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// series renders a sample line for family+labels with extra label text
// appended (used for quantile labels).
func seriesName(family, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return family
	case labels == "":
		return family + "{" + extra + "}"
	case extra == "":
		return family + "{" + labels + "}"
	default:
		return family + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus encodes every registered metric in the Prometheus text
// exposition format, one HELP/TYPE header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams, byFam := r.snapshot()
	var b strings.Builder
	for _, fam := range fams {
		ms := byFam[fam]
		if len(ms) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", fam, ms[0].help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, ms[0].kind)
		for _, m := range ms {
			switch {
			case m.counter != nil:
				fmt.Fprintf(&b, "%s %d\n", seriesName(fam, m.labels, ""), m.counter.Value())
			case m.gauge != nil:
				fmt.Fprintf(&b, "%s %s\n", seriesName(fam, m.labels, ""), fmtFloat(m.gauge.Value()))
			case m.fn != nil:
				fmt.Fprintf(&b, "%s %s\n", seriesName(fam, m.labels, ""), fmtFloat(m.fn()))
			case m.hist != nil:
				for _, q := range [...]float64{50, 95, 99} {
					fmt.Fprintf(&b, "%s %s\n",
						seriesName(fam, m.labels, fmt.Sprintf("quantile=%q", fmtFloat(q/100))),
						fmtFloat(m.hist.Percentile(q).Seconds()))
				}
				fmt.Fprintf(&b, "%s %s\n", seriesName(fam+"_sum", m.labels, ""), fmtFloat(m.hist.Sum().Seconds()))
				fmt.Fprintf(&b, "%s %d\n", seriesName(fam+"_count", m.labels, ""), m.hist.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Names returns every registered series name, sorted (for tests and the
// debug index page).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterProcess adds the standard process-level gauges (uptime,
// goroutines, heap) to r.
func RegisterProcess(r *Registry) {
	start := time.Now()
	r.GaugeFunc("sift_process_uptime_seconds", "Seconds since the process registered its metrics.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("sift_process_goroutines", "Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("sift_process_heap_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}
