package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sift_test_total", "test counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("sift_test_gauge", "test gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	// Idempotent: the same name returns the same counter.
	if r.Counter("sift_test_total", "again") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sift_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("sift_x_total", "x as gauge")
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter(`sift_ops_total{op="put"}`, "ops by type").Add(3)
	r.Counter(`sift_ops_total{op="get"}`, "ops by type").Add(7)
	r.Gauge("sift_depth", "queue depth").Set(4)
	r.GaugeFunc("sift_dynamic", "scrape-time value", func() float64 { return 1.25 })
	h := r.Histogram(`sift_lat_seconds{op="put"}`, "op latency")
	for i := 0; i < 100; i++ {
		h.Record(time.Millisecond)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP sift_ops_total ops by type",
		"# TYPE sift_ops_total counter",
		`sift_ops_total{op="put"} 3`,
		`sift_ops_total{op="get"} 7`,
		"# TYPE sift_depth gauge",
		"sift_depth 4",
		"sift_dynamic 1.25",
		"# TYPE sift_lat_seconds summary",
		`sift_lat_seconds{op="put",quantile="0.5"} 0.001`,
		`sift_lat_seconds_sum{op="put"} 0.1`,
		`sift_lat_seconds_count{op="put"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encoding missing %q\n%s", want, out)
		}
	}
	// One header per family, even with two labeled series.
	if n := strings.Count(out, "# TYPE sift_ops_total"); n != 1 {
		t.Errorf("family header appears %d times", n)
	}
}

func TestRingBounded(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit("test.event", fmt.Sprintf("n%d", i), uint16(i), "")
	}
	if r.Seq() != 10 {
		t.Fatalf("seq = %d", r.Seq())
	}
	got := r.Recent(0)
	if len(got) != 4 {
		t.Fatalf("retained %d events, cap 4", len(got))
	}
	// Oldest-first, and only the most recent four survive.
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
	if got2 := r.Recent(2); len(got2) != 2 || got2[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v", got2)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Emit("x", "", 0, "") // must not panic
	if r.Recent(5) != nil || r.Seq() != 0 {
		t.Fatal("nil ring not empty")
	}
	r.Dump(&strings.Builder{})
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit("c", "n", 1, "")
			}
		}()
	}
	wg.Wait()
	if r.Seq() != 4000 {
		t.Fatalf("seq = %d", r.Seq())
	}
	if len(r.Recent(0)) != 64 {
		t.Fatalf("retained %d", len(r.Recent(0)))
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sift_smoke_total", "smoke").Add(9)
	ring := NewRing(16)
	ring.Emit("election.won", "cpu1", 3, "")
	healthy := true
	h := NewHandler(Options{
		Registry: reg,
		Events:   ring,
		Healthz: func() error {
			if !healthy {
				return fmt.Errorf("no quorum")
			}
			return nil
		},
		Statusz: func() any { return map[string]any{"role": "coordinator", "term": 3} },
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "sift_smoke_total 9") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	healthy = false
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no quorum") {
		t.Fatalf("unhealthy /healthz: %d %q", code, body)
	}
	code, body := get("/statusz")
	if code != 200 {
		t.Fatalf("/statusz: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil || doc["role"] != "coordinator" {
		t.Fatalf("/statusz doc %q: %v", body, err)
	}
	code, body = get("/events")
	if code != 200 {
		t.Fatalf("/events: %d", code)
	}
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil || len(events) != 1 || events[0].Type != "election.won" {
		t.Fatalf("/events doc %q: %v", body, err)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path: %d", code)
	}
}

func TestStartBindsAndServes(t *testing.T) {
	srv, addr, err := Start("127.0.0.1:0", Options{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
