// Package epaxos implements the EPaxos comparison system from the paper's
// evaluation (§6.3.1): a leaderless replicated key-value store where every
// replica can be the "command leader" for client operations.
//
// The implementation follows Egalitarian Paxos (Moraru et al., SOSP'13) in
// its commit protocol: a command leader PreAccepts a command with its
// dependency set (interfering instances) and sequence number; if a fast
// quorum returns the attributes unchanged, the command commits after one
// round trip, otherwise a second (Accept) round fixes the merged attributes
// before committing. Committed instances execute in dependency order —
// strongly connected components are executed in sequence-number order — so
// interfering commands apply in the same order at every replica.
//
// As in the paper's configuration, commands are batched ("we have changed
// the batching parameter [to] 100µs or 100 requests, whichever comes
// first") and reads are ordered through the protocol like writes, which is
// why EPaxos read throughput trails the RDMA systems in Figure 5.
//
// Scope note: the failure-recovery path (Explicit Prepare) is not
// implemented — the paper exercises EPaxos only in failure-free throughput
// and latency experiments (Figures 5 and 6).
package epaxos

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/msg"
)

// Client-visible errors.
var (
	// ErrNotFound is returned by Get for missing keys.
	ErrNotFound = errors.New("epaxos: key not found")
	// ErrTimeout is returned when a command fails to commit/execute in time.
	ErrTimeout = errors.New("epaxos: command timed out")
	// ErrStopped is returned after Stop.
	ErrStopped = errors.New("epaxos: replica stopped")
)

// instID names an instance: (replica, slot).
type instID struct {
	Replica uint8
	Slot    uint64
}

func (id instID) zero() bool { return id.Replica == 0 && id.Slot == 0 }

// instStatus tracks an instance's protocol phase.
type instStatus uint8

const (
	statusNone instStatus = iota
	statusPreAccepted
	statusAccepted
	statusCommitted
	statusExecuted
)

// command is one state-machine operation.
type command struct {
	Op    byte
	Key   []byte
	Value []byte
}

// Command opcodes.
const (
	opPut    byte = 1
	opDelete byte = 2
	opGet    byte = 3
	opNoop   byte = 4
)

// instance is one slot in the two-dimensional instance space.
type instance struct {
	id     instID
	cmds   []command
	deps   []instID
	seq    uint64
	status instStatus

	// Command-leader bookkeeping.
	preAcceptOKs int
	acceptOKs    int
	attrsChanged bool
	waiters      []*pendingCmd
	mergedDeps   []instID
	mergedSeq    uint64
}

// pendingCmd is a client operation waiting for commit (writes) or
// execution (reads).
type pendingCmd struct {
	cmdIdx    int // index within the instance's batch
	needsExec bool
	done      chan cmdResult
}

type cmdResult struct {
	value []byte
	found bool
	err   error
}

// Config parameterises one replica.
type Config struct {
	// ID is this replica's index (1-based; also its message-network suffix).
	ID uint8
	// Peers lists every replica's message-network name, indexed by ID-1.
	Peers []string
	// Endpoint is this replica's mailbox.
	Endpoint *msg.Endpoint
	// BatchWindow and BatchSize control command batching (paper: 100µs /
	// 100 requests).
	BatchWindow time.Duration
	BatchSize   int
	// CommandTimeout bounds one client operation (default 2s).
	CommandTimeout time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BatchWindow <= 0 {
		out.BatchWindow = 100 * time.Microsecond
	}
	if out.BatchSize <= 0 {
		out.BatchSize = 100
	}
	if out.CommandTimeout <= 0 {
		out.CommandTimeout = 2 * time.Second
	}
	return out
}

// Replica is one EPaxos group member.
type Replica struct {
	cfg Config
	ep  *msg.Endpoint
	n   int // group size

	// Protocol state, owned by the run loop.
	instances map[instID]*instance
	nextSlot  uint64
	// latestByKey maps a key to the most recent interfering instance.
	latestByKey map[string]instID

	kv map[string][]byte // executed state machine

	// Batching.
	batch      []command
	batchWait  []*pendingCmd
	batchTimer *time.Timer
	batchArmed bool

	execQueue []*instance

	proposeCh chan *proposeReq
	stopCh    chan struct{}
	stopOnce  sync.Once
	doneCh    chan struct{}

	commits  atomic.Uint64
	executed atomic.Uint64
	fastPath atomic.Uint64
	slowPath atomic.Uint64
}

type proposeReq struct {
	cmd  command
	pend *pendingCmd
}

// NewReplica creates a replica; call Start to run it.
func NewReplica(cfg Config) *Replica {
	c := cfg.withDefaults()
	r := &Replica{
		cfg:         c,
		ep:          c.Endpoint,
		n:           len(c.Peers),
		instances:   make(map[instID]*instance),
		latestByKey: make(map[string]instID),
		kv:          make(map[string][]byte),
		proposeCh:   make(chan *proposeReq, 4096),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
	}
	r.batchTimer = time.NewTimer(time.Hour)
	r.batchTimer.Stop()
	return r
}

// Start launches the replica's event loop.
func (r *Replica) Start() { go r.run() }

// Stop terminates the replica.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.doneCh
}

// Commits returns committed instance count; FastPathRate the fraction of
// commits that used the fast path.
func (r *Replica) Commits() uint64 { return r.commits.Load() }

// FastPathCommits returns the number of fast-path commits.
func (r *Replica) FastPathCommits() uint64 { return r.fastPath.Load() }

// SlowPathCommits returns the number of two-round commits.
func (r *Replica) SlowPathCommits() uint64 { return r.slowPath.Load() }

// fastQuorumReplies is how many PreAcceptReply messages (excluding the
// leader itself) the fast path needs: the EPaxos optimized fast quorum is
// F + ⌊(F+1)/2⌋ replicas including the leader.
func (r *Replica) fastQuorumReplies() int {
	f := (r.n - 1) / 2
	q := f + (f+1)/2 // including leader
	if q < 1 {
		q = 1
	}
	return q - 1
}

// slowQuorumReplies is replies needed for the Accept phase (F+1 incl leader).
func (r *Replica) slowQuorumReplies() int {
	return (r.n-1)/2 + 1 - 1
}

// run is the single-threaded replica event loop.
func (r *Replica) run() {
	defer close(r.doneCh)
	for {
		select {
		case <-r.stopCh:
			r.failAll(ErrStopped)
			return
		case m := <-r.ep.Inbox():
			r.handleMessage(m)
		case req := <-r.proposeCh:
			r.enqueue(req)
			// Drain whatever else is already queued into the same batch
			// and commit it in one instance — the effective behaviour of
			// the 100µs/100-request batching window under load. The yield
			// between passes lets just-woken clients enqueue.
			for pass := 0; pass < 2 && len(r.batch) < r.cfg.BatchSize && len(r.batch) > 0; pass++ {
				for len(r.batch) < r.cfg.BatchSize {
					select {
					case more := <-r.proposeCh:
						r.enqueue(more)
						continue
					default:
					}
					break
				}
				if pass == 0 {
					runtime.Gosched()
				}
			}
			if r.batchArmed {
				if !r.batchTimer.Stop() {
					select {
					case <-r.batchTimer.C:
					default:
					}
				}
				r.batchArmed = false
			}
			r.flushBatch()
		case <-r.batchTimer.C:
			r.batchArmed = false
			r.flushBatch()
		}
	}
}

func (r *Replica) failAll(err error) {
	for _, inst := range r.instances {
		for _, w := range inst.waiters {
			w.done <- cmdResult{err: err}
		}
		inst.waiters = nil
	}
	for _, w := range r.batchWait {
		w.done <- cmdResult{err: err}
	}
	r.batchWait = nil
}

// enqueue adds a client command to the current batch, flushing on size.
func (r *Replica) enqueue(req *proposeReq) {
	req.pend.cmdIdx = len(r.batch)
	r.batch = append(r.batch, req.cmd)
	r.batchWait = append(r.batchWait, req.pend)
	if len(r.batch) >= r.cfg.BatchSize {
		if r.batchArmed {
			if !r.batchTimer.Stop() {
				select {
				case <-r.batchTimer.C:
				default:
				}
			}
			r.batchArmed = false
		}
		r.flushBatch()
		return
	}
	if !r.batchArmed {
		r.batchTimer.Reset(r.cfg.BatchWindow)
		r.batchArmed = true
	}
}

// flushBatch starts consensus on the pending batch.
func (r *Replica) flushBatch() {
	if len(r.batch) == 0 {
		return
	}
	cmds := r.batch
	waiters := r.batchWait
	r.batch = nil
	r.batchWait = nil

	r.nextSlot++
	id := instID{Replica: r.cfg.ID, Slot: r.nextSlot}
	deps, seq := r.attributesFor(cmds)
	inst := &instance{
		id: id, cmds: cmds, deps: deps, seq: seq,
		status:  statusPreAccepted,
		waiters: waiters,
	}
	inst.mergedDeps = append([]instID(nil), deps...)
	inst.mergedSeq = seq
	r.instances[id] = inst
	r.recordInterference(id, cmds)

	payload := encodePreAccept(preAccept{ID: id, Cmds: cmds, Deps: deps, Seq: seq})
	for i, p := range r.cfg.Peers {
		if uint8(i+1) == r.cfg.ID {
			continue
		}
		r.ep.Send(p, msgPreAccept, payload)
	}
	if r.n == 1 {
		r.commitInstance(inst, true)
	}
}

// attributesFor computes deps/seq for a new batch: the latest interfering
// instance per touched key.
func (r *Replica) attributesFor(cmds []command) ([]instID, uint64) {
	depSet := map[instID]struct{}{}
	var seq uint64
	for _, c := range cmds {
		if d, ok := r.latestByKey[string(c.Key)]; ok {
			depSet[d] = struct{}{}
			if di := r.instances[d]; di != nil && di.seq >= seq {
				seq = di.seq
			}
		}
	}
	deps := make([]instID, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	return deps, seq + 1
}

// recordInterference marks id as the latest instance touching its keys.
func (r *Replica) recordInterference(id instID, cmds []command) {
	for _, c := range cmds {
		r.latestByKey[string(c.Key)] = id
	}
}

// commitInstance finalises an instance and acks write waiters.
func (r *Replica) commitInstance(inst *instance, fast bool) {
	if inst.status == statusCommitted || inst.status == statusExecuted {
		return
	}
	inst.status = statusCommitted
	r.commits.Add(1)
	if fast {
		r.fastPath.Add(1)
	} else {
		r.slowPath.Add(1)
	}
	// Writes ack at commit; reads wait for execution.
	for _, w := range inst.waiters {
		if !w.needsExec {
			w.done <- cmdResult{}
		}
	}
	payload := encodeCommit(commitMsg{ID: inst.id, Cmds: inst.cmds, Deps: inst.deps, Seq: inst.seq})
	for i, p := range r.cfg.Peers {
		if uint8(i+1) == r.cfg.ID {
			continue
		}
		r.ep.Send(p, msgCommit, payload)
	}
	r.tryExecute(inst)
}
