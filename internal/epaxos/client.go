package epaxos

import "time"

// Put commits a write through this replica as command leader. It returns
// once the command is committed (EPaxos acknowledges writes at commit, not
// execution).
func (r *Replica) Put(key, value []byte) error {
	_, _, err := r.submit(command{Op: opPut, Key: key, Value: value}, false)
	return err
}

// Delete removes a key.
func (r *Replica) Delete(key []byte) error {
	_, _, err := r.submit(command{Op: opDelete, Key: key}, false)
	return err
}

// Get reads a key. Reads order through the protocol like writes and return
// after execution, which is why every EPaxos read costs network round
// trips (paper §6.3.2: "both reads and writes require network operations").
func (r *Replica) Get(key []byte) ([]byte, error) {
	v, found, err := r.submit(command{Op: opGet, Key: key}, true)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, ErrNotFound
	}
	return v, nil
}

// submit runs one command through consensus.
func (r *Replica) submit(cmd command, needsExec bool) ([]byte, bool, error) {
	// Copy caller buffers: the command outlives this call (batching, wire
	// encoding, execution) and callers may reuse their slices.
	cmd.Key = append([]byte(nil), cmd.Key...)
	cmd.Value = append([]byte(nil), cmd.Value...)
	pend := &pendingCmd{needsExec: needsExec, done: make(chan cmdResult, 1)}
	select {
	case r.proposeCh <- &proposeReq{cmd: cmd, pend: pend}:
	case <-r.stopCh:
		return nil, false, ErrStopped
	}
	select {
	case res := <-pend.done:
		return res.value, res.found, res.err
	case <-time.After(r.cfg.CommandTimeout):
		return nil, false, ErrTimeout
	case <-r.stopCh:
		return nil, false, ErrStopped
	}
}
