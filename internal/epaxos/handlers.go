package epaxos

import (
	"github.com/repro/sift/internal/msg"
)

// handleMessage dispatches one protocol message on the loop thread.
func (r *Replica) handleMessage(m msg.Message) {
	switch m.Type {
	case msgPreAccept:
		pa, err := decodePreAccept(m.Payload)
		if err != nil {
			return
		}
		r.onPreAccept(m.From, pa)
	case msgPreAcceptReply:
		pr, err := decodePreAcceptReply(m.Payload)
		if err != nil {
			return
		}
		r.onPreAcceptReply(pr)
	case msgAccept:
		a, err := decodeAccept(m.Payload)
		if err != nil {
			return
		}
		r.onAccept(m.From, a)
	case msgAcceptReply:
		ar, err := decodeAcceptReply(m.Payload)
		if err != nil {
			return
		}
		r.onAcceptReply(ar)
	case msgCommit:
		c, err := decodeCommit(m.Payload)
		if err != nil {
			return
		}
		r.onCommit(c)
	}
}

// onPreAccept merges local interference knowledge into the proposed
// attributes and replies.
func (r *Replica) onPreAccept(from string, pa preAccept) {
	// Merge our own latest interfering instances.
	deps := append([]instID(nil), pa.Deps...)
	seq := pa.Seq
	changed := false
	depSet := map[instID]struct{}{}
	for _, d := range deps {
		depSet[d] = struct{}{}
	}
	for _, c := range pa.Cmds {
		if d, ok := r.latestByKey[string(c.Key)]; ok && d != pa.ID {
			if _, dup := depSet[d]; !dup {
				depSet[d] = struct{}{}
				deps = append(deps, d)
				changed = true
			}
			if di := r.instances[d]; di != nil && di.seq >= seq {
				seq = di.seq + 1
				changed = true
			}
		}
	}
	inst := r.instances[pa.ID]
	if inst == nil {
		inst = &instance{id: pa.ID}
		r.instances[pa.ID] = inst
	}
	if inst.status == statusCommitted || inst.status == statusExecuted {
		return // already decided
	}
	inst.cmds = pa.Cmds
	inst.deps = deps
	inst.seq = seq
	inst.status = statusPreAccepted
	r.recordInterference(pa.ID, pa.Cmds)

	r.ep.Send(from, msgPreAcceptReply, encodePreAcceptReply(preAcceptReply{
		ID: pa.ID, Deps: deps, Seq: seq, Changed: changed,
	}))
}

// onPreAcceptReply tallies replies at the command leader.
func (r *Replica) onPreAcceptReply(pr preAcceptReply) {
	inst := r.instances[pr.ID]
	if inst == nil || inst.status != statusPreAccepted || pr.ID.Replica != r.cfg.ID {
		return
	}
	inst.preAcceptOKs++
	if pr.Changed {
		inst.attrsChanged = true
	}
	// Merge attributes for the potential slow path.
	depSet := map[instID]struct{}{}
	for _, d := range inst.mergedDeps {
		depSet[d] = struct{}{}
	}
	for _, d := range pr.Deps {
		if _, dup := depSet[d]; !dup {
			depSet[d] = struct{}{}
			inst.mergedDeps = append(inst.mergedDeps, d)
		}
	}
	if pr.Seq > inst.mergedSeq {
		inst.mergedSeq = pr.Seq
	}

	if inst.preAcceptOKs < r.fastQuorumReplies() {
		return
	}
	if !inst.attrsChanged {
		// Fast path: every reply agreed with the original attributes.
		r.commitInstance(inst, true)
		return
	}
	// Slow path: fix the merged attributes via Accept.
	inst.deps = inst.mergedDeps
	inst.seq = inst.mergedSeq
	inst.status = statusAccepted
	inst.acceptOKs = 0
	payload := encodeAccept(acceptMsg{ID: inst.id, Cmds: inst.cmds, Deps: inst.deps, Seq: inst.seq})
	for i, p := range r.cfg.Peers {
		if uint8(i+1) == r.cfg.ID {
			continue
		}
		r.ep.Send(p, msgAccept, payload)
	}
}

// onAccept records the fixed attributes and acks.
func (r *Replica) onAccept(from string, a acceptMsg) {
	inst := r.instances[a.ID]
	if inst == nil {
		inst = &instance{id: a.ID}
		r.instances[a.ID] = inst
	}
	if inst.status == statusCommitted || inst.status == statusExecuted {
		return
	}
	inst.cmds = a.Cmds
	inst.deps = a.Deps
	inst.seq = a.Seq
	inst.status = statusAccepted
	r.recordInterference(a.ID, a.Cmds)
	r.ep.Send(from, msgAcceptReply, encodeAcceptReply(acceptReply{ID: a.ID}))
}

// onAcceptReply tallies Accept acks at the command leader.
func (r *Replica) onAcceptReply(ar acceptReply) {
	inst := r.instances[ar.ID]
	if inst == nil || inst.status != statusAccepted || ar.ID.Replica != r.cfg.ID {
		return
	}
	inst.acceptOKs++
	if inst.acceptOKs >= r.slowQuorumReplies() {
		r.commitInstance(inst, false)
	}
}

// onCommit installs a decided instance from another leader.
func (r *Replica) onCommit(c commitMsg) {
	inst := r.instances[c.ID]
	if inst == nil {
		inst = &instance{id: c.ID}
		r.instances[c.ID] = inst
	}
	if inst.status == statusExecuted || inst.status == statusCommitted {
		return
	}
	inst.cmds = c.Cmds
	inst.deps = c.Deps
	inst.seq = c.Seq
	inst.status = statusCommitted
	r.recordInterference(c.ID, c.Cmds)
	r.commits.Add(1)
	r.tryExecute(inst)
}
