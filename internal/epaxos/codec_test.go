package epaxos

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestInstanceMsgRoundTrip(t *testing.T) {
	f := func(replica uint8, slot, seq uint64, key, value []byte, depSlot uint64) bool {
		m := preAccept{
			ID: instID{Replica: replica, Slot: slot},
			Cmds: []command{
				{Op: opPut, Key: key, Value: value},
				{Op: opGet, Key: key},
			},
			Deps: []instID{{Replica: replica ^ 1, Slot: depSlot}},
			Seq:  seq,
		}
		got, err := decodeInstanceMsg(encodeInstanceMsg(m))
		if err != nil {
			return false
		}
		return got.ID == m.ID && got.Seq == m.Seq &&
			len(got.Cmds) == 2 && len(got.Deps) == 1 &&
			got.Deps[0] == m.Deps[0] &&
			bytes.Equal(got.Cmds[0].Key, key) && bytes.Equal(got.Cmds[0].Value, value) &&
			got.Cmds[1].Op == opGet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInstanceMsgEmptyDepsAndCmds(t *testing.T) {
	m := preAccept{ID: instID{Replica: 2, Slot: 5}, Seq: 1}
	got, err := decodeInstanceMsg(encodeInstanceMsg(m))
	if err != nil || got.ID != m.ID || len(got.Cmds) != 0 || len(got.Deps) != 0 {
		t.Fatalf("got %+v err=%v", got, err)
	}
}

func TestPreAcceptReplyRoundTrip(t *testing.T) {
	f := func(replica uint8, slot, seq uint64, changed bool) bool {
		m := preAcceptReply{
			ID:      instID{Replica: replica, Slot: slot},
			Deps:    []instID{{Replica: 1, Slot: 2}, {Replica: 3, Slot: 4}},
			Seq:     seq,
			Changed: changed,
		}
		got, err := decodePreAcceptReply(encodePreAcceptReply(m))
		if err != nil {
			return false
		}
		return got.ID == m.ID && got.Seq == m.Seq && got.Changed == m.Changed &&
			len(got.Deps) == 2 && got.Deps[0] == m.Deps[0] && got.Deps[1] == m.Deps[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptReplyRoundTrip(t *testing.T) {
	m := acceptReply{ID: instID{Replica: 4, Slot: 77}}
	got, err := decodeAcceptReply(encodeAcceptReply(m))
	if err != nil || got != m {
		t.Fatalf("got %+v err=%v", got, err)
	}
}

func TestCodecRejectsShortInput(t *testing.T) {
	short := []byte{9}
	if _, err := decodeInstanceMsg(short); err == nil {
		t.Fatal("short instance msg accepted")
	}
	if _, err := decodePreAcceptReply(short); err == nil {
		t.Fatal("short preAcceptReply accepted")
	}
	if _, err := decodeAcceptReply(short); err == nil {
		t.Fatal("short acceptReply accepted")
	}
	if _, _, err := decodeInstID(short); err == nil {
		t.Fatal("short instID accepted")
	}
	if _, _, err := decodeCmds(short); err == nil {
		t.Fatal("short cmds accepted")
	}
	if _, _, err := decodeDeps(short); err == nil {
		t.Fatal("short deps accepted")
	}
}
