package epaxos

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/repro/sift/internal/msg"
)

type cluster struct {
	net      *msg.Network
	replicas []*Replica
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	net := msg.NewNetwork(nil)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("e%d", i+1)
	}
	c := &cluster{net: net}
	for i := 0; i < n; i++ {
		ep := net.Join(names[i], 8192)
		r := NewReplica(Config{
			ID:          uint8(i + 1),
			Peers:       names,
			Endpoint:    ep,
			BatchWindow: 100 * time.Microsecond,
			BatchSize:   100,
		})
		c.replicas = append(c.replicas, r)
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range c.replicas {
			r.Stop()
		}
	})
	return c
}

func TestPutGetSingleReplicaLeader(t *testing.T) {
	c := newCluster(t, 3)
	r := c.replicas[0]
	if err := r.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestGetMissing(t *testing.T) {
	c := newCluster(t, 3)
	if _, err := c.replicas[1].Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestAnyReplicaCanLead(t *testing.T) {
	c := newCluster(t, 3)
	// Write through each replica in turn; read through a different one.
	for i, r := range c.replicas {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := r.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("replica %d put: %v", i, err)
		}
	}
	for i := range c.replicas {
		reader := c.replicas[(i+1)%3]
		k := []byte(fmt.Sprintf("key-%d", i))
		v, err := reader.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("cross-replica read %d: %q err=%v", i, v, err)
		}
	}
}

func TestDelete(t *testing.T) {
	c := newCluster(t, 3)
	r := c.replicas[0]
	r.Put([]byte("k"), []byte("v"))
	if err := r.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.replicas[2].Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key visible: %v", err)
	}
}

func TestInterferingWritesConverge(t *testing.T) {
	// Two replicas hammer the same key concurrently; after the dust settles
	// every replica must hold the same value (same execution order).
	c := newCluster(t, 3)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := c.replicas[w]
			for i := 0; i < 40; i++ {
				if err := r.Put([]byte("contested"), []byte(fmt.Sprintf("r%d-%d", w, i))); err != nil {
					t.Errorf("replica %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Read through each replica until they agree (execution is async on
	// non-leader replicas).
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		vals := make([]string, 3)
		for i, r := range c.replicas {
			v, err := r.Get([]byte("contested"))
			if err != nil {
				t.Fatal(err)
			}
			vals[i] = string(v)
		}
		if vals[0] == vals[1] && vals[1] == vals[2] {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("replicas never converged on the contested key")
}

func TestDisjointKeysCommitFast(t *testing.T) {
	// Non-interfering commands from different replicas should mostly take
	// the fast path.
	c := newCluster(t, 3)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := c.replicas[w]
			for i := 0; i < 30; i++ {
				if err := r.Put([]byte(fmt.Sprintf("r%d-k%d", w, i)), []byte("v")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var fast, slow uint64
	for _, r := range c.replicas {
		fast += r.FastPathCommits()
		slow += r.SlowPathCommits()
	}
	if fast == 0 {
		t.Fatalf("no fast-path commits at all (fast=%d slow=%d)", fast, slow)
	}
}

func TestBatchingAggregatesCommands(t *testing.T) {
	c := newCluster(t, 3)
	r := c.replicas[0]
	var wg sync.WaitGroup
	const n = 60
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := r.Put([]byte(fmt.Sprintf("b%d", i)), []byte("v")); err != nil {
				t.Errorf("put: %v", err)
			}
		}(i)
	}
	wg.Wait()
	// Batching is load-dependent (queued commands share an instance), so n
	// commands use at most n instances — and all data must be present.
	if got := r.Commits(); got > n {
		t.Fatalf("commits = %d > %d commands", got, n)
	}
	for i := 0; i < n; i++ {
		if _, err := r.Get([]byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatalf("b%d missing: %v", i, err)
		}
	}
}

func TestFiveReplicas(t *testing.T) {
	c := newCluster(t, 5)
	for i, r := range c.replicas {
		if err := r.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		v, err := c.replicas[(i+2)%5].Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || string(v) != "v" {
			t.Fatalf("k%d: %q err=%v", i, v, err)
		}
	}
}

func TestReadYourWrites(t *testing.T) {
	c := newCluster(t, 3)
	r := c.replicas[1]
	for i := 0; i < 20; i++ {
		v := []byte(fmt.Sprintf("v%d", i))
		if err := r.Put([]byte("ryw"), v); err != nil {
			t.Fatal(err)
		}
		got, err := r.Get([]byte("ryw"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("iteration %d: read %q after writing %q", i, got, v)
		}
	}
}

func TestStopFailsPending(t *testing.T) {
	c := newCluster(t, 3)
	r := c.replicas[0]
	r.Stop()
	if err := r.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuorumArithmetic(t *testing.T) {
	cases := []struct {
		n, fastReplies, slowReplies int
	}{
		{3, 1, 1},
		{5, 2, 2},
	}
	for _, c := range cases {
		r := &Replica{n: c.n}
		if got := r.fastQuorumReplies(); got != c.fastReplies {
			t.Errorf("n=%d fast replies = %d, want %d", c.n, got, c.fastReplies)
		}
		if got := r.slowQuorumReplies(); got != c.slowReplies {
			t.Errorf("n=%d slow replies = %d, want %d", c.n, got, c.slowReplies)
		}
	}
}
