package epaxos

import "sort"

// Execution: committed instances apply to the state machine in dependency
// order. The dependency graph can contain cycles (two interfering commands
// proposed concurrently can each record the other), so execution finds
// strongly connected components and runs each component's instances in
// (seq, replica, slot) order — the EPaxos execution algorithm.

// tryExecute queues inst for execution and drains whatever has become
// executable.
func (r *Replica) tryExecute(inst *instance) {
	r.execQueue = append(r.execQueue, inst)
	r.drainExecQueue()
}

// drainExecQueue repeatedly attempts execution of queued instances until no
// further progress is possible (remaining ones are blocked on uncommitted
// dependencies).
func (r *Replica) drainExecQueue() {
	for {
		progress := false
		remaining := r.execQueue[:0]
		for _, inst := range r.execQueue {
			if inst.status == statusExecuted {
				progress = true
				continue
			}
			if r.executeGraph(inst) {
				progress = true
			} else {
				remaining = append(remaining, inst)
			}
		}
		r.execQueue = remaining
		if !progress || len(r.execQueue) == 0 {
			return
		}
	}
}

// tarjanState carries the SCC traversal bookkeeping.
type tarjanState struct {
	index   map[instID]int
	lowlink map[instID]int
	onStack map[instID]bool
	stack   []instID
	next    int
	blocked bool
}

// executeGraph runs Tarjan's algorithm from inst over unexecuted committed
// instances and executes complete components. Returns false when blocked on
// an uncommitted dependency (nothing is executed in that case... components
// already completed before the block was discovered remain executed, which
// is safe: a completed component never depends on the blocked region).
func (r *Replica) executeGraph(inst *instance) bool {
	st := &tarjanState{
		index:   make(map[instID]int),
		lowlink: make(map[instID]int),
		onStack: make(map[instID]bool),
	}
	r.strongConnect(inst, st)
	return !st.blocked && inst.status == statusExecuted
}

func (r *Replica) strongConnect(v *instance, st *tarjanState) {
	st.index[v.id] = st.next
	st.lowlink[v.id] = st.next
	st.next++
	st.stack = append(st.stack, v.id)
	st.onStack[v.id] = true

	for _, depID := range v.deps {
		dep := r.instances[depID]
		if dep == nil || dep.status == statusPreAccepted || dep.status == statusAccepted || dep.status == statusNone {
			st.blocked = true
			continue
		}
		if dep.status == statusExecuted {
			continue
		}
		if _, seen := st.index[depID]; !seen {
			r.strongConnect(dep, st)
			if st.lowlink[depID] < st.lowlink[v.id] {
				st.lowlink[v.id] = st.lowlink[depID]
			}
		} else if st.onStack[depID] {
			if st.index[depID] < st.lowlink[v.id] {
				st.lowlink[v.id] = st.index[depID]
			}
		}
	}

	if st.lowlink[v.id] == st.index[v.id] {
		// v roots an SCC: pop it.
		var comp []*instance
		for {
			n := len(st.stack) - 1
			id := st.stack[n]
			st.stack = st.stack[:n]
			st.onStack[id] = false
			comp = append(comp, r.instances[id])
			if id == v.id {
				break
			}
		}
		if st.blocked {
			return // a dependency below this component is uncommitted
		}
		sort.Slice(comp, func(i, j int) bool {
			a, b := comp[i], comp[j]
			if a.seq != b.seq {
				return a.seq < b.seq
			}
			if a.id.Replica != b.id.Replica {
				return a.id.Replica < b.id.Replica
			}
			return a.id.Slot < b.id.Slot
		})
		for _, in := range comp {
			r.applyInstance(in)
		}
	}
}

// applyInstance runs an instance's commands against the state machine and
// answers execution waiters (reads).
func (r *Replica) applyInstance(in *instance) {
	if in.status == statusExecuted {
		return
	}
	results := make([]cmdResult, len(in.cmds))
	for i, c := range in.cmds {
		switch c.Op {
		case opPut:
			r.kv[string(c.Key)] = append([]byte(nil), c.Value...)
		case opDelete:
			delete(r.kv, string(c.Key))
		case opGet:
			v, ok := r.kv[string(c.Key)]
			if ok {
				results[i] = cmdResult{value: append([]byte(nil), v...), found: true}
			}
		}
	}
	in.status = statusExecuted
	r.executed.Add(1)
	for _, w := range in.waiters {
		if w.needsExec {
			w.done <- results[w.cmdIdx]
		}
	}
	in.waiters = nil
}
