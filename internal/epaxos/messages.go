package epaxos

import (
	"encoding/binary"
	"errors"
)

// Protocol message types.
const (
	msgPreAccept uint8 = iota + 1
	msgPreAcceptReply
	msgAccept
	msgAcceptReply
	msgCommit
)

var errShort = errors.New("epaxos: short message")

// --- primitive helpers ---

func encodeInstID(buf []byte, id instID) int {
	buf[0] = id.Replica
	binary.LittleEndian.PutUint64(buf[1:], id.Slot)
	return 9
}

func decodeInstID(b []byte) (instID, int, error) {
	if len(b) < 9 {
		return instID{}, 0, errShort
	}
	return instID{Replica: b[0], Slot: binary.LittleEndian.Uint64(b[1:])}, 9, nil
}

func depsSize(deps []instID) int { return 2 + 9*len(deps) }

func encodeDeps(buf []byte, deps []instID) int {
	binary.LittleEndian.PutUint16(buf, uint16(len(deps)))
	off := 2
	for _, d := range deps {
		off += encodeInstID(buf[off:], d)
	}
	return off
}

func decodeDeps(b []byte) ([]instID, int, error) {
	if len(b) < 2 {
		return nil, 0, errShort
	}
	n := int(binary.LittleEndian.Uint16(b))
	off := 2
	deps := make([]instID, 0, n)
	for i := 0; i < n; i++ {
		d, used, err := decodeInstID(b[off:])
		if err != nil {
			return nil, 0, err
		}
		deps = append(deps, d)
		off += used
	}
	return deps, off, nil
}

func cmdsSize(cmds []command) int {
	n := 2
	for _, c := range cmds {
		n += 1 + 4 + len(c.Key) + 4 + len(c.Value)
	}
	return n
}

func encodeCmds(buf []byte, cmds []command) int {
	binary.LittleEndian.PutUint16(buf, uint16(len(cmds)))
	off := 2
	for _, c := range cmds {
		buf[off] = c.Op
		off++
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(c.Key)))
		off += 4
		off += copy(buf[off:], c.Key)
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(c.Value)))
		off += 4
		off += copy(buf[off:], c.Value)
	}
	return off
}

func decodeCmds(b []byte) ([]command, int, error) {
	if len(b) < 2 {
		return nil, 0, errShort
	}
	n := int(binary.LittleEndian.Uint16(b))
	off := 2
	cmds := make([]command, 0, n)
	for i := 0; i < n; i++ {
		if off+9 > len(b) {
			return nil, 0, errShort
		}
		c := command{Op: b[off]}
		off++
		kl := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+kl+4 > len(b) {
			return nil, 0, errShort
		}
		c.Key = append([]byte(nil), b[off:off+kl]...)
		off += kl
		vl := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if off+vl > len(b) {
			return nil, 0, errShort
		}
		c.Value = append([]byte(nil), b[off:off+vl]...)
		off += vl
		cmds = append(cmds, c)
	}
	return cmds, off, nil
}

// --- messages ---

// preAccept (and acceptMsg, commitMsg, which share the shape) carries an
// instance's id, batch, and attributes.
type preAccept struct {
	ID   instID
	Cmds []command
	Deps []instID
	Seq  uint64
}

type acceptMsg = preAccept
type commitMsg = preAccept

func encodeInstanceMsg(m preAccept) []byte {
	buf := make([]byte, 9+cmdsSize(m.Cmds)+depsSize(m.Deps)+8)
	off := encodeInstID(buf, m.ID)
	off += encodeCmds(buf[off:], m.Cmds)
	off += encodeDeps(buf[off:], m.Deps)
	binary.LittleEndian.PutUint64(buf[off:], m.Seq)
	return buf
}

func decodeInstanceMsg(b []byte) (preAccept, error) {
	var m preAccept
	id, off, err := decodeInstID(b)
	if err != nil {
		return m, err
	}
	m.ID = id
	cmds, used, err := decodeCmds(b[off:])
	if err != nil {
		return m, err
	}
	m.Cmds = cmds
	off += used
	deps, used, err := decodeDeps(b[off:])
	if err != nil {
		return m, err
	}
	m.Deps = deps
	off += used
	if off+8 > len(b) {
		return m, errShort
	}
	m.Seq = binary.LittleEndian.Uint64(b[off:])
	return m, nil
}

func encodePreAccept(m preAccept) []byte          { return encodeInstanceMsg(m) }
func decodePreAccept(b []byte) (preAccept, error) { return decodeInstanceMsg(b) }
func encodeAccept(m acceptMsg) []byte             { return encodeInstanceMsg(m) }
func decodeAccept(b []byte) (acceptMsg, error)    { return decodeInstanceMsg(b) }
func encodeCommit(m commitMsg) []byte             { return encodeInstanceMsg(m) }
func decodeCommit(b []byte) (commitMsg, error)    { return decodeInstanceMsg(b) }

// preAcceptReply returns possibly-updated attributes.
type preAcceptReply struct {
	ID      instID
	Deps    []instID
	Seq     uint64
	Changed bool
}

func encodePreAcceptReply(m preAcceptReply) []byte {
	buf := make([]byte, 9+depsSize(m.Deps)+9)
	off := encodeInstID(buf, m.ID)
	off += encodeDeps(buf[off:], m.Deps)
	binary.LittleEndian.PutUint64(buf[off:], m.Seq)
	off += 8
	if m.Changed {
		buf[off] = 1
	}
	return buf
}

func decodePreAcceptReply(b []byte) (preAcceptReply, error) {
	var m preAcceptReply
	id, off, err := decodeInstID(b)
	if err != nil {
		return m, err
	}
	m.ID = id
	deps, used, err := decodeDeps(b[off:])
	if err != nil {
		return m, err
	}
	m.Deps = deps
	off += used
	if off+9 > len(b) {
		return m, errShort
	}
	m.Seq = binary.LittleEndian.Uint64(b[off:])
	m.Changed = b[off+8] == 1
	return m, nil
}

// acceptReply acknowledges an Accept.
type acceptReply struct {
	ID instID
}

func encodeAcceptReply(m acceptReply) []byte {
	buf := make([]byte, 9)
	encodeInstID(buf, m.ID)
	return buf
}

func decodeAcceptReply(b []byte) (acceptReply, error) {
	id, _, err := decodeInstID(b)
	return acceptReply{ID: id}, err
}
