package metrics

import (
	"sync"
	"testing"
)

func TestDepthSequential(t *testing.T) {
	var d Depth
	for i := 1; i <= 3; i++ {
		if n := d.Inc(); n != int64(i) {
			t.Fatalf("Inc #%d returned %d", i, n)
		}
	}
	if d.Current() != 3 || d.Max() != 3 {
		t.Fatalf("Current=%d Max=%d, want 3/3", d.Current(), d.Max())
	}
	d.Dec()
	d.Dec()
	if d.Current() != 1 || d.Max() != 3 {
		t.Fatalf("after Dec: Current=%d Max=%d, want 1/3", d.Current(), d.Max())
	}
	if n := d.Add(5); n != 6 {
		t.Fatalf("Add(5) returned %d, want 6", n)
	}
	if d.Max() != 6 {
		t.Fatalf("Max=%d after batch add, want 6", d.Max())
	}
	if n := d.Add(-6); n != 0 {
		t.Fatalf("Add(-6) returned %d, want 0", n)
	}
	if d.Max() != 6 {
		t.Fatalf("negative Add moved Max to %d", d.Max())
	}
}

func TestDepthConcurrent(t *testing.T) {
	var d Depth
	const goroutines = 8
	const iters = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d.Inc()
				d.Dec()
			}
		}()
	}
	wg.Wait()
	if d.Current() != 0 {
		t.Fatalf("Current=%d after balanced Inc/Dec, want 0", d.Current())
	}
	if m := d.Max(); m < 1 || m > goroutines {
		t.Fatalf("Max=%d, want 1..%d", m, goroutines)
	}
}
