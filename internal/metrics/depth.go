package metrics

import "sync/atomic"

// Depth tracks an instantaneous concurrency level (e.g. operations in
// flight on a pipelined connection, or requests queued for a worker) and
// its high-water mark. It is lock-free: Inc/Dec are a single atomic add
// plus a CAS loop that only spins while the level is setting new records.
type Depth struct {
	cur atomic.Int64
	max atomic.Int64
}

// Inc records one more outstanding item and returns the new level.
func (d *Depth) Inc() int64 {
	n := d.cur.Add(1)
	for {
		m := d.max.Load()
		if n <= m || d.max.CompareAndSwap(m, n) {
			return n
		}
	}
}

// Dec records one completed item.
func (d *Depth) Dec() { d.cur.Add(-1) }

// Add shifts the level by delta (useful for batch enqueues) and updates
// the high-water mark when delta is positive.
func (d *Depth) Add(delta int64) int64 {
	n := d.cur.Add(delta)
	if delta > 0 {
		for {
			m := d.max.Load()
			if n <= m || d.max.CompareAndSwap(m, n) {
				break
			}
		}
	}
	return n
}

// Current returns the present level.
func (d *Depth) Current() int64 { return d.cur.Load() }

// Max returns the high-water mark observed so far.
func (d *Depth) Max() int64 { return d.max.Load() }
