package metrics

import "sync"

// defaultEWMAAlpha weights a new observation at 20% — responsive enough to
// notice a node turning gray within a handful of operations, smooth enough
// not to suspect a node over one slow op.
const defaultEWMAAlpha = 0.2

// EWMA is an exponentially weighted moving average of a scalar series. The
// zero value is ready to use (with the default smoothing factor) and safe
// for concurrent use.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	v     float64
	n     uint64
}

// NewEWMA creates an average with smoothing factor alpha in (0, 1]; higher
// alpha weights recent observations more.
func NewEWMA(alpha float64) *EWMA { return &EWMA{alpha: alpha} }

// Observe folds x into the average. The first observation seeds the average
// directly.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	if e.alpha == 0 {
		e.alpha = defaultEWMAAlpha
	}
	if e.n == 0 {
		e.v = x
	} else {
		e.v = e.alpha*x + (1-e.alpha)*e.v
	}
	e.n++
	e.mu.Unlock()
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v
}

// Count returns the number of observations folded in.
func (e *EWMA) Count() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Reset discards all observations.
func (e *EWMA) Reset() {
	e.mu.Lock()
	e.v, e.n = 0, 0
	e.mu.Unlock()
}
