// Package metrics provides the measurement plumbing for the benchmark
// harness: concurrent latency histograms with percentile queries and
// 100 ms-resolution throughput timelines (the paper reports median/95th
// latencies in Figure 6 and 100 ms-interval throughput in Figures 11/12).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records durations in logarithmically spaced buckets
// (HDR-style: power-of-two major buckets, 32 linear sub-buckets each),
// covering 1µs to ~137s with ≤3.2% relative error. It is lock-free on the
// record path.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // microseconds
	max     atomic.Uint64 // microseconds
}

const (
	subBuckets = 32
	majors     = 28 // 2^27 µs ≈ 134 s
	numBuckets = majors * subBuckets
)

// bucketFor maps microseconds to a bucket index.
func bucketFor(us uint64) int {
	if us < subBuckets {
		return int(us)
	}
	major := 63 - leadingZeros(us) // floor(log2(us))
	shift := major - 5             // sub-bucket width within this major
	idx := (major-4)*subBuckets + int(us>>uint(shift)) - subBuckets
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketLow returns the lower bound (µs) of bucket idx.
func bucketLow(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	major := idx/subBuckets + 4
	sub := idx % subBuckets
	shift := major - 5
	return (uint64(subBuckets) + uint64(sub)) << uint(shift)
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// Record adds one duration sample.
func (h *Histogram) Record(d time.Duration) {
	us := uint64(d / time.Microsecond)
	h.buckets[bucketFor(us)].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean sample.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Max returns the largest sample (bucketed resolution not applied: exact).
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}

// Sum returns the cumulative recorded time (µs resolution).
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sum.Load()) * time.Microsecond
}

// Percentile returns the q-th percentile (0 < q ≤ 100). Within the target
// bucket the value is rank-interpolated between the bucket bounds rather
// than truncated to the lower bound, which would systematically
// underestimate by up to the bucket width (≤3.2%). Width-1 buckets are
// exact and returned as-is; the result never exceeds the observed maximum.
func (h *Histogram) Percentile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := uint64(math.Ceil(float64(n) * q / 100))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if cum+c >= target {
			low := bucketLow(i)
			width := bucketLow(i+1) - low
			var v uint64
			if width <= 1 {
				v = low // 1µs buckets hold exactly their lower bound
			} else {
				frac := float64(target-cum) / float64(c)
				v = low + uint64(frac*float64(width))
			}
			if max := h.max.Load(); v > max {
				v = max
			}
			return time.Duration(v) * time.Microsecond
		}
		cum += c
	}
	return h.Max()
}

// Snapshot summarises the histogram.
type Snapshot struct {
	Count  uint64
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Snapshot computes the standard summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		Mean:   h.Mean(),
		Median: h.Percentile(50),
		P95:    h.Percentile(95),
		P99:    h.Percentile(99),
		Max:    h.Max(),
	}
}

// String formats the snapshot.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.Median, s.P95, s.P99, s.Max)
}

// DefaultTimelineSlots caps how many intervals a Timeline retains (the most
// recent ones win). At the default 100 ms interval this is ~27 minutes of
// history — enough for every experiment figure, while a timeline backing a
// long-running daemon's /statusz stays bounded instead of leaking one slot
// per interval forever.
const DefaultTimelineSlots = 16384

// Timeline counts events in fixed intervals from a start time, for
// throughput-over-time plots (Figures 11 and 12 use 100 ms intervals). It
// retains at most maxSlots recent intervals: older ones are discarded as
// the window slides, so memory use is bounded on long-lived processes.
type Timeline struct {
	start    time.Time
	interval time.Duration
	maxSlots int
	mu       sync.Mutex
	base     int // interval index of slots[0]
	slots    []uint64
}

// NewTimeline creates a timeline with the given interval (default 100 ms)
// retaining DefaultTimelineSlots intervals.
func NewTimeline(interval time.Duration) *Timeline {
	return NewTimelineN(interval, DefaultTimelineSlots)
}

// NewTimelineN creates a timeline retaining at most maxSlots intervals
// (values < 1 select DefaultTimelineSlots).
func NewTimelineN(interval time.Duration, maxSlots int) *Timeline {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if maxSlots < 1 {
		maxSlots = DefaultTimelineSlots
	}
	return &Timeline{start: time.Now(), interval: interval, maxSlots: maxSlots}
}

// Tick records one event at the current time.
func (t *Timeline) Tick() {
	slot := int(time.Since(t.start) / t.interval)
	t.mu.Lock()
	t.tickSlot(slot)
	t.mu.Unlock()
}

// tickSlot records one event in the given absolute interval; caller holds
// t.mu. Slots older than the retained window are dropped.
func (t *Timeline) tickSlot(slot int) {
	if slot < t.base {
		return // predates the retained window
	}
	if slot >= t.base+t.maxSlots {
		newBase := slot - t.maxSlots + 1
		if drop := newBase - t.base; drop >= len(t.slots) {
			t.slots = t.slots[:0]
		} else {
			t.slots = append(t.slots[:0], t.slots[drop:]...)
		}
		t.base = newBase
	}
	for len(t.slots) <= slot-t.base {
		t.slots = append(t.slots, 0)
	}
	t.slots[slot-t.base]++
}

// Point is one timeline sample: ops/sec over an interval starting at T.
type Point struct {
	T   time.Duration
	Ops float64 // events per second during the interval
}

// Series returns the retained timeline as throughput points. Point
// timestamps stay anchored to the timeline's start, so a window that has
// slid begins at a non-zero T.
func (t *Timeline) Series() []Point {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Point, len(t.slots))
	perSec := float64(time.Second) / float64(t.interval)
	for i, c := range t.slots {
		out[i] = Point{
			T:   time.Duration(t.base+i) * t.interval,
			Ops: float64(c) * perSec,
		}
	}
	return out
}

// Throughput computes steady-state ops/sec from a count and duration.
func Throughput(ops uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// Summarize computes mean and 95% confidence half-width over repeated run
// results, as the paper reports ("95% confidence intervals are included
// when they exceed 5% of the mean", §6.2).
func Summarize(samples []float64) (mean, ci95 float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	// t-distribution critical values for 95% two-sided CI.
	tcrit := tTable(n - 1)
	return mean, tcrit * sd / math.Sqrt(float64(n))
}

// tTable returns the 97.5% Student-t quantile for df degrees of freedom.
func tTable(df int) float64 {
	table := []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// SortedCopy returns an ascending copy of samples (helper for tests and
// report medians).
func SortedCopy(samples []float64) []float64 {
	out := append([]float64(nil), samples...)
	sort.Float64s(out)
	return out
}
