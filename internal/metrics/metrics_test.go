package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketMappingMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		return bucketFor(x) <= bucketFor(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketBoundsContainValue(t *testing.T) {
	f := func(v uint32) bool {
		us := uint64(v)
		idx := bucketFor(us)
		lo := bucketLow(idx)
		var hi uint64
		if idx+1 < numBuckets {
			hi = bucketLow(idx + 1)
		} else {
			hi = math.MaxUint64
		}
		return lo <= us && us < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Percentile(50)
	if med < 450*time.Microsecond || med > 550*time.Microsecond {
		t.Fatalf("median = %v", med)
	}
	p95 := h.Percentile(95)
	if p95 < 900*time.Microsecond || p95 > 1000*time.Microsecond {
		t.Fatalf("p95 = %v", p95)
	}
	if h.Max() != 1000*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
}

// TestHistogramPercentileInterpolates is the regression test for the
// bucket-lower-bound underestimation bug: 1000 identical 1 ms samples land
// in the [992µs, 1008µs) bucket, and the pre-fix Percentile returned 992µs
// for every quantile — short by nearly the whole bucket width. Interpolated
// percentiles of a constant distribution must report (modulo the bucket's
// interpolation step) the constant, and never exceed the observed max.
func TestHistogramPercentileInterpolates(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Millisecond)
	}
	p50 := h.Percentile(50)
	if p50 < 999*time.Microsecond || p50 > 1001*time.Microsecond {
		t.Fatalf("p50 of constant 1ms distribution = %v (lower-bound truncation?)", p50)
	}
	if p99 := h.Percentile(99); p99 > h.Max() {
		t.Fatalf("p99 %v exceeds max %v", p99, h.Max())
	}
	if p100 := h.Percentile(100); p100 != h.Max() {
		t.Fatalf("p100 %v != max %v", p100, h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(50 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramLargeValues(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Minute)
	if h.Count() != 1 {
		t.Fatal("large value dropped")
	}
	if h.Percentile(50) <= 0 {
		t.Fatal("percentile of huge sample is zero")
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.String() == "" {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		tl.Tick()
	}
	time.Sleep(25 * time.Millisecond)
	tl.Tick()
	pts := tl.Series()
	if len(pts) < 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Ops < 400 { // 5 events in 10ms = 500/sec
		t.Fatalf("first interval ops = %v", pts[0].Ops)
	}
	if pts[0].T != 0 || pts[1].T != 10*time.Millisecond {
		t.Fatalf("timestamps wrong: %v %v", pts[0].T, pts[1].T)
	}
}

// TestTimelineBounded is the regression test for the unbounded-slots memory
// leak: a long-lived daemon ticking across millions of intervals must not
// grow the slot slice without bound. The capped ring retains only the most
// recent maxSlots intervals, and Series stays anchored to absolute time.
func TestTimelineBounded(t *testing.T) {
	tl := NewTimelineN(10*time.Millisecond, 64)
	// Simulate a year-scale run: tick once per interval far beyond the cap.
	for slot := 0; slot < 1_000_000; slot += 1000 {
		tl.mu.Lock()
		tl.tickSlot(slot)
		tl.mu.Unlock()
	}
	tl.mu.Lock()
	n := len(tl.slots)
	tl.mu.Unlock()
	if n > 64 {
		t.Fatalf("timeline retained %d slots, cap is 64 (unbounded growth)", n)
	}
	pts := tl.Series()
	if len(pts) == 0 || len(pts) > 64 {
		t.Fatalf("series has %d points", len(pts))
	}
	// The last tick was at slot 999000; the window must contain it.
	last := pts[len(pts)-1]
	if want := time.Duration(999000) * 10 * time.Millisecond; last.T != want {
		t.Fatalf("last point at %v, want %v", last.T, want)
	}
	if last.Ops == 0 {
		t.Fatal("most recent tick lost")
	}
	// Ticks predating the retained window are dropped, not resurrected.
	tl.mu.Lock()
	tl.tickSlot(0)
	nAfter := len(tl.slots)
	base := tl.base
	tl.mu.Unlock()
	if nAfter != n || base == 0 {
		t.Fatalf("stale tick modified the window: len %d -> %d, base %d", n, nAfter, base)
	}
}

// TestTimelineContiguous checks the ring preserves Series semantics while
// the window has not slid: same points as the unbounded version.
func TestTimelineContiguous(t *testing.T) {
	tl := NewTimelineN(10*time.Millisecond, 1024)
	tl.mu.Lock()
	for slot := 0; slot < 8; slot++ {
		for k := 0; k <= slot; k++ {
			tl.tickSlot(slot)
		}
	}
	tl.mu.Unlock()
	pts := tl.Series()
	if len(pts) != 8 {
		t.Fatalf("points = %d, want 8", len(pts))
	}
	for i, p := range pts {
		if p.T != time.Duration(i)*10*time.Millisecond {
			t.Fatalf("point %d at %v", i, p.T)
		}
		if want := float64(i+1) * 100; p.Ops != want {
			t.Fatalf("point %d ops = %v, want %v", i, p.Ops, want)
		}
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("got %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("zero elapsed: %v", got)
	}
}

func TestSummarize(t *testing.T) {
	mean, ci := Summarize([]float64{10, 10, 10, 10})
	if mean != 10 || ci != 0 {
		t.Fatalf("constant samples: mean=%v ci=%v", mean, ci)
	}
	mean, ci = Summarize([]float64{8, 12})
	if mean != 10 || ci <= 0 {
		t.Fatalf("mean=%v ci=%v", mean, ci)
	}
	if m, c := Summarize(nil); m != 0 || c != 0 {
		t.Fatal("empty samples")
	}
	if m, c := Summarize([]float64{5}); m != 5 || c != 0 {
		t.Fatal("single sample")
	}
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 || in[0] != 3 {
		t.Fatal("sorted copy wrong or mutated input")
	}
}
