package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBucketMappingMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		if x > y {
			x, y = y, x
		}
		return bucketFor(x) <= bucketFor(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketBoundsContainValue(t *testing.T) {
	f := func(v uint32) bool {
		us := uint64(v)
		idx := bucketFor(us)
		lo := bucketLow(idx)
		var hi uint64
		if idx+1 < numBuckets {
			hi = bucketLow(idx + 1)
		} else {
			hi = math.MaxUint64
		}
		return lo <= us && us < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Percentile(50)
	if med < 450*time.Microsecond || med > 550*time.Microsecond {
		t.Fatalf("median = %v", med)
	}
	p95 := h.Percentile(95)
	if p95 < 900*time.Microsecond || p95 > 1000*time.Microsecond {
		t.Fatalf("p95 = %v", p95)
	}
	if h.Max() != 1000*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 480*time.Microsecond || mean > 520*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(50 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramLargeValues(t *testing.T) {
	var h Histogram
	h.Record(2 * time.Minute)
	if h.Count() != 1 {
		t.Fatal("large value dropped")
	}
	if h.Percentile(50) <= 0 {
		t.Fatal("percentile of huge sample is zero")
	}
}

func TestSnapshotString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.String() == "" {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	for i := 0; i < 5; i++ {
		tl.Tick()
	}
	time.Sleep(25 * time.Millisecond)
	tl.Tick()
	pts := tl.Series()
	if len(pts) < 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Ops < 400 { // 5 events in 10ms = 500/sec
		t.Fatalf("first interval ops = %v", pts[0].Ops)
	}
	if pts[0].T != 0 || pts[1].T != 10*time.Millisecond {
		t.Fatalf("timestamps wrong: %v %v", pts[0].T, pts[1].T)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("got %v", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("zero elapsed: %v", got)
	}
}

func TestSummarize(t *testing.T) {
	mean, ci := Summarize([]float64{10, 10, 10, 10})
	if mean != 10 || ci != 0 {
		t.Fatalf("constant samples: mean=%v ci=%v", mean, ci)
	}
	mean, ci = Summarize([]float64{8, 12})
	if mean != 10 || ci <= 0 {
		t.Fatalf("mean=%v ci=%v", mean, ci)
	}
	if m, c := Summarize(nil); m != 0 || c != 0 {
		t.Fatal("empty samples")
	}
	if m, c := Summarize([]float64{5}); m != 5 || c != 0 {
		t.Fatal("single sample")
	}
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 || in[0] != 3 {
		t.Fatal("sorted copy wrong or mutated input")
	}
}
