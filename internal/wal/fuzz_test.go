package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode feeds arbitrary slot images to Decode. The decoder guards
// recovery — it parses whatever bytes a crashed or corrupt memory node
// holds — so it must never panic and must classify every input as either a
// valid entry or ErrCorrupt.
func FuzzDecode(f *testing.F) {
	// Seed with an empty slot, a short slot, and a few valid encodings.
	f.Add([]byte{})
	f.Add(make([]byte, 17))
	f.Add(make([]byte, 512))
	for _, e := range []Entry{
		{Index: 1},
		{Index: 7, Writes: []Write{{Addr: 64, Data: []byte("hello")}}},
		{Index: 1 << 40, Writes: []Write{
			{Addr: 0, Data: bytes.Repeat([]byte{0xab}, 100)},
			{Addr: 4096, Data: nil},
		}},
	} {
		buf := make([]byte, 512)
		if _, err := e.Encode(buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		// And a torn variant: valid header, damaged payload.
		torn := append([]byte(nil), buf...)
		torn[len(torn)/2] ^= 0xff
		f.Add(torn)
	}

	f.Fuzz(func(t *testing.T, slot []byte) {
		e, err := Decode(slot)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode returned non-ErrCorrupt error: %v", err)
			}
			return
		}
		// A successfully decoded entry must satisfy the format invariants
		// and round-trip through Encode back to a decodable image.
		if e.Index == 0 {
			t.Fatal("decoded entry with zero index")
		}
		if e.Size() > len(slot) {
			t.Fatalf("decoded entry larger than its slot: %d > %d", e.Size(), len(slot))
		}
		buf := make([]byte, len(slot))
		if _, err := e.Encode(buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		e2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if e2.Index != e.Index || len(e2.Writes) != len(e.Writes) {
			t.Fatalf("round trip changed entry: %+v vs %+v", e, e2)
		}
		for i := range e.Writes {
			if e2.Writes[i].Addr != e.Writes[i].Addr || !bytes.Equal(e2.Writes[i].Data, e.Writes[i].Data) {
				t.Fatalf("round trip changed write %d", i)
			}
		}
	})
}
