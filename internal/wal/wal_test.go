package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := Entry{
		Index: 42,
		Writes: []Write{
			{Addr: 100, Data: []byte("hello")},
			{Addr: 2048, Data: []byte{}},
			{Addr: 0, Data: bytes.Repeat([]byte{7}, 100)},
		},
	}
	buf := make([]byte, 1024)
	n, err := e.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != e.Size() {
		t.Fatalf("Encode wrote %d, Size says %d", n, e.Size())
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != e.Index || len(got.Writes) != len(e.Writes) {
		t.Fatalf("decoded %+v", got)
	}
	for i := range e.Writes {
		if got.Writes[i].Addr != e.Writes[i].Addr || !bytes.Equal(got.Writes[i].Data, e.Writes[i].Data) {
			t.Fatalf("write %d mismatch: %+v vs %+v", i, got.Writes[i], e.Writes[i])
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(index uint64, addr1, addr2 uint64, d1, d2 []byte) bool {
		if index == 0 {
			index = 1
		}
		e := Entry{Index: index, Writes: []Write{{Addr: addr1, Data: d1}, {Addr: addr2, Data: d2}}}
		buf := make([]byte, e.Size()+64)
		if _, err := e.Encode(buf); err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Index == e.Index &&
			len(got.Writes) == 2 &&
			got.Writes[0].Addr == addr1 && bytes.Equal(got.Writes[0].Data, d1) &&
			got.Writes[1].Addr == addr2 && bytes.Equal(got.Writes[1].Data, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeTooLarge(t *testing.T) {
	e := Entry{Index: 1, Writes: []Write{{Addr: 0, Data: make([]byte, 100)}}}
	buf := make([]byte, 50)
	if _, err := e.Encode(buf); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDecodeCorruption(t *testing.T) {
	e := Entry{Index: 7, Writes: []Write{{Addr: 10, Data: []byte("payload")}}}
	buf := make([]byte, 256)
	n, _ := e.Encode(buf)

	// Flip each byte of the encoded image; decode must never return a
	// different valid entry silently.
	for i := 0; i < n; i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xff
		got, err := Decode(mut)
		if err == nil && (got.Index != e.Index || !bytes.Equal(got.Writes[0].Data, e.Writes[0].Data)) {
			t.Fatalf("bit flip at %d produced different valid entry %+v", i, got)
		}
	}
}

func TestDecodeEmptySlot(t *testing.T) {
	if _, err := Decode(make([]byte, 128)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("zeroed slot: err = %v, want ErrCorrupt", err)
	}
	if _, err := Decode(make([]byte, 4)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short slot: err = %v, want ErrCorrupt", err)
	}
}

func TestGeometry(t *testing.T) {
	g := Geometry{Base: 4096, SlotSize: 256, Slots: 16}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalSize() != 4096 {
		t.Fatalf("TotalSize = %d", g.TotalSize())
	}
	if off := g.SlotOffset(1); off != 4096+256 {
		t.Fatalf("SlotOffset(1) = %d", off)
	}
	if off := g.SlotOffset(17); off != 4096+256 {
		t.Fatalf("SlotOffset(17) = %d (wraps to slot 1)", off)
	}
	bad := Geometry{SlotSize: 4, Slots: 0}
	if err := bad.Validate(); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("bad geometry: %v", err)
	}
}

// writeEntryToArea encodes e into its slot within a raw log area image.
func writeEntryToArea(t *testing.T, g Geometry, area []byte, e Entry) {
	t.Helper()
	slot := int(e.Index % uint64(g.Slots))
	if _, err := e.Encode(area[slot*g.SlotSize : (slot+1)*g.SlotSize]); err != nil {
		t.Fatal(err)
	}
}

func TestScanWindowBasic(t *testing.T) {
	g := Geometry{SlotSize: 128, Slots: 8}
	area := make([]byte, g.TotalSize())
	for i := uint64(1); i <= 5; i++ {
		writeEntryToArea(t, g, area, Entry{Index: i, Writes: []Write{{Addr: i * 10, Data: []byte{byte(i)}}}})
	}
	entries := g.ScanWindow(area)
	if len(entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Index != uint64(i+1) {
			t.Fatalf("entry %d has index %d", i, e.Index)
		}
	}
}

func TestScanWindowDropsStaleLaps(t *testing.T) {
	g := Geometry{SlotSize: 128, Slots: 4}
	area := make([]byte, g.TotalSize())
	// Lap 1: indexes 1..4 fill all slots. Then 5,6 overwrite slots 1,2.
	for i := uint64(1); i <= 6; i++ {
		writeEntryToArea(t, g, area, Entry{Index: i, Writes: nil})
	}
	entries := g.ScanWindow(area)
	// Window is (6-4, 6] = {3,4,5,6}.
	want := []uint64{3, 4, 5, 6}
	if len(entries) != len(want) {
		t.Fatalf("got %d entries %v, want %v", len(entries), entries, want)
	}
	for i, e := range entries {
		if e.Index != want[i] {
			t.Fatalf("entries[%d].Index = %d, want %d", i, e.Index, want[i])
		}
	}
}

func TestScanWindowSkipsTorn(t *testing.T) {
	g := Geometry{SlotSize: 128, Slots: 8}
	area := make([]byte, g.TotalSize())
	writeEntryToArea(t, g, area, Entry{Index: 1, Writes: []Write{{Addr: 1, Data: []byte("a")}}})
	writeEntryToArea(t, g, area, Entry{Index: 2, Writes: []Write{{Addr: 2, Data: []byte("b")}}})
	// Tear entry 2: corrupt a payload byte.
	area[2*g.SlotSize+20] ^= 0xff
	entries := g.ScanWindow(area)
	if len(entries) != 1 || entries[0].Index != 1 {
		t.Fatalf("entries = %+v, want just index 1", entries)
	}
}

func TestScanWindowRejectsWrongSlot(t *testing.T) {
	g := Geometry{SlotSize: 128, Slots: 8}
	area := make([]byte, g.TotalSize())
	// Craft a valid entry with index 3 but place it in slot 5.
	e := Entry{Index: 3, Writes: nil}
	buf := make([]byte, g.SlotSize)
	e.Encode(buf)
	copy(area[5*g.SlotSize:], buf)
	if entries := g.ScanWindow(area); len(entries) != 0 {
		t.Fatalf("misplaced entry accepted: %+v", entries)
	}
}

func TestReconcileUnion(t *testing.T) {
	g := Geometry{SlotSize: 128, Slots: 8}
	// Node A has entries 1,2,3; node B has 2,3,4; node C is nil (failed).
	a := make([]byte, g.TotalSize())
	b := make([]byte, g.TotalSize())
	for _, i := range []uint64{1, 2, 3} {
		writeEntryToArea(t, g, a, Entry{Index: i, Writes: []Write{{Addr: i, Data: []byte{byte(i)}}}})
	}
	for _, i := range []uint64{2, 3, 4} {
		writeEntryToArea(t, g, b, Entry{Index: i, Writes: []Write{{Addr: i, Data: []byte{byte(i)}}}})
	}
	merged := Reconcile(g, [][]byte{a, b, nil})
	want := []uint64{1, 2, 3, 4}
	if len(merged) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(merged), len(want))
	}
	for i, e := range merged {
		if e.Index != want[i] {
			t.Fatalf("merged[%d].Index = %d, want %d", i, e.Index, want[i])
		}
	}
}

func TestReconcileWindowAcrossNodes(t *testing.T) {
	g := Geometry{SlotSize: 128, Slots: 4}
	// Node A is behind: has 1..4. Node B has 5..7 (overwriting 1..3's slots).
	a := make([]byte, g.TotalSize())
	b := make([]byte, g.TotalSize())
	for i := uint64(1); i <= 4; i++ {
		writeEntryToArea(t, g, a, Entry{Index: i, Writes: nil})
	}
	for i := uint64(1); i <= 7; i++ {
		writeEntryToArea(t, g, b, Entry{Index: i, Writes: nil})
	}
	merged := Reconcile(g, [][]byte{a, b})
	// Global window is (7-4, 7] = {4,5,6,7}.
	want := []uint64{4, 5, 6, 7}
	if len(merged) != len(want) {
		t.Fatalf("merged = %+v, want indexes %v", merged, want)
	}
	for i, e := range merged {
		if e.Index != want[i] {
			t.Fatalf("merged[%d].Index = %d, want %d", i, e.Index, want[i])
		}
	}
}

func TestReconcileQuickAckedEntriesSurvive(t *testing.T) {
	// Property: any entry present on a majority of nodes is always in the
	// reconciled log when at most Fm snapshots are missing.
	g := Geometry{SlotSize: 128, Slots: 16}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 5 // Fm = 2
		areas := make([][]byte, n)
		for i := range areas {
			areas[i] = make([]byte, g.TotalSize())
		}
		// Write entries 1..10; each to a random majority of nodes.
		acked := map[uint64]bool{}
		for idx := uint64(1); idx <= 10; idx++ {
			e := Entry{Index: idx, Writes: []Write{{Addr: idx, Data: []byte{byte(idx)}}}}
			perm := rng.Perm(n)
			copies := 3 + rng.Intn(3) // 3..5 replicas: always a majority
			for _, node := range perm[:copies] {
				slot := int(idx % uint64(g.Slots))
				e.Encode(areas[node][slot*g.SlotSize:])
			}
			acked[idx] = true
		}
		// Fail up to Fm=2 random nodes.
		for _, node := range rng.Perm(n)[:rng.Intn(3)] {
			areas[node] = nil
		}
		merged := Reconcile(g, areas)
		found := map[uint64]bool{}
		for _, e := range merged {
			found[e.Index] = true
		}
		for idx := range acked {
			if !found[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
