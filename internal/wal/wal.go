// Package wal implements the write-ahead-log entry format and circular log
// geometry shared by Sift's replicated memory layer and key-value store
// (paper §3.3, §3.4.1, §4.1).
//
// The log is a fixed array of fixed-size slots living inside a replicated
// memory region. An entry carries its own log index, so a slot's occupant is
// self-describing: slot s holds the entry with the largest index i ≡ s
// (mod slots) written so far, and stale entries from earlier laps are
// recognisable by their smaller index. Entries are protected by a CRC so a
// torn (partially written) slot decodes as invalid rather than as garbage.
//
// Recovery correctness depends on one property of this geometry: every entry
// in the window (maxIndex-slots, maxIndex] is still in the log, so replaying
// the whole decoded window in index order reproduces exactly the state the
// failed coordinator could have exposed — even without an applied-index
// watermark (see Reconcile).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Codec errors.
var (
	ErrTooLarge    = errors.New("wal: entry exceeds slot size")
	ErrCorrupt     = errors.New("wal: corrupt or torn entry")
	ErrBadGeometry = errors.New("wal: invalid log geometry")
)

// castagnoli is the CRC32-C table; CRC32-C has better error detection than
// IEEE and hardware support on amd64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Write is one (address, data) update within an entry. Entries may carry
// several writes that must be applied together without interleaving
// (the multi-write commit interface of §3.3.2).
type Write struct {
	Addr uint64
	Data []byte
}

// Entry is a single log record.
type Entry struct {
	Index  uint64 // 1-based log sequence number; 0 is never a valid index
	Writes []Write
}

// Size returns the encoded size of the entry in bytes.
func (e *Entry) Size() int {
	n := entryHeaderSize
	for _, w := range e.Writes {
		n += writeHeaderSize + len(w.Data)
	}
	return n
}

const (
	// entryHeaderSize: index(8) + count(2) + payloadLen(4) + crc(4)
	entryHeaderSize = 18
	// writeHeaderSize: addr(8) + len(4)
	writeHeaderSize = 12
)

// Encode serialises the entry into buf, which must be at least e.Size()
// bytes (typically a full slot). Returns the number of bytes written.
func (e *Entry) Encode(buf []byte) (int, error) {
	need := e.Size()
	if need > len(buf) {
		return 0, fmt.Errorf("%w: need %d, slot %d", ErrTooLarge, need, len(buf))
	}
	payloadLen := need - entryHeaderSize
	binary.LittleEndian.PutUint64(buf[0:8], e.Index)
	binary.LittleEndian.PutUint16(buf[8:10], uint16(len(e.Writes)))
	binary.LittleEndian.PutUint32(buf[10:14], uint32(payloadLen))
	off := entryHeaderSize
	for _, w := range e.Writes {
		binary.LittleEndian.PutUint64(buf[off:], w.Addr)
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(len(w.Data)))
		copy(buf[off+writeHeaderSize:], w.Data)
		off += writeHeaderSize + len(w.Data)
	}
	// CRC covers index, count, payload length, and payload.
	crc := crc32.Checksum(buf[0:10], castagnoli)
	crc = crc32.Update(crc, castagnoli, buf[10:14])
	crc = crc32.Update(crc, castagnoli, buf[entryHeaderSize:off])
	binary.LittleEndian.PutUint32(buf[14:18], crc)
	return off, nil
}

// Decode parses an entry from buf (a slot image). It returns ErrCorrupt for
// empty, torn, or otherwise invalid slots.
func Decode(buf []byte) (Entry, error) {
	if len(buf) < entryHeaderSize {
		return Entry{}, fmt.Errorf("%w: short slot", ErrCorrupt)
	}
	index := binary.LittleEndian.Uint64(buf[0:8])
	count := int(binary.LittleEndian.Uint16(buf[8:10]))
	payloadLen := int(binary.LittleEndian.Uint32(buf[10:14]))
	crc := binary.LittleEndian.Uint32(buf[14:18])
	if index == 0 {
		return Entry{}, fmt.Errorf("%w: zero index", ErrCorrupt)
	}
	if payloadLen < 0 || entryHeaderSize+payloadLen > len(buf) {
		return Entry{}, fmt.Errorf("%w: bad payload length %d", ErrCorrupt, payloadLen)
	}
	want := crc32.Checksum(buf[0:10], castagnoli)
	want = crc32.Update(want, castagnoli, buf[10:14])
	want = crc32.Update(want, castagnoli, buf[entryHeaderSize:entryHeaderSize+payloadLen])
	if crc != want {
		return Entry{}, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	e := Entry{Index: index, Writes: make([]Write, 0, count)}
	off := entryHeaderSize
	end := entryHeaderSize + payloadLen
	for i := 0; i < count; i++ {
		if off+writeHeaderSize > end {
			return Entry{}, fmt.Errorf("%w: truncated write header", ErrCorrupt)
		}
		addr := binary.LittleEndian.Uint64(buf[off:])
		dlen := int(binary.LittleEndian.Uint32(buf[off+8:]))
		off += writeHeaderSize
		if dlen < 0 || off+dlen > end {
			return Entry{}, fmt.Errorf("%w: truncated write data", ErrCorrupt)
		}
		data := make([]byte, dlen)
		copy(data, buf[off:off+dlen])
		e.Writes = append(e.Writes, Write{Addr: addr, Data: data})
		off += dlen
	}
	if off != end {
		return Entry{}, fmt.Errorf("%w: trailing payload bytes", ErrCorrupt)
	}
	return e, nil
}

// Geometry describes a circular log's placement inside a memory region.
type Geometry struct {
	Base     uint64 // byte offset of slot 0 within the region
	SlotSize int    // bytes per slot; every entry must fit in one slot
	Slots    int    // number of slots
}

// Validate checks the geometry for sanity.
func (g Geometry) Validate() error {
	if g.SlotSize < entryHeaderSize || g.Slots < 1 {
		return fmt.Errorf("%w: slotSize=%d slots=%d", ErrBadGeometry, g.SlotSize, g.Slots)
	}
	return nil
}

// TotalSize returns the log area's size in bytes.
func (g Geometry) TotalSize() int { return g.SlotSize * g.Slots }

// SlotOffset returns the region offset of the slot for the given index.
func (g Geometry) SlotOffset(index uint64) uint64 {
	return g.Base + uint64(int(index%uint64(g.Slots)))*uint64(g.SlotSize)
}

// ScanWindow decodes every valid entry in a snapshot of the log area (a
// byte image of length TotalSize, without Base offset applied) and returns
// entries belonging to the active window (maxIndex-Slots, maxIndex], sorted
// by index. Torn and stale-lap slots are skipped.
func (g Geometry) ScanWindow(area []byte) []Entry {
	var entries []Entry
	var maxIndex uint64
	for s := 0; s < g.Slots; s++ {
		slot := area[s*g.SlotSize : (s+1)*g.SlotSize]
		e, err := Decode(slot)
		if err != nil {
			continue
		}
		// A slot can only legitimately hold indexes ≡ s (mod Slots); anything
		// else is garbage from a buggy writer or bit flip that passed CRC.
		if e.Index%uint64(g.Slots) != uint64(s) {
			continue
		}
		entries = append(entries, e)
		if e.Index > maxIndex {
			maxIndex = e.Index
		}
	}
	// Keep only the active window.
	lo := uint64(0)
	if maxIndex > uint64(g.Slots) {
		lo = maxIndex - uint64(g.Slots)
	}
	out := entries[:0]
	for _, e := range entries {
		if e.Index > lo {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Reconcile merges per-node snapshots of the same log area into the single
// consistent, up-to-date log the paper's coordinator recovery constructs
// (§3.4.1): the union of valid entries across nodes, restricted to the
// global active window, deduplicated, in index order.
//
// Safety: an entry acked to a client was durable on a majority of nodes, so
// with at most Fm of 2Fm+1 snapshots missing it appears in at least one
// snapshot and is therefore always recovered. Unacked entries may or may not
// appear; either outcome is correct because the client never saw a commit.
func Reconcile(g Geometry, areas [][]byte) []Entry {
	byIndex := make(map[uint64]Entry)
	var maxIndex uint64
	for _, area := range areas {
		if area == nil {
			continue
		}
		for _, e := range g.ScanWindow(area) {
			if _, ok := byIndex[e.Index]; !ok {
				byIndex[e.Index] = e
			}
			if e.Index > maxIndex {
				maxIndex = e.Index
			}
		}
	}
	lo := uint64(0)
	if maxIndex > uint64(g.Slots) {
		lo = maxIndex - uint64(g.Slots)
	}
	out := make([]Entry, 0, len(byIndex))
	for idx, e := range byIndex {
		if idx > lo {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
