package election

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/repro/sift/internal/rdma"
)

func TestWordPackUnpack(t *testing.T) {
	f := func(term, node uint16, ts uint32) bool {
		w := Word{Term: term, Node: node, Timestamp: ts}
		return Unpack(w.Pack()) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordNewer(t *testing.T) {
	base := Word{Term: 5, Node: 1, Timestamp: 100}
	cases := []struct {
		w    Word
		want bool
	}{
		{Word{Term: 6, Node: 2, Timestamp: 0}, true},    // higher term wins
		{Word{Term: 4, Node: 2, Timestamp: 999}, false}, // lower term loses
		{Word{Term: 5, Node: 2, Timestamp: 101}, true},  // same term, fresher ts
		{Word{Term: 5, Node: 2, Timestamp: 100}, false}, // identical ts is not newer
		{Word{Term: 5, Node: 2, Timestamp: 99}, false},
	}
	for i, c := range cases {
		if got := c.w.Newer(base); got != c.want {
			t.Errorf("case %d: Newer = %v, want %v", i, got, c.want)
		}
	}
}

// TestWordNewerTimestampWraparound is the regression test for the uint32
// heartbeat-counter wrap bug: after ~4.3B beats (~348 days at the default
// 7 ms interval) the coordinator's timestamp wraps to small values, and the
// pre-fix plain > comparison made every post-wrap heartbeat look stale —
// followers would stop resetting their missed-beat counters and dethrone a
// perfectly live coordinator. Serial-number comparison must see heartbeats
// as fresh straight across the wrap point.
func TestWordNewerTimestampWraparound(t *testing.T) {
	const maxTS = ^uint32(0)
	cases := []struct {
		name     string
		old, new uint32
		want     bool
	}{
		{"last pre-wrap beat", maxTS - 1, maxTS, true},
		{"wrap to zero", maxTS, 0, true},
		{"wrap past zero", maxTS, 5, true},
		{"several beats across the wrap", maxTS - 3, 2, true},
		{"stale pre-wrap value is not fresher", 2, maxTS, false},
		{"equal is not newer", maxTS, maxTS, false},
		{"ordinary advance still works", 100, 101, true},
		{"ordinary regression still rejected", 101, 100, false},
		{"just under half window ahead", 0, 1<<31 - 1, true},
		{"more than half window ahead is stale", 0, 1<<31 + 1, false},
	}
	for _, c := range cases {
		old := Word{Term: 7, Node: 1, Timestamp: c.old}
		new := Word{Term: 7, Node: 1, Timestamp: c.new}
		if got := new.Newer(old); got != c.want {
			t.Errorf("%s: Newer(ts %d over %d) = %v, want %v", c.name, c.new, c.old, got, c.want)
		}
	}
	// The follower-side suspicion loop keys off exactly this comparison: a
	// heartbeat sequence running over the wrap must keep reading as fresh.
	last := Word{Term: 7, Node: 1, Timestamp: maxTS - 2}
	for i := 0; i < 6; i++ {
		next := Word{Term: 7, Node: 1, Timestamp: last.Timestamp + 1}
		if !next.Newer(last) {
			t.Fatalf("beat %d (ts %d -> %d) read as stale across wrap", i, last.Timestamp, next.Timestamp)
		}
		last = next
	}
}

// testGroup wires an in-process network with n memory nodes exposing admin
// region 1, and returns a config factory for CPU nodes.
func testGroup(t *testing.T, n int) (*rdma.Network, []string, func(id uint16) Config) {
	t.Helper()
	nw := rdma.NewNetwork(nil)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		node := rdma.NewNode(names[i])
		node.Alloc(1, 64, false)
		nw.AddNode(node)
	}
	mk := func(id uint16) Config {
		return Config{
			NodeID:      id,
			MemoryNodes: names,
			Dial: func(node string) (rdma.Verbs, error) {
				return nw.Dial("cpu", node, rdma.DialOpts{})
			},
			AdminRegion:       1,
			HeartbeatInterval: time.Millisecond,
			ReadInterval:      time.Millisecond,
			MissedBeats:       3,
			Seed:              int64(id) + 100,
		}
	}
	return nw, names, mk
}

func TestSingleCandidateWins(t *testing.T) {
	_, _, mk := testGroup(t, 3)
	e := New(mk(1))
	defer e.Close()
	term, outcome, err := e.Campaign(context.Background(), nil)
	if err != nil || outcome != Won {
		t.Fatalf("campaign: term=%d outcome=%v err=%v", term, outcome, err)
	}
	if term != 1 {
		t.Fatalf("first term = %d, want 1", term)
	}
	// Winner's word must be on all reachable nodes' admin regions.
	words, best, err := e.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if best.Term != 1 || best.Node != 1 {
		t.Fatalf("best word = %+v", best)
	}
	if len(words) != 3 {
		t.Fatalf("read %d words", len(words))
	}
}

func TestHeartbeatRenewsAndAdvances(t *testing.T) {
	_, _, mk := testGroup(t, 3)
	e := New(mk(1))
	defer e.Close()
	term, _, _ := e.Campaign(context.Background(), nil)
	for ts := uint32(2); ts < 10; ts++ {
		if err := e.Heartbeat(term, ts); err != nil {
			t.Fatalf("heartbeat ts=%d: %v", ts, err)
		}
	}
	_, best, _ := e.ReadAll()
	if best.Timestamp != 9 || best.Term != term {
		t.Fatalf("best after heartbeats = %+v", best)
	}
}

func TestAtMostOneWinnerPerTerm(t *testing.T) {
	// All candidates run the full follower/candidate loop concurrently. The
	// safety property is that no term ever has two winners; liveness is that
	// some candidate eventually wins. Repeat to shake out races.
	for round := 0; round < 10; round++ {
		_, _, mk := testGroup(t, 5)
		const candidates = 4
		type res struct {
			id   uint16
			term uint16
		}
		ch := make(chan res, candidates*4)
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for id := uint16(1); id <= candidates; id++ {
			wg.Add(1)
			go func(id uint16) {
				defer wg.Done()
				e := New(mk(id))
				defer e.Close()
				// Follower/candidate loop, as run by the core package: a
				// candidate that loses returns to follower and re-campaigns
				// if no coordinator heartbeat shows up.
				var words map[string]Word
				for {
					term, outcome, err := e.Campaign(ctx, words)
					if err != nil {
						return // ctx cancelled
					}
					if outcome == Won {
						ch <- res{id, term}
						cancel() // stop the others; winner found
						return
					}
					var werr error
					words, werr = e.AwaitSuspicion(ctx)
					if werr != nil {
						return
					}
				}
			}(id)
		}
		wg.Wait()
		cancel()
		close(ch)
		winners := map[uint16][]uint16{} // term -> winner ids
		for r := range ch {
			winners[r.term] = append(winners[r.term], r.id)
		}
		if len(winners) == 0 {
			t.Fatalf("round %d: no winner at all", round)
		}
		for term, ids := range winners {
			if len(ids) > 1 {
				t.Fatalf("round %d: term %d has %d winners: %v", round, term, len(ids), ids)
			}
		}
	}
}

func TestDethroneOldCoordinator(t *testing.T) {
	_, _, mk := testGroup(t, 3)
	e1 := New(mk(1))
	defer e1.Close()
	term1, outcome, _ := e1.Campaign(context.Background(), nil)
	if outcome != Won {
		t.Fatal("e1 should win")
	}
	if err := e1.Heartbeat(term1, 2); err != nil {
		t.Fatal(err)
	}

	// A second CPU node campaigns (as if it suspected e1 dead).
	e2 := New(mk(2))
	defer e2.Close()
	words, _, _ := e2.ReadAll()
	term2, outcome, _ := e2.Campaign(context.Background(), words)
	if outcome != Won {
		t.Fatalf("e2 outcome = %v", outcome)
	}
	if term2 <= term1 {
		t.Fatalf("term2 = %d, not above term1 = %d", term2, term1)
	}

	// e1's next heartbeat must fail with ErrDethroned.
	if err := e1.Heartbeat(term1, 3); !errors.Is(err, ErrDethroned) {
		t.Fatalf("old coordinator heartbeat: err = %v, want ErrDethroned", err)
	}
	// And e2's heartbeats keep working.
	if err := e2.Heartbeat(term2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestAwaitSuspicionFiresOnSilence(t *testing.T) {
	_, _, mk := testGroup(t, 3)
	e1 := New(mk(1))
	defer e1.Close()
	term, _, _ := e1.Campaign(context.Background(), nil)
	e1.Heartbeat(term, 2)

	follower := New(mk(2))
	defer follower.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	words, err := follower.AwaitSuspicion(ctx)
	if err != nil {
		t.Fatalf("AwaitSuspicion: %v", err)
	}
	if len(words) == 0 {
		t.Fatal("no observed words returned")
	}
	// With 1ms reads and 3 missed beats, suspicion should fire in a few ms
	// of coordinator silence (we never heartbeat again after ts=2).
	if time.Since(start) > time.Second {
		t.Fatalf("suspicion took %v", time.Since(start))
	}
}

func TestAwaitSuspicionHoldsWhileHeartbeating(t *testing.T) {
	_, _, mk := testGroup(t, 3)
	e1 := New(mk(1))
	defer e1.Close()
	term, _, _ := e1.Campaign(context.Background(), nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ts := uint32(2)
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				ts++
				e1.Heartbeat(term, ts)
			}
		}
	}()

	follower := New(mk(2))
	defer follower.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := follower.AwaitSuspicion(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("suspicion fired despite live heartbeats: %v", err)
	}
	close(stop)
	wg.Wait()
}

func TestFailoverElectsNewCoordinator(t *testing.T) {
	nw, _, mk := testGroup(t, 3)
	e1 := New(mk(1))
	term1, _, _ := e1.Campaign(context.Background(), nil)
	e1.Heartbeat(term1, 2)
	e1.Close()
	_ = nw // e1 simply stops heartbeating (process death)

	follower := New(mk(2))
	defer follower.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	words, err := follower.AwaitSuspicion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	term2, outcome, err := follower.Campaign(ctx, words)
	if err != nil || outcome != Won {
		t.Fatalf("failover campaign: outcome=%v err=%v", outcome, err)
	}
	if term2 <= term1 {
		t.Fatalf("new term %d not above old %d", term2, term1)
	}
}

func TestElectionToleratesMinorityMemoryFailure(t *testing.T) {
	nw, names, mk := testGroup(t, 3)
	nw.Fabric().Kill(names[2]) // Fm = 1 failure
	e := New(mk(1))
	defer e.Close()
	term, outcome, err := e.Campaign(context.Background(), nil)
	if err != nil || outcome != Won {
		t.Fatalf("campaign with 1 dead memnode: outcome=%v err=%v", outcome, err)
	}
	if err := e.Heartbeat(term, 2); err != nil {
		t.Fatalf("heartbeat with 1 dead memnode: %v", err)
	}
}

func TestHeartbeatFailsWithoutQuorum(t *testing.T) {
	nw, names, mk := testGroup(t, 3)
	e := New(mk(1))
	defer e.Close()
	term, _, _ := e.Campaign(context.Background(), nil)
	nw.Fabric().Kill(names[0])
	nw.Fabric().Kill(names[1])
	if err := e.Heartbeat(term, 2); !errors.Is(err, ErrDethroned) {
		t.Fatalf("heartbeat without quorum: err = %v, want ErrDethroned", err)
	}
}

func TestReadAllNoQuorum(t *testing.T) {
	nw, names, mk := testGroup(t, 3)
	for _, n := range names[:2] {
		nw.Fabric().Kill(n)
	}
	e := New(mk(1))
	defer e.Close()
	if _, _, err := e.ReadAll(); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestHeartbeatRepairsStragglerNode(t *testing.T) {
	// Node c misses the election (down), comes back, and must be brought to
	// the current term by heartbeats.
	nw, names, mk := testGroup(t, 3)
	nw.Fabric().Kill(names[2])
	e := New(mk(1))
	defer e.Close()
	term, _, _ := e.Campaign(context.Background(), nil)
	nw.Fabric().Restart(names[2])
	if err := e.Heartbeat(term, 2); err != nil {
		t.Fatal(err)
	}
	// After enough rounds the straggler must carry the current word.
	if err := e.Heartbeat(term, 3); err != nil {
		t.Fatal(err)
	}
	words, _, _ := e.ReadAll()
	w, ok := words[names[2]]
	if !ok {
		t.Fatal("straggler unreadable")
	}
	if w.Term != term {
		t.Fatalf("straggler word = %+v, want term %d", w, term)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{NodeID: 3}
	c := cfg.withDefaults()
	if c.HeartbeatInterval <= 0 || c.ReadInterval <= 0 || c.MissedBeats <= 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.BackoffMax <= c.BackoffMin {
		t.Fatal("backoff bounds inverted")
	}
	if c.Seed == 0 {
		t.Fatal("seed not derived")
	}
}

// TestUpdateMembersReconfigures exercises the elector's reconfiguration
// hook: after an online membership change the heartbeat/read rounds must
// run against the new list (writing the winner's word onto joining nodes,
// never touching removed ones) and the quorum size must follow the list.
func TestUpdateMembersReconfigures(t *testing.T) {
	nw, names, mk := testGroup(t, 3)
	e := New(mk(1))
	defer e.Close()
	term, outcome, err := e.Campaign(context.Background(), nil)
	if err != nil || outcome != Won {
		t.Fatalf("campaign: outcome=%v err=%v", outcome, err)
	}
	if err := e.Heartbeat(term, 2); err != nil {
		t.Fatal(err)
	}

	// Join "x" and "y", drop names[0]: 3 -> 4 members, quorum 2 -> 3.
	for _, fresh := range []string{"x", "y"} {
		node := rdma.NewNode(fresh)
		node.Alloc(1, 64, false)
		nw.AddNode(node)
	}
	members := []string{names[1], names[2], "x", "y"}
	e.UpdateMembers(members)
	if got := e.Members(); len(got) != 4 || got[3] != "y" {
		t.Fatalf("Members() = %v, want %v", got, members)
	}
	if got := e.Majority(); got != 3 {
		t.Fatalf("majority after growth = %d, want 3", got)
	}

	// Heartbeats now land on the new list, including the fresh nodes. A
	// single beat only guarantees a majority, so beat until both joiners
	// carry the winner's word.
	var words map[string]Word
	var best Word
	for ts := uint32(3); ; ts++ {
		if ts > 50 {
			t.Fatalf("fresh nodes never saw a heartbeat: %+v", words)
		}
		if err := e.Heartbeat(term, ts); err != nil {
			t.Fatalf("heartbeat on new members: %v", err)
		}
		var err error
		if words, best, err = e.ReadAll(); err != nil {
			t.Fatal(err)
		}
		if words["x"].Term == term && words["y"].Term == term {
			break
		}
	}
	if len(words) != 4 {
		t.Fatalf("read %d words after reconfiguration, want 4", len(words))
	}
	if best.Term != term || best.Timestamp < 3 {
		t.Fatalf("best word after reconfiguration = %+v", best)
	}

	// The removed node's word must stop advancing: it keeps whatever beat
	// it last saw while the survivors move on.
	obs, err := nw.Dial("observer", names[0], rdma.DialOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	var buf [8]byte
	if err := obs.Read(1, 0, buf[:]); err != nil {
		t.Fatal(err)
	}
	stale := Unpack(binary.LittleEndian.Uint64(buf[:]))
	if stale.Timestamp >= 3 {
		t.Fatalf("removed node still receives heartbeats: %+v", stale)
	}

	// A fresh elector configured with the new list campaigns and dethrones
	// over the new quorum without ever contacting the removed node.
	e2 := New(Config{
		NodeID:      2,
		MemoryNodes: members,
		Dial: func(node string) (rdma.Verbs, error) {
			if node == names[0] {
				t.Errorf("new-config elector dialed removed node %s", node)
			}
			return nw.Dial("cpu2", node, rdma.DialOpts{})
		},
		AdminRegion:       1,
		HeartbeatInterval: time.Millisecond,
		ReadInterval:      time.Millisecond,
		MissedBeats:       3,
		Seed:              7,
	})
	defer e2.Close()
	words2, _, err := e2.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	term2, outcome2, err := e2.Campaign(context.Background(), words2)
	if err != nil || outcome2 != Won {
		t.Fatalf("takeover campaign: outcome=%v err=%v", outcome2, err)
	}
	if term2 <= term {
		t.Fatalf("takeover term %d not beyond %d", term2, term)
	}

	// Shrink back to 3 and check the quorum follows down.
	e2.UpdateMembers(members[:3])
	if got := e2.Majority(); got != 2 {
		t.Fatalf("majority after shrink = %d, want 2", got)
	}
}
