package election

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/repro/sift/internal/faultrdma"
	"github.com/repro/sift/internal/rdma"
)

// faultyGroup is testGroup with a fault-injection layer over every dial:
// CAS traffic to the admin words sees drops and delays, some past the op
// deadline — the paper's election protocol must stay safe (at most one
// winner per term) when the memory fabric turns gray.
func faultyGroup(t *testing.T, n int, seed int64) (*faultrdma.Controller, []string, func(id uint16) Config) {
	t.Helper()
	nw := rdma.NewNetwork(nil)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		node := rdma.NewNode(names[i])
		node.Alloc(1, 64, false)
		nw.AddNode(node)
	}
	const opDeadline = 20 * time.Millisecond
	ctrl := faultrdma.NewController(seed, opDeadline)
	mk := func(id uint16) Config {
		return Config{
			NodeID:      id,
			MemoryNodes: names,
			Dial: ctrl.WrapDialer(func(node string) (rdma.Verbs, error) {
				return nw.Dial("cpu", node, rdma.DialOpts{OpDeadline: opDeadline})
			}),
			AdminRegion:       1,
			HeartbeatInterval: time.Millisecond,
			ReadInterval:      time.Millisecond,
			MissedBeats:       3,
			Seed:              int64(id) + 100,
		}
	}
	return ctrl, names, mk
}

// TestElectionSafeUnderCASDelayAndLoss runs concurrent candidates while
// every memory node drops 20% of operations and delays 30% — some past the
// op deadline, so a candidate may see ErrDeadline for a CAS that actually
// landed. Safety: no term ever has two winners. Liveness: the candidate
// backoff (jittered inside Campaign) bounds the election storm and some
// candidate wins within the test deadline.
func TestElectionSafeUnderCASDelayAndLoss(t *testing.T) {
	for round := 0; round < 5; round++ {
		ctrl, names, mk := faultyGroup(t, 5, int64(round)*31+1)
		for _, name := range names {
			ctrl.Node(name).SetDrop(0.2)
			ctrl.Node(name).SetDelay(15*time.Millisecond, 15*time.Millisecond, 0.3)
		}

		const candidates = 3
		type res struct {
			id   uint16
			term uint16
		}
		ch := make(chan res, candidates*4)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		var wg sync.WaitGroup
		for id := uint16(1); id <= candidates; id++ {
			wg.Add(1)
			go func(id uint16) {
				defer wg.Done()
				e := New(mk(id))
				defer e.Close()
				var words map[string]Word
				for ctx.Err() == nil {
					term, outcome, err := e.Campaign(ctx, words)
					if err != nil {
						// Injected quorum loss; back off briefly and retry.
						select {
						case <-ctx.Done():
							return
						case <-time.After(2 * time.Millisecond):
						}
						words = nil
						continue
					}
					if outcome == Won {
						ch <- res{id, term}
						cancel()
						return
					}
					words, err = e.AwaitSuspicion(ctx)
					if err != nil {
						return
					}
				}
			}(id)
		}
		wg.Wait()
		cancel()
		close(ch)

		winners := map[uint16][]uint16{}
		for r := range ch {
			winners[r.term] = append(winners[r.term], r.id)
		}
		if len(winners) == 0 {
			t.Fatalf("round %d: no candidate won within the deadline (election storm unbounded)", round)
		}
		for term, ids := range winners {
			if len(ids) > 1 {
				t.Fatalf("round %d: term %d has %d winners: %v", round, term, len(ids), ids)
			}
		}
	}
}

// TestElectionHeartbeatSurvivesGrayMinority checks a coordinator keeps its
// lease when a minority of admin words is hung: heartbeats return at quorum
// on the healthy majority instead of waiting out the hung node's deadline,
// so the published timestamp keeps advancing at the configured interval.
func TestElectionHeartbeatSurvivesGrayMinority(t *testing.T) {
	ctrl, names, mk := faultyGroup(t, 3, 7)
	e := New(mk(1))
	defer e.Close()
	term, outcome, err := e.Campaign(context.Background(), nil)
	if err != nil || outcome != Won {
		t.Fatalf("campaign: outcome=%v err=%v", outcome, err)
	}
	ctrl.Node(names[0]).Hang()
	defer ctrl.Node(names[0]).Resume()
	start := time.Now()
	for ts := uint32(2); ts < 8; ts++ {
		if err := e.Heartbeat(term, ts); err != nil {
			t.Fatalf("heartbeat with gray minority, ts=%d: %v", ts, err)
		}
	}
	// Six rounds against a 20ms op deadline: waiting out the hung node each
	// round would cost ≥120ms; quorum-early return keeps the lease warm.
	if elapsed := time.Since(start); elapsed >= 120*time.Millisecond {
		t.Fatalf("6 heartbeat rounds took %v: rounds are waiting out the hung node instead of returning at quorum", elapsed)
	}
}
