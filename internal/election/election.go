// Package election implements Sift's coordinator election and heartbeat
// protocol (paper §3.2).
//
// The protocol involves no communication between CPU nodes. Each memory
// node's administrative region holds one 8-byte word packing
// (term_id, node_id, timestamp). The coordinator renews its lease by
// CAS-advancing the timestamp on every memory node; backup CPU nodes poll
// the word and, after a configurable number of missed heartbeats, campaign
// by CAS-installing (term+1, self, ts) on each memory node. Whoever CASes a
// majority of the admin words owns the term — the operation "closely
// resembles the locking of spinlocks" one-sidedly.
package election

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"github.com/repro/sift/internal/rdma"
)

// Protocol errors.
var (
	// ErrDethroned is returned by Heartbeat when the coordinator discovers a
	// higher term on a majority of memory nodes (it has been replaced).
	ErrDethroned = errors.New("election: coordinator dethroned by higher term")
	// ErrNoQuorum is returned when a majority of memory nodes is unreachable.
	ErrNoQuorum = errors.New("election: majority of memory nodes unreachable")
)

// Word is the administrative heartbeat word. The paper gives term_id and
// node_id 16 bits each and the timestamp 32 bits, which together fit exactly
// into one RDMA CAS operand.
type Word struct {
	Term      uint16
	Node      uint16
	Timestamp uint32
}

// Pack serialises the word into a CAS operand:
// term in bits 48..63, node in bits 32..47, timestamp in bits 0..31.
func (w Word) Pack() uint64 {
	return uint64(w.Term)<<48 | uint64(w.Node)<<32 | uint64(w.Timestamp)
}

// Unpack parses a CAS operand into a Word.
func Unpack(v uint64) Word {
	return Word{
		Term:      uint16(v >> 48),
		Node:      uint16(v >> 32),
		Timestamp: uint32(v),
	}
}

// Newer reports whether w supersedes old: a higher term always wins; within
// a term, a fresher heartbeat timestamp wins. The timestamp is a uint32
// beat counter that wraps after ~4.3B beats (~348 days at the default 7 ms
// interval), so freshness is judged by RFC 1982 serial-number arithmetic —
// w is newer when it is ahead of old by less than half the counter space —
// rather than plain >, which would make a live coordinator look stale the
// moment its counter wrapped past a follower's last observation.
func (w Word) Newer(old Word) bool {
	if w.Term != old.Term {
		return w.Term > old.Term
	}
	return w.Timestamp != old.Timestamp && int32(w.Timestamp-old.Timestamp) > 0
}

// Dialer opens an RDMA connection to the named memory node's admin region.
type Dialer func(node string) (rdma.Verbs, error)

// Config parameterises an Elector.
type Config struct {
	// NodeID identifies this CPU node in heartbeat words.
	NodeID uint16
	// MemoryNodes lists the group's memory nodes (2Fm+1 of them).
	MemoryNodes []string
	// Dial opens an admin-region connection to a memory node.
	Dial Dialer
	// AdminRegion and AdminOffset locate the heartbeat word.
	AdminRegion rdma.RegionID
	AdminOffset uint64

	// HeartbeatInterval is the coordinator's write period. The paper's
	// recovery experiment uses 7ms reads with 3 missed beats tolerated.
	HeartbeatInterval time.Duration
	// ReadInterval is the follower's heartbeat read period.
	ReadInterval time.Duration
	// MissedBeats is how many unchanged reads a follower tolerates before
	// campaigning.
	MissedBeats int
	// BackoffMin/BackoffMax bound the random pause after a split election.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed makes the random backoff deterministic for tests; 0 derives one
	// from NodeID.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 7 * time.Millisecond
	}
	if out.ReadInterval <= 0 {
		out.ReadInterval = 7 * time.Millisecond
	}
	if out.MissedBeats <= 0 {
		out.MissedBeats = 3
	}
	if out.BackoffMin <= 0 {
		out.BackoffMin = 2 * time.Millisecond
	}
	if out.BackoffMax <= out.BackoffMin {
		out.BackoffMax = out.BackoffMin + 8*time.Millisecond
	}
	if out.Seed == 0 {
		out.Seed = int64(out.NodeID) + 1
	}
	return out
}

// Elector drives heartbeat reads/writes and CAS elections for one CPU node.
type Elector struct {
	cfg Config
	rng *rand.Rand

	mu       sync.Mutex
	members  []string // current member list; starts as cfg.MemoryNodes
	conns    map[string]rdma.Verbs
	lastSeen map[string]Word // most recent word observed on each memory node

	// Read-lease state, piggybacked on the heartbeat read rounds the
	// follower performs anyway (no extra RDMA operations). A round is
	// lease-good when a majority of admin words carry one term T and no
	// word carries a higher term; the lease anchors at the round's START
	// time: by quorum intersection, term T+1's election CAS cannot have
	// completed on a majority before the round began, so any T+1
	// coordinator that delays its first acknowledgement by the lease
	// window W is guaranteed this lease has expired first.
	leaseMu     sync.Mutex
	leaseAnchor time.Time
	leaseTerm   uint16
}

// New creates an Elector. It opens connections lazily, so construction never
// blocks on unreachable memory nodes.
func New(cfg Config) *Elector {
	c := cfg.withDefaults()
	return &Elector{
		cfg:      c,
		members:  append([]string(nil), c.MemoryNodes...),
		rng:      rand.New(rand.NewSource(c.Seed)),
		conns:    make(map[string]rdma.Verbs),
		lastSeen: make(map[string]Word),
	}
}

// Majority returns the quorum size for the current member list.
func (e *Elector) Majority() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.majorityLocked()
}

func (e *Elector) majorityLocked() int { return len(e.members)/2 + 1 }

// memberSnapshot returns the current member list for one protocol round.
func (e *Elector) memberSnapshot() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.members...)
}

// Members returns the current member list.
func (e *Elector) Members() []string { return e.memberSnapshot() }

// UpdateMembers switches the elector to a new member list (an online
// reconfiguration changed the group's memory nodes). Connections and cached
// words for removed nodes are dropped; heartbeats, read rounds, and future
// campaigns run against the new list from the next round on. The heartbeat
// words on the surviving and fresh nodes carry over — a reconfiguration
// changes the member set, not the term.
func (e *Elector) UpdateMembers(nodes []string) {
	e.mu.Lock()
	keep := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		keep[n] = true
	}
	var drop []rdma.Verbs
	for n, c := range e.conns {
		if !keep[n] {
			drop = append(drop, c)
			delete(e.conns, n)
		}
	}
	for n := range e.lastSeen {
		if !keep[n] {
			delete(e.lastSeen, n)
		}
	}
	e.members = append([]string(nil), nodes...)
	e.mu.Unlock()
	for _, c := range drop {
		c.Close()
	}
}

// NodeID returns the configured CPU node id.
func (e *Elector) NodeID() uint16 { return e.cfg.NodeID }

func (e *Elector) conn(node string) (rdma.Verbs, error) {
	e.mu.Lock()
	c := e.conns[node]
	e.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := e.cfg.Dial(node)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if existing := e.conns[node]; existing != nil {
		e.mu.Unlock()
		c.Close()
		return existing, nil
	}
	e.conns[node] = c
	e.mu.Unlock()
	return c, nil
}

func (e *Elector) dropConn(node string) {
	e.mu.Lock()
	if c := e.conns[node]; c != nil {
		c.Close()
		delete(e.conns, node)
	}
	e.mu.Unlock()
}

// Close releases all connections.
func (e *Elector) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for n, c := range e.conns {
		c.Close()
		delete(e.conns, n)
	}
}

// readWord reads one memory node's admin word.
func (e *Elector) readWord(node string) (Word, error) {
	c, err := e.conn(node)
	if err != nil {
		return Word{}, err
	}
	var buf [8]byte
	if err := c.Read(e.cfg.AdminRegion, e.cfg.AdminOffset, buf[:]); err != nil {
		e.dropConn(node)
		return Word{}, err
	}
	w := Unpack(uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
		uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56)
	e.mu.Lock()
	e.lastSeen[node] = w
	e.mu.Unlock()
	return w, nil
}

// ReadAll performs one heartbeat read round. It returns the words it could
// read and the freshest word overall. err is ErrNoQuorum when fewer than a
// majority of nodes responded.
func (e *Elector) ReadAll() (words map[string]Word, best Word, err error) {
	roundStart := time.Now()
	nodes := e.memberSnapshot()
	words = make(map[string]Word, len(nodes))
	type result struct {
		node string
		w    Word
		err  error
	}
	ch := make(chan result, len(nodes))
	for _, node := range nodes {
		go func(node string) {
			w, err := e.readWord(node)
			ch <- result{node, w, err}
		}(node)
	}
	for range nodes {
		r := <-ch
		if r.err != nil {
			continue
		}
		words[r.node] = r.w
		if r.w.Newer(best) {
			best = r.w
		}
	}
	e.noteLeaseRound(roundStart, words, best)
	if len(words) < e.Majority() {
		return words, best, ErrNoQuorum
	}
	return words, best, nil
}

// noteLeaseRound updates the read-lease state after one read round. best is
// the freshest word observed, so "no higher term" holds exactly when a
// majority of the readable words carry best.Term.
func (e *Elector) noteLeaseRound(roundStart time.Time, words map[string]Word, best Word) {
	if best.Term == 0 {
		return // no coordinator has ever owned a term
	}
	atTerm := 0
	for _, w := range words {
		if w.Term == best.Term {
			atTerm++
		}
	}
	if atTerm < e.Majority() {
		return
	}
	e.leaseMu.Lock()
	e.leaseAnchor = roundStart
	e.leaseTerm = best.Term
	e.leaseMu.Unlock()
}

// Lease reports whether this node holds a valid read lease for window w:
// within the last w, a full read round (anchored at its start) observed a
// majority of memory nodes agreeing on one term with no higher term in
// sight. It returns that term. Backup CPU nodes gate replicated-memory
// reads on this.
func (e *Elector) Lease(w time.Duration) (uint16, bool) {
	e.leaseMu.Lock()
	defer e.leaseMu.Unlock()
	if e.leaseTerm == 0 || time.Since(e.leaseAnchor) >= w {
		return 0, false
	}
	return e.leaseTerm, true
}

// AwaitSuspicion blocks in the follower role, performing heartbeat reads
// every ReadInterval, and returns the last observed per-node words once
// MissedBeats consecutive rounds show no fresher heartbeat (coordinator
// suspected dead) — or ctx is cancelled. Rounds where a majority of nodes
// is unreachable do not count as missed beats: the follower cannot
// distinguish its own partition from a coordinator failure, and campaigning
// would be futile without a quorum anyway.
func (e *Elector) AwaitSuspicion(ctx context.Context) (map[string]Word, error) {
	var last Word
	missed := 0
	first := true
	ticker := time.NewTicker(e.cfg.ReadInterval)
	defer ticker.Stop()
	for {
		words, best, err := e.ReadAll()
		if err == nil {
			if first || best.Newer(last) {
				last = best
				missed = 0
				first = false
			} else {
				missed++
				if missed >= e.cfg.MissedBeats {
					return words, nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Outcome describes the result of one campaign.
type Outcome int

// Campaign outcomes.
const (
	// Won: this node now owns the term and must start coordinating.
	Won Outcome = iota
	// Lost: another CPU node owns a term at least as new; return to follower.
	Lost
	// Retry: split vote; back off and campaign again with a higher term.
	Retry
)

// Campaign runs election rounds until this node wins, observes a competing
// coordinator (Lost), or ctx is cancelled. On Won it returns the term now
// owned. observed seeds the CAS expected values (typically the map returned
// by AwaitSuspicion); missing nodes fall back to the elector's internal
// last-seen cache.
func (e *Elector) Campaign(ctx context.Context, observed map[string]Word) (uint16, Outcome, error) {
	if len(observed) == 0 {
		e.mu.Lock()
		empty := len(e.lastSeen) == 0
		e.mu.Unlock()
		if empty {
			// Cold start: seed the CAS expected values with a read round.
			e.ReadAll()
		}
	}
	e.mu.Lock()
	for n, w := range observed {
		e.lastSeen[n] = w
	}
	var maxSeen Word
	for _, w := range e.lastSeen {
		if w.Newer(maxSeen) {
			maxSeen = w
		}
	}
	e.mu.Unlock()

	term := maxSeen.Term
	for {
		term++ // candidates increment term_id for each round
		outcome := e.electionRound(term)
		switch outcome {
		case Won:
			return term, Won, nil
		case Lost:
			return 0, Lost, nil
		}
		// Split vote: random back-off, then retry with CAS values from the
		// most recent round (already cached in lastSeen by electionRound).
		e.mu.Lock()
		backoff := e.cfg.BackoffMin + time.Duration(e.rng.Int63n(int64(e.cfg.BackoffMax-e.cfg.BackoffMin)))
		e.mu.Unlock()
		select {
		case <-ctx.Done():
			return 0, Retry, ctx.Err()
		case <-time.After(backoff):
		}
	}
}

// electionRound CASes (term, self) onto every memory node and classifies the
// result.
func (e *Elector) electionRound(term uint16) Outcome {
	mine := Word{Term: term, Node: e.cfg.NodeID, Timestamp: 1}
	nodes := e.memberSnapshot()
	type result struct {
		node string
		ok   bool
		old  Word
		err  error
	}
	ch := make(chan result, len(nodes))
	for _, node := range nodes {
		go func(node string) {
			e.mu.Lock()
			expect := e.lastSeen[node]
			e.mu.Unlock()
			c, err := e.conn(node)
			if err != nil {
				ch <- result{node: node, err: err}
				return
			}
			old, err := c.CompareAndSwap(e.cfg.AdminRegion, e.cfg.AdminOffset, expect.Pack(), mine.Pack())
			if err != nil {
				e.dropConn(node)
				ch <- result{node: node, err: err}
				return
			}
			ch <- result{node: node, ok: old == expect.Pack(), old: Unpack(old)}
		}(node)
	}

	wonNodes := 0
	var maxObserved Word
	for range nodes {
		r := <-ch
		if r.err != nil {
			continue
		}
		if r.ok {
			wonNodes++
			e.mu.Lock()
			e.lastSeen[r.node] = mine
			e.mu.Unlock()
		} else {
			e.mu.Lock()
			e.lastSeen[r.node] = r.old // use returned value next round
			e.mu.Unlock()
			if r.old.Newer(maxObserved) {
				maxObserved = r.old
			}
		}
	}
	if wonNodes >= len(nodes)/2+1 {
		return Won
	}
	if maxObserved.Term >= term {
		// Another candidate reached at least our term; it may have the
		// majority we failed to get. Fall back to follower: if it is alive
		// its heartbeats will show, otherwise we will campaign again.
		return Lost
	}
	return Retry
}

// Heartbeat performs one coordinator heartbeat round for the owned term,
// CAS-advancing the timestamp on every memory node. It returns ErrDethroned
// when fewer than a majority of heartbeat writes succeed — either because a
// newer term exists or because the coordinator lost connectivity to a
// quorum; in both cases it must stop serving (paper §3.2).
//
// The round returns as soon as the quorum outcome is decided rather than
// draining every node: a hung (gray) minority member would otherwise pin
// every round at the full op deadline, stalling the published timestamp
// long enough for backups to suspect a healthy coordinator. Stragglers
// complete into the buffered channel and update lastSeen on their own.
func (e *Elector) Heartbeat(term uint16, timestamp uint32) error {
	mine := Word{Term: term, Node: e.cfg.NodeID, Timestamp: timestamp}
	nodes := e.memberSnapshot()
	type result struct {
		node     string
		ok       bool
		observed Word
	}
	ch := make(chan result, len(nodes))
	for _, node := range nodes {
		go func(node string) {
			e.mu.Lock()
			expect := e.lastSeen[node]
			e.mu.Unlock()
			c, err := e.conn(node)
			if err != nil {
				ch <- result{node: node}
				return
			}
			old, err := c.CompareAndSwap(e.cfg.AdminRegion, e.cfg.AdminOffset, expect.Pack(), mine.Pack())
			if err != nil {
				e.dropConn(node)
				ch <- result{node: node}
				return
			}
			if old == expect.Pack() {
				e.mu.Lock()
				e.lastSeen[node] = mine
				e.mu.Unlock()
				ch <- result{node: node, ok: true, observed: mine}
				return
			}
			obs := Unpack(old)
			e.mu.Lock()
			e.lastSeen[node] = obs
			e.mu.Unlock()
			// The node has a stale word (e.g. we never won its CAS during the
			// election). If it is from an older term, bring it up to date.
			if obs.Term <= term && !(obs.Term == term && obs.Node != e.cfg.NodeID) {
				old2, err2 := c.CompareAndSwap(e.cfg.AdminRegion, e.cfg.AdminOffset, old, mine.Pack())
				if err2 == nil && old2 == old {
					e.mu.Lock()
					e.lastSeen[node] = mine
					e.mu.Unlock()
					ch <- result{node: node, ok: true, observed: mine}
					return
				}
			}
			ch <- result{node: node, observed: obs}
		}(node)
	}
	renewed, failed := 0, 0
	n := len(nodes)
	maj := n/2 + 1
	for i := 0; i < n; i++ {
		r := <-ch
		if r.ok {
			if renewed++; renewed >= maj {
				return nil
			}
		} else {
			if failed++; failed > n-maj {
				return ErrDethroned
			}
		}
	}
	return ErrDethroned
}

// HeartbeatInterval exposes the configured write period.
func (e *Elector) HeartbeatInterval() time.Duration { return e.cfg.HeartbeatInterval }

// ReadInterval exposes the configured follower read period.
func (e *Elector) ReadInterval() time.Duration { return e.cfg.ReadInterval }
