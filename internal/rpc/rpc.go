// Package rpc is the client↔server RPC used between clients and the Sift
// coordinator (and by the Raft-R/EPaxos baselines, so all systems share one
// front end as in the paper's evaluation: "All systems we implemented use
// the same custom select-based RPC over TCP library", §6.2).
//
// It is a minimal multiplexed binary protocol over TCP: requests carry an
// id, a method byte, and an opaque payload; responses carry the id, a
// status, and a payload. A single connection supports concurrent in-flight
// calls. An in-process loopback lets benchmarks bypass the kernel without
// changing call sites.
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Errors returned by the client.
var (
	// ErrClosed means the connection has been closed.
	ErrClosed = errors.New("rpc: connection closed")
	// ErrRemote wraps an error string returned by the server handler.
	ErrRemote = errors.New("rpc: remote error")
)

// Handler processes one request payload and returns a response payload.
// Returning an error sends the error text to the client as ErrRemote.
type Handler func(payload []byte) ([]byte, error)

// Caller is the client-side calling interface, satisfied by both *Client
// (TCP) and *Loopback (in-process).
type Caller interface {
	Call(method uint8, payload []byte) ([]byte, error)
	Close() error
}

// Server dispatches requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[uint8]Handler
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[uint8]Handler)}
}

// Handle registers h for method. Re-registering replaces the handler.
func (s *Server) Handle(method uint8, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// dispatch runs the handler for one request.
func (s *Server) dispatch(method uint8, payload []byte) ([]byte, error) {
	s.mu.RLock()
	h := s.handlers[method]
	s.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("unknown method %d", method)
	}
	return h(payload)
}

// Serve accepts and serves connections until l is closed.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.serveConn(conn)
	}
}

// maxPayload bounds one frame's payload.
const maxPayload = 16 << 20

// Frame layout — request: id(8) method(1) len(4) payload;
// response: id(8) status(1) len(4) payload.
const frameHeader = 13

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	var wmu sync.Mutex
	bw := bufio.NewWriterSize(conn, 64<<10)

	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:8])
		method := hdr[8]
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if plen > maxPayload {
			return
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return
		}
		// Handlers may block (consensus round trips), so dispatch
		// concurrently; the write mutex serialises responses.
		go func() {
			resp, err := s.dispatch(method, payload)
			status := byte(0)
			if err != nil {
				status = 1
				resp = []byte(err.Error())
			}
			var rh [frameHeader]byte
			binary.LittleEndian.PutUint64(rh[0:8], id)
			rh[8] = status
			binary.LittleEndian.PutUint32(rh[9:13], uint32(len(resp)))
			wmu.Lock()
			defer wmu.Unlock()
			if _, err := bw.Write(rh[:]); err != nil {
				return
			}
			if _, err := bw.Write(resp); err != nil {
				return
			}
			bw.Flush()
		}()
	}
}

// Client is a multiplexed TCP connection to a Server.
type Client struct {
	conn net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	closed  bool
	err     error
}

type response struct {
	status  byte
	payload []byte
}

// Dial connects to a Server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		pending: make(map[uint64]chan response),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			c.fail(err)
			return
		}
		id := binary.LittleEndian.Uint64(hdr[0:8])
		status := hdr[8]
		plen := binary.LittleEndian.Uint32(hdr[9:13])
		if plen > maxPayload {
			c.fail(fmt.Errorf("rpc: oversized response (%d bytes)", plen))
			return
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- response{status: status, payload: payload}
		}
	}
}

// fail poisons the client and unblocks all waiters.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	c.conn.Close()
}

// Call sends a request and blocks for its response. Safe for concurrent use.
func (c *Client) Call(method uint8, payload []byte) ([]byte, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:8], id)
	hdr[8] = method
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))

	c.wmu.Lock()
	_, err := c.bw.Write(hdr[:])
	if err == nil {
		_, err = c.bw.Write(payload)
	}
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fail(err)
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	if resp.status != 0 {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.payload)
	}
	return resp.payload, nil
}

// Close tears down the connection; in-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return nil
}

// Loopback is an in-process Caller that invokes a Server's handlers
// directly, for single-process deployments and benchmarks.
type Loopback struct {
	srv *Server
}

// NewLoopback wraps srv.
func NewLoopback(srv *Server) *Loopback { return &Loopback{srv: srv} }

// Call implements Caller.
func (l *Loopback) Call(method uint8, payload []byte) ([]byte, error) {
	resp, err := l.srv.dispatch(method, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrRemote, err.Error())
	}
	return resp, nil
}

// Close implements Caller.
func (l *Loopback) Close() error { return nil }
