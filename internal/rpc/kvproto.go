package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// KV method ids shared by Sift and the baseline systems, so every system
// presents the same wire API to clients.
const (
	MethodGet    uint8 = 1
	MethodPut    uint8 = 2
	MethodDelete uint8 = 3
	MethodStatus uint8 = 4 // liveness/role probe
	// MethodAdmin carries a space-separated reconfiguration verb, served
	// only by the coordinator: "epoch", "replace <old> <new>",
	// "add <node>", "remove <node>", "restripe <m1,m2,...> [k m]".
	MethodAdmin uint8 = 5
)

// ErrDecode indicates a malformed KV payload.
var ErrDecode = errors.New("rpc: malformed kv payload")

// EncodeKV packs a key (and optional value) as len(2)+key+value.
func EncodeKV(key, value []byte) []byte {
	buf := make([]byte, 2+len(key)+len(value))
	binary.LittleEndian.PutUint16(buf[0:2], uint16(len(key)))
	copy(buf[2:], key)
	copy(buf[2+len(key):], value)
	return buf
}

// DecodeKV unpacks a payload produced by EncodeKV.
func DecodeKV(payload []byte) (key, value []byte, err error) {
	if len(payload) < 2 {
		return nil, nil, ErrDecode
	}
	kl := int(binary.LittleEndian.Uint16(payload[0:2]))
	if 2+kl > len(payload) {
		return nil, nil, fmt.Errorf("%w: key length %d", ErrDecode, kl)
	}
	return payload[2 : 2+kl], payload[2+kl:], nil
}
