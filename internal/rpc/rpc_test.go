package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	return srv, l.Addr().String()
}

func TestCallRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle(1, func(p []byte) ([]byte, error) {
		return append([]byte("echo:"), p...), nil
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(1, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hello" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestRemoteError(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle(1, func(p []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	c, _ := Dial(addr)
	defer c.Close()
	_, err := c.Call(1, nil)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr)
	defer c.Close()
	if _, err := c.Call(99, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle(1, func(p []byte) ([]byte, error) {
		return p, nil // echo
	})
	c, _ := Dial(addr)
	defer c.Close()
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("w%d-i%d", w, i))
				resp, err := c.Call(1, msg)
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if !bytes.Equal(resp, msg) {
					t.Errorf("cross-talk: sent %q got %q", msg, resp)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestClientClose(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle(1, func(p []byte) ([]byte, error) { return p, nil })
	c, _ := Dial(addr)
	c.Close()
	if _, err := c.Call(1, nil); err == nil {
		t.Fatal("call on closed client should fail")
	}
}

func TestServerConnDrop(t *testing.T) {
	srv := NewServer()
	srv.Handle(1, func(p []byte) ([]byte, error) { return p, nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	c, _ := Dial(l.Addr().String())
	if _, err := c.Call(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	c.conn.Close() // sever underneath
	if _, err := c.Call(1, []byte("y")); err == nil {
		t.Fatal("call over severed conn should fail")
	}
}

func TestLoopback(t *testing.T) {
	srv := NewServer()
	srv.Handle(7, func(p []byte) ([]byte, error) { return append(p, '!'), nil })
	lb := NewLoopback(srv)
	defer lb.Close()
	resp, err := lb.Call(7, []byte("fast"))
	if err != nil || string(resp) != "fast!" {
		t.Fatalf("resp=%q err=%v", resp, err)
	}
	if _, err := lb.Call(8, nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("unknown method via loopback: %v", err)
	}
}

func TestKVProtoRoundTrip(t *testing.T) {
	f := func(key, value []byte) bool {
		if len(key) > 65535 {
			key = key[:65535]
		}
		p := EncodeKV(key, value)
		k, v, err := DecodeKV(p)
		return err == nil && bytes.Equal(k, key) && bytes.Equal(v, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKVProtoMalformed(t *testing.T) {
	if _, _, err := DecodeKV(nil); !errors.Is(err, ErrDecode) {
		t.Fatalf("nil payload: %v", err)
	}
	if _, _, err := DecodeKV([]byte{255, 255, 0}); !errors.Is(err, ErrDecode) {
		t.Fatalf("overlong key: %v", err)
	}
}

func TestEmptyPayloads(t *testing.T) {
	srv, addr := startServer(t)
	srv.Handle(1, func(p []byte) ([]byte, error) { return nil, nil })
	c, _ := Dial(addr)
	defer c.Close()
	resp, err := c.Call(1, nil)
	if err != nil || len(resp) != 0 {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
}
