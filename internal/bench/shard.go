package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	sift "github.com/repro/sift"
)

// ShardScalingConfig sizes a multi-group put-throughput run.
type ShardScalingConfig struct {
	// Groups is the number of consensus groups behind the shard router.
	Groups int
	// Clients is the total closed-loop client population, held constant
	// across group counts so every configuration faces the same offered
	// load (default 16). A population that scales with the group count
	// under-loads the small configurations and manufactures super-linear
	// "speedups" — the bug behind BENCH_9's impossible 4.31× at 4 groups.
	// For a load-independent number, prefer the open-loop knee from
	// ShardPutCapacity.
	Clients int
	// KeysPerClient is each client's working set. Default 256.
	KeysPerClient int
	// LinkLatency is the fixed fabric latency applied to every group
	// (default 2ms). The scaling experiment is deliberately latency-bound:
	// with clients blocked on the network most of the time, aggregate
	// throughput tracks the number of groups rather than host-CPU
	// contention, which is the regime the paper's horizontal-sharding
	// argument is about (each group is its own failure and commit domain).
	LinkLatency time.Duration
	// Warmup runs before measurement starts (default 300ms).
	Warmup time.Duration
	// Duration is the measured window (default 1s).
	Duration time.Duration
	// ValueSize is the put payload (default 64).
	ValueSize int
	// Seed feeds the group configs.
	Seed int64
}

func (c ShardScalingConfig) withDefaults() ShardScalingConfig {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.KeysPerClient <= 0 {
		c.KeysPerClient = 256
	}
	if c.LinkLatency <= 0 {
		c.LinkLatency = 2 * time.Millisecond
	}
	if c.Warmup <= 0 {
		c.Warmup = 300 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	return c
}

// ShardPutThroughput boots a ShardCluster with cfg.Groups consensus groups
// and measures aggregate put throughput through the shard router with a
// fixed closed-loop client population (the same total offered load at
// every group count). It returns acknowledged puts per second over the
// measured window.
func ShardPutThroughput(cfg ShardScalingConfig) (float64, error) {
	cfg = cfg.withDefaults()
	if cfg.Groups < 1 {
		return 0, fmt.Errorf("bench: ShardPutThroughput needs ≥1 group, got %d", cfg.Groups)
	}
	sc, err := sift.NewShardCluster(sift.ShardConfig{
		Groups: cfg.Groups,
		Group: sift.Config{
			F: 1, Keys: 4096, MaxValueSize: 992, Seed: cfg.Seed,
		},
	})
	if err != nil {
		return 0, err
	}
	defer sc.Close()
	sc.SetLinkLatency(cfg.LinkLatency, 0)

	var (
		ops  atomic.Uint64
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := sc.Client()
			val := make([]byte, cfg.ValueSize)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("shard-%03d-%06d", c, i%cfg.KeysPerClient))
				if err := cl.Put(key, val); err == nil {
					ops.Add(1)
				}
			}
		}(c)
	}

	time.Sleep(cfg.Warmup)
	before := ops.Load()
	start := time.Now()
	time.Sleep(cfg.Duration)
	acked := ops.Load() - before
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	return float64(acked) / elapsed.Seconds(), nil
}
