// Package bench is the benchmark harness that regenerates the paper's
// evaluation (§6): it wraps Sift, Sift EC, Raft-R, and EPaxos behind one
// key-value System interface, drives them with the §6.2 workloads, and
// measures throughput, latency percentiles, and throughput timelines.
package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	sift "github.com/repro/sift"
	"github.com/repro/sift/internal/epaxos"
	"github.com/repro/sift/internal/msg"
	"github.com/repro/sift/internal/raftr"
)

// System is a benchmarkable replicated key-value store.
type System interface {
	Name() string
	Put(key, value []byte) error
	Get(key []byte) ([]byte, error)
	Close()
}

// SystemKind selects a system under test.
type SystemKind int

// Systems under test (Figure 5's legend).
const (
	SystemSift SystemKind = iota
	SystemSiftEC
	SystemRaftR
	SystemEPaxos
)

// String returns the system's display name.
func (k SystemKind) String() string {
	switch k {
	case SystemSift:
		return "Sift"
	case SystemSiftEC:
		return "Sift EC"
	case SystemRaftR:
		return "Raft-R"
	default:
		return "EPaxos"
	}
}

// SystemConfig sizes a system under test.
type SystemConfig struct {
	Kind SystemKind
	// F is the fault tolerance level (F=1 → 3 replicas / 3 mem + 2 CPU).
	F int
	// Keys is the pre-populated key count (the paper uses 1M; benches
	// default smaller so `go test -bench` stays laptop-friendly).
	Keys int
	// ValueSize is the value payload (paper: up to 992).
	ValueSize int
	// Seed for deterministic elections.
	Seed int64
}

func (c *SystemConfig) withDefaults() SystemConfig {
	out := *c
	if out.F <= 0 {
		out.F = 1
	}
	if out.Keys <= 0 {
		out.Keys = 4096
	}
	if out.ValueSize <= 0 {
		out.ValueSize = 128
	}
	if out.Seed == 0 {
		out.Seed = 42
	}
	return out
}

// NewSystem builds and pre-populates a system under test.
func NewSystem(cfg SystemConfig) (System, error) {
	c := cfg.withDefaults()
	switch c.Kind {
	case SystemSift, SystemSiftEC:
		return newSiftSystem(c)
	case SystemRaftR:
		return newRaftSystem(c)
	case SystemEPaxos:
		return newEPaxosSystem(c)
	}
	return nil, fmt.Errorf("bench: unknown system %v", c.Kind)
}

// --- Sift / Sift EC ---

type siftSystem struct {
	name    string
	cluster *sift.Cluster
	client  *sift.Client
}

func newSiftSystem(c SystemConfig) (System, error) {
	cfg := sift.Config{
		F:             c.F,
		ErasureCoding: c.Kind == SystemSiftEC,
		Keys:          c.Keys,
		MaxValueSize:  maxInt(c.ValueSize, 64),
		KVWALSlots:    4096,
		Seed:          c.Seed,
	}
	cl, err := sift.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &siftSystem{name: c.Kind.String(), cluster: cl, client: cl.Client()}, nil
}

func (s *siftSystem) Name() string { return s.name }
func (s *siftSystem) Put(key, value []byte) error {
	return s.client.Put(key, value)
}
func (s *siftSystem) Get(key []byte) ([]byte, error) {
	return s.client.Get(key)
}
func (s *siftSystem) Close() { s.cluster.Close() }

// Cluster exposes the underlying cluster for failure-injection experiments
// (Figures 11 and 12).
func (s *siftSystem) Cluster() *sift.Cluster { return s.cluster }

// SiftCluster unwraps a Sift system's cluster, or nil for other systems.
func SiftCluster(s System) *sift.Cluster {
	if ss, ok := s.(*siftSystem); ok {
		return ss.cluster
	}
	return nil
}

// --- Raft-R ---

type raftSystem struct {
	nodes []*raftr.Node
}

func newRaftSystem(c SystemConfig) (System, error) {
	n := 2*c.F + 1
	net := msg.NewNetwork(nil)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("raft%d", i)
	}
	sys := &raftSystem{}
	for i := 0; i < n; i++ {
		node := raftr.NewNode(raftr.Config{
			ID:                names[i],
			Peers:             names,
			Endpoint:          net.Join(names[i], 1<<16),
			ElectionTimeout:   20 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
			Partitions:        1000,
			Seed:              c.Seed + int64(i),
		})
		sys.nodes = append(sys.nodes, node)
		node.Start()
	}
	// Wait for a leader.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if sys.leader() != nil {
			return sys, nil
		}
		time.Sleep(time.Millisecond)
	}
	sys.Close()
	return nil, fmt.Errorf("bench: raft-r leader election timed out")
}

func (s *raftSystem) leader() *raftr.Node {
	for _, n := range s.nodes {
		if n.Role() == raftr.Leader {
			return n
		}
	}
	return nil
}

func (s *raftSystem) Name() string { return "Raft-R" }

func (s *raftSystem) Put(key, value []byte) error {
	ld := s.leader()
	if ld == nil {
		return raftr.ErrNotLeader
	}
	return ld.Put(key, value)
}

func (s *raftSystem) Get(key []byte) ([]byte, error) {
	ld := s.leader()
	if ld == nil {
		return nil, raftr.ErrNotLeader
	}
	return ld.Get(key)
}

func (s *raftSystem) Close() {
	for _, n := range s.nodes {
		n.Stop()
	}
}

// --- EPaxos ---

type epaxosSystem struct {
	replicas []*epaxos.Replica
	rr       atomic.Uint64
}

func newEPaxosSystem(c SystemConfig) (System, error) {
	n := 2*c.F + 1
	net := msg.NewNetwork(nil)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("ep%d", i+1)
	}
	sys := &epaxosSystem{}
	for i := 0; i < n; i++ {
		r := epaxos.NewReplica(epaxos.Config{
			ID:          uint8(i + 1),
			Peers:       names,
			Endpoint:    net.Join(names[i], 1<<16),
			BatchWindow: 100 * time.Microsecond, // §6.3.1's adjusted batching
			BatchSize:   100,
		})
		sys.replicas = append(sys.replicas, r)
		r.Start()
	}
	return sys, nil
}

// pick distributes clients evenly across replicas (§6.3.2: "clients were
// configured to be evenly distributed across the EPaxos nodes").
func (s *epaxosSystem) pick() *epaxos.Replica {
	return s.replicas[int(s.rr.Add(1))%len(s.replicas)]
}

func (s *epaxosSystem) Name() string { return "EPaxos" }
func (s *epaxosSystem) Put(key, value []byte) error {
	return s.pick().Put(key, value)
}
func (s *epaxosSystem) Get(key []byte) ([]byte, error) {
	return s.pick().Get(key)
}
func (s *epaxosSystem) Close() {
	for _, r := range s.replicas {
		r.Stop()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
