package bench

import (
	"sync"
	"sync/atomic"
	"time"

	sift "github.com/repro/sift"
	"github.com/repro/sift/internal/metrics"
)

// WANBenchConfig sizes a wide-area put-throughput run: a 2F+1 deployment
// with one memory node and the client path across a simulated WAN link
// carrying sustained Gilbert–Elliott loss.
type WANBenchConfig struct {
	// LossRate is the stationary packet loss on the WAN links (0 = clean).
	LossRate float64
	// RTT is the WAN round-trip (default 40ms).
	RTT time.Duration
	// Clients is the closed-loop client population (default 8).
	Clients int
	// KeysPerClient is each client's working set (default 64).
	KeysPerClient int
	// Warmup runs before measurement starts (default 500ms — long enough
	// for the loss EWMA and the straggler detector to converge).
	Warmup time.Duration
	// Duration is the measured window (default 2s).
	Duration time.Duration
	// ValueSize is the put payload (default 64).
	ValueSize int
	// DisableFEC measures the plain-ARQ baseline instead of the
	// loss-adaptive FEC transport.
	DisableFEC bool
	// Seed feeds the cluster and impairment schedules.
	Seed int64
}

func (c WANBenchConfig) withDefaults() WANBenchConfig {
	if c.RTT <= 0 {
		c.RTT = 40 * time.Millisecond
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.KeysPerClient <= 0 {
		c.KeysPerClient = 64
	}
	if c.Warmup <= 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// WANPutThroughput boots a WAN deployment and measures acknowledged puts per
// second and the end-to-end put latency p99 (milliseconds) under the
// configured sustained loss. This is the probe behind the BENCH_9.json
// degradation curve: run it at 0%, 5%, and 15% loss and compare.
func WANPutThroughput(cfg WANBenchConfig) (opsPerSec, p99Ms float64, err error) {
	cfg = cfg.withDefaults()
	cl, err := sift.NewCluster(sift.Config{
		F: 1, Keys: 4096, MaxValueSize: 992, Seed: cfg.Seed,
		WAN: &sift.WANConfig{
			RTT:        cfg.RTT,
			Jitter:     time.Millisecond,
			LossRate:   cfg.LossRate,
			LossBurst:  8,
			Replica:    "mem2",
			ClientWAN:  true,
			DisableFEC: cfg.DisableFEC,
		},
	})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()

	var (
		hist    metrics.Histogram
		acked   atomic.Uint64
		measure atomic.Bool
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := cl.Client()
			val := make([]byte, cfg.ValueSize)
			key := make([]byte, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key[0], key[1] = byte(c), byte(i%cfg.KeysPerClient)
				start := time.Now()
				if client.Put(key, val) != nil {
					continue
				}
				if measure.Load() {
					acked.Add(1)
					hist.Record(time.Since(start))
				}
			}
		}(c)
	}

	time.Sleep(cfg.Warmup)
	measure.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	measure.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	return float64(acked.Load()) / elapsed.Seconds(),
		float64(hist.Percentile(99)) / 1e6, nil
}
