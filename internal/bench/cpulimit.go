package bench

import (
	"sync"
	"time"
)

// CPULimiter models core provisioning for the Figure 7 experiment: a
// server provisioned with K cores supplies K core-seconds of CPU per
// second, and each operation consumes a fixed PerOpCPU of it. Aggregate
// throughput therefore caps at K/PerOpCPU once the protocol itself is no
// longer the bottleneck — the provisioning-vs-throughput trade-off Figure 7
// charts.
//
// The model is virtual-time based rather than spin based, so it works on
// hosts with fewer physical cores than the modelled K: ops advance a shared
// virtual CPU clock by PerOpCPU/K and block only when that clock runs ahead
// of real time (a token bucket with a small burst allowance).
//
// A zero limiter (Cores <= 0) imposes nothing.
type CPULimiter struct {
	mu         sync.Mutex
	enabled    bool
	opInterval time.Duration // PerOpCPU / Cores: virtual time per op
	next       time.Time     // virtual CPU clock
}

// burstSlack is how far the virtual clock may run ahead before callers
// sleep. It trades rate-cap precision for sleep granularity.
const burstSlack = 2 * time.Millisecond

// NewCPULimiter creates a limiter with the given core count and per-op CPU
// cost. cores <= 0 or perOp <= 0 disables limiting.
func NewCPULimiter(cores int, perOp time.Duration) *CPULimiter {
	if cores <= 0 || perOp <= 0 {
		return &CPULimiter{}
	}
	return &CPULimiter{
		enabled:    true,
		opInterval: perOp / time.Duration(cores),
	}
}

// Acquire charges one operation's CPU cost and returns a release function
// (a no-op in this model; the charge is up front).
func (l *CPULimiter) Acquire() (release func()) {
	if l == nil || !l.enabled {
		return func() {}
	}
	now := time.Now()
	l.mu.Lock()
	if l.next.Before(now) {
		l.next = now
	}
	l.next = l.next.Add(l.opInterval)
	ahead := l.next.Sub(now)
	l.mu.Unlock()
	if ahead > burstSlack {
		time.Sleep(ahead - burstSlack)
	}
	return func() {}
}
