// Package compare diffs two benchmark JSON documents (BENCH_<n>.json
// against the tracked bench-baseline.json) metric by metric with relative
// tolerance bands — the benchstat-style regression gate behind
// `make bench-gate`. Both documents are flattened to dotted numeric
// paths, latency- and cost-shaped metrics are compared lower-is-better,
// and a report either passes or names exactly which metric moved outside
// its band.
package compare

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Status classifies one compared metric.
type Status int

// Statuses, most severe first.
const (
	// Regression: the metric moved outside its tolerance band in the bad
	// direction.
	Regression Status = iota
	// MissingInNew: the baseline has the metric, the fresh document does
	// not — a probe silently disappeared (fails the gate unless
	// Options.AllowMissing).
	MissingInNew
	// Improvement: outside the band in the good direction (informational).
	Improvement
	// AddedInNew: a new metric with no baseline yet (informational).
	AddedInNew
	// OK: within the band.
	OK
)

// String returns the status label.
func (s Status) String() string {
	switch s {
	case Regression:
		return "REGRESSION"
	case MissingInNew:
		return "MISSING"
	case Improvement:
		return "improved"
	case AddedInNew:
		return "new"
	default:
		return "ok"
	}
}

// Finding is one compared metric.
type Finding struct {
	Path          string
	Base, New     float64
	Delta         float64 // relative change vs baseline, signed
	LowerIsBetter bool
	Tolerance     float64
	Status        Status
}

// Options shapes a comparison.
type Options struct {
	// Tolerance is the default relative band (0.35 → a metric may move
	// ±35% before it counts). Benchmarks on shared CI runners are noisy;
	// the band should be wide enough that only real regressions trip it.
	Tolerance float64
	// PerMetric overrides the tolerance for a path or path prefix
	// (longest matching prefix wins).
	PerMetric map[string]float64
	// LowerIsBetter marks extra path substrings as lower-is-better, on
	// top of the built-in latency/cost patterns.
	LowerIsBetter []string
	// Ignore lists path substrings to skip entirely (e.g. host metadata).
	Ignore []string
	// AllowMissing downgrades baseline metrics absent from the new
	// document from gate failures to notes.
	AllowMissing bool
}

// lowerIsBetterPatterns are path substrings whose metrics regress upward:
// latency percentiles and dollar costs.
var lowerIsBetterPatterns = []string{
	"p50", "p95", "p99", "p999", "latency", "cost_per", "_ms", "_us",
}

func lowerIsBetter(path string, extra []string) bool {
	for _, p := range append(extra, lowerIsBetterPatterns...) {
		if p != "" && strings.Contains(path, p) {
			return true
		}
	}
	return false
}

// Flatten parses a benchmark JSON document into dotted numeric paths:
// {"a":{"b":1}} → {"a.b":1}. Non-numeric leaves (strings, booleans) are
// skipped; array elements flatten by index.
func Flatten(raw []byte) (map[string]float64, error) {
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("compare: %w", err)
	}
	out := map[string]float64{}
	flattenInto(out, "", doc)
	return out, nil
}

func flattenInto(out map[string]float64, prefix string, v any) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			flattenInto(out, joinPath(prefix, k), child)
		}
	case []any:
		for i, child := range t {
			flattenInto(out, joinPath(prefix, fmt.Sprint(i)), child)
		}
	case float64:
		if prefix != "" {
			out[prefix] = t
		}
	}
}

func joinPath(prefix, key string) string {
	if prefix == "" {
		return key
	}
	return prefix + "." + key
}

// Report is the outcome of one comparison, findings sorted most severe
// first, then by path.
type Report struct {
	Findings     []Finding
	AllowMissing bool
}

// Compare diffs fresh against base under opts.
func Compare(base, fresh map[string]float64, opts Options) Report {
	if opts.Tolerance <= 0 {
		opts.Tolerance = 0.35
	}
	rep := Report{AllowMissing: opts.AllowMissing}
	skip := func(path string) bool {
		for _, ig := range opts.Ignore {
			if ig != "" && strings.Contains(path, ig) {
				return true
			}
		}
		return false
	}
	for path, b := range base {
		if skip(path) {
			continue
		}
		tol := toleranceFor(path, opts)
		f := Finding{
			Path: path, Base: b, Tolerance: tol,
			LowerIsBetter: lowerIsBetter(path, opts.LowerIsBetter),
		}
		n, ok := fresh[path]
		if !ok {
			f.Status = MissingInNew
			rep.Findings = append(rep.Findings, f)
			continue
		}
		f.New = n
		if b != 0 {
			f.Delta = (n - b) / b
		} else if n != 0 {
			f.Delta = 1
		}
		bad, good := f.Delta < -tol, f.Delta > tol
		if f.LowerIsBetter {
			bad, good = good, bad
		}
		switch {
		case bad:
			f.Status = Regression
		case good:
			f.Status = Improvement
		default:
			f.Status = OK
		}
		rep.Findings = append(rep.Findings, f)
	}
	for path, n := range fresh {
		if skip(path) {
			continue
		}
		if _, ok := base[path]; !ok {
			rep.Findings = append(rep.Findings, Finding{
				Path: path, New: n, Status: AddedInNew,
				Tolerance:     toleranceFor(path, opts),
				LowerIsBetter: lowerIsBetter(path, opts.LowerIsBetter),
			})
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Status != rep.Findings[j].Status {
			return rep.Findings[i].Status < rep.Findings[j].Status
		}
		return rep.Findings[i].Path < rep.Findings[j].Path
	})
	return rep
}

func toleranceFor(path string, opts Options) float64 {
	tol, bestLen := opts.Tolerance, -1
	for prefix, t := range opts.PerMetric {
		if strings.HasPrefix(path, prefix) && len(prefix) > bestLen {
			tol, bestLen = t, len(prefix)
		}
	}
	return tol
}

// Regressions returns the findings that fail the gate.
func (r Report) Regressions() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Status == Regression || (f.Status == MissingInNew && !r.AllowMissing) {
			out = append(out, f)
		}
	}
	return out
}

// Failed reports whether the gate should exit nonzero.
func (r Report) Failed() bool { return len(r.Regressions()) > 0 }

// String renders the report as a text table, one finding per line.
func (r Report) String() string {
	var sb strings.Builder
	for _, f := range r.Findings {
		dir := "↑ better"
		if f.LowerIsBetter {
			dir = "↓ better"
		}
		switch f.Status {
		case MissingInNew:
			fmt.Fprintf(&sb, "%-10s %-45s base=%.4g (absent in new document)\n",
				f.Status, f.Path, f.Base)
		case AddedInNew:
			fmt.Fprintf(&sb, "%-10s %-45s new=%.4g (no baseline)\n",
				f.Status, f.Path, f.New)
		default:
			fmt.Fprintf(&sb, "%-10s %-45s base=%.4g new=%.4g delta=%+.1f%% band=±%.0f%% %s\n",
				f.Status, f.Path, f.Base, f.New, 100*f.Delta, 100*f.Tolerance, dir)
		}
	}
	return sb.String()
}

// CompareFiles is the one-call form used by cmd/benchcmp: flatten both
// documents and compare.
func CompareFiles(baseRaw, freshRaw []byte, opts Options) (Report, error) {
	base, err := Flatten(baseRaw)
	if err != nil {
		return Report{}, fmt.Errorf("baseline: %w", err)
	}
	fresh, err := Flatten(freshRaw)
	if err != nil {
		return Report{}, fmt.Errorf("new: %w", err)
	}
	return Compare(base, fresh, opts), nil
}
