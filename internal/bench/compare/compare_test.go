package compare

import (
	"strings"
	"testing"
)

const baseDoc = `{
  "generated": "2026-08-07T00:00:00Z",
  "go": "go1.24.0",
  "cpus": 1,
  "put_ops_per_sec": 1000,
  "read_p99_us": 20,
  "shard_knee_ops_per_sec": {"groups_1": 300, "groups_4": 1100},
  "cost_per_million_ops": {"plain": {"aws": 0.02}}
}`

func flatten(t *testing.T, doc string) map[string]float64 {
	t.Helper()
	m, err := Flatten([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFlattenNestedNumericPaths(t *testing.T) {
	m := flatten(t, baseDoc)
	if m["put_ops_per_sec"] != 1000 {
		t.Fatalf("top-level metric: %v", m)
	}
	if m["shard_knee_ops_per_sec.groups_4"] != 1100 {
		t.Fatalf("nested metric: %v", m)
	}
	if m["cost_per_million_ops.plain.aws"] != 0.02 {
		t.Fatalf("doubly nested metric: %v", m)
	}
	if _, ok := m["generated"]; ok {
		t.Fatal("string leaf must not flatten to a metric")
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	fresh := flatten(t, strings.Replace(baseDoc, `"put_ops_per_sec": 1000`, `"put_ops_per_sec": 500`, 1))
	rep := Compare(flatten(t, baseDoc), fresh, Options{Tolerance: 0.35})
	if !rep.Failed() {
		t.Fatalf("50%% throughput drop passed the gate:\n%s", rep)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Path != "put_ops_per_sec" {
		t.Fatalf("regressions = %+v", regs)
	}
}

func TestCompareToleranceRespected(t *testing.T) {
	// A 20% dip sits inside the ±35% band.
	fresh := flatten(t, strings.Replace(baseDoc, `"put_ops_per_sec": 1000`, `"put_ops_per_sec": 800`, 1))
	rep := Compare(flatten(t, baseDoc), fresh, Options{Tolerance: 0.35})
	if rep.Failed() {
		t.Fatalf("20%% dip inside a 35%% band failed the gate:\n%s", rep)
	}
	// The same dip fails a tighter band.
	rep = Compare(flatten(t, baseDoc), fresh, Options{Tolerance: 0.1})
	if !rep.Failed() {
		t.Fatal("20% dip passed a 10% band")
	}
}

func TestCompareLatencyIsLowerBetter(t *testing.T) {
	// p99 doubling is a regression even though the number went up...
	fresh := flatten(t, strings.Replace(baseDoc, `"read_p99_us": 20`, `"read_p99_us": 40`, 1))
	rep := Compare(flatten(t, baseDoc), fresh, Options{Tolerance: 0.35})
	if !rep.Failed() {
		t.Fatalf("p99 doubling passed the gate:\n%s", rep)
	}
	// ...and halving is an improvement, not a failure.
	fresh = flatten(t, strings.Replace(baseDoc, `"read_p99_us": 20`, `"read_p99_us": 10`, 1))
	rep = Compare(flatten(t, baseDoc), fresh, Options{Tolerance: 0.35})
	if rep.Failed() {
		t.Fatalf("p99 halving failed the gate:\n%s", rep)
	}
	// Cost metrics regress upward too.
	fresh = flatten(t, strings.Replace(baseDoc, `"aws": 0.02`, `"aws": 0.06`, 1))
	if !Compare(flatten(t, baseDoc), fresh, Options{Tolerance: 0.35}).Failed() {
		t.Fatal("3× cost/Mops passed the gate")
	}
}

func TestCompareMissingMetricHandling(t *testing.T) {
	fresh := flatten(t, strings.Replace(baseDoc, `"put_ops_per_sec": 1000,`, ``, 1))
	// A metric that silently disappears fails the gate by default...
	rep := Compare(flatten(t, baseDoc), fresh, Options{})
	if !rep.Failed() {
		t.Fatalf("vanished metric passed the gate:\n%s", rep)
	}
	// ...and is downgraded to a note under AllowMissing.
	rep = Compare(flatten(t, baseDoc), fresh, Options{AllowMissing: true})
	if rep.Failed() {
		t.Fatalf("AllowMissing still failed:\n%s", rep)
	}
}

func TestCompareAddedMetricIsInformational(t *testing.T) {
	fresh := flatten(t, strings.Replace(baseDoc, `"cpus": 1,`, `"cpus": 1, "new_metric": 7,`, 1))
	rep := Compare(flatten(t, baseDoc), fresh, Options{})
	if rep.Failed() {
		t.Fatalf("new metric without a baseline failed the gate:\n%s", rep)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Path == "new_metric" && f.Status == AddedInNew {
			found = true
		}
	}
	if !found {
		t.Fatalf("added metric not reported:\n%s", rep)
	}
}

func TestComparePerMetricOverrideAndIgnore(t *testing.T) {
	fresh := flatten(t, strings.Replace(baseDoc, `"groups_4": 1100`, `"groups_4": 500`, 1))
	// Default band trips on the 55% drop...
	if !Compare(flatten(t, baseDoc), fresh, Options{Tolerance: 0.35}).Failed() {
		t.Fatal("55% drop passed the default band")
	}
	// ...a widened per-prefix band absorbs it (longest prefix wins)...
	rep := Compare(flatten(t, baseDoc), fresh, Options{
		Tolerance: 0.35,
		PerMetric: map[string]float64{"shard_knee_ops_per_sec": 0.7},
	})
	if rep.Failed() {
		t.Fatalf("per-metric 70%% band still failed:\n%s", rep)
	}
	// ...and ignoring the path skips it entirely.
	rep = Compare(flatten(t, baseDoc), fresh, Options{
		Tolerance: 0.35,
		Ignore:    []string{"shard_knee_ops_per_sec"},
	})
	for _, f := range rep.Findings {
		if strings.HasPrefix(f.Path, "shard_knee_ops_per_sec") {
			t.Fatalf("ignored path still compared: %+v", f)
		}
	}
}

func TestCompareFilesEndToEnd(t *testing.T) {
	rep, err := CompareFiles([]byte(baseDoc), []byte(baseDoc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("identical documents failed the gate:\n%s", rep)
	}
	if _, err := CompareFiles([]byte("{"), []byte(baseDoc), Options{}); err == nil {
		t.Fatal("malformed baseline must error")
	}
}
