package bench

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoissonRateAccuracy: with a fast no-op operation, the generator's
// absolute schedule must deliver the configured rate — arrivals and
// achieved throughput both within 15% of offered (Poisson noise on ~1000
// arrivals is ~3%; the slack covers coarse sleeps on loaded runners).
func TestPoissonRateAccuracy(t *testing.T) {
	res := OpenLoop(OpenLoopConfig{
		Rate:     1000,
		Warmup:   100 * time.Millisecond,
		Duration: time.Second,
		Workers:  8,
		Seed:     1,
		Op:       func(worker, seq int) error { return nil },
	})
	if res.Dropped != 0 || res.Errors != 0 {
		t.Fatalf("clean run dropped=%d errors=%d", res.Dropped, res.Errors)
	}
	want := 1000.0
	if f := float64(res.Arrivals); f < 0.85*want || f > 1.15*want {
		t.Fatalf("arrivals = %d, want ≈%d", res.Arrivals, int(want))
	}
	if res.Achieved < 0.85*want || res.Achieved > 1.15*want {
		t.Fatalf("achieved = %.0f, want ≈%.0f", res.Achieved, want)
	}
	if res.Saturated(0.9) {
		t.Fatalf("no-op server reported saturated: %+v", res)
	}
}

// TestOpenLoopChargesStallAsQueueLatency: the anti-coordinated-omission
// property. A single 400ms server stall must surface in the measured tail
// (ops scheduled during the stall wait in queue, and their latency is
// measured from scheduled arrival time), and those arrivals must still be
// counted and executed, not silently omitted. A closed-loop probe would
// have recorded one slow op and stopped offering load.
func TestOpenLoopChargesStallAsQueueLatency(t *testing.T) {
	var stalled atomic.Bool
	res := OpenLoop(OpenLoopConfig{
		Rate:     200,
		Warmup:   100 * time.Millisecond,
		Duration: 1200 * time.Millisecond,
		Workers:    1, // single executor: the stall blocks the whole queue
		QueueDepth: 512,
		Seed:       2,
		Op: func(worker, seq int) error {
			if seq == 40 && !stalled.Swap(true) {
				time.Sleep(400 * time.Millisecond)
			}
			return nil
		},
	})
	if !stalled.Load() {
		t.Fatal("stall never injected")
	}
	if res.Dropped != 0 {
		t.Fatalf("queue overflowed (%d dropped); deepen the queue", res.Dropped)
	}
	// ~80 arrivals land during the stall window; the tail must see it.
	if res.P99 < 100*time.Millisecond {
		t.Fatalf("p99 = %v hides a 400ms stall (coordinated omission)", res.P99)
	}
	if res.Max < 300*time.Millisecond {
		t.Fatalf("max = %v, want ≥ the 400ms stall (minus schedule slack)", res.Max)
	}
	// The stall must not erase demand: arrivals during it are still served.
	if got, want := float64(res.Completed+res.Backlog), 0.8*float64(res.Arrivals); got < want {
		t.Fatalf("completed+backlog = %d of %d arrivals", res.Completed+res.Backlog, res.Arrivals)
	}
	// But the common case stays fast.
	if res.P50 > 100*time.Millisecond {
		t.Fatalf("p50 = %v; the stall should live in the tail, not the median", res.P50)
	}
}

// TestOpenLoopQueueOverflowCounted: offered load far beyond service
// capacity must be visible as drops/backlog and a saturated verdict —
// never a silently reduced offered rate.
func TestOpenLoopQueueOverflowCounted(t *testing.T) {
	res := OpenLoop(OpenLoopConfig{
		Rate:       2000,
		Warmup:     50 * time.Millisecond,
		Duration:   500 * time.Millisecond,
		Workers:    1,
		QueueDepth: 8,
		Seed:       3,
		Op: func(worker, seq int) error {
			time.Sleep(5 * time.Millisecond) // ~200 ops/sec ceiling
			return nil
		},
	})
	if res.Dropped == 0 {
		t.Fatalf("10× overload never overflowed the 8-deep queue: %+v", res)
	}
	if res.Achieved > 500 {
		t.Fatalf("achieved %.0f ops/s through a 200 ops/s server", res.Achieved)
	}
	if !res.Saturated(0.9) {
		t.Fatalf("overloaded run not reported saturated: %+v", res)
	}
}

// TestCapacitySweepFindsKnee: sweeping against a server with a hard
// ~600 ops/s service rate must land the knee near it — neither at the
// sweep floor nor past the ceiling.
func TestCapacitySweepFindsKnee(t *testing.T) {
	serverRate := 600.0
	perOp := time.Duration(float64(time.Second) / serverRate)
	var mu sync.Mutex
	allowedAt := time.Now()
	op := func(worker, seq int) error {
		mu.Lock()
		now := time.Now()
		if allowedAt.Before(now) {
			allowedAt = now
		}
		allowedAt = allowedAt.Add(perOp)
		wait := time.Until(allowedAt)
		mu.Unlock()
		if wait > 0 {
			time.Sleep(wait)
		}
		return nil
	}
	res := CapacitySweep(CapacityConfig{
		MinRate:      100,
		MaxRate:      3200,
		StepDuration: 350 * time.Millisecond,
		StepWarmup:   100 * time.Millisecond,
		Workers:      16,
		Seed:         4,
		Op:           op,
	})
	if len(res.Points) < 3 {
		t.Fatalf("sweep took %d points", len(res.Points))
	}
	if res.Saturated {
		t.Fatalf("100 ops/s floor reported saturated against a 600 ops/s server")
	}
	if res.KneeOpsPerSec < 0.5*serverRate || res.KneeOpsPerSec > 1.25*serverRate {
		t.Fatalf("knee = %.0f ops/s, want ≈%.0f", res.KneeOpsPerSec, serverRate)
	}
}

// TestCapacityPlainClusterSmoke: the real-cluster probe end to end with a
// tiny sweep — the `make capacity` CI smoke.
func TestCapacityPlainClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep in -short mode")
	}
	res, err := PlainPutCapacity(DeploymentCapacityConfig{
		Sweep: CapacityConfig{
			MinRate:      200,
			MaxRate:      1600,
			StepDuration: 300 * time.Millisecond,
			StepWarmup:   100 * time.Millisecond,
			Workers:      16,
			Refine:       1,
		},
		Keys: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KneeOpsPerSec <= 0 {
		t.Fatalf("no knee measured: %+v", res)
	}
	if res.Knee.P99 <= 0 {
		t.Fatal("no latency percentiles at the knee")
	}
}
