package bench

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/metrics"
)

// arrival is one scheduled open-loop request.
type arrival struct {
	due time.Time
	seq int
}

// OpenLoopConfig drives one open-loop measurement: Poisson arrivals at
// Rate ops/sec flow through a bounded queue to Workers concurrent
// executors. Unlike the closed-loop probes (whose clients stop offering
// load the moment the server stalls), the arrival schedule is fixed in
// advance and latency is measured from each op's *scheduled* arrival
// time, so time spent waiting behind a stalled or saturated server is
// charged as queue latency instead of silently vanishing — the
// coordinated-omission failure mode.
type OpenLoopConfig struct {
	// Rate is the offered Poisson arrival rate, ops/sec.
	Rate float64
	// Duration is the measured window; Warmup runs before it (same rate,
	// stats discarded).
	Duration time.Duration
	Warmup   time.Duration
	// Workers bounds in-flight operations (default 64).
	Workers int
	// QueueDepth bounds the arrival queue (default 4×Workers). An arrival
	// that finds the queue full is counted as Dropped, never silently
	// discarded: overflow is a saturation signal.
	QueueDepth int
	// Seed feeds the inter-arrival RNG.
	Seed int64
	// Op executes one request. worker identifies the executor (so probes
	// can pin one client per worker); seq is the global arrival sequence.
	Op func(worker, seq int) error
}

// OpenLoopResult summarises one open-loop run. Latency percentiles are
// measured from scheduled arrival time (queue wait + service time).
type OpenLoopResult struct {
	Offered   float64 // configured arrival rate, ops/sec
	Workers   int
	Arrivals  int // arrivals due within the measured window
	Completed int // in-window arrivals that were served (drain included)
	Errors    int
	Dropped   int // queue-full arrivals (whole run)
	Backlog   int // enqueued but unserved when the run ended
	Achieved  float64 // completed / duration, ops/sec

	P50, P99, P999, Max time.Duration
}

// Saturated reports whether the run shows the server failing to keep up
// with the offered load: queue overflow, a backlog left at the end of
// the window, or served demand below threshold×arrivals (threshold in
// (0,1], e.g. 0.9). Served demand is judged against the *actual* arrival
// count, not the configured rate — short windows carry enough Poisson
// noise that a configured-rate comparison misflags low rates as
// saturated.
func (r OpenLoopResult) Saturated(threshold float64) bool {
	if r.Dropped > 0 {
		return true
	}
	if float64(r.Backlog) > 0.05*float64(r.Arrivals)+2*float64(r.Workers) {
		return true
	}
	return r.Arrivals > 0 && float64(r.Completed) < threshold*float64(r.Arrivals)
}

// OpenLoop runs one open-loop measurement at cfg.Rate.
func OpenLoop(cfg OpenLoopConfig) OpenLoopResult {
	if cfg.Rate <= 0 {
		return OpenLoopResult{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Warmup < 0 {
		cfg.Warmup = 0
	}

	var (
		queue     = make(chan arrival, cfg.QueueDepth)
		hist      metrics.Histogram
		arrivals  atomic.Int64
		completed atomic.Int64
		errs      atomic.Int64
		dropped   atomic.Int64
		backlog   atomic.Int64
		draining  atomic.Bool
	)

	start := time.Now()
	measureStart := start.Add(cfg.Warmup)
	deadline := measureStart.Add(cfg.Duration)
	inWindow := func(due time.Time) bool {
		return due.After(measureStart) && !due.After(deadline)
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for a := range queue {
				if draining.Load() {
					// The window closed with this arrival still queued: it
					// is unserved demand, not work to burn after the bell.
					if inWindow(a.due) {
						backlog.Add(1)
					}
					continue
				}
				err := cfg.Op(w, a.seq)
				lat := time.Since(a.due)
				if lat < 0 {
					lat = 0
				}
				// In-flight ops finishing during the drain still count:
				// they are served demand. Only unstarted queue entries
				// (Backlog) are unserved.
				if inWindow(a.due) {
					if err != nil {
						errs.Add(1)
					} else {
						hist.Record(lat)
						completed.Add(1)
					}
				}
			}
		}(w)
	}

	// Generator: an absolute Poisson schedule. Each due time is fixed when
	// the previous one is drawn, so an oversleeping generator produces a
	// catch-up burst at the scheduled instants rather than a lower rate —
	// and a backed-up queue never slows the arrival process down.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	next := start
	for seq := 0; ; seq++ {
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if inWindow(next) {
			arrivals.Add(1)
		}
		select {
		case queue <- arrival{due: next, seq: seq}:
		default:
			dropped.Add(1)
		}
	}
	draining.Store(true)
	close(queue)
	wg.Wait()

	return OpenLoopResult{
		Offered:   cfg.Rate,
		Workers:   cfg.Workers,
		Arrivals:  int(arrivals.Load()),
		Completed: int(completed.Load()),
		Errors:    int(errs.Load()),
		Dropped:   int(dropped.Load()),
		Backlog:   int(backlog.Load()),
		Achieved:  float64(completed.Load()) / cfg.Duration.Seconds(),
		P50:       hist.Percentile(50),
		P99:       hist.Percentile(99),
		P999:      hist.Percentile(99.9),
		Max:       hist.Max(),
	}
}
