package bench

import (
	"fmt"
	"time"

	sift "github.com/repro/sift"
)

// CapacityConfig sizes a saturation sweep: open-loop runs at doubling
// arrival rates until the system saturates, then a short bisection
// refines the knee — the highest offered rate the deployment sustains
// without queue growth. "Heavy traffic" claims are made at the knee, not
// at whatever rate a closed-loop client population happened to offer.
type CapacityConfig struct {
	// MinRate and MaxRate bound the sweep in ops/sec (defaults 50 and
	// 50000). The sweep doubles from MinRate and stops at the first
	// saturated step or at MaxRate.
	MinRate, MaxRate float64
	// StepDuration is each step's measured window (default 700ms);
	// StepWarmup runs before it (default 200ms).
	StepDuration time.Duration
	StepWarmup   time.Duration
	// Workers and QueueDepth are passed through to OpenLoop.
	Workers    int
	QueueDepth int
	// Threshold is the achieved/offered ratio below which a step counts
	// as saturated (default 0.9); see OpenLoopResult.Saturated.
	Threshold float64
	// Refine is the number of bisection steps between the last
	// sustainable rate and the first saturated one (default 2).
	Refine int
	// Seed feeds the arrival RNGs.
	Seed int64
	// Op executes one request (see OpenLoopConfig.Op).
	Op func(worker, seq int) error
}

func (c CapacityConfig) withDefaults() CapacityConfig {
	if c.MinRate <= 0 {
		c.MinRate = 50
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 50000
	}
	if c.StepDuration <= 0 {
		c.StepDuration = 700 * time.Millisecond
	}
	if c.StepWarmup <= 0 {
		c.StepWarmup = 200 * time.Millisecond
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		c.Threshold = 0.9
	}
	if c.Refine <= 0 {
		c.Refine = 2
	}
	return c
}

// CapacityResult is one sweep: every step in offered-rate order, plus the
// knee point.
type CapacityResult struct {
	Points []OpenLoopResult
	// Knee is the highest sustainable step. If even MinRate saturated,
	// Knee is that first step (its Achieved is the best estimate of the
	// ceiling) and Saturated is true.
	Knee OpenLoopResult
	// KneeOpsPerSec is Knee.Achieved — the headline capacity number.
	KneeOpsPerSec float64
	// Saturated reports that the sweep never found a sustainable rate.
	Saturated bool
}

// CapacitySweep walks offered arrival rates to the throughput knee.
func CapacitySweep(cfg CapacityConfig) CapacityResult {
	cfg = cfg.withDefaults()
	run := func(rate float64) OpenLoopResult {
		return OpenLoop(OpenLoopConfig{
			Rate:       rate,
			Duration:   cfg.StepDuration,
			Warmup:     cfg.StepWarmup,
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			Seed:       cfg.Seed ^ int64(rate),
			Op:         cfg.Op,
		})
	}

	var res CapacityResult
	var good, bad float64
	for rate := cfg.MinRate; rate <= cfg.MaxRate; rate *= 2 {
		p := run(rate)
		res.Points = append(res.Points, p)
		if p.Saturated(cfg.Threshold) {
			bad = rate
			break
		}
		good = rate
		res.Knee = p
	}
	switch {
	case good == 0:
		// Even the lowest rate saturated: report what it achieved.
		res.Knee = res.Points[0]
		res.Saturated = true
	case bad > 0:
		for i := 0; i < cfg.Refine; i++ {
			mid := (good + bad) / 2
			p := run(mid)
			res.Points = append(res.Points, p)
			if p.Saturated(cfg.Threshold) {
				bad = mid
			} else {
				good = mid
				res.Knee = p
			}
		}
	}
	res.KneeOpsPerSec = res.Knee.Achieved
	return res
}

// DeploymentCapacityConfig parameterizes the cluster-backed capacity
// probes below. Zero values take the probe's defaults.
type DeploymentCapacityConfig struct {
	// Sweep shapes the rate walk; its Op field is supplied by the probe.
	Sweep CapacityConfig
	// Keys is the pre-populated working set (default 1024).
	Keys int
	// ValueSize is the put payload (default 992, the paper's value size).
	ValueSize int
	// Seed feeds the cluster and the sweep.
	Seed int64
}

func (c DeploymentCapacityConfig) withDefaults() DeploymentCapacityConfig {
	if c.Keys <= 0 {
		c.Keys = 1024
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 992
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func capacityKey(i int) []byte { return []byte(fmt.Sprintf("user%012d", i)) }

// PlainPutCapacity sweeps put arrival rates against an in-process F=1
// cluster (no simulated latency) and returns the knee.
func PlainPutCapacity(cfg DeploymentCapacityConfig) (CapacityResult, error) {
	cfg = cfg.withDefaults()
	cl, err := sift.NewCluster(sift.Config{
		F: 1, Keys: 4096, MaxValueSize: 992, Seed: cfg.Seed,
	})
	if err != nil {
		return CapacityResult{}, err
	}
	defer cl.Close()
	clients, err := populateClients(cl.Client, cfg)
	if err != nil {
		return CapacityResult{}, err
	}

	val := make([]byte, cfg.ValueSize)
	sweep := cfg.Sweep
	sweep.Seed = cfg.Seed
	sweep.Op = func(worker, seq int) error {
		return clients[worker].Put(capacityKey(seq%cfg.Keys), val)
	}
	return CapacitySweep(sweep), nil
}

// ShardPutCapacity sweeps put arrival rates through the shard router at
// the given group count with linkLatency on every fabric hop (pass the
// same latency for every group count so the comparison is apples to
// apples), and returns the knee. Aggregate knee throughput per group
// count is the honest form of the shard-scaling experiment: every
// configuration is pushed to its own saturation point instead of being
// offered whatever load a group-proportional client population happens
// to generate.
func ShardPutCapacity(groups int, linkLatency time.Duration, cfg DeploymentCapacityConfig) (CapacityResult, error) {
	cfg = cfg.withDefaults()
	if groups < 1 {
		return CapacityResult{}, fmt.Errorf("bench: ShardPutCapacity needs ≥1 group, got %d", groups)
	}
	sc, err := sift.NewShardCluster(sift.ShardConfig{
		Groups: groups,
		Group: sift.Config{
			F: 1, Keys: 4096, MaxValueSize: 992, Seed: cfg.Seed,
		},
	})
	if err != nil {
		return CapacityResult{}, err
	}
	defer sc.Close()
	if linkLatency > 0 {
		sc.SetLinkLatency(linkLatency, 0)
	}

	sweep := cfg.Sweep.withDefaults()
	clients := make([]*sift.ShardClient, maxWorkers(sweep.Workers))
	loaders := make([]putClient, len(clients))
	for i := range clients {
		clients[i] = sc.Client()
		loaders[i] = clients[i]
	}
	val := make([]byte, cfg.ValueSize)
	if err := populateParallel(loaders, cfg); err != nil {
		return CapacityResult{}, err
	}
	sweep.Seed = cfg.Seed
	sweep.Op = func(worker, seq int) error {
		return clients[worker].Put(capacityKey(seq%cfg.Keys), val)
	}
	return CapacitySweep(sweep), nil
}

// WANPutCapacity sweeps put arrival rates against the WAN deployment
// (40ms RTT, one memory node and the client hop across the impaired
// link, adaptive FEC) at the given sustained loss rate.
func WANPutCapacity(lossRate float64, cfg DeploymentCapacityConfig) (CapacityResult, error) {
	cfg = cfg.withDefaults()
	cl, err := sift.NewCluster(sift.Config{
		F: 1, Keys: 4096, MaxValueSize: 992, Seed: cfg.Seed,
		WAN: &sift.WANConfig{
			RTT:       40 * time.Millisecond,
			Jitter:    time.Millisecond,
			LossRate:  lossRate,
			LossBurst: 8,
			Replica:   "mem2",
			ClientWAN: true,
		},
	})
	if err != nil {
		return CapacityResult{}, err
	}
	defer cl.Close()
	clients, err := populateClients(cl.Client, cfg)
	if err != nil {
		return CapacityResult{}, err
	}

	val := make([]byte, cfg.ValueSize)
	sweep := cfg.Sweep
	if sweep.MaxRate <= 0 {
		sweep.MaxRate = 3200 // WAN puts saturate far below the LAN knee
	}
	if sweep.StepWarmup <= 0 {
		sweep.StepWarmup = 500 * time.Millisecond // loss EWMA convergence
	}
	sweep.Seed = cfg.Seed
	sweep.Op = func(worker, seq int) error {
		return clients[worker].Put(capacityKey(seq%cfg.Keys), val)
	}
	return CapacitySweep(sweep), nil
}

func maxWorkers(w int) int {
	if w <= 0 {
		return 64 // keep in sync with OpenLoop's default
	}
	return w
}

// putClient is the slice of the client surface population needs; both
// *sift.Client and *sift.ShardClient satisfy it.
type putClient interface {
	Put(key, value []byte) error
}

// populateClients pre-populates the working set and returns one client
// per worker so no two workers share a handle.
func populateClients(newClient func() *sift.Client, cfg DeploymentCapacityConfig) ([]*sift.Client, error) {
	clients := make([]*sift.Client, maxWorkers(cfg.Sweep.withDefaults().Workers))
	loaders := make([]putClient, len(clients))
	for i := range clients {
		clients[i] = newClient()
		loaders[i] = clients[i]
	}
	if err := populateParallel(loaders, cfg); err != nil {
		return nil, err
	}
	return clients, nil
}

// populateParallel stripes the key population across up to 16 clients —
// sequential population through a 2ms shard link or a 40ms WAN hop would
// otherwise dominate the probe's wall clock.
func populateParallel(clients []putClient, cfg DeploymentCapacityConfig) error {
	loaders := 16
	if loaders > len(clients) {
		loaders = len(clients)
	}
	val := make([]byte, cfg.ValueSize)
	errCh := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		go func(l int) {
			for i := l; i < cfg.Keys; i += loaders {
				if err := clients[l].Put(capacityKey(i), val); err != nil {
					errCh <- fmt.Errorf("bench: populate key %d: %w", i, err)
					return
				}
			}
			errCh <- nil
		}(l)
	}
	var firstErr error
	for l := 0; l < loaders; l++ {
		if err := <-errCh; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
