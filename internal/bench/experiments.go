package bench

import (
	"fmt"
	"time"

	"github.com/repro/sift/internal/metrics"
	"github.com/repro/sift/internal/workload"
)

// FailureTimeline is the output of a failure-injection experiment: a
// 100 ms-interval throughput series plus the offsets of the injected
// events, matching the annotations in Figures 11 and 12.
type FailureTimeline struct {
	Series []metrics.Point
	Events map[string]time.Duration
}

// FailureConfig parameterises the Figure 11/12 experiments.
type FailureConfig struct {
	// EC selects Sift EC instead of Sift.
	EC bool
	// Keys / ValueSize / Clients as in RunConfig (read-heavy, Zipf 0.99 —
	// §6.5 uses "a read-heavy throughput with a skewed workload").
	Keys      int
	ValueSize int
	Clients   int
	// Phase durations: run steady, inject, observe, (restart), observe.
	Steady  time.Duration
	Outage  time.Duration
	Observe time.Duration
	Seed    int64
}

func (c *FailureConfig) withDefaults() FailureConfig {
	out := *c
	if out.Keys <= 0 {
		out.Keys = 4096
	}
	if out.ValueSize <= 0 {
		out.ValueSize = 128
	}
	if out.Clients <= 0 {
		out.Clients = 8
	}
	if out.Steady <= 0 {
		out.Steady = time.Second
	}
	if out.Outage <= 0 {
		out.Outage = time.Second
	}
	if out.Observe <= 0 {
		out.Observe = 2 * time.Second
	}
	if out.Seed == 0 {
		out.Seed = 7
	}
	return out
}

// MemoryNodeFailureTimeline reproduces Figure 11: kill a memory node under
// a read-heavy skewed workload, restart it, and watch throughput dip during
// the recovery copy and return to the pre-failure level.
func MemoryNodeFailureTimeline(cfg FailureConfig) (FailureTimeline, error) {
	c := cfg.withDefaults()
	kind := SystemSift
	if c.EC {
		kind = SystemSiftEC
	}
	sys, err := NewSystem(SystemConfig{Kind: kind, F: 1, Keys: c.Keys, ValueSize: c.ValueSize, Seed: c.Seed})
	if err != nil {
		return FailureTimeline{}, err
	}
	defer sys.Close()
	if err := Populate(sys, c.Keys, c.ValueSize); err != nil {
		return FailureTimeline{}, err
	}
	cluster := SiftCluster(sys)
	events := map[string]time.Duration{}

	done := make(chan RunResult, 1)
	start := time.Now()
	go func() {
		done <- Run(RunConfig{
			System: sys, Mix: workload.ReadHeavy,
			Clients: c.Clients, Keys: c.Keys, ValueSize: c.ValueSize,
			ZipfTheta: 0.99, Timeline: true,
			Duration: c.Steady + c.Outage + c.Observe,
			Seed:     c.Seed,
		})
	}()

	time.Sleep(c.Steady)
	victim := cluster.MemoryNodes()[0]
	events["memory node killed"] = time.Since(start)
	cluster.KillMemoryNode(victim)

	time.Sleep(c.Outage)
	events["memory node restarted"] = time.Since(start)
	cluster.RestartMemoryNode(victim)

	if err := cluster.AwaitMemoryNodeRecovery(1, c.Observe+30*time.Second); err == nil {
		events["memory node joins the system"] = time.Since(start)
	}

	res := <-done
	return FailureTimeline{Series: res.Timeline, Events: events}, nil
}

// CoordinatorFailureTimeline reproduces Figure 12: kill the coordinator
// and watch throughput pause until a backup CPU node completes log
// recovery, then resume (with the paper's post-recovery burst from drained
// buffers and a warm cache).
func CoordinatorFailureTimeline(cfg FailureConfig) (FailureTimeline, error) {
	c := cfg.withDefaults()
	kind := SystemSift
	if c.EC {
		kind = SystemSiftEC
	}
	sys, err := NewSystem(SystemConfig{Kind: kind, F: 1, Keys: c.Keys, ValueSize: c.ValueSize, Seed: c.Seed})
	if err != nil {
		return FailureTimeline{}, err
	}
	defer sys.Close()
	if err := Populate(sys, c.Keys, c.ValueSize); err != nil {
		return FailureTimeline{}, err
	}
	cluster := SiftCluster(sys)
	events := map[string]time.Duration{}

	done := make(chan RunResult, 1)
	start := time.Now()
	go func() {
		done <- Run(RunConfig{
			System: sys, Mix: workload.ReadHeavy,
			Clients: c.Clients, Keys: c.Keys, ValueSize: c.ValueSize,
			ZipfTheta: 0.99, Timeline: true,
			Duration: c.Steady + c.Outage + c.Observe,
			Seed:     c.Seed,
		})
	}()

	time.Sleep(c.Steady)
	killed := cluster.KillCoordinator()
	events["coordinator killed"] = time.Since(start)
	if killed == 0 {
		return FailureTimeline{}, fmt.Errorf("bench: no coordinator to kill")
	}

	if err := cluster.WaitForCoordinator(c.Outage + c.Observe + 30*time.Second); err != nil {
		return FailureTimeline{}, err
	}
	events["new coordinator completes log recovery"] = time.Since(start)

	res := <-done
	return FailureTimeline{Series: res.Timeline, Events: events}, nil
}
