package bench

import (
	"testing"
	"time"

	"github.com/repro/sift/internal/workload"
)

func TestSystemsRoundTrip(t *testing.T) {
	for _, kind := range []SystemKind{SystemSift, SystemSiftEC, SystemRaftR, SystemEPaxos} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := NewSystem(SystemConfig{Kind: kind, Keys: 64, ValueSize: 32})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			if err := sys.Put([]byte("user000000000001"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			v, err := sys.Get([]byte("user000000000001"))
			if err != nil || string(v) != "v" {
				t.Fatalf("got %q err=%v", v, err)
			}
		})
	}
}

func TestPopulateAndRun(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Kind: SystemSift, Keys: 128, ValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := Populate(sys, 128, 32); err != nil {
		t.Fatal(err)
	}
	res := Run(RunConfig{
		System: sys, Mix: workload.ReadHeavy,
		Clients: 4, Duration: 200 * time.Millisecond,
		Keys: 128, ValueSize: 32, ZipfTheta: 0.99,
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.ReadLat.Count == 0 {
		t.Fatal("no read latencies recorded")
	}
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestRunAllMixesAllSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	for _, kind := range []SystemKind{SystemSift, SystemRaftR, SystemEPaxos} {
		sys, err := NewSystem(SystemConfig{Kind: kind, Keys: 128, ValueSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		if err := Populate(sys, 128, 32); err != nil {
			t.Fatal(err)
		}
		for _, mix := range workload.Mixes {
			res := Run(RunConfig{
				System: sys, Mix: mix, Clients: 2,
				Duration: 100 * time.Millisecond, Keys: 128, ValueSize: 32,
			})
			if res.Ops == 0 {
				t.Fatalf("%s/%s: no ops", kind, mix.Name)
			}
		}
		sys.Close()
	}
}

func TestCPULimiterCapsThroughput(t *testing.T) {
	// 1 core × 1ms/op caps at ~1000 ops/s; allow the burst slack.
	l := NewCPULimiter(1, time.Millisecond)
	start := time.Now()
	n := 0
	for time.Since(start) < 300*time.Millisecond {
		release := l.Acquire()
		release()
		n++
	}
	if n > 340 {
		t.Fatalf("1 core × 1ms/op completed %d ops in 300ms (cap ~300)", n)
	}
	// And the cap scales with cores.
	l4 := NewCPULimiter(4, time.Millisecond)
	start = time.Now()
	n4 := 0
	for time.Since(start) < 300*time.Millisecond {
		release := l4.Acquire()
		release()
		n4++
	}
	if n4 < 2*n {
		t.Fatalf("4 cores (%d ops) should far outpace 1 core (%d ops)", n4, n)
	}
	// Unlimited limiter doesn't throttle.
	free := NewCPULimiter(0, time.Millisecond)
	start = time.Now()
	nf := 0
	for time.Since(start) < 50*time.Millisecond {
		release := free.Acquire()
		release()
		nf++
	}
	if nf < 10000 {
		t.Fatalf("unlimited limiter too slow: %d ops", nf)
	}
}

func TestCoresScaleThroughput(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Kind: SystemSift, Keys: 128, ValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	Populate(sys, 128, 32)
	run := func(cores int) float64 {
		return Run(RunConfig{
			System: sys, Mix: workload.ReadHeavy, Clients: 8,
			Duration: 250 * time.Millisecond, Keys: 128, ValueSize: 32,
			Cores: cores, PerOpCPU: 100 * time.Microsecond,
		}).Throughput
	}
	t1 := run(1)
	t4 := run(4)
	if t4 < t1*1.5 {
		t.Fatalf("4 cores (%.0f) should outpace 1 core (%.0f)", t4, t1)
	}
}

func TestMemoryNodeFailureTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("failure timeline in -short mode")
	}
	tl, err := MemoryNodeFailureTimeline(FailureConfig{
		Keys: 256, ValueSize: 32, Clients: 4,
		Steady: 300 * time.Millisecond, Outage: 300 * time.Millisecond, Observe: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Series) < 5 {
		t.Fatalf("timeline too short: %d points", len(tl.Series))
	}
	if _, ok := tl.Events["memory node killed"]; !ok {
		t.Fatal("kill event missing")
	}
	if _, ok := tl.Events["memory node joins the system"]; !ok {
		t.Fatal("rejoin event missing")
	}
}

func TestCoordinatorFailureTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("failure timeline in -short mode")
	}
	tl, err := CoordinatorFailureTimeline(FailureConfig{
		Keys: 256, ValueSize: 32, Clients: 4,
		Steady: 300 * time.Millisecond, Outage: 200 * time.Millisecond, Observe: 700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Series) < 5 {
		t.Fatal("timeline too short")
	}
	killAt, ok := tl.Events["coordinator killed"]
	if !ok {
		t.Fatal("kill event missing")
	}
	recoverAt, ok := tl.Events["new coordinator completes log recovery"]
	if !ok || recoverAt <= killAt {
		t.Fatalf("recovery event wrong: %v after kill %v", recoverAt, killAt)
	}
	// Post-recovery intervals should show throughput again.
	var post float64
	for _, p := range tl.Series {
		if p.T > recoverAt {
			post += p.Ops
		}
	}
	if post == 0 {
		t.Fatal("no throughput after coordinator recovery")
	}
}
