package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	sift "github.com/repro/sift"
	"github.com/repro/sift/internal/epaxos"
	"github.com/repro/sift/internal/metrics"
	"github.com/repro/sift/internal/raftr"
	"github.com/repro/sift/internal/workload"
)

// RunConfig drives one measured workload run (§6.2 methodology: pre-
// populate, warm up, then measure for a fixed duration with concurrent
// closed-loop clients).
type RunConfig struct {
	System    System
	Mix       workload.Mix
	Clients   int
	Duration  time.Duration
	Warmup    time.Duration
	Keys      int
	ValueSize int
	// ZipfTheta > 0 selects the skewed distribution (paper default 0.99).
	ZipfTheta float64
	// Cores, when > 0, bounds server-side CPU concurrency (Figure 7's
	// provisioning model); see CPULimiter.
	Cores int
	// PerOpCPU is the modelled CPU time one operation burns when Cores > 0.
	PerOpCPU time.Duration
	// Timeline enables 100 ms-interval throughput recording (Figures 11/12).
	Timeline bool
	// Seed for deterministic workloads.
	Seed int64
}

func (c *RunConfig) withDefaults() RunConfig {
	out := *c
	if out.Clients <= 0 {
		out.Clients = 8
	}
	if out.Duration <= 0 {
		out.Duration = 2 * time.Second
	}
	if out.Keys <= 0 {
		out.Keys = 4096
	}
	if out.ValueSize <= 0 {
		out.ValueSize = 128
	}
	if out.Seed == 0 {
		out.Seed = 7
	}
	return out
}

// RunResult summarises one run.
type RunResult struct {
	System     string
	Mix        string
	Throughput float64 // ops/sec
	Ops        uint64
	Errors     uint64
	ReadLat    metrics.Snapshot
	WriteLat   metrics.Snapshot
	Timeline   []metrics.Point
	Elapsed    time.Duration
}

// String renders the result as one table row.
func (r RunResult) String() string {
	return fmt.Sprintf("%-8s %-11s %10.0f ops/s  read[p50=%v p95=%v]  write[p50=%v p95=%v]",
		r.System, r.Mix, r.Throughput,
		r.ReadLat.Median, r.ReadLat.P95, r.WriteLat.Median, r.WriteLat.P95)
}

// Populate inserts every key once (§6.2: "Each system is pre-populated
// with all of the keys at the start of each experiment").
func Populate(sys System, keys, valueSize int) error {
	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	const loaders = 8
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			for i := l; i < keys; i += loaders {
				if err := sys.Put(workload.DefaultKey(i), value); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(l)
	}
	wg.Wait()
	return firstErr
}

// transient reports errors that a closed-loop client should ride through
// (leader churn) rather than abort on.
func transient(err error) bool {
	return errors.Is(err, raftr.ErrNotLeader) ||
		errors.Is(err, raftr.ErrTimeout) ||
		errors.Is(err, epaxos.ErrTimeout) ||
		errors.Is(err, sift.ErrNoCoordinator)
}

// Run executes one measured workload run against an already-populated
// system.
func Run(cfg RunConfig) RunResult {
	c := cfg.withDefaults()
	limiter := NewCPULimiter(c.Cores, c.PerOpCPU)

	var (
		stop     atomic.Bool
		warm     atomic.Bool
		ops      atomic.Uint64
		errsN    atomic.Uint64
		readLat  metrics.Histogram
		writeLat metrics.Histogram
		timeline *metrics.Timeline
	)

	var wg sync.WaitGroup
	startMeasure := func() {
		if c.Timeline {
			timeline = metrics.NewTimeline(100 * time.Millisecond)
		}
		warm.Store(true)
	}

	for w := 0; w < c.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Config{
				Mix:       c.Mix,
				Keys:      c.Keys,
				ValueSize: c.ValueSize,
				ZipfTheta: c.ZipfTheta,
				Seed:      c.Seed + int64(w)*131,
			})
			for !stop.Load() {
				op := gen.Next()
				start := time.Now()
				var err error
				if op.Read {
					_, err = getThrough(limiter, c.System, op.Key)
					if errors.Is(err, sift.ErrNotFound) || errors.Is(err, raftr.ErrNotFound) || errors.Is(err, epaxos.ErrNotFound) {
						err = nil // pre-populated stores may still miss under churn
					}
				} else {
					err = putThrough(limiter, c.System, op.Key, op.Value)
				}
				if err != nil {
					errsN.Add(1)
					if !transient(err) {
						return
					}
					continue
				}
				if warm.Load() {
					d := time.Since(start)
					if op.Read {
						readLat.Record(d)
					} else {
						writeLat.Record(d)
					}
					ops.Add(1)
					if tl := timeline; tl != nil {
						tl.Tick()
					}
				}
			}
		}(w)
	}

	time.Sleep(c.Warmup)
	startMeasure()
	measureStart := time.Now()
	time.Sleep(c.Duration)
	elapsed := time.Since(measureStart)
	stop.Store(true)
	wg.Wait()

	res := RunResult{
		System:     c.System.Name(),
		Mix:        c.Mix.Name,
		Ops:        ops.Load(),
		Errors:     errsN.Load(),
		Throughput: metrics.Throughput(ops.Load(), elapsed),
		ReadLat:    readLat.Snapshot(),
		WriteLat:   writeLat.Snapshot(),
		Elapsed:    elapsed,
	}
	if timeline != nil {
		res.Timeline = timeline.Series()
	}
	return res
}

func getThrough(l *CPULimiter, sys System, key []byte) ([]byte, error) {
	release := l.Acquire()
	defer release()
	return sys.Get(key)
}

func putThrough(l *CPULimiter, sys System, key, value []byte) error {
	release := l.Acquire()
	defer release()
	return sys.Put(key, value)
}
