// Package cloudcost reproduces the paper's deployment-cost analysis (§6.4,
// Table 2, Figures 9 and 10): given the published marginal prices for CPU
// cores and memory on AWS and GCP (October 2019) and the
// performance-normalized machine configurations of Table 2, it computes
// the hourly cost of Raft-R and Sift deployments and Sift's cost relative
// to Raft-R, with and without erasure coding and shared backup CPU nodes.
package cloudcost

import "fmt"

// Provider identifies a cloud pricing model.
type Provider int

// Supported providers.
const (
	AWS Provider = iota
	GCP
)

// String returns the provider name.
func (p Provider) String() string {
	if p == GCP {
		return "GCP"
	}
	return "AWS"
}

// Pricing is a provider's marginal resource pricing in $/hour.
type Pricing struct {
	PerCore float64
	PerGB   float64
}

// The paper's derived marginal prices (§6.4.3): "$0.033/core/hr and
// $0.00275/GB/hr for memory for AWS, and $0.033/core/hr and $0.00445/GB/hr
// for memory for GCP."
var prices = map[Provider]Pricing{
	AWS: {PerCore: 0.033, PerGB: 0.00275},
	GCP: {PerCore: 0.033, PerGB: 0.00445},
}

// Prices returns the pricing model for a provider.
func Prices(p Provider) Pricing { return prices[p] }

// Machine is a provisioned instance shape.
type Machine struct {
	Cores int
	MemGB int
}

// Cost returns the machine's hourly cost under a provider's pricing.
func (m Machine) Cost(p Provider) float64 {
	pr := prices[p]
	return float64(m.Cores)*pr.PerCore + float64(m.MemGB)*pr.PerGB
}

// System identifies a deployed system in the cost analysis.
type System int

// Analysed systems.
const (
	RaftR System = iota
	Sift
	SiftEC
)

// String returns the system name.
func (s System) String() string {
	switch s {
	case Sift:
		return "Sift"
	case SiftEC:
		return "Sift EC"
	default:
		return "Raft-R"
	}
}

// MachineConfig is one row of Table 2: the shapes each system needs to hit
// the normalized performance target (380k ops/s read-heavy at F=1, 350k at
// F=2, from Figure 7).
type MachineConfig struct {
	System  System
	F       int
	CPU     Machine // Raft-R node or Sift CPU node
	MemNode Machine // Sift memory node (unused for Raft-R)
}

// Table2 returns the paper's Table 2 machine configurations.
func Table2() []MachineConfig {
	return []MachineConfig{
		{System: RaftR, F: 1, CPU: Machine{8, 64}},
		{System: RaftR, F: 2, CPU: Machine{8, 64}},
		{System: Sift, F: 1, CPU: Machine{10, 32}, MemNode: Machine{1, 64}},
		{System: Sift, F: 2, CPU: Machine{10, 32}, MemNode: Machine{1, 64}},
		{System: SiftEC, F: 1, CPU: Machine{12, 32}, MemNode: Machine{1, 32}},
		{System: SiftEC, F: 2, CPU: Machine{12, 32}, MemNode: Machine{1, 22}},
	}
}

// configFor looks up the Table 2 row for (system, F).
func configFor(s System, f int) (MachineConfig, error) {
	for _, c := range Table2() {
		if c.System == s && c.F == f {
			return c, nil
		}
	}
	return MachineConfig{}, fmt.Errorf("cloudcost: no Table 2 config for %v F=%d", s, f)
}

// Deployment describes a deployment whose cost is being computed.
type Deployment struct {
	System System
	F      int
	// SharedBackups enables the §5.2 backup pool: each group provisions a
	// single CPU node, plus BackupPool nodes amortized over Groups.
	SharedBackups bool
	// Groups and BackupPool size the shared-backup amortization (the
	// paper's Figures 9/10 use 100 groups with a pool of 2, taken from the
	// Figure 8 simulation).
	Groups     int
	BackupPool int
}

// GroupCost returns the per-group hourly cost of the deployment.
func GroupCost(d Deployment, p Provider) (float64, error) {
	cfg, err := configFor(d.System, d.F)
	if err != nil {
		return 0, err
	}
	switch d.System {
	case RaftR:
		// 2F+1 coupled nodes.
		return float64(2*d.F+1) * cfg.CPU.Cost(p), nil
	default:
		memNodes := float64(2*d.F+1) * cfg.MemNode.Cost(p)
		cpuNodes := float64(d.F+1) * cfg.CPU.Cost(p)
		if d.SharedBackups {
			groups := d.Groups
			if groups <= 0 {
				groups = 100
			}
			pool := d.BackupPool
			if pool < 0 {
				pool = 0
			}
			// One dedicated coordinator per group plus the amortized pool:
			// (G + B) CPU nodes over G groups (§5.2).
			cpuNodes = (1 + float64(pool)/float64(groups)) * cfg.CPU.Cost(p)
		}
		return cpuNodes + memNodes, nil
	}
}

// RelativeCost returns the deployment's cost relative to a Raft-R group at
// the same F, in percent (negative = cheaper than Raft-R), matching the
// y-axis of Figures 9 and 10.
func RelativeCost(d Deployment, p Provider) (float64, error) {
	own, err := GroupCost(d, p)
	if err != nil {
		return 0, err
	}
	raft, err := GroupCost(Deployment{System: RaftR, F: d.F}, p)
	if err != nil {
		return 0, err
	}
	return (own/raft - 1) * 100, nil
}

// CostPerMillionOps converts an hourly deployment cost and a sustained
// throughput (ops/sec — use the measured open-loop knee, not a
// closed-loop number at an arbitrary client count) into the paper's
// headline cost-efficiency metric: dollars per million operations.
func CostPerMillionOps(hourlyCost, opsPerSec float64) float64 {
	if opsPerSec <= 0 {
		return 0
	}
	return hourlyCost / (opsPerSec * 3600) * 1e6
}

// DeploymentCostPerMillionOps prices a deployment at the given measured
// throughput on one provider. For multi-group deployments pass the
// aggregate knee throughput and set d.Groups; the hourly cost scales with
// the group count while shared-backup amortization (when enabled) is
// already per-group in GroupCost.
func DeploymentCostPerMillionOps(d Deployment, p Provider, opsPerSec float64) (float64, error) {
	group, err := GroupCost(d, p)
	if err != nil {
		return 0, err
	}
	groups := d.Groups
	if groups <= 0 {
		groups = 1
	}
	return CostPerMillionOps(group*float64(groups), opsPerSec), nil
}

// FigureRow is one bar of Figure 9/10.
type FigureRow struct {
	Label    string
	Provider Provider
	Relative float64 // percent vs Raft-R
}

// FigureSeries computes all bars of Figure 9 (F=1) or Figure 10 (F=2):
// Sift, Sift+shared backups, Sift EC, Sift EC+shared backups on both
// providers, using 100 groups and a pool of 2 as in §6.4.3.
func FigureSeries(f int) ([]FigureRow, error) {
	type variant struct {
		label  string
		system System
		shared bool
	}
	variants := []variant{
		{"Sift", Sift, false},
		{"Sift + Shared Backups", Sift, true},
		{"Sift EC", SiftEC, false},
		{"Sift EC + Shared Backups", SiftEC, true},
	}
	var rows []FigureRow
	for _, p := range []Provider{AWS, GCP} {
		for _, v := range variants {
			rel, err := RelativeCost(Deployment{
				System: v.system, F: f,
				SharedBackups: v.shared, Groups: 100, BackupPool: 2,
			}, p)
			if err != nil {
				return nil, err
			}
			rows = append(rows, FigureRow{Label: v.label, Provider: p, Relative: rel})
		}
	}
	return rows, nil
}
