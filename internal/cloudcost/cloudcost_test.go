package cloudcost

import (
	"math"
	"testing"
)

func TestMachineCost(t *testing.T) {
	m := Machine{Cores: 8, MemGB: 64}
	aws := m.Cost(AWS)
	want := 8*0.033 + 64*0.00275
	if math.Abs(aws-want) > 1e-9 {
		t.Fatalf("AWS cost = %v, want %v", aws, want)
	}
	gcp := m.Cost(GCP)
	if gcp <= aws {
		t.Fatal("GCP memory is pricier; machine cost should exceed AWS")
	}
}

func TestTable2Complete(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("Table 2 rows = %d", len(rows))
	}
	for _, s := range []System{RaftR, Sift, SiftEC} {
		for _, f := range []int{1, 2} {
			if _, err := configFor(s, f); err != nil {
				t.Fatalf("missing config %v F=%d", s, f)
			}
		}
	}
	if _, err := configFor(Sift, 3); err == nil {
		t.Fatal("F=3 config should not exist")
	}
}

func TestRaftGroupCost(t *testing.T) {
	// 3 × (8 cores, 64 GB) on AWS = 3 × $0.44 = $1.32/hr.
	got, err := GroupCost(Deployment{System: RaftR, F: 1}, AWS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.32) > 1e-9 {
		t.Fatalf("Raft-R F=1 AWS = %v, want 1.32", got)
	}
}

func TestSiftSlightlyPricierAloneAtF1(t *testing.T) {
	// §6.4.3: "a single Sift and Sift EC group requires marginally higher
	// costs than a Raft-R group" at F=1.
	for _, p := range []Provider{AWS, GCP} {
		for _, s := range []System{Sift, SiftEC} {
			rel, err := RelativeCost(Deployment{System: s, F: 1}, p)
			if err != nil {
				t.Fatal(err)
			}
			// "Marginally higher" in the paper; computing from Table 2 and
			// the published prices, Sift EC on GCP actually lands slightly
			// below Raft-R (-2.6%), so assert "within a few percent or
			// above" rather than strictly positive.
			if rel < -5 {
				t.Fatalf("%v on %v at F=1 alone should be near or above Raft-R, got %+.1f%%", s, p, rel)
			}
			if rel > 40 {
				t.Fatalf("%v on %v at F=1 is implausibly expensive: %+.1f%%", s, p, rel)
			}
		}
	}
}

func TestHeadlineNumbers(t *testing.T) {
	// The paper's headline claims: EC + shared backups saves ~35% at F=1
	// and ~56% at F=2 (abstract, §6.4.3, §7).
	d := Deployment{System: SiftEC, F: 1, SharedBackups: true, Groups: 100, BackupPool: 2}
	rel, err := RelativeCost(d, AWS)
	if err != nil {
		t.Fatal(err)
	}
	if rel > -30 || rel < -40 {
		t.Fatalf("Sift EC + shared, F=1, AWS: %+.1f%%, want ≈ -35%%", rel)
	}
	d.F = 2
	rel, err = RelativeCost(d, AWS)
	if err != nil {
		t.Fatal(err)
	}
	if rel > -52 || rel < -60 {
		t.Fatalf("Sift EC + shared, F=2, AWS: %+.1f%%, want ≈ -56%%", rel)
	}
}

func TestSavingsImproveWithF(t *testing.T) {
	// §6.4.3: "Sift costs decrease relatively across all configurations
	// when F is increased to 2."
	for _, p := range []Provider{AWS, GCP} {
		for _, s := range []System{Sift, SiftEC} {
			for _, shared := range []bool{false, true} {
				d := Deployment{System: s, SharedBackups: shared, Groups: 100, BackupPool: 2}
				d.F = 1
				r1, err := RelativeCost(d, p)
				if err != nil {
					t.Fatal(err)
				}
				d.F = 2
				r2, err := RelativeCost(d, p)
				if err != nil {
					t.Fatal(err)
				}
				if r2 >= r1 {
					t.Fatalf("%v shared=%v on %v: F=2 (%+.1f%%) not cheaper than F=1 (%+.1f%%)",
						s, shared, p, r2, r1)
				}
			}
		}
	}
}

func TestSharedBackupsAlwaysHelp(t *testing.T) {
	for _, s := range []System{Sift, SiftEC} {
		for _, f := range []int{1, 2} {
			alone, _ := RelativeCost(Deployment{System: s, F: f}, AWS)
			shared, _ := RelativeCost(Deployment{System: s, F: f, SharedBackups: true, Groups: 100, BackupPool: 2}, AWS)
			if shared >= alone {
				t.Fatalf("%v F=%d: shared (%+.1f%%) not cheaper than alone (%+.1f%%)", s, f, shared, alone)
			}
		}
	}
}

func TestFigureSeries(t *testing.T) {
	rows, err := FigureSeries(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 variants × 2 providers
		t.Fatalf("rows = %d", len(rows))
	}
	// Figure 10 (F=2) best case beats Figure 9's (F=1).
	rows2, err := FigureSeries(2)
	if err != nil {
		t.Fatal(err)
	}
	best1, best2 := 0.0, 0.0
	for _, r := range rows {
		if r.Relative < best1 {
			best1 = r.Relative
		}
	}
	for _, r := range rows2 {
		if r.Relative < best2 {
			best2 = r.Relative
		}
	}
	if best2 >= best1 {
		t.Fatalf("best F=2 saving (%.1f%%) should exceed F=1 (%.1f%%)", best2, best1)
	}
	if best2 > -50 {
		t.Fatalf("best F=2 saving only %.1f%%, paper reports ~56%%", best2)
	}
}

func TestStrings(t *testing.T) {
	if AWS.String() != "AWS" || GCP.String() != "GCP" {
		t.Fatal("provider strings")
	}
	if RaftR.String() != "Raft-R" || Sift.String() != "Sift" || SiftEC.String() != "Sift EC" {
		t.Fatal("system strings")
	}
}

func TestCostPerMillionOps(t *testing.T) {
	// $1.32/hr at 10k ops/s: 36M ops/hr → $1.32/36 per Mops.
	got := CostPerMillionOps(1.32, 10000)
	want := 1.32 / 36.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CostPerMillionOps = %v, want %v", got, want)
	}
	// Zero or negative throughput must not divide by zero.
	if CostPerMillionOps(1.32, 0) != 0 || CostPerMillionOps(1.32, -5) != 0 {
		t.Fatal("non-positive throughput should yield 0, not Inf")
	}
}

func TestDeploymentCostPerMillionOps(t *testing.T) {
	// A 4-group Sift deployment at an aggregate knee must cost exactly
	// 4× the single-group hourly rate over the same throughput.
	single, err := GroupCost(Deployment{System: Sift, F: 1}, AWS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DeploymentCostPerMillionOps(Deployment{System: Sift, F: 1, Groups: 4}, AWS, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := CostPerMillionOps(4*single, 1000)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("4-group cost/Mops = %v, want %v", got, want)
	}
	// More throughput at the same cost → cheaper per op.
	cheap, _ := DeploymentCostPerMillionOps(Deployment{System: Sift, F: 1}, AWS, 20000)
	dear, _ := DeploymentCostPerMillionOps(Deployment{System: Sift, F: 1}, AWS, 5000)
	if cheap >= dear {
		t.Fatalf("cost/Mops should fall with throughput: %v vs %v", cheap, dear)
	}
}

func TestDefaultGroupsInSharedCost(t *testing.T) {
	// Groups defaulting to 100 must not divide by zero.
	if _, err := GroupCost(Deployment{System: Sift, F: 1, SharedBackups: true, BackupPool: 2}, AWS); err != nil {
		t.Fatal(err)
	}
}
