package msg

import (
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	n := NewNetwork(nil)
	a := n.Join("a", 16)
	b := n.Join("b", 16)
	if err := a.Send("b", 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-b.Inbox():
		if m.From != "a" || m.Type != 7 || string(m.Payload) != "hello" {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("message never delivered")
	}
}

func TestSendUnknownNode(t *testing.T) {
	n := NewNetwork(nil)
	a := n.Join("a", 16)
	if err := a.Send("ghost", 1, nil); err != ErrUnknownNode {
		t.Fatalf("err = %v", err)
	}
}

func TestSendToDeadNode(t *testing.T) {
	n := NewNetwork(nil)
	a := n.Join("a", 16)
	n.Join("b", 16)
	n.Fabric().Kill("b")
	if err := a.Send("b", 1, nil); err == nil {
		t.Fatal("send to dead node should fail")
	}
	n.Fabric().Restart("b")
	if err := a.Send("b", 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClosedEndpoint(t *testing.T) {
	n := NewNetwork(nil)
	a := n.Join("a", 16)
	b := n.Join("b", 16)
	b.Close()
	if err := a.Send("b", 1, nil); err != ErrUnknownNode {
		t.Fatalf("send to closed endpoint: %v", err)
	}
	a.Close()
	if err := a.Send("b", 1, nil); err != ErrClosed {
		t.Fatalf("send from closed endpoint: %v", err)
	}
	a.Close() // double close is fine
}

func TestFullInboxDrops(t *testing.T) {
	n := NewNetwork(nil)
	a := n.Join("a", 16)
	b := n.Join("b", 2)
	for i := 0; i < 5; i++ {
		if err := a.Send("b", 1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Only the buffer capacity is retained; overflow dropped silently.
	count := 0
	for {
		select {
		case <-b.Inbox():
			count++
		default:
			if count != 2 {
				t.Fatalf("delivered %d, want 2", count)
			}
			return
		}
	}
}

func TestName(t *testing.T) {
	n := NewNetwork(nil)
	a := n.Join("alice", 0) // zero buffer gets the default
	if a.Name() != "alice" {
		t.Fatalf("Name = %q", a.Name())
	}
}
