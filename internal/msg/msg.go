// Package msg is an in-process two-sided messaging substrate: the
// send/recv-verb counterpart to package rdma's one-sided verbs. The Raft-R
// and EPaxos baselines communicate through it, over the same netsim.Fabric
// as Sift's one-sided traffic, so failure injection and latency modelling
// are uniform across systems (the paper's Raft-R "uses RDMA send/recv
// verbs", §6.3.1).
package msg

import (
	"errors"
	"sync"

	"github.com/repro/sift/internal/netsim"
)

// ErrUnknownNode is returned when sending to a node that never joined.
var ErrUnknownNode = errors.New("msg: unknown node")

// ErrClosed is returned when the endpoint has left the network.
var ErrClosed = errors.New("msg: endpoint closed")

// Message is one delivered datagram.
type Message struct {
	From    string
	Type    uint8
	Payload []byte
}

// Network connects named endpoints over a shared fabric.
type Network struct {
	fabric *netsim.Fabric
	mu     sync.RWMutex
	nodes  map[string]*Endpoint
}

// NewNetwork creates a message network over fabric (nil = zero latency).
func NewNetwork(fabric *netsim.Fabric) *Network {
	if fabric == nil {
		fabric = netsim.NewFabric(nil)
	}
	return &Network{fabric: fabric, nodes: make(map[string]*Endpoint)}
}

// Fabric exposes the underlying fabric for failure injection.
func (n *Network) Fabric() *netsim.Fabric { return n.fabric }

// Join registers an endpoint with the given inbox capacity.
func (n *Network) Join(name string, buffer int) *Endpoint {
	if buffer <= 0 {
		buffer = 1024
	}
	ep := &Endpoint{name: name, net: n, inbox: make(chan Message, buffer)}
	n.mu.Lock()
	n.nodes[name] = ep
	n.mu.Unlock()
	return ep
}

// Endpoint is one node's mailbox.
type Endpoint struct {
	name  string
	net   *Network
	inbox chan Message

	mu     sync.Mutex
	closed bool
}

// Name returns the endpoint's network name.
func (e *Endpoint) Name() string { return e.name }

// Inbox returns the delivery channel.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Send transfers a message to the named endpoint. It blocks for the
// simulated network latency and fails if either endpoint is down or
// partitioned. Delivery into a full inbox drops the message (modelling
// receiver overrun on a reliable-datagram QP whose receive queue is empty).
func (e *Endpoint) Send(to string, typ uint8, payload []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	e.net.mu.RLock()
	dst := e.net.nodes[to]
	e.net.mu.RUnlock()
	if dst == nil {
		return ErrUnknownNode
	}
	if err := e.net.fabric.Transfer(e.name, to, len(payload)+16); err != nil {
		return err
	}
	dst.mu.Lock()
	if dst.closed {
		dst.mu.Unlock()
		return ErrUnknownNode
	}
	select {
	case dst.inbox <- Message{From: e.name, Type: typ, Payload: payload}:
	default:
		// Receiver overrun: message lost. Protocols built on this substrate
		// (Raft, EPaxos) tolerate loss by retrying.
	}
	dst.mu.Unlock()
	return nil
}

// Close detaches the endpoint. Messages in flight to it are dropped.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.net.mu.Lock()
	delete(e.net.nodes, e.name)
	e.net.mu.Unlock()
}
