package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBackupRetry marks a backup-side read anomaly: a torn or unverifiable
// block image, a broken chain, or a failed remote read. It never means the
// key is absent — the caller must retry the lookup at the coordinator.
var ErrBackupRetry = errors.New("kv: backup read must retry at coordinator")

// BlockSource supplies main-space reads for a ChainReader. In production it
// is a repmem.View restricted to the published membership mask.
type BlockSource interface {
	Read(addr uint64, buf []byte) error
}

// ChainReader performs lock-free hash-table lookups against replicated
// memory for a backup CPU node. It shares the coordinator's layout math
// (Config + EC alignment) but holds none of its state: every lookup walks
// the on-memory index entry and chain blocks directly.
//
// Concurrency with the coordinator makes two anomalies possible, and both
// are converted to ErrBackupRetry rather than answers:
//
//   - A torn block: under erasure coding the chunks of a block may be read
//     while a rewrite is in flight, mixing generations. The per-block CRC
//     (see blockCodec) rejects such images.
//   - A wandering chain: a block freed by a delete can be reallocated into
//     a different bucket's chain while we hold its old "next" pointer. The
//     walk would continue in the wrong chain and could conclude the key is
//     absent when it exists. For this reason a ChainReader NEVER reports
//     ErrNotFound as authoritative — a missing key is also ErrBackupRetry,
//     and only found values are served. (A found value is sound: its block
//     carried the key with used=1 and a valid CRC, so the value was current
//     at some instant during the walk — see DESIGN.md §13 for the
//     linearizability argument.)
type ChainReader struct {
	cfg        Config
	buckets    uint64
	stride     int
	blocksBase uint64
	capacity   uint64
	codec      blockCodec
	src        BlockSource
}

// NewChainReader builds a reader over src. cfg and align must match the
// coordinator's store configuration (align is the repmem EC block size, or
// 1 without EC) or every lookup will read from the wrong addresses.
func NewChainReader(cfg Config, align int, src BlockSource) (*ChainReader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	return &ChainReader{
		cfg:        c,
		buckets:    uint64(c.Buckets()),
		stride:     c.BlockStride(align),
		blocksBase: c.BlocksBase(align),
		capacity:   uint64(c.Capacity),
		codec:      c.codec(),
		src:        src,
	}, nil
}

// Get looks up key. It returns the value only when a verified chain block
// holds it; every other outcome — including "not found" — is ErrBackupRetry
// (wrapped with the cause) and must be retried at the coordinator.
func (r *ChainReader) Get(key []byte) ([]byte, error) {
	if len(key) == 0 || len(key) > r.cfg.MaxKey {
		return nil, fmt.Errorf("%w: key %d B (max %d)", ErrTooLarge, len(key), r.cfg.MaxKey)
	}
	h := hashKey(key)
	bucket := h % r.buckets

	var entry [8]byte
	if err := r.src.Read(bucket*8, entry[:]); err != nil {
		return nil, fmt.Errorf("%w: index read: %v", ErrBackupRetry, err)
	}
	next := binary.LittleEndian.Uint64(entry[:])

	buf := make([]byte, r.stride)
	// The hop bound caps a cyclic chain (possible only mid-mutation).
	for hops := uint64(0); next != 0; hops++ {
		if hops >= r.capacity {
			return nil, fmt.Errorf("%w: chain exceeds capacity", ErrBackupRetry)
		}
		idx := next - 1
		if idx >= r.capacity {
			return nil, fmt.Errorf("%w: block index %d out of range", ErrBackupRetry, idx)
		}
		addr := r.blocksBase + idx*uint64(r.stride)
		if err := r.src.Read(addr, buf); err != nil {
			return nil, fmt.Errorf("%w: block read: %v", ErrBackupRetry, err)
		}
		b, err := r.codec.decodeVerified(buf)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBackupRetry, err)
		}
		if !b.used {
			// A linked-but-unused block means we read mid-delete or walked
			// into freed space; the chain beyond it is untrustworthy.
			return nil, fmt.Errorf("%w: unused block in chain", ErrBackupRetry)
		}
		if bytes.Equal(b.key, key) {
			return append([]byte(nil), b.value...), nil
		}
		next = b.next
	}
	return nil, fmt.Errorf("%w: key not in chain", ErrBackupRetry)
}

// hashKey mirrors Store.bucketOf's FNV-1a hash without requiring a Store.
func hashKey(key []byte) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
