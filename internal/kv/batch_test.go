package kv

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPutBatchRoundTrip(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	batch := []Pair{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
		{Key: []byte("c"), Value: []byte("3")},
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, p := range batch {
		v, err := s.Get(p.Key)
		if err != nil || string(v) != string(p.Value) {
			t.Fatalf("%s = %q err=%v", p.Key, v, err)
		}
	}
	// A batch uses exactly one log index: the store accepts WALSlots more
	// batches before the window logic would block (smoke check via stats).
	if s.Stats().Puts != 3 {
		t.Fatalf("puts = %d", s.Stats().Puts)
	}
}

func TestPutBatchWithDeletes(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	s.Put([]byte("gone"), []byte("soon"))
	if err := s.PutBatch([]Pair{
		{Key: []byte("kept"), Value: []byte("v")},
		{Key: []byte("gone"), Value: nil}, // nil = delete
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("gone")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted-in-batch key present: %v", err)
	}
	if v, err := s.Get([]byte("kept")); err != nil || string(v) != "v" {
		t.Fatalf("kept = %q err=%v", v, err)
	}
}

func TestPutBatchEmpty(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	if err := s.PutBatch(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchTooLarge(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	// Many max-size records cannot fit one slot.
	var pairs []Pair
	for i := 0; i < 10; i++ {
		pairs = append(pairs, Pair{
			Key:   []byte(fmt.Sprintf("key-%011d", i)), // 15 B ≤ MaxKey 16
			Value: make([]byte, cfg.MaxValue),
		})
	}
	if err := s.PutBatch(pairs); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// Bad key sizes rejected up front.
	if err := s.PutBatch([]Pair{{Key: nil, Value: []byte("v")}}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
	if err := s.PutBatch([]Pair{{Key: []byte("k"), Value: make([]byte, cfg.MaxValue+1)}}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
}

func TestPutBatchAtomicAcrossRecovery(t *testing.T) {
	// Batches committed by a dead coordinator replay wholesale on the next
	// one: all-or-nothing.
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s1 := newStore(t, e, "cpu1", cfg)
	for i := 0; i < 10; i++ {
		if err := s1.PutBatch([]Pair{
			{Key: []byte(fmt.Sprintf("x%d", i)), Value: []byte(fmt.Sprintf("xv%d", i))},
			{Key: []byte(fmt.Sprintf("y%d", i)), Value: []byte(fmt.Sprintf("yv%d", i))},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// s1 "dies"; a new store recovers from the log.
	s2 := newStore(t, e, "cpu2", cfg)
	for i := 0; i < 10; i++ {
		vx, errx := s2.Get([]byte(fmt.Sprintf("x%d", i)))
		vy, erry := s2.Get([]byte(fmt.Sprintf("y%d", i)))
		if errx != nil || erry != nil {
			t.Fatalf("batch %d split across recovery: x=%v y=%v", i, errx, erry)
		}
		if string(vx) != fmt.Sprintf("xv%d", i) || string(vy) != fmt.Sprintf("yv%d", i) {
			t.Fatalf("batch %d values: %q %q", i, vx, vy)
		}
	}
}

func TestPutBatchSameKeyLastWins(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	if err := s.PutBatch([]Pair{
		{Key: []byte("dup"), Value: []byte("first")},
		{Key: []byte("dup"), Value: []byte("second")},
	}); err != nil {
		t.Fatal(err)
	}
	s.drain(t)
	v, err := s.Get([]byte("dup"))
	if err != nil || string(v) != "second" {
		t.Fatalf("dup = %q err=%v", v, err)
	}
}

func TestPutBatchNoDeadlockUnderPressure(t *testing.T) {
	// Regression: apply tasks are enqueued under the sequence lock; with a
	// bounded shard queue, concurrent batches against a tiny log could
	// deadlock the committer against its own applier. Hammer that shape.
	cfg := testCfg()
	cfg.WALSlots = 8
	cfg.ApplyShards = 1 // everything lands on one queue
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 30; i++ {
				err := s.PutBatch([]Pair{
					{Key: []byte(fmt.Sprintf("w%d-a", w)), Value: []byte{byte(i)}},
					{Key: []byte(fmt.Sprintf("w%d-b", w)), Value: []byte{byte(i)}},
					{Key: []byte(fmt.Sprintf("w%d-c", w)), Value: []byte{byte(i)}},
				})
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	timeout := time.After(20 * time.Second)
	for w := 0; w < 4; w++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("deadlock: batch writers never finished")
		}
	}
	s.drain(t)
}
