package kv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/repro/sift/internal/memnode"
	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/repmem"
)

// testCfg is a small store configuration for unit tests.
func testCfg() Config {
	return Config{
		Capacity:      256,
		MaxKey:        16,
		MaxValue:      64,
		LoadFactor:    0.5,
		CacheFraction: 0.5,
		WALSlots:      32,
		ApplyShards:   2,
	}
}

type env struct {
	nw    *rdma.Network
	names []string
	mcfg  repmem.Config
}

// newKVEnv builds a 3-memory-node group sized for cfg, with optional EC.
func newKVEnv(t *testing.T, cfg Config, ec bool) *env {
	t.Helper()
	align := 1
	mcfg := repmem.Config{
		WALSlots:    64,
		WALSlotSize: 512,
	}
	if ec {
		mcfg.ECData = 2
		mcfg.ECParity = 1
		mcfg.ECBlockSize = ecAlign(cfg.BlockSize(), 2)
		align = mcfg.ECBlockSize
	}
	mcfg.MemSize = cfg.RequiredMemSize(align)
	if ec && mcfg.MemSize%mcfg.ECBlockSize != 0 {
		mcfg.MemSize = (mcfg.MemSize/mcfg.ECBlockSize + 1) * mcfg.ECBlockSize
	}
	mcfg.DirectSize = cfg.RequiredDirectSize()

	nw := rdma.NewNetwork(nil)
	names := []string{"m0", "m1", "m2"}
	for _, n := range names {
		node, err := memnode.New(n, mcfg.Layout())
		if err != nil {
			t.Fatal(err)
		}
		nw.AddNode(node)
	}
	mcfg.MemoryNodes = names
	return &env{nw: nw, names: names, mcfg: mcfg}
}

// ecAlign rounds n up to a multiple of k.
func ecAlign(n, k int) int { return (n + k - 1) / k * k }

// memory dials a fresh replicated-memory handle as CPU node cpu.
func (e *env) memory(t *testing.T, cpu string) *repmem.Memory {
	t.Helper()
	cfg := e.mcfg
	cfg.Dial = func(node string) (rdma.Verbs, error) {
		return e.nw.Dial(cpu, node, rdma.DialOpts{Exclusive: []rdma.RegionID{memnode.ReplRegionID}})
	}
	m, err := repmem.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	return m
}

func newStore(t *testing.T, e *env, cpu string, cfg Config) *Store {
	t.Helper()
	mem := e.memory(t, cpu)
	s, err := New(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		mem.Close()
	})
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	if err := s.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "world" {
		t.Fatalf("got %q", v)
	}
}

func TestGetMissing(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	if _, err := s.Get([]byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutOverwrite(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	for i := 0; i < 5; i++ {
		if err := s.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.Get([]byte("k"))
	if err != nil || string(v) != "v4" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestDelete(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	s.Put([]byte("a"), []byte("1"))
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key still present: %v", err)
	}
	// Deleting a missing key is fine.
	if err := s.Delete([]byte("never")); err != nil {
		t.Fatal(err)
	}
	// Re-insert after delete.
	if err := s.Put([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("a"))
	if err != nil || string(v) != "2" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestSizeLimits(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	if err := s.Put(bytes.Repeat([]byte("k"), 17), []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized key: %v", err)
	}
	if err := s.Put([]byte("k"), bytes.Repeat([]byte("v"), 65)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	if err := s.Put(nil, []byte("v")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("empty key: %v", err)
	}
	// Exactly max sizes are fine.
	if err := s.Put(bytes.Repeat([]byte("k"), 16), bytes.Repeat([]byte("v"), 64)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreFull(t *testing.T) {
	cfg := testCfg()
	cfg.Capacity = 8
	cfg.WALSlots = 64
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	for i := 0; i < 8; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity reached: the 9th distinct key's apply fails internally, but
	// the commit succeeds (log-then-apply). Reads through the cache still
	// work; a full store is an operational limit, not a safety issue.
	// Verify allocator refuses directly:
	s.drain(t)
	if _, err := s.allocBlock(); !errors.Is(err, ErrFull) {
		t.Fatalf("alloc on full store: %v", err)
	}
	// Overwrites of existing keys still work.
	if err := s.Put([]byte("key3"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
}

// drain waits for all background applies.
func (s *Store) drain(t *testing.T) {
	t.Helper()
	s.seqMu.Lock()
	for s.watermark+1 < s.nextIdx {
		s.seqCond.Wait()
	}
	s.seqMu.Unlock()
}

func TestManyKeysChaining(t *testing.T) {
	// Force heavy chaining with a tiny bucket count.
	cfg := testCfg()
	cfg.Capacity = 128
	cfg.LoadFactor = 16 // 8 buckets for 128 keys
	cfg.WALSlots = 256
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	want := map[string]string{}
	for i := 0; i < 100; i++ {
		k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%03d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Delete a third of them.
	for i := 0; i < 100; i += 3 {
		k := fmt.Sprintf("key-%03d", i)
		if err := s.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	s.drain(t)
	for k, v := range want {
		got, err := s.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("get %s = %q, want %q", k, got, v)
		}
	}
	for i := 0; i < 100; i += 3 {
		if _, err := s.Get([]byte(fmt.Sprintf("key-%03d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d present", i)
		}
	}
}

func TestCacheMissReadsFromMemory(t *testing.T) {
	cfg := testCfg()
	cfg.CacheFraction = 0 // no cache beyond pinned entries
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	s.Put([]byte("k1"), []byte("v1"))
	s.drain(t)
	// With zero cache capacity the applied entry is evicted after unpin.
	v, err := s.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("got %q err=%v", v, err)
	}
	if s.Stats().ChainReads == 0 {
		t.Fatal("expected a remote chain read")
	}
}

func TestCacheHitAvoidsRemoteRead(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	s.Put([]byte("k1"), []byte("v1"))
	before := s.Stats().ChainReads
	for i := 0; i < 10; i++ {
		if _, err := s.Get([]byte("k1")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().ChainReads - before; got != 0 {
		t.Fatalf("cache hits issued %d chain reads", got)
	}
	if s.Stats().CacheHits < 10 {
		t.Fatalf("cache hits = %d", s.Stats().CacheHits)
	}
}

func TestConcurrentClients(t *testing.T) {
	cfg := testCfg()
	cfg.Capacity = 512
	cfg.WALSlots = 128
	cfg.LoadFactor = 0.5
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, rng.Intn(20)))
				switch rng.Intn(3) {
				case 0, 1:
					if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 2:
					if _, err := s.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("get: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPerKeyOrderingUnderConcurrency(t *testing.T) {
	// Hammer one key from many goroutines; after drain, the stored value
	// must equal the last committed put (commit order = log index order).
	cfg := testCfg()
	cfg.WALSlots = 256
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	const writers = 8
	var mu sync.Mutex
	lastCommitted := ""
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v := fmt.Sprintf("w%d-%d", w, i)
				mu.Lock() // serialize commits so "last" is well-defined
				if err := s.Put([]byte("contested"), []byte(v)); err != nil {
					mu.Unlock()
					t.Errorf("put: %v", err)
					return
				}
				lastCommitted = v
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	s.drain(t)

	// Read through memory (bypass cache) to check the applied state.
	bucket := s.bucketOf([]byte("contested"))
	blk, _, _, err := s.findInChain(bucket, []byte("contested"))
	if err != nil || blk == nil {
		t.Fatalf("chain walk: blk=%v err=%v", blk, err)
	}
	if string(blk.value) != lastCommitted {
		t.Fatalf("applied %q, last committed %q", blk.value, lastCommitted)
	}
}

func TestLogWrapAroundKV(t *testing.T) {
	cfg := testCfg()
	cfg.WALSlots = 8
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	for i := 0; i < 50; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i%10)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	v, err := s.Get([]byte("k9"))
	if err != nil || string(v) != "v49" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestKVProcessRecovery(t *testing.T) {
	// Simulate the key-value process dying and restarting on a new CPU node:
	// a second Store is built over a fresh repmem connection and must see
	// every committed operation.
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s1 := newStore(t, e, "cpu1", cfg)

	want := map[string]string{}
	for i := 0; i < 40; i++ {
		k, v := fmt.Sprintf("key%d", i), fmt.Sprintf("val%d", i)
		if err := s1.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for i := 0; i < 40; i += 4 {
		k := fmt.Sprintf("key%d", i)
		if err := s1.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
		delete(want, k)
	}
	// s1 "dies" here: no Close, no drain — applies may be mid-flight. The
	// new store's repmem takeover fences s1's memory layer.

	s2 := newStore(t, e, "cpu2", cfg)
	for k, v := range want {
		got, err := s2.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %s after recovery: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("get %s = %q, want %q", k, got, v)
		}
	}
	for i := 0; i < 40; i += 4 {
		if _, err := s2.Get([]byte(fmt.Sprintf("key%d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key%d resurrected: %v", i, err)
		}
	}
	// The recovered store keeps working.
	if err := s2.Put([]byte("post"), []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	v, err := s2.Get([]byte("post"))
	if err != nil || string(v) != "recovery" {
		t.Fatalf("got %q err=%v", v, err)
	}
}

func TestKVRecoveryWarmCache(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s1 := newStore(t, e, "cpu1", cfg)
	for i := 0; i < 10; i++ {
		s1.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	s2 := newStore(t, e, "cpu2", cfg)
	if s2.cache.len() == 0 {
		t.Fatal("cache not warmed during recovery")
	}
	before := s2.Stats().ChainReads
	if _, err := s2.Get([]byte("k5")); err != nil {
		t.Fatal(err)
	}
	if s2.Stats().ChainReads != before {
		t.Fatal("warm-cache get went remote")
	}
}

func TestKVWithErasureCoding(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, true)
	s := newStore(t, e, "c", cfg)
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("eck%d", i), fmt.Sprintf("ecv%d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	s.drain(t)
	// Kill a data-chunk node: gets must decode.
	e.nw.Fabric().Kill(e.names[0])
	for k, v := range want {
		var got []byte
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if got, err = s.Get([]byte(k)); err == nil {
				break
			}
		}
		if err != nil || string(got) != v {
			t.Fatalf("get %s = %q err=%v", k, got, err)
		}
	}
}

func TestKVQuickMatchesModel(t *testing.T) {
	cfg := testCfg()
	cfg.Capacity = 64
	cfg.WALSlots = 64
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("qk%d", i)
	}
	for op := 0; op < 600; op++ {
		k := keys[rng.Intn(len(keys))]
		switch rng.Intn(4) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", op)
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 2:
			if err := s.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 3:
			got, err := s.Get([]byte(k))
			want, exists := model[k]
			if exists {
				if err != nil || string(got) != want {
					t.Fatalf("op %d: get %s = %q/%v, want %q", op, k, got, err, want)
				}
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: get %s = %q/%v, want not-found", op, k, got, err)
			}
		}
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Buckets() != 8_000_000 {
		t.Fatalf("Buckets = %d", cfg.Buckets())
	}
	if cfg.BlockSize() != 17+32+992 {
		t.Fatalf("BlockSize = %d", cfg.BlockSize())
	}
	if cfg.WALSlotSize()%64 != 0 {
		t.Fatal("slot size not aligned")
	}
	if cfg.BlocksBase(4096)%4096 != 0 {
		t.Fatal("BlocksBase not aligned")
	}
	bad := cfg
	bad.Capacity = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid config accepted")
	}
}
