package kv

import (
	"encoding/binary"
	"fmt"

	"github.com/repro/sift/internal/wal"
)

// recover rebuilds the coordinator's soft state after a key-value process
// failure (paper §4.3): it loads the index table and bitmap from replicated
// memory, merges the per-node copies of the circular KV log, replays the
// merged log in index order, and warms the cache with the replayed values.
// On a fresh deployment everything is zeroed and recovery is a no-op.
//
// Replay is idempotent and, because every entry in the log's active window
// is still present, replaying the full window in order converges to exactly
// the state the failed process had committed.
func (s *Store) recover() error {
	// Index table.
	idxBuf := make([]byte, s.cfg.IndexBytes())
	if err := s.mem.Read(0, idxBuf); err != nil {
		return fmt.Errorf("kv recovery: index table: %w", err)
	}
	for b := range s.index {
		s.index[b] = binary.LittleEndian.Uint64(idxBuf[b*8:])
	}
	// Bitmap.
	if err := s.mem.Read(s.bitmapBase, s.bitmap); err != nil {
		return fmt.Errorf("kv recovery: bitmap: %w", err)
	}

	// Merge the per-node copies of the KV log. An entry committed by the old
	// process was durable on a majority, so it appears in at least one copy.
	areas, err := s.mem.DirectReadAll(0, s.kvGeo.TotalSize())
	if err != nil {
		return fmt.Errorf("kv recovery: log read: %w", err)
	}
	entries := wal.Reconcile(s.kvGeo, areas)

	// Make the nodes' logs consistent with the merged view so a subsequent
	// recovery (before this window fully turns over) sees the same log.
	desired := make(map[int][]byte, len(entries))
	for _, e := range entries {
		slot := make([]byte, s.kvGeo.SlotSize)
		if _, err := e.Encode(slot); err != nil {
			return fmt.Errorf("kv recovery: re-encode: %w", err)
		}
		desired[int(e.Index%uint64(s.kvGeo.Slots))] = slot
	}
	zeros := make([]byte, s.kvGeo.SlotSize)
	for slot := 0; slot < s.kvGeo.Slots; slot++ {
		want, ok := desired[slot]
		if !ok {
			want = zeros
		}
		differs := false
		for _, area := range areas {
			if area == nil {
				continue
			}
			have := area[slot*s.kvGeo.SlotSize : (slot+1)*s.kvGeo.SlotSize]
			if !bytesEqual(have, want) {
				differs = true
				break
			}
		}
		if differs {
			if err := s.mem.DirectWrite(uint64(slot*s.kvGeo.SlotSize), want); err != nil {
				return fmt.Errorf("kv recovery: log rewrite: %w", err)
			}
		}
	}

	// Replay in index order, populating the cache as we go (§6.5: "while the
	// log is being replayed, the cache is populated in parallel").
	var maxIdx uint64
	for _, e := range entries {
		recs, err := recordsOf(e)
		if err != nil {
			continue // unreadable entry: skip (was never decodable)
		}
		if len(recs) > 0 && recs[0].op == opBatchToken {
			tok := string(recs[0].key)
			if prev, dup := s.dedup[tok]; dup && prev != e.Index {
				// A retried idempotent batch double-committed (the first
				// attempt was durable but its ack was lost). The lower-index
				// entry already applied; re-applying here could clobber
				// writes that legitimately interleaved between the two
				// commits. Skip, but still resolve the index.
				s.stats.batchDedupHits.Add(1)
				if e.Index > maxIdx {
					maxIdx = e.Index
				}
				continue
			}
			// Register so post-recovery retries of this batch dedup against
			// the replayed commit. Replay runs before the appliers start, so
			// the map is ours alone — no lock needed.
			s.dedup[tok] = e.Index
		}
		for _, rec := range recs {
			if err := s.applyRecord(rec); err != nil {
				return fmt.Errorf("kv recovery: replay %d: %w", e.Index, err)
			}
			switch rec.op {
			case opBatchToken:
				// Log metadata, not a key: stays out of the cache.
			case opDelete:
				s.cache.put(string(rec.key), nil, false, e.Index)
			default:
				s.cache.put(string(rec.key), rec.value, false, e.Index)
			}
		}
		if e.Index > maxIdx {
			maxIdx = e.Index
		}
	}
	if maxIdx+1 > s.nextIdx {
		s.nextIdx = maxIdx + 1
	}
	s.watermark = s.nextIdx - 1
	return nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
