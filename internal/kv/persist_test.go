package kv

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// recordingSink captures persistence callbacks.
type recordingSink struct {
	mu   sync.Mutex
	data map[string]string
	dels int
}

func newRecordingSink() *recordingSink {
	return &recordingSink{data: make(map[string]string)}
}

func (r *recordingSink) Put(key, value []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data[string(key)] = string(value)
	return nil
}

func (r *recordingSink) Delete(key []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.data, string(key))
	r.dels++
	return nil
}

func (r *recordingSink) get(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.data[key]
	return v, ok
}

func TestPersistenceHookReceivesCommittedUpdates(t *testing.T) {
	cfg := testCfg()
	sink := newRecordingSink()
	cfg.Persist = sink
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("pk%d", i)), []byte(fmt.Sprintf("pv%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete([]byte("pk3")); err != nil {
		t.Fatal(err)
	}
	s.drain(t)

	// The background appliers persist synchronously after applying, so by
	// drain time everything is in the sink.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := sink.get("pk19"); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("pk%d", i)
		v, ok := sink.get(key)
		if i == 3 {
			if ok {
				t.Fatalf("deleted key %s persisted", key)
			}
			continue
		}
		if !ok || v != fmt.Sprintf("pv%d", i) {
			t.Fatalf("%s = %q ok=%v", key, v, ok)
		}
	}
	sink.mu.Lock()
	dels := sink.dels
	sink.mu.Unlock()
	if dels != 1 {
		t.Fatalf("deletes persisted = %d", dels)
	}
}

func TestPersistenceOrderingPerKey(t *testing.T) {
	// Repeated puts to one key must leave the sink with the final value
	// (per-key commit order is preserved through the shard queues).
	cfg := testCfg()
	sink := newRecordingSink()
	cfg.Persist = sink
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	for i := 0; i < 50; i++ {
		if err := s.Put([]byte("seq"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.drain(t)
	if v, ok := sink.get("seq"); !ok || v != "v49" {
		t.Fatalf("sink has %q ok=%v, want v49", v, ok)
	}
}
