package kv

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/repro/sift/internal/wal"
)

// Log record opcodes.
const (
	opPut    = 1
	opDelete = 2
	// opBatchToken tags an idempotent batch: it is always the first record
	// of its entry, its key is the client-chosen batch token, and its apply
	// is a no-op. Recovery replay and PutBatchIdem use the token to detect a
	// retried batch that already committed (possibly under a previous
	// coordinator) and skip the duplicate apply.
	opBatchToken = 3
)

// walEntryOverhead is the wal.Entry framing around one record (entry header
// plus one write header).
const walEntryOverhead = 18 + 12

// recordOverhead is the record's own header: op(1) keyLen(2) valLen(2).
const recordOverhead = 5

// record is one KV log record.
type record struct {
	op    byte
	key   []byte
	value []byte
}

// encodeRecord serialises a record for embedding in a wal.Entry write.
func encodeRecord(r record) []byte {
	buf := make([]byte, recordOverhead+len(r.key)+len(r.value))
	buf[0] = r.op
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(r.key)))
	binary.LittleEndian.PutUint16(buf[3:5], uint16(len(r.value)))
	copy(buf[recordOverhead:], r.key)
	copy(buf[recordOverhead+len(r.key):], r.value)
	return buf
}

// decodeRecord parses a record.
func decodeRecord(buf []byte) (record, error) {
	if len(buf) < recordOverhead {
		return record{}, fmt.Errorf("kv: short record (%d bytes)", len(buf))
	}
	op := buf[0]
	kl := int(binary.LittleEndian.Uint16(buf[1:3]))
	vl := int(binary.LittleEndian.Uint16(buf[3:5]))
	if recordOverhead+kl+vl > len(buf) {
		return record{}, fmt.Errorf("kv: truncated record")
	}
	return record{
		op:    op,
		key:   buf[recordOverhead : recordOverhead+kl],
		value: buf[recordOverhead+kl : recordOverhead+kl+vl],
	}, nil
}

// entryFor wraps a record in a wal.Entry for the KV log. The wal package
// supplies the index, CRC, and circular-slot machinery.
func entryFor(idx uint64, r record) wal.Entry {
	return wal.Entry{Index: idx, Writes: []wal.Write{{Addr: 0, Data: encodeRecord(r)}}}
}

// batchEntryFor packs several records into one entry (PutBatch): one
// wal.Write per record, all under a single log index.
func batchEntryFor(idx uint64, recs []record) wal.Entry {
	ws := make([]wal.Write, len(recs))
	for i, r := range recs {
		ws[i] = wal.Write{Addr: 0, Data: encodeRecord(r)}
	}
	return wal.Entry{Index: idx, Writes: ws}
}

// recordsOf extracts every record from a KV log entry (single puts carry
// one; batches carry several).
func recordsOf(e wal.Entry) ([]record, error) {
	if len(e.Writes) == 0 {
		return nil, fmt.Errorf("kv: entry %d has no writes", e.Index)
	}
	recs := make([]record, 0, len(e.Writes))
	for _, w := range e.Writes {
		r, err := decodeRecord(w.Data)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// Data block layout: used(1) keyLen(2) valLen(2) next(8) crc(4) key[MaxKey]
// value[MaxValue]. next holds blockIdx+1; 0 terminates the chain. crc is a
// CRC-32C over the whole block image with the crc field itself zeroed; it
// is what lets a backup CPU node, reading blocks without the coordinator's
// locks, reject a torn image (e.g. an erasure-coded block whose chunks it
// fetched from nodes straddling an in-flight update) instead of decoding
// garbage. The coordinator's own reads are serialized by its locks and
// skip verification.
const blockHeaderSize = 17

// blockCRCOffset locates the crc field within the header.
const blockCRCOffset = 13

// blockCRCTable is the Castagnoli table (hardware-accelerated on amd64/arm64).
var blockCRCTable = crc32.MakeTable(crc32.Castagnoli)

// block is a decoded data block.
type block struct {
	used  bool
	key   []byte
	value []byte
	next  uint64 // blockIdx+1; 0 = end of chain
}

// blockCodec serialises data blocks. It is shared by the coordinator's
// Store and by backup-side chain readers, which have no Store.
type blockCodec struct {
	maxKey, maxValue, blockSize int
}

func (c Config) codec() blockCodec {
	return blockCodec{maxKey: c.MaxKey, maxValue: c.MaxValue, blockSize: c.BlockSize()}
}

// crcOf computes the block CRC of buf with the crc field treated as zero.
func (c blockCodec) crcOf(buf []byte) uint32 {
	var zero [4]byte
	crc := crc32.Update(0, blockCRCTable, buf[:blockCRCOffset])
	crc = crc32.Update(crc, blockCRCTable, zero[:])
	return crc32.Update(crc, blockCRCTable, buf[blockHeaderSize:c.blockSize])
}

// encode writes a block image into buf (length ≥ blockSize).
func (c blockCodec) encode(buf []byte, b block) {
	for i := range buf[:blockHeaderSize] {
		buf[i] = 0
	}
	if b.used {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(b.key)))
	binary.LittleEndian.PutUint16(buf[3:5], uint16(len(b.value)))
	binary.LittleEndian.PutUint64(buf[5:13], b.next)
	copy(buf[blockHeaderSize:], b.key)
	for i := blockHeaderSize + len(b.key); i < blockHeaderSize+c.maxKey; i++ {
		buf[i] = 0
	}
	copy(buf[blockHeaderSize+c.maxKey:], b.value)
	binary.LittleEndian.PutUint32(buf[blockCRCOffset:blockHeaderSize], c.crcOf(buf))
}

// decode parses a block image without CRC verification.
func (c blockCodec) decode(buf []byte) (block, error) {
	if len(buf) < c.blockSize {
		return block{}, fmt.Errorf("kv: short block image (%d bytes)", len(buf))
	}
	kl := int(binary.LittleEndian.Uint16(buf[1:3]))
	vl := int(binary.LittleEndian.Uint16(buf[3:5]))
	if kl > c.maxKey || vl > c.maxValue {
		return block{}, fmt.Errorf("kv: corrupt block header (kl=%d vl=%d)", kl, vl)
	}
	return block{
		used:  buf[0] == 1,
		key:   buf[blockHeaderSize : blockHeaderSize+kl],
		value: buf[blockHeaderSize+c.maxKey : blockHeaderSize+c.maxKey+vl],
		next:  binary.LittleEndian.Uint64(buf[5:13]),
	}, nil
}

// decodeVerified parses a block image, first checking its CRC. A block
// that was never written (all zeroes) fails the check, as does any torn or
// stale image.
func (c blockCodec) decodeVerified(buf []byte) (block, error) {
	if len(buf) < c.blockSize {
		return block{}, fmt.Errorf("kv: short block image (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[blockCRCOffset:blockHeaderSize]) != c.crcOf(buf) {
		return block{}, errBlockCRC
	}
	return c.decode(buf)
}

// errBlockCRC marks a torn or unwritten block image on the backup path.
var errBlockCRC = fmt.Errorf("kv: block image failed CRC")

// encodeBlock writes a block image into buf (length ≥ BlockSize).
func (s *Store) encodeBlock(buf []byte, b block) { s.bcodec.encode(buf, b) }

// decodeBlock parses a block image.
func (s *Store) decodeBlock(buf []byte) (block, error) { return s.bcodec.decode(buf) }
