package kv

import (
	"testing"
)

// TestPutBatchIdemDedupLive: a retry of an already-committed idempotent
// batch on the same store is a no-op — in particular it must not clobber a
// write that landed between the original and the retry.
func TestPutBatchIdemDedupLive(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)

	tok := []byte("batch-tok-1")
	if err := s.PutBatchIdem(tok, []Pair{{Key: []byte("k"), Value: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	// The retry (same token) must not resurrect "old".
	if err := s.PutBatchIdem(tok, []Pair{{Key: []byte("k"), Value: []byte("old")}}); err != nil {
		t.Fatal(err)
	}
	s.drain(t)
	v, err := s.Get([]byte("k"))
	if err != nil || string(v) != "new" {
		t.Fatalf("k = %q err=%v, want \"new\" (retry resurrected stale batch value)", v, err)
	}
	if hits := s.Stats().BatchDedupHits; hits != 1 {
		t.Fatalf("dedup hits = %d, want 1", hits)
	}
}

// TestPutBatchIdemDedupAcrossRecovery is the cross-failover regression: the
// original coordinator commits the batch but the client's ack is lost
// (ambiguous failure), a new coordinator recovers, an unrelated write lands,
// and then the client's retry arrives at the new coordinator. The retry must
// dedup against the token rebuilt from the log — re-applying it would
// resurrect the stale batch value over the newer write.
func TestPutBatchIdemDedupAcrossRecovery(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s1 := newStore(t, e, "cpu1", cfg)

	tok := []byte("ambiguous-tok")
	if err := s1.PutBatchIdem(tok, []Pair{
		{Key: []byte("a"), Value: []byte("batch-a")},
		{Key: []byte("b"), Value: []byte("batch-b")},
	}); err != nil {
		t.Fatal(err)
	}
	// s1 dies; s2 recovers and rebuilds the dedup set from the log.
	s2 := newStore(t, e, "cpu2", cfg)
	if err := s2.Put([]byte("a"), []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := s2.PutBatchIdem(tok, []Pair{
		{Key: []byte("a"), Value: []byte("batch-a")},
		{Key: []byte("b"), Value: []byte("batch-b")},
	}); err != nil {
		t.Fatal(err)
	}
	s2.drain(t)
	if v, err := s2.Get([]byte("a")); err != nil || string(v) != "newer" {
		t.Fatalf("a = %q err=%v, want \"newer\" (post-failover retry re-applied)", v, err)
	}
	if v, err := s2.Get([]byte("b")); err != nil || string(v) != "batch-b" {
		t.Fatalf("b = %q err=%v", v, err)
	}
	if hits := s2.Stats().BatchDedupHits; hits != 1 {
		t.Fatalf("dedup hits = %d, want 1", hits)
	}
}

// TestPutBatchIdemDoubleCommitReplay: when the same token appears twice in
// the log (an ambiguous-failure retry that re-committed because the first
// attempt's durability was unknown), recovery replays only the first entry.
// Replaying the second would undo any write that interleaved between them.
func TestPutBatchIdemDoubleCommitReplay(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s1 := newStore(t, e, "cpu1", cfg)

	tok := []byte("double-tok")
	batch := []record{
		{op: opBatchToken, key: tok},
		{op: opPut, key: []byte("k"), value: []byte("batch")},
	}
	// Commit the batch, an interleaving write, and the batch again — driving
	// commitBatch directly to bypass the live dedup, exactly what a client
	// retry through a different coordinator incarnation would produce.
	if _, err := s1.commitBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put([]byte("k"), []byte("interleaved")); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.commitBatch(batch); err != nil {
		t.Fatal(err)
	}
	s1.drain(t)

	s2 := newStore(t, e, "cpu2", cfg)
	if v, err := s2.Get([]byte("k")); err != nil || string(v) != "interleaved" {
		t.Fatalf("k = %q err=%v, want \"interleaved\" (replay applied the duplicate)", v, err)
	}
	if hits := s2.Stats().BatchDedupHits; hits != 1 {
		t.Fatalf("replay dedup hits = %d, want 1", hits)
	}
}

// TestPutBatchIdemEmptyToken: an empty token means no idempotency — it must
// behave exactly like PutBatch, including re-applying on repeat.
func TestPutBatchIdemEmptyToken(t *testing.T) {
	cfg := testCfg()
	e := newKVEnv(t, cfg, false)
	s := newStore(t, e, "c", cfg)
	for i := 0; i < 2; i++ {
		if err := s.PutBatchIdem(nil, []Pair{{Key: []byte("k"), Value: []byte{byte('0' + i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	s.drain(t)
	if v, err := s.Get([]byte("k")); err != nil || string(v) != "1" {
		t.Fatalf("k = %q err=%v", v, err)
	}
	if hits := s.Stats().BatchDedupHits; hits != 0 {
		t.Fatalf("dedup hits = %d, want 0", hits)
	}
}
