package kv

import "sync"

// shardQueue is an unbounded FIFO of apply tasks. Unboundedness matters:
// commit paths enqueue while holding the sequence lock, and appliers may
// wait for a task's commit to resolve before draining further, so a
// bounded queue could deadlock the committer against its own applier.
// Memory stays bounded regardless: outstanding entries are capped by the
// circular log window.
type shardQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*applyTask
	head   int
	closed bool
}

func newShardQueue() *shardQueue {
	q := &shardQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a task. Never blocks.
func (q *shardQueue) push(t *applyTask) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.cond.Signal()
	q.mu.Unlock()
}

// pop removes the oldest task, blocking until one is available. ok is false
// once the queue is closed and drained.
func (q *shardQueue) pop() (*applyTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head >= len(q.items) {
		return nil, false
	}
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	// Compact once the consumed prefix dominates, keeping memory bounded.
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append([]*applyTask(nil), q.items[q.head:]...)
		q.head = 0
	}
	return t, true
}

// close wakes all consumers; pending tasks are still drained first.
func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
