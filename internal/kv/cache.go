package kv

import (
	"container/list"
	"sync"
)

// cache is the coordinator's value cache (paper §4.1/§4.2): an LRU map from
// key to latest committed value, with pin counts that prevent evicting
// entries whose updates have not yet been applied to replicated memory —
// evicting them would let a subsequent get read a stale block.
//
// A nil value is a tombstone for a committed delete.
type cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recent
}

type cacheEntry struct {
	key     string
	value   []byte // nil = tombstone
	pending int    // outstanding unapplied updates
	seq     uint64 // log index of value; cache must converge to log order
}

// newCache creates a cache holding up to capacity entries. Capacity 0
// disables caching except for pinned (pending) entries, which are always
// retained for correctness.
func newCache(capacity int) *cache {
	return &cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// get returns the cached value and whether the key was present. The
// returned slice must not be modified.
func (c *cache) get(key string) (value []byte, tombstone, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.value, e.value == nil, true
}

// put inserts or refreshes a committed value. pin marks one pending apply
// (unpinned later with unpin). A nil value records a delete tombstone.
//
// seq is the record's log index. Commits to the same key race here in
// quorum-completion order, which is not log order; recovery and the shard
// appliers both replay the log in index order, so the cache must converge
// to the same order or reads flip across a failover. A pin is always
// counted (its apply task will unpin regardless), but the value only wins
// when seq >= the entry's — >= so the later records of a same-index batch
// override the earlier ones in batch order.
func (c *cache) put(key string, value []byte, pin bool, seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if pin {
			e.pending++
		}
		if seq >= e.seq {
			e.value = value
			e.seq = seq
		}
		c.order.MoveToFront(el)
	} else {
		e := &cacheEntry{key: key, value: value, seq: seq}
		if pin {
			e.pending = 1
		}
		c.entries[key] = c.order.PushFront(e)
	}
	c.evictLocked()
}

// insertClean adds a value read from replicated memory, without pinning.
// It never replaces an existing entry (which may be newer than the read).
func (c *cache) insertClean(key string, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: value})
	c.evictLocked()
}

// unpin releases one pending apply for key.
func (c *cache) unpin(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.pending > 0 {
			e.pending--
		}
	}
	c.evictLocked()
}

// evictLocked drops least-recently-used unpinned entries over capacity.
func (c *cache) evictLocked() {
	over := c.order.Len() - c.capacity
	if over <= 0 {
		return
	}
	for el := c.order.Back(); el != nil && over > 0; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.pending == 0 {
			c.order.Remove(el)
			delete(c.entries, e.key)
			over--
		}
		el = prev
	}
}

// len reports the number of cached entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
