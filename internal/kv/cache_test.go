package kv

import (
	"bytes"
	"testing"
)

// Two concurrent same-key commits can reach the cache in quorum-completion
// order, which may invert their log order. The cache must keep the value of
// the higher log index: reads before a failover and the log replay after it
// must agree. (Pre-fix, the later arrival clobbered unconditionally, so a
// delete at index i landing after a put at index i+1 resurrected across
// recovery — caught by the chaos linearizability harness.)
func TestCachePutOutOfOrderKeepsLogOrder(t *testing.T) {
	c := newCache(16)

	// Put at log index 2 completes first, then the delete at index 1 lands.
	c.put("k", []byte("v2"), true, 2)
	c.put("k", nil, true, 1)

	v, tomb, ok := c.get("k")
	if !ok || tomb || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("get after out-of-order delete: value=%q tombstone=%v ok=%v, want v2", v, tomb, ok)
	}

	// The stale arrival must still have been counted as a pin: its apply
	// task will unpin later, so the entry needs two outstanding pins.
	c.unpin("k")
	if got := c.len(); got != 1 {
		t.Fatalf("entry count after one unpin: %d, want 1", got)
	}
	// Fill past capacity and unpin the second; the entry is now evictable.
	c.unpin("k")
	for i := 0; i < 32; i++ {
		c.put(string(rune('a'+i)), []byte("x"), false, uint64(10+i))
	}
	if _, _, ok := c.get("k"); ok {
		t.Fatal("stale-pinned entry survived eviction after both unpins")
	}
}

// Records of one batch share a log index and hit the cache in batch order
// from a single goroutine; the later record must win (seq >= seq).
func TestCachePutSameIndexBatchOrderWins(t *testing.T) {
	c := newCache(16)
	c.put("k", []byte("a"), true, 5)
	c.put("k", nil, true, 5) // same batch deletes the key last
	if v, tomb, ok := c.get("k"); !ok || !tomb {
		t.Fatalf("same-index later record should win: value=%q tombstone=%v ok=%v", v, tomb, ok)
	}
}

// A clean insert (read-through from replicated memory, seq 0) must never
// shadow a committed value, and a committed put must override a clean entry.
func TestCacheCleanInsertYieldsToCommits(t *testing.T) {
	c := newCache(16)
	c.put("k", []byte("committed"), false, 7)
	c.insertClean("k", []byte("stale-read"))
	if v, _, _ := c.get("k"); !bytes.Equal(v, []byte("committed")) {
		t.Fatalf("insertClean replaced a committed value: got %q", v)
	}

	c2 := newCache(16)
	c2.insertClean("k", []byte("old"))
	c2.put("k", []byte("new"), false, 3)
	if v, _, _ := c2.get("k"); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("commit did not override clean entry: got %q", v)
	}
}
