package kv

import (
	"bytes"
	"fmt"
	"time"
)

// applyTask carries a committed log entry to its shard's applier. Tasks are
// enqueued in log-index order under the sequence lock, so per-key apply
// order always matches commit order.
type applyTask struct {
	idx       uint64
	rec       record
	committed chan struct{} // closed once the log write resolves
	ok        bool          // valid after committed is closed
	// applied, when non-nil (SyncApply mode), is closed once the record has
	// been materialized in replicated memory; applyErr is valid after.
	applied  chan struct{}
	applyErr error
	// countdown, when set, coordinates a multi-record batch sharing one
	// log index: the last applied record finishes the entry.
	countdown *countdown
}

// Put stores value under key. It returns once the update is committed: the
// record is written to the circular KV log on a majority of memory nodes in
// a single RDMA round trip (paper §4.2). The hash-table update happens in
// the background.
func (s *Store) Put(key, value []byte) error {
	if len(key) > s.cfg.MaxKey || len(value) > s.cfg.MaxValue {
		return fmt.Errorf("%w: key %d B (max %d), value %d B (max %d)",
			ErrTooLarge, len(key), s.cfg.MaxKey, len(value), s.cfg.MaxValue)
	}
	if len(key) == 0 {
		return fmt.Errorf("%w: empty key", ErrTooLarge)
	}
	err := s.commitRecord(record{op: opPut, key: key, value: value})
	if err == nil {
		s.stats.puts.Add(1)
	}
	return err
}

// Delete removes key. Deleting a missing key is not an error (the record
// still commits; its apply is a no-op).
func (s *Store) Delete(key []byte) error {
	if len(key) > s.cfg.MaxKey || len(key) == 0 {
		return fmt.Errorf("%w: key %d B (max %d)", ErrTooLarge, len(key), s.cfg.MaxKey)
	}
	err := s.commitRecord(record{op: opDelete, key: key})
	if err == nil {
		s.stats.deletes.Add(1)
	}
	return err
}

// commitRecord reserves a log index, enqueues the background apply, writes
// the log slot, and updates the cache.
func (s *Store) commitRecord(r record) error {
	// Copy caller buffers: they outlive this call (cache + background apply).
	r.key = append([]byte(nil), r.key...)
	r.value = append([]byte(nil), r.value...)

	task := &applyTask{rec: r, committed: make(chan struct{})}
	if s.cfg.SyncApply {
		task.applied = make(chan struct{})
	}

	s.seqMu.Lock()
	for s.nextIdx > s.watermark+uint64(s.kvGeo.Slots) && !s.closed.Load() {
		s.seqCond.Wait()
	}
	if s.closed.Load() {
		s.seqMu.Unlock()
		return ErrClosed
	}
	task.idx = s.nextIdx
	s.nextIdx++
	shard := s.bucketOf(r.key) % uint64(len(s.shards))
	s.shards[shard].push(task)
	s.seqMu.Unlock()

	entry := entryFor(task.idx, r)
	slot := s.getSlot()
	n, err := entry.Encode(slot)
	if err == nil {
		clear(slot[n:]) // pooled buffers carry old payloads past the entry
		err = s.mem.DirectWriteOwned(s.kvGeo.SlotOffset(task.idx), slot, func() { s.putSlot(slot) })
	} else {
		s.putSlot(slot)
	}
	if err != nil {
		task.ok = false
		close(task.committed)
		return err
	}

	// Committed: the cache immediately reflects the new value so gets see it
	// before the background apply lands; the pin keeps it resident until then.
	if r.op == opDelete {
		s.cache.put(string(r.key), nil, true, task.idx)
	} else {
		s.cache.put(string(r.key), r.value, true, task.idx)
	}
	task.ok = true
	close(task.committed)
	if task.applied != nil {
		// SyncApply: acknowledge only once the update is materialized, so a
		// lease-holding backup that reads the table structures after this
		// ack is guaranteed to see it (the apply fan-out waits on every
		// non-excluded node).
		<-task.applied
		if task.applyErr != nil {
			return task.applyErr
		}
		s.holdAck()
	}
	return nil
}

// holdAck delays an acknowledgement until at least AckHold has passed since
// the replicated memory last excluded a node from its waited-on write set.
// A backup's view of membership can be up to a lease window stale; holding
// acks for that long after an exclusion means no backup still reading the
// excluded node can miss an acked write.
func (s *Store) holdAck() {
	if h := s.cfg.AckHold; h > 0 {
		if rem := h - s.mem.SinceExclusion(); rem > 0 {
			time.Sleep(rem)
		}
	}
}

// Get returns the value stored under key. It checks the coordinator cache
// first and falls back to walking the bucket's chain in replicated memory
// (paper §4.2). The returned slice is the caller's to keep.
func (s *Store) Get(key []byte) ([]byte, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	s.stats.gets.Add(1)
	if v, tomb, ok := s.cache.get(string(key)); ok {
		s.stats.cacheHits.Add(1)
		if tomb {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	s.stats.cacheMisses.Add(1)

	bucket := s.bucketOf(key)
	lk := s.bucketLock(bucket)
	lk.RLock()
	blk, _, _, err := s.findInChain(bucket, key)
	lk.RUnlock()
	if err != nil {
		return nil, err
	}
	if blk == nil {
		return nil, ErrNotFound
	}
	// blk.value is a fresh per-read buffer, so the caller can own it
	// directly; the cache gets its own copy (cached values are shared and
	// must never be handed to callers who may modify them).
	s.cache.insertClean(string(key), append([]byte(nil), blk.value...))
	return blk.value, nil
}

// getSlot takes a log-slot-sized buffer from the pool.
func (s *Store) getSlot() []byte { return *s.slotPool.Get().(*[]byte) }

// putSlot recycles a slot buffer once no write referencing it is in flight.
func (s *Store) putSlot(b []byte) { s.slotPool.Put(&b) }

// findInChain walks bucket's chain looking for key. It returns the matching
// block (nil if absent), its block index, and the previous block index+1
// (0 when the match is the chain head). Caller holds the bucket lock.
func (s *Store) findInChain(bucket uint64, key []byte) (*block, uint64, uint64, error) {
	cur := s.index[bucket]
	prev := uint64(0)
	for cur != 0 {
		blk, err := s.readBlock(cur - 1)
		if err != nil {
			return nil, 0, 0, err
		}
		if blk.used && bytes.Equal(blk.key, key) {
			return &blk, cur - 1, prev, nil
		}
		prev = cur
		cur = blk.next
	}
	return nil, 0, 0, nil
}

// readBlock fetches data block i from replicated memory. The read covers
// the full stride so that under erasure coding it is a whole-EC-block
// reconstruction (no partial-block scratch copy).
func (s *Store) readBlock(i uint64) (block, error) {
	buf := make([]byte, s.stride)
	if err := s.mem.Read(s.blockAddr(i), buf); err != nil {
		return block{}, err
	}
	s.stats.chainReads.Add(1)
	return s.decodeBlock(buf)
}

// writeBlock materializes data block i. The KV log already provides
// durability, so this is an unlogged write (§3.3.2). The write covers the
// full stride so that under erasure coding it is a whole-EC-block apply
// (encode and fan out, no read-modify-write).
func (s *Store) writeBlock(i uint64, b block) error {
	buf := make([]byte, s.stride)
	s.encodeBlock(buf, b)
	return s.mem.UnloggedWrite(s.blockAddr(i), buf)
}

// writeIndexEntry materializes one bucket-head pointer.
func (s *Store) writeIndexEntry(bucket uint64) error {
	var buf [8]byte
	putUint64(buf[:], s.index[bucket])
	return s.mem.UnloggedWrite(s.indexAddr(bucket), buf[:])
}

// allocBlock takes a free block from the cached bitmap and materializes the
// changed bitmap byte.
func (s *Store) allocBlock() (uint64, error) {
	s.bitmapMu.Lock()
	defer s.bitmapMu.Unlock()
	n := s.cfg.Capacity
	for scanned := 0; scanned < n; scanned++ {
		i := (s.freeHint + scanned) % n
		byteIdx, bit := i/8, uint(i%8)
		if s.bitmap[byteIdx]&(1<<bit) == 0 {
			s.bitmap[byteIdx] |= 1 << bit
			s.freeHint = (i + 1) % n
			if err := s.mem.UnloggedWrite(s.bitmapBase+uint64(byteIdx), []byte{s.bitmap[byteIdx]}); err != nil {
				return 0, err
			}
			return uint64(i), nil
		}
	}
	return 0, ErrFull
}

// freeBlock returns block i to the allocator.
func (s *Store) freeBlock(i uint64) error {
	s.bitmapMu.Lock()
	defer s.bitmapMu.Unlock()
	byteIdx, bit := int(i)/8, uint(i%8)
	s.bitmap[byteIdx] &^= 1 << bit
	if int(i) < s.freeHint {
		s.freeHint = int(i)
	}
	return s.mem.UnloggedWrite(s.bitmapBase+uint64(byteIdx), []byte{s.bitmap[byteIdx]})
}

// applyLoop drains one shard's task queue.
func (s *Store) applyLoop(q *shardQueue) {
	defer s.applyWG.Done()
	for {
		task, ok := q.pop()
		if !ok {
			return
		}
		<-task.committed
		if task.ok {
			err := s.applyRecord(task.rec)
			if err == nil {
				s.stats.applies.Add(1)
			}
			if task.applied != nil {
				task.applyErr = err
				close(task.applied)
			}
			if p := s.cfg.Persist; p != nil && task.rec.op != opBatchToken {
				// Synchronous persistence by the background thread (§3.5):
				// commit latency is unaffected, and the number of
				// outstanding (unpersisted) writes is bounded by the log.
				if task.rec.op == opDelete {
					p.Delete(task.rec.key) //nolint:errcheck — persistence is best-effort beside the WAL
				} else {
					p.Put(task.rec.key, task.rec.value) //nolint:errcheck
				}
			}
			if task.rec.op != opBatchToken {
				s.cache.unpin(string(task.rec.key))
			}
		}
		if task.countdown != nil {
			task.countdown.done()
		} else {
			s.finishEntry(task.idx)
		}
	}
}

// applyRecord performs the hash-table update for a committed record
// (paper §4.2's "apply" step). Idempotent, so log replay may repeat it.
func (s *Store) applyRecord(r record) error {
	if r.op == opBatchToken {
		// Batch token: log metadata only, nothing to materialize.
		return nil
	}
	bucket := s.bucketOf(r.key)
	lk := s.bucketLock(bucket)
	lk.Lock()
	defer lk.Unlock()

	blk, blkIdx, prev, err := s.findInChain(bucket, r.key)
	if err != nil {
		return err
	}
	switch r.op {
	case opPut:
		if blk != nil {
			// Update in place.
			blk.value = r.value
			return s.writeBlock(blkIdx, *blk)
		}
		idx, err := s.allocBlock()
		if err != nil {
			return err
		}
		// Insert at chain head: one block write plus one index write.
		nb := block{used: true, key: r.key, value: r.value, next: s.index[bucket]}
		if err := s.writeBlock(idx, nb); err != nil {
			return err
		}
		s.index[bucket] = idx + 1
		return s.writeIndexEntry(bucket)
	case opDelete:
		if blk == nil {
			return nil
		}
		if prev == 0 {
			s.index[bucket] = blk.next
			if err := s.writeIndexEntry(bucket); err != nil {
				return err
			}
		} else {
			pb, err := s.readBlock(prev - 1)
			if err != nil {
				return err
			}
			pb.next = blk.next
			if err := s.writeBlock(prev-1, pb); err != nil {
				return err
			}
		}
		// Mark the block unused before freeing so a reused-but-unwritten
		// block never matches a chain walk.
		if err := s.writeBlock(blkIdx, block{}); err != nil {
			return err
		}
		return s.freeBlock(blkIdx)
	default:
		return fmt.Errorf("kv: unknown opcode %d", r.op)
	}
}

// finishEntry marks a log index resolved and advances the watermark,
// freeing its circular slot.
func (s *Store) finishEntry(idx uint64) {
	s.seqMu.Lock()
	s.applied[idx] = true
	for s.applied[s.watermark+1] {
		delete(s.applied, s.watermark+1)
		s.watermark++
	}
	s.seqCond.Broadcast()
	s.seqMu.Unlock()
}

func putUint64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
