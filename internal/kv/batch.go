package kv

import (
	"fmt"
	"sync/atomic"
)

// PutBatch commits several updates atomically: the whole batch occupies a
// single KV log entry, so after any coordinator failure either every
// update in the batch is replayed or none is, and no other conflicting
// write interleaves between them — the §3.3.2 multi-write commit interface
// surfaced at the key-value level.
//
// The batch must fit in one log slot: with the default sizing that is one
// full-size record, so batched updates should use proportionally smaller
// values (the slot holds MaxKey+MaxValue bytes of payload in total, plus
// per-record framing). Deletes are expressed as nil values.
func (s *Store) PutBatch(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	recs := make([]record, len(pairs))
	for i, p := range pairs {
		if len(p.Key) == 0 || len(p.Key) > s.cfg.MaxKey {
			return fmt.Errorf("%w: key %d B (max %d)", ErrTooLarge, len(p.Key), s.cfg.MaxKey)
		}
		if len(p.Value) > s.cfg.MaxValue {
			return fmt.Errorf("%w: value %d B (max %d)", ErrTooLarge, len(p.Value), s.cfg.MaxValue)
		}
		op := byte(opPut)
		if p.Value == nil {
			op = opDelete
		}
		recs[i] = record{
			op:    op,
			key:   append([]byte(nil), p.Key...),
			value: append([]byte(nil), p.Value...),
		}
	}
	err := s.commitBatch(recs)
	if err == nil {
		for _, r := range recs {
			if r.op == opDelete {
				s.stats.deletes.Add(1)
			} else {
				s.stats.puts.Add(1)
			}
		}
	}
	return err
}

// Pair is one update in a PutBatch. A nil Value deletes the key.
type Pair struct {
	Key   []byte
	Value []byte
}

// commitBatch reserves one log index for all records, enqueues their
// applies (to the shards their keys hash to, in batch order), writes the
// single log slot, and updates the cache.
func (s *Store) commitBatch(recs []record) error {
	tasks := make([]*applyTask, len(recs))
	committed := make(chan struct{})

	s.seqMu.Lock()
	for s.nextIdx > s.watermark+uint64(s.kvGeo.Slots) && !s.closed.Load() {
		s.seqCond.Wait()
	}
	if s.closed.Load() {
		s.seqMu.Unlock()
		return ErrClosed
	}
	idx := s.nextIdx
	s.nextIdx++
	// All records share the log index; only the last finisher advances the
	// watermark (finishEntry is idempotent via the applied set, but we must
	// call it exactly once — route that through a countdown task).
	remaining := newCountdown(len(recs), func() { s.finishEntry(idx) })
	for i, r := range recs {
		t := &applyTask{idx: idx, rec: r, committed: committed, countdown: remaining}
		if s.cfg.SyncApply {
			t.applied = make(chan struct{})
		}
		tasks[i] = t
		shard := s.bucketOf(r.key) % uint64(len(s.shards))
		s.shards[shard].push(t)
	}
	s.seqMu.Unlock()

	entry := batchEntryFor(idx, recs)
	slot := s.getSlot()
	n, err := entry.Encode(slot)
	if err == nil {
		clear(slot[n:]) // pooled buffers carry old payloads past the entry
		err = s.mem.DirectWriteOwned(s.kvGeo.SlotOffset(idx), slot, func() { s.putSlot(slot) })
	} else {
		s.putSlot(slot)
	}
	if err != nil {
		for _, t := range tasks {
			t.ok = false
		}
		close(committed)
		return err
	}
	for _, r := range recs {
		if r.op == opDelete {
			s.cache.put(string(r.key), nil, true, idx)
		} else {
			s.cache.put(string(r.key), r.value, true, idx)
		}
	}
	for _, t := range tasks {
		t.ok = true
	}
	close(committed)
	if s.cfg.SyncApply {
		for _, t := range tasks {
			<-t.applied
			if t.applyErr != nil {
				return t.applyErr
			}
		}
		s.holdAck()
	}
	return nil
}

// countdown runs fn after n done calls.
type countdown struct {
	n  atomic.Int64
	fn func()
}

func newCountdown(n int, fn func()) *countdown {
	c := &countdown{fn: fn}
	c.n.Store(int64(n))
	return c
}

// done consumes one count; the last consumer runs fn.
func (c *countdown) done() {
	if c.n.Add(-1) == 0 {
		c.fn()
	}
}
