package kv

import (
	"fmt"
	"sync/atomic"
)

// PutBatch commits several updates atomically: the whole batch occupies a
// single KV log entry, so after any coordinator failure either every
// update in the batch is replayed or none is, and no other conflicting
// write interleaves between them — the §3.3.2 multi-write commit interface
// surfaced at the key-value level.
//
// The batch must fit in one log slot: with the default sizing that is one
// full-size record, so batched updates should use proportionally smaller
// values (the slot holds MaxKey+MaxValue bytes of payload in total, plus
// per-record framing). Deletes are expressed as nil values.
func (s *Store) PutBatch(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	recs, err := s.recsForPairs(pairs)
	if err != nil {
		return err
	}
	if _, err := s.commitBatch(recs); err != nil {
		return err
	}
	s.countBatch(recs)
	return nil
}

// PutBatchIdem is PutBatch with at-most-once semantics under retry: the
// batch commits tagged with the caller-chosen token (an opBatchToken record
// leads the log entry), and a later PutBatchIdem with the same token is a
// no-op if the tagged entry is still within the circular log's active
// window. The dedup set is rebuilt from the log during coordinator
// recovery, so a retry after an ambiguous failure (client saw an error, but
// the entry was durable and a new coordinator replayed it) does not apply
// the batch a second time — which could otherwise resurrect values that a
// concurrent writer had since overwritten.
//
// An empty token degrades to plain PutBatch.
func (s *Store) PutBatchIdem(token []byte, pairs []Pair) error {
	if len(token) == 0 {
		return s.PutBatch(pairs)
	}
	if len(pairs) == 0 {
		return nil
	}
	if len(token) > s.cfg.MaxKey {
		return fmt.Errorf("%w: token %d B (max %d)", ErrTooLarge, len(token), s.cfg.MaxKey)
	}
	tok := string(token)
	s.dedupMu.Lock()
	_, dup := s.dedup[tok]
	s.dedupMu.Unlock()
	if dup {
		s.stats.batchDedupHits.Add(1)
		return nil
	}
	recs, err := s.recsForPairs(pairs)
	if err != nil {
		return err
	}
	all := make([]record, 0, len(recs)+1)
	all = append(all, record{op: opBatchToken, key: append([]byte(nil), token...)})
	all = append(all, recs...)
	idx, err := s.commitBatch(all)
	if err != nil {
		return err
	}
	s.registerToken(tok, idx)
	s.countBatch(recs)
	return nil
}

// recsForPairs validates and copies a batch's pairs into log records.
func (s *Store) recsForPairs(pairs []Pair) ([]record, error) {
	recs := make([]record, len(pairs))
	for i, p := range pairs {
		if len(p.Key) == 0 || len(p.Key) > s.cfg.MaxKey {
			return nil, fmt.Errorf("%w: key %d B (max %d)", ErrTooLarge, len(p.Key), s.cfg.MaxKey)
		}
		if len(p.Value) > s.cfg.MaxValue {
			return nil, fmt.Errorf("%w: value %d B (max %d)", ErrTooLarge, len(p.Value), s.cfg.MaxValue)
		}
		op := byte(opPut)
		if p.Value == nil {
			op = opDelete
		}
		recs[i] = record{
			op:    op,
			key:   append([]byte(nil), p.Key...),
			value: append([]byte(nil), p.Value...),
		}
	}
	return recs, nil
}

// countBatch bumps the per-op counters for a committed batch.
func (s *Store) countBatch(recs []record) {
	for _, r := range recs {
		switch r.op {
		case opDelete:
			s.stats.deletes.Add(1)
		case opPut:
			s.stats.puts.Add(1)
		}
	}
}

// registerToken records that token committed at idx, pruning tokens whose
// entries have left the log's active window (a retry that late would find
// nothing to dedup against after a recovery either, so keeping them would
// only grow the map).
func (s *Store) registerToken(tok string, idx uint64) {
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	s.dedup[tok] = idx
	if len(s.dedup) > 2*s.kvGeo.Slots {
		floor := uint64(0)
		if idx > uint64(s.kvGeo.Slots) {
			floor = idx - uint64(s.kvGeo.Slots)
		}
		for t, i := range s.dedup {
			if i < floor {
				delete(s.dedup, t)
			}
		}
	}
}

// Pair is one update in a PutBatch. A nil Value deletes the key.
type Pair struct {
	Key   []byte
	Value []byte
}

// commitBatch reserves one log index for all records, enqueues their
// applies (to the shards their keys hash to, in batch order), writes the
// single log slot, and updates the cache. It returns the log index the
// batch committed at.
func (s *Store) commitBatch(recs []record) (uint64, error) {
	tasks := make([]*applyTask, len(recs))
	committed := make(chan struct{})

	s.seqMu.Lock()
	for s.nextIdx > s.watermark+uint64(s.kvGeo.Slots) && !s.closed.Load() {
		s.seqCond.Wait()
	}
	if s.closed.Load() {
		s.seqMu.Unlock()
		return 0, ErrClosed
	}
	idx := s.nextIdx
	s.nextIdx++
	// All records share the log index; only the last finisher advances the
	// watermark (finishEntry is idempotent via the applied set, but we must
	// call it exactly once — route that through a countdown task).
	remaining := newCountdown(len(recs), func() { s.finishEntry(idx) })
	for i, r := range recs {
		t := &applyTask{idx: idx, rec: r, committed: committed, countdown: remaining}
		if s.cfg.SyncApply {
			t.applied = make(chan struct{})
		}
		tasks[i] = t
		shard := s.bucketOf(r.key) % uint64(len(s.shards))
		s.shards[shard].push(t)
	}
	s.seqMu.Unlock()

	entry := batchEntryFor(idx, recs)
	slot := s.getSlot()
	n, err := entry.Encode(slot)
	if err == nil {
		clear(slot[n:]) // pooled buffers carry old payloads past the entry
		err = s.mem.DirectWriteOwned(s.kvGeo.SlotOffset(idx), slot, func() { s.putSlot(slot) })
	} else {
		s.putSlot(slot)
	}
	if err != nil {
		for _, t := range tasks {
			t.ok = false
		}
		close(committed)
		return 0, err
	}
	for _, r := range recs {
		switch r.op {
		case opBatchToken:
			// Tokens are log metadata, not keys: keep them out of the cache.
		case opDelete:
			s.cache.put(string(r.key), nil, true, idx)
		default:
			s.cache.put(string(r.key), r.value, true, idx)
		}
	}
	for _, t := range tasks {
		t.ok = true
	}
	close(committed)
	if s.cfg.SyncApply {
		for _, t := range tasks {
			<-t.applied
			if t.applyErr != nil {
				return 0, t.applyErr
			}
		}
		s.holdAck()
	}
	return idx, nil
}

// countdown runs fn after n done calls.
type countdown struct {
	n  atomic.Int64
	fn func()
}

func newCountdown(n int, fn func()) *countdown {
	c := &countdown{fn: fn}
	c.n.Store(int64(n))
	return c
}

// done consumes one count; the last consumer runs fn.
func (c *countdown) done() {
	if c.n.Add(-1) == 0 {
		c.fn()
	}
}
