// Package kv implements Sift's recoverable key-value store on top of the
// replicated memory layer (paper §4).
//
// The store is a hash table with chaining, built from four structures that
// all live in replicated memory at predefined locations:
//
//   - an index table of bucket-head pointers,
//   - a bitmap tracking free data blocks,
//   - an array of fixed-size data blocks (key, value, next pointer), and
//   - a circular write-ahead log, placed in the direct-write zone so a put
//     commits in a single RDMA round trip (§4.2).
//
// The index table and bitmap are cached at the coordinator, eliminating up
// to two remote reads per put; a value cache (default: half the keys)
// absorbs most gets. Logged puts are applied to the table structures in the
// background by per-shard appliers, which preserve per-key commit order.
package kv

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/repro/sift/internal/repmem"
	"github.com/repro/sift/internal/wal"
)

// Store errors.
var (
	// ErrNotFound is returned by Get for missing keys.
	ErrNotFound = errors.New("kv: key not found")
	// ErrTooLarge is returned when a key or value exceeds the configured max.
	ErrTooLarge = errors.New("kv: key or value too large")
	// ErrFull is returned when all data blocks are allocated.
	ErrFull = errors.New("kv: store is full")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("kv: store closed")
)

// Config sizes the key-value store. The zero value is unusable; use
// DefaultConfig for the paper's evaluation configuration.
type Config struct {
	// Capacity is the maximum number of keys (data blocks).
	Capacity int
	// MaxKey and MaxValue bound key and value sizes (paper: 32 B and 992 B).
	MaxKey   int
	MaxValue int
	// LoadFactor is the maximum index-table load factor (paper: 0.125).
	LoadFactor float64
	// CacheFraction sizes the value cache relative to Capacity (paper: 0.5).
	CacheFraction float64
	// WALSlots is the circular KV log's entry count (paper: 64k).
	WALSlots int
	// ApplyShards is the number of background appliers (per-key ordering is
	// preserved by sharding on the bucket).
	ApplyShards int
	// SyncApply, when set, makes Put/Delete/PutBatch wait for the background
	// apply to materialize the update in the hash-table structures before
	// returning. This is required when backup CPU nodes serve lease-based
	// reads directly from replicated memory: an acknowledged write must be
	// visible to a reader that only sees the table, not the log.
	SyncApply bool
	// AckHold, with SyncApply, delays acknowledgements until at least this
	// long has passed since a memory node was last excluded from the
	// waited-on write set. Set it to the backup read-lease window (plus
	// margin): it guarantees that no backup whose membership view predates
	// the exclusion can still be serving reads from the excluded node by the
	// time a write that skipped that node is acknowledged.
	AckHold time.Duration
	// Persist, when set, receives every committed update from the
	// background appliers — the paper's §3.5 design where "all updates are
	// synchronously written to the persistent database by a background
	// thread" (RocksDB there; internal/persist's minidb here, or anything
	// else implementing the interface).
	Persist Persistence
}

// Persistence is the optional durable sink for committed updates (§3.5).
type Persistence interface {
	Put(key, value []byte) error
	Delete(key []byte) error
}

// DefaultConfig returns the paper's §6.2 configuration: 1M keys, 32 B keys,
// 992 B values, 12.5% load factor, 50% cache, 64k-entry log.
func DefaultConfig() Config {
	return Config{
		Capacity:      1_000_000,
		MaxKey:        32,
		MaxValue:      992,
		LoadFactor:    0.125,
		CacheFraction: 0.5,
		WALSlots:      64 * 1024,
		ApplyShards:   4,
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.LoadFactor <= 0 {
		out.LoadFactor = 0.125
	}
	if out.CacheFraction < 0 {
		out.CacheFraction = 0
	}
	if out.WALSlots <= 0 {
		out.WALSlots = 64 * 1024
	}
	if out.ApplyShards <= 0 {
		out.ApplyShards = 4
	}
	return out
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Capacity <= 0 || c.MaxKey <= 0 || c.MaxValue < 0 {
		return fmt.Errorf("kv: invalid sizes in config %+v", c)
	}
	if c.LoadFactor < 0 {
		// Chaining tolerates load factors above 1 (they set the mean chain
		// length), so only negative values are rejected.
		return fmt.Errorf("kv: load factor %v out of range", c.LoadFactor)
	}
	return nil
}

// Buckets returns the index table size implied by the config.
func (c Config) Buckets() int {
	cc := c.withDefaults()
	b := int(float64(cc.Capacity)/cc.LoadFactor + 0.5)
	if b < 1 {
		b = 1
	}
	return b
}

// BlockSize returns the fixed data block size.
func (c Config) BlockSize() int { return blockHeaderSize + c.MaxKey + c.MaxValue }

// IndexBytes returns the index table's footprint.
func (c Config) IndexBytes() int { return c.Buckets() * 8 }

// BitmapBytes returns the allocator bitmap's footprint.
func (c Config) BitmapBytes() int { return (c.Capacity + 7) / 8 }

// BlocksBase returns the main-space offset of the data block array, aligned
// so that block i starts at BlocksBase + i*BlockSize. align must be ≥1
// (pass the repmem EC block size, or 1 without EC).
func (c Config) BlocksBase(align int) uint64 {
	base := uint64(c.IndexBytes() + c.BitmapBytes())
	if align > 1 {
		a := uint64(align)
		base = (base + a - 1) / a * a
	}
	return base
}

// BlockStride returns the spacing between consecutive data blocks:
// BlockSize rounded up to a multiple of align. With erasure coding, align
// is the EC block size, which confines every data block to a whole number
// of EC blocks — block writes are then pure encode-and-fan-out (no
// read-modify-write of a shared tail block), and a reader can fetch a data
// block without touching its neighbours.
func (c Config) BlockStride(align int) int {
	bs := c.BlockSize()
	if align > 1 {
		bs = (bs + align - 1) / align * align
	}
	return bs
}

// RequiredMemSize returns the main-space bytes the store needs.
func (c Config) RequiredMemSize(align int) int {
	return int(c.BlocksBase(align)) + c.Capacity*c.BlockStride(align)
}

// WALSlotSize returns the KV log slot size: one full put record plus
// framing, rounded up for alignment.
func (c Config) WALSlotSize() int {
	cc := c.withDefaults()
	n := walEntryOverhead + recordOverhead + cc.MaxKey + cc.MaxValue
	return (n + 63) / 64 * 64
}

// RequiredDirectSize returns the direct-zone bytes the store needs.
func (c Config) RequiredDirectSize() int {
	cc := c.withDefaults()
	return cc.WALSlotSize() * cc.WALSlots
}

// Stats are cumulative counters exposed for the benchmark harness.
type Stats struct {
	Puts        uint64
	Gets        uint64
	Deletes     uint64
	CacheHits   uint64
	CacheMisses uint64
	Applies     uint64
	ChainReads  uint64 // remote block reads during chain walks
	// BatchDedupHits counts idempotent batches suppressed because their
	// token had already committed (retry after an ambiguous failure).
	BatchDedupHits uint64
}

// Store is the coordinator-side key-value store. It is safe for concurrent
// use. Construct with New (fresh or recovering — New always runs recovery,
// which on a fresh store is a no-op).
type Store struct {
	cfg Config
	mem *repmem.Memory

	buckets    uint64
	blockSize  int
	stride     int // blockSize rounded up to EC-block alignment
	bcodec     blockCodec
	bitmapBase uint64
	blocksBase uint64
	kvGeo      wal.Geometry

	// index caches the index table: bucket -> blockIdx+1 (0 = empty chain).
	index []uint64
	// bitmap caches the block allocator.
	bitmap   []byte
	bitmapMu sync.Mutex
	freeHint int

	bucketLocks []sync.RWMutex

	cache *cache

	seqMu     sync.Mutex
	seqCond   *sync.Cond
	nextIdx   uint64
	watermark uint64
	applied   map[uint64]bool

	// dedup maps an idempotent-batch token to the log index it committed at.
	// It is rebuilt from the log during recovery, so the dedup window equals
	// the circular log's active window: a retry arriving within WALSlots
	// subsequent commits is suppressed, across coordinator failovers.
	dedupMu sync.Mutex
	dedup   map[string]uint64

	shards  []*shardQueue
	applyWG sync.WaitGroup
	closed  atomic.Bool

	// slotPool recycles log-slot buffers between commits; a buffer returns
	// to the pool only after every per-node write referencing it resolves.
	slotPool sync.Pool

	stats struct {
		puts, gets, deletes    atomic.Uint64
		cacheHits, cacheMisses atomic.Uint64
		applies, chainReads    atomic.Uint64
		batchDedupHits         atomic.Uint64
	}
}

const bucketLockStripes = 512

// New builds the store over mem and recovers its state: it loads the index
// table and bitmap from replicated memory and replays the KV write-ahead
// log (paper §4.3). On a fresh deployment both steps see zeroes and the
// store starts empty.
func New(mem *repmem.Memory, cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	align := 1
	if mem.ErasureEnabled() {
		align = mem.ECBlockSize()
	}
	if need := c.RequiredMemSize(align); need > mem.MemSize() {
		return nil, fmt.Errorf("kv: needs %d bytes of main memory, have %d", need, mem.MemSize())
	}
	if need := c.RequiredDirectSize(); need > mem.DirectSize() {
		return nil, fmt.Errorf("kv: needs %d bytes of direct memory, have %d", need, mem.DirectSize())
	}
	s := &Store{
		cfg:         c,
		mem:         mem,
		buckets:     uint64(c.Buckets()),
		blockSize:   c.BlockSize(),
		stride:      c.BlockStride(align),
		bcodec:      c.codec(),
		bitmapBase:  uint64(c.IndexBytes()),
		blocksBase:  c.BlocksBase(align),
		kvGeo:       wal.Geometry{Base: 0, SlotSize: c.WALSlotSize(), Slots: c.WALSlots},
		index:       make([]uint64, c.Buckets()),
		bitmap:      make([]byte, c.BitmapBytes()),
		bucketLocks: make([]sync.RWMutex, bucketLockStripes),
		applied:     make(map[uint64]bool),
		dedup:       make(map[string]uint64),
		nextIdx:     1,
	}
	s.seqCond = sync.NewCond(&s.seqMu)
	s.slotPool.New = func() any {
		b := make([]byte, s.kvGeo.SlotSize)
		return &b
	}
	cacheEntries := int(float64(c.Capacity) * c.CacheFraction)
	s.cache = newCache(cacheEntries)

	if err := s.recover(); err != nil {
		return nil, err
	}

	s.shards = make([]*shardQueue, c.ApplyShards)
	for i := range s.shards {
		q := newShardQueue()
		s.shards[i] = q
		s.applyWG.Add(1)
		go s.applyLoop(q)
	}
	return s, nil
}

// Close stops the background appliers. Pending applies are drained first so
// every committed put reaches the replicated memory.
func (s *Store) Close() {
	// The sequence lock serialises this against commitRecord's enqueue, so
	// no send can race the channel close.
	s.seqMu.Lock()
	if s.closed.Swap(true) {
		s.seqMu.Unlock()
		return
	}
	for _, q := range s.shards {
		q.close()
	}
	s.seqCond.Broadcast()
	s.seqMu.Unlock()
	s.applyWG.Wait()
}

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		Puts:           s.stats.puts.Load(),
		Gets:           s.stats.gets.Load(),
		Deletes:        s.stats.deletes.Load(),
		CacheHits:      s.stats.cacheHits.Load(),
		CacheMisses:    s.stats.cacheMisses.Load(),
		Applies:        s.stats.applies.Load(),
		ChainReads:     s.stats.chainReads.Load(),
		BatchDedupHits: s.stats.batchDedupHits.Load(),
	}
}

// Memory returns the underlying replicated memory handle.
func (s *Store) Memory() *repmem.Memory { return s.mem }

// MemoryStats returns the replicated memory layer's counters.
func (s *Store) MemoryStats() repmem.Stats { return s.mem.Stats() }

// MemoryHealth returns the per-memory-node gray-failure view.
func (s *Store) MemoryHealth() []repmem.NodeHealth { return s.mem.Health() }

// bucketOf hashes a key to its bucket.
func (s *Store) bucketOf(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64() % s.buckets
}

func (s *Store) bucketLock(bucket uint64) *sync.RWMutex {
	return &s.bucketLocks[bucket%bucketLockStripes]
}

// indexAddr returns the main-space address of a bucket's index entry.
func (s *Store) indexAddr(bucket uint64) uint64 { return bucket * 8 }

// blockAddr returns the main-space address of data block i. Blocks are
// stride apart, so under erasure coding each occupies whole EC blocks.
func (s *Store) blockAddr(i uint64) uint64 {
	return s.blocksBase + i*uint64(s.stride)
}
