// Package memnode defines the memory layout of a Sift memory node and
// helpers to construct one (paper §3.1, Figure 1).
//
// A memory node is completely passive: it registers two RDMA memory regions
// and then only participates by having its NIC (simulated by the rdma
// package transports) serve one-sided operations.
//
//   - The administrative region holds the heartbeat/election word
//     (term_id, node_id, timestamp) and is shared: every CPU node may CAS it.
//   - The replicated memory region is exclusive (at-most-one-connection) and
//     is subdivided into the replicated-memory write-ahead log, a
//     direct-write zone (unlogged, used by the key-value store's own WAL),
//     and the materialized replicated memory.
package memnode

import (
	"fmt"

	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/wal"
)

// Region ids used by every Sift memory node.
const (
	// AdminRegionID is the shared administrative (heartbeat) region.
	AdminRegionID rdma.RegionID = 1
	// ReplRegionID is the exclusive replicated memory region.
	ReplRegionID rdma.RegionID = 2
)

// AdminSize is the administrative region size. Only the first 8 bytes (the
// packed heartbeat word) are currently used; the rest is reserved.
const AdminSize = 64

// AdminWordOffset is the offset of the packed heartbeat word.
const AdminWordOffset = 0

// AdminPopulatedOffset is the offset of the "populated" marker word: 0
// means the node's replicated region holds no trustworthy state (fresh
// machine, rebooted DRAM, or a recovery copy in progress); 1 means a
// coordinator has fully populated it. Coordinators check this at takeover
// so a node that lost its memory between coordinatorships is recovered
// rather than read.
const AdminPopulatedOffset = 8

// Populated marker values.
const (
	MarkerEmpty     = 0
	MarkerPopulated = 1
)

// AdminMembershipOffset is the offset of the membership word: the
// coordinator of term T publishes term(16)|version(16)|liveBitmap(32) here
// on every writable node whenever its view of the live memory nodes
// changes. A successor reads the word from a majority, takes the highest
// (term, version), and treats nodes absent from that bitmap as needing a
// rebuild — so a node that silently missed updates (partitioned with its
// DRAM intact) is never read after a coordinator failover. Stale
// coordinators lose automatically: their term tags are smaller.
const AdminMembershipOffset = 16

// AdminServingOffset is the offset of the serving word: the coordinator of
// term T writes T here only once its takeover is complete — recovery and
// log replay finished, table structures stable apart from live applies. A
// backup CPU node serving lease-based reads requires its lease term to
// equal this word: a lease anchored on term T's heartbeat words otherwise
// says nothing about whether T's replay (which rewrites blocks through
// older states) is still in flight. Monotonic; readers take the maximum.
const AdminServingOffset = 24

// PackMembership builds a membership word.
func PackMembership(term, version uint16, bitmap uint32) uint64 {
	return uint64(term)<<48 | uint64(version)<<32 | uint64(bitmap)
}

// UnpackMembership splits a membership word.
func UnpackMembership(w uint64) (term, version uint16, bitmap uint32) {
	return uint16(w >> 48), uint16(w >> 32), uint32(w)
}

// Layout describes how a memory node's replicated region is carved up.
// All coordinators of a group must agree on the layout.
type Layout struct {
	// WALSlotSize and WALSlots define the replicated-memory write-ahead log.
	WALSlotSize int
	WALSlots    int
	// DirectSize is the size of the direct-write zone (full copy per node).
	DirectSize int
	// MainSize is the per-node size of the materialized memory: the full
	// logical memory size without erasure coding, or the chunked share
	// (logical size / (Fm+1)) with it.
	MainSize int
	// IntegrityBlockSize is the granularity of the main-memory checksum
	// strip: one CRC32C per IntegrityBlockSize bytes of this node's
	// materialized memory (a plain-replicated block, or one erasure-coded
	// chunk). Zero means no strip.
	IntegrityBlockSize int
}

// Validate checks the layout for consistency.
func (l Layout) Validate() error {
	if err := l.WALGeometry().Validate(); err != nil {
		return err
	}
	if l.DirectSize < 0 || l.MainSize <= 0 || l.IntegrityBlockSize < 0 {
		return fmt.Errorf("memnode: invalid layout %+v", l)
	}
	return nil
}

// WALGeometry returns the WAL's placement (slot 0 at region offset 0).
func (l Layout) WALGeometry() wal.Geometry {
	return wal.Geometry{Base: 0, SlotSize: l.WALSlotSize, Slots: l.WALSlots}
}

// WALBytes returns the WAL area size.
func (l Layout) WALBytes() int { return l.WALSlotSize * l.WALSlots }

// DirectBase returns the region offset of the direct-write zone.
func (l Layout) DirectBase() uint64 { return uint64(l.WALBytes()) }

// MainBase returns the region offset of the materialized memory.
func (l Layout) MainBase() uint64 { return uint64(l.WALBytes() + l.DirectSize) }

// IntegritySlots returns the number of checksum strip entries: one per
// IntegrityBlockSize bytes of the node's materialized memory, with a final
// short block when MainSize is not a multiple. Zero when the strip is off.
func (l Layout) IntegritySlots() int {
	if l.IntegrityBlockSize <= 0 {
		return 0
	}
	return (l.MainSize + l.IntegrityBlockSize - 1) / l.IntegrityBlockSize
}

// IntegrityBytes returns the checksum strip size (4 bytes per slot).
func (l Layout) IntegrityBytes() int { return 4 * l.IntegritySlots() }

// IntegrityBase returns the region offset of the checksum strip. The strip
// sits after the materialized memory so enabling it never shifts the WAL,
// direct-zone, or main-memory offsets.
func (l Layout) IntegrityBase() uint64 {
	return uint64(l.WALBytes() + l.DirectSize + l.MainSize)
}

// IntegrityOffset returns the region offset of strip entry b.
func (l Layout) IntegrityOffset(b uint64) uint64 { return l.IntegrityBase() + 4*b }

// ReplSize returns the total replicated region size.
func (l Layout) ReplSize() int {
	return l.WALBytes() + l.DirectSize + l.MainSize + l.IntegrityBytes()
}

// New constructs a memory node with the standard admin and replicated
// regions for the given layout.
func New(name string, l Layout) (*rdma.Node, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	n := rdma.NewNode(name)
	n.Alloc(AdminRegionID, AdminSize, false)
	n.Alloc(ReplRegionID, l.ReplSize(), true)
	return n, nil
}

// Reset zeroes a node's regions, modelling the loss of volatile memory when
// a memory node restarts (Sift stores everything in DRAM by default, §3.5).
// The populated marker is cleared — that is the point: the next coordinator
// must not trust this node's contents. The election word is preserved as a
// simplification (a real reboot would zero it too; candidates recover from
// that via their CAS return values, but keeping it avoids pointless term
// churn in tests).
func Reset(n *rdma.Node, l Layout) {
	if a := n.Region(AdminRegionID); a != nil {
		var zero [8]byte
		a.WriteAt(0, AdminPopulatedOffset, zero[:]) //nolint:errcheck — admin region is shared (epoch 0)
	}
	if r := n.Region(ReplRegionID); r != nil {
		// Reset is node-local maintenance: acquire a fresh epoch to write
		// (this also fences any lingering coordinator connection, exactly as
		// a machine reboot would). The next coordinator connection acquires
		// a newer epoch on dial.
		epoch := r.Acquire()
		zero := make([]byte, 64<<10)
		size := uint64(r.Size())
		for off := uint64(0); off < size; off += uint64(len(zero)) {
			chunk := zero
			if rem := size - off; rem < uint64(len(zero)) {
				chunk = zero[:rem]
			}
			if err := r.WriteAt(epoch, off, chunk); err != nil {
				return
			}
		}
	}
}
