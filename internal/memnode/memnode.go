// Package memnode defines the memory layout of a Sift memory node and
// helpers to construct one (paper §3.1, Figure 1).
//
// A memory node is completely passive: it registers two RDMA memory regions
// and then only participates by having its NIC (simulated by the rdma
// package transports) serve one-sided operations.
//
//   - The administrative region holds the heartbeat/election word
//     (term_id, node_id, timestamp) and is shared: every CPU node may CAS it.
//   - The replicated memory region is exclusive (at-most-one-connection) and
//     is subdivided into the replicated-memory write-ahead log, a
//     direct-write zone (unlogged, used by the key-value store's own WAL),
//     and the materialized replicated memory.
package memnode

import (
	"fmt"

	"github.com/repro/sift/internal/rdma"
	"github.com/repro/sift/internal/wal"
)

// Region ids used by every Sift memory node.
const (
	// AdminRegionID is the shared administrative (heartbeat) region.
	AdminRegionID rdma.RegionID = 1
	// ReplRegionID is the exclusive replicated memory region.
	ReplRegionID rdma.RegionID = 2
)

// AdminSize is the administrative region size: the fixed control words in
// the first 64 bytes plus the variable-length configuration descriptor at
// AdminConfigOffset.
const AdminSize = 4096

// AdminWordOffset is the offset of the packed heartbeat word.
const AdminWordOffset = 0

// AdminPopulatedOffset is the offset of the "populated" marker word: 0
// means the node's replicated region holds no trustworthy state (fresh
// machine, rebooted DRAM, or a recovery copy in progress); 1 means a
// coordinator has fully populated it. Coordinators check this at takeover
// so a node that lost its memory between coordinatorships is recovered
// rather than read.
const AdminPopulatedOffset = 8

// Populated marker values.
const (
	MarkerEmpty     = 0
	MarkerPopulated = 1
)

// AdminMembershipOffset is the offset of the 16-byte membership record: the
// coordinator publishes (configEpoch, term, version, liveBitmap) here on
// every writable node whenever its view of the live memory nodes changes.
// A successor reads the record from a majority, takes the highest
// (epoch, term, version), and treats nodes absent from that bitmap as
// needing a rebuild — so a node that silently missed updates (partitioned
// with its DRAM intact) is never read after a coordinator failover. The
// bitmap's bit positions are indexes into the member list of the named
// config epoch, so records from any other epoch are meaningless and must be
// ignored, not merely term-compared. Stale coordinators lose automatically:
// their epoch/term tags are smaller.
const AdminMembershipOffset = 16

// AdminServingOffset is the offset of the serving word, packing
// (configEpoch, term): the coordinator of term T at config epoch E writes
// (E, T) here only once its takeover is complete — recovery and log replay
// finished, table structures stable apart from live applies. A backup CPU
// node serving lease-based reads requires its lease term AND its view's
// config epoch to equal this word: a lease alone says nothing about whether
// a replay (which rewrites blocks through older states) is still in flight,
// and a reconfiguration clears/advances the epoch half so views built
// against the outgoing node set refuse to serve until the new epoch's
// coordinator has republished. Monotonic; readers take the maximum.
const AdminServingOffset = 32

// AdminEpochOffset is the offset of the config-epoch word, packing
// (configEpoch, term). It is advanced by CAS during a reconfiguration
// cutover: the acting coordinator (fenced by its term) CASes
// (E, T) → (E+1, T) on the new member set, making the epoch transition a
// single atomic decision point per node. Readers (views, recovering nodes,
// successors) compare it against the epoch their member list was built for
// and re-discover the configuration descriptor on mismatch.
const AdminEpochOffset = 40

// AdminRetiredOffset is the retired tombstone: zero while the node is a
// group member; the epoch at which it was removed otherwise. A removed node
// keeps its DRAM intact, so without the tombstone a partitioned reader
// could mistake its frozen state for current; readers skip any node whose
// tombstone is set. Re-adding a retired machine clears the tombstone as
// part of its (mandatory) rebuild.
const AdminRetiredOffset = 48

// AdminConfigOffset is the offset of the configuration descriptor: a
// CRC-protected, epoch-tagged record of the full member list and erasure
// geometry (see EncodeConfig). It is written to every node — including ones
// being removed — BEFORE the epoch CAS, so a reader holding any node of any
// recent configuration can chase its way to the authoritative member set.
const AdminConfigOffset = 64

// MaxConfigSize bounds the encoded configuration descriptor.
const MaxConfigSize = AdminSize - AdminConfigOffset

// PackMembership builds the two words of a membership record. The second
// word carries the bitmap and its complement, so a torn or zeroed record is
// self-evidently invalid.
func PackMembership(epoch uint32, term, version uint16, bitmap uint32) (w0, w1 uint64) {
	w0 = uint64(epoch)<<32 | uint64(term)<<16 | uint64(version)
	w1 = uint64(bitmap)<<32 | uint64(^bitmap)
	return w0, w1
}

// UnpackMembership splits a membership record. ok is false for a zero or
// torn record.
func UnpackMembership(w0, w1 uint64) (epoch uint32, term, version uint16, bitmap uint32, ok bool) {
	if w0 == 0 || uint32(w1>>32) != ^uint32(w1) {
		return 0, 0, 0, 0, false
	}
	return uint32(w0 >> 32), uint16(w0 >> 16), uint16(w0), uint32(w1 >> 32), true
}

// PackServing builds a serving word from (configEpoch, term); shared by the
// epoch word at AdminEpochOffset, which uses the same packing. Numeric
// order coincides with (epoch, term) order.
func PackServing(epoch uint32, term uint16) uint64 {
	return uint64(epoch)<<16 | uint64(term)
}

// UnpackServing splits a serving (or config-epoch) word.
func UnpackServing(w uint64) (epoch uint32, term uint16) {
	return uint32(w >> 16), uint16(w)
}

// Layout describes how a memory node's replicated region is carved up.
// All coordinators of a group must agree on the layout.
type Layout struct {
	// WALSlotSize and WALSlots define the replicated-memory write-ahead log.
	WALSlotSize int
	WALSlots    int
	// DirectSize is the size of the direct-write zone (full copy per node).
	DirectSize int
	// MainSize is the per-node size of the materialized memory: the full
	// logical memory size without erasure coding, or the chunked share
	// (logical size / (Fm+1)) with it.
	MainSize int
	// IntegrityBlockSize is the granularity of the main-memory checksum
	// strip: one CRC32C per IntegrityBlockSize bytes of this node's
	// materialized memory (a plain-replicated block, or one erasure-coded
	// chunk). Zero means no strip.
	IntegrityBlockSize int
}

// Validate checks the layout for consistency.
func (l Layout) Validate() error {
	if err := l.WALGeometry().Validate(); err != nil {
		return err
	}
	if l.DirectSize < 0 || l.MainSize <= 0 || l.IntegrityBlockSize < 0 {
		return fmt.Errorf("memnode: invalid layout %+v", l)
	}
	return nil
}

// WALGeometry returns the WAL's placement (slot 0 at region offset 0).
func (l Layout) WALGeometry() wal.Geometry {
	return wal.Geometry{Base: 0, SlotSize: l.WALSlotSize, Slots: l.WALSlots}
}

// WALBytes returns the WAL area size.
func (l Layout) WALBytes() int { return l.WALSlotSize * l.WALSlots }

// DirectBase returns the region offset of the direct-write zone.
func (l Layout) DirectBase() uint64 { return uint64(l.WALBytes()) }

// MainBase returns the region offset of the materialized memory.
func (l Layout) MainBase() uint64 { return uint64(l.WALBytes() + l.DirectSize) }

// IntegritySlots returns the number of checksum strip entries: one per
// IntegrityBlockSize bytes of the node's materialized memory, with a final
// short block when MainSize is not a multiple. Zero when the strip is off.
func (l Layout) IntegritySlots() int {
	if l.IntegrityBlockSize <= 0 {
		return 0
	}
	return (l.MainSize + l.IntegrityBlockSize - 1) / l.IntegrityBlockSize
}

// IntegrityBytes returns the checksum strip size (4 bytes per slot).
func (l Layout) IntegrityBytes() int { return 4 * l.IntegritySlots() }

// IntegrityBase returns the region offset of the checksum strip. The strip
// sits after the materialized memory so enabling it never shifts the WAL,
// direct-zone, or main-memory offsets.
func (l Layout) IntegrityBase() uint64 {
	return uint64(l.WALBytes() + l.DirectSize + l.MainSize)
}

// IntegrityOffset returns the region offset of strip entry b.
func (l Layout) IntegrityOffset(b uint64) uint64 { return l.IntegrityBase() + 4*b }

// ReplSize returns the total replicated region size.
func (l Layout) ReplSize() int {
	return l.WALBytes() + l.DirectSize + l.MainSize + l.IntegrityBytes()
}

// New constructs a memory node with the standard admin and replicated
// regions for the given layout.
func New(name string, l Layout) (*rdma.Node, error) {
	return NewWithCapacity(name, l, 0)
}

// NewWithCapacity constructs a memory node whose replicated region is at
// least capacityBytes, even if the given layout needs less. Reconfiguration
// can change the per-node share (a shrink spreads the same logical memory
// over fewer nodes; an EC→plain change makes each node hold the full copy),
// so a cluster expecting to reconfigure allocates every node at the
// worst-case share up front — DRAM is reserved at boot on real hardware
// anyway, and the layout in use simply leaves the tail idle.
func NewWithCapacity(name string, l Layout, capacityBytes int) (*rdma.Node, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	size := l.ReplSize()
	if capacityBytes > size {
		size = capacityBytes
	}
	n := rdma.NewNode(name)
	n.Alloc(AdminRegionID, AdminSize, false)
	n.Alloc(ReplRegionID, size, true)
	return n, nil
}

// Reset zeroes a node's regions, modelling the loss of volatile memory when
// a memory node restarts (Sift stores everything in DRAM by default, §3.5).
// The populated marker is cleared — that is the point: the next coordinator
// must not trust this node's contents. The election word is preserved as a
// simplification (a real reboot would zero it too; candidates recover from
// that via their CAS return values, but keeping it avoids pointless term
// churn in tests).
func Reset(n *rdma.Node, l Layout) {
	if a := n.Region(AdminRegionID); a != nil {
		var zero [8]byte
		a.WriteAt(0, AdminPopulatedOffset, zero[:]) //nolint:errcheck — admin region is shared (epoch 0)
	}
	if r := n.Region(ReplRegionID); r != nil {
		// Reset is node-local maintenance: acquire a fresh epoch to write
		// (this also fences any lingering coordinator connection, exactly as
		// a machine reboot would). The next coordinator connection acquires
		// a newer epoch on dial.
		epoch := r.Acquire()
		zero := make([]byte, 64<<10)
		size := uint64(r.Size())
		for off := uint64(0); off < size; off += uint64(len(zero)) {
			chunk := zero
			if rem := size - off; rem < uint64(len(zero)) {
				chunk = zero[:rem]
			}
			if err := r.WriteAt(epoch, off, chunk); err != nil {
				return
			}
		}
	}
}
