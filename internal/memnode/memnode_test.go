package memnode

import (
	"testing"

	"github.com/repro/sift/internal/rdma"
)

func testLayout() Layout {
	return Layout{WALSlotSize: 256, WALSlots: 16, DirectSize: 1024, MainSize: 4096}
}

func TestLayoutMath(t *testing.T) {
	l := testLayout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.WALBytes() != 4096 {
		t.Fatalf("WALBytes = %d", l.WALBytes())
	}
	if l.DirectBase() != 4096 {
		t.Fatalf("DirectBase = %d", l.DirectBase())
	}
	if l.MainBase() != 5120 {
		t.Fatalf("MainBase = %d", l.MainBase())
	}
	if l.ReplSize() != 4096+1024+4096 {
		t.Fatalf("ReplSize = %d", l.ReplSize())
	}
	g := l.WALGeometry()
	if g.Slots != 16 || g.SlotSize != 256 || g.Base != 0 {
		t.Fatalf("geometry %+v", g)
	}
}

func TestLayoutValidate(t *testing.T) {
	bad := Layout{WALSlotSize: 4, WALSlots: 0, MainSize: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid layout accepted")
	}
	bad2 := testLayout()
	bad2.MainSize = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero main size accepted")
	}
	bad3 := testLayout()
	bad3.DirectSize = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative direct size accepted")
	}
}

func TestNewRegisteredRegions(t *testing.T) {
	n, err := New("m0", testLayout())
	if err != nil {
		t.Fatal(err)
	}
	admin := n.Region(AdminRegionID)
	if admin == nil || admin.Size() != AdminSize || admin.Exclusive() {
		t.Fatalf("admin region wrong: %+v", admin)
	}
	repl := n.Region(ReplRegionID)
	if repl == nil || repl.Size() != testLayout().ReplSize() || !repl.Exclusive() {
		t.Fatal("replicated region wrong")
	}
}

func TestNewInvalidLayout(t *testing.T) {
	if _, err := New("m0", Layout{}); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func TestResetClearsReplicatedRegion(t *testing.T) {
	l := testLayout()
	n, err := New("m0", l)
	if err != nil {
		t.Fatal(err)
	}
	repl := n.Region(ReplRegionID)
	epoch := repl.Acquire()
	if err := repl.WriteAt(epoch, 100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Write something into the admin region too.
	admin := n.Region(AdminRegionID)
	admin.WriteAt(0, 0, []byte{9})

	Reset(n, l)

	snap := repl.Snapshot()
	for i, b := range snap {
		if b != 0 {
			t.Fatalf("replicated byte %d = %d after reset", i, b)
		}
	}
	// Admin region survives (terms must not regress).
	var a [1]byte
	admin.ReadAt(0, 0, a[:])
	if a[0] != 9 {
		t.Fatal("admin region was cleared")
	}
	// The pre-reset epoch holder is fenced, like a rebooted NIC.
	if err := repl.WriteAt(epoch, 0, []byte{1}); err != rdma.ErrFenced {
		t.Fatalf("stale epoch write: %v", err)
	}
}
