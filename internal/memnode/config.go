package memnode

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// ConfigRecord is the configuration descriptor stored at AdminConfigOffset
// on every memory node: the authoritative member list and erasure geometry
// for one config epoch. The record is the discovery root of the
// reconfiguration plane — a CPU node holding any single admin connection
// can decode it, dial the named members, and from there find a fresher
// record if one exists (records are written to both the outgoing and the
// incoming member sets before an epoch is committed).
type ConfigRecord struct {
	// Epoch is the config epoch this member list belongs to. Epoch 0 is
	// never valid; fresh clusters start at 1.
	Epoch uint32
	// Term is the coordinator term that installed the record (fencing tag:
	// among records of equal epoch, higher term wins).
	Term uint16
	// ECData and ECParity are the erasure geometry (0/0 = full replication).
	ECData, ECParity int
	// ECBlockSize is the logical erasure block size (0 without EC).
	ECBlockSize int
	// Members is the ordered node-name list. Order is load-bearing: it fixes
	// EC chunk indexes and membership-bitmap bit positions.
	Members []string
}

// Newer reports whether r supersedes other, ordering by (Epoch, Term).
func (r ConfigRecord) Newer(other ConfigRecord) bool {
	if r.Epoch != other.Epoch {
		return r.Epoch > other.Epoch
	}
	return r.Term > other.Term
}

// configMagic identifies an encoded ConfigRecord ("SCF1").
const configMagic = 0x53434631

var configCRCTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeConfig serializes a record:
//
//	magic(4) len(4) epoch(4) term(2) ecData(2) ecParity(2) ecBlock(4)
//	n(2) { nameLen(2) name }* crc32c(4)
//
// len covers everything after the len field up to and including the CRC.
func EncodeConfig(r ConfigRecord) ([]byte, error) {
	if r.Epoch == 0 {
		return nil, fmt.Errorf("memnode: config epoch 0 is reserved")
	}
	if len(r.Members) == 0 || len(r.Members) > 32 {
		return nil, fmt.Errorf("memnode: config with %d members (want 1..32)", len(r.Members))
	}
	if r.ECData < 0 || r.ECParity < 0 || r.ECData > 0xffff || r.ECParity > 0xffff ||
		r.ECBlockSize < 0 || r.ECBlockSize > 0x7fffffff {
		return nil, fmt.Errorf("memnode: config EC geometry out of range")
	}
	buf := make([]byte, 0, 64+16*len(r.Members))
	buf = binary.LittleEndian.AppendUint32(buf, configMagic)
	buf = append(buf, 0, 0, 0, 0) // len placeholder
	buf = binary.LittleEndian.AppendUint32(buf, r.Epoch)
	buf = binary.LittleEndian.AppendUint16(buf, r.Term)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.ECData))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.ECParity))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.ECBlockSize))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Members)))
	for _, m := range r.Members {
		if len(m) == 0 || len(m) > 255 {
			return nil, fmt.Errorf("memnode: config member name %q out of range", m)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m)))
		buf = append(buf, m...)
	}
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(buf)-8+4))
	sum := crc32.Checksum(buf[8:], configCRCTable)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	if len(buf) > MaxConfigSize {
		return nil, fmt.Errorf("memnode: encoded config %dB exceeds %dB admin space", len(buf), MaxConfigSize)
	}
	return buf, nil
}

// DecodeConfig parses an encoded record from the start of buf (which may be
// the whole admin tail). ok is false for empty, torn, or corrupt bytes —
// never an error, since an unwritten descriptor area is a normal state.
func DecodeConfig(buf []byte) (ConfigRecord, bool) {
	var r ConfigRecord
	if len(buf) < 12 || binary.LittleEndian.Uint32(buf) != configMagic {
		return r, false
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if n < 4 || n > len(buf)-8 {
		return r, false
	}
	body, sum := buf[8:8+n-4], binary.LittleEndian.Uint32(buf[8+n-4:8+n])
	if crc32.Checksum(body, configCRCTable) != sum {
		return r, false
	}
	if len(body) < 16 {
		return r, false
	}
	r.Epoch = binary.LittleEndian.Uint32(body)
	r.Term = binary.LittleEndian.Uint16(body[4:])
	r.ECData = int(binary.LittleEndian.Uint16(body[6:]))
	r.ECParity = int(binary.LittleEndian.Uint16(body[8:]))
	r.ECBlockSize = int(binary.LittleEndian.Uint32(body[10:]))
	count := int(binary.LittleEndian.Uint16(body[14:]))
	if r.Epoch == 0 || count == 0 || count > 32 {
		return ConfigRecord{}, false
	}
	pos := 16
	r.Members = make([]string, 0, count)
	for i := 0; i < count; i++ {
		if pos+2 > len(body) {
			return ConfigRecord{}, false
		}
		l := int(binary.LittleEndian.Uint16(body[pos:]))
		pos += 2
		if l == 0 || pos+l > len(body) {
			return ConfigRecord{}, false
		}
		r.Members = append(r.Members, string(body[pos:pos+l]))
		pos += l
	}
	if pos != len(body) {
		return ConfigRecord{}, false
	}
	return r, true
}
