// Package shard implements the key→group shard map for multi-group Sift
// deployments: an epoch-versioned rendezvous (highest-random-weight) hash
// over consensus groups.
//
// Rendezvous hashing gives the stability property a router wants when the
// group set changes: every key is assigned to the live group with the
// maximal per-(key, group) weight, so removing a group remaps only the keys
// that lived on it, and adding a group steals only the keys whose weight for
// the newcomer exceeds their current maximum (≈ 1/N of the keyspace). Keys
// never migrate between two surviving groups.
//
// The map is epoch-versioned so it composes with per-group online
// reconfiguration (DESIGN.md §14): a group's *internal* membership epoch can
// advance freely without touching the shard map, while any change to the
// *group set* mints a new shard-map epoch that routers can compare and adopt
// monotonically.
package shard

import (
	"fmt"
	"sort"
)

// GroupID identifies one consensus group within a sharded deployment.
type GroupID int

// Map is an immutable key→group assignment. The zero value is invalid; use
// NewMap. Maps are cheap to copy and safe for concurrent use.
type Map struct {
	epoch  uint64
	groups []GroupID // sorted, deduplicated
}

// NewMap builds a map at the given epoch over the given groups.
func NewMap(epoch uint64, groups []GroupID) (Map, error) {
	if len(groups) == 0 {
		return Map{}, fmt.Errorf("shard: map needs at least one group")
	}
	gs := append([]GroupID(nil), groups...)
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	for i := 1; i < len(gs); i++ {
		if gs[i] == gs[i-1] {
			return Map{}, fmt.Errorf("shard: duplicate group %d", gs[i])
		}
	}
	return Map{epoch: epoch, groups: gs}, nil
}

// Epoch returns the map's version. Routers adopt the map with the highest
// epoch they have seen.
func (m Map) Epoch() uint64 { return m.epoch }

// Groups returns the group set (sorted copy).
func (m Map) Groups() []GroupID { return append([]GroupID(nil), m.groups...) }

// NumGroups returns the number of groups.
func (m Map) NumGroups() int { return len(m.groups) }

// Contains reports whether g is in the map.
func (m Map) Contains(g GroupID) bool {
	for _, have := range m.groups {
		if have == g {
			return true
		}
	}
	return false
}

// Next derives a successor map over a new group set, bumping the epoch.
func (m Map) Next(groups []GroupID) (Map, error) {
	nm, err := NewMap(m.epoch+1, groups)
	if err != nil {
		return Map{}, err
	}
	return nm, nil
}

// GroupFor assigns a key: the group with the highest rendezvous weight.
// Ties (astronomically unlikely) break toward the lower group id for
// determinism.
func (m Map) GroupFor(key []byte) GroupID {
	best := m.groups[0]
	bestW := weight(key, best)
	for _, g := range m.groups[1:] {
		if w := weight(key, g); w > bestW {
			best, bestW = g, w
		}
	}
	return best
}

// Split partitions keys by their assigned group, preserving input order
// within each group. The result maps group → indices into keys.
func (m Map) Split(keys [][]byte) map[GroupID][]int {
	out := make(map[GroupID][]int, len(m.groups))
	for i, k := range keys {
		g := m.GroupFor(k)
		out[g] = append(out[g], i)
	}
	return out
}

// weight is the rendezvous score for (key, group): FNV-1a over the key,
// folded with the group id, finished with a splitmix64-style avalanche so
// nearby group ids produce uncorrelated weights.
func weight(key []byte, g GroupID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= uint64(g) + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
