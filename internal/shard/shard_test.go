package shard

import (
	"fmt"
	"testing"
)

func keys(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("user%08d", i))
	}
	return out
}

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(1, nil); err == nil {
		t.Fatal("empty group set accepted")
	}
	if _, err := NewMap(1, []GroupID{0, 1, 1}); err == nil {
		t.Fatal("duplicate group accepted")
	}
	m, err := NewMap(3, []GroupID{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 3 || m.NumGroups() != 3 {
		t.Fatalf("epoch=%d groups=%d", m.Epoch(), m.NumGroups())
	}
	if gs := m.Groups(); gs[0] != 0 || gs[1] != 1 || gs[2] != 2 {
		t.Fatalf("groups not sorted: %v", gs)
	}
}

func TestGroupForDeterministicAndTotal(t *testing.T) {
	m, _ := NewMap(1, []GroupID{0, 1, 2, 3})
	for _, k := range keys(1000) {
		g := m.GroupFor(k)
		if !m.Contains(g) {
			t.Fatalf("key %q assigned to unknown group %d", k, g)
		}
		if m.GroupFor(k) != g {
			t.Fatalf("key %q assignment not deterministic", k)
		}
	}
}

func TestBalance(t *testing.T) {
	m, _ := NewMap(1, []GroupID{0, 1, 2, 3})
	counts := map[GroupID]int{}
	const n = 8000
	for _, k := range keys(n) {
		counts[m.GroupFor(k)]++
	}
	for g, c := range counts {
		// Each of 4 groups should get ~2000 keys; allow ±25%.
		if c < n/4*3/4 || c > n/4*5/4 {
			t.Fatalf("group %d holds %d of %d keys — imbalanced: %v", g, c, n, counts)
		}
	}
}

// TestRemovalStability is the rendezvous guarantee: removing a group remaps
// only that group's keys, and survivors keep every key they had.
func TestRemovalStability(t *testing.T) {
	m4, _ := NewMap(1, []GroupID{0, 1, 2, 3})
	m3, err := m4.Next([]GroupID{0, 1, 3}) // group 2 removed
	if err != nil {
		t.Fatal(err)
	}
	if m3.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", m3.Epoch())
	}
	moved := 0
	for _, k := range keys(4000) {
		before, after := m4.GroupFor(k), m3.GroupFor(k)
		if before == 2 {
			moved++
			if after == 2 {
				t.Fatalf("key %q still on removed group", k)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %d→%d though its group survived", k, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys lived on the removed group; test is vacuous")
	}
}

// TestAdditionStability: adding a group steals keys only for itself, about
// 1/N of the keyspace, and never shuffles keys between existing groups.
func TestAdditionStability(t *testing.T) {
	m3, _ := NewMap(1, []GroupID{0, 1, 2})
	m4, err := m3.Next([]GroupID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	const n = 4000
	for _, k := range keys(n) {
		before, after := m3.GroupFor(k), m4.GroupFor(k)
		if after == 3 {
			stolen++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %d→%d on unrelated addition", k, before, after)
		}
	}
	// Expect ~n/4; allow a wide band.
	if stolen < n/8 || stolen > n/2 {
		t.Fatalf("new group stole %d of %d keys, want ≈%d", stolen, n, n/4)
	}
}

// TestStabilityAcrossEpochBumps models per-group reconfiguration (DESIGN.md
// §14) advancing the shard-map epoch without changing the group set: the
// assignment must be bit-identical — a router that re-resolves every key on
// an epoch change must never see a key move.
func TestStabilityAcrossEpochBumps(t *testing.T) {
	m, _ := NewMap(1, []GroupID{0, 1, 2})
	bumped := m
	var err error
	for i := 0; i < 5; i++ {
		bumped, err = bumped.Next([]GroupID{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
	}
	if bumped.Epoch() != 6 {
		t.Fatalf("epoch = %d, want 6", bumped.Epoch())
	}
	for _, k := range keys(2000) {
		if m.GroupFor(k) != bumped.GroupFor(k) {
			t.Fatalf("key %q moved across a same-set epoch bump", k)
		}
	}
}

func TestSplitPreservesOrder(t *testing.T) {
	m, _ := NewMap(1, []GroupID{0, 1, 2})
	ks := keys(300)
	parts := m.Split(ks)
	total := 0
	for g, idxs := range parts {
		total += len(idxs)
		for i := 1; i < len(idxs); i++ {
			if idxs[i] <= idxs[i-1] {
				t.Fatalf("group %d indices out of order: %v", g, idxs)
			}
		}
		for _, i := range idxs {
			if m.GroupFor(ks[i]) != g {
				t.Fatalf("index %d in wrong group %d", i, g)
			}
		}
	}
	if total != len(ks) {
		t.Fatalf("split covers %d of %d keys", total, len(ks))
	}
}
